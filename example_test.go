package quartz_test

import (
	"fmt"
	"math/rand"

	"github.com/quartz-dcn/quartz"
)

// ExampleNewRing plans the paper's flagship configuration: a 33-switch
// ring mimicking a 1056-port switch (§3.2).
func ExampleNewRing() {
	ring, err := quartz.NewRing(quartz.RingConfig{Switches: 33, HostsPerSwitch: 32})
	if err != nil {
		panic(err)
	}
	fmt.Println(ring)
	fmt.Printf("wiring: %d fiber cables\n", ring.WiringComplexity())
	// Output:
	// Quartz ring: 33 switches x 32 hosts (1056 ports), 136 channels on 2 fiber ring(s), 34 amplifiers
	// wiring: 66 fiber cables
}

// ExampleOptimalChannels shows the §3.1 channel arithmetic: the proven
// minimum for the paper's ring sizes, and the single-fiber limit.
func ExampleOptimalChannels() {
	fmt.Println(quartz.OptimalChannels(33)) // the paper's 33-switch example
	fmt.Println(quartz.OptimalChannels(35)) // the largest single-fiber ring
	fmt.Println(quartz.MaxRingSize(160))    // ... given 160 channels per fiber
	// Output:
	// 136
	// 153
	// 35
}

// ExampleGreedyChannels runs the paper's greedy heuristic and checks
// the two §3.1 invariants.
func ExampleGreedyChannels() {
	plan := quartz.GreedyChannels(8, rand.New(rand.NewSource(1)))
	fmt.Println(plan.Validate() == nil)
	fmt.Println(plan.Channels >= quartz.OptimalChannels(8))
	// Output:
	// true
	// true
}

// ExamplePlanAmplifiers reproduces the §3.3 worked example: a 24-node
// ring needs one amplifier for every two switches.
func ExamplePlanAmplifiers() {
	budget, err := quartz.PlanAmplifiers(24)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d amplifiers, one per %d switches\n", budget.Amplifiers, budget.AmpAfterHops)
	// Output:
	// 12 amplifiers, one per 2 switches
}

// ExampleTraceRecorder drives the observability layer end to end: plan
// a small ring, attach a trace-recording probe to the packet simulator,
// send one packet across the mesh, and read back its recorded
// lifecycle — each hop's queue join and transmission, then the
// delivery, with the traversed path.
func ExampleTraceRecorder() {
	ring, err := quartz.NewRing(quartz.RingConfig{Switches: 4, HostsPerSwitch: 2})
	if err != nil {
		panic(err)
	}
	tr := quartz.NewTraceRecorder(64)
	net, err := quartz.NewNetwork(quartz.NetworkConfig{
		Graph:       ring.Graph,
		Router:      quartz.NewECMP(ring.Graph),
		RecordPaths: true,
		Probe:       tr,
	})
	if err != nil {
		panic(err)
	}
	hosts := ring.Graph.Hosts()
	id := net.Unicast(1, hosts[0], hosts[len(hosts)-1], 400, 0)
	net.Engine().Run()

	for _, e := range tr.PacketEvents(id) {
		fmt.Printf("%s hop=%d\n", e.Op, e.Hops)
	}
	// ECMP on the mesh takes the direct channel (§3.4): source host,
	// two switches, destination host.
	fmt.Println("nodes on path:", len(tr.Path(id)))
	// Output:
	// enqueue hop=0
	// transmit hop=0
	// enqueue hop=1
	// transmit hop=1
	// enqueue hop=2
	// transmit hop=2
	// deliver hop=3
	// nodes on path: 4
}

// ExampleSimulateFiberCuts shows §3.5's headline: one cut never
// partitions the logical mesh.
func ExampleSimulateFiberCuts() {
	plan := quartz.GreedyChannels(33, rand.New(rand.NewSource(2)))
	res, err := quartz.SimulateFiberCuts(plan, 1, 1000, rand.New(rand.NewSource(3)))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.PartitionProb)
	// Output:
	// 0
}
