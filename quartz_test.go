package quartz

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNewRingFacade(t *testing.T) {
	// The paper's flagship configuration: 33 switches x 32 servers
	// mimicking a 1056-port switch (§3.2) on two fiber rings (§3.5).
	ring, err := NewRing(RingConfig{Switches: 33, HostsPerSwitch: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Ports() != 1056 {
		t.Errorf("Ports = %d, want 1056", ring.Ports())
	}
	if ring.PhysicalRings() != 2 {
		t.Errorf("PhysicalRings = %d, want 2", ring.PhysicalRings())
	}
	if err := ring.Plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMaxPortsFacade(t *testing.T) {
	ports, m := MaxPortsSingleRing(64)
	if ports != 1056 || m != 33 {
		t.Errorf("MaxPortsSingleRing(64) = %d@%d, want 1056@33", ports, m)
	}
	if MaxRingSize(160) != 35 {
		t.Errorf("MaxRingSize(160) = %d, want 35", MaxRingSize(160))
	}
}

func TestChannelHelpersFacade(t *testing.T) {
	if OptimalChannels(33) != 136 {
		t.Errorf("OptimalChannels(33) = %d, want 136", OptimalChannels(33))
	}
	plan := GreedyChannels(8, rand.New(rand.NewSource(1)))
	if err := plan.Validate(); err != nil {
		t.Error(err)
	}
	exact, err := ExactChannels(6)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Channels != OptimalChannels(6) {
		t.Errorf("exact(6) = %d, want %d", exact.Channels, OptimalChannels(6))
	}
}

func TestAmplifierFacade(t *testing.T) {
	budget, err := PlanAmplifiers(24)
	if err != nil {
		t.Fatal(err)
	}
	if budget.Amplifiers != 12 {
		t.Errorf("24-ring amplifiers = %d, want 12 (§3.3)", budget.Amplifiers)
	}
}

func TestFiberCutsFacade(t *testing.T) {
	plan := GreedyChannels(33, rand.New(rand.NewSource(2)))
	res, err := SimulateFiberCuts(plan, 1, 500, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionProb != 0 {
		t.Errorf("single cut partitioned the mesh: %v", res.PartitionProb)
	}
}

func TestArchitectureBuildersFacade(t *testing.T) {
	tree, err := ThreeTierTree(ArchParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.Name, "tree") {
		t.Errorf("name = %q", tree.Name)
	}
	qec, err := QuartzInEdgeAndCore(ArchParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(qec.Graph.Hosts()) != len(tree.Graph.Hosts()) {
		t.Errorf("host counts differ: %d vs %d", len(qec.Graph.Hosts()), len(tree.Graph.Hosts()))
	}
	jf, err := Jellyfish(ArchParams{}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if err := jf.Graph.Validate(); err != nil {
		t.Error(err)
	}
}

func TestExperimentEntrypointsFacade(t *testing.T) {
	if rows := Figure5(10, 1); len(rows) != 9 {
		t.Errorf("Figure5 rows = %d, want 9", len(rows))
	}
	rows, err := Table9(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Errorf("Table9 rows = %d, want 5", len(rows))
	}
}

func TestExtendedFacade(t *testing.T) {
	// Dual-ToR scaling variant.
	g, err := NewDualToRMesh(DualToRConfig{Racks: 5, HostsPerRack: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Hosts()) != 10 {
		t.Errorf("dual-ToR hosts = %d, want 10", len(g.Hosts()))
	}
	// Expansion.
	plan := GreedyChannels(8, rand.New(rand.NewSource(1)))
	grown, stats, err := ExpandPlan(plan, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if grown.M != 10 || stats.Kept == 0 {
		t.Errorf("expansion stats = %+v", stats)
	}
	// Weighted channels.
	wp, err := GreedyWeightedChannels(8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wp.Channels != plan.Channels {
		t.Errorf("uniform weighted = %d channels, plain = %d", wp.Channels, plan.Channels)
	}
	// Modes exported.
	if Reno.String() != "reno" || DCTCP.String() != "dctcp" {
		t.Error("TCP mode exports wrong")
	}
}
