// Package quartz is a Go implementation of Quartz (Liu, Gao, Wong,
// Keshav — SIGCOMM 2014): a datacenter network design element that
// implements a logical full mesh of low-latency switches as a physical
// WDM ring.
//
// The package re-exports the library's public surface; the
// implementation lives under internal/:
//
//   - Ring planning: NewRing validates port budgets, assigns wavelength
//     channels (§3.1), splits them over physical fiber rings (§3.5), and
//     places amplifiers (§3.3).
//   - Design-element placements (§4): ThreeTierTree, QuartzInCore,
//     QuartzInEdge, QuartzInEdgeAndCore, Jellyfish, QuartzInJellyfish —
//     simulation-ready Architectures.
//   - Channel assignment: GreedyChannels (the paper's heuristic),
//     OptimalChannels (the proven minimum the paper's ILP computes),
//     ExactChannels (branch-and-bound for small rings).
//   - Experiments: the Figure*/Table* functions regenerate every result
//     of the paper's evaluation; see also cmd/quartzbench.
//
// Example:
//
//	ring, err := quartz.NewRing(quartz.RingConfig{Switches: 33, HostsPerSwitch: 32})
//	if err != nil { ... }
//	fmt.Println(ring) // 1056 ports, 136 channels on 2 fiber rings, ...
package quartz

import (
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/fault"
	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/optics"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/tcp"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

// Core Quartz types.
type (
	// Ring is a planned Quartz ring: logical mesh, channel plan, and
	// optical budget.
	Ring = core.Ring
	// RingConfig parameterizes NewRing.
	RingConfig = core.RingConfig
	// Architecture is a simulation-ready network design.
	Architecture = core.Architecture
	// ArchParams sizes the §7 architectures.
	ArchParams = core.ArchParams
)

// Topology, simulation and routing types.
type (
	// Graph is a static network topology.
	Graph = topology.Graph
	// DualToRConfig parameterizes NewDualToRMesh.
	DualToRConfig = topology.DualToRConfig
	// NodeID identifies a node in a Graph.
	NodeID = topology.NodeID
	// Time is simulation time in picoseconds.
	Time = sim.Time
	// Rate is a data rate in bits per second.
	Rate = sim.Rate
	// Network is the packet-level simulator.
	Network = netsim.Network
	// NetworkConfig assembles a Network for NewNetwork.
	NetworkConfig = netsim.Config
	// SwitchModel describes switch forwarding behaviour.
	SwitchModel = netsim.SwitchModel
	// Router selects forwarding ports.
	Router = routing.Router
	// FlowID identifies a flow for routing and Network.Unicast.
	FlowID = routing.FlowID
	// ChannelPlan is a wavelength assignment for a ring.
	ChannelPlan = wdm.Plan
)

// Observability: probes, tracing, and run telemetry for the packet
// simulator. Attach a Probe via NetworkConfig.Probe or
// Network.SetProbe; see internal/netsim for the concrete probes.
type (
	// Probe observes the packet lifecycle (enqueue, transmit, deliver,
	// drop) inside a Network.
	Probe = netsim.Probe
	// PortRef identifies one directed link (link + transmitting node).
	PortRef = netsim.PortRef
	// QueueEvent is one packet passing through an output queue.
	QueueEvent = netsim.QueueEvent
	// Delivery reports a packet reaching its destination host.
	Delivery = netsim.Delivery
	// Drop reports a lost packet.
	Drop = netsim.Drop
	// TraceRecorder is a bounded per-packet lifecycle trace (a Probe).
	TraceRecorder = netsim.TraceRecorder
	// TraceEvent is one recorded step of a packet's life.
	TraceEvent = netsim.TraceEvent
	// QueueSampler periodically samples queue depth and utilization.
	QueueSampler = netsim.QueueSampler
	// QueueSample is one periodic observation of a directed link.
	QueueSample = netsim.QueueSample
	// RunTelemetry summarizes a run: events, peak calendar, wall rate,
	// packet counters.
	RunTelemetry = netsim.RunTelemetry
)

// Runtime metrics: a registry of labelled instruments fed by the
// FlowTracker probe, QueueSampler.Bind, and sim.AttachHeartbeat, with
// Prometheus/NDJSON/HTTP export (DESIGN.md §6).
type (
	// Engine is the discrete-event engine driving a Network
	// (Network.Engine returns it).
	Engine = sim.Engine
	// MetricsRegistry holds named, labelled counters, gauges, and
	// latency histograms with snapshot/diff semantics.
	MetricsRegistry = metrics.Registry
	// LatencyHistogram estimates p50–p999 in O(buckets) memory.
	LatencyHistogram = metrics.LatencyHistogram
	// FlowTracker is a Probe aggregating per-flow FCT, bytes,
	// retransmits, and classified drop attribution.
	FlowTracker = netsim.FlowTracker
	// FlowStats is one flow's aggregated record.
	FlowStats = netsim.FlowStats
	// Heartbeat publishes engine health into a registry periodically.
	Heartbeat = sim.Heartbeat
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewLatencyHistogram returns an empty log-bucketed histogram.
func NewLatencyHistogram() *LatencyHistogram { return metrics.NewLatencyHistogram() }

// NewFlowTracker returns a per-flow telemetry probe; Bind it to a
// registry for live aggregate counters.
func NewFlowTracker() *FlowTracker { return netsim.NewFlowTracker() }

// AttachHeartbeat registers engine-health instruments in r and
// publishes them every interval of virtual time until the given time.
func AttachHeartbeat(e *Engine, r *MetricsRegistry, interval, until Time) *Heartbeat {
	return sim.AttachHeartbeat(e, r, interval, until)
}

// Fault injection: runtime link/switch/fiber failures with detection
// delay and route reconvergence (§3.5 dynamics). Obtain a Network's
// injector with Network.Faults(); core.Ring.AttachFaults wires a
// planned ring's fiber-cut geometry into it.
type (
	// FaultInjector is the unified failure surface of a Network.
	FaultInjector = netsim.FaultInjector
	// FaultSchedule is a set of timed fault events plus the
	// control-plane model (detection delay, in-flight policy).
	FaultSchedule = netsim.FaultSchedule
	// FaultEvent is one scheduled failure with an optional repair.
	FaultEvent = netsim.FaultEvent
	// FaultKind selects link, switch, or fiber-segment faults.
	FaultKind = netsim.FaultKind
	// FaultChange reports a fault transition to observers.
	FaultChange = netsim.FaultChange
	// FaultObserver extends Probe with fault-transition callbacks.
	FaultObserver = netsim.FaultObserver
	// ReroutePolicy picks the fate of packets queued on a cut link.
	ReroutePolicy = netsim.ReroutePolicy
	// Rerouter is a Router that can recompute around failed links.
	Rerouter = routing.Rerouter
)

// Fault kinds and in-flight policies.
const (
	FaultLink      = netsim.FaultLink
	FaultSwitch    = netsim.FaultSwitch
	FaultFiber     = netsim.FaultFiber
	DropInFlight   = netsim.DropInFlight
	DetourInFlight = netsim.DetourInFlight
)

// DefaultDetectionDelay is the reconvergence lag a FaultSchedule gets
// when it does not set one.
const DefaultDetectionDelay = netsim.DefaultDetectionDelay

// NewNetwork builds a packet-level network simulator from cfg.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return netsim.New(cfg) }

// NewTraceRecorder returns a Probe recording at most max lifecycle
// events (enqueue/transmit/deliver/drop with timestamps and, with
// NetworkConfig.RecordPaths, delivered hop lists).
func NewTraceRecorder(max int) *TraceRecorder { return netsim.NewTraceRecorder(max) }

// NewQueueSampler returns a periodic queue-depth/link-utilization
// sampler for n; call Start(until) before running the engine, and
// attach it as a Probe for exact per-port peak depths.
func NewQueueSampler(n *Network, interval Time) *QueueSampler {
	return netsim.NewQueueSampler(n, interval)
}

// Probes combines several probes into one; events fan out in order.
func Probes(ps ...Probe) Probe { return netsim.Probes(ps...) }

// Time and rate units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Mbps        = sim.Mbps
	Gbps        = sim.Gbps
)

// Switch models of Table 16.
var (
	// Arista7150 is the 380 ns cut-through switch ("ULL").
	Arista7150 = netsim.Arista7150
	// CiscoNexus7000 is the 6 µs store-and-forward core switch ("CCS").
	CiscoNexus7000 = netsim.CiscoNexus7000
)

// NewRing plans a Quartz ring (§3): channel assignment, fiber split,
// and amplifier placement.
func NewRing(cfg RingConfig) (*Ring, error) { return core.NewRing(cfg) }

// MaxPortsSingleRing returns the largest switch a single ring can mimic
// with the given switch port count (1056 at 64 ports; §3.2).
func MaxPortsSingleRing(switchPorts int) (ports, ringSize int) {
	return core.MaxPortsSingleRing(switchPorts)
}

// GreedyChannels runs the paper's greedy channel-assignment heuristic
// (§3.1.1) for a ring of m switches.
func GreedyChannels(m int, rng *rand.Rand) *ChannelPlan { return wdm.Greedy(m, rng) }

// OptimalChannels returns the proven minimum number of wavelengths for
// all-pairs communication on a ring of m switches — the value the
// paper's ILP computes.
func OptimalChannels(m int) int { return wdm.OptimalChannels(m) }

// ExactChannels solves the assignment exactly by branch-and-bound
// (small rings only).
func ExactChannels(m int) (*ChannelPlan, error) { return wdm.ExactBranchBound(m) }

// MaxRingSize returns the largest ring a fiber with the given channel
// budget supports (35 for the standard 160-channel fiber).
func MaxRingSize(channelBudget int) int { return wdm.MaxRingSize(channelBudget) }

// PlanAmplifiers computes the §3.3 amplifier plan for a ring.
func PlanAmplifiers(ringSize int) (optics.RingBudget, error) {
	return optics.PlanRing(ringSize, optics.DefaultParts)
}

// SimulateFiberCuts measures bandwidth loss and partition probability
// under random fiber cuts (§3.5, Figure 6).
func SimulateFiberCuts(plan *ChannelPlan, cuts, trials int, rng *rand.Rand) (fault.Result, error) {
	return fault.Simulate(plan, cuts, trials, rng)
}

// The §4/§7 design-element placements.
var (
	// ThreeTierTree builds the paper's baseline architecture.
	ThreeTierTree = core.ThreeTierTree
	// QuartzInCore replaces the core switches with a Quartz ring.
	QuartzInCore = core.QuartzInCore
	// QuartzInEdge replaces ToR and aggregation tiers with Quartz rings.
	QuartzInEdge = core.QuartzInEdge
	// QuartzInEdgeAndCore replaces both.
	QuartzInEdgeAndCore = core.QuartzInEdgeAndCore
	// Jellyfish builds the random-topology baseline.
	Jellyfish = core.Jellyfish
	// QuartzInJellyfish builds a random graph of Quartz rings (§4.3).
	QuartzInJellyfish = core.QuartzInJellyfish
	// TwoTierTreeArch builds the small-DC baseline of Table 8.
	TwoTierTreeArch = core.TwoTierTreeArch
	// QuartzRingArch builds a single Quartz ring as a whole small DCN.
	QuartzRingArch = core.QuartzRingArch
)

// Experiments: regenerate the paper's evaluation. See
// internal/experiments for row types and renderers, and cmd/quartzbench
// for a CLI.
var (
	// Figure5 sweeps channel counts vs ring size.
	Figure5 = experiments.Figure5
	// Figure6 runs the fault-tolerance Monte Carlo.
	Figure6 = experiments.Figure6
	// Table8 runs the cost/latency configurator.
	Table8 = experiments.Table8
	// Table9 compares the five ~1k-port topologies.
	Table9 = experiments.Table9
	// Figure10 measures normalized throughput on three patterns.
	Figure10 = experiments.Figure10
	// Figure14 reruns the prototype cross-traffic experiment.
	Figure14 = experiments.Figure14
	// Figure17 sweeps global scatter/gather/scatter-gather tasks.
	Figure17 = experiments.Figure17
	// Figure18 sweeps localized tasks under global cross-traffic.
	Figure18 = experiments.Figure18
	// Figure20 runs the pathological switch-pair stress pattern.
	Figure20 = experiments.Figure20
	// FigureF6Dynamic runs a mid-run fiber cut with reconvergence and
	// measures throughput before, during, and after (§3.5 dynamics).
	FigureF6Dynamic = experiments.FigureF6Dynamic
)

// Experiment registry: every reproduced table and figure, with a name,
// paper section, and runner. cmd/quartzbench iterates this.
type (
	// Experiment is one registry entry.
	Experiment = experiments.Experiment
	// ExperimentParams carries the shared experiment knobs.
	ExperimentParams = experiments.Params
	// ExperimentOutput is an experiment's rendered text and CSV rows.
	ExperimentOutput = experiments.Output
)

var (
	// Experiments returns the full registry in presentation order.
	Experiments = experiments.All
	// FindExperiment looks an entry up by its CLI name.
	FindExperiment = experiments.Find
)

// Extended API surface: scaling variants, expansion, transports, and
// failure modelling.

// NewDualToRMesh builds the §3.2 dual-homed scaling variant: two ToR
// switches per rack, one direct link per rack pair, two-switch paths —
// 2080 ports from 64-port switches.
var NewDualToRMesh = topology.NewDualToRMesh

// ExpandPlan grows a single-fiber channel plan in place with minimal
// disruption (§8's incremental deployment): kept channels stay on their
// wavelength; only splice-crossing arcs retune.
var ExpandPlan = wdm.ExpandPlan

// GreedyWeightedChannels assigns per-pair channel multiplicities —
// dedicate several wavelengths to hot rack pairs.
var GreedyWeightedChannels = wdm.GreedyWeighted

// Routing strategies beyond ECMP/VLB.
var (
	// NewECMP routes over all equal-cost shortest paths with per-flow
	// pinning (§3.4; on a full mesh it always picks the direct hop).
	NewECMP = routing.NewECMP
	// NewSPAIN builds the prototype's multi-VLAN multipath (§6).
	NewSPAIN = routing.NewSPAIN
	// NewKSP routes over k shortest loop-free paths (Jellyfish).
	NewKSP = routing.NewKSP
	// NewECMPPerPacket sprays packets over the equal-cost set.
	NewECMPPerPacket = routing.NewECMPPerPacket
)

// Transport types for congestion-controlled traffic (internal/tcp).
type (
	// TCPConn is a simulated Reno/DCTCP connection.
	TCPConn = tcp.Conn
	// TCPConfig parameterizes NewTCP.
	TCPConfig = tcp.Config
	// TCPMode selects Reno or DCTCP.
	TCPMode = tcp.Mode
)

// TCP congestion-control modes.
const (
	Reno  = tcp.Reno
	DCTCP = tcp.DCTCP
)

// NewTCP creates a simulated TCP connection on a Network.
func NewTCP(cfg TCPConfig) (*TCPConn, error) { return tcp.New(cfg) }
