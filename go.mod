module github.com/quartz-dcn/quartz

go 1.22
