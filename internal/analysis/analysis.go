// Package analysis computes the topology comparison of the paper's §5
// (Table 9): for five representative ~1000-port network structures
// built from 64-port switches, it reports the zero-load latency, the
// number of switches, the wiring complexity (cross-rack links), and the
// path diversity (maximum edge-disjoint paths, the metric of Teixeira
// et al. [39]).
package analysis

import (
	"fmt"
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// Row is one line of Table 9.
type Row struct {
	Network string
	// SwitchHops and ServerHops are the worst-case shortest-path hop
	// counts between hosts in different racks.
	SwitchHops int
	ServerHops int
	// Latency is the zero-load latency: 0.5 us per switch hop
	// (state-of-the-art cut-through, Table 2) plus 15 us per server
	// forwarding hop.
	Latency sim.Time
	// Switches is the switch count.
	Switches int
	// Wiring is the number of cross-rack links.
	Wiring int
	// Diversity is the path diversity between two hosts in different
	// racks (edge-disjoint switch-level paths).
	Diversity int
	// WDMWiring is the wiring complexity when the topology is
	// implemented as a Quartz WDM ring (mesh only; 0 elsewhere).
	WDMWiring int
}

func (r Row) String() string {
	return fmt.Sprintf("%-12s %6.1fus %2d switch hops %d server hops %3d switches wiring %4d diversity %d",
		r.Network, r.Latency.Micros(), r.SwitchHops, r.ServerHops, r.Switches, r.Wiring, r.Diversity)
}

// Per-hop latencies of Table 9's latency column.
const (
	switchHopLatency = 500 * sim.Nanosecond
	serverHopLatency = 15 * sim.Microsecond
)

// analyze computes a row from a built topology. sample pairs of hosts
// in different racks are examined for worst-case hops and diversity.
func analyze(name string, g *topology.Graph) Row {
	row := Row{Network: name, Switches: len(g.Switches()), Wiring: g.CrossRackLinks()}

	// Worst-case shortest path between hosts in different racks, and
	// the switch/server hop composition of such a path.
	hosts := g.Hosts()
	// Use the first host and find the farthest other-rack host; the
	// topologies here are vertex-transitive enough that this is the
	// worst case.
	src := hosts[0]
	dist := g.BFSDist(src, nil)
	far := src
	for _, h := range hosts {
		if g.Node(h).Rack != g.Node(src).Rack && dist[h] > dist[far] {
			far = h
		}
	}
	path := g.ShortestPath(src, far, nil)
	for _, n := range path[1 : len(path)-1] {
		if g.Node(n).Kind == topology.Switch {
			row.SwitchHops++
		} else {
			row.ServerHops++
		}
	}
	row.Latency = sim.Time(row.SwitchHops)*switchHopLatency + sim.Time(row.ServerHops)*serverHopLatency
	// Path diversity: between the endpoints' ToR switches for
	// single-homed hosts (the network-level metric of [39]); between
	// the hosts themselves for multi-homed server-centric designs
	// (BCube), where the server NICs are the constraint.
	if g.Degree(src) > 1 {
		row.Diversity = g.EdgeDisjointPaths(src, far)
	} else {
		row.Diversity = g.EdgeDisjointPaths(g.ToRof(src), g.ToRof(far))
	}
	return row
}

// Table9Config sizes the comparison; the zero value reproduces the
// paper's ~1k-port setting with 64-port switches.
type Table9Config struct {
	// Rand seeds the Jellyfish topology; required.
	Rand *rand.Rand
}

// Table9 builds the five topologies of §5 at ~1000 usable ports and
// analyzes them. The returned rows are ordered as in the paper:
// 2-tier tree, Fat-Tree, BCube, Jellyfish, Mesh.
func Table9(cfg Table9Config) ([]Row, error) {
	if cfg.Rand == nil {
		return nil, fmt.Errorf("analysis: Table9 requires a Rand")
	}
	var rows []Row

	// 2-tier tree: 16 ToRs of 60 servers + 1 uplink each, to one large
	// root switch: 17 switches, 16 cross-rack links, diversity 1.
	twoTier, err := topology.NewTwoTierTree(topology.TreeConfig{
		ToRs: 16, Roots: 1, HostsPerToR: 60,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, analyze("2-Tier Tree", twoTier))

	// Fat-Tree, as the paper sizes it: a folded-Clos leaf-spine of
	// 64-port switches with full bisection — 32 leaves x 32 servers,
	// each leaf's 32 uplinks spread over 16 spines (two links each):
	// 48 switches, 1024 cross-rack links, diversity 32.
	fatTree, err := topology.NewTwoTierTree(topology.TreeConfig{
		ToRs: 32, Roots: 16, HostsPerToR: 32, UplinksPerRoot: 2,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, analyze("Fat-Tree", fatTree))

	// BCube(32,1): 1024 dual-homed servers over two levels of 32-port
	// switches; forwarding crosses one intermediate server (16 us).
	bcube, err := topology.NewBCube(32, 1, topology.LinkSpec{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, analyze("BCube", bcube))

	// Jellyfish: 24 switches x 40 servers, 20 network ports each
	// (240 random cross-rack links).
	jf, err := topology.NewJellyfish(topology.JellyfishConfig{
		Switches: 24, HostsPerSwitch: 40, NetDegree: 20, Rand: cfg.Rand,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, analyze("Jellyfish", jf))

	// Mesh: the Quartz configuration, 33 switches x 32 servers = 1056
	// ports; 528 direct links, or 33 ring cables with WDM.
	mesh, err := topology.NewFullMesh(topology.MeshConfig{
		Switches: 33, HostsPerSwitch: 32,
	})
	if err != nil {
		return nil, err
	}
	meshRow := analyze("Mesh", mesh)
	meshRow.WDMWiring = 33 // one ring: two fiber cables per switch
	rows = append(rows, meshRow)

	return rows, nil
}

// WiringRow compares physical cabling for the §4.3 random-topology
// designs: Jellyfish's links are all unstructured (switch-to-switch
// runs of arbitrary length), while Quartz-in-Jellyfish keeps most
// connectivity inside WDM rings (two short cables per switch) and only
// the inter-ring links are random.
type WiringRow struct {
	Network string
	// RandomLinks are unstructured cross-datacenter cable runs.
	RandomLinks int
	// StructuredCables are the WDM ring cables (two per switch).
	StructuredCables int
}

// Total returns all physical cables.
func (w WiringRow) Total() int { return w.RandomLinks + w.StructuredCables }

// WiringComparison quantifies §4.3's claim that grouping switches into
// Quartz rings "reduces the number of random connections and therefore
// greatly simplifies the DCN's wiring complexity". Both networks are
// built at the paper's simulated scale: 16 switches, four 10 Gb/s
// network ports each.
func WiringComparison(rng *rand.Rand) ([]WiringRow, error) {
	if rng == nil {
		return nil, fmt.Errorf("analysis: WiringComparison requires a Rand")
	}
	jf, err := topology.NewJellyfish(topology.JellyfishConfig{
		Switches: 16, HostsPerSwitch: 4, NetDegree: 4, Rand: rng,
	})
	if err != nil {
		return nil, err
	}
	jfRandom := 0
	for i := 0; i < jf.NumLinks(); i++ {
		l := jf.Link(topology.LinkID(i))
		if jf.Node(l.A).Kind == topology.Switch && jf.Node(l.B).Kind == topology.Switch {
			jfRandom++
		}
	}
	rows := []WiringRow{{Network: "Jellyfish", RandomLinks: jfRandom}}

	// Quartz-in-Jellyfish: 4 rings of 4 switches; each ring dedicates
	// four links to other rings (16 random links total), and each
	// ring's internal mesh rides a WDM ring: one fiber cable per
	// adjacent switch pair.
	const rings, ringSize = 4, 4
	rows = append(rows, WiringRow{
		Network:          "Quartz in Jellyfish",
		RandomLinks:      rings * 4,
		StructuredCables: rings * ringSize,
	})
	return rows, nil
}
