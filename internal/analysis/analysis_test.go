package analysis

import (
	"math/rand"
	"testing"

	"github.com/quartz-dcn/quartz/internal/sim"
)

func table9(t *testing.T) map[string]Row {
	t.Helper()
	rows, err := Table9(Table9Config{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	m := map[string]Row{}
	for _, r := range rows {
		m[r.Network] = r
	}
	return m
}

func TestTable9TwoTier(t *testing.T) {
	r := table9(t)["2-Tier Tree"]
	// Paper row: 1.5us, 3 switch hops, 17 switches, wiring 16,
	// diversity 1.
	if r.Latency != 1500*sim.Nanosecond || r.SwitchHops != 3 {
		t.Errorf("latency %v / %d hops, want 1.5us / 3", r.Latency, r.SwitchHops)
	}
	if r.Switches != 17 {
		t.Errorf("switches = %d, want 17", r.Switches)
	}
	if r.Wiring != 16 {
		t.Errorf("wiring = %d, want 16", r.Wiring)
	}
	if r.Diversity != 1 {
		t.Errorf("diversity = %d, want 1", r.Diversity)
	}
}

func TestTable9FatTree(t *testing.T) {
	r := table9(t)["Fat-Tree"]
	// Paper row: 1.5us, 3 switch hops, 48 switches, wiring 1024,
	// diversity 32.
	if r.Latency != 1500*sim.Nanosecond || r.SwitchHops != 3 {
		t.Errorf("latency %v / %d hops, want 1.5us / 3", r.Latency, r.SwitchHops)
	}
	if r.Switches != 48 {
		t.Errorf("switches = %d, want 48", r.Switches)
	}
	if r.Wiring != 1024 {
		t.Errorf("wiring = %d, want 1024", r.Wiring)
	}
	if r.Diversity != 32 {
		t.Errorf("diversity = %d, want 32", r.Diversity)
	}
}

func TestTable9BCube(t *testing.T) {
	r := table9(t)["BCube"]
	// Paper row: 16us (2 switch hops & 1 server hop), wiring 960,
	// diversity 2.
	if r.SwitchHops != 2 || r.ServerHops != 1 {
		t.Errorf("hops = %d switch / %d server, want 2/1", r.SwitchHops, r.ServerHops)
	}
	if r.Latency != 16*sim.Microsecond {
		t.Errorf("latency = %v, want 16us", r.Latency)
	}
	if r.Diversity != 2 {
		t.Errorf("diversity = %d, want 2", r.Diversity)
	}
	// Our full BCube(32,1) build has 64 switches (the paper's table
	// lists 32 — it counts only one level); the wiring count lands near
	// the paper's 960.
	if r.Switches != 64 {
		t.Errorf("switches = %d, want 64 (2 levels x 32)", r.Switches)
	}
	if r.Wiring < 900 || r.Wiring > 1024 {
		t.Errorf("wiring = %d, want ~960", r.Wiring)
	}
}

func TestTable9Jellyfish(t *testing.T) {
	r := table9(t)["Jellyfish"]
	// Paper row: 1.5us, 3 switch hops, 24 switches, wiring 240,
	// diversity <= 32.
	if r.Switches != 24 {
		t.Errorf("switches = %d, want 24", r.Switches)
	}
	if r.Wiring < 235 || r.Wiring > 240 {
		t.Errorf("wiring = %d, want ~240", r.Wiring)
	}
	if r.SwitchHops < 2 || r.SwitchHops > 3 {
		t.Errorf("switch hops = %d, want 2-3", r.SwitchHops)
	}
	if r.Diversity < 2 || r.Diversity > 32 {
		t.Errorf("diversity = %d, want in (1, 32]", r.Diversity)
	}
}

func TestTable9Mesh(t *testing.T) {
	r := table9(t)["Mesh"]
	// Paper row: 1.0us, 2 switch hops, 33 switches, wiring 528 (33
	// with WDMs), diversity 32.
	if r.Latency != sim.Microsecond || r.SwitchHops != 2 {
		t.Errorf("latency %v / %d hops, want 1.0us / 2", r.Latency, r.SwitchHops)
	}
	if r.Switches != 33 {
		t.Errorf("switches = %d, want 33", r.Switches)
	}
	if r.Wiring != 528 {
		t.Errorf("wiring = %d, want 528", r.Wiring)
	}
	if r.WDMWiring != 33 {
		t.Errorf("WDM wiring = %d, want 33", r.WDMWiring)
	}
	if r.Diversity != 32 {
		t.Errorf("diversity = %d, want 32", r.Diversity)
	}
}

func TestMeshHasLowestLatencyAndHighestDiversity(t *testing.T) {
	rows := table9(t)
	mesh := rows["Mesh"]
	for name, r := range rows {
		if name == "Mesh" {
			continue
		}
		if r.Latency < mesh.Latency {
			t.Errorf("%s latency %v beats mesh %v", name, r.Latency, mesh.Latency)
		}
		if r.Diversity > mesh.Diversity {
			t.Errorf("%s diversity %d beats mesh %d", name, r.Diversity, mesh.Diversity)
		}
	}
}

func TestTable9RequiresRand(t *testing.T) {
	if _, err := Table9(Table9Config{}); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestRowString(t *testing.T) {
	r := Row{Network: "Mesh", Latency: sim.Microsecond, SwitchHops: 2, Switches: 33, Wiring: 528, Diversity: 32}
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestWiringComparison(t *testing.T) {
	rows, err := WiringComparison(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	jf, qj := rows[0], rows[1]
	// Jellyfish: 16 switches x 4 net ports / 2 = ~32 random runs.
	if jf.RandomLinks < 30 || jf.RandomLinks > 32 {
		t.Errorf("jellyfish random links = %d, want ~32", jf.RandomLinks)
	}
	if jf.StructuredCables != 0 {
		t.Errorf("jellyfish structured cables = %d, want 0", jf.StructuredCables)
	}
	// Quartz-in-Jellyfish halves the random runs (§4.3's claim).
	if qj.RandomLinks*2 > jf.RandomLinks {
		t.Errorf("quartz-in-jellyfish random links = %d, want <= half of %d", qj.RandomLinks, jf.RandomLinks)
	}
	if qj.StructuredCables != 16 {
		t.Errorf("structured cables = %d, want 16 (two per switch... one ring cable per adjacent pair)", qj.StructuredCables)
	}
	if WiringComparisonErr := func() error { _, err := WiringComparison(nil); return err }(); WiringComparisonErr == nil {
		t.Error("nil rng accepted")
	}
}
