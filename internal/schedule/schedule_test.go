package schedule

import (
	"math/rand"
	"testing"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// mesh4 builds a 4-switch mesh with 2 hosts each and a harness.
func mesh4(t testing.TB) (*netsim.Network, *Router, *traffic.Harness, *topology.Graph) {
	t.Helper()
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: 4, HostsPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	router := NewRouter(g, routing.NewECMP(g))
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:     g,
		Router:    router,
		OnDeliver: h.Deliver,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, router, h, g
}

func TestRouterPinOverridesPath(t *testing.T) {
	net, router, h, g := mesh4(t)
	hosts := g.Hosts()
	sw := g.Switches()
	src, dst := hosts[0], hosts[2] // racks 0 and 1
	_ = h

	// Default: direct path, 3 hops (sw0, sw1, host).
	var hops int
	net2, err := netsim.New(netsim.Config{
		Graph:     g,
		Router:    router,
		OnDeliver: func(d netsim.Delivery) { hops = d.Packet.Hops },
	})
	if err != nil {
		t.Fatal(err)
	}
	net2.Unicast(7, src, dst, 400, 0)
	net2.Engine().Run()
	if hops != 3 {
		t.Fatalf("default hops = %d, want 3", hops)
	}

	// Pin flow 7 through switch 2: sw0 -> sw2 -> sw1 -> dst.
	if err := router.Pin(7, []topology.NodeID{sw[0], sw[2], sw[1], dst}); err != nil {
		t.Fatal(err)
	}
	if router.Pinned() != 1 {
		t.Errorf("Pinned = %d, want 1", router.Pinned())
	}
	net2.Unicast(7, src, dst, 400, 0)
	net2.Engine().Run()
	if hops != 4 {
		t.Errorf("pinned hops = %d, want 4 (detour)", hops)
	}

	// Unpin restores the direct path.
	router.Unpin(7)
	net2.Unicast(7, src, dst, 400, 0)
	net2.Engine().Run()
	if hops != 3 {
		t.Errorf("unpinned hops = %d, want 3", hops)
	}
	_ = net
}

func TestRouterPinValidation(t *testing.T) {
	_, router, _, g := mesh4(t)
	sw := g.Switches()
	if err := router.Pin(1, []topology.NodeID{sw[0]}); err == nil {
		t.Error("short path accepted")
	}
	// sw0 -> host of rack 1: no direct link.
	if err := router.Pin(1, []topology.NodeID{sw[0], g.HostsInRack(1)[0]}); err == nil {
		t.Error("nonexistent link accepted")
	}
	if router.Name() != "scheduled(ecmp)" {
		t.Errorf("Name = %q", router.Name())
	}
}

func TestSchedulerMovesFlowsOffHotPorts(t *testing.T) {
	// Saturate the sw0-sw1 channel with two flows; the scheduler should
	// move at least one of them to a two-hop detour, raising delivered
	// throughput.
	g, err := topology.NewFullMesh(topology.MeshConfig{
		Switches: 4, HostsPerSwitch: 2,
		MeshLink: topology.LinkSpec{Rate: 1 * sim.Gbps},
		HostLink: topology.LinkSpec{Rate: 10 * sim.Gbps},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(withScheduler bool) (delivered uint64, moves int) {
		router := NewRouter(g, routing.NewECMP(g))
		h := traffic.NewHarness()
		net, err := netsim.New(netsim.Config{
			Graph:     g,
			Router:    router,
			OnDeliver: h.Deliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		srcs := g.HostsInRack(0)
		dsts := g.HostsInRack(1)
		rng := rand.New(rand.NewSource(5))
		var flows []FlowInfo
		const end = 10 * sim.Millisecond
		for i := range srcs {
			st := &traffic.Stream{
				Net: net, Src: srcs[i], Dst: dsts[i],
				Flow: routing.FlowID(i + 1), RatePPS: 300e3, Size: 400, Tag: i + 1,
				Rand: rand.New(rand.NewSource(rng.Int63())),
			}
			if err := st.Start(end); err != nil {
				t.Fatal(err)
			}
			flows = append(flows, FlowInfo{Flow: routing.FlowID(i + 1), Src: srcs[i], Dst: dsts[i]})
		}
		var sched *Scheduler
		if withScheduler {
			sched = New(net, router, flows)
			sched.Start(end)
		}
		net.Engine().RunUntil(end + sim.Millisecond)
		if sched != nil {
			moves = sched.Moves()
		}
		return net.Delivered(), moves
	}
	// Two 0.96 Gb/s flows into a 1 Gb/s channel: ~half the packets
	// queue without scheduling (latency) and the port saturates.
	base, _ := run(false)
	scheduled, moves := run(true)
	if moves == 0 {
		t.Fatal("scheduler never moved a flow off the hot port")
	}
	if scheduled < base {
		t.Errorf("scheduled delivered %d < unscheduled %d", scheduled, base)
	}
}

func TestSchedulerNoMovesWhenIdle(t *testing.T) {
	net, router, _, g := mesh4(t)
	hosts := g.Hosts()
	st := &traffic.Stream{
		Net: net, Src: hosts[0], Dst: hosts[7],
		Flow: 1, RatePPS: 1e4, Tag: 1,
		Rand: rand.New(rand.NewSource(1)),
	}
	const end = 5 * sim.Millisecond
	if err := st.Start(end); err != nil {
		t.Fatal(err)
	}
	sched := New(net, router, []FlowInfo{{Flow: 1, Src: hosts[0], Dst: hosts[7]}})
	sched.Start(end)
	net.Engine().RunUntil(end + sim.Millisecond)
	if sched.Moves() != 0 {
		t.Errorf("scheduler moved %d flows on an idle network", sched.Moves())
	}
}
