// Package schedule implements a Hedera/DeTail-style centralized flow
// scheduler on top of the packet simulator — the class of systems the
// paper positions itself against in §2.1.4 ("DeTail reduces network
// latency by detecting congestion and selecting alternative uncongested
// paths", Hedera performs "network-wide flow scheduling").
//
// The scheduler periodically samples port utilization, identifies the
// flows pinned to the hottest ports, and re-pins them to the
// least-loaded of their alternative equal-cost paths. It exists both as
// a usable congestion-aware router and as the experimental apparatus
// for the paper's argument that such schedulers are "limited by the
// amount of path diversity in the underlying network topology": on a
// 2-tier tree there is nowhere to move a flow; on a Quartz mesh with
// VLB there always is.
package schedule

import (
	"fmt"
	"sort"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// Router is a routing.Router whose per-flow path choices can be
// overridden at runtime by the scheduler. Unscheduled flows fall back
// to the base router.
type Router struct {
	base routing.Router
	g    *topology.Graph
	// overrides pins a flow to an explicit node path (switch-level,
	// ending at the destination host).
	overrides map[routing.FlowID][]topology.NodeID
}

// NewRouter wraps base with an override table.
func NewRouter(g *topology.Graph, base routing.Router) *Router {
	return &Router{base: base, g: g, overrides: make(map[routing.FlowID][]topology.NodeID)}
}

// Name implements routing.Router.
func (r *Router) Name() string { return "scheduled(" + r.base.Name() + ")" }

// Pin forces a flow onto the given node path (from the source's ToR to
// the destination host, inclusive). The path's links must exist.
func (r *Router) Pin(f routing.FlowID, path []topology.NodeID) error {
	if len(path) < 2 {
		return fmt.Errorf("schedule: path too short")
	}
	for i := 0; i+1 < len(path); i++ {
		if _, ok := r.g.FindLink(path[i], path[i+1]); !ok {
			return fmt.Errorf("schedule: no link %d-%d on pinned path", path[i], path[i+1])
		}
	}
	r.overrides[f] = path
	return nil
}

// Unpin removes a flow's override.
func (r *Router) Unpin(f routing.FlowID) { delete(r.overrides, f) }

// Pinned returns the number of overridden flows.
func (r *Router) Pinned() int { return len(r.overrides) }

// NextPort implements routing.Router.
func (r *Router) NextPort(n topology.NodeID, pkt routing.PacketMeta) (topology.Port, error) {
	path, ok := r.overrides[pkt.Flow]
	if !ok {
		return r.base.NextPort(n, pkt)
	}
	for i, node := range path[:len(path)-1] {
		if node == n {
			next := path[i+1]
			for _, p := range r.g.Ports(n) {
				if p.Peer == next {
					return p, nil
				}
			}
			return topology.Port{}, fmt.Errorf("schedule: missing link on pinned path at %d", n)
		}
	}
	// Off the pinned path (e.g. the source host itself): defer to base.
	return r.base.NextPort(n, pkt)
}

// FlowInfo registers a flow with the scheduler: its endpoints, so
// alternative paths can be computed.
type FlowInfo struct {
	Flow     routing.FlowID
	Src, Dst topology.NodeID
}

// Scheduler periodically rebalances registered flows away from hot
// ports.
type Scheduler struct {
	net    *netsim.Network
	router *Router
	g      *topology.Graph
	flows  []FlowInfo
	// Interval between scheduling rounds.
	Interval sim.Time
	// HotUtilization is the port busy-fraction above which flows are
	// moved (default 0.7).
	HotUtilization float64
	// MaxAlternatives bounds the k-shortest-path search per flow.
	MaxAlternatives int

	lastStats map[statKey]portSnapshot
	lastAt    sim.Time
	moves     int
}

type statKey struct {
	link topology.LinkID
	from topology.NodeID
}

type portSnapshot struct {
	busy sim.Time
}

// New creates a scheduler over the given network and scheduled router.
func New(net *netsim.Network, router *Router, flows []FlowInfo) *Scheduler {
	return &Scheduler{
		net:             net,
		router:          router,
		g:               net.Graph(),
		flows:           flows,
		Interval:        500 * sim.Microsecond,
		HotUtilization:  0.7,
		MaxAlternatives: 4,
		lastStats:       make(map[statKey]portSnapshot),
	}
}

// Moves returns how many flow re-pins the scheduler has performed.
func (s *Scheduler) Moves() int { return s.moves }

// Start arms the periodic scheduling loop until the given absolute
// virtual time.
func (s *Scheduler) Start(until sim.Time) {
	eng := s.net.Engine()
	var tick func()
	tick = func() {
		if eng.Now() >= until {
			return
		}
		s.round()
		eng.After(s.Interval, tick)
	}
	eng.After(s.Interval, tick)
}

// round performs one scheduling pass: find hot ports since the last
// round and move one flow off each.
func (s *Scheduler) round() {
	now := s.net.Engine().Now()
	window := now - s.lastAt
	stats := s.net.Stats()
	hot := make(map[statKey]bool)
	for _, ps := range stats {
		key := statKey{ps.Link, ps.From}
		prev := s.lastStats[key]
		if window > 0 {
			busyFrac := (ps.BusyTime - prev.busy).Seconds() / window.Seconds()
			if busyFrac >= s.HotUtilization {
				hot[key] = true
			}
		}
		s.lastStats[key] = portSnapshot{busy: ps.BusyTime}
	}
	s.lastAt = now
	if len(hot) == 0 {
		return
	}
	// Move each flow whose current path crosses a hot port to its
	// coolest alternative.
	for _, f := range s.flows {
		cur := s.currentPath(f)
		if cur == nil || !s.pathHot(cur, hot) {
			continue
		}
		if alt := s.coolestAlternative(f, hot); alt != nil {
			if err := s.router.Pin(f.Flow, alt); err == nil {
				s.moves++
			}
		}
	}
}

// currentPath reconstructs the switch-level path flow f takes now.
func (s *Scheduler) currentPath(f FlowInfo) []topology.NodeID {
	n := s.g.ToRof(f.Src)
	pkt := routing.PacketMeta{Flow: f.Flow, Src: f.Src, Dst: f.Dst, Waypoint: -1}
	path := []topology.NodeID{n}
	for hops := 0; hops < 16; hops++ {
		port, err := s.router.NextPort(n, pkt)
		if err != nil {
			return nil
		}
		path = append(path, port.Peer)
		if port.Peer == f.Dst {
			return path
		}
		n = port.Peer
	}
	return nil
}

// pathHot reports whether any hop of the path crosses a hot port.
func (s *Scheduler) pathHot(path []topology.NodeID, hot map[statKey]bool) bool {
	for i := 0; i+1 < len(path); i++ {
		l, ok := s.g.FindLink(path[i], path[i+1])
		if !ok {
			continue
		}
		if hot[statKey{l.ID, path[i]}] {
			return true
		}
	}
	return false
}

// coolestAlternative returns a loop-free alternative path avoiding hot
// ports, or nil if none exists — the "limited by path diversity" case.
func (s *Scheduler) coolestAlternative(f FlowInfo, hot map[statKey]bool) []topology.NodeID {
	alts := routing.KShortestPaths(s.g, s.g.ToRof(f.Src), f.Dst, s.MaxAlternatives)
	sort.SliceStable(alts, func(i, j int) bool { return len(alts[i]) < len(alts[j]) })
	for _, alt := range alts {
		if !s.pathHot(alt, hot) {
			return alt
		}
	}
	return nil
}
