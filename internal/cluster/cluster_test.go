package cluster_test

// Cluster integration tests: real service.Service instances fronted by
// httptest servers play the workers, a Coordinator wired into another
// service plays the coordinator — the full production path minus TCP
// ports. The load-bearing assertion everywhere: cluster output is
// byte-identical to a single process, for every worker count and
// through worker death.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/quartz-dcn/quartz/internal/cluster"
	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/service"
)

// testParams keeps the real experiments quick: enough trials to
// exercise every cell, few enough that a 4-variant sweep suite stays
// inside CI budgets.
func testParams() service.ParamSpec { return service.ParamSpec{Seed: 7, Trials: 40} }

// newWorker stands up one worker daemon: a real service over the real
// experiments registry (or lookup), wrapped by tamper when non-nil.
func newWorker(t *testing.T, lookup func(string) (experiments.Experiment, bool), tamper func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	s := service.New(service.Config{QueueCapacity: 32, Workers: 1, Lookup: lookup})
	h := http.Handler(s.Handler(nil))
	if tamper != nil {
		h = tamper(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return ts
}

// newCoordinator stands up the coordinator tier over the given worker
// URLs: a Coordinator plus the service that fronts it.
func newCoordinator(t *testing.T, lookup func(string) (experiments.Experiment, bool), workerURLs []string) (*cluster.Coordinator, *service.Service, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	coord := cluster.New(cluster.Config{
		Workers:           workerURLs,
		HeartbeatInterval: 50 * time.Millisecond,
		PollInterval:      2 * time.Millisecond,
		Registry:          reg,
	})
	s := service.New(service.Config{QueueCapacity: 16, Workers: 2, Lookup: coord.WrapLookup(lookup), Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		coord.Close()
	})
	return coord, s, reg
}

// runCluster executes one experiment through a fresh cluster of n
// workers and returns its output.
func runCluster(t *testing.T, name string, workers int, tamper func(i int, h http.Handler) http.Handler) experiments.Output {
	t.Helper()
	urls := make([]string, workers)
	for i := range urls {
		var wrap func(http.Handler) http.Handler
		if tamper != nil {
			i := i
			wrap = func(h http.Handler) http.Handler { return tamper(i, h) }
		}
		urls[i] = newWorker(t, nil, wrap).URL
	}
	_, s, _ := newCoordinator(t, nil, urls)
	j, err := s.Submit(service.Request{Experiment: name, Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("cluster job for %s never finished: %v", name, err)
	}
	out, errMsg := j.Output()
	if errMsg != "" {
		t.Fatalf("cluster job for %s failed: %s", name, errMsg)
	}
	return out
}

// runSingle executes the same experiment in-process, the byte-identity
// baseline.
func runSingle(t *testing.T, name string) experiments.Output {
	t.Helper()
	exp, ok := experiments.Find(name)
	if !ok {
		t.Fatalf("no experiment %q", name)
	}
	p := testParams().Params().WithDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	out, err := exp.Run(ctx, p)
	if err != nil {
		t.Fatalf("single-process %s: %v", name, err)
	}
	return out
}

// TestClusterMergeByteIdentical: for table8 and the ablation suite,
// cluster output at worker counts {1, 2, 4} is byte-identical to the
// single-process run — the tentpole determinism guarantee.
func TestClusterMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations across 3 worker counts")
	}
	for _, name := range []string{"table8", "ablations"} {
		want := runSingle(t, name)
		for _, workers := range []int{1, 2, 4} {
			got := runCluster(t, name, workers, nil)
			if got.Text != want.Text {
				t.Errorf("%s with %d workers: text differs from single-process run\nsingle:\n%s\ncluster:\n%s",
					name, workers, want.Text, got.Text)
			}
			if !reflect.DeepEqual(got.CSV, want.CSV) {
				t.Errorf("%s with %d workers: CSV tables differ from single-process run", name, workers)
			}
		}
	}
}

// flakyHandler serves its worker's first sub-job submission, then
// fails every request — the "worker killed mid-sweep" fault: the
// coordinator loses the poll, requeues the range, and the survivor
// finishes the sweep.
type flakyHandler struct {
	inner http.Handler

	mu      sync.Mutex
	submits int
	broken  bool
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if f.broken {
		f.mu.Unlock()
		http.Error(w, "injected worker death", http.StatusInternalServerError)
		return
	}
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/jobs") {
		f.submits++
		if f.submits == 1 {
			f.broken = true // serve this submission, then go dark
		}
	}
	f.mu.Unlock()
	f.inner.ServeHTTP(w, r)
}

// TestClusterWorkerDeathMidSweep: killing one of two workers mid-sweep
// requeues only its unfinished ranges; the result is still
// byte-identical to the single-process run and the retry path is
// visibly taken.
func TestClusterWorkerDeathMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	want := runSingle(t, "table8")

	healthy := newWorker(t, nil, nil)
	fl := &flakyHandler{}
	flakyTS := newWorker(t, nil, func(h http.Handler) http.Handler {
		fl.inner = h
		return fl
	})
	_, s, reg := newCoordinator(t, nil, []string{healthy.URL, flakyTS.URL})

	j, err := s.Submit(service.Request{Experiment: "table8", Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job never finished: %v", err)
	}
	out, errMsg := j.Output()
	if errMsg != "" {
		t.Fatalf("sweep failed despite a surviving worker: %s", errMsg)
	}
	if out.Text != want.Text {
		t.Errorf("output after worker death differs from single-process run\nsingle:\n%s\ncluster:\n%s", want.Text, out.Text)
	}
	if got := seriesValue(t, reg, "quartzd_cluster_retries_total", nil); got < 1 {
		t.Errorf("retries_total = %v, want >= 1 (range requeued off the dead worker)", got)
	}
}

// seriesValue reads one metric series out of a registry snapshot.
func seriesValue(t *testing.T, reg *metrics.Registry, name string, labels metrics.Labels) float64 {
	t.Helper()
	for _, s := range reg.Snapshot().Series {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("no series %s %v in snapshot", name, labels)
	return 0
}

// stubLookup builds a synthetic sweep experiment "grid": cells cells,
// value seed*1000+index, optional per-cell delay so progress is
// observable in flight.
func stubLookup(cells int, perCell time.Duration) func(string) (experiments.Experiment, bool) {
	sw := &experiments.Sweep{
		Cells: func(experiments.Params) int { return cells },
		RunCells: func(ctx context.Context, p experiments.Params, lo, hi int) (experiments.CellBlock, error) {
			vals := make([]int64, hi-lo)
			for k := range vals {
				if perCell > 0 {
					select {
					case <-ctx.Done():
						return experiments.CellBlock{}, ctx.Err()
					case <-time.After(perCell):
					}
				}
				vals[k] = p.Seed*1000 + int64(lo+k)
				if p.Progress != nil {
					p.Progress(k+1, hi-lo)
				}
			}
			data, err := json.Marshal(vals)
			if err != nil {
				return experiments.CellBlock{}, err
			}
			return experiments.CellBlock{Lo: lo, Hi: hi, Data: data}, nil
		},
		Merge: func(_ experiments.Params, blocks []experiments.CellBlock) (experiments.Output, error) {
			var all []int64
			for _, b := range blocks {
				var part []int64
				if err := json.Unmarshal(b.Data, &part); err != nil {
					return experiments.Output{}, err
				}
				all = append(all, part...)
			}
			return experiments.Output{Text: fmt.Sprintf("grid=%v", all)}, nil
		},
	}
	return func(name string) (experiments.Experiment, bool) {
		if name != "grid" {
			return experiments.Experiment{}, false
		}
		return experiments.Experiment{Name: "grid", Run: sw.Run, Sweep: sw}, true
	}
}

// TestClusterSSEAggregatesProgress: one SSE subscription on the
// coordinator watches the whole fan-out — progress events cover the
// full grid, not one worker's share.
func TestClusterSSEAggregatesProgress(t *testing.T) {
	lookup := stubLookup(16, 2*time.Millisecond)
	w1 := newWorker(t, lookup, nil)
	w2 := newWorker(t, lookup, nil)
	_, s, _ := newCoordinator(t, lookup, []string{w1.URL, w2.URL})
	ts := httptest.NewServer(s.Handler(nil))
	t.Cleanup(ts.Close)

	j, err := s.Submit(service.Request{Experiment: "grid", Params: service.ParamSpec{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + j.ID() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawFullGrid, sawDone bool
	buf := make([]byte, 4096)
	var stream strings.Builder
	for {
		n, rerr := resp.Body.Read(buf)
		stream.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	for _, line := range strings.Split(stream.String(), "\n") {
		if strings.HasPrefix(line, "data: ") {
			if strings.Contains(line, `"total":16`) {
				sawFullGrid = true
			}
			if strings.Contains(line, `"state":"done"`) {
				sawDone = true
			}
		}
	}
	if !sawFullGrid {
		t.Errorf("no progress event against the full 16-cell grid:\n%s", stream.String())
	}
	if !sawDone {
		t.Errorf("stream closed without a terminal state event:\n%s", stream.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	out, _ := j.Output()
	if !strings.HasPrefix(out.Text, "grid=[5000 5001") {
		t.Errorf("merged output wrong: %.60q", out.Text)
	}
}

// TestClusterSharedCacheTier: a worker that already computed a cell
// range serves it from its LRU on the next sweep — the coordinator's
// second fan-out completes without recomputation (observable as worker
// cache hits).
func TestClusterSharedCacheTier(t *testing.T) {
	lookup := stubLookup(8, 0)
	w := newWorker(t, lookup, nil)
	_, s, _ := newCoordinator(t, lookup, []string{w.URL})

	submit := func() *service.Job {
		t.Helper()
		// NoCache on the coordinator forces re-dispatch; the workers'
		// block caches are the tier under test.
		j, err := s.Submit(service.Request{Experiment: "grid", Params: service.ParamSpec{Seed: 9}, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		return j
	}
	first := submit()
	second := submit()
	fo, _ := first.Output()
	so, _ := second.Output()
	if fo.Text != so.Text {
		t.Fatalf("re-dispatched sweep output differs: %q vs %q", fo.Text, so.Text)
	}
	// The worker answered the second sweep's ranges from its cache.
	resp, err := http.Get(w.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var hits float64
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "quartzd_cache_hits_total") {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &hits)
		}
	}
	if hits < 1 {
		t.Errorf("worker cache hits = %v, want >= 1 (shared cache tier)", hits)
	}
}

// TestClusterRegistration: a worker joins dynamically through the
// Registrar loop and immediately serves sweeps.
func TestClusterRegistration(t *testing.T) {
	lookup := stubLookup(8, 0)
	coord, s, _ := newCoordinator(t, lookup, nil)
	ch := httptest.NewServer(coord.Handler())
	t.Cleanup(ch.Close)
	w := newWorker(t, lookup, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rg := &cluster.Registrar{Coordinator: ch.URL, Advertise: w.URL, Interval: 10 * time.Millisecond}
	go rg.Run(ctx)

	deadline := time.Now().Add(10 * time.Second)
	for {
		ws := coord.WorkersSnapshot()
		if len(ws) == 1 && ws[0].URL == w.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: %+v", ws)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Registration is idempotent: the loop keeps announcing, the set
	// stays at one.
	time.Sleep(50 * time.Millisecond)
	if ws := coord.WorkersSnapshot(); len(ws) != 1 {
		t.Fatalf("re-registration duplicated the worker: %+v", ws)
	}

	j, err := s.Submit(service.Request{Experiment: "grid", Params: service.ParamSpec{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := j.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	if out, errMsg := j.Output(); errMsg != "" || !strings.HasPrefix(out.Text, "grid=[2000") {
		t.Fatalf("sweep on registered worker: %q / %q", out.Text, errMsg)
	}
}

// TestClusterNoWorkers: a sweep with nothing to run on fails fast with
// ErrNoWorkers instead of hanging.
func TestClusterNoWorkers(t *testing.T) {
	lookup := stubLookup(4, 0)
	_, s, _ := newCoordinator(t, lookup, nil)
	j, err := s.Submit(service.Request{Experiment: "grid", Params: service.ParamSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, errMsg := j.Output(); !strings.Contains(errMsg, cluster.ErrNoWorkers.Error()) {
		t.Errorf("error = %q, want ErrNoWorkers", errMsg)
	}
}

// TestClusterRaceStress hammers registration, heartbeat, snapshotting,
// and dispatch-with-requeue concurrently — meaningful under -race
// (make verify runs this package with the detector on). A permanently
// dead worker keeps the requeue path hot on every sweep.
func TestClusterRaceStress(t *testing.T) {
	lookup := stubLookup(32, 0)
	w1 := newWorker(t, lookup, nil)
	w2 := newWorker(t, lookup, nil)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "always down", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	reg := metrics.NewRegistry()
	coord := cluster.New(cluster.Config{
		Workers:           []string{w1.URL, w2.URL, dead.URL},
		HeartbeatInterval: 2 * time.Millisecond,
		PollInterval:      time.Millisecond,
		Registry:          reg,
	})
	s := service.New(service.Config{QueueCapacity: 32, Workers: 2, Lookup: coord.WrapLookup(lookup), Registry: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		coord.Close()
	})

	var wg sync.WaitGroup
	// Churn the membership: repeated idempotent re-registration plus
	// snapshot readers, racing the heartbeat monitors.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				coord.AddWorker(w1.URL)
				coord.AddWorker(dead.URL)
				_ = coord.WorkersSnapshot()
			}
		}()
	}
	// Concurrent sweeps, each forced to execute (distinct seeds) and
	// each hitting the dead worker's requeue path.
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			j, err := s.Submit(service.Request{Experiment: "grid", Params: service.ParamSpec{Seed: seed}})
			if err != nil {
				errs <- err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := j.Wait(ctx); err != nil {
				errs <- err
				return
			}
			if _, errMsg := j.Output(); errMsg != "" {
				errs <- errors.New(errMsg)
			}
		}(int64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("stress sweep: %v", err)
	}
}
