package cluster

// The sweep fan-out engine: chunk the cell grid, queue the ranges,
// run one dispatcher per alive worker, merge the blocks in cell order.
// Requeueing is the only failure-handling mechanism — a dispatcher
// that hits a retryable error puts its range back, marks its worker
// dead, and exits; the surviving dispatchers drain the queue.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/service"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// cellRange is one dispatch unit: sweep cells [lo, hi).
type cellRange struct {
	lo, hi int
}

// WrapLookup returns an experiment Lookup for the coordinator's own
// service: sweep-shaped experiments have their Run replaced by the
// cluster fan-out, everything else passes through and runs locally.
// The wrapped entry drops its Sweep so the coordinator's service
// rejects cell-range sub-jobs (those belong on workers; accepting one
// here would recurse the dispatch).
func (c *Coordinator) WrapLookup(next func(string) (experiments.Experiment, bool)) func(string) (experiments.Experiment, bool) {
	if next == nil {
		next = experiments.Find
	}
	return func(name string) (experiments.Experiment, bool) {
		exp, ok := next(name)
		if !ok || exp.Sweep == nil {
			return exp, ok
		}
		sw := exp.Sweep
		exp.Sweep = nil
		exp.Run = func(ctx context.Context, p experiments.Params) (experiments.Output, error) {
			return c.RunSweep(ctx, name, sw, p)
		}
		return exp, true
	}
}

// dispatchState is one sweep's shared bookkeeping. blocks and the
// progress fields are guarded by mu; remaining counts undone ranges
// and done closes when it reaches zero.
type dispatchState struct {
	name  string
	cells int
	queue chan cellRange

	mu        sync.Mutex
	blocks    []experiments.CellBlock
	remaining int
	inflight  map[int]int // range lo → cells done so far (progress)
	finished  int         // cells in completed ranges
	err       error

	done   chan struct{}
	cancel context.CancelFunc
	report func(done, total int) // Params.Progress, may be nil
}

// complete records one finished block and its progress contribution.
func (d *dispatchState) complete(r cellRange, b experiments.CellBlock) {
	d.mu.Lock()
	d.blocks = append(d.blocks, b)
	d.finished += r.hi - r.lo
	delete(d.inflight, r.lo)
	d.remaining--
	last := d.remaining == 0
	d.mu.Unlock()
	d.tick()
	if last {
		close(d.done)
	}
}

// note records a partial progress observation for an in-flight range.
func (d *dispatchState) note(r cellRange, cellsDone int) {
	d.mu.Lock()
	d.inflight[r.lo] = min(cellsDone, r.hi-r.lo)
	d.mu.Unlock()
	d.tick()
}

// tick reports aggregate progress: cells in completed ranges plus the
// in-flight partials, over the whole grid.
func (d *dispatchState) tick() {
	if d.report == nil {
		return
	}
	d.mu.Lock()
	done := d.finished
	for _, v := range d.inflight {
		done += v
	}
	d.mu.Unlock()
	d.report(done, d.cells)
}

// fail records the first fatal error and cancels the sweep.
func (d *dispatchState) fail(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
	d.cancel()
}

func (d *dispatchState) getErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

func (d *dispatchState) pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.remaining
}

// RunSweep executes one sweep across the cluster: shard the grid,
// dispatch, merge. It is the Run of every sweep experiment on a
// coordinator (see WrapLookup), so the coordinator's result cache and
// job machinery wrap it exactly as they wrap a local run.
func (c *Coordinator) RunSweep(ctx context.Context, name string, sw *experiments.Sweep, p experiments.Params) (experiments.Output, error) {
	rec := p.Trace
	start := time.Now()
	n := sw.Cells(p)
	workers := c.alive()
	if len(workers) == 0 {
		c.mSweeps["failed"].Inc()
		return experiments.Output{}, fmt.Errorf("%w (experiment %s)", ErrNoWorkers, name)
	}
	// Chunk to ~2 ranges per worker: coarse enough that per-range HTTP
	// overhead stays negligible, fine enough that a straggler worker
	// sheds load to idle peers and a death costs at most half a
	// worker's share.
	chunk := max(1, (n+2*len(workers)-1)/(2*len(workers)))
	var ranges []cellRange
	for lo := 0; lo < n; lo += chunk {
		ranges = append(ranges, cellRange{lo: lo, hi: min(lo+chunk, n)})
	}

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	d := &dispatchState{
		name:      name,
		cells:     n,
		queue:     make(chan cellRange, len(ranges)),
		remaining: len(ranges),
		inflight:  make(map[int]int),
		done:      make(chan struct{}),
		cancel:    cancel,
		report:    p.Progress,
	}
	for _, r := range ranges {
		d.queue <- r
	}

	var wg sync.WaitGroup
	allExited := make(chan struct{})
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.dispatcher(dctx, w, d, p)
		}(w)
	}
	go func() {
		wg.Wait()
		close(allExited)
	}()

	var failErr error
	select {
	case <-d.done:
	case <-allExited:
		failErr = d.getErr()
		if failErr == nil {
			failErr = fmt.Errorf("cluster: %s: every worker died with %d ranges pending", name, d.pending())
		}
	case <-dctx.Done():
		failErr = d.getErr()
		if failErr == nil {
			failErr = ctx.Err()
		}
	}
	cancel()
	wg.Wait() // dispatchers observe dctx and unwind
	rec.Add(trace.Span{
		Name: "dispatch", Cat: "cluster", Track: trace.CoordinatorTrack,
		Wall: rec.Since(start), WallDur: time.Since(start).Nanoseconds(),
	}.Annotate("workers", int64(len(workers))).Annotate("ranges", int64(len(ranges))).Annotate("cells", int64(n)))
	if failErr != nil {
		c.mSweeps["failed"].Inc()
		return experiments.Output{}, failErr
	}

	d.mu.Lock()
	blocks := append([]experiments.CellBlock(nil), d.blocks...)
	d.mu.Unlock()
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Lo < blocks[j].Lo })
	mstart := time.Now()
	out, err := sw.Merge(p, blocks)
	rec.Add(trace.Span{
		Name: "merge", Cat: "cluster", Track: trace.CoordinatorTrack,
		Wall: rec.Since(mstart), WallDur: time.Since(mstart).Nanoseconds(),
	}.Annotate("blocks", int64(len(blocks))))
	if err != nil {
		c.mSweeps["failed"].Inc()
		return experiments.Output{}, fmt.Errorf("cluster: %s: %w", name, err)
	}
	c.mCells.Add(uint64(n))
	c.mSweeps["done"].Inc()
	return out, nil
}

// dispatcher drains the range queue against one worker until the
// queue is idle-forever (sweep done, dctx cancelled) or the worker
// fails. Retryable failures requeue the range and kill the
// dispatcher; fatal ones kill the sweep.
func (c *Coordinator) dispatcher(dctx context.Context, w *worker, d *dispatchState, p experiments.Params) {
	for {
		select {
		case <-dctx.Done():
			return
		case r := <-d.queue:
			c.mDispatches.Inc()
			block, rerr := c.runRange(dctx, w, d, p, r)
			if rerr == nil {
				d.complete(r, block)
				continue
			}
			if rerr.fatal {
				d.fail(fmt.Errorf("cluster: %s cells [%d,%d) on %s: %w", d.name, r.lo, r.hi, w.url, rerr.err))
				return
			}
			if dctx.Err() != nil {
				return // cancelled mid-range; not a worker fault
			}
			// Retryable: back on the queue for a survivor, worker dead
			// until its heartbeat revives it.
			c.mRetries.Inc()
			w.markDead(rerr.err)
			p.Trace.Add(trace.Span{Name: "retry", Cat: "cluster", Track: trace.CoordinatorTrack}.
				Annotate("lo", int64(r.lo)).Annotate("hi", int64(r.hi)))
			d.queue <- r
			return
		}
	}
}

// rangeErr classifies a range failure: fatal errors abort the sweep,
// retryable ones requeue the range.
type rangeErr struct {
	err   error
	fatal bool
}

func retryable(err error) *rangeErr { return &rangeErr{err: err} }
func fatal(err error) *rangeErr     { return &rangeErr{err: err, fatal: true} }

// runRange executes one cell range on one worker: submit (honoring
// 429 backpressure), poll to terminal, fetch and decode the block.
func (c *Coordinator) runRange(dctx context.Context, w *worker, d *dispatchState, p experiments.Params, r cellRange) (experiments.CellBlock, *rangeErr) {
	rstart := time.Now()
	var view service.View
	for {
		v, status, retryAfter, errMsg, err := c.submitCells(dctx, w.url, d.name, p, r)
		if err != nil {
			return experiments.CellBlock{}, retryable(err)
		}
		switch {
		case status < 300:
			view = v
		case status == http.StatusTooManyRequests:
			// Worker queue full: honor its jittered Retry-After, then
			// offer the range again. The worker is healthy — just busy —
			// so this stays on the same dispatcher.
			if retryAfter <= 0 {
				retryAfter = time.Second
			}
			select {
			case <-dctx.Done():
				return experiments.CellBlock{}, retryable(dctx.Err())
			case <-time.After(retryAfter):
			}
			continue
		case status >= 500:
			// Draining (503) or a broken daemon (5xx): the worker is the
			// problem, not the cells.
			return experiments.CellBlock{}, retryable(fmt.Errorf("submit failed (HTTP %d): %s", status, errMsg))
		default:
			// 400/404: the worker disagrees about the experiment or the
			// grid — a deployment mismatch no retry fixes.
			return experiments.CellBlock{}, fatal(fmt.Errorf("submit rejected (HTTP %d): %s", status, errMsg))
		}
		break
	}

	for !view.State.Terminal() {
		select {
		case <-dctx.Done():
			c.cancelJob(w.url, view.ID)
			return experiments.CellBlock{}, retryable(dctx.Err())
		case <-time.After(c.cfg.PollInterval):
		}
		v, err := c.getJob(dctx, w.url, view.ID)
		if err != nil {
			return experiments.CellBlock{}, retryable(err)
		}
		view = v
		if view.Progress != nil {
			d.note(r, view.Progress.Done)
		}
	}

	switch {
	case view.State == service.StateDone:
		res, err := c.getResult(dctx, w.url, view.ID)
		if err != nil {
			return experiments.CellBlock{}, retryable(err)
		}
		block, err := experiments.DecodeBlock(res.Text)
		if err != nil {
			return experiments.CellBlock{}, fatal(fmt.Errorf("job %s: %w", view.ID, err))
		}
		if block.Lo != r.lo || block.Hi != r.hi {
			return experiments.CellBlock{}, fatal(fmt.Errorf("job %s returned cells [%d,%d), want [%d,%d)", view.ID, block.Lo, block.Hi, r.lo, r.hi))
		}
		p.Trace.Add(trace.Span{
			Name: "cell-range", Cat: "cluster", Track: r.lo,
			Wall: p.Trace.Since(rstart), WallDur: time.Since(rstart).Nanoseconds(),
		}.Annotate("lo", int64(r.lo)).Annotate("hi", int64(r.hi)))
		return block, nil
	case strings.Contains(view.Error, "deadline"):
		// The worker timed the sub-job out — an overloaded or wedged
		// daemon, not a property of the cells. Another worker may finish
		// in time.
		return experiments.CellBlock{}, retryable(fmt.Errorf("job %s: %s", view.ID, view.Error))
	case view.State == service.StateCancelled:
		return experiments.CellBlock{}, retryable(fmt.Errorf("job %s cancelled on the worker", view.ID))
	default:
		// A real experiment failure is deterministic: it would fail the
		// same way on every worker, so retrying it is pure waste.
		return experiments.CellBlock{}, fatal(errors.New(view.Error))
	}
}
