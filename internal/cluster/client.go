package cluster

// The coordinator's client side of the worker protocol: plain quartzd
// HTTP JSON calls (the worker runs no cluster code). Every call gets
// its own deadline from Config.RequestTimeout layered under the
// caller's context.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/service"
)

// resultView mirrors the worker's GET /jobs/{id}/result body (the
// service keeps its response type unexported; the fields are the wire
// contract).
type resultView struct {
	ID    string        `json:"id"`
	State service.State `json:"state"`
	Text  string        `json:"text,omitempty"`
	Error string        `json:"error,omitempty"`
}

// paramSpec strips hooks off runner parameters for the wire.
func paramSpec(p experiments.Params) service.ParamSpec {
	return service.ParamSpec{Seed: p.Seed, Trials: p.Trials, Tasks: p.Tasks, RPCs: p.RPCs, Shards: p.Shards}
}

// doJSON issues one request and decodes a 2xx body into out (skipped
// when out is nil). Non-2xx responses come back as (status, nil error)
// with the server's error string in errMsg so callers can map status
// codes to the retry taxonomy.
func (c *Coordinator) doJSON(ctx context.Context, method, url string, body interface{}, out interface{}) (status int, retryAfter time.Duration, errMsg string, err error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		enc, merr := json.Marshal(body)
		if merr != nil {
			return 0, 0, "", merr
		}
		rd = bytes.NewReader(enc)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, 0, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, 0, "", err
	}
	defer resp.Body.Close()
	if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return resp.StatusCode, retryAfter, "", err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &eb)
		if eb.Error == "" {
			eb.Error = fmt.Sprintf("HTTP %d", resp.StatusCode)
		}
		return resp.StatusCode, retryAfter, eb.Error, nil
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, retryAfter, "", fmt.Errorf("decoding %s %s: %w", method, url, err)
		}
	}
	return resp.StatusCode, retryAfter, "", nil
}

// submitCells posts one cell-range sub-job to a worker.
func (c *Coordinator) submitCells(ctx context.Context, base, name string, p experiments.Params, r cellRange) (service.View, int, time.Duration, string, error) {
	req := service.Request{
		Experiment: name,
		Params:     paramSpec(p),
		Cells:      &service.CellRange{Lo: r.lo, Hi: r.hi},
	}
	var v service.View
	status, retryAfter, errMsg, err := c.doJSON(ctx, http.MethodPost, base+"/jobs", req, &v)
	return v, status, retryAfter, errMsg, err
}

// getJob polls one worker job.
func (c *Coordinator) getJob(ctx context.Context, base, id string) (service.View, error) {
	var v service.View
	status, _, errMsg, err := c.doJSON(ctx, http.MethodGet, base+"/jobs/"+id, nil, &v)
	if err != nil {
		return service.View{}, err
	}
	if status != http.StatusOK {
		return service.View{}, fmt.Errorf("polling job %s: HTTP %d: %s", id, status, errMsg)
	}
	return v, nil
}

// getResult fetches a terminal worker job's output.
func (c *Coordinator) getResult(ctx context.Context, base, id string) (resultView, error) {
	var rv resultView
	status, _, errMsg, err := c.doJSON(ctx, http.MethodGet, base+"/jobs/"+id+"/result", nil, &rv)
	if err != nil {
		return resultView{}, err
	}
	if status != http.StatusOK {
		return resultView{}, fmt.Errorf("fetching result %s: HTTP %d: %s", id, status, errMsg)
	}
	return rv, nil
}

// cancelJob best-effort cancels a worker job the coordinator no longer
// needs (its own job was cancelled mid-sweep). Detached from the dead
// caller context on purpose.
func (c *Coordinator) cancelJob(base, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RequestTimeout)
	defer cancel()
	_, _, _, _ = c.doJSON(ctx, http.MethodDelete, base+"/jobs/"+id, nil, nil)
}

// health probes one worker's /healthz.
func (c *Coordinator) health(base string) (service.HealthBody, error) {
	ctx := context.Background()
	var hb service.HealthBody
	status, _, errMsg, err := c.doJSON(ctx, http.MethodGet, base+"/healthz", nil, &hb)
	if err != nil {
		return service.HealthBody{}, err
	}
	if status != http.StatusOK {
		return service.HealthBody{}, fmt.Errorf("healthz: HTTP %d: %s", status, errMsg)
	}
	return hb, nil
}
