// Package cluster turns a set of quartzd daemons into one logical
// experiment service: a coordinator that shards sweep-shaped
// experiments (internal/experiments.Sweep) into contiguous cell ranges,
// fans the ranges out to worker daemons over the ordinary quartzd HTTP
// JSON API, and merges the partial blocks back — deterministically, so
// the cluster's output is byte-identical to a single process running
// the same experiment, for every worker count.
//
// Topology. One daemon runs as the coordinator; every other daemon is
// a stock quartzd worker — workers need no cluster code at all, the
// coordinator drives them through POST /jobs with a cell range
// (service.Request.Cells) and polls GET /jobs/{id} like any client.
// The worker set is static (-workers on the coordinator), dynamic
// (workers POST /cluster/register, see Registrar), or both.
//
// Determinism. The registry Run of a sweep experiment is
// Sweep.RunCells(0, n) + Sweep.Merge — the exact pair the coordinator
// composes from worker blocks, so any partition of [0, n) merges to
// the same bytes. Blocks travel as JSON; float64s round-trip exactly,
// so a block that crossed the wire is indistinguishable from one
// computed locally.
//
// Failure model. A worker that fails transport, drains, or times a
// sub-job out is marked dead and only its unfinished ranges are
// requeued onto survivors; its heartbeat loop keeps re-dialing with
// backoff and revives it when /healthz answers again. An experiment
// error that is not a deadline is fatal for the whole job — a
// deterministic failure would fail identically everywhere, so
// retrying it elsewhere only burns cycles. When every worker is dead
// with ranges still pending, the job fails.
//
// Caching. The coordinator's own service caches merged output under
// the experiment's full cache key, so a repeated submission never
// reaches the cluster. Below that, each worker's LRU caches its
// blocks under experiments.CacheKeyRange sub-keys — a shared cache
// tier: any worker's prior block serves any later sweep that covers
// the same cells, including ranges requeued after a coordinator
// restart.
package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/quartz-dcn/quartz/internal/metrics"
)

// Config parameterizes a Coordinator. Zero values take the documented
// defaults.
type Config struct {
	// Workers are the static worker base URLs ("http://host:port"),
	// dialed at startup. More can join via POST /cluster/register.
	Workers []string
	// HeartbeatInterval paces the per-worker health probe. Default 2s.
	HeartbeatInterval time.Duration
	// HeartbeatBackoffMax caps the probe backoff while a worker is
	// dead (the re-dial loop doubles from HeartbeatInterval). Default
	// 30s.
	HeartbeatBackoffMax time.Duration
	// PollInterval paces sub-job status polls during a sweep. Default
	// 25ms.
	PollInterval time.Duration
	// RequestTimeout bounds each HTTP call to a worker. Default 10s.
	RequestTimeout time.Duration
	// Registry receives the quartzd_cluster_* instruments; a private
	// registry is created when nil. Pass the service's registry so one
	// /metrics page shows both tiers.
	Registry *metrics.Registry
	// Client issues worker HTTP requests. Default: a dedicated client
	// (per-call deadlines come from RequestTimeout).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.HeartbeatBackoffMax <= 0 {
		c.HeartbeatBackoffMax = 30 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// worker is one tracked daemon. alive flips false on a failed probe or
// a mid-sweep dispatch failure, true again when /healthz answers; the
// dispatcher only reads it at fan-out time, so a revived worker joins
// the next sweep, not the current one.
type worker struct {
	url string

	mu      sync.Mutex
	alive   bool
	depth   int // last observed queue depth (load-balancing signal)
	lastErr string

	mDepth *metrics.Gauge
}

func (w *worker) markAlive(depth int) {
	w.mu.Lock()
	w.alive = true
	w.depth = depth
	w.lastErr = ""
	w.mu.Unlock()
	w.mDepth.Set(float64(depth))
}

func (w *worker) markDead(err error) {
	w.mu.Lock()
	w.alive = false
	w.lastErr = err.Error()
	w.mu.Unlock()
}

func (w *worker) isAlive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

// Coordinator owns the worker set and the sweep fan-out. Create one
// with New, wire it into a service via WrapLookup, mount Handler next
// to the service handler, and Close it on shutdown.
type Coordinator struct {
	cfg    Config
	client *http.Client
	reg    *metrics.Registry

	mu      sync.Mutex
	workers map[string]*worker
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup

	mWorkersAlive *metrics.Gauge
	mWorkersTotal *metrics.Gauge
	mDispatches   *metrics.Counter
	mRetries      *metrics.Counter
	mCells        *metrics.Counter
	mSweeps       map[string]*metrics.Counter
}

// New returns a started Coordinator: heartbeat monitors for the static
// workers are live immediately. Stop it with Close.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		reg:     reg,
		workers: make(map[string]*worker),
		stop:    make(chan struct{}),

		mWorkersAlive: reg.Gauge("quartzd_cluster_workers_alive", "workers currently answering health probes", nil),
		mWorkersTotal: reg.Gauge("quartzd_cluster_workers_total", "workers known to the coordinator", nil),
		mDispatches:   reg.Counter("quartzd_cluster_dispatches_total", "cell ranges dispatched to workers", nil),
		mRetries:      reg.Counter("quartzd_cluster_retries_total", "cell ranges requeued after a worker failure", nil),
		mCells:        reg.Counter("quartzd_cluster_cells_total", "sweep cells executed by the cluster", nil),
		mSweeps: map[string]*metrics.Counter{
			"done":   reg.Counter("quartzd_cluster_sweeps_total", "cluster sweeps, by outcome", metrics.Labels{"outcome": "done"}),
			"failed": reg.Counter("quartzd_cluster_sweeps_total", "cluster sweeps, by outcome", metrics.Labels{"outcome": "failed"}),
		},
	}
	for _, u := range cfg.Workers {
		c.AddWorker(u)
	}
	return c
}

// AddWorker registers a worker daemon by base URL and starts its
// heartbeat monitor. Idempotent: re-registering a known URL (the
// Registrar loop does, as its own liveness signal) is a no-op.
func (c *Coordinator) AddWorker(url string) {
	url = strings.TrimRight(url, "/")
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	if _, ok := c.workers[url]; ok {
		return
	}
	w := &worker{
		url: url,
		// Born alive: the first sweep may land before the first probe,
		// and a wrong guess only costs one requeue.
		alive:  true,
		mDepth: c.reg.Gauge("quartzd_cluster_worker_queue_depth", "last observed worker queue depth", metrics.Labels{"worker": url}),
	}
	c.workers[url] = w
	c.wg.Add(1)
	go c.monitor(w)
	c.updateWorkerGauges()
}

// alive snapshots the workers currently believed healthy, in URL order
// (deterministic fan-out shape for a given worker set).
func (c *Coordinator) alive() []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*worker
	for _, w := range c.workers {
		if w.isAlive() {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].url < out[j].url })
	return out
}

func (c *Coordinator) updateWorkerGauges() {
	// Callers hold c.mu.
	alive := 0
	for _, w := range c.workers {
		if w.isAlive() {
			alive++
		}
	}
	c.mWorkersAlive.Set(float64(alive))
	c.mWorkersTotal.Set(float64(len(c.workers)))
}

// monitor is one worker's heartbeat loop: probe /healthz, record the
// queue depth, and while the worker is dead keep re-dialing with
// exponential backoff so a restarted daemon rejoins on its own.
func (c *Coordinator) monitor(w *worker) {
	defer c.wg.Done()
	delay := c.cfg.HeartbeatInterval
	for {
		if err := c.probe(w); err != nil {
			w.markDead(err)
			delay = min(delay*2, c.cfg.HeartbeatBackoffMax)
		} else {
			delay = c.cfg.HeartbeatInterval
		}
		c.mu.Lock()
		c.updateWorkerGauges()
		c.mu.Unlock()
		select {
		case <-c.stop:
			return
		case <-time.After(delay):
		}
	}
}

// probe issues one health check and flips the worker alive on success.
func (c *Coordinator) probe(w *worker) error {
	hb, err := c.health(w.url)
	if err != nil {
		return err
	}
	w.markAlive(hb.QueueDepth)
	return nil
}

// WorkerView is one GET /cluster entry.
type WorkerView struct {
	URL        string `json:"url"`
	Alive      bool   `json:"alive"`
	QueueDepth int    `json:"queue_depth"`
	LastError  string `json:"last_error,omitempty"`
}

// WorkersSnapshot lists the known workers in URL order.
func (c *Coordinator) WorkersSnapshot() []WorkerView {
	c.mu.Lock()
	urls := make([]string, 0, len(c.workers))
	for u := range c.workers {
		urls = append(urls, u)
	}
	workers := make([]*worker, 0, len(urls))
	sort.Strings(urls)
	for _, u := range urls {
		workers = append(workers, c.workers[u])
	}
	c.mu.Unlock()
	out := make([]WorkerView, 0, len(workers))
	for _, w := range workers {
		w.mu.Lock()
		out = append(out, WorkerView{URL: w.url, Alive: w.alive, QueueDepth: w.depth, LastError: w.lastErr})
		w.mu.Unlock()
	}
	return out
}

// Close stops the heartbeat monitors. In-flight sweeps are not
// interrupted — cancel their jobs through the owning service.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if !c.stopped {
		c.stopped = true
		close(c.stop)
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// ErrNoWorkers rejects a sweep when no worker is believed alive.
var ErrNoWorkers = fmt.Errorf("cluster: no alive workers")
