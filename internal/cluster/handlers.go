package cluster

// The coordinator's own HTTP surface, mounted next to the service
// handler in cmd/quartzd:
//
//	POST /cluster/register  a worker announces its base URL
//	GET  /cluster           the worker set: URL, liveness, queue depth
//
// and the worker's side of dynamic membership: Registrar, a loop that
// keeps re-announcing this daemon to the coordinator (registration is
// idempotent, so the loop doubles as a reachability check in the
// worker→coordinator direction).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// RegisterBody is the POST /cluster/register request.
type RegisterBody struct {
	URL string `json:"url"`
}

// Handler returns the coordinator mux (the /cluster routes).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", c.handleRegister)
	mux.HandleFunc("GET /cluster", c.handleWorkers)
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var rb RegisterBody
	if err := json.Unmarshal(body, &rb); err != nil {
		httpError(w, http.StatusBadRequest, "bad register body: "+err.Error())
		return
	}
	u, err := url.Parse(rb.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad worker url %q: want http(s)://host:port", rb.URL))
		return
	}
	c.AddWorker(rb.URL)
	writeJSON(w, http.StatusOK, c.WorkersSnapshot())
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.WorkersSnapshot())
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// Registrar is the worker-side membership loop: announce Advertise to
// the Coordinator every Interval, backing off (doubling to 8×Interval)
// while the coordinator is unreachable. Run blocks until ctx is done.
type Registrar struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Advertise is this worker's reachable base URL.
	Advertise string
	// Interval is the re-announce cadence. Default 5s.
	Interval time.Duration
	// Client issues the requests. Default http.DefaultClient.
	Client *http.Client
}

// Run announces until ctx is cancelled. The first announce happens
// immediately, so a worker that starts after the coordinator joins
// without waiting out an interval.
func (rg *Registrar) Run(ctx context.Context) {
	interval := rg.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	client := rg.Client
	if client == nil {
		client = http.DefaultClient
	}
	delay := interval
	for {
		if err := rg.announce(ctx, client); err != nil {
			delay = min(delay*2, 8*interval)
		} else {
			delay = interval
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

func (rg *Registrar) announce(ctx context.Context, client *http.Client) error {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	body, _ := json.Marshal(RegisterBody{URL: rg.Advertise})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rg.Coordinator+"/cluster/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("register: HTTP %d", resp.StatusCode)
	}
	return nil
}
