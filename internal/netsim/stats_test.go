package netsim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

func TestPortStatsCounters(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	net := newNet(t, g, Arista7150, nil)
	for i := 0; i < 10; i++ {
		net.Unicast(routing.FlowID(i), h0, h1, 400, 0)
	}
	net.Engine().Run()
	stats := net.Stats()
	if len(stats) != 2*g.NumLinks() {
		t.Fatalf("stats = %d entries, want %d", len(stats), 2*g.NumLinks())
	}
	// Every link on the h0->h1 path carried 10 packets of 400B in the
	// forward direction, none backward.
	forward, backward := 0, 0
	for _, s := range stats {
		switch {
		case s.Packets == 10 && s.Bytes == 4000:
			forward++
			if s.BusyTime <= 0 {
				t.Errorf("busy port with zero BusyTime: %+v", s)
			}
			if u := s.Utilization(net.Engine().Now()); u <= 0 || u > 1 {
				t.Errorf("utilization = %v, want (0,1]", u)
			}
		case s.Packets == 0:
			backward++
		default:
			t.Errorf("unexpected stats %+v", s)
		}
	}
	if forward != 3 || backward != 3 {
		t.Errorf("forward/backward = %d/%d, want 3/3", forward, backward)
	}
	hot := net.HottestPorts(2)
	if len(hot) != 2 || hot[0].Bytes != 4000 {
		t.Errorf("HottestPorts = %+v", hot)
	}
	if got := net.HottestPorts(100); len(got) != 2*g.NumLinks() {
		t.Errorf("HottestPorts(100) = %d entries", len(got))
	}
}

func TestFailLinkDropsTraffic(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var reasons []string
	net, err := New(Config{
		Graph:  g,
		Router: routing.NewECMP(g),
		OnDrop: func(d Drop) { reasons = append(reasons, d.Reason()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the switch-to-switch link (link 1 in construction order).
	l, ok := g.FindLink(g.Switches()[0], g.Switches()[1])
	if !ok {
		t.Fatal("no inter-switch link")
	}
	if err := net.FailLink(l.ID); err != nil {
		t.Fatal(err)
	}
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	if net.Delivered() != 0 || net.Dropped() != 1 {
		t.Fatalf("delivered/dropped = %d/%d, want 0/1", net.Delivered(), net.Dropped())
	}
	if len(reasons) != 1 || !strings.Contains(reasons[0], "down") {
		t.Errorf("drop reasons = %v, want link down", reasons)
	}
	// Restore and retry.
	if err := net.RestoreLink(l.ID); err != nil {
		t.Fatal(err)
	}
	net.Unicast(2, h0, h1, 400, 0)
	net.Engine().Run()
	if net.Delivered() != 1 {
		t.Errorf("delivered = %d after restore, want 1", net.Delivered())
	}
	if err := net.FailLink(-1); err == nil {
		t.Error("bad link id accepted")
	}
	if err := net.RestoreLink(9999); err == nil {
		t.Error("bad link id accepted")
	}
}

func TestReconvergenceAfterFailure(t *testing.T) {
	// A mesh pair loses its direct link; installing a router computed
	// on the degraded graph reroutes via two hops.
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: 4, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	sw := g.Switches()
	var hops int
	net, err := New(Config{
		Graph:     g,
		Router:    routing.NewECMP(g),
		OnDeliver: func(d Delivery) { hops = d.Packet.Hops },
	})
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := g.FindLink(sw[0], sw[1])
	if err := net.FailLink(direct.ID); err != nil {
		t.Fatal(err)
	}
	// Reroute around the failure: a spanning tree rooted at a third
	// switch never uses the s0-s1 link (in a BFS tree of a full mesh,
	// every node hangs directly off the root).
	st, err := routing.NewSpanningTree(g, sw[2])
	if err != nil {
		t.Fatal(err)
	}
	net.SetRouter(st)
	net.Unicast(1, hosts[0], hosts[1], 400, 0)
	net.Engine().Run()
	if net.Delivered() != 1 {
		t.Fatalf("delivered = %d, want 1 (rerouted)", net.Delivered())
	}
	if hops != 4 { // s0, s2 (root), s1, host
		t.Errorf("hops = %d, want 4 (two-hop detour)", hops)
	}
}

func TestSetRouterNilPanics(t *testing.T) {
	g, _, _ := twoHosts(t, sim.Gbps)
	net := newNet(t, g, Arista7150, nil)
	defer func() {
		if recover() == nil {
			t.Error("SetRouter(nil) did not panic")
		}
	}()
	net.SetRouter(nil)
}

func TestRecordPaths(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var path []topology.NodeID
	net, err := New(Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		RecordPaths: true,
		OnDeliver:   func(d Delivery) { path = d.Packet.Path },
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	// h0 -> s0 -> s1 -> h1.
	want := []topology.NodeID{h0, g.Switches()[0], g.Switches()[1], h1}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// TestConservationProperty: over random meshes and random bursts, every
// injected packet is either delivered or dropped by the time the engine
// drains — none vanish, none duplicate.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, mm, burst uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mm%5) + 2
		g, err := topology.NewFullMesh(topology.MeshConfig{Switches: m, HostsPerSwitch: 2})
		if err != nil {
			return false
		}
		// Small buffers so some runs drop.
		model := Arista7150
		model.BufferBytes = 4000
		net, err := New(Config{
			Graph:       g,
			Router:      routing.NewECMP(g),
			SwitchModel: func(topology.Node) SwitchModel { return model },
			Host:        HostModel{NICLatency: 0, ForwardLatency: 0, BufferBytes: 4000},
		})
		if err != nil {
			return false
		}
		hosts := g.Hosts()
		sent := uint64(0)
		count := int(burst%40) + 1
		for i := 0; i < count; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			net.Unicast(routing.FlowID(i), src, dst, 400, 0)
			sent++
		}
		net.Engine().Run()
		return net.Delivered()+net.Dropped() == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestStrictPriorityScheduling(t *testing.T) {
	// A low-priority burst fills the port; a high-priority packet
	// injected mid-burst jumps the queue (after the in-flight frame).
	g, h0, h1 := twoHosts(t, 1*sim.Gbps)
	var order []uint8
	net, err := New(Config{
		Graph:     g,
		Router:    routing.NewECMP(g),
		Host:      HostModel{NICLatency: 0, ForwardLatency: 0, BufferBytes: 1 << 20},
		OnDeliver: func(d Delivery) { order = append(order, d.Packet.Priority) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 bulk packets (12 us each at 1G), then one urgent packet 1 us
	// later: it should overtake all but the frame already on the wire.
	for i := 0; i < 10; i++ {
		net.Send(Packet{Flow: 1, Src: h0, Dst: h1, Size: 1500, Priority: 1, Waypoint: NoWaypoint})
	}
	net.Engine().After(sim.Microsecond, func() {
		net.Send(Packet{Flow: 2, Src: h0, Dst: h1, Size: 200, Priority: 0, Waypoint: NoWaypoint})
	})
	net.Engine().Run()
	if len(order) != 11 {
		t.Fatalf("delivered %d, want 11", len(order))
	}
	pos := -1
	for i, pri := range order {
		if pri == 0 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("urgent packet lost")
	}
	if pos > 2 {
		t.Errorf("urgent packet delivered at position %d, want near the front", pos)
	}
}

func TestPriorityClamped(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	net := newNet(t, g, Arista7150, nil)
	net.Send(Packet{Flow: 1, Src: h0, Dst: h1, Size: 400, Priority: 200, Waypoint: NoWaypoint})
	net.Engine().Run()
	if net.Delivered() != 1 {
		t.Errorf("clamped-priority packet not delivered")
	}
}

func TestPriorityDoesNotStarveConservation(t *testing.T) {
	// Mixed-priority load: everything still delivered or dropped.
	g, h0, h1 := twoHosts(t, 1*sim.Gbps)
	net := newNet(t, g, Arista7150, nil)
	for i := 0; i < 200; i++ {
		net.Send(Packet{Flow: routing.FlowID(i), Src: h0, Dst: h1, Size: 400,
			Priority: uint8(i % 2), Waypoint: NoWaypoint})
	}
	net.Engine().Run()
	if net.Delivered()+net.Dropped() != 200 {
		t.Errorf("conservation violated: %d + %d != 200", net.Delivered(), net.Dropped())
	}
}
