package netsim

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// traceFixture builds a recorder holding packet events plus synthetic
// fault rows whose reasons carry CSV-hostile characters.
func traceFixture() *TraceRecorder {
	tr := NewTraceRecorder(0)
	tr.add(TraceEvent{At: 10, Op: TraceEnqueue, Packet: 1, Flow: 7, Link: 0, From: 0, Hops: 0})
	tr.add(TraceEvent{At: 20, Op: TraceFault, Link: 3, From: -1,
		Reason: `fail: cut links 3, 4 at "spine", detect 10ms`})
	tr.add(TraceEvent{At: 30, Op: TraceDrop, Packet: 1, Flow: 7, Link: -1, From: -1, Hops: 1,
		Reason: "link 3 down"})
	tr.add(TraceEvent{At: 40, Op: TraceFault, Link: -1, From: -1,
		Reason: `reconverged, "2 links" down`})
	return tr
}

func TestTraceRecorderCSVRoundTrip(t *testing.T) {
	tr := traceFixture()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("trace CSV with quoted reasons does not parse: %v", err)
	}
	want := []string{"at_ps", "op", "packet", "flow", "link", "from", "hops", "reason"}
	if got := strings.Join(rows[0], ","); got != strings.Join(want, ",") {
		t.Fatalf("header = %q", got)
	}
	events := tr.Events()
	if len(rows)-1 != len(events) {
		t.Fatalf("CSV has %d data rows, want %d", len(rows)-1, len(events))
	}
	for i, e := range events {
		row := rows[i+1]
		if at, _ := strconv.ParseInt(row[0], 10, 64); at != int64(e.At) {
			t.Errorf("row %d at = %s, want %d", i, row[0], e.At)
		}
		if row[1] != e.Op.String() {
			t.Errorf("row %d op = %q, want %q", i, row[1], e.Op)
		}
		if link, _ := strconv.ParseInt(row[4], 10, 64); link != int64(e.Link) {
			t.Errorf("row %d link = %s, want %d", i, row[4], e.Link)
		}
		// The round-trip must preserve commas and quotes byte-for-byte.
		if row[7] != e.Reason {
			t.Errorf("row %d reason = %q, want %q", i, row[7], e.Reason)
		}
	}
}

func TestTraceRecorderJSONRoundTrip(t *testing.T) {
	tr := traceFixture()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []traceJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	events := tr.Events()
	if len(decoded) != len(events) {
		t.Fatalf("JSON has %d events, want %d", len(decoded), len(events))
	}
	for i, e := range events {
		d := decoded[i]
		if d.AtPs != int64(e.At) || d.Op != e.Op.String() || d.Packet != e.Packet ||
			d.Link != int64(e.Link) || d.Hops != e.Hops || d.Reason != e.Reason {
			t.Errorf("event %d round-trips as %+v, want %+v", i, d, e)
		}
	}
}

// busySampler runs a short congested workload with a sampler watching the
// bottleneck, so Samples() is non-empty.
func busySampler(t *testing.T) *QueueSampler {
	t.Helper()
	g, h0, h1 := twoHosts(t, sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	s := NewQueueSampler(net, 10*sim.Microsecond)
	s.Watch(PortRef{Link: 1, From: topology.NodeID(0)})
	s.Start(sim.Millisecond)
	for i := 0; i < 50; i++ {
		net.Unicast(1, h0, h1, 1500, 0)
	}
	net.Engine().RunUntil(sim.Millisecond)
	if len(s.Samples()) == 0 {
		t.Fatal("fixture produced no samples")
	}
	return s
}

func TestQueueSamplerCSVRoundTrip(t *testing.T) {
	s := busySampler(t)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("sampler CSV does not parse: %v", err)
	}
	if got := strings.Join(rows[0], ","); got != "at_ps,link,from,queued_bytes,utilization" {
		t.Fatalf("header = %q", got)
	}
	samples := s.Samples()
	if len(rows)-1 != len(samples) {
		t.Fatalf("CSV has %d data rows, want %d", len(rows)-1, len(samples))
	}
	for i, smp := range samples {
		row := rows[i+1]
		at, _ := strconv.ParseInt(row[0], 10, 64)
		qb, _ := strconv.Atoi(row[3])
		util, _ := strconv.ParseFloat(row[4], 64)
		if at != int64(smp.At) || qb != smp.QueuedBytes {
			t.Errorf("row %d = %v, want %+v", i, row, smp)
		}
		// Utilization is formatted with 6 decimal places.
		if diff := util - smp.Utilization; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("row %d utilization = %v, want %v", i, util, smp.Utilization)
		}
	}
}

func TestQueueSamplerJSONRoundTrip(t *testing.T) {
	s := busySampler(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []sampleJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("sampler JSON does not parse: %v", err)
	}
	samples := s.Samples()
	if len(decoded) != len(samples) {
		t.Fatalf("JSON has %d samples, want %d", len(decoded), len(samples))
	}
	for i, smp := range samples {
		d := decoded[i]
		if d.AtPs != int64(smp.At) || d.Link != int64(smp.Port.Link) ||
			d.QueuedBytes != smp.QueuedBytes || d.Utilization != smp.Utilization {
			t.Errorf("sample %d round-trips as %+v, want %+v", i, d, smp)
		}
	}
}

func TestQueueSamplerWatchAfterStart(t *testing.T) {
	g, h0, h1 := twoHosts(t, sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	s := NewQueueSampler(net, 10*sim.Microsecond)
	s.Start(sim.Millisecond)
	eng := net.Engine()
	for i := 0; i < 50; i++ {
		net.Unicast(1, h0, h1, 1500, 0)
	}
	// Narrow the watch set mid-run: from 105µs on, only the bottleneck
	// port is sampled, with its utilization baseline reset at the call.
	bottleneck := PortRef{Link: 1, From: topology.NodeID(0)}
	eng.Schedule(105*sim.Microsecond, func() { s.Watch(bottleneck) })
	eng.RunUntil(sim.Millisecond)

	sawOther, sawBottleneckLate := false, false
	for _, smp := range s.Samples() {
		if smp.Port != bottleneck {
			sawOther = true
			if smp.At > 110*sim.Microsecond {
				t.Errorf("sample of %+v at %v, after Watch narrowed the set", smp.Port, smp.At)
			}
		} else if smp.At > 110*sim.Microsecond {
			sawBottleneckLate = true
			if smp.Utilization < 0 || smp.Utilization > 1 {
				t.Errorf("utilization %v out of range after baseline reset", smp.Utilization)
			}
		}
	}
	if !sawOther {
		t.Error("expected pre-Watch samples of unwatched ports")
	}
	if !sawBottleneckLate {
		t.Error("expected post-Watch samples of the watched port")
	}
}

func TestQueueSamplerBindGauges(t *testing.T) {
	// Fast host links feeding a slow inter-switch link: a queue builds
	// and persists at s0 -> s1, so the tick gauges hold nonzero values.
	g := topology.New("pair")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	h0 := g.AddHost("h0", 0)
	h1 := g.AddHost("h1", 1)
	g.Connect(h0, s0, 10*sim.Gbps, topology.DefaultProp)
	g.Connect(s0, s1, sim.Gbps, topology.DefaultProp)
	g.Connect(s1, h1, 10*sim.Gbps, topology.DefaultProp)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	s := NewQueueSampler(net, 10*sim.Microsecond)
	s.Watch(PortRef{Link: 1, From: s0})
	reg := metrics.NewRegistry()
	s.Bind(reg)
	s.Start(200 * sim.Microsecond)
	for i := 0; i < 50; i++ {
		net.Unicast(1, h0, h1, 1500, 0)
	}
	// Stop at 100µs: the backlog (50 × 1500 B at 1 Gbps ≈ 600µs of
	// serialization) is still draining, so the gauges hold live values.
	net.Engine().RunUntil(100 * sim.Microsecond)

	vals := map[string]float64{}
	for _, ss := range reg.Snapshot().Series {
		vals[ss.Name] = ss.Value
	}
	if vals["netsim_queue_bytes_total"] <= 0 {
		t.Errorf("netsim_queue_bytes_total = %v, want > 0 mid-backlog", vals["netsim_queue_bytes_total"])
	}
	if vals["netsim_queue_bytes_max"] != vals["netsim_queue_bytes_total"] {
		t.Errorf("with one watched port max (%v) should equal total (%v)",
			vals["netsim_queue_bytes_max"], vals["netsim_queue_bytes_total"])
	}
	if vals["netsim_util_max"] <= 0.9 {
		t.Errorf("netsim_util_max = %v, want ~1 on a saturated port", vals["netsim_util_max"])
	}
	if vals["netsim_ports_active"] != 1 {
		t.Errorf("netsim_ports_active = %v, want 1", vals["netsim_ports_active"])
	}
	if vals["netsim_port_queue_bytes"] <= 0 {
		t.Errorf("netsim_port_queue_bytes = %v, want > 0", vals["netsim_port_queue_bytes"])
	}
}
