package netsim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// ring4 builds a 4-switch full mesh (one Quartz ring's logical
// topology) with one host per switch.
func ring4(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: 4, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// faultRun is the comparable outcome of one reconvergence run.
type faultRun struct {
	delivered, dropped uint64
	// perWindow counts deliveries in 500us windows.
	perWindow []int
	changes   []string
	dupes     int
}

// runReconvergence drives steady h0->h1 traffic across a scheduled
// cut+repair of the direct switch link and summarizes the outcome.
func runReconvergence(t *testing.T, policy ReroutePolicy) faultRun {
	t.Helper()
	g := ring4(t)
	h0, h1 := g.Hosts()[0], g.Hosts()[1]
	s0 := g.ToRof(h0)
	s1 := g.ToRof(h1)
	direct, ok := g.FindLink(s0, s1)
	if !ok {
		t.Fatal("no direct link in mesh")
	}

	const (
		window   = 500 * sim.Microsecond
		duration = 10 * sim.Millisecond
		cutAt    = 2 * sim.Millisecond
		repairAt = 6 * sim.Millisecond
		detect   = 500 * sim.Microsecond
	)
	out := faultRun{perWindow: make([]int, int(duration/window)+1)}
	seen := map[uint64]bool{}
	net, err := New(Config{
		Graph:  g,
		Router: routing.NewECMP(g),
		SwitchModel: func(topology.Node) SwitchModel {
			return Arista7150
		},
		OnDeliver: func(d Delivery) {
			if seen[d.Packet.ID] {
				out.dupes++
			}
			seen[d.Packet.ID] = true
			i := int(d.At / window)
			if i < len(out.perWindow) {
				out.perWindow[i]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fi := net.Faults()
	fi.OnChange = func(c FaultChange) {
		out.changes = append(out.changes, fmt.Sprintf("%s repair=%v reconv=%v dead=%d",
			c.Event, c.Repair, c.Reconverged, c.DeadLinks))
	}
	if err := fi.Apply(FaultSchedule{
		Events: []FaultEvent{{
			Kind: FaultLink, Link: direct.ID, At: cutAt, RepairAt: repairAt,
		}},
		DetectionDelay: detect,
		Policy:         policy,
	}); err != nil {
		t.Fatal(err)
	}

	eng := net.Engine()
	var send func()
	send = func() {
		net.Unicast(7, h0, h1, 1500, 1)
		if eng.Now()+10*sim.Microsecond < duration {
			eng.After(10*sim.Microsecond, send)
		}
	}
	eng.Schedule(0, send)
	eng.RunUntil(duration + 2*sim.Millisecond)
	out.delivered = net.Delivered()
	out.dropped = net.Dropped()
	return out
}

func TestReconvergenceAfterCutAndRepair(t *testing.T) {
	out := runReconvergence(t, DropInFlight)

	if out.dupes != 0 {
		t.Errorf("%d duplicate deliveries", out.dupes)
	}
	if out.dropped == 0 {
		t.Error("no packets dropped during the blackhole window")
	}
	// Windows: 0-2ms before, 2-2.5ms blackhole, 2.5-6ms rerouted,
	// 6ms+ repaired. Delivery must resume after reconvergence and stay
	// up after repair.
	window := func(ms float64) int { return int(ms * 2) }
	for _, w := range []int{window(0), window(1)} {
		if out.perWindow[w] == 0 {
			t.Errorf("window %d (before cut): nothing delivered", w)
		}
	}
	blackhole := out.perWindow[window(2)]
	for _, w := range []int{window(3), window(4), window(5)} {
		if out.perWindow[w] == 0 {
			t.Errorf("window %d (rerouted): delivery did not resume", w)
		}
		if out.perWindow[w] <= blackhole {
			t.Errorf("window %d (rerouted): %d delivered, not above blackhole window's %d",
				w, out.perWindow[w], blackhole)
		}
	}
	for _, w := range []int{window(7), window(8), window(9)} {
		if out.perWindow[w] == 0 {
			t.Errorf("window %d (repaired): nothing delivered", w)
		}
	}

	want := []string{
		fmt.Sprintf("%s repair=false reconv=false dead=1", out.changesEvent()),
		fmt.Sprintf("%s repair=false reconv=true dead=1", out.changesEvent()),
		fmt.Sprintf("%s repair=true reconv=false dead=0", out.changesEvent()),
		fmt.Sprintf("%s repair=true reconv=true dead=0", out.changesEvent()),
	}
	if !reflect.DeepEqual(out.changes, want) {
		t.Errorf("fault changes:\n got %q\nwant %q", out.changes, want)
	}
}

// changesEvent extracts the event string prefix shared by all changes.
func (r faultRun) changesEvent() string {
	if len(r.changes) == 0 {
		return "?"
	}
	return r.changes[0][:strings.Index(r.changes[0], " repair=")]
}

func TestReconvergenceDeterministic(t *testing.T) {
	a := runReconvergence(t, DropInFlight)
	b := runReconvergence(t, DropInFlight)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("runs differ:\n a: %+v\n b: %+v", a, b)
	}
}

func TestDetourInFlightRedelivers(t *testing.T) {
	drop := runReconvergence(t, DropInFlight)
	detour := runReconvergence(t, DetourInFlight)
	if detour.dupes != 0 {
		t.Errorf("%d duplicate deliveries under detour", detour.dupes)
	}
	// Detouring can only save packets relative to dropping them.
	if detour.dropped > drop.dropped {
		t.Errorf("detour dropped %d > drop policy's %d", detour.dropped, drop.dropped)
	}
}

func TestApplyValidation(t *testing.T) {
	g := ring4(t)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	fi := net.Faults()
	cases := []struct {
		name string
		s    FaultSchedule
	}{
		{"unknown link", FaultSchedule{Events: []FaultEvent{{Kind: FaultLink, Link: 999, At: sim.Millisecond}}}},
		{"not a switch", FaultSchedule{Events: []FaultEvent{{Kind: FaultSwitch, Switch: g.Hosts()[0], At: sim.Millisecond}}}},
		{"fiber without resolver", FaultSchedule{Events: []FaultEvent{{Kind: FaultFiber, At: sim.Millisecond}}}},
		{"repair before injection", FaultSchedule{Events: []FaultEvent{{Kind: FaultLink, Link: 0, At: 2 * sim.Millisecond, RepairAt: sim.Millisecond}}}},
	}
	for _, tc := range cases {
		if err := fi.Apply(tc.s); err == nil {
			t.Errorf("%s: Apply accepted an invalid schedule", tc.name)
		}
	}
	if fi.DeadCount() != 0 {
		t.Errorf("rejected schedules left %d links dead", fi.DeadCount())
	}
	// Past injection times are rejected once the clock has advanced.
	net.Engine().Schedule(sim.Millisecond, func() {})
	net.Engine().Run()
	err = fi.Apply(FaultSchedule{Events: []FaultEvent{{Kind: FaultLink, Link: 0, At: sim.Microsecond}}})
	if err == nil {
		t.Error("Apply accepted an injection time in the past")
	}
}

func TestOverlappingFaultsRefcount(t *testing.T) {
	g := ring4(t)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	s0 := g.Switches()[0]
	var onS0 []topology.LinkID
	for _, p := range g.Ports(s0) {
		onS0 = append(onS0, p.Link)
	}
	shared := onS0[0]

	fi := net.Faults()
	// A switch failure and a link failure overlap on one link: the link
	// must stay down until both are repaired.
	if err := fi.Apply(FaultSchedule{
		Events: []FaultEvent{
			{Kind: FaultSwitch, Switch: s0, At: sim.Millisecond, RepairAt: 3 * sim.Millisecond},
			{Kind: FaultLink, Link: shared, At: sim.Millisecond, RepairAt: 5 * sim.Millisecond},
		},
		DetectionDelay: 100 * sim.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	eng := net.Engine()
	check := func(at sim.Time, wantDead bool) {
		eng.Schedule(at, func() {
			if got := fi.Dead()[shared]; got != wantDead {
				t.Errorf("at %v: link %d dead = %v, want %v", at, shared, got, wantDead)
			}
		})
	}
	check(2*sim.Millisecond, true)  // both faults active
	check(4*sim.Millisecond, true)  // switch repaired, link fault holds it
	check(6*sim.Millisecond, false) // both repaired
	eng.Run()
	if fi.DeadCount() != 0 {
		t.Errorf("%d links still dead after all repairs", fi.DeadCount())
	}
}

func TestLegacyFailRestoreStillWorks(t *testing.T) {
	g := ring4(t)
	var dropped int
	net, err := New(Config{
		Graph:  g,
		Router: routing.NewECMP(g),
		OnDrop: func(Drop) { dropped++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := g.Hosts()[0], g.Hosts()[1]
	s0 := g.ToRof(h0)
	uplink, _ := g.FindLink(h0, s0)
	if err := net.FailLink(uplink.ID); err != nil {
		t.Fatal(err)
	}
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (host uplink down)", dropped)
	}
	if err := net.RestoreLink(uplink.ID); err != nil {
		t.Fatal(err)
	}
	net.Unicast(2, h0, h1, 400, 0)
	net.Engine().Run()
	if net.Delivered() != 1 {
		t.Errorf("delivered = %d after restore, want 1", net.Delivered())
	}
}

func TestFaultObserverProbe(t *testing.T) {
	g := ring4(t)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewTraceRecorder(0)
	net.SetProbe(Probes(rec))
	if err := net.Faults().Apply(FaultSchedule{
		Events:         []FaultEvent{{Kind: FaultLink, Link: 0, At: sim.Millisecond}},
		DetectionDelay: 100 * sim.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	var faults, reconv int
	for _, ev := range rec.Events() {
		if ev.Op != TraceFault {
			continue
		}
		faults++
		if strings.HasPrefix(ev.Reason, "reconverged") {
			reconv++
		}
	}
	if faults != 2 || reconv != 1 {
		t.Errorf("trace recorded %d fault rows (%d reconverged), want 2 (1)", faults, reconv)
	}
}
