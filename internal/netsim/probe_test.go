package netsim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

func TestTraceRecorderLifecycle(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	tr := NewTraceRecorder(0)
	net, err := New(Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		RecordPaths: true,
		Probe:       tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	id := net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()

	// Three links on the path: one enqueue + one transmit each, then
	// one delivery.
	evs := tr.PacketEvents(id)
	if len(evs) != 7 {
		t.Fatalf("recorded %d events, want 7: %v", len(evs), evs)
	}
	wantOps := []TraceOp{
		TraceEnqueue, TraceTransmit,
		TraceEnqueue, TraceTransmit,
		TraceEnqueue, TraceTransmit,
		TraceDeliver,
	}
	var lastAt sim.Time
	for i, e := range evs {
		if e.Op != wantOps[i] {
			t.Errorf("event %d op = %v, want %v", i, e.Op, wantOps[i])
		}
		if e.At < lastAt {
			t.Errorf("event %d at %v before previous %v", i, e.At, lastAt)
		}
		lastAt = e.At
	}
	if fin := evs[6]; fin.Hops != 3 || fin.Link != -1 {
		t.Errorf("delivery event = %+v, want Hops=3 Link=-1", fin)
	}
	// RecordPaths gives the recorder the delivered hop list.
	path := tr.Path(id)
	want := []topology.NodeID{h0, topology.NodeID(0), topology.NodeID(1), h1}
	if len(path) != 4 {
		t.Fatalf("path = %v, want 4 nodes %v", path, want)
	}
	if path[0] != h0 || path[3] != h1 {
		t.Errorf("path = %v, want source %d ... dest %d", path, h0, h1)
	}
	if tr.Truncated() != 0 {
		t.Errorf("Truncated = %d, want 0", tr.Truncated())
	}
}

func TestTraceRecorderBound(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	tr := NewTraceRecorder(3)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: tr})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		net.Unicast(1, h0, h1, 400, 0)
	}
	net.Engine().Run()
	if len(tr.Events()) != 3 {
		t.Errorf("kept %d events, want bound 3", len(tr.Events()))
	}
	if tr.Truncated() == 0 {
		t.Error("Truncated = 0, want > 0 after overflow")
	}
}

func TestTraceRecorderDrop(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	tr := NewTraceRecorder(0)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.FailLink(1); err != nil { // the s0-s1 inter-switch link
		t.Fatal(err)
	}
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	var drops []TraceEvent
	for _, e := range tr.Events() {
		if e.Op == TraceDrop {
			drops = append(drops, e)
		}
	}
	if len(drops) != 1 {
		t.Fatalf("recorded %d drops, want 1: %v", len(drops), tr.Events())
	}
	if !strings.Contains(drops[0].Reason, "down") {
		t.Errorf("drop reason = %q, want a link-down reason", drops[0].Reason)
	}
}

func TestQueueSampler(t *testing.T) {
	// A slow inter-switch link with a burst of packets builds a queue;
	// the sampler must see nonzero depth and utilization on it.
	g, h0, h1 := twoHosts(t, 1*sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	s := NewQueueSampler(net, sim.Microsecond)
	net.SetProbe(s) // exact peak tracking
	end := 100 * sim.Microsecond
	s.Start(end)
	for i := 0; i < 20; i++ {
		net.Unicast(1, h0, h1, 1500, 0)
	}
	net.Engine().RunUntil(end)

	if len(s.Samples()) == 0 {
		t.Fatal("no samples recorded")
	}
	bottleneck := PortRef{Link: 1, From: topology.NodeID(0)} // s0 -> s1
	if s.PeakDepth(bottleneck) == 0 {
		t.Error("PeakDepth = 0 on the bottleneck, want > 0")
	}
	st := s.DepthStats(bottleneck)
	if st.N() == 0 || st.Max() == 0 {
		t.Errorf("DepthStats n=%d max=%v, want sampled nonzero depth", st.N(), st.Max())
	}
	var sawBusy bool
	for _, smp := range s.Samples() {
		if smp.Utilization < 0 || smp.Utilization > 1 {
			t.Fatalf("utilization %v out of [0,1] at %v", smp.Utilization, smp.At)
		}
		if smp.Port == bottleneck && smp.Utilization > 0.9 {
			sawBusy = true
		}
	}
	if !sawBusy {
		t.Error("bottleneck never sampled near 100% utilization during the burst")
	}
	// The event-driven peak must be at least what sampling saw.
	if s.PeakDepth(bottleneck) < int(st.Max()) {
		t.Errorf("probe peak %d below sampled max %v", s.PeakDepth(bottleneck), st.Max())
	}
}

func TestProbesCombinator(t *testing.T) {
	if Probes() != nil || Probes(nil, nil) != nil {
		t.Error("Probes with no real probes should be nil")
	}
	a, b := NewTraceRecorder(0), NewTraceRecorder(0)
	if Probes(a) != Probe(a) {
		t.Error("Probes(a) should unwrap to a itself")
	}
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: Probes(a, nil, b)})
	if err != nil {
		t.Fatal(err)
	}
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	if len(a.Events()) == 0 || len(a.Events()) != len(b.Events()) {
		t.Errorf("fan-out mismatch: a=%d b=%d events", len(a.Events()), len(b.Events()))
	}
}

func TestNetworkTelemetry(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		net.Unicast(1, h0, h1, 400, 0)
	}
	net.Engine().Run()
	tel := net.Telemetry()
	if tel.Delivered != 10 || tel.Dropped != 0 {
		t.Errorf("delivered/dropped = %d/%d, want 10/0", tel.Delivered, tel.Dropped)
	}
	if tel.Events == 0 || tel.PeakPending == 0 {
		t.Errorf("Events=%d PeakPending=%d, want both > 0", tel.Events, tel.PeakPending)
	}
	if tel.EventsPerSec <= 0 {
		t.Errorf("EventsPerSec = %v, want > 0", tel.EventsPerSec)
	}
	if s := tel.String(); !strings.Contains(s, "delivered") {
		t.Errorf("String() = %q, want a readable summary", s)
	}
}

func TestTraceAndSamplerEmission(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	tr := NewTraceRecorder(0)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: tr})
	if err != nil {
		t.Fatal(err)
	}
	s := NewQueueSampler(net, sim.Microsecond)
	s.Start(10 * sim.Microsecond)
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().RunUntil(10 * sim.Microsecond)

	var csv bytes.Buffer
	if err := tr.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "at_ps,op,packet,flow,link,from,hops,reason" {
		t.Errorf("trace CSV header = %q", lines[0])
	}
	if len(lines)-1 != len(tr.Events()) {
		t.Errorf("trace CSV has %d rows, want %d", len(lines)-1, len(tr.Events()))
	}

	var js bytes.Buffer
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(decoded) != len(tr.Events()) {
		t.Errorf("trace JSON has %d events, want %d", len(decoded), len(tr.Events()))
	}

	csv.Reset()
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "at_ps,link,from,queued_bytes,utilization" {
		t.Errorf("sample CSV header = %q", lines[0])
	}
	if len(lines)-1 != len(s.Samples()) {
		t.Errorf("sample CSV has %d rows, want %d", len(lines)-1, len(s.Samples()))
	}

	js.Reset()
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	decoded = nil
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("sample JSON does not parse: %v", err)
	}
	if len(decoded) != len(s.Samples()) {
		t.Errorf("sample JSON has %d samples, want %d", len(decoded), len(s.Samples()))
	}
}

// nopProbe is an attached-but-empty probe, for measuring hook cost.
type nopProbe struct{}

func (nopProbe) PacketEnqueued(QueueEvent)    {}
func (nopProbe) PacketTransmitted(QueueEvent) {}
func (nopProbe) PacketDelivered(Delivery)     {}
func (nopProbe) PacketDropped(Drop)           {}

// benchProbe runs a fixed packet workload with the given probe; the
// disabled (nil) case must cost the same as before probes existed —
// each hook site is a single nil check.
func benchProbe(b *testing.B, p Probe) {
	g, h0, h1 := twoHosts(b, 10*sim.Gbps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: p})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			net.Unicast(1, h0, h1, 400, 0)
		}
		net.Engine().Run()
		if net.Delivered() != 100 {
			b.Fatalf("delivered %d, want 100", net.Delivered())
		}
	}
}

func BenchmarkProbeOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) { benchProbe(b, nil) })
	b.Run("noop", func(b *testing.B) { benchProbe(b, nopProbe{}) })
	b.Run("trace", func(b *testing.B) { benchProbe(b, NewTraceRecorder(1024)) })
}
