package netsim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// twoHosts builds h0 - s0 - s1 - h1 with the given link rate.
func twoHosts(t testing.TB, rate sim.Rate) (*topology.Graph, topology.NodeID, topology.NodeID) {
	t.Helper()
	g := topology.New("pair")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	h0 := g.AddHost("h0", 0)
	h1 := g.AddHost("h1", 1)
	g.Connect(h0, s0, rate, topology.DefaultProp)
	g.Connect(s0, s1, rate, topology.DefaultProp)
	g.Connect(s1, h1, rate, topology.DefaultProp)
	return g, h0, h1
}

func newNet(t testing.TB, g *topology.Graph, model SwitchModel, onDeliver func(Delivery)) *Network {
	t.Helper()
	net, err := New(Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: func(topology.Node) SwitchModel { return model },
		OnDeliver:   onDeliver,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestZeroLoadLatencyCutThrough(t *testing.T) {
	// One 400-byte packet through two ULL switches at 10 Gb/s.
	// Expected: NIC(0.5us) + ser(320ns) + prop + [CT: 380ns + ser] x2
	// hops' worth of pipeline + prop x3 + NIC(0.5us).
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var got sim.Time
	net := newNet(t, g, Arista7150, func(d Delivery) { got = d.Latency })
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	if got == 0 {
		t.Fatal("packet not delivered")
	}
	// Exact pipeline: send NIC 500ns; host serializes 320ns; 3 links of
	// 250ns prop. At each CT switch the head exits 380ns after it
	// entered, and the tail follows one serialization later, so each
	// switch adds exactly 380ns to the tail time. Receive NIC 500ns.
	want := 500*sim.Nanosecond + // send NIC
		320*sim.Nanosecond + // first serialization
		3*250*sim.Nanosecond + // propagation
		2*380*sim.Nanosecond + // two cut-through latencies
		500*sim.Nanosecond // receive NIC
	if got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
}

func TestZeroLoadLatencyStoreAndForward(t *testing.T) {
	// The CCS models its 6us per-frame figure as output-port service
	// time: each store-and-forward hop holds the frame for exactly 6us
	// (which subsumes the wire serialization).
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var got sim.Time
	net := newNet(t, g, CiscoNexus7000, func(d Delivery) { got = d.Latency })
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	want := 500*sim.Nanosecond +
		320*sim.Nanosecond + // host NIC serialization
		3*250*sim.Nanosecond +
		2*6*sim.Microsecond + // two SF port services
		500*sim.Nanosecond
	if got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
}

func TestServiceTimePacesThroughput(t *testing.T) {
	// A CCS port sustains one frame per 6us regardless of wire speed:
	// 100 back-to-back frames drain in ~600us.
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var last sim.Time
	net := newNet(t, g, CiscoNexus7000, func(d Delivery) { last = d.At })
	for i := 0; i < 100; i++ {
		net.Unicast(routing.FlowID(i), h0, h1, 400, 0)
	}
	net.Engine().Run()
	if net.Delivered() != 100 {
		t.Fatalf("delivered %d, want 100", net.Delivered())
	}
	if last < 600*sim.Microsecond || last > 640*sim.Microsecond {
		t.Errorf("last delivery at %v, want ~606us (100 frames x 6us/frame)", last)
	}
}

func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var ct, sf sim.Time
	netCT := newNet(t, g, Arista7150, func(d Delivery) { ct = d.Latency })
	netCT.Unicast(1, h0, h1, 1500, 0)
	netCT.Engine().Run()
	netSF := newNet(t, g, CiscoNexus7000, func(d Delivery) { sf = d.Latency })
	netSF.Unicast(1, h0, h1, 1500, 0)
	netSF.Engine().Run()
	if ct >= sf {
		t.Errorf("cut-through %v not faster than store-and-forward %v", ct, sf)
	}
	// The gap should be roughly 2*(6us - 380ns) + 2*ser.
	if sf-ct < 10*sim.Microsecond {
		t.Errorf("gap %v suspiciously small", sf-ct)
	}
}

func TestFIFOQueueingDelay(t *testing.T) {
	// Two packets injected back-to-back from the same host: the second
	// waits a full serialization behind the first at the host NIC port.
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var lat []sim.Time
	net := newNet(t, g, Arista7150, func(d Delivery) { lat = append(lat, d.Latency) })
	net.Unicast(1, h0, h1, 400, 0)
	net.Unicast(2, h0, h1, 400, 0)
	net.Engine().Run()
	if len(lat) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(lat))
	}
	gap := lat[1] - lat[0]
	if gap != 320*sim.Nanosecond {
		t.Errorf("second packet delayed by %v, want one serialization (320ns)", gap)
	}
}

func TestQueueDropsWhenFull(t *testing.T) {
	// Tiny buffers: a burst must overflow the queue.
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	small := Arista7150
	small.BufferBytes = 1000 // fits two 400B packets, not three
	drops := 0
	net, err := New(Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: func(topology.Node) SwitchModel { return small },
		Host:        HostModel{NICLatency: 0, ForwardLatency: 0, BufferBytes: 1000},
		OnDrop:      func(Drop) { drops++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		net.Unicast(routing.FlowID(i), h0, h1, 400, 0)
	}
	net.Engine().Run()
	if drops == 0 {
		t.Error("no drops despite 4000B burst into 1000B buffer")
	}
	if net.Dropped() != uint64(drops) {
		t.Errorf("Dropped() = %d, hook saw %d", net.Dropped(), drops)
	}
	if net.Delivered()+net.Dropped() != 10 {
		t.Errorf("delivered %d + dropped %d != 10", net.Delivered(), net.Dropped())
	}
	if net.LinkDrops(0, h0) == 0 {
		t.Error("host uplink records no drops")
	}
}

func TestLoopbackDelivery(t *testing.T) {
	g, h0, _ := twoHosts(t, 10*sim.Gbps)
	var d Delivery
	net := newNet(t, g, Arista7150, func(dd Delivery) { d = dd })
	net.Unicast(1, h0, h0, 400, 7)
	net.Engine().Run()
	if d.Latency != 2*500*sim.Nanosecond {
		t.Errorf("loopback latency = %v, want 1us", d.Latency)
	}
	if d.Packet.Tag != 7 {
		t.Errorf("tag = %d, want 7", d.Packet.Tag)
	}
}

func TestHopCount(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	var hops int
	net := newNet(t, g, Arista7150, func(d Delivery) { hops = d.Packet.Hops })
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()
	// Two switches + destination host arrival.
	if hops != 3 {
		t.Errorf("hops = %d, want 3", hops)
	}
}

func TestServerForwardingPaysStackLatency(t *testing.T) {
	// BCube(2,1): hosts route through intermediate hosts for some pairs.
	g, err := topology.NewBCube(2, 1, topology.LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// h0 (addr 00) to h3 (addr 11) needs two switch hops and one
	// intermediate server hop.
	var lat sim.Time
	var hops int
	net := newNet(t, g, Arista7150, func(d Delivery) { lat, hops = d.Latency, d.Packet.Hops })
	net.Unicast(1, hosts[0], hosts[3], 400, 0)
	net.Engine().Run()
	if lat == 0 {
		t.Fatal("packet not delivered")
	}
	if lat < DefaultHost.ForwardLatency {
		t.Errorf("latency %v does not include the 15us server forwarding delay", lat)
	}
	if hops != 5 { // sw, host, sw, dst-host... plus arrival accounting
		t.Logf("hops = %d (switch,host,switch,host)", hops)
	}
}

func TestMMQueueingTheoryValidation(t *testing.T) {
	// The paper: "We have performed extensive validation testing of our
	// simulator to ensure that it produces correct results that match
	// queuing theory." An M/D/1 queue at utilization rho has expected
	// wait W = rho*S / (2*(1-rho)) where S is the (deterministic)
	// service time. Drive one link at rho = 0.5 with Poisson arrivals
	// and compare.
	g := topology.New("md1")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	h0 := g.AddHost("h0", 0)
	h1 := g.AddHost("h1", 1)
	fast := 100 * sim.Gbps // ingress so fast the only queue is s0->s1
	g.Connect(h0, s0, fast, 0)
	g.Connect(s0, s1, 10*sim.Gbps, 0)
	g.Connect(s1, h1, fast, 0)

	// Use zero-latency switches and hosts to isolate pure queueing.
	ideal := SwitchModel{Name: "ideal", Latency: 0, CutThrough: false, BufferBytes: 64 << 20}
	var lat []float64
	net, err := New(Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: func(topology.Node) SwitchModel { return ideal },
		Host:        HostModel{NICLatency: 0, ForwardLatency: 0, BufferBytes: 64 << 20},
		OnDeliver:   func(d Delivery) { lat = append(lat, d.Latency.Seconds()) },
	})
	if err != nil {
		t.Fatal(err)
	}

	const size = 400
	service := (10 * sim.Gbps).Serialize(size) // 320ns
	rho := 0.5
	meanGap := float64(service) / rho // picoseconds between arrivals
	rng := rand.New(rand.NewSource(99))
	const packets = 200_000
	at := sim.Time(0)
	eng := net.Engine()
	for i := 0; i < packets; i++ {
		at += sim.Time(rng.ExpFloat64() * meanGap)
		p := Packet{Flow: routing.FlowID(i), Src: h0, Dst: h1, Size: size, Waypoint: NoWaypoint}
		func(p Packet, at sim.Time) {
			eng.Schedule(at, func() { net.Send(p) })
		}(p, at)
	}
	eng.Run()
	if len(lat) != packets {
		t.Fatalf("delivered %d, want %d (drops: %d)", len(lat), packets, net.Dropped())
	}
	mean := 0.0
	for _, l := range lat {
		mean += l
	}
	mean /= float64(len(lat))
	// Expected latency: ingress ser (400B @ 100G = 32ns) + wait +
	// service + egress ser = 32 + W + 320 + 32 ns.
	s := service.Seconds()
	wait := rho * s / (2 * (1 - rho))
	base := (fast.Serialize(size)).Seconds() * 2
	want := base + wait + s
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("M/D/1 mean latency = %.1fns, want %.1fns (±5%%)", mean*1e9, want*1e9)
	}
}

func TestConfigErrors(t *testing.T) {
	g, _, _ := twoHosts(t, sim.Gbps)
	if _, err := New(Config{Graph: nil, Router: routing.NewECMP(g)}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(Config{Graph: g, Router: nil}); err == nil {
		t.Error("nil router accepted")
	}
}

func TestSendPanics(t *testing.T) {
	g, h0, h1 := twoHosts(t, sim.Gbps)
	net := newNet(t, g, Arista7150, nil)
	for name, p := range map[string]Packet{
		"zero size":     {Src: h0, Dst: h1, Size: 0, Waypoint: NoWaypoint},
		"switch source": {Src: g.Switches()[0], Dst: h1, Size: 1, Waypoint: NoWaypoint},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			net.Send(p)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Time {
		g, h0, h1 := twoHosts(t, 10*sim.Gbps)
		var lat []sim.Time
		net := newNet(t, g, Arista7150, func(d Delivery) { lat = append(lat, d.Latency) })
		rng := rand.New(rand.NewSource(5))
		at := sim.Time(0)
		for i := 0; i < 500; i++ {
			at += sim.Time(rng.ExpFloat64() * 1000 * float64(sim.Nanosecond))
			p := Packet{Flow: routing.FlowID(i), Src: h0, Dst: h1, Size: 400, Waypoint: NoWaypoint}
			func(p Packet, at sim.Time) {
				net.Engine().Schedule(at, func() { net.Send(p) })
			}(p, at)
		}
		net.Engine().Run()
		return lat
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkPacketForwarding(b *testing.B) {
	g, h0, h1 := twoHosts(b, 10*sim.Gbps)
	net := newNet(b, g, Arista7150, nil)
	eng := net.Engine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Unicast(routing.FlowID(i), h0, h1, 400, 0)
		eng.Run()
	}
}
