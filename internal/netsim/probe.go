package netsim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// PortRef identifies one directed link: the link and its transmitting
// endpoint.
type PortRef struct {
	Link topology.LinkID
	From topology.NodeID
}

// QueueEvent describes one packet passing through an output queue.
type QueueEvent struct {
	// At is the event's virtual time: for enqueues the instant the
	// packet joined the queue; for transmissions the instant its tail
	// left the port (which may lie after the probe call — the
	// transmitter commits to the completion time when it dequeues).
	At   sim.Time
	Port PortRef
	// QueuedBytes is the queue's depth after the event.
	QueuedBytes int
	Packet      Packet
}

// Probe observes the packet lifecycle inside a Network: every queue
// join, every transmission, every delivery, every drop. Attach one via
// Config.Probe or Network.SetProbe. With no probe attached each hook
// site costs a single nil check, so the default is effectively free
// (see BenchmarkProbeOverhead).
//
// Probes run synchronously inside the event loop and must not call
// back into the Network or Engine.
type Probe interface {
	// PacketEnqueued fires when a packet joins an output queue.
	PacketEnqueued(QueueEvent)
	// PacketTransmitted fires when the transmitter dequeues a packet;
	// QueueEvent.At is the transmit-completion time.
	PacketTransmitted(QueueEvent)
	// PacketDelivered fires when a packet reaches its destination host.
	PacketDelivered(Delivery)
	// PacketDropped fires when a packet is lost (full queue, failed
	// link, no route, hop limit).
	PacketDropped(Drop)
}

// multiProbe fans lifecycle events out to several probes in order.
type multiProbe []Probe

func (m multiProbe) PacketEnqueued(e QueueEvent) {
	for _, p := range m {
		p.PacketEnqueued(e)
	}
}
func (m multiProbe) PacketTransmitted(e QueueEvent) {
	for _, p := range m {
		p.PacketTransmitted(e)
	}
}
func (m multiProbe) PacketDelivered(d Delivery) {
	for _, p := range m {
		p.PacketDelivered(d)
	}
}
func (m multiProbe) PacketDropped(d Drop) {
	for _, p := range m {
		p.PacketDropped(d)
	}
}

// FaultChanged implements FaultObserver, forwarding to the members that
// observe faults.
func (m multiProbe) FaultChanged(c FaultChange) {
	for _, p := range m {
		if fo, ok := p.(FaultObserver); ok {
			fo.FaultChanged(c)
		}
	}
}

// Probes combines several probes into one; events fan out in argument
// order. Nil entries are skipped; with zero non-nil probes it returns
// nil (no probe).
func Probes(ps ...Probe) Probe {
	var m multiProbe
	for _, p := range ps {
		if p != nil {
			m = append(m, p)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

// TraceOp is the kind of a TraceEvent.
type TraceOp uint8

const (
	TraceEnqueue TraceOp = iota
	TraceTransmit
	TraceDeliver
	TraceDrop
	// TraceFault marks a fault-injection transition (cut, repair,
	// reconvergence) rather than a packet event; Packet and Flow are 0.
	TraceFault
)

func (op TraceOp) String() string {
	switch op {
	case TraceEnqueue:
		return "enqueue"
	case TraceTransmit:
		return "transmit"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	case TraceFault:
		return "fault"
	}
	return fmt.Sprintf("TraceOp(%d)", uint8(op))
}

// TraceEvent is one recorded step of a packet's life.
type TraceEvent struct {
	At     sim.Time
	Op     TraceOp
	Packet uint64
	Flow   routing.FlowID
	// Link and From locate the output port (enqueue/transmit); both are
	// -1 for deliveries and for drops that never reached a queue.
	Link topology.LinkID
	From topology.NodeID
	// Hops is the packet's hop count at the time of the event.
	Hops int
	// Reason is set on drops.
	Reason string
}

// TraceRecorder is a bounded per-packet trace: it implements Probe and
// keeps the first max lifecycle events of a run, with per-packet
// lookup. Deliveries carry the packet's traversed hop list when the
// Network was built with Config.RecordPaths.
type TraceRecorder struct {
	max    int
	events []TraceEvent
	// byPacket indexes event positions per packet ID, so PacketEvents
	// is O(k) in the packet's own event count instead of a scan of the
	// whole trace (fault rows carry no packet and are not indexed).
	byPacket map[uint64][]int32
	// paths holds the hop list of delivered packets (RecordPaths only),
	// capped by the same event bound.
	paths     map[uint64][]topology.NodeID
	truncated uint64
}

// NewTraceRecorder returns a recorder that keeps at most max events
// (max <= 0 means an unbounded trace — only for small runs).
func NewTraceRecorder(max int) *TraceRecorder {
	return &TraceRecorder{
		max:      max,
		byPacket: make(map[uint64][]int32),
		paths:    make(map[uint64][]topology.NodeID),
	}
}

func (t *TraceRecorder) add(e TraceEvent) bool {
	if t.max > 0 && len(t.events) >= t.max {
		t.truncated++
		return false
	}
	if e.Packet != 0 {
		t.byPacket[e.Packet] = append(t.byPacket[e.Packet], int32(len(t.events)))
	}
	t.events = append(t.events, e)
	return true
}

// PacketEnqueued implements Probe.
func (t *TraceRecorder) PacketEnqueued(e QueueEvent) {
	t.add(TraceEvent{At: e.At, Op: TraceEnqueue, Packet: e.Packet.ID, Flow: e.Packet.Flow,
		Link: e.Port.Link, From: e.Port.From, Hops: e.Packet.Hops})
}

// PacketTransmitted implements Probe.
func (t *TraceRecorder) PacketTransmitted(e QueueEvent) {
	t.add(TraceEvent{At: e.At, Op: TraceTransmit, Packet: e.Packet.ID, Flow: e.Packet.Flow,
		Link: e.Port.Link, From: e.Port.From, Hops: e.Packet.Hops})
}

// PacketDelivered implements Probe.
func (t *TraceRecorder) PacketDelivered(d Delivery) {
	ok := t.add(TraceEvent{At: d.At, Op: TraceDeliver, Packet: d.Packet.ID, Flow: d.Packet.Flow,
		Link: -1, From: -1, Hops: d.Packet.Hops})
	if ok && len(d.Packet.Path) > 0 {
		t.paths[d.Packet.ID] = append([]topology.NodeID(nil), d.Packet.Path...)
	}
}

// PacketDropped implements Probe.
func (t *TraceRecorder) PacketDropped(d Drop) {
	t.add(TraceEvent{At: d.At, Op: TraceDrop, Packet: d.Packet.ID, Flow: d.Packet.Flow,
		Link: -1, From: -1, Hops: d.Packet.Hops, Reason: d.Reason()})
}

// FaultChanged implements FaultObserver: the degradation window shows
// up in the trace as one row per affected link (reason "fail" or
// "repair") and a single Link=-1 row when routes reconverge.
func (t *TraceRecorder) FaultChanged(c FaultChange) {
	if c.Reconverged {
		reason := fmt.Sprintf("reconverged (%d links down)", c.DeadLinks)
		t.add(TraceEvent{At: c.At, Op: TraceFault, Link: -1, From: -1, Reason: reason})
		return
	}
	reason := "fail: " + c.Event.String()
	if c.Repair {
		reason = "repair: " + c.Event.String()
	}
	for _, l := range c.Links {
		t.add(TraceEvent{At: c.At, Op: TraceFault, Link: l, From: -1, Reason: reason})
	}
}

// Events returns the recorded trace in event order. The slice is live;
// do not mutate it.
func (t *TraceRecorder) Events() []TraceEvent { return t.events }

// Truncated reports how many events the bound discarded.
func (t *TraceRecorder) Truncated() uint64 { return t.truncated }

// PacketEvents returns the recorded events of one packet, in order.
// O(k) in the packet's own event count via the per-packet index — safe
// to call per delivered packet (the FlowTracker attribution path does).
func (t *TraceRecorder) PacketEvents(id uint64) []TraceEvent {
	idxs := t.byPacket[id]
	if len(idxs) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(idxs))
	for i, ei := range idxs {
		out[i] = t.events[ei]
	}
	return out
}

// Path returns the hop list of a delivered packet (nil unless the
// Network records paths — Config.RecordPaths).
func (t *TraceRecorder) Path(id uint64) []topology.NodeID { return t.paths[id] }

// WriteCSV writes the trace as CSV with a header row:
// at_ps,op,packet,flow,link,from,hops,reason. Fields are RFC-4180
// quoted when needed — fault-row reasons can carry commas and quotes.
func (t *TraceRecorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ps", "op", "packet", "flow", "link", "from", "hops", "reason"}); err != nil {
		return err
	}
	for _, e := range t.events {
		if err := cw.Write([]string{
			strconv.FormatInt(int64(e.At), 10),
			e.Op.String(),
			strconv.FormatUint(e.Packet, 10),
			strconv.FormatUint(uint64(e.Flow), 10),
			strconv.FormatInt(int64(e.Link), 10),
			strconv.FormatInt(int64(e.From), 10),
			strconv.Itoa(e.Hops),
			e.Reason,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// traceJSON is the JSON wire form of one trace event.
type traceJSON struct {
	AtPs   int64  `json:"at_ps"`
	Op     string `json:"op"`
	Packet uint64 `json:"packet"`
	Flow   uint64 `json:"flow"`
	Link   int64  `json:"link"`
	From   int64  `json:"from"`
	Hops   int    `json:"hops"`
	Reason string `json:"reason,omitempty"`
}

// WriteJSON writes the trace as a JSON array of event objects.
func (t *TraceRecorder) WriteJSON(w io.Writer) error {
	out := make([]traceJSON, 0, len(t.events))
	for _, e := range t.events {
		out = append(out, traceJSON{
			AtPs: int64(e.At), Op: e.Op.String(), Packet: e.Packet,
			Flow: uint64(e.Flow), Link: int64(e.Link), From: int64(e.From),
			Hops: e.Hops, Reason: e.Reason,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// QueueSample is one periodic observation of a directed link.
type QueueSample struct {
	At   sim.Time
	Port PortRef
	// QueuedBytes is the instantaneous output-queue depth.
	QueuedBytes int
	// Utilization is the port's busy fraction over the sample interval
	// just ended.
	Utilization float64
}

// QueueSampler periodically samples directed links' queue depth and
// utilization, and aggregates per-port depth statistics with
// metrics.Stats. It also implements Probe to track each port's
// high-water queue depth exactly (event-driven, between samples).
//
// Ports that were idle over a whole interval (empty queue, zero
// utilization) produce no sample row — on large topologies most ports
// are idle most of the time and recording them would swamp the trace —
// but their DepthStats still count every tick. Use Watch to restrict
// sampling to specific ports.
//
// Create one with NewQueueSampler, optionally attach it as a probe for
// exact peaks, and call Start(until) before running the engine.
type QueueSampler struct {
	net      *Network
	interval sim.Time
	// tol is the coalescing tolerance each tick declares (see
	// SetCoalesceTolerance).
	tol sim.Time
	// watch restricts sampling to these directed-link indices (empty
	// means every port).
	watch []int
	// started is set by Start; Watch calls after it take effect at the
	// next tick.
	started bool

	samples []QueueSample
	// depth aggregates sampled queue depths per directed link index.
	depth []metrics.Stats
	// peak is the exact per-port high-water mark, maintained by the
	// Probe hooks when the sampler is attached as one.
	peak []int
	// lastBusy remembers each port's cumulative busy time at the
	// previous tick, to report per-interval utilization.
	lastBusy []sim.Time

	// Registry instruments (nil until Bind): network-wide aggregates
	// published every tick, plus per-port gauges for watched ports.
	gQueuedTotal *metrics.Gauge
	gQueuedMax   *metrics.Gauge
	gUtilMax     *metrics.Gauge
	gUtilMean    *metrics.Gauge
	gActivePorts *metrics.Gauge
	portGauges   map[int][2]*metrics.Gauge // dir index -> {depth, util}
	reg          *metrics.Registry
}

// NewQueueSampler returns a sampler for n ticking every interval of
// virtual time.
func NewQueueSampler(n *Network, interval sim.Time) *QueueSampler {
	if interval <= 0 {
		panic(fmt.Sprintf("netsim: sampler interval %v", interval))
	}
	return &QueueSampler{
		net:      n,
		interval: interval,
		depth:    make([]metrics.Stats, len(n.dirs)),
		peak:     make([]int, len(n.dirs)),
		lastBusy: make([]sim.Time, len(n.dirs)),
	}
}

// Watch restricts sampling to the given ports; by default every
// directed link is sampled. Calling it after Start is allowed and takes
// effect at the next tick; each newly watched port's utilization
// baseline is reset at the call, so its first interval reports only
// busy time accumulated from this moment (not since the run began).
func (s *QueueSampler) Watch(ports ...PortRef) {
	s.watch = s.watch[:0]
	for _, p := range ports {
		i := s.net.dirIndex(p)
		if s.started {
			s.lastBusy[i] = s.net.dirs[i].busyTime
		}
		s.watch = append(s.watch, i)
	}
}

// Bind registers network-wide queue gauges in r, published on every
// tick, plus per-port depth/utilization gauges (labels link, from) for
// each watched port. Call after any Watch and before Start.
//
//	netsim_queue_bytes_total  gauge  bytes queued across all ports
//	netsim_queue_bytes_max    gauge  deepest output queue
//	netsim_util_max           gauge  busiest port's interval utilization
//	netsim_util_mean          gauge  mean interval utilization (sampled ports)
//	netsim_ports_active       gauge  ports with a non-idle interval
//	netsim_port_queue_bytes   gauge  per watched port
//	netsim_port_utilization   gauge  per watched port
func (s *QueueSampler) Bind(r *metrics.Registry) {
	s.reg = r
	s.gQueuedTotal = r.Gauge("netsim_queue_bytes_total", "bytes queued across all sampled ports", nil)
	s.gQueuedMax = r.Gauge("netsim_queue_bytes_max", "deepest output queue", nil)
	s.gUtilMax = r.Gauge("netsim_util_max", "busiest sampled port's utilization over the last interval", nil)
	s.gUtilMean = r.Gauge("netsim_util_mean", "mean utilization of sampled ports over the last interval", nil)
	s.gActivePorts = r.Gauge("netsim_ports_active", "sampled ports with a non-idle last interval", nil)
	s.portGauges = make(map[int][2]*metrics.Gauge, len(s.watch))
	for _, i := range s.watch {
		p := s.net.portRef(i)
		labels := metrics.Labels{
			"link": fmt.Sprint(int64(p.Link)),
			"from": fmt.Sprint(int64(p.From)),
		}
		s.portGauges[i] = [2]*metrics.Gauge{
			r.Gauge("netsim_port_queue_bytes", "output-queue depth of a watched port", labels),
			r.Gauge("netsim_port_utilization", "interval utilization of a watched port", labels),
		}
	}
}

// Start schedules periodic sampling on the network's scheduler until
// the given virtual time (inclusive). Call it before running. On a
// sharded network each tick runs as a global phase — every shard
// parked — so one sampler reads every port's queue race-free, and the
// tick sequence is identical for every shard count.
// SetCoalesceTolerance lets each sampler tick run up to tol of virtual
// time after its nominal instant, batched with other global work into
// one all-shards-parked phase on a sharded network (see
// sim.Scheduler.ScheduleFlex). Zero (the default) keeps exact tick
// times; a single-engine network ignores the tolerance entirely. Call
// before Start; negative tolerances panic.
func (s *QueueSampler) SetCoalesceTolerance(tol sim.Time) {
	if tol < 0 {
		panic(fmt.Sprintf("netsim: negative coalesce tolerance %v", tol))
	}
	s.tol = tol
}

func (s *QueueSampler) Start(until sim.Time) {
	s.started = true
	sched := s.net.Scheduler()
	var tick func()
	tick = func() {
		s.sample(sched.Now())
		if sched.Now()+s.interval <= until {
			sched.AfterFlex(s.interval, s.tol, tick)
		}
	}
	sched.AfterFlex(s.interval, s.tol, tick)
}

// sample records one observation per watched directed link and
// publishes the bound registry gauges.
func (s *QueueSampler) sample(now sim.Time) {
	var agg sampleAgg
	if len(s.watch) > 0 {
		for _, i := range s.watch {
			s.sampleOne(i, now, &agg)
		}
	} else {
		for i := range s.net.dirs {
			s.sampleOne(i, now, &agg)
		}
	}
	if s.reg == nil {
		return
	}
	s.gQueuedTotal.Set(float64(agg.totalBytes))
	s.gQueuedMax.Set(float64(agg.maxBytes))
	s.gUtilMax.Set(agg.maxUtil)
	if agg.ports > 0 {
		s.gUtilMean.Set(agg.sumUtil / float64(agg.ports))
	}
	s.gActivePorts.Set(float64(agg.active))
}

// sampleAgg accumulates one tick's network-wide view.
type sampleAgg struct {
	ports      int
	active     int
	totalBytes int64
	maxBytes   int
	sumUtil    float64
	maxUtil    float64
}

func (s *QueueSampler) sampleOne(i int, now sim.Time, agg *sampleAgg) {
	dl := &s.net.dirs[i]
	util := (dl.busyTime - s.lastBusy[i]).Seconds() / s.interval.Seconds()
	if util > 1 {
		util = 1 // a frame mid-flight can straddle the tick
	}
	s.lastBusy[i] = dl.busyTime
	s.depth[i].Add(float64(dl.queuedBytes))
	if dl.queuedBytes > s.peak[i] {
		s.peak[i] = dl.queuedBytes
	}
	agg.ports++
	agg.totalBytes += int64(dl.queuedBytes)
	agg.sumUtil += util
	if dl.queuedBytes > agg.maxBytes {
		agg.maxBytes = dl.queuedBytes
	}
	if util > agg.maxUtil {
		agg.maxUtil = util
	}
	if g, ok := s.portGauges[i]; ok {
		g[0].Set(float64(dl.queuedBytes))
		g[1].Set(util)
	}
	if dl.queuedBytes == 0 && util == 0 {
		return // idle interval: no row
	}
	agg.active++
	s.samples = append(s.samples, QueueSample{
		At: now, Port: s.net.portRef(i), QueuedBytes: dl.queuedBytes, Utilization: util,
	})
}

// PacketEnqueued implements Probe: it keeps the exact high-water mark,
// which periodic sampling alone would miss.
func (s *QueueSampler) PacketEnqueued(e QueueEvent) {
	i := s.net.dirIndex(e.Port)
	if e.QueuedBytes > s.peak[i] {
		s.peak[i] = e.QueuedBytes
	}
}

// PacketTransmitted implements Probe (no-op).
func (s *QueueSampler) PacketTransmitted(QueueEvent) {}

// PacketDelivered implements Probe (no-op).
func (s *QueueSampler) PacketDelivered(Delivery) {}

// PacketDropped implements Probe (no-op).
func (s *QueueSampler) PacketDropped(Drop) {}

// Samples returns every recorded sample in time order. The slice is
// live; do not mutate it.
func (s *QueueSampler) Samples() []QueueSample { return s.samples }

// DepthStats returns the sampled queue-depth statistics of one port.
func (s *QueueSampler) DepthStats(p PortRef) *metrics.Stats {
	return &s.depth[s.net.dirIndex(p)]
}

// PeakDepth returns the port's high-water queue depth: exact when the
// sampler is attached as a Probe, else the largest sampled depth.
func (s *QueueSampler) PeakDepth(p PortRef) int { return s.peak[s.net.dirIndex(p)] }

// WriteCSV writes the samples as CSV with a header row:
// at_ps,link,from,queued_bytes,utilization.
func (s *QueueSampler) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ps", "link", "from", "queued_bytes", "utilization"}); err != nil {
		return err
	}
	for _, smp := range s.samples {
		if err := cw.Write([]string{
			strconv.FormatInt(int64(smp.At), 10),
			strconv.FormatInt(int64(smp.Port.Link), 10),
			strconv.FormatInt(int64(smp.Port.From), 10),
			strconv.Itoa(smp.QueuedBytes),
			strconv.FormatFloat(smp.Utilization, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sampleJSON is the JSON wire form of one queue sample.
type sampleJSON struct {
	AtPs        int64   `json:"at_ps"`
	Link        int64   `json:"link"`
	From        int64   `json:"from"`
	QueuedBytes int     `json:"queued_bytes"`
	Utilization float64 `json:"utilization"`
}

// WriteJSON writes the samples as a JSON array of sample objects.
func (s *QueueSampler) WriteJSON(w io.Writer) error {
	out := make([]sampleJSON, 0, len(s.samples))
	for _, smp := range s.samples {
		out = append(out, sampleJSON{
			AtPs: int64(smp.At), Link: int64(smp.Port.Link), From: int64(smp.Port.From),
			QueuedBytes: smp.QueuedBytes, Utilization: smp.Utilization,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// RunTelemetry summarizes one simulation run end to end: engine work
// (events, calendar high-water mark, wall-clock rate) plus the
// network's packet counters.
type RunTelemetry struct {
	// Events is the number of simulator events processed.
	Events uint64
	// PeakPending is the event queue's high-water mark.
	PeakPending int
	// Wall is real time spent in the event loop.
	Wall time.Duration
	// EventsPerSec is the wall-clock event rate.
	EventsPerSec float64
	// Delivered and Dropped count packets.
	Delivered, Dropped uint64
	// Shards is the per-shard breakdown of a sharded run (nil for the
	// legacy single engine) — see sim.Telemetry.Shards.
	Shards []sim.ShardTelemetry
}

func (t RunTelemetry) String() string {
	s := fmt.Sprintf("%d events (peak calendar %d) in %v (%.3g ev/s); %d delivered, %d dropped",
		t.Events, t.PeakPending, t.Wall.Round(time.Microsecond), t.EventsPerSec, t.Delivered, t.Dropped)
	if len(t.Shards) > 0 {
		parts := make([]string, len(t.Shards))
		for i, sh := range t.Shards {
			parts[i] = fmt.Sprintf("%d:%dev", sh.Shard, sh.Events)
		}
		s += fmt.Sprintf("; shards [%s]", strings.Join(parts, " "))
	}
	return s
}

// Telemetry reports the run so far.
func (n *Network) Telemetry() RunTelemetry {
	et := n.Scheduler().Telemetry()
	return RunTelemetry{
		Events:       et.Events,
		PeakPending:  et.PeakPending,
		Wall:         et.Wall,
		EventsPerSec: et.EventsPerSecond(),
		Delivered:    n.Delivered(),
		Dropped:      n.Dropped(),
		Shards:       et.Shards,
	}
}

// portRef maps a directed-link index back to its (link, from) identity.
func (n *Network) portRef(di int) PortRef {
	l := n.g.Link(topology.LinkID(di / 2))
	from := l.A
	if di%2 == 1 {
		from = l.B
	}
	return PortRef{Link: l.ID, From: from}
}

// dirIndex maps a PortRef to the directed-link index.
func (n *Network) dirIndex(p PortRef) int {
	di := 2 * int(p.Link)
	if n.g.Link(p.Link).B == p.From {
		di++
	}
	return di
}
