// Package netsim is a packet-level discrete-event network simulator,
// rebuilt from the Quartz paper's description of its evaluation tool
// (§7): hosts emit packets, switches forward them with either
// cut-through or store-and-forward timing, and finite FIFO output
// queues produce the congestion behaviour the paper measures.
//
// The two switch models of Table 16 are provided as CiscoNexus7000
// (6 µs store-and-forward "CCS") and Arista7150 (380 ns cut-through
// "ULL").
//
// Observability: a Probe (Config.Probe / Network.SetProbe) sees every
// enqueue, transmission, delivery, and drop; TraceRecorder keeps a
// bounded per-packet trace, QueueSampler takes periodic queue-depth and
// utilization samples, and Network.Telemetry summarizes a run. With no
// probe attached the hooks cost one nil check each.
package netsim

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// SwitchModel describes a switch's forwarding behaviour.
type SwitchModel struct {
	// Name labels the model in reports ("ULL", "CCS", ...).
	Name string
	// Latency is the forwarding latency: for cut-through switches the
	// delay from head arrival to head departure; for store-and-forward
	// the processing delay after the full frame arrives.
	Latency sim.Time
	// CutThrough selects cut-through forwarding.
	CutThrough bool
	// ECNThresholdBytes marks packets (Packet.Marked) when the output
	// queue they join exceeds this depth — DCTCP-style explicit
	// congestion notification (§2.1.4). Zero disables marking.
	ECNThresholdBytes int
	// ServiceTime is the per-packet forwarding occupancy of an output
	// port: a store-and-forward chassis moves one frame through a port
	// every ServiceTime even when the wire could go faster. Zero means
	// wire-speed (cut-through ASICs).
	ServiceTime sim.Time
	// BufferBytes is the output-queue capacity per port; packets
	// arriving at a full queue are dropped.
	BufferBytes int
}

// Switch models of Table 16.
var (
	// CiscoNexus7000 is the paper's core switch (CCS): 6 µs
	// store-and-forward, 768 10 Gb/s or 192 40 Gb/s ports. The 6 µs
	// per-frame figure is modelled as output-port service time: a
	// zero-load transit takes 6 µs and a port sustains one frame per
	// 6 µs, which is what produces the congestion behaviour of the
	// paper's three-tier baseline (§7.1).
	CiscoNexus7000 = SwitchModel{
		Name:        "CCS",
		Latency:     0,
		CutThrough:  false,
		ServiceTime: 6 * sim.Microsecond,
		BufferBytes: 2 << 20,
	}
	// Arista7150 is the paper's ultra-low-latency switch (ULL): 380 ns
	// cut-through, 64 10 Gb/s or 16 40 Gb/s ports.
	Arista7150 = SwitchModel{
		Name:        "ULL",
		Latency:     380 * sim.Nanosecond,
		CutThrough:  true,
		BufferBytes: 1 << 20,
	}
)

// HostModel describes end-host behaviour.
type HostModel struct {
	// NICLatency is added once at send and once at receive (Table 2:
	// 0.5 µs for a state-of-the-art NIC).
	NICLatency sim.Time
	// ForwardLatency is the OS stack delay when a *host* forwards a
	// packet (server-centric topologies like BCube; Table 2 cites 15 µs
	// for a standard network stack).
	ForwardLatency sim.Time
	// BufferBytes is the NIC output-queue capacity.
	BufferBytes int
}

// DefaultHost matches the paper's simulations, which isolate network
// latency: a low-latency NIC and the standard 15 µs stack penalty for
// server-side forwarding.
var DefaultHost = HostModel{
	NICLatency:     500 * sim.Nanosecond,
	ForwardLatency: 15 * sim.Microsecond,
	BufferBytes:    1 << 20,
}

// NoWaypoint marks a packet that routes directly to its destination.
const NoWaypoint topology.NodeID = -1

// Packet is one simulated frame.
type Packet struct {
	ID      uint64
	Flow    routing.FlowID
	Src     topology.NodeID
	Dst     topology.NodeID
	Size    int // bytes on the wire
	Created sim.Time
	// Waypoint is a VLB intermediate switch, or NoWaypoint.
	Waypoint topology.NodeID
	// Tag lets workloads group deliveries (task index, request/reply).
	Tag int
	// UserData is carried untouched for transports (e.g. TCP sequence
	// numbers).
	UserData uint64
	// Priority selects the output-queue class: 0 is served strictly
	// before 1 (DeTail-style two-class scheduling, §2.1.4). Values
	// above 1 are clamped.
	Priority uint8
	// Marked is set by ECN-enabled switches when the packet joined a
	// queue above the marking threshold.
	Marked bool
	// Hops counts forwarding elements traversed (switches and
	// forwarding hosts).
	Hops int
	// Hash is the flow's routing hash, computed once at injection
	// (Send) so per-hop ECMP/VLB/KSP selection does not rehash the flow
	// ID at every switch.
	Hash uint64
	// Path is the node sequence the packet traversed (source through
	// destination), recorded only when Config.RecordPaths is set.
	Path []topology.NodeID
}

// Delivery reports a packet reaching its destination host.
type Delivery struct {
	Packet  Packet
	At      sim.Time
	Latency sim.Time
}

// DropCode identifies why a packet was dropped. The forwarding hot
// path records only the code (plus the link or routing error involved);
// the human-readable string is formatted lazily by Drop.Reason, so
// simulations without drop consumers never pay for formatting.
type DropCode uint8

const (
	DropCodeOther DropCode = iota
	DropCodeQueueFull
	DropCodeLinkDown
	DropCodeLinkCut
	DropCodeNoRoute
	DropCodeHopLimit
)

// Class maps the code to the drop-class labels used by FlowTracker and
// the metrics registry (DropQueueFull, DropLinkDown, ...).
func (c DropCode) Class() string {
	switch c {
	case DropCodeQueueFull:
		return DropQueueFull
	case DropCodeLinkDown:
		return DropLinkDown
	case DropCodeLinkCut:
		return DropLinkCut
	case DropCodeNoRoute:
		return DropNoRoute
	case DropCodeHopLimit:
		return DropHopLimit
	}
	return DropOther
}

// Drop reports a packet lost to a full queue or a routing failure.
type Drop struct {
	Packet Packet
	At     sim.Time
	Code   DropCode
	// Link is the link whose queue/failure caused the drop, or -1 when
	// no single link is involved (no-route, hop-limit).
	Link topology.LinkID
	// Err is the routing error behind a DropCodeNoRoute drop.
	Err error
}

// Reason renders the drop as the human-readable string older consumers
// logged. Formatting happens here, on demand, never on the hot path.
func (d Drop) Reason() string {
	switch d.Code {
	case DropCodeQueueFull:
		return fmt.Sprintf("queue full on link %d", d.Link)
	case DropCodeLinkDown:
		return fmt.Sprintf("link %d down", d.Link)
	case DropCodeLinkCut:
		return fmt.Sprintf("link %d cut", d.Link)
	case DropCodeNoRoute:
		return "no route: " + d.Err.Error()
	case DropCodeHopLimit:
		return "hop limit exceeded (routing loop?)"
	}
	return "dropped"
}

// Config assembles a Network.
type Config struct {
	Graph  *topology.Graph
	Router routing.Router
	// Engine to schedule on; New creates one when nil. Mutually
	// exclusive with Shards.
	Engine *sim.Engine
	// Shards >= 1 selects sharded parallel execution: the topology is
	// partitioned into that many shards (hosts follow their ToR; see
	// PartitionByRing), each with its own event loop, synchronized
	// conservatively with the minimum cross-shard propagation delay as
	// lookahead. Results are identical for every shard count K >= 1
	// (the "sharded family"), but differ from the legacy Shards == 0
	// single-engine mode, which keeps its historical packet-ID
	// sequence. Run control must then go through Scheduler/RunUntil
	// rather than Engine.
	Shards int
	// SwitchModel selects the model per switch; nil means Arista7150
	// everywhere.
	SwitchModel func(topology.Node) SwitchModel
	// Host is the end-host model; zero value means DefaultHost.
	Host HostModel
	// OnDeliver and OnDrop are optional hooks. In sharded mode they
	// are called from shard goroutines concurrently and must be safe
	// for that — or use OnDeliverSharded, whose shard argument lets a
	// per-shard accumulator (traffic.ShardedHarness) stay lock-free.
	OnDeliver func(Delivery)
	OnDrop    func(Drop)
	// OnDeliverSharded, when set in sharded mode, is called instead of
	// OnDeliver with the delivering shard's index. Deliveries for one
	// shard index never run concurrently with each other.
	OnDeliverSharded func(shard int, d Delivery)
	// Probe observes the full packet lifecycle (enqueue, transmit,
	// deliver, drop); nil — the default — costs nothing. Combine
	// several with Probes. In sharded mode the same probe instance is
	// attached to every shard and must be concurrency-safe; prefer
	// Observe, which builds per-shard observers and merges them.
	Probe Probe
	// RecordPaths attaches the traversed node sequence to every packet
	// (Packet.Path) — for route validation and debugging; it allocates
	// per hop, so leave it off in large runs.
	RecordPaths bool
}

// maxHops aborts forwarding loops; no experiment topology has paths
// anywhere near this long.
const maxHops = 64

// Network simulates packet forwarding on a topology.
type Network struct {
	g *topology.Graph

	models []SwitchModel // per node; valid for switches
	host   HostModel
	dirs   []dirLink // 2*link + (0 if A->B else 1)
	record bool

	// faults is the unified failure surface (lazily built by Faults).
	faults *FaultInjector

	// txDone is the shared transmit-completion action (see
	// txDoneAction); with the per-shard netEvent pools it keeps the
	// steady-state packet lifecycle allocation-free.
	txDone txDoneAction

	// Execution. Exactly one of eng (legacy single engine) and sharded
	// is non-nil. shards always has at least one entry: in legacy mode
	// shards[0] wraps eng and the lookup tables map everything to
	// shard 0, so the hot path is shared between modes.
	eng         *sim.Engine
	sharded     *sim.ShardedEngine
	shards      []*netShard
	shardOfNode []int32 // node  -> owning shard
	shardOfDir  []int32 // dir   -> owning shard (the transmitting endpoint's)

	// nextID is the legacy global packet-ID sequence; hostSeq the
	// sharded family's per-source sequence (IDs must not depend on
	// shard interleaving, since ECMP per-packet spray hashes them).
	nextID  uint64
	hostSeq []uint64

	// routersCloned records whether each shard got its own router copy
	// (routing.ShardCloner), so rerouteAll knows how many to rebuild.
	routersCloned bool
}

// netShard is the per-shard mutable half of Network: everything the
// packet hot path writes. Each instance is touched only by its own
// shard's goroutine during windows (and by the coordinator during
// global phases, with shards parked), so none of it needs atomics. In
// legacy mode there is exactly one, aliased to the single engine.
type netShard struct {
	idx    int
	eng    *sim.Engine
	router routing.Router

	// freeEv is this shard's pooled-event free list. Records migrate
	// between shards with cross-shard packets (popped by the sender,
	// freed by the receiver); the barrier orders those accesses.
	freeEv *netEvent

	probe     Probe
	onDeliver func(Delivery)
	onDrop    func(Drop)

	delivered uint64
	dropped   uint64
}

// netEvent is a pooled, typed simulation event (sim.Action): one record
// carries a packet through NIC delays, propagation, and host
// forwarding. Records recycle through Network.freeEv, so after warm-up
// a packet's whole lifecycle schedules without heap allocation —
// replacing the per-event closures that used to dominate the profile.
type netEvent struct {
	n    *Network
	kind uint8
	node topology.NodeID
	ser  sim.Time
	p    Packet
	next *netEvent // free-list link
}

const (
	evArrive  uint8 = iota // packet tail reaches node after propagation
	evDeliver              // NIC receive (or loopback) completes
	evForward              // source NIC or host stack delay elapsed
)

// Run implements sim.Action. The record is returned to the executing
// shard's pool before dispatch so the handlers it calls can
// immediately reuse it. The event always executes on the shard owning
// ev.node (cross-shard arrivals travel through the synchronizer's
// rings into that shard's engine), so the pool access is single-
// threaded.
func (ev *netEvent) Run(int64, int64) {
	n, kind, node, ser, p := ev.n, ev.kind, ev.node, ev.ser, ev.p
	sh := n.shards[n.shardOfNode[node]]
	ev.p = Packet{} // release the Path slice, if any
	ev.next = sh.freeEv
	sh.freeEv = ev
	switch kind {
	case evArrive:
		n.arrive(sh, node, p, ser)
	case evDeliver:
		n.deliver(sh, p)
	case evForward:
		n.forward(sh, node, p, sh.eng.Now(), ser)
	}
}

// newEvent takes a record from the shard's pool (or allocates the
// pool's next record) and fills it.
func (n *Network) newEvent(sh *netShard, kind uint8, node topology.NodeID, ser sim.Time, p Packet) *netEvent {
	ev := sh.freeEv
	if ev == nil {
		ev = &netEvent{n: n}
	} else {
		sh.freeEv = ev.next
		ev.next = nil
	}
	ev.kind, ev.node, ev.ser, ev.p = kind, node, ser, p
	return ev
}

// txDoneAction completes a transmission: Run's arguments encode the
// direction index and packet size, so the one value embedded in Network
// serves every port with zero allocation. It always runs on the shard
// owning the direction (the transmit side scheduled it locally).
type txDoneAction struct{ n *Network }

func (t *txDoneAction) Run(di, size int64) {
	n := t.n
	n.dirs[di].queuedBytes -= int(size)
	n.transmitNext(int(di), n.shards[n.shardOfDir[di]])
}

// numPriorities is the number of output-queue classes per port.
const numPriorities = 2

// queued is one packet waiting at an output port.
type queued struct {
	p Packet
	// ready is the earliest instant the transmitter may start (switch
	// processing complete; may lie in the past for cut-through heads).
	ready sim.Time
	// tailIn is when the packet's tail fully arrived at this node: the
	// retransmission cannot complete before it.
	tailIn sim.Time
	// ser is the outbound occupancy (wire serialization or the
	// forwarding engine's per-frame service, whichever is longer).
	ser sim.Time
}

// pktQueue is a power-of-two ring buffer of queued packets. The old
// representation popped with dl.queues[pri] = dl.queues[pri][1:], which
// walks the backing array forward (forcing append to reallocate) and
// pins every popped packet until the array is dropped; the ring reuses
// its storage indefinitely and zeroes each slot as it pops.
type pktQueue struct {
	buf  []queued // len(buf) is a power of two (or zero before first push)
	head int      // index of the front element; always < len(buf)
	n    int
}

func (q *pktQueue) len() int { return q.n }

func (q *pktQueue) push(item queued) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = item
	q.n++
}

func (q *pktQueue) pop() queued {
	item := q.buf[q.head]
	q.buf[q.head] = queued{} // release packet references
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return item
}

// at returns the i-th element from the front (for fault-time flushes).
func (q *pktQueue) at(i int) *queued {
	return &q.buf[(q.head+i)&(len(q.buf)-1)]
}

// reset empties the queue, keeping capacity and releasing references.
func (q *pktQueue) reset() {
	for i := range q.buf {
		q.buf[i] = queued{}
	}
	q.head, q.n = 0, 0
}

func (q *pktQueue) grow() {
	newCap := 2 * len(q.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]queued, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// dirLink is one direction of a link: its own transmitter and
// strict-priority output queues.
type dirLink struct {
	rate        sim.Rate
	prop        sim.Time
	queuedBytes int
	capBytes    int
	down        bool

	queues [numPriorities]pktQueue
	busy   bool
	freeAt sim.Time

	drops     uint64
	txPackets uint64
	txBytes   uint64
	busyTime  sim.Time
}

// New builds a network simulator from cfg.
func New(cfg Config) (*Network, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("netsim: nil graph")
	}
	if cfg.Router == nil {
		return nil, fmt.Errorf("netsim: nil router")
	}
	if cfg.Shards >= 1 && cfg.Engine != nil {
		return nil, fmt.Errorf("netsim: Config.Engine and Config.Shards are mutually exclusive")
	}
	host := cfg.Host
	if host == (HostModel{}) {
		host = DefaultHost
	}
	n := &Network{
		g:      cfg.Graph,
		host:   host,
		record: cfg.RecordPaths,
	}
	n.txDone = txDoneAction{n: n}
	n.models = make([]SwitchModel, cfg.Graph.NumNodes())
	for i := 0; i < cfg.Graph.NumNodes(); i++ {
		node := cfg.Graph.Node(topology.NodeID(i))
		if node.Kind != topology.Switch {
			continue
		}
		if cfg.SwitchModel != nil {
			n.models[i] = cfg.SwitchModel(node)
		} else {
			n.models[i] = Arista7150
		}
	}
	n.dirs = make([]dirLink, 2*cfg.Graph.NumLinks())
	for i := 0; i < cfg.Graph.NumLinks(); i++ {
		l := cfg.Graph.Link(topology.LinkID(i))
		for d := 0; d < 2; d++ {
			from := l.A
			if d == 1 {
				from = l.B
			}
			capBytes := n.bufferOf(from)
			n.dirs[2*i+d] = dirLink{rate: l.Rate, prop: l.Prop, capBytes: capBytes}
		}
	}
	if cfg.Shards >= 1 {
		if err := n.initSharded(cfg); err != nil {
			return nil, err
		}
	} else {
		n.initLegacy(cfg)
	}
	return n, nil
}

// initLegacy wires the historical single-engine execution: one shard
// aliasing the one engine, every lookup table mapping to it.
func (n *Network) initLegacy(cfg Config) {
	eng := cfg.Engine
	if eng == nil {
		// The calendar queue is ~2x faster than the binary heap on
		// packet workloads and produces the identical event order.
		eng = sim.NewCalendarEngine()
	}
	n.eng = eng
	n.shards = []*netShard{{
		idx:       0,
		eng:       eng,
		router:    cfg.Router,
		probe:     cfg.Probe,
		onDeliver: cfg.OnDeliver,
		onDrop:    cfg.OnDrop,
	}}
	n.shardOfNode = make([]int32, cfg.Graph.NumNodes())
	n.shardOfDir = make([]int32, len(n.dirs))
}

// initSharded partitions the topology, builds the synchronizer with a
// per-shard-pair lookahead matrix derived from the cross-shard links,
// and wires per-shard state.
//
// The matrix entry for shards (i, j) is the minimum over directed
// links from an i-node to a j-node of prop + txExtra: propagation
// delay plus the provable floor between the event that initiates a
// transmit and the tail leaving the port. The floor is per-transmitter
// (see txExtra); pairs with no direct link get 0 (the synchronizer
// bounds them through its shortest-path closure). Compared with the
// old single scalar (the global minimum propagation delay), each pair
// is bounded by its own — usually larger — delay, which widens every
// shard's parallel window.
func (n *Network) initSharded(cfg Config) error {
	part, err := PartitionByRing(cfg.Graph, cfg.Shards)
	if err != nil {
		return err
	}
	k := part.Shards
	n.shardOfNode = part.Of
	n.shardOfDir = make([]int32, len(n.dirs))
	// Per-node minimum adjacent link rate: the slowest wire that can
	// feed a cut-through switch bounds how early a tail can leave it.
	minInRate := make([]sim.Rate, cfg.Graph.NumNodes())
	for i := 0; i < cfg.Graph.NumLinks(); i++ {
		l := cfg.Graph.Link(topology.LinkID(i))
		for _, node := range [2]topology.NodeID{l.A, l.B} {
			if minInRate[node] == 0 || l.Rate < minInRate[node] {
				minInRate[node] = l.Rate
			}
		}
	}
	lookM := make([][]sim.Time, k)
	for i := range lookM {
		lookM[i] = make([]sim.Time, k)
	}
	look, haveCross := sim.Time(0), false
	for i := 0; i < cfg.Graph.NumLinks(); i++ {
		l := cfg.Graph.Link(topology.LinkID(i))
		sa, sb := part.Of[l.A], part.Of[l.B]
		n.shardOfDir[2*i] = sa
		n.shardOfDir[2*i+1] = sb
		if sa == sb {
			continue
		}
		for d := 0; d < 2; d++ {
			from, fs, ts := l.A, sa, sb
			if d == 1 {
				from, fs, ts = l.B, sb, sa
			}
			edge := l.Prop + n.txExtra(from, l.Rate, minInRate[from])
			if edge <= 0 {
				return fmt.Errorf("netsim: cross-shard link with propagation delay %v leaves no lookahead window", l.Prop)
			}
			if cur := lookM[fs][ts]; cur == 0 || edge < cur {
				lookM[fs][ts] = edge
			}
			if !haveCross || edge < look {
				look, haveCross = edge, true
			}
		}
	}
	if !haveCross {
		// No cross-shard links (K == 1, or disconnected partitions):
		// any positive lookahead is conservatively correct.
		look = sim.Millisecond
	}
	n.sharded = sim.NewShardedEngine(k, look, func(int) *sim.Engine {
		return sim.NewCalendarEngine()
	})
	if haveCross {
		n.sharded.SetLookahead(lookM)
	}
	n.hostSeq = make([]uint64, cfg.Graph.NumNodes())
	cloner, canClone := cfg.Router.(routing.ShardCloner)
	n.routersCloned = canClone && k > 1
	n.shards = make([]*netShard, k)
	for i := 0; i < k; i++ {
		router := cfg.Router
		if n.routersCloned && i > 0 {
			router = cloner.CloneForShard()
		}
		sh := &netShard{
			idx:    i,
			eng:    n.sharded.Shard(i),
			router: router,
			probe:  cfg.Probe,
			onDrop: cfg.OnDrop,
		}
		if cfg.OnDeliverSharded != nil {
			shard, fn := i, cfg.OnDeliverSharded
			sh.onDeliver = func(d Delivery) { fn(shard, d) }
		} else {
			sh.onDeliver = cfg.OnDeliver
		}
		n.shards[i] = sh
	}
	return nil
}

// txExtra returns the provable minimum virtual time between any event
// on node's shard that initiates a transmit on an outgoing link of
// rate out and the transmitted tail leaving the port (endTx in
// transmitNext) — the serialization component of the cross-shard
// lookahead promise. It must lower-bound every path into transmitNext:
//
//   - a transmitter re-armed from its own txDone completion starts at
//     freeAt = now, so endTx >= now + ser >= now + out.Serialize(1)
//     (for switches, ser is additionally floored by ServiceTime);
//   - a host enqueue has ready = now, same bound;
//   - a store-and-forward switch has ready = now + Latency, but the
//     re-arm and fault-replay (ready = now) paths cap the provable
//     floor at max(out.Serialize(1), ServiceTime) — the Latency term
//     must NOT be counted;
//   - a cut-through switch has ready = now − serIn + Latency: with
//     every inbound wire at least as fast as the output, serIn <= ser
//     and endTx >= now + min(Latency, out.Serialize(1)) across all
//     paths; with a slower inbound wire the head start can consume
//     the whole budget (endTx clamps to now), so the floor is zero
//     and the pair falls back to propagation delay alone.
//
// minIn is the slowest link adjacent to node (0 when it has none).
func (n *Network) txExtra(node topology.NodeID, out sim.Rate, minIn sim.Rate) sim.Time {
	ser1 := out.Serialize(1)
	if n.g.Node(node).Kind == topology.Host {
		return ser1
	}
	m := &n.models[node]
	if !m.CutThrough {
		if m.ServiceTime > ser1 {
			return m.ServiceTime
		}
		return ser1
	}
	if minIn > 0 && minIn < out {
		return 0
	}
	if m.Latency < ser1 {
		return m.Latency
	}
	return ser1
}

// rerouteAll recomputes routes around dead on every router the network
// holds: one shared router in legacy mode, every shard-local clone
// otherwise. Reroute is deterministic in (graph, dead), so the clones
// stay identical without any cross-shard coordination. Runs with the
// simulation single-threaded (legacy event or global phase).
func (n *Network) rerouteAll(dead map[topology.LinkID]bool) {
	if !n.routersCloned {
		if r, ok := n.shards[0].router.(routing.Rerouter); ok {
			r.Reroute(dead)
		}
		return
	}
	for _, sh := range n.shards {
		if r, ok := sh.router.(routing.Rerouter); ok {
			r.Reroute(dead)
		}
	}
}

func (n *Network) bufferOf(node topology.NodeID) int {
	if n.g.Node(node).Kind == topology.Host {
		return n.host.BufferBytes
	}
	return n.models[node].BufferBytes
}

// Engine returns the single simulation engine driving this network.
// It panics on a sharded network, which has one engine per shard: use
// Scheduler for run control and global scheduling, or SchedulerFor for
// node-local scheduling.
func (n *Network) Engine() *sim.Engine {
	if n.sharded != nil {
		panic("netsim: Engine() on a sharded network; use Scheduler()/SchedulerFor()")
	}
	return n.eng
}

// Scheduler returns the scheduling surface driving this network: the
// single engine in legacy mode, the sharded synchronizer otherwise.
// Schedule/After on a sharded network enqueue global (all-shards-
// parked) events — correct for run control, fault scripts, and
// watchdogs, not for per-packet work.
func (n *Network) Scheduler() sim.Scheduler {
	if n.sharded != nil {
		return n.sharded
	}
	return n.eng
}

// SchedulerFor returns the scheduler owning the given node: events for
// traffic sourced at that node belong on it. In legacy mode this is
// the single engine. Closures scheduled here run on the owning shard's
// goroutine and may touch that shard's state only.
func (n *Network) SchedulerFor(node topology.NodeID) sim.Scheduler {
	return n.shards[n.shardOfNode[node]].eng
}

// Sharded returns the sharded synchronizer, or nil in legacy mode.
func (n *Network) Sharded() *sim.ShardedEngine { return n.sharded }

// NumShards returns the number of execution shards (1 in legacy mode).
func (n *Network) NumShards() int { return len(n.shards) }

// ShardOf returns the shard owning the given node (0 in legacy mode).
func (n *Network) ShardOf(node topology.NodeID) int { return int(n.shardOfNode[node]) }

// Run processes events until none remain — Engine().Run() in legacy
// mode, the parallel synchronizer otherwise.
func (n *Network) Run() { n.Scheduler().Run() }

// RunUntil processes events with timestamps <= end, then advances the
// clock(s) to end.
func (n *Network) RunUntil(end sim.Time) { n.Scheduler().RunUntil(end) }

// SetProbe attaches a lifecycle observer (nil detaches it); it replaces
// any probe set via Config.Probe. Use Probes to combine several. On a
// sharded network the same instance is attached to every shard and is
// called from shard goroutines concurrently; prefer Observe, which
// builds per-shard observers and merges their output.
func (n *Network) SetProbe(p Probe) {
	for _, sh := range n.shards {
		sh.probe = p
	}
}

// SetShardProbe attaches a lifecycle observer to one shard: it sees
// exactly the events executing on that shard (enqueues and transmits
// at the shard's nodes, deliveries and drops at the shard's hosts and
// ports), always from that shard's goroutine.
func (n *Network) SetShardProbe(shard int, p Probe) { n.shards[shard].probe = p }

// Graph returns the simulated topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Delivered returns the count of packets delivered so far.
func (n *Network) Delivered() uint64 {
	var total uint64
	for _, sh := range n.shards {
		total += sh.delivered
	}
	return total
}

// Dropped returns the count of packets dropped so far.
func (n *Network) Dropped() uint64 {
	var total uint64
	for _, sh := range n.shards {
		total += sh.dropped
	}
	return total
}

// Unicast injects a packet at its source host at the current simulation
// time, routing directly to dst. It returns the packet ID.
func (n *Network) Unicast(flow routing.FlowID, src, dst topology.NodeID, size, tag int) uint64 {
	return n.Send(Packet{Flow: flow, Src: src, Dst: dst, Size: size, Tag: tag, Waypoint: NoWaypoint})
}

// Send injects a packet at its source host at the current simulation
// time. The caller fills Flow, Src, Dst, Size, Tag and Waypoint
// (NoWaypoint for direct routing); ID, Created and Hops are managed by
// the network. It returns the packet ID.
func (n *Network) Send(p Packet) uint64 {
	if p.Size <= 0 {
		panic(fmt.Sprintf("netsim: packet size %d", p.Size))
	}
	if n.g.Node(p.Src).Kind != topology.Host {
		panic(fmt.Sprintf("netsim: source %d is not a host", p.Src))
	}
	sh := n.shards[n.shardOfNode[p.Src]]
	if n.sharded != nil {
		// Per-source IDs: the sequence a host hands out is independent
		// of how sends interleave across shards, so packet IDs — and
		// the per-packet ECMP spray that hashes them — are identical
		// for every shard count. During a run, Send must be called
		// from the source's shard (traffic handlers satisfy this: a
		// delivery runs on its destination's shard, and replies
		// originate there).
		n.hostSeq[p.Src]++
		p.ID = uint64(p.Src+1)<<40 | n.hostSeq[p.Src]
	} else {
		n.nextID++
		p.ID = n.nextID
	}
	p.Created = sh.eng.Now()
	p.Hops = 0
	p.Hash = routing.PacketHash(p.Flow)
	if n.record {
		p.Path = append(p.Path[:0], p.Src)
	}
	if p.Src == p.Dst {
		// Loopback: deliver after the stack round trip.
		sh.eng.AfterAction(2*n.host.NICLatency, n.newEvent(sh, evDeliver, p.Src, 0, p), 0, 0)
		return p.ID
	}
	// NIC send-side latency, then onto the wire.
	sh.eng.AfterAction(n.host.NICLatency, n.newEvent(sh, evForward, p.Src, 0, p), 0, 0)
	return p.ID
}

// forward routes packet p out of node at readyTime (the time its tail
// is ready to begin serialization on the chosen output). serIn is the
// serialization time of the inbound link (0 at the source host). sh is
// the shard owning node.
func (n *Network) forward(sh *netShard, node topology.NodeID, p Packet, readyTime sim.Time, serIn sim.Time) {
	if p.Hops >= maxHops {
		n.drop(sh, p, DropCodeHopLimit, -1, nil)
		return
	}
	if node == p.Waypoint {
		p.Waypoint = NoWaypoint
	}
	port, err := sh.router.NextPort(node, routing.PacketMeta{
		Flow: p.Flow, Seq: p.ID, Src: p.Src, Dst: p.Dst, Waypoint: p.Waypoint,
		Hash: p.Hash,
	})
	if err != nil {
		n.drop(sh, p, DropCodeNoRoute, -1, err)
		return
	}
	link := n.g.Link(port.Link)
	di := 2 * int(port.Link)
	if link.B == node {
		di++
	}
	dl := &n.dirs[di]
	if dl.down {
		dl.drops++
		n.drop(sh, p, DropCodeLinkDown, port.Link, nil)
		return
	}
	if dl.queuedBytes+p.Size > dl.capBytes {
		dl.drops++
		n.drop(sh, p, DropCodeQueueFull, port.Link, nil)
		return
	}
	if n.g.Node(node).Kind == topology.Switch {
		if thresh := n.models[node].ECNThresholdBytes; thresh > 0 && dl.queuedBytes >= thresh {
			p.Marked = true
		}
	}
	dl.queuedBytes += p.Size
	ser := dl.rate.Serialize(p.Size)
	// Store-and-forward chassis ports are paced by the forwarding
	// engine when that is slower than the wire.
	if n.g.Node(node).Kind == topology.Switch {
		if svc := n.models[node].ServiceTime; svc > ser {
			ser = svc
		}
	}
	pri := int(p.Priority)
	if pri >= numPriorities {
		pri = numPriorities - 1
	}
	dl.queues[pri].push(queued{
		p: p, ready: readyTime, tailIn: sh.eng.Now(), ser: ser,
	})
	if sh.probe != nil {
		sh.probe.PacketEnqueued(QueueEvent{
			At: sh.eng.Now(), Port: PortRef{Link: port.Link, From: node},
			QueuedBytes: dl.queuedBytes, Packet: p,
		})
	}
	if !dl.busy {
		n.transmitNext(di, sh)
	}
}

// transmitNext starts the transmitter on the next queued packet,
// serving strict priority order; it re-arms itself from the completion
// event until the queues drain. sh is the shard owning the direction's
// transmit side.
func (n *Network) transmitNext(di int, sh *netShard) {
	dl := &n.dirs[di]
	var item queued
	found := false
	for pri := 0; pri < numPriorities; pri++ {
		if dl.queues[pri].len() > 0 {
			item = dl.queues[pri].pop()
			found = true
			break
		}
	}
	if !found {
		dl.busy = false
		return
	}
	dl.busy = true
	start := dl.freeAt
	if item.ready > start {
		start = item.ready
	}
	endTx := start + item.ser
	if endTx < item.tailIn {
		// A cut-through head start cannot let the tail leave before it
		// has fully arrived.
		endTx = item.tailIn
	}
	if now := sh.eng.Now(); endTx < now {
		endTx = now
	}
	dl.freeAt = endTx
	dl.txPackets++
	dl.txBytes += uint64(item.p.Size)
	dl.busyTime += item.ser
	l := n.g.Link(topology.LinkID(di / 2))
	peer := l.A
	if di%2 == 0 {
		peer = l.B
	}
	p := item.p
	size := p.Size
	ser := item.ser
	if sh.probe != nil {
		// QueuedBytes reflects the depth once this packet's tail leaves,
		// which is also when At falls.
		sh.probe.PacketTransmitted(QueueEvent{
			At: endTx, Port: n.portRef(di), QueuedBytes: dl.queuedBytes - size, Packet: p,
		})
	}
	// Completion first, then arrival — the schedule order older closure
	// code used, preserved so event ordering (and every result) is
	// byte-identical.
	sh.eng.ScheduleAction(endTx, &n.txDone, int64(di), int64(size))
	if ps := n.shardOfNode[peer]; int(ps) != sh.idx {
		// Cross-shard hop: the arrival travels through the
		// synchronizer's SPSC ring and is committed into the peer's
		// engine at the next barrier. Its timestamp is endTx + prop >=
		// now + lookahead, which is what makes the window conservative.
		n.sharded.Cross(sh.idx, int(ps), endTx+dl.prop, n.newEvent(sh, evArrive, peer, ser, p), 0, 0)
	} else {
		sh.eng.ScheduleAction(endTx+dl.prop, n.newEvent(sh, evArrive, peer, ser, p), 0, 0)
	}
}

// arrive handles the tail of packet p reaching node at the current
// simulation time, having been serialized over serIn. sh is the shard
// owning node.
func (n *Network) arrive(sh *netShard, node topology.NodeID, p Packet, serIn sim.Time) {
	now := sh.eng.Now()
	if n.record {
		p.Path = append(p.Path, node)
	}
	if node == p.Dst {
		p.Hops++
		// NIC receive-side latency.
		sh.eng.AfterAction(n.host.NICLatency, n.newEvent(sh, evDeliver, node, 0, p), 0, 0)
		return
	}
	p.Hops++
	if n.g.Node(node).Kind == topology.Host {
		// Server-side forwarding (BCube-style): pay the OS stack.
		sh.eng.AfterAction(n.host.ForwardLatency, n.newEvent(sh, evForward, node, serIn, p), 0, 0)
		return
	}
	m := &n.models[node]
	var ready sim.Time
	if m.CutThrough {
		// The head arrived serIn ago and may leave m.Latency later. The
		// tail cannot leave the output before it has arrived here;
		// forward clamps the transmit completion to now.
		ready = now - serIn + m.Latency
	} else {
		// Store-and-forward: wait for the full frame, then process.
		ready = now + m.Latency
	}
	n.forward(sh, node, p, ready, serIn)
}

func (n *Network) deliver(sh *netShard, p Packet) {
	sh.delivered++
	if sh.onDeliver != nil || sh.probe != nil {
		d := Delivery{Packet: p, At: sh.eng.Now(), Latency: sh.eng.Now() - p.Created}
		if sh.onDeliver != nil {
			sh.onDeliver(d)
		}
		if sh.probe != nil {
			sh.probe.PacketDelivered(d)
		}
	}
}

func (n *Network) drop(sh *netShard, p Packet, code DropCode, link topology.LinkID, err error) {
	sh.dropped++
	if sh.onDrop != nil || sh.probe != nil {
		d := Drop{Packet: p, At: sh.eng.Now(), Code: code, Link: link, Err: err}
		if sh.onDrop != nil {
			sh.onDrop(d)
		}
		if sh.probe != nil {
			sh.probe.PacketDropped(d)
		}
	}
}

// LinkDrops returns the number of packets dropped at the queue of the
// given link in the direction from the given node.
func (n *Network) LinkDrops(link topology.LinkID, from topology.NodeID) uint64 {
	di := 2 * int(link)
	if n.g.Link(link).B == from {
		di++
	}
	return n.dirs[di].drops
}

// QueuedBytes returns the bytes currently queued on the given link in
// the direction from the given node.
func (n *Network) QueuedBytes(link topology.LinkID, from topology.NodeID) int {
	di := 2 * int(link)
	if n.g.Link(link).B == from {
		di++
	}
	return n.dirs[di].queuedBytes
}
