package netsim

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/topology"
)

// Partition assigns every node of a graph to an execution shard.
type Partition struct {
	// Of maps node ID to shard index.
	Of []int32
	// Shards is the shard count actually used (requested count clamped
	// to the number of switches).
	Shards int
}

// PartitionByRing splits a topology into k shards for parallel
// execution: switches are grouped into k contiguous blocks of their
// creation order — which, for the Quartz builders, is ring position,
// so a shard owns an arc of each ring and cross-shard links are the
// few arc-boundary and inter-tier fibers — and every host follows its
// edge (ToR) switch. Keeping a host with its edge switch puts the
// host↔ToR hop, the NIC events, and the delivery path on one shard;
// only switch↔switch propagation (>= 250 ns of fiber in every repo
// topology) crosses shards, which is what gives the synchronizer its
// lookahead.
//
// k is clamped to the number of switches; k <= 0 is an error.
func PartitionByRing(g *topology.Graph, k int) (Partition, error) {
	if k <= 0 {
		return Partition{}, fmt.Errorf("netsim: shard count %d", k)
	}
	switches := g.Switches()
	if len(switches) == 0 {
		return Partition{}, fmt.Errorf("netsim: cannot shard a topology with no switches")
	}
	if k > len(switches) {
		k = len(switches)
	}
	of := make([]int32, g.NumNodes())
	for i := range of {
		of[i] = -1
	}
	for i, sw := range switches {
		of[sw] = int32(i * k / len(switches))
	}
	for _, h := range g.Hosts() {
		of[h] = of[g.ToRof(h)]
	}
	for id, s := range of {
		if s < 0 {
			return Partition{}, fmt.Errorf("netsim: node %d is neither a switch nor attached to one", id)
		}
	}
	return Partition{Of: of, Shards: k}, nil
}
