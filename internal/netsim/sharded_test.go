package netsim

import (
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/trace"
)

func buildMesh(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: 8, HostsPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionByRing(t *testing.T) {
	g := buildMesh(t)
	p, err := PartitionByRing(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 4 {
		t.Fatalf("shards %d, want 4", p.Shards)
	}
	switches := g.Switches()
	for i, sw := range switches {
		want := int32(i * 4 / len(switches))
		if p.Of[sw] != want {
			t.Errorf("switch %d on shard %d, want %d", sw, p.Of[sw], want)
		}
	}
	for _, h := range g.Hosts() {
		if p.Of[h] != p.Of[g.ToRof(h)] {
			t.Errorf("host %d on shard %d, but its ToR is on %d", h, p.Of[h], p.Of[g.ToRof(h)])
		}
	}
	// Requesting more shards than switches clamps.
	p, err = PartitionByRing(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != len(switches) {
		t.Fatalf("shards %d, want clamp to %d", p.Shards, len(switches))
	}
	if _, err := PartitionByRing(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// shardedRun is one workload execution's comparable output. spans is
// the execution-trace content (flow spans only — engine window spans
// are wall-clock diagnostics whose shape legitimately depends on K);
// engineSpans counts the K-dependent spans to prove they were recorded.
type shardedRun struct {
	trace, flows       string
	spans              string
	engineSpans        int
	delivered, dropped uint64
}

// runShardedWorkload drives a deterministic multi-host workload on a
// K-shard mesh and returns the merged observability output. Send times
// are chosen so no two packets tie at a queue (37i + 211j are distinct
// over the host/packet index ranges), which keeps the output a pure
// function of the workload for every K.
func runShardedWorkload(t *testing.T, shards int, faults *FaultSchedule) shardedRun {
	t.Helper()
	g := buildMesh(t)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	obs := net.Observe(ObserveOptions{Trace: true, Flows: true, Spans: rec})
	hosts := g.Hosts()
	for i, h := range hosts {
		sched := net.SchedulerFor(h)
		for j := 0; j < 40; j++ {
			dst := hosts[(i+1+j)%len(hosts)]
			at := sim.Time(i*37+j*211) * sim.Microsecond
			flow := routing.FlowID(i*64 + j%8)
			src := h
			sched.Schedule(at, func() {
				net.Send(Packet{Flow: flow, Src: src, Dst: dst, Size: 400, Waypoint: NoWaypoint})
			})
		}
	}
	if faults != nil {
		if err := net.Faults().Apply(*faults); err != nil {
			t.Fatal(err)
		}
	}
	net.RunUntil(60 * sim.Millisecond)
	var traceBuf, flowBuf strings.Builder
	if err := obs.Trace().WriteCSV(&traceBuf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Flows().WriteCSV(&flowBuf); err != nil {
		t.Fatal(err)
	}
	if obs.FlowSpans() == 0 {
		t.Fatal("FlowSpans recorded nothing")
	}
	engineSpans := 0
	for _, s := range rec.Spans() {
		if s.Cat == "engine" {
			engineSpans++
		}
	}
	return shardedRun{
		trace: traceBuf.String(), flows: flowBuf.String(),
		spans: rec.ContentCSV("net"), engineSpans: engineSpans,
		delivered: net.Delivered(), dropped: net.Dropped(),
	}
}

func requireIdenticalRuns(t *testing.T, base shardedRun, baseK int, faults *FaultSchedule) {
	t.Helper()
	for _, k := range []int{2, 4, 8} {
		got := runShardedWorkload(t, k, faults)
		if got.delivered != base.delivered || got.dropped != base.dropped {
			t.Errorf("K=%d: delivered/dropped %d/%d, K=%d gave %d/%d",
				k, got.delivered, got.dropped, baseK, base.delivered, base.dropped)
		}
		if got.flows != base.flows {
			t.Errorf("K=%d flow table differs from K=%d (lengths %d vs %d)",
				k, baseK, len(got.flows), len(base.flows))
		}
		if got.trace != base.trace {
			t.Errorf("K=%d trace differs from K=%d (lengths %d vs %d)",
				k, baseK, len(got.trace), len(base.trace))
		}
		if got.spans != base.spans {
			t.Errorf("K=%d flow-span content differs from K=%d (lengths %d vs %d)",
				k, baseK, len(got.spans), len(base.spans))
		}
		if k > 1 && got.engineSpans == 0 {
			t.Errorf("K=%d recorded no engine window spans", k)
		}
	}
}

// TestShardedDeterminism pins the tentpole guarantee: the merged trace
// and flow table of a K-shard run are byte-identical for K in
// {1,2,4,8}.
func TestShardedDeterminism(t *testing.T) {
	base := runShardedWorkload(t, 1, nil)
	if base.delivered == 0 {
		t.Fatal("workload delivered nothing")
	}
	if base.dropped != 0 {
		t.Fatalf("fault-free workload dropped %d packets", base.dropped)
	}
	requireIdenticalRuns(t, base, 1, nil)
}

// TestShardedDeterminismUnderFaults repeats the identity check with
// link cuts, a repair, detection delay, and both in-flight policies —
// fault injection runs as global phases and the detour path crosses
// shards from the coordinator goroutine.
func TestShardedDeterminismUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy ReroutePolicy
	}{{"drop", DropInFlight}, {"detour", DetourInFlight}} {
		t.Run(tc.name, func(t *testing.T) {
			// Links 16+ are the switch-to-switch mesh links (host links
			// come first in creation order).
			faults := &FaultSchedule{
				Events: []FaultEvent{
					{Kind: FaultLink, Link: 20, At: 3 * sim.Millisecond, RepairAt: 10 * sim.Millisecond},
					{Kind: FaultLink, Link: 30, At: 5 * sim.Millisecond},
					{Kind: FaultSwitch, Switch: buildMesh(t).Switches()[6], At: 7 * sim.Millisecond},
				},
				DetectionDelay: 500 * sim.Microsecond,
				Policy:         tc.policy,
			}
			base := runShardedWorkload(t, 1, faults)
			if base.dropped == 0 {
				t.Fatal("fault schedule produced no drops; the test is not exercising faults")
			}
			requireIdenticalRuns(t, base, 1, faults)
		})
	}
}

func TestShardedEngineAccessorPanics(t *testing.T) {
	g := buildMesh(t)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Engine() on a sharded network did not panic")
		}
	}()
	net.Engine()
}

func TestShardedConfigValidation(t *testing.T) {
	g := buildMesh(t)
	if _, err := New(Config{Graph: g, Router: routing.NewECMP(g), Shards: 2, Engine: sim.NewEngine()}); err == nil {
		t.Fatal("Shards with explicit Engine accepted")
	}
}

// TestShardedDeliveryHooks checks OnDeliverSharded receives the
// destination host's shard index.
func TestShardedDeliveryHooks(t *testing.T) {
	g := buildMesh(t)
	type rec struct {
		shard int
		dst   topology.NodeID
	}
	var got []rec
	net, err := New(Config{
		Graph: g, Router: routing.NewECMP(g), Shards: 4,
		OnDeliverSharded: func(shard int, d Delivery) {
			got = append(got, rec{shard, d.Packet.Dst})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// One packet per shard boundary direction; sends run at distinct
	// times so the append in the hook never races.
	for j := 0; j < 8; j++ {
		src, dst := hosts[j], hosts[(j+5)%len(hosts)]
		at := sim.Time(j+1) * sim.Millisecond
		net.SchedulerFor(src).Schedule(at, func() {
			net.Send(Packet{Flow: routing.FlowID(j), Src: src, Dst: dst, Size: 400, Waypoint: NoWaypoint})
		})
	}
	net.RunUntil(20 * sim.Millisecond)
	if len(got) != 8 {
		t.Fatalf("delivered %d packets, want 8", len(got))
	}
	for _, r := range got {
		if want := net.ShardOf(r.dst); r.shard != want {
			t.Errorf("delivery for host %d reported shard %d, want %d", r.dst, r.shard, want)
		}
	}
}

// TestObserveLegacy checks the consolidated observability surface on a
// legacy (single-engine) network: same call, same merged accessors.
func TestObserveLegacy(t *testing.T) {
	g := buildMesh(t)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	obs := net.Observe(ObserveOptions{Trace: true, Flows: true})
	hosts := g.Hosts()
	net.Unicast(1, hosts[0], hosts[3], 400, 0)
	net.Unicast(2, hosts[5], hosts[9], 400, 0)
	net.Engine().Run()
	flows := obs.Flows().Flows()
	if len(flows) != 2 {
		t.Fatalf("flow table has %d rows, want 2", len(flows))
	}
	for _, f := range flows {
		if f.PacketsDelivered != 1 {
			t.Errorf("flow %d delivered %d, want 1", f.Flow, f.PacketsDelivered)
		}
	}
	if ev := obs.Trace().Events(); len(ev) == 0 {
		t.Fatal("trace is empty")
	}
}
