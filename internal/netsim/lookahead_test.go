package netsim

import (
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// TestLookaheadMatrixDominatesScalar is the property the per-pair
// matrix must satisfy to be a pure widening: every populated entry is
// at least the old global scalar (the minimum propagation delay over
// all cross-shard links), the engine's reported minimum lookahead is
// exactly the smallest populated entry, and the transmit floor
// (txExtra) makes at least one entry strictly wider than propagation
// alone — the widening is real, not a relabeling.
func TestLookaheadMatrixDominatesScalar(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		g := buildMesh(t)
		net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		s := net.Sharded()

		// The old promise: global minimum propagation delay over links
		// whose endpoints land on different shards.
		oldScalar := sim.Time(0)
		for i := 0; i < g.NumLinks(); i++ {
			l := g.Link(topology.LinkID(i))
			if net.ShardOf(l.A) == net.ShardOf(l.B) {
				continue
			}
			if oldScalar == 0 || l.Prop < oldScalar {
				oldScalar = l.Prop
			}
		}
		if oldScalar == 0 {
			t.Fatalf("K=%d: mesh partition produced no cross-shard links", k)
		}

		minEntry, strictly, populated := sim.MaxTime, 0, 0
		for i := 0; i < s.Shards(); i++ {
			for j := 0; j < s.Shards(); j++ {
				if i == j {
					continue
				}
				entry := s.Look(i, j)
				if entry == 0 {
					continue
				}
				populated++
				if entry < oldScalar {
					t.Errorf("K=%d: pair %d->%d promises %v, below the old global scalar %v", k, i, j, entry, oldScalar)
				}
				if entry > oldScalar {
					strictly++
				}
				if entry < minEntry {
					minEntry = entry
				}
			}
		}
		if populated == 0 {
			t.Fatalf("K=%d: lookahead matrix is empty", k)
		}
		if got := s.Lookahead(); got != minEntry {
			t.Errorf("K=%d: Lookahead() = %v, want the smallest matrix entry %v", k, got, minEntry)
		}
		if strictly == 0 {
			t.Errorf("K=%d: no pair promises more than the old scalar %v; txExtra added nothing", k, oldScalar)
		}
	}
}

// TestShardedDeterminismWithCoalescedSampling extends the K-sweep
// identity check to the coalescing path: a queue sampler ticking with
// tolerance under a fault schedule. The sampler CSV, packet trace,
// flow table, and delivered/dropped counts must be byte-identical for
// K in {1,2,4,8} even though the ticks land inside different window
// structures, and for K > 1 coalescing must actually absorb ticks
// into shared phases rather than degenerate to the strict schedule.
func TestShardedDeterminismWithCoalescedSampling(t *testing.T) {
	faults := &FaultSchedule{
		Events: []FaultEvent{
			{Kind: FaultLink, Link: 20, At: 3 * sim.Millisecond, RepairAt: 10 * sim.Millisecond},
		},
		DetectionDelay: 500 * sim.Microsecond,
		Policy:         DropInFlight,
	}
	run := func(k int) (samples, trace, flows string, delivered, dropped, coalesced uint64) {
		g := buildMesh(t)
		net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Shards: k})
		if err != nil {
			t.Fatal(err)
		}
		obs := net.Observe(ObserveOptions{
			Trace: true, Flows: true,
			SampleEvery:       250 * sim.Microsecond,
			Until:             50 * sim.Millisecond,
			CoalesceTolerance: 100 * sim.Microsecond,
		})
		hosts := g.Hosts()
		for i, h := range hosts {
			sched := net.SchedulerFor(h)
			for j := 0; j < 20; j++ {
				dst := hosts[(i+1+j)%len(hosts)]
				at := sim.Time(i*37+j*211) * sim.Microsecond
				flow := routing.FlowID(i*64 + j%8)
				src := h
				sched.Schedule(at, func() {
					net.Send(Packet{Flow: flow, Src: src, Dst: dst, Size: 400, Waypoint: NoWaypoint})
				})
			}
		}
		if err := net.Faults().Apply(*faults); err != nil {
			t.Fatal(err)
		}
		net.RunUntil(60 * sim.Millisecond)
		var sampleBuf, traceBuf, flowBuf strings.Builder
		if err := obs.Sampler().WriteCSV(&sampleBuf); err != nil {
			t.Fatal(err)
		}
		if err := obs.Trace().WriteCSV(&traceBuf); err != nil {
			t.Fatal(err)
		}
		if err := obs.Flows().WriteCSV(&flowBuf); err != nil {
			t.Fatal(err)
		}
		return sampleBuf.String(), traceBuf.String(), flowBuf.String(),
			net.Delivered(), net.Dropped(), net.Sharded().CoalescedGlobals()
	}

	baseSamples, baseTrace, baseFlows, baseDel, baseDrop, _ := run(1)
	if baseDel == 0 {
		t.Fatal("workload delivered nothing")
	}
	if !strings.Contains(baseSamples, "\n") {
		t.Fatal("sampler recorded nothing")
	}
	for _, k := range []int{2, 4, 8} {
		samples, tr, flows, del, drop, coalesced := run(k)
		if del != baseDel || drop != baseDrop {
			t.Errorf("K=%d delivered/dropped %d/%d, K=1 gave %d/%d", k, del, drop, baseDel, baseDrop)
		}
		if samples != baseSamples {
			t.Errorf("K=%d sampler CSV differs from K=1 (lengths %d vs %d)", k, len(samples), len(baseSamples))
		}
		if tr != baseTrace {
			t.Errorf("K=%d trace differs from K=1 (lengths %d vs %d)", k, len(tr), len(baseTrace))
		}
		if flows != baseFlows {
			t.Errorf("K=%d flow table differs from K=1 (lengths %d vs %d)", k, len(flows), len(baseFlows))
		}
		if coalesced == 0 {
			t.Errorf("K=%d coalesced no sampler ticks; 250us ticks with 100us tolerance must share phases", k)
		}
	}
}
