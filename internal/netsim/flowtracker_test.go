package netsim

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
)

func TestFlowTrackerAggregates(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	ft := NewFlowTracker()
	reg := metrics.NewRegistry()
	ft.Bind(reg)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: ft})
	if err != nil {
		t.Fatal(err)
	}
	// Flow 1: 5 packets h0->h1. Flow 2: 3 packets the other way.
	for i := 0; i < 5; i++ {
		net.Unicast(1, h0, h1, 400, 0)
	}
	for i := 0; i < 3; i++ {
		net.Unicast(2, h1, h0, 900, 0)
	}
	net.Engine().Run()

	if ft.NumFlows() != 2 {
		t.Fatalf("NumFlows = %d, want 2", ft.NumFlows())
	}
	f1, ok := ft.Flow(1)
	if !ok {
		t.Fatal("flow 1 not tracked")
	}
	if f1.PacketsSent != 5 || f1.PacketsDelivered != 5 || f1.PacketsDropped != 0 {
		t.Errorf("flow 1 sent/delivered/dropped = %d/%d/%d, want 5/5/0",
			f1.PacketsSent, f1.PacketsDelivered, f1.PacketsDropped)
	}
	if f1.BytesDelivered != 5*400 {
		t.Errorf("flow 1 bytes = %d, want 2000", f1.BytesDelivered)
	}
	if f1.MaxHops != 3 {
		t.Errorf("flow 1 max hops = %d, want 3 (two switches + dest)", f1.MaxHops)
	}
	if f1.FCT <= 0 || f1.MeanLatency() <= 0 {
		t.Errorf("flow 1 FCT=%v meanLat=%v, want both > 0", f1.FCT, f1.MeanLatency())
	}
	// All sends happen at t=0; flow order must be stable.
	flows := ft.Flows()
	if len(flows) != 2 || flows[0].Flow != 1 || flows[1].Flow != 2 {
		t.Errorf("Flows() order = %v", flows)
	}

	// Registry aggregates match.
	snap := reg.Snapshot()
	vals := map[string]float64{}
	for _, s := range snap.Series {
		vals[s.Name+s.Labels["reason"]] = s.Value
	}
	if vals["quartz_packets_sent_total"] != 8 || vals["quartz_packets_delivered_total"] != 8 {
		t.Errorf("registry sent/delivered = %v/%v, want 8/8",
			vals["quartz_packets_sent_total"], vals["quartz_packets_delivered_total"])
	}
	if vals["quartz_bytes_delivered_total"] != 5*400+3*900 {
		t.Errorf("registry bytes = %v, want %d", vals["quartz_bytes_delivered_total"], 5*400+3*900)
	}
	if vals["quartz_flows_seen"] != 2 {
		t.Errorf("quartz_flows_seen = %v, want 2", vals["quartz_flows_seen"])
	}
	for _, s := range snap.Series {
		if s.Name == "quartz_packet_latency_us" {
			if s.Count != 8 || s.P50 <= 0 {
				t.Errorf("latency histogram count=%d p50=%v, want 8 and > 0", s.Count, s.P50)
			}
		}
	}
}

func TestFlowTrackerDropAttribution(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	ft := NewFlowTracker()
	reg := metrics.NewRegistry()
	ft.Bind(reg)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: ft})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.FailLink(1); err != nil { // s0-s1 inter-switch link
		t.Fatal(err)
	}
	net.Unicast(7, h0, h1, 400, 0)
	net.Engine().Run()

	f, ok := ft.Flow(7)
	if !ok || f.PacketsDropped != 1 {
		t.Fatalf("flow 7 dropped = %d, want 1", f.PacketsDropped)
	}
	if f.DropsByClass[DropLinkDown] != 1 {
		t.Errorf("drop classes = %v, want 1 %s", f.DropsByClass, DropLinkDown)
	}
	// FailLink is the legacy instant path with no FaultChange events, so
	// the drop is NOT a fault-window drop.
	if f.FaultWindowDrops != 0 {
		t.Errorf("fault-window drops = %d, want 0 without a fault schedule", f.FaultWindowDrops)
	}
	found := false
	for _, s := range reg.Snapshot().Series {
		if s.Name == "quartz_packets_dropped_total" && s.Labels["reason"] == DropLinkDown {
			found = true
			if s.Value != 1 {
				t.Errorf("dropped{link-down} = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Error("no quartz_packets_dropped_total{reason=link-down} series")
	}
}

func TestFlowTrackerFaultWindowAttribution(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	ft := NewFlowTracker()
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: ft})
	if err != nil {
		t.Fatal(err)
	}
	// Cut the inter-switch link at 1ms; detection 10ms keeps the
	// degradation window open for the rest of the run.
	fi := net.Faults()
	if err := fi.Apply(FaultSchedule{
		Events:         []FaultEvent{{Kind: FaultLink, Link: 1, At: sim.Millisecond}},
		DetectionDelay: 10 * sim.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	eng := net.Engine()
	// One packet before the cut, one inside the blackhole window.
	eng.Schedule(0, func() { net.Unicast(3, h0, h1, 400, 0) })
	eng.Schedule(2*sim.Millisecond, func() { net.Unicast(3, h0, h1, 400, 0) })
	eng.RunUntil(5 * sim.Millisecond)

	f, ok := ft.Flow(3)
	if !ok {
		t.Fatal("flow 3 not tracked")
	}
	if f.PacketsDelivered != 1 || f.PacketsDropped != 1 {
		t.Fatalf("delivered/dropped = %d/%d, want 1/1", f.PacketsDelivered, f.PacketsDropped)
	}
	if f.FaultWindowDrops != 1 {
		t.Errorf("fault-window drops = %d, want 1 (drop inside the blackhole window)", f.FaultWindowDrops)
	}
}

func TestFlowTrackerRetransmitDetection(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	ft := NewFlowTracker()
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: ft})
	if err != nil {
		t.Fatal(err)
	}
	// Sequence 1,2,3 then 2 again (a retransmission), then an untagged
	// packet (UserData 0: exempt from duplicate detection).
	for _, seq := range []uint64{1, 2, 3, 2, 0} {
		net.Send(Packet{Flow: 9, Src: h0, Dst: h1, Size: 400, Waypoint: NoWaypoint, UserData: seq})
	}
	net.Engine().Run()
	f, _ := ft.Flow(9)
	if f.Retransmits != 1 {
		t.Errorf("retransmits = %d, want 1", f.Retransmits)
	}
	if f.PacketsSent != 5 {
		t.Errorf("sent = %d, want 5", f.PacketsSent)
	}
}

func TestFlowTrackerFCTStats(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	ft := NewFlowTracker()
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: ft})
	if err != nil {
		t.Fatal(err)
	}
	net.Unicast(1, h0, h1, 400, 0)
	net.Unicast(2, h1, h0, 400, 0)
	net.Engine().Run()
	h := metrics.NewLatencyHistogram()
	if n := ft.FCTStats(h); n != 2 {
		t.Fatalf("FCTStats observed %d flows, want 2", n)
	}
	if h.Count() != 2 || h.Quantile(0.5) <= 0 {
		t.Fatalf("FCT histogram count=%d p50=%v", h.Count(), h.Quantile(0.5))
	}
}

func TestFlowTrackerExports(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	ft := NewFlowTracker()
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g), Probe: ft})
	if err != nil {
		t.Fatal(err)
	}
	net.Unicast(1, h0, h1, 400, 0)
	net.Engine().Run()

	var buf bytes.Buffer
	if err := ft.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("flow CSV does not parse: %v", err)
	}
	if len(rows) != 2 || rows[0][0] != "flow" {
		t.Fatalf("flow CSV = %v", rows)
	}

	buf.Reset()
	if err := ft.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("flow JSON does not parse: %v", err)
	}
	if len(decoded) != 1 || decoded[0]["delivered"].(float64) != 1 {
		t.Fatalf("flow JSON = %v", decoded)
	}
}

func TestClassifyDrop(t *testing.T) {
	for reason, want := range map[string]string{
		"queue full on link 12":              DropQueueFull,
		"link 3 down":                        DropLinkDown,
		"link 3 cut":                         DropLinkCut,
		"no route: ksp: disconnected":        DropNoRoute,
		"hop limit exceeded (routing loop?)": DropHopLimit,
		"cosmic ray":                         DropOther,
	} {
		if got := classifyDrop(reason); got != want {
			t.Errorf("classifyDrop(%q) = %q, want %q", reason, got, want)
		}
	}
}
