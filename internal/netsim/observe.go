package netsim

// Observer is the single attach surface for run observability. Before
// sharded execution, callers wired a TraceRecorder, a FlowTracker, a
// QueueSampler, and a heartbeat by hand — four attach points with
// different lifecycles. On a sharded network that wiring multiplies by
// K and picks up subtle rules (packet probes must be per-shard, fault
// rows must not duplicate, sampler ticks must be global phases).
// Network.Observe owns those rules: one call attaches everything to
// every shard, and the Observer hands back merged, shard-count-
// independent views.

import (
	"sort"
	"strconv"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// ObserveOptions selects what Network.Observe attaches. The zero value
// attaches nothing; set the fields for the views the run needs.
type ObserveOptions struct {
	// Trace records per-packet lifecycle events (one TraceRecorder per
	// shard; Observer.Trace merges them into one deterministic order).
	Trace bool
	// TraceLimit bounds each shard recorder's event count (<= 0 means
	// unbounded — only for small runs).
	TraceLimit int

	// Flows aggregates per-flow telemetry (one FlowTracker per shard;
	// Observer.Flows merges them into one shard-count-independent table).
	Flows bool

	// SampleEvery enables periodic queue sampling at this virtual
	// interval. Sampler ticks run on the network scheduler — global
	// phases on a sharded network — so one sampler serves every shard.
	SampleEvery sim.Time

	// Until is the virtual horizon (inclusive) for sampler and heartbeat
	// ticks. Required when SampleEvery or HeartbeatEvery is set.
	Until sim.Time

	// CoalesceTolerance lets each periodic tick (sampler and sharded
	// heartbeat) run up to this much virtual time after its nominal
	// instant. On a sharded network ticks with slack coalesce into
	// fewer all-shards-parked phases instead of fragmenting every
	// parallel window (see sim.Scheduler.ScheduleFlex); tick times stay
	// deterministic and identical for every shard count. Zero keeps
	// exact tick times; single-engine networks ignore the tolerance.
	CoalesceTolerance sim.Time

	// Registry, when set, binds the flow trackers (labeled per shard),
	// the sampler, and the heartbeats to it.
	Registry *metrics.Registry

	// HeartbeatEvery attaches a sim.Heartbeat to every shard engine at
	// this virtual interval, labeled {"shard": i}. Requires Registry.
	// On a sharded network it additionally attaches a
	// sim.ShardedHeartbeat publishing barrier-wait fraction and
	// per-shard event skew.
	HeartbeatEvery sim.Time

	// Spans, when set, enables execution-span recording: on a sharded
	// network the synchronizer's window/barrier/global/drain spans land
	// here (sim.ShardedEngine.AttachTrace, with Registry receiving the
	// window and barrier-wait histograms when both are set). Post-run,
	// Observer.FlowSpans renders the merged flow table onto the same
	// recorder. Use a trace.NewFlightRecorder to bound long runs.
	Spans *trace.Recorder
}

// Observer holds the attachments made by Network.Observe and exposes
// merged views over them. Accessors that merge (Trace, Flows) are
// post-run operations: call them after Run returns.
type Observer struct {
	net     *Network
	traces  []*TraceRecorder
	flows   []*FlowTracker
	sampler *QueueSampler
	beats   []*sim.Heartbeat
	spans   *trace.Recorder
	sbeat   *sim.ShardedHeartbeat
}

// Observe attaches the selected observability to every shard and
// returns the Observer. Call it once, after New and before running.
// Probes already attached (Config.Probe) are preserved and fire first.
//
// Per-shard packet probes see only their shard's packet events; fault
// transitions fan out to every shard's probe chain, with trace fault
// rows recorded by shard 0 alone so the merged trace carries each
// transition once.
func (n *Network) Observe(o ObserveOptions) *Observer {
	if (o.SampleEvery > 0 || o.HeartbeatEvery > 0) && o.Until <= 0 {
		panic("netsim: ObserveOptions.Until is required for sampler or heartbeat ticks")
	}
	if o.HeartbeatEvery > 0 && o.Registry == nil {
		panic("netsim: ObserveOptions.HeartbeatEvery requires a Registry")
	}
	if o.CoalesceTolerance < 0 {
		panic("netsim: ObserveOptions.CoalesceTolerance must be non-negative")
	}
	obs := &Observer{net: n}
	if o.SampleEvery > 0 {
		obs.sampler = NewQueueSampler(n, o.SampleEvery)
		obs.sampler.SetCoalesceTolerance(o.CoalesceTolerance)
		if o.Registry != nil {
			obs.sampler.Bind(o.Registry)
		}
		obs.sampler.Start(o.Until)
	}
	sharded := n.sharded != nil
	if o.Spans != nil {
		obs.spans = o.Spans
		if sharded {
			n.sharded.AttachTrace(sim.ShardedTraceOptions{Recorder: o.Spans, Registry: o.Registry})
		}
	}
	if sharded && o.HeartbeatEvery > 0 {
		obs.sbeat = sim.AttachShardedHeartbeatCoalesced(n.sharded, o.Registry, o.HeartbeatEvery, o.Until, o.CoalesceTolerance)
	}
	for i, sh := range n.shards {
		probes := []Probe{sh.probe}
		if o.Trace {
			tr := NewTraceRecorder(o.TraceLimit)
			obs.traces = append(obs.traces, tr)
			if i == 0 {
				probes = append(probes, tr)
			} else {
				// Fault transitions fan to every shard; only shard 0's
				// recorder keeps its FaultObserver side so the merged
				// trace has one row per transition, not K.
				probes = append(probes, packetProbe{tr})
			}
		}
		if o.Flows {
			ft := NewFlowTracker()
			obs.flows = append(obs.flows, ft)
			if o.Registry != nil {
				if sharded {
					ft.BindLabeled(o.Registry, metrics.Labels{"shard": strconv.Itoa(i)})
				} else {
					ft.Bind(o.Registry)
				}
			}
			probes = append(probes, ft)
		}
		if obs.sampler != nil {
			// As a probe the sampler only maintains exact per-port peak
			// depths; each port belongs to one shard, so concurrent
			// updates never touch the same element.
			probes = append(probes, obs.sampler)
		}
		n.SetShardProbe(i, Probes(probes...))
		if o.HeartbeatEvery > 0 {
			var labels metrics.Labels
			if sharded {
				labels = metrics.Labels{"shard": strconv.Itoa(i)}
			}
			obs.beats = append(obs.beats,
				sim.AttachHeartbeatLabeled(sh.eng, o.Registry, o.HeartbeatEvery, o.Until, labels))
		}
	}
	return obs
}

// Trace merges the per-shard trace recorders into one recorder whose
// event order is a pure function of event content — identical for
// every shard count in the sharded family. (A single shard's recorder
// is in execution order; the merge re-sorts, so even K=1 goes through
// the same path.) Returns nil when Observe ran without Trace.
func (o *Observer) Trace() *TraceRecorder {
	if o.traces == nil {
		return nil
	}
	merged := NewTraceRecorder(0)
	var evs []TraceEvent
	for _, tr := range o.traces {
		evs = append(evs, tr.events...)
		merged.truncated += tr.truncated
		for id, p := range tr.paths {
			merged.paths[id] = p
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return traceLess(evs[i], evs[j]) })
	for _, e := range evs {
		merged.add(e)
	}
	return merged
}

// traceLess is a total order on trace events by content: timestamp
// first, then every remaining field. Events that compare equal are
// byte-identical rows, so the sorted order — and hence the merged
// trace output — does not depend on which shard recorded what.
func traceLess(a, b TraceEvent) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.Packet != b.Packet {
		return a.Packet < b.Packet
	}
	if a.Flow != b.Flow {
		return a.Flow < b.Flow
	}
	if a.Link != b.Link {
		return a.Link < b.Link
	}
	if a.From != b.From {
		return a.From < b.From
	}
	if a.Hops != b.Hops {
		return a.Hops < b.Hops
	}
	return a.Reason < b.Reason
}

// Flows merges the per-shard flow trackers into one table sorted by
// (FirstSend, Flow) — identical for every shard count. Returns nil
// when Observe ran without Flows.
func (o *Observer) Flows() *FlowTracker {
	if o.flows == nil {
		return nil
	}
	merged := NewFlowTracker()
	for _, ft := range o.flows {
		merged.MergeFrom(ft)
	}
	return merged
}

// ShardTraces returns the per-shard recorders (index = shard).
func (o *Observer) ShardTraces() []*TraceRecorder { return o.traces }

// ShardFlows returns the per-shard flow trackers (index = shard).
func (o *Observer) ShardFlows() []*FlowTracker { return o.flows }

// Sampler returns the queue sampler (nil unless SampleEvery was set).
func (o *Observer) Sampler() *QueueSampler { return o.sampler }

// Heartbeats returns the attached per-shard heartbeats (index = shard;
// nil unless HeartbeatEvery was set).
func (o *Observer) Heartbeats() []*sim.Heartbeat { return o.beats }

// ShardedHeartbeat returns the synchronizer-level heartbeat (nil unless
// HeartbeatEvery was set on a sharded network).
func (o *Observer) ShardedHeartbeat() *sim.ShardedHeartbeat { return o.sbeat }

// Spans returns the execution-span recorder passed to Observe (nil
// unless ObserveOptions.Spans was set).
func (o *Observer) Spans() *trace.Recorder { return o.spans }

// FlowSpans renders the merged flow table as virtual-only spans on the
// Observer's recorder: one "flow" span per flow in the "net" category,
// Track = flow ID, spanning FirstSend→LastActivity on the virtual
// clock, annotated with sent/delivered/dropped/bytes/retransmits.
// Wall fields stay zero, so the Chrome export places them on the
// virtual timeline and — because the flow table is merged shard-count-
// independently — their ContentCSV("net") is identical for every K,
// the property the trace determinism tests pin. Requires Observe to
// have run with both Flows and Spans; call after the run. Returns the
// number of flow spans recorded.
func (o *Observer) FlowSpans() int {
	if o.spans == nil || o.flows == nil {
		return 0
	}
	flows := o.Flows().Flows()
	for _, f := range flows {
		o.spans.Add(trace.Span{
			Name: "flow", Cat: "net", Track: int(f.Flow),
			Virt: int64(f.FirstSend), VirtEnd: int64(f.LastActivity),
		}.
			Annotate("sent", int64(f.PacketsSent)).
			Annotate("delivered", int64(f.PacketsDelivered)).
			Annotate("dropped", int64(f.PacketsDropped)).
			Annotate("bytes", int64(f.BytesDelivered)).
			Annotate("retransmits", int64(f.Retransmits)))
	}
	return len(flows)
}

// packetProbe narrows a probe to the packet lifecycle: it forwards the
// four Probe hooks and deliberately does not implement FaultObserver,
// so fault fan-out skips the wrapped probe.
type packetProbe struct{ p Probe }

func (w packetProbe) PacketEnqueued(e QueueEvent)    { w.p.PacketEnqueued(e) }
func (w packetProbe) PacketTransmitted(e QueueEvent) { w.p.PacketTransmitted(e) }
func (w packetProbe) PacketDelivered(d Delivery)     { w.p.PacketDelivered(d) }
func (w packetProbe) PacketDropped(d Drop)           { w.p.PacketDropped(d) }
