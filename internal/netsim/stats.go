package netsim

import (
	"sort"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// PortStats reports one directed link's counters.
type PortStats struct {
	Link topology.LinkID
	// From is the transmitting endpoint.
	From topology.NodeID
	// Packets and Bytes count transmitted traffic.
	Packets uint64
	Bytes   uint64
	// Drops counts packets lost to a full queue.
	Drops uint64
	// BusyTime is the total time the port spent transmitting.
	BusyTime sim.Time
}

// Utilization returns the port's busy fraction over the given interval.
func (p PortStats) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return p.BusyTime.Seconds() / elapsed.Seconds()
}

// Stats returns counters for every directed link, ordered by link then
// direction.
func (n *Network) Stats() []PortStats {
	out := make([]PortStats, 0, len(n.dirs))
	for i := range n.dirs {
		dl := &n.dirs[i]
		l := n.g.Link(topology.LinkID(i / 2))
		from := l.A
		if i%2 == 1 {
			from = l.B
		}
		out = append(out, PortStats{
			Link:     l.ID,
			From:     from,
			Packets:  dl.txPackets,
			Bytes:    dl.txBytes,
			Drops:    dl.drops,
			BusyTime: dl.busyTime,
		})
	}
	return out
}

// HottestPorts returns the k busiest directed links by bytes sent.
func (n *Network) HottestPorts(k int) []PortStats {
	stats := n.Stats()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Bytes > stats[j].Bytes })
	if k > len(stats) {
		k = len(stats)
	}
	return stats[:k]
}

// FailLink marks a link as failed in both directions: packets routed
// onto it are dropped (counted with reason "link down"). Routing tables
// are not touched, so traffic pinned to the dead link is lost.
//
// Deprecated: use Faults() — FaultInjector.Apply schedules failures at
// virtual times with detection delay and route reconvergence. FailLink
// remains as a thin wrapper with its historical instant, silent
// semantics.
func (n *Network) FailLink(id topology.LinkID) error {
	return n.Faults().forceLink(id, true)
}

// RestoreLink clears a failure set by FailLink.
//
// Deprecated: use Faults(); see FailLink.
func (n *Network) RestoreLink(id topology.LinkID) error {
	return n.Faults().forceLink(id, false)
}

// SetRouter swaps the forwarding strategy mid-run (e.g. after a
// failure, install a router computed on the degraded topology).
// In-flight packets finish their current hop under the old choice. On
// a sharded network the same instance is installed on every shard
// (shard-local clones are discarded), so it must tolerate concurrent
// NextPort calls — ECMP/VLB reads do.
func (n *Network) SetRouter(r routing.Router) {
	if r == nil {
		panic("netsim: SetRouter(nil)")
	}
	for _, sh := range n.shards {
		sh.router = r
	}
	n.routersCloned = false
}
