package netsim

import (
	"testing"

	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// TestForwardPathZeroAllocs locks in the tentpole invariant: with
// probes and path recording off, a steady-state packet lifecycle —
// Send, NIC delays, per-hop forward, transmit, propagation, delivery —
// allocates nothing. Pooled netEvents, ring-buffer port queues, dense
// routing tables, and the boxing-free event queue each contribute; a
// regression in any of them shows up here.
func TestForwardPathZeroAllocs(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	net, err := New(Config{
		Graph:  g,
		Router: routing.NewECMP(g),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm pools, ring buffers, and the calendar queue's bucket storage
	// with a burst larger than any steady-state batch below.
	for i := 0; i < 64; i++ {
		net.Unicast(routing.FlowID(i), h0, h1, 1500, 0)
	}
	net.Engine().Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 8; i++ {
			net.Unicast(routing.FlowID(i), h0, h1, 1500, 0)
		}
		net.Engine().Run()
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per 8-packet batch, want 0", allocs)
	}
	if net.Dropped() != 0 {
		t.Fatalf("%d drops during alloc test", net.Dropped())
	}
}

// TestDropPathCheapWithoutConsumers checks drops stay allocation-free
// when nobody consumes them: the reason is a code, formatted only when
// Drop.Reason is called.
func TestDropPathCheapWithoutConsumers(t *testing.T) {
	g, h0, h1 := twoHosts(t, 10*sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		t.Fatal(err)
	}
	l, ok := g.FindLink(g.Switches()[0], g.Switches()[1])
	if !ok {
		t.Fatal("no inter-switch link")
	}
	if err := net.FailLink(l.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		net.Unicast(routing.FlowID(i), h0, h1, 400, 0)
	}
	net.Engine().Run()
	allocs := testing.AllocsPerRun(100, func() {
		net.Unicast(7, h0, h1, 400, 0)
		net.Engine().Run()
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per dropped packet, want 0", allocs)
	}
	if net.Dropped() == 0 {
		t.Fatal("expected drops on the failed link")
	}
}

// TestDropReasonStrings pins the lazy formatting to the exact strings
// the closure-era hot path produced.
func TestDropReasonStrings(t *testing.T) {
	for _, tc := range []struct {
		d    Drop
		want string
	}{
		{Drop{Code: DropCodeQueueFull, Link: 12}, "queue full on link 12"},
		{Drop{Code: DropCodeLinkDown, Link: 3}, "link 3 down"},
		{Drop{Code: DropCodeLinkCut, Link: 3}, "link 3 cut"},
		{Drop{Code: DropCodeHopLimit, Link: -1}, "hop limit exceeded (routing loop?)"},
	} {
		if got := tc.d.Reason(); got != tc.want {
			t.Errorf("Reason(%v) = %q, want %q", tc.d.Code, got, tc.want)
		}
		if got, want := tc.d.Code.Class(), classifyDrop(tc.want); got != want {
			t.Errorf("Class(%v) = %q, want %q", tc.d.Code, got, want)
		}
	}
}

// TestPktQueueWraparound exercises the ring buffer across growth and
// wraparound boundaries against a straightforward model.
func TestPktQueueWraparound(t *testing.T) {
	var q pktQueue
	next := uint64(0)
	var model []uint64
	push := func() {
		next++
		q.push(queued{p: Packet{ID: next}})
		model = append(model, next)
	}
	pop := func() {
		got := q.pop().p.ID
		want := model[0]
		model = model[1:]
		if got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
	// Interleave pushes and pops so head wraps several times.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3+round%5; i++ {
			push()
		}
		for q.len() > 1 {
			pop()
		}
	}
	for q.len() > 0 {
		pop()
	}
	if len(model) != 0 {
		t.Fatalf("model has %d leftovers", len(model))
	}
}

// benchNet builds the standard two-switch path with no observers.
func benchNet(b *testing.B) (*Network, topology.NodeID, topology.NodeID) {
	g, h0, h1 := twoHosts(b, 10*sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		b.Fatal(err)
	}
	return net, h0, h1
}

// BenchmarkForwardDeliver measures the full per-packet lifecycle (six
// events: two NIC delays, three transmissions, delivery).
func BenchmarkForwardDeliver(b *testing.B) {
	net, h0, h1 := benchNet(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Unicast(routing.FlowID(i&1023), h0, h1, 1500, 0)
		if i&255 == 255 {
			net.Engine().Run()
		}
	}
	net.Engine().Run()
	if net.Delivered() != uint64(b.N) {
		b.Fatalf("delivered %d of %d", net.Delivered(), b.N)
	}
}

// BenchmarkTransmitQueue drives a deep output queue through one
// bottleneck port: the cost is dominated by transmitNext and the ring
// buffer.
func BenchmarkTransmitQueue(b *testing.B) {
	g, h0, h1 := twoHosts(b, 1*sim.Gbps)
	net, err := New(Config{Graph: g, Router: routing.NewECMP(g)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Unicast(routing.FlowID(i&63), h0, h1, 1500, 0)
		if i&1023 == 1023 {
			net.Engine().Run()
		}
	}
	net.Engine().Run()
}
