package netsim

import (
	"fmt"
	"sort"

	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// This file is the runtime fault-injection subsystem (§3.5 dynamics):
// link, switch, and fiber-segment failures injected at virtual times
// mid-run, a detection-delay model, and route reconvergence through
// routing.Rerouter. The FaultInjector is the single mutation surface
// for link state — the legacy Network.FailLink/RestoreLink calls are
// thin wrappers over it.

// FaultKind selects what a FaultEvent takes down.
type FaultKind uint8

const (
	// FaultLink fails a single wavelength link.
	FaultLink FaultKind = iota
	// FaultSwitch fails every link incident to a switch.
	FaultSwitch
	// FaultFiber fails the set of wavelength links severed by cutting
	// one fiber segment of a Quartz ring (§3.5) — resolved through
	// FaultSchedule.FiberLinks.
	FaultFiber
)

func (k FaultKind) String() string {
	switch k {
	case FaultLink:
		return "link"
	case FaultSwitch:
		return "switch"
	case FaultFiber:
		return "fiber"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// ReroutePolicy decides the fate of packets already queued on a port
// when its link is cut.
type ReroutePolicy uint8

const (
	// DropInFlight drops queued packets immediately (reason
	// "link N cut") — the physical truth for a severed fiber.
	DropInFlight ReroutePolicy = iota
	// DetourInFlight holds queued packets and re-forwards them from
	// their current switch once routes have reconverged — modelling
	// switches with failover buffering.
	DetourInFlight
)

// FaultEvent is one scheduled failure, optionally with a repair.
type FaultEvent struct {
	Kind FaultKind
	// Link is the target for FaultLink.
	Link topology.LinkID
	// Switch is the target for FaultSwitch.
	Switch topology.NodeID
	// Fiber and Segment locate the cut for FaultFiber.
	Fiber, Segment int
	// At is the injection time. RepairAt, when > At, schedules the
	// repair; zero means the fault is permanent.
	At, RepairAt sim.Time
}

func (ev FaultEvent) String() string {
	var target string
	switch ev.Kind {
	case FaultLink:
		target = fmt.Sprintf("link %d", ev.Link)
	case FaultSwitch:
		target = fmt.Sprintf("switch %d", ev.Switch)
	case FaultFiber:
		target = fmt.Sprintf("fiber %d.%d", ev.Fiber, ev.Segment)
	}
	// Space-separated so the string stays CSV-safe in trace reasons.
	if ev.RepairAt > ev.At {
		return fmt.Sprintf("%s@%v repair@%v", target, ev.At, ev.RepairAt)
	}
	return fmt.Sprintf("%s@%v", target, ev.At)
}

// FaultSchedule is a set of fault events plus the control-plane model
// they run under. Apply it with Network.Faults().Apply.
type FaultSchedule struct {
	Events []FaultEvent
	// DetectionDelay is the time between a fault (or repair) taking
	// effect on the data plane and routes reconverging around it —
	// the blackhole window. Zero keeps the injector's current setting
	// (DefaultDetectionDelay unless changed).
	DetectionDelay sim.Time
	// Policy picks what happens to packets queued on a cut link.
	Policy ReroutePolicy
	// FiberLinks resolves a FaultFiber event to the wavelength links it
	// severs; core.Ring.FiberLinks is the canonical implementation.
	// Required iff the schedule contains FaultFiber events.
	FiberLinks func(fiber, segment int) ([]topology.LinkID, error)
}

// FaultChange reports one data-plane or control-plane transition to
// fault observers: the injection (Reconverged=false), the repair
// (Repair=true), and the reconvergence that follows each
// (Reconverged=true).
type FaultChange struct {
	At    sim.Time
	Event FaultEvent
	// Links are the wavelength links the event maps to.
	Links []topology.LinkID
	// Repair marks the restore transition of the event.
	Repair bool
	// Reconverged marks the control-plane catching up: routes now avoid
	// (or re-include) the links.
	Reconverged bool
	// DeadLinks is the number of links down after this change.
	DeadLinks int
}

// FaultObserver is an optional extension of Probe: probes that also
// implement it see fault injections, repairs, and reconvergence.
type FaultObserver interface {
	FaultChanged(FaultChange)
}

// DefaultDetectionDelay is the injector's reconvergence lag when the
// schedule does not set one: the order of fast link-layer failure
// detection plus local route recomputation.
const DefaultDetectionDelay = 1 * sim.Millisecond

// heldPacket is an in-flight packet pulled off a cut port, awaiting
// reconvergence under DetourInFlight.
type heldPacket struct {
	from topology.NodeID
	p    Packet
}

// FaultInjector is the unified failure surface of a Network: it owns
// every link's up/down state (reference-counted, so overlapping faults
// compose), applies FaultSchedules, and drives reconvergence. Obtain it
// with Network.Faults(). All methods must run on the simulation
// goroutine (inside events or between runs).
type FaultInjector struct {
	n *Network
	// failCount refcounts failures per link: a link is down while its
	// count is positive, so a switch failure overlapping a fiber cut
	// only repairs when both are repaired.
	failCount map[topology.LinkID]int
	detection sim.Time
	policy    ReroutePolicy
	fiber     func(fiber, segment int) ([]topology.LinkID, error)
	held      []heldPacket
	// OnChange, when set, observes every FaultChange alongside any
	// probe implementing FaultObserver.
	OnChange func(FaultChange)
}

// Faults returns the network's fault injector, creating it on first
// use.
func (n *Network) Faults() *FaultInjector {
	if n.faults == nil {
		n.faults = &FaultInjector{
			n:         n,
			failCount: make(map[topology.LinkID]int),
			detection: DefaultDetectionDelay,
		}
	}
	return n.faults
}

// SetDetectionDelay overrides the reconvergence lag.
func (fi *FaultInjector) SetDetectionDelay(d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative detection delay %v", d))
	}
	fi.detection = d
}

// DetectionDelay returns the current reconvergence lag.
func (fi *FaultInjector) DetectionDelay() sim.Time { return fi.detection }

// SetPolicy overrides the in-flight packet policy.
func (fi *FaultInjector) SetPolicy(p ReroutePolicy) { fi.policy = p }

// SetFiberResolver installs the FaultFiber link resolver (see
// FaultSchedule.FiberLinks).
func (fi *FaultInjector) SetFiberResolver(f func(fiber, segment int) ([]topology.LinkID, error)) {
	fi.fiber = f
}

// Dead returns the set of currently-down links. The map is a copy;
// it is what reconvergence passes to routing.Rerouter.Reroute.
func (fi *FaultInjector) Dead() map[topology.LinkID]bool {
	out := make(map[topology.LinkID]bool, len(fi.failCount))
	for l, c := range fi.failCount {
		if c > 0 {
			out[l] = true
		}
	}
	return out
}

// DeadCount returns how many links are currently down.
func (fi *FaultInjector) DeadCount() int {
	c := 0
	for _, v := range fi.failCount {
		if v > 0 {
			c++
		}
	}
	return c
}

// resolve maps a FaultEvent to the links it affects, validating the
// target. Links are returned sorted for deterministic application
// order.
func (fi *FaultInjector) resolve(ev FaultEvent) ([]topology.LinkID, error) {
	g := fi.n.g
	switch ev.Kind {
	case FaultLink:
		if int(ev.Link) < 0 || int(ev.Link) >= g.NumLinks() {
			return nil, fmt.Errorf("netsim: unknown link %d", ev.Link)
		}
		return []topology.LinkID{ev.Link}, nil
	case FaultSwitch:
		if int(ev.Switch) < 0 || int(ev.Switch) >= g.NumNodes() {
			return nil, fmt.Errorf("netsim: unknown node %d", ev.Switch)
		}
		if g.Node(ev.Switch).Kind != topology.Switch {
			return nil, fmt.Errorf("netsim: node %d is not a switch", ev.Switch)
		}
		var links []topology.LinkID
		for _, p := range g.Ports(ev.Switch) {
			links = append(links, p.Link)
		}
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
		return links, nil
	case FaultFiber:
		if fi.fiber == nil {
			return nil, fmt.Errorf("netsim: fiber fault needs a FiberLinks resolver (no Quartz ring attached?)")
		}
		links, err := fi.fiber(ev.Fiber, ev.Segment)
		if err != nil {
			return nil, err
		}
		links = append([]topology.LinkID(nil), links...)
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
		return links, nil
	}
	return nil, fmt.Errorf("netsim: unknown fault kind %d", ev.Kind)
}

// Apply validates the whole schedule, then installs its events on the
// network's engine. It must be called before (or at) the earliest
// event time. Invalid schedules are rejected atomically — no event is
// installed.
func (fi *FaultInjector) Apply(s FaultSchedule) error {
	if s.FiberLinks != nil {
		fi.fiber = s.FiberLinks
	}
	if s.DetectionDelay > 0 {
		fi.detection = s.DetectionDelay
	}
	fi.policy = s.Policy
	now := fi.n.Scheduler().Now()
	resolved := make([][]topology.LinkID, len(s.Events))
	for i, ev := range s.Events {
		links, err := fi.resolve(ev)
		if err != nil {
			return fmt.Errorf("event %d (%s): %w", i, ev, err)
		}
		if ev.At < now {
			return fmt.Errorf("event %d (%s): injection time %v is in the past (now %v)", i, ev, ev.At, now)
		}
		if ev.RepairAt != 0 && ev.RepairAt <= ev.At {
			return fmt.Errorf("event %d (%s): repair time %v not after injection %v", i, ev, ev.RepairAt, ev.At)
		}
		resolved[i] = links
	}
	for i, ev := range s.Events {
		ev, links := ev, resolved[i]
		// On a sharded network these are global events: the
		// synchronizer parks every shard before running them, so the
		// injector may flush queues and mutate link state anywhere.
		fi.n.Scheduler().Schedule(ev.At, func() { fi.inject(ev, links, false) })
		if ev.RepairAt > ev.At {
			fi.n.Scheduler().Schedule(ev.RepairAt, func() { fi.inject(ev, links, true) })
		}
	}
	return nil
}

// inject applies one transition (failure or repair) to the data plane,
// notifies observers, and schedules reconvergence after the detection
// delay.
func (fi *FaultInjector) inject(ev FaultEvent, links []topology.LinkID, repair bool) {
	for _, l := range links {
		if repair {
			fi.repairLink(l)
		} else {
			fi.failLink(l)
		}
	}
	now := fi.n.Scheduler().Now()
	fi.emit(FaultChange{
		At: now, Event: ev, Links: links, Repair: repair, DeadLinks: fi.DeadCount(),
	})
	fi.n.Scheduler().After(fi.detection, func() {
		fi.reconverge()
		fi.emit(FaultChange{
			At: fi.n.Scheduler().Now(), Event: ev, Links: links, Repair: repair,
			Reconverged: true, DeadLinks: fi.DeadCount(),
		})
	})
}

// failLink takes one link down (refcounted). On the 0->1 transition the
// queues of both directions are flushed per the policy; the frame a
// transmitter already committed to is considered on the wire and
// completes.
func (fi *FaultInjector) failLink(id topology.LinkID) {
	fi.failCount[id]++
	if fi.failCount[id] > 1 {
		return // already down
	}
	for d := 0; d < 2; d++ {
		di := 2*int(id) + d
		dl := &fi.n.dirs[di]
		dl.down = true
		from := fi.n.portRef(di).From
		for pri := range dl.queues {
			q := &dl.queues[pri]
			for i := 0; i < q.len(); i++ {
				item := q.at(i)
				dl.queuedBytes -= item.p.Size
				if fi.policy == DetourInFlight {
					fi.held = append(fi.held, heldPacket{from: from, p: item.p})
				} else {
					dl.drops++
					fi.n.drop(fi.n.shards[fi.n.shardOfDir[di]], item.p, DropCodeLinkCut, id, nil)
				}
			}
			q.reset()
		}
	}
}

// repairLink brings one link back up once every overlapping fault on it
// has been repaired.
func (fi *FaultInjector) repairLink(id topology.LinkID) {
	if fi.failCount[id] == 0 {
		return // repairing a healthy link is a no-op
	}
	fi.failCount[id]--
	if fi.failCount[id] > 0 {
		return // another fault still holds it down
	}
	delete(fi.failCount, id)
	fi.n.dirs[2*int(id)].down = false
	fi.n.dirs[2*int(id)+1].down = false
}

// reconverge recomputes routes around the current dead set and releases
// any packets held for detour.
func (fi *FaultInjector) reconverge() {
	dead := fi.Dead()
	fi.n.rerouteAll(dead)
	if len(fi.held) == 0 {
		return
	}
	held := fi.held
	fi.held = nil
	now := fi.n.Scheduler().Now()
	for _, h := range held {
		sh := fi.n.shards[fi.n.shardOfNode[h.from]]
		fi.n.forward(sh, h.from, h.p, now, 0)
	}
}

func (fi *FaultInjector) emit(c FaultChange) {
	if fi.OnChange != nil {
		fi.OnChange(c)
	}
	for _, sh := range fi.n.shards {
		if fo, ok := sh.probe.(FaultObserver); ok {
			fo.FaultChanged(c)
		}
	}
}

// forceLink backs the legacy FailLink/RestoreLink wrappers: an
// idempotent, immediate up/down flip with no queue flush, no detection
// delay, and no reconvergence — exactly the historical semantics. It
// overrides any refcounts a schedule holds on the link, so avoid mixing
// it with Apply on the same links.
func (fi *FaultInjector) forceLink(id topology.LinkID, down bool) error {
	if int(id) < 0 || int(id) >= fi.n.g.NumLinks() {
		return fmt.Errorf("netsim: unknown link %d", id)
	}
	if down {
		if fi.failCount[id] == 0 {
			fi.failCount[id] = 1
		}
	} else {
		delete(fi.failCount, id)
	}
	fi.n.dirs[2*int(id)].down = down
	fi.n.dirs[2*int(id)+1].down = down
	return nil
}
