package netsim

// FlowTracker is the per-flow telemetry aggregator: it rides the Probe
// lifecycle hooks (plus FaultObserver for drop attribution) and folds
// the raw event stream into flow-completion times, byte counts, hop
// counts, retransmit detection, and classified drop counts — the §6.1
// / §7.1 quantities, maintained online so a million-packet run never
// materializes its event list. Bind attaches the aggregates to a
// metrics.Registry for the live exporters; the per-flow table itself
// stays out of the registry (per-flow series cardinality does not
// belong in a metrics pipeline) and exports through Flows, WriteCSV,
// and WriteJSON.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
)

// Drop-reason classes used for attribution. Raw reasons carry IDs
// ("queue full on link 12"); the tracker folds them into bounded
// classes so counters stay low-cardinality.
const (
	DropQueueFull = "queue-full"
	DropLinkDown  = "link-down"
	DropLinkCut   = "link-cut"
	DropNoRoute   = "no-route"
	DropHopLimit  = "hop-limit"
	DropOther     = "other"
)

// classifyDrop maps a raw drop reason to its class.
func classifyDrop(reason string) string {
	switch {
	case strings.HasPrefix(reason, "queue full"):
		return DropQueueFull
	case strings.HasSuffix(reason, "down"):
		return DropLinkDown
	case strings.HasSuffix(reason, "cut"):
		return DropLinkCut
	case strings.HasPrefix(reason, "no route"):
		return DropNoRoute
	case strings.HasPrefix(reason, "hop limit"):
		return DropHopLimit
	}
	return DropOther
}

// FlowStats is one flow's aggregated telemetry.
type FlowStats struct {
	Flow routing.FlowID
	// FirstSend is when the flow's first packet left its source;
	// LastActivity is the latest delivery or drop.
	FirstSend    sim.Time
	LastActivity sim.Time
	// FCT is the observed flow span: LastActivity - FirstSend. For the
	// open-loop streams of the task workloads this is the active period;
	// for request/response flows it is the completion time.
	FCT sim.Time

	PacketsSent      uint64
	PacketsDelivered uint64
	PacketsDropped   uint64
	BytesDelivered   uint64
	// Retransmits counts source sends that reused an already-seen
	// transport sequence number (Packet.UserData != 0) — the TCP layer's
	// loss recovery made visible at the packet layer. Flows that do not
	// set UserData report 0.
	Retransmits uint64
	// MaxHops is the longest delivered path, in forwarding elements.
	MaxHops int
	// SumLatency accumulates delivery latencies; mean is
	// SumLatency / PacketsDelivered.
	SumLatency sim.Time
	// DropsByClass attributes drops to bounded reason classes
	// (DropQueueFull, DropLinkDown, ...).
	DropsByClass map[string]uint64
	// FaultWindowDrops counts drops that landed inside a fault
	// degradation window (between a fault/repair transition and the
	// route reconvergence that follows it).
	FaultWindowDrops uint64
}

// MeanLatency returns the flow's mean delivery latency (0 if nothing
// was delivered).
func (f FlowStats) MeanLatency() sim.Time {
	if f.PacketsDelivered == 0 {
		return 0
	}
	return f.SumLatency / sim.Time(f.PacketsDelivered)
}

// flowState is the mutable per-flow record.
type flowState struct {
	FlowStats
	seenSeq map[uint64]struct{} // UserData values seen at the source
}

// FlowTracker aggregates per-flow telemetry from probe events. Create
// one with NewFlowTracker, attach it via Config.Probe / SetProbe
// (combine with Probes), and optionally Bind it to a registry. Like
// every Probe it runs synchronously inside the event loop and is not
// safe for concurrent use; the registry instruments it feeds are.
type FlowTracker struct {
	flows map[routing.FlowID]*flowState
	order []routing.FlowID

	// degraded counts fault transitions whose reconvergence is still
	// pending; drops while degraded > 0 are fault-window drops.
	degraded int

	// Registry instruments (nil until Bind).
	delivered  *metrics.Counter
	droppedBy  map[string]*metrics.Counter
	bytes      *metrics.Counter
	sent       *metrics.Counter
	retx       *metrics.Counter
	faultDrops *metrics.Counter
	flowsSeen  *metrics.Gauge
	latency    *metrics.LatencyHistogram
	reg        *metrics.Registry
	labels     metrics.Labels
}

// NewFlowTracker returns an empty tracker.
func NewFlowTracker() *FlowTracker {
	return &FlowTracker{flows: make(map[routing.FlowID]*flowState)}
}

// Bind registers the tracker's aggregate instruments in r. Per-flow
// detail intentionally stays off the registry; use Flows or the CSV and
// JSON writers for the table.
//
//	quartz_packets_sent_total        counter  source sends
//	quartz_packets_delivered_total   counter
//	quartz_packets_dropped_total     counter  labeled {reason: class}
//	quartz_bytes_delivered_total     counter
//	quartz_retransmits_total         counter  duplicate-sequence sends
//	quartz_fault_window_drops_total  counter  drops inside degradation windows
//	quartz_flows_seen                gauge    distinct flows observed
//	quartz_packet_latency_us         histogram  delivery latency
func (t *FlowTracker) Bind(r *metrics.Registry) { t.BindLabeled(r, nil) }

// BindLabeled is Bind with a fixed label set on every instrument. A
// sharded run binds each shard's tracker with {"shard": i}, so the
// registry carries one series per shard (sum across the label for the
// network-wide totals) and no two shards publish to the same gauge.
func (t *FlowTracker) BindLabeled(r *metrics.Registry, labels metrics.Labels) {
	t.reg = r
	t.labels = labels
	t.sent = r.Counter("quartz_packets_sent_total", "packets injected at source hosts", labels)
	t.delivered = r.Counter("quartz_packets_delivered_total", "packets delivered to destination hosts", labels)
	t.bytes = r.Counter("quartz_bytes_delivered_total", "payload bytes delivered", labels)
	t.retx = r.Counter("quartz_retransmits_total", "source sends reusing a transport sequence number", labels)
	t.faultDrops = r.Counter("quartz_fault_window_drops_total", "drops inside fault degradation windows", labels)
	t.flowsSeen = r.Gauge("quartz_flows_seen", "distinct flows observed", labels)
	t.latency = r.Histogram("quartz_packet_latency_us", "per-packet delivery latency in microseconds", labels)
	t.droppedBy = make(map[string]*metrics.Counter)
}

// dropCounter returns the per-class drop counter (lazily registered).
func (t *FlowTracker) dropCounter(class string) *metrics.Counter {
	if t.reg == nil {
		return nil
	}
	c := t.droppedBy[class]
	if c == nil {
		labels := metrics.Labels{"reason": class}
		for k, v := range t.labels {
			labels[k] = v
		}
		c = t.reg.Counter("quartz_packets_dropped_total", "packets dropped, by reason class", labels)
		t.droppedBy[class] = c
	}
	return c
}

// flow returns the record for id, creating it at time now.
func (t *FlowTracker) flow(id routing.FlowID, now sim.Time) *flowState {
	f := t.flows[id]
	if f == nil {
		f = &flowState{FlowStats: FlowStats{
			Flow: id, FirstSend: now, LastActivity: now,
			DropsByClass: make(map[string]uint64),
		}}
		t.flows[id] = f
		t.order = append(t.order, id)
		if t.flowsSeen != nil {
			t.flowsSeen.Set(float64(len(t.flows)))
		}
	}
	return f
}

// PacketEnqueued implements Probe. Hops == 0 identifies the source
// enqueue — the packet's injection into the network.
func (t *FlowTracker) PacketEnqueued(e QueueEvent) {
	if e.Packet.Hops != 0 {
		return
	}
	f := t.flow(e.Packet.Flow, e.Packet.Created)
	f.PacketsSent++
	if t.sent != nil {
		t.sent.Inc()
	}
	if seq := e.Packet.UserData; seq != 0 {
		if f.seenSeq == nil {
			f.seenSeq = make(map[uint64]struct{})
		}
		if _, dup := f.seenSeq[seq]; dup {
			f.Retransmits++
			if t.retx != nil {
				t.retx.Inc()
			}
		} else {
			f.seenSeq[seq] = struct{}{}
		}
	}
}

// PacketTransmitted implements Probe (no-op: per-hop transmissions do
// not change flow aggregates).
func (t *FlowTracker) PacketTransmitted(QueueEvent) {}

// PacketDelivered implements Probe.
func (t *FlowTracker) PacketDelivered(d Delivery) {
	f := t.flow(d.Packet.Flow, d.Packet.Created)
	f.PacketsDelivered++
	f.BytesDelivered += uint64(d.Packet.Size)
	f.SumLatency += d.Latency
	if d.At > f.LastActivity {
		f.LastActivity = d.At
	}
	if d.Packet.Hops > f.MaxHops {
		f.MaxHops = d.Packet.Hops
	}
	if t.delivered != nil {
		t.delivered.Inc()
		t.bytes.Add(uint64(d.Packet.Size))
		t.latency.Observe(d.Latency.Micros())
	}
}

// PacketDropped implements Probe.
func (t *FlowTracker) PacketDropped(d Drop) {
	f := t.flow(d.Packet.Flow, d.Packet.Created)
	f.PacketsDropped++
	class := d.Code.Class()
	f.DropsByClass[class]++
	if d.At > f.LastActivity {
		f.LastActivity = d.At
	}
	if t.degraded > 0 {
		f.FaultWindowDrops++
		if t.faultDrops != nil {
			t.faultDrops.Inc()
		}
	}
	if c := t.dropCounter(class); c != nil {
		c.Inc()
	}
}

// FaultChanged implements FaultObserver: each fault or repair
// transition opens a degradation window that the following
// reconvergence closes; drops inside any open window are attributed as
// fault-window drops.
func (t *FlowTracker) FaultChanged(c FaultChange) {
	if c.Reconverged {
		if t.degraded > 0 {
			t.degraded--
		}
		return
	}
	t.degraded++
}

// MergeFrom folds every flow tracked by o into t. Each per-flow field
// combines order-independently (FirstSend min, LastActivity max,
// counts summed, MaxHops max, drop classes added), so merging K
// shard-local trackers in any order yields the same table. A flow's
// source host lives on exactly one shard, so retransmit detection
// (which needs the per-source sequence set) is already complete in the
// shard trackers and seenSeq is not carried over. After a merge the
// flow order is canonical — (FirstSend, Flow) ascending — making the
// merged table identical for every shard count, where an unmerged
// tracker breaks FirstSend ties by insertion order.
//
// MergeFrom is a post-run operation; do not call it while either
// tracker is still attached to a running network.
func (t *FlowTracker) MergeFrom(o *FlowTracker) {
	for _, id := range o.order {
		of := o.flows[id]
		f := t.flows[id]
		if f == nil {
			f = &flowState{FlowStats: FlowStats{
				Flow: id, FirstSend: of.FirstSend, LastActivity: of.LastActivity,
				DropsByClass: make(map[string]uint64, len(of.DropsByClass)),
			}}
			t.flows[id] = f
			t.order = append(t.order, id)
		} else {
			if of.FirstSend < f.FirstSend {
				f.FirstSend = of.FirstSend
			}
			if of.LastActivity > f.LastActivity {
				f.LastActivity = of.LastActivity
			}
		}
		f.PacketsSent += of.PacketsSent
		f.PacketsDelivered += of.PacketsDelivered
		f.PacketsDropped += of.PacketsDropped
		f.BytesDelivered += of.BytesDelivered
		f.Retransmits += of.Retransmits
		f.SumLatency += of.SumLatency
		f.FaultWindowDrops += of.FaultWindowDrops
		if of.MaxHops > f.MaxHops {
			f.MaxHops = of.MaxHops
		}
		for k, v := range of.DropsByClass {
			f.DropsByClass[k] += v
		}
	}
	sort.Slice(t.order, func(i, j int) bool {
		a, b := t.flows[t.order[i]], t.flows[t.order[j]]
		if a.FirstSend != b.FirstSend {
			return a.FirstSend < b.FirstSend
		}
		return a.Flow < b.Flow
	})
	if t.flowsSeen != nil {
		t.flowsSeen.Set(float64(len(t.flows)))
	}
}

// Flows returns every tracked flow in first-send order, with FCT
// filled in. The snapshot is a copy; mutating it does not affect the
// tracker.
func (t *FlowTracker) Flows() []FlowStats {
	out := make([]FlowStats, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.snapshotFlow(t.flows[id]))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].FirstSend < out[j].FirstSend })
	return out
}

// Flow returns one flow's stats.
func (t *FlowTracker) Flow(id routing.FlowID) (FlowStats, bool) {
	f, ok := t.flows[id]
	if !ok {
		return FlowStats{}, false
	}
	return t.snapshotFlow(f), true
}

func (t *FlowTracker) snapshotFlow(f *flowState) FlowStats {
	s := f.FlowStats
	s.FCT = s.LastActivity - s.FirstSend
	s.DropsByClass = make(map[string]uint64, len(f.DropsByClass))
	for k, v := range f.DropsByClass {
		s.DropsByClass[k] = v
	}
	return s
}

// NumFlows returns the number of distinct flows observed.
func (t *FlowTracker) NumFlows() int { return len(t.flows) }

// FCTStats feeds every flow's FCT (µs) into hist — typically a
// registry LatencyHistogram registered at the end of a run — and
// returns how many flows it observed.
func (t *FlowTracker) FCTStats(hist *metrics.LatencyHistogram) int {
	for _, id := range t.order {
		f := t.flows[id]
		hist.Observe((f.LastActivity - f.FirstSend).Micros())
	}
	return len(t.order)
}

// WriteCSV writes the per-flow table with a header row:
// flow,first_send_ps,last_activity_ps,fct_ps,sent,delivered,dropped,
// bytes,retransmits,max_hops,mean_latency_us,drops_by_class,fault_window_drops.
// drops_by_class is a semicolon-joined class=count list (CSV-escaped by
// the writer).
func (t *FlowTracker) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"flow", "first_send_ps", "last_activity_ps", "fct_ps", "sent", "delivered",
		"dropped", "bytes", "retransmits", "max_hops", "mean_latency_us",
		"drops_by_class", "fault_window_drops",
	}); err != nil {
		return err
	}
	for _, f := range t.Flows() {
		if err := cw.Write([]string{
			strconv.FormatUint(uint64(f.Flow), 10),
			strconv.FormatInt(int64(f.FirstSend), 10),
			strconv.FormatInt(int64(f.LastActivity), 10),
			strconv.FormatInt(int64(f.FCT), 10),
			strconv.FormatUint(f.PacketsSent, 10),
			strconv.FormatUint(f.PacketsDelivered, 10),
			strconv.FormatUint(f.PacketsDropped, 10),
			strconv.FormatUint(f.BytesDelivered, 10),
			strconv.FormatUint(f.Retransmits, 10),
			strconv.Itoa(f.MaxHops),
			fmt.Sprintf("%.3f", f.MeanLatency().Micros()),
			formatDropClasses(f.DropsByClass),
			strconv.FormatUint(f.FaultWindowDrops, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatDropClasses renders class=count pairs sorted by class.
func formatDropClasses(m map[string]uint64) string {
	if len(m) == 0 {
		return ""
	}
	classes := make([]string, 0, len(m))
	for c := range m {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, m[c]))
	}
	return strings.Join(parts, ";")
}

// flowJSON is the JSON wire form of one flow.
type flowJSON struct {
	Flow             uint64            `json:"flow"`
	FirstSendPs      int64             `json:"first_send_ps"`
	LastActivityPs   int64             `json:"last_activity_ps"`
	FCTPs            int64             `json:"fct_ps"`
	Sent             uint64            `json:"sent"`
	Delivered        uint64            `json:"delivered"`
	Dropped          uint64            `json:"dropped"`
	Bytes            uint64            `json:"bytes"`
	Retransmits      uint64            `json:"retransmits"`
	MaxHops          int               `json:"max_hops"`
	MeanLatencyUs    float64           `json:"mean_latency_us"`
	DropsByClass     map[string]uint64 `json:"drops_by_class,omitempty"`
	FaultWindowDrops uint64            `json:"fault_window_drops,omitempty"`
}

// WriteJSON writes the per-flow table as a JSON array.
func (t *FlowTracker) WriteJSON(w io.Writer) error {
	flows := t.Flows()
	out := make([]flowJSON, 0, len(flows))
	for _, f := range flows {
		j := flowJSON{
			Flow:             uint64(f.Flow),
			FirstSendPs:      int64(f.FirstSend),
			LastActivityPs:   int64(f.LastActivity),
			FCTPs:            int64(f.FCT),
			Sent:             f.PacketsSent,
			Delivered:        f.PacketsDelivered,
			Dropped:          f.PacketsDropped,
			Bytes:            f.BytesDelivered,
			Retransmits:      f.Retransmits,
			MaxHops:          f.MaxHops,
			MeanLatencyUs:    f.MeanLatency().Micros(),
			FaultWindowDrops: f.FaultWindowDrops,
		}
		if len(f.DropsByClass) > 0 {
			j.DropsByClass = f.DropsByClass
		}
		out = append(out, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
