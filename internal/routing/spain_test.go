package routing

import (
	"testing"

	"github.com/quartz-dcn/quartz/internal/topology"
)

func TestSPAINPrototypeConfiguration(t *testing.T) {
	// The §6 prototype: 4 fully meshed switches, one VLAN rooted at
	// each, so applications can pick the direct two-switch path or a
	// specific three-switch detour.
	g := mesh(t, 4, 2)
	s, err := NewSPAIN(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.VLANs() != 4 {
		t.Fatalf("VLANs = %d, want 4", s.VLANs())
	}
	if s.Name() != "spain(4 vlans)" {
		t.Errorf("Name = %q", s.Name())
	}
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[7] // racks 0 and 3
	// Across many flows both 2-switch (direct) and 3-switch (detour)
	// paths appear, and nothing longer.
	lengths := map[int]int{}
	for f := 0; f < 64; f++ {
		hops, err := s.PathLength(FlowID(f), src, dst)
		if err != nil {
			t.Fatal(err)
		}
		lengths[hops]++
	}
	if lengths[2] == 0 {
		t.Error("no flow used the direct two-switch path")
	}
	if lengths[3] == 0 {
		t.Error("no flow used a three-switch detour")
	}
	for hops := range lengths {
		if hops > 3 {
			t.Errorf("flow took %d switch hops on a 4-mesh", hops)
		}
	}
}

func TestSPAINDelivery(t *testing.T) {
	// All flows must arrive regardless of VLAN, on any topology.
	g, err := topology.NewTwoTierTree(topology.TreeConfig{ToRs: 4, Roots: 2, HostsPerToR: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSPAIN(g, g.SwitchesInTier(topology.TierAgg))
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	for f := 0; f < 16; f++ {
		if _, err := s.PathLength(FlowID(f), hosts[0], hosts[7]); err != nil {
			t.Fatalf("flow %d: %v", f, err)
		}
	}
}

func TestSPAINErrors(t *testing.T) {
	g := mesh(t, 3, 1)
	if _, err := NewSPAIN(g, []topology.NodeID{}); err == nil {
		t.Error("empty root set accepted")
	}
	if _, err := NewSPAIN(g, []topology.NodeID{g.Hosts()[0]}); err == nil {
		t.Error("host root accepted")
	}
}

func TestSPAINFlowPinning(t *testing.T) {
	g := mesh(t, 4, 1)
	s, err := NewSPAIN(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// The same flow always takes the same path length.
	first, err := s.PathLength(7, hosts[0], hosts[3])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := s.PathLength(7, hosts[0], hosts[3])
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("flow 7 flapped between %d and %d hops", first, again)
		}
	}
}
