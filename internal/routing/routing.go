// Package routing implements the forwarding strategies the Quartz paper
// evaluates (§3.4): ECMP over equal-cost shortest paths and Valiant load
// balancing (VLB) on full meshes — the two mesh strategies of §3.4 and
// Figure 20 — plus L2 spanning-tree forwarding (the §6 prototype's
// Ethernet baseline), SPAIN multi-VLAN multipath (§6), and Yen's
// k-shortest-paths (for §5 Jellyfish-style analysis).
//
// A Router answers one question for the packet simulator: given the
// switch a packet is at and the packet's flow and destination, which
// output port should carry it? Routers precompute their tables from a
// topology.Graph; reads are goroutine-safe. Routers that also implement
// Rerouter (ECMP, VLB, KSP) can recompute their tables around a set of
// failed links mid-run — Reroute mutates the router and must not run
// concurrently with NextPort (the packet simulator is single-threaded,
// so this holds naturally inside one simulation).
package routing

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/quartz-dcn/quartz/internal/topology"
)

// FlowID identifies a flow for ECMP hashing: packets of one flow follow
// one path.
type FlowID uint64

// PacketMeta carries the routing-relevant fields of a packet.
type PacketMeta struct {
	Flow FlowID
	// Seq is the packet's unique sequence number; per-packet ECMP
	// spraying hashes it together with Flow.
	Seq uint64
	// Hash is the flow's routing hash, PacketHash(Flow), computed once
	// when the packet is injected and carried hop to hop — the routers
	// fold it with the node ID per hop instead of re-running the full
	// mixer. Zero means "not cached"; routers fall back to computing it.
	Hash uint64
	Src  topology.NodeID
	Dst  topology.NodeID
	// Waypoint, if >= 0, is a VLB intermediate switch the packet must
	// visit before heading to Dst. The router clears it (conceptually)
	// once the packet reaches the waypoint; the simulator stores it.
	Waypoint topology.NodeID
}

// Router selects output ports.
type Router interface {
	// NextPort returns the port on which node n should forward the
	// packet. Reaching the destination host is included: when n is the
	// destination's ToR, the returned port is the host link. It returns
	// an error if no route exists.
	NextPort(n topology.NodeID, pkt PacketMeta) (topology.Port, error)
	// Name identifies the strategy in reports.
	Name() string
}

// Rerouter is implemented by routers that can recompute their tables
// around a set of failed links mid-run — the control-plane reconvergence
// step after failure detection. Reroute replaces any previously-avoided
// link set (it does not accumulate): pass the complete set of currently
// dead links each time, and an empty or nil map to restore full routes.
//
// Reroute copies dead; later mutations by the caller have no effect.
// It mutates the router in place, so it must not race with NextPort —
// inside a single-threaded simulation this holds naturally.
type Rerouter interface {
	Router
	Reroute(dead map[topology.LinkID]bool)
}

// copyDead defensively copies a dead-link set, dropping explicit false
// entries; it returns nil when the effective set is empty so that table
// builders can take their fast no-failures path.
func copyDead(dead map[topology.LinkID]bool) map[topology.LinkID]bool {
	var out map[topology.LinkID]bool
	for l, d := range dead {
		if !d {
			continue
		}
		if out == nil {
			out = make(map[topology.LinkID]bool, len(dead))
		}
		out[l] = true
	}
	return out
}

// PacketHash runs the full 64-bit splitmix-style finalizer over a flow
// ID. The packet simulator calls it once per packet at injection and
// caches the result in PacketMeta.Hash; per-hop port selection then
// only folds in the node ID (pickHash) instead of re-mixing from
// scratch at every switch.
func PacketHash(f FlowID) uint64 {
	x := uint64(f)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// pickHash mixes a packet's cached flow hash with a node ID so
// different switches make independent choices. A single
// multiply-xorshift round suffices because the input is already fully
// mixed by PacketHash.
func pickHash(h uint64, n topology.NodeID) uint64 {
	h ^= uint64(n) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// metaHash returns pkt's cached routing hash, computing it on the spot
// for callers (tests, analysis walks) that build PacketMeta by hand.
func metaHash(pkt PacketMeta) uint64 {
	if pkt.Hash != 0 {
		return pkt.Hash
	}
	return PacketHash(pkt.Flow)
}

// ECMP routes every packet along a shortest path, choosing among
// equal-cost next hops by flow hash. On a full mesh this always selects
// the single direct path (§3.4 of the paper).
type ECMP struct {
	g *topology.Graph
	// next[dst][n] lists n's shortest-path ports toward dst — a dense
	// slice indexed by destination NodeID (nil for non-hosts) so the
	// per-hop lookup is two array indexes, no map hashing.
	next [][][]topology.Port
	// dead is the failed-link set the tables were built around (nil
	// when routing the intact graph). Owned by the router: constructors
	// and Reroute copy their argument, so caller mutations after the
	// call have no effect.
	dead map[topology.LinkID]bool
	// perPacket sprays individual packets over the equal-cost set
	// instead of pinning whole flows. The paper's simulator sprays
	// (§7.1 reports no difference between ECMP and VLB on the mesh,
	// and the tree's smooth congestion curves require load spreading
	// finer than per-flow).
	perPacket bool
}

// NewECMP precomputes shortest-path next hops toward every host.
// Packets of one flow are pinned to one path.
func NewECMP(g *topology.Graph) *ECMP {
	e := &ECMP{g: g}
	e.rebuild()
	return e
}

// NewECMPPerPacket is NewECMP with per-packet spraying over the
// equal-cost set.
func NewECMPPerPacket(g *topology.Graph) *ECMP {
	e := NewECMP(g)
	e.perPacket = true
	return e
}

// NewECMPAvoiding precomputes shortest-path next hops on the graph with
// the given links treated as failed — the router a control plane would
// install after detecting those failures. The dead map is copied; the
// caller may reuse or mutate it afterwards without affecting the router.
func NewECMPAvoiding(g *topology.Graph, dead map[topology.LinkID]bool) *ECMP {
	e := &ECMP{g: g, dead: copyDead(dead)}
	e.rebuild()
	return e
}

// rebuild recomputes the next-hop tables from the graph and the current
// dead-link set.
func (e *ECMP) rebuild() {
	e.next = make([][][]topology.Port, e.g.NumNodes())
	for _, h := range e.g.Hosts() {
		e.next[h] = e.g.AllShortestNextHopsAvoiding(h, e.dead)
	}
}

// Reroute implements Rerouter: recompute shortest paths with the given
// links failed, replacing any previous dead set.
func (e *ECMP) Reroute(dead map[topology.LinkID]bool) {
	e.dead = copyDead(dead)
	e.rebuild()
}

// Name implements Router.
func (e *ECMP) Name() string {
	if e.perPacket {
		return "ecmp-spray"
	}
	return "ecmp"
}

// NextPort implements Router.
func (e *ECMP) NextPort(n topology.NodeID, pkt PacketMeta) (topology.Port, error) {
	if pkt.Dst < 0 || int(pkt.Dst) >= len(e.next) || e.next[pkt.Dst] == nil {
		return topology.Port{}, fmt.Errorf("routing: ecmp: unknown destination %d", pkt.Dst)
	}
	choices := e.next[pkt.Dst][n]
	if len(choices) == 0 {
		return topology.Port{}, fmt.Errorf("routing: ecmp: no route from %d to %d", n, pkt.Dst)
	}
	if len(choices) == 1 {
		return choices[0], nil
	}
	key := metaHash(pkt)
	if e.perPacket {
		key ^= pkt.Seq * 0x9E3779B97F4A7C15
	}
	return choices[pickHash(key, n)%uint64(len(choices))], nil
}

// VLB implements Valiant load balancing on a full mesh of ToR switches
// (§3.4): a fraction of flows detour through a random intermediate
// switch (two-hop path), the rest use the direct path. The simulator
// assigns waypoints at flow creation with ChooseWaypoint; forwarding
// itself is shortest-path toward the waypoint and then the destination.
type VLB struct {
	ecmp *ECMP
	g    *topology.Graph
	// IndirectFraction is the fraction of flows sent over two-hop paths.
	indirectFraction float64
	switches         []topology.NodeID
	// distTo[sw] holds hop distances from every node to switch sw, for
	// waypoint forwarding — dense by switch NodeID, nil for non-switch
	// IDs, so the per-hop lookup stays map-free.
	distTo [][]int
	// dead mirrors the embedded ECMP's failed-link set so waypoint
	// forwarding skips dead parallel links; deadMask is its dense
	// per-LinkID form for the hot path.
	dead     map[topology.LinkID]bool
	deadMask []bool
}

// NewVLB builds a VLB router over g (which should be a full mesh of ToR
// switches) detouring the given fraction of flows, 0 <= fraction <= 1.
func NewVLB(g *topology.Graph, indirectFraction float64) (*VLB, error) {
	if indirectFraction < 0 || indirectFraction > 1 {
		return nil, fmt.Errorf("routing: vlb fraction %v out of [0,1]", indirectFraction)
	}
	v := &VLB{
		ecmp:             NewECMP(g),
		g:                g,
		indirectFraction: indirectFraction,
		switches:         g.Switches(),
	}
	v.rebuildDist()
	return v, nil
}

// rebuildDist recomputes the per-switch distance tables used for
// waypoint forwarding, honoring the current dead-link set.
func (v *VLB) rebuildDist() {
	v.distTo = make([][]int, v.g.NumNodes())
	for _, sw := range v.switches {
		v.distTo[sw] = v.g.BFSDist(sw, v.dead)
	}
	v.deadMask = make([]bool, v.g.NumLinks())
	for l, d := range v.dead {
		if d && int(l) >= 0 && int(l) < len(v.deadMask) {
			v.deadMask[l] = true
		}
	}
}

// Reroute implements Rerouter: both the direct-path ECMP tables and the
// waypoint distance tables are rebuilt around the failed links. The
// dead map is copied.
func (v *VLB) Reroute(dead map[topology.LinkID]bool) {
	v.dead = copyDead(dead)
	v.ecmp.Reroute(dead)
	v.rebuildDist()
}

// Name implements Router.
func (v *VLB) Name() string { return fmt.Sprintf("vlb(%.2f)", v.indirectFraction) }

// ChooseWaypoint picks the VLB intermediate for a new flow from src to
// dst, or -1 for the direct path. rng drives the indirect/direct choice
// and the intermediate selection.
func (v *VLB) ChooseWaypoint(src, dst topology.NodeID, rng *rand.Rand) topology.NodeID {
	if rng.Float64() >= v.indirectFraction {
		return -1
	}
	sSw, dSw := v.g.ToRof(src), v.g.ToRof(dst)
	// Pick a random switch that is neither endpoint's ToR.
	candidates := 0
	for _, sw := range v.switches {
		if sw != sSw && sw != dSw {
			candidates++
		}
	}
	if candidates == 0 {
		return -1
	}
	pick := rng.Intn(candidates)
	for _, sw := range v.switches {
		if sw == sSw || sw == dSw {
			continue
		}
		if pick == 0 {
			return sw
		}
		pick--
	}
	return -1
}

// NextPort implements Router. Packets with a waypoint are routed toward
// the waypoint switch first; the simulator clears the waypoint when the
// packet transits it.
func (v *VLB) NextPort(n topology.NodeID, pkt PacketMeta) (topology.Port, error) {
	if pkt.Waypoint >= 0 && n != pkt.Waypoint {
		// Route toward the waypoint switch along switch links.
		return v.towardSwitch(n, pkt)
	}
	return v.ecmp.NextPort(n, pkt)
}

// towardSwitch forwards along a shortest path to the waypoint switch.
// It selects among the downhill ports by count-then-pick — two cheap
// passes over the port list — instead of materializing a candidate
// slice per hop.
func (v *VLB) towardSwitch(n topology.NodeID, pkt PacketMeta) (topology.Port, error) {
	if pkt.Waypoint < 0 || int(pkt.Waypoint) >= len(v.distTo) || v.distTo[pkt.Waypoint] == nil {
		return topology.Port{}, fmt.Errorf("routing: vlb: waypoint %d is not a switch", pkt.Waypoint)
	}
	dist := v.distTo[pkt.Waypoint]
	if dist[n] <= 0 {
		return topology.Port{}, fmt.Errorf("routing: vlb: no path from %d to waypoint %d", n, pkt.Waypoint)
	}
	ports := v.g.Ports(n)
	downhill := func(p topology.Port) bool {
		return !v.deadMask[p.Link] && dist[p.Peer] == dist[n]-1
	}
	count := 0
	for _, p := range ports {
		if downhill(p) {
			count++
		}
	}
	if count == 0 {
		return topology.Port{}, fmt.Errorf("routing: vlb: stuck at %d toward waypoint %d", n, pkt.Waypoint)
	}
	pick := int(pickHash(metaHash(pkt), n) % uint64(count))
	for _, p := range ports {
		if !downhill(p) {
			continue
		}
		if pick == 0 {
			return p, nil
		}
		pick--
	}
	panic("routing: vlb: unreachable")
}

// SpanningTree forwards along a single spanning tree rooted at a chosen
// switch — classic L2 Ethernet behaviour, the baseline the prototype
// compares against (§3.4, §6). All traffic between different subtrees
// funnels through the root.
type SpanningTree struct {
	g    *topology.Graph
	root topology.NodeID
	// parent[n] is the port from n toward the root; undefined at root.
	parent []topology.Port
	// inTree marks the links in the tree.
	inTree map[topology.LinkID]bool
	name   string
}

// NewSpanningTree builds a BFS spanning tree rooted at root.
func NewSpanningTree(g *topology.Graph, root topology.NodeID) (*SpanningTree, error) {
	if g.Node(root).Kind != topology.Switch {
		return nil, fmt.Errorf("routing: spanning tree root %d is not a switch", root)
	}
	st := &SpanningTree{
		g:      g,
		root:   root,
		parent: make([]topology.Port, g.NumNodes()),
		inTree: make(map[topology.LinkID]bool),
		name:   fmt.Sprintf("stp(root=%s)", g.Node(root).Name),
	}
	for i := range st.parent {
		st.parent[i] = topology.Port{Link: -1, Peer: -1}
	}
	seen := make([]bool, g.NumNodes())
	seen[root] = true
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range g.Ports(n) {
			if seen[p.Peer] {
				continue
			}
			seen[p.Peer] = true
			st.parent[p.Peer] = topology.Port{Link: p.Link, Peer: n}
			st.inTree[p.Link] = true
			queue = append(queue, p.Peer)
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("routing: node %d unreachable from spanning tree root", i)
		}
	}
	return st, nil
}

// Name implements Router.
func (st *SpanningTree) Name() string { return st.name }

// NextPort implements Router: forward up toward the root until the
// destination is in the subtree below, then down. Implemented by walking
// tree hops: from n, the next hop is the unique tree neighbor that is
// closer to dst in the tree.
func (st *SpanningTree) NextPort(n topology.NodeID, pkt PacketMeta) (topology.Port, error) {
	if n == pkt.Dst {
		return topology.Port{}, fmt.Errorf("routing: stp: already at destination %d", n)
	}
	// Is dst in the subtree under one of n's tree children? Walk up from
	// dst to root; if we hit n, the previous hop tells us the child port.
	prev := pkt.Dst
	for cur := pkt.Dst; ; {
		if cur == n {
			// Forward down toward prev.
			for _, p := range st.g.Ports(n) {
				if p.Peer == prev && st.inTree[p.Link] {
					return p, nil
				}
			}
			return topology.Port{}, fmt.Errorf("routing: stp: missing tree link %d->%d", n, prev)
		}
		if cur == st.root {
			break
		}
		prev = cur
		cur = st.parent[cur].Peer
	}
	// dst is not below n: forward up.
	if n == st.root {
		return topology.Port{}, fmt.Errorf("routing: stp: no route from root to %d", pkt.Dst)
	}
	up := st.parent[n]
	for _, p := range st.g.Ports(n) {
		if p.Link == up.Link {
			return p, nil
		}
	}
	return topology.Port{}, fmt.Errorf("routing: stp: missing uplink at %d", n)
}

// TreeLinks returns the set of links used by the spanning tree.
func (st *SpanningTree) TreeLinks() map[topology.LinkID]bool { return st.inTree }

// KShortestPaths returns up to k loop-free shortest paths (by hop count)
// from src to dst using Yen's algorithm. Paths are returned in
// non-decreasing length order. Used for Jellyfish-style path diversity
// analysis and k-shortest-path ECMP.
func KShortestPaths(g *topology.Graph, src, dst topology.NodeID, k int) [][]topology.NodeID {
	return KShortestPathsAvoiding(g, src, dst, k, nil)
}

// KShortestPathsAvoiding is KShortestPaths on the graph with the links
// in avoid removed — for recomputing path sets around failures. The
// avoid map is only read.
func KShortestPathsAvoiding(g *topology.Graph, src, dst topology.NodeID, k int, avoid map[topology.LinkID]bool) [][]topology.NodeID {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPath(src, dst, avoid)
	if first == nil {
		return nil
	}
	paths := [][]topology.NodeID{first}
	var candidates [][]topology.NodeID
	for len(paths) < k {
		last := paths[len(paths)-1]
		// For each spur node in the previous path...
		for i := 0; i < len(last)-1; i++ {
			spur := last[i]
			rootPath := last[:i+1]
			// Remove links used by previous paths sharing this root.
			dead := make(map[topology.LinkID]bool)
			for l, d := range avoid {
				if d {
					dead[l] = true
				}
			}
			for _, p := range paths {
				if len(p) > i && equalPath(p[:i+1], rootPath) {
					if l, ok := g.FindLink(p[i], p[i+1]); ok {
						dead[l.ID] = true
						// Parallel links between the same pair count as
						// the same hop for loop-free purposes.
						for _, port := range g.Ports(p[i]) {
							if port.Peer == p[i+1] {
								dead[port.Link] = true
							}
						}
					}
				}
			}
			// Remove root path nodes (except spur) by killing their links.
			for _, n := range rootPath[:len(rootPath)-1] {
				for _, port := range g.Ports(n) {
					dead[port.Link] = true
				}
			}
			spurPath := g.ShortestPath(spur, dst, dead)
			if spurPath == nil {
				continue
			}
			total := append(append([]topology.NodeID{}, rootPath[:len(rootPath)-1]...), spurPath...)
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return len(candidates[i]) < len(candidates[j]) })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func equalPath(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(set [][]topology.NodeID, p []topology.NodeID) bool {
	for _, q := range set {
		if equalPath(q, p) {
			return true
		}
	}
	return false
}
