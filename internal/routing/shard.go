package routing

// ShardCloner is implemented by routers that can produce independent
// per-shard copies of themselves for parallel (sharded) simulation.
//
// A Router's reads (NextPort) are goroutine-safe, but Reroute mutates
// tables in place — on a sharded network a reconvergence would race
// with other shards' forwarding lookups mid-rebuild and, worse, expose
// half-built tables. Cloning sidesteps both: each shard forwards
// against its own copy, and reconvergence reroutes every clone during
// a global phase (all shards parked).
//
// CloneForShard must return a router whose forwarding decisions are
// identical to the original's for every (node, packet) — clones are a
// parallelism mechanism, not a policy fork — and rerouting every clone
// with the same dead-link set must keep them identical. ECMP and VLB
// satisfy this because their tables are a deterministic function of
// (graph, dead set).
type ShardCloner interface {
	Router
	CloneForShard() Router
}

// CloneForShard implements ShardCloner: the clone shares the immutable
// graph, copies the dead-link set, and rebuilds its own next-hop
// tables, so a Reroute on one clone never touches another's tables.
func (e *ECMP) CloneForShard() Router {
	c := &ECMP{g: e.g, dead: copyDead(e.dead), perPacket: e.perPacket}
	c.rebuild()
	return c
}

// CloneForShard implements ShardCloner: the clone gets its own ECMP
// tables and waypoint distance tables; the graph and switch list are
// shared (both immutable).
func (v *VLB) CloneForShard() Router {
	c := &VLB{
		ecmp:             v.ecmp.CloneForShard().(*ECMP),
		g:                v.g,
		indirectFraction: v.indirectFraction,
		switches:         v.switches,
		dead:             copyDead(v.dead),
	}
	c.rebuildDist()
	return c
}
