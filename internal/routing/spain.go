package routing

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/topology"
)

// SPAIN exposes multiple paths over commodity Ethernet by precomputing
// a set of VLANs, each carrying its own spanning tree, and pinning each
// flow to one VLAN — the mechanism of Mudigonda et al. that the paper's
// prototype uses to steer traffic (§6: "we use the technique introduced
// in SPAIN to expose alternative network paths to the application...
// the spanning trees for the VLANs are rooted at different switches").
//
// On a full mesh, a tree rooted at switch R reaches every other switch
// in one hop, so the VLAN set {tree rooted at each switch} exposes both
// the direct path (VLAN rooted at either endpoint) and every two-hop
// detour (VLAN rooted at an intermediate switch).
type SPAIN struct {
	g     *topology.Graph
	trees []*SpanningTree
	name  string
}

// NewSPAIN builds one spanning-tree VLAN rooted at each of the given
// switches. With roots == nil, every switch in the graph roots a VLAN
// (the prototype's four-VLAN configuration on its four switches).
func NewSPAIN(g *topology.Graph, roots []topology.NodeID) (*SPAIN, error) {
	if roots == nil {
		roots = g.Switches()
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("routing: spain needs at least one VLAN root")
	}
	s := &SPAIN{g: g, name: fmt.Sprintf("spain(%d vlans)", len(roots))}
	for _, r := range roots {
		st, err := NewSpanningTree(g, r)
		if err != nil {
			return nil, fmt.Errorf("routing: spain VLAN rooted at %d: %w", r, err)
		}
		s.trees = append(s.trees, st)
	}
	return s, nil
}

// Name implements Router.
func (s *SPAIN) Name() string { return s.name }

// VLANs returns the number of spanning trees.
func (s *SPAIN) VLANs() int { return len(s.trees) }

// vlanFor pins a flow to one VLAN. The source host selects the VLAN in
// SPAIN (each VLAN is a virtual interface); the hash stands in for that
// selection.
func (s *SPAIN) vlanFor(pkt PacketMeta) *SpanningTree {
	return s.trees[pickHash(metaHash(pkt), -1)%uint64(len(s.trees))]
}

// NextPort implements Router by forwarding within the flow's VLAN tree.
func (s *SPAIN) NextPort(n topology.NodeID, pkt PacketMeta) (topology.Port, error) {
	return s.vlanFor(pkt).NextPort(n, pkt)
}

// PathLength returns the number of switch hops flow f takes between two
// hosts — for tests and path diversity analysis.
func (s *SPAIN) PathLength(f FlowID, src, dst topology.NodeID) (int, error) {
	n := s.g.ToRof(src)
	pkt := PacketMeta{Flow: f, Src: src, Dst: dst, Waypoint: -1}
	hops := 0
	for {
		hops++
		if hops > 64 {
			return 0, fmt.Errorf("routing: spain: flow %d loops", f)
		}
		port, err := s.NextPort(n, pkt)
		if err != nil {
			return 0, err
		}
		if port.Peer == dst {
			return hops, nil
		}
		n = port.Peer
	}
}
