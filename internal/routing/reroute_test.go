package routing

import (
	"math/rand"
	"testing"

	"github.com/quartz-dcn/quartz/internal/topology"
)

// meshWithHosts builds a small full mesh for reroute tests.
func meshWithHosts(t testing.TB, switches int) *topology.Graph {
	t.Helper()
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: switches, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// directLink returns the mesh link between the ToRs of two hosts.
func directLink(t testing.TB, g *topology.Graph, a, b topology.NodeID) topology.Link {
	t.Helper()
	l, ok := g.FindLink(g.ToRof(a), g.ToRof(b))
	if !ok {
		t.Fatal("no direct link")
	}
	return l
}

// nextFrom routes one packet step at node from toward dst.
func nextFrom(t testing.TB, r Router, from topology.NodeID, pkt PacketMeta) topology.Port {
	t.Helper()
	p, err := r.NextPort(from, pkt)
	if err != nil {
		t.Fatalf("NextPort(%d, %+v): %v", from, pkt, err)
	}
	return p
}

func directPkt(src, dst topology.NodeID, flow FlowID) PacketMeta {
	return PacketMeta{Flow: flow, Src: src, Dst: dst, Waypoint: -1}
}

func TestNewECMPAvoidingCopiesDeadMap(t *testing.T) {
	g := meshWithHosts(t, 4)
	h0, h1 := g.Hosts()[0], g.Hosts()[1]
	direct := directLink(t, g, h0, h1)

	dead := map[topology.LinkID]bool{direct.ID: true}
	r := NewECMPAvoiding(g, dead)
	// Mutating the caller's map after construction must not change the
	// router's view.
	delete(dead, direct.ID)
	dead[topology.LinkID(999)] = true

	for flow := FlowID(0); flow < 32; flow++ {
		p := nextFrom(t, r, g.ToRof(h0), directPkt(h0, h1, flow))
		if p.Link == direct.ID {
			t.Fatalf("flow %d routed over the avoided link", flow)
		}
	}
}

// checkAvoids asserts that no flow from h0's ToR toward h1 crosses the
// given link.
func checkAvoids(t *testing.T, r Router, g *topology.Graph, h0, h1 topology.NodeID, avoid topology.LinkID) {
	t.Helper()
	for flow := FlowID(0); flow < 32; flow++ {
		p := nextFrom(t, r, g.ToRof(h0), directPkt(h0, h1, flow))
		if p.Link == avoid {
			t.Fatalf("flow %d routed over dead link %d", flow, avoid)
		}
	}
}

func TestRerouteECMP(t *testing.T) {
	g := meshWithHosts(t, 4)
	h0, h1 := g.Hosts()[0], g.Hosts()[1]
	direct := directLink(t, g, h0, h1)
	r := NewECMP(g)

	before := nextFrom(t, r, g.ToRof(h0), directPkt(h0, h1, 1))
	if before.Link != direct.ID {
		t.Fatalf("healthy mesh did not use the direct link")
	}
	r.Reroute(map[topology.LinkID]bool{direct.ID: true})
	checkAvoids(t, r, g, h0, h1, direct.ID)
	// Reroute replaces the dead set: an empty set restores the direct
	// path.
	r.Reroute(nil)
	after := nextFrom(t, r, g.ToRof(h0), directPkt(h0, h1, 1))
	if after.Link != direct.ID {
		t.Errorf("direct link not restored after Reroute(nil)")
	}
}

func TestRerouteVLB(t *testing.T) {
	g := meshWithHosts(t, 4)
	h0, h1 := g.Hosts()[0], g.Hosts()[1]
	direct := directLink(t, g, h0, h1)
	v, err := NewVLB(g, 1.0) // always detour, so waypoints are exercised
	if err != nil {
		t.Fatal(err)
	}
	v.Reroute(map[topology.LinkID]bool{direct.ID: true})
	// Both the direct leg and every waypoint leg must avoid the dead
	// link.
	checkAvoids(t, v, g, h0, h1, direct.ID)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		w := v.ChooseWaypoint(h0, h1, rng)
		if w < 0 {
			continue
		}
		pkt := PacketMeta{Flow: FlowID(i), Src: h0, Dst: h1, Waypoint: w}
		if p := nextFrom(t, v, g.ToRof(h0), pkt); p.Link == direct.ID {
			t.Fatalf("waypoint leg crossed the dead link")
		}
	}
}

func TestRerouteKSP(t *testing.T) {
	g := meshWithHosts(t, 4)
	h0, h1 := g.Hosts()[0], g.Hosts()[1]
	direct := directLink(t, g, h0, h1)
	r, err := NewKSP(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	r.Reroute(map[topology.LinkID]bool{direct.ID: true})
	checkAvoids(t, r, g, h0, h1, direct.ID)
	r.Reroute(nil)
	found := false
	for flow := FlowID(0); flow < 32; flow++ {
		if nextFrom(t, r, g.ToRof(h0), directPkt(h0, h1, flow)).Link == direct.ID {
			found = true
		}
	}
	if !found {
		t.Error("direct link unused after Reroute(nil)")
	}
}

// TestRerouteKeepsConnectivity fails a link and checks every host pair
// still resolves a next hop at every step of its walk.
func TestRerouteKeepsConnectivity(t *testing.T) {
	g := meshWithHosts(t, 5)
	direct := directLink(t, g, g.Hosts()[0], g.Hosts()[1])
	r := NewECMP(g)
	r.Reroute(map[topology.LinkID]bool{direct.ID: true})
	for _, src := range g.Hosts() {
		for _, dst := range g.Hosts() {
			if src == dst {
				continue
			}
			at := src
			for hops := 0; at != dst; hops++ {
				if hops > 6 {
					t.Fatalf("%d->%d: no progress after %d hops", src, dst, hops)
				}
				p := nextFrom(t, r, at, directPkt(src, dst, FlowID(src)<<8|FlowID(dst)))
				if p.Link == direct.ID {
					t.Fatalf("%d->%d crossed the dead link", src, dst)
				}
				at = p.Peer
			}
		}
	}
}
