package routing

import (
	"math/rand"
	"testing"

	"github.com/quartz-dcn/quartz/internal/topology"
)

func TestKSPDeliversOnJellyfish(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := topology.NewJellyfish(topology.JellyfishConfig{
		Switches: 10, HostsPerSwitch: 2, NetDegree: 3, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewKSP(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "ksp(4)" {
		t.Errorf("Name = %q", r.Name())
	}
	hosts := g.Hosts()
	// Walk many flows between many pairs; all must arrive loop-free.
	for trial := 0; trial < 40; trial++ {
		src := hosts[trial%len(hosts)]
		dst := hosts[(trial*7+5)%len(hosts)]
		if src == dst {
			continue
		}
		pkt := PacketMeta{Flow: FlowID(trial), Src: src, Dst: dst, Waypoint: -1}
		n := g.ToRof(src)
		seen := map[topology.NodeID]bool{}
		for hops := 0; ; hops++ {
			if hops > 16 {
				t.Fatalf("flow %d looping", trial)
			}
			if seen[n] {
				t.Fatalf("flow %d revisits %d", trial, n)
			}
			seen[n] = true
			port, err := r.NextPort(n, pkt)
			if err != nil {
				t.Fatalf("flow %d at %d: %v", trial, n, err)
			}
			if port.Peer == dst {
				break
			}
			n = port.Peer
		}
	}
}

func TestKSPUsesMultiplePaths(t *testing.T) {
	// Ring of 6 switches: two paths between opposite switches; with
	// k=2, different flows should take both.
	g := topology.New("ring6")
	var sw [6]topology.NodeID
	for i := range sw {
		sw[i] = g.AddSwitch("s", topology.TierToR, i)
	}
	for i := range sw {
		g.Connect(sw[i], sw[(i+1)%6], 1e9, 0)
	}
	h0 := g.AddHost("h0", 0)
	h3 := g.AddHost("h3", 3)
	g.Connect(h0, sw[0], 1e9, 0)
	g.Connect(h3, sw[3], 1e9, 0)
	r, err := NewKSP(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PathCount(sw[0], h3); got != 2 {
		t.Fatalf("PathCount = %d, want 2", got)
	}
	firstHops := map[topology.NodeID]bool{}
	for f := 0; f < 32; f++ {
		port, err := r.NextPort(sw[0], PacketMeta{Flow: FlowID(f), Src: h0, Dst: h3, Waypoint: -1})
		if err != nil {
			t.Fatal(err)
		}
		firstHops[port.Peer] = true
	}
	if len(firstHops) != 2 {
		t.Errorf("32 flows used first hops %v, want both ring directions", firstHops)
	}
}

func TestKSPSameRackDelivery(t *testing.T) {
	g := mesh(t, 3, 2)
	r, err := NewKSP(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.HostsInRack(0)
	port, err := r.NextPort(g.ToRof(hosts[0]), PacketMeta{Flow: 1, Src: hosts[0], Dst: hosts[1], Waypoint: -1})
	if err != nil {
		t.Fatal(err)
	}
	if port.Peer != hosts[1] {
		t.Errorf("same-rack next hop = %d, want the host", port.Peer)
	}
}

func TestKSPHostSource(t *testing.T) {
	g := mesh(t, 3, 1)
	r, err := NewKSP(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	port, err := r.NextPort(hosts[0], PacketMeta{Flow: 1, Src: hosts[0], Dst: hosts[2], Waypoint: -1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Node(port.Peer).Kind != topology.Switch {
		t.Errorf("host forwarded to %v, want its ToR", port.Peer)
	}
}

func TestKSPErrors(t *testing.T) {
	g := mesh(t, 3, 1)
	if _, err := NewKSP(g, 0); err == nil {
		t.Error("k=0 accepted")
	}
	r, err := NewKSP(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NextPort(g.Switches()[0], PacketMeta{Flow: 1, Src: g.Hosts()[0], Dst: 999, Waypoint: -1}); err == nil {
		t.Error("unknown destination accepted")
	}
}
