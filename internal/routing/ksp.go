package routing

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/topology"
)

// KSP routes over the k shortest loop-free paths between each
// source-ToR/destination pair, pinning each flow to one of them by
// hash — Jellyfish's k-shortest-path routing (Table 9 notes its path
// diversity "depends on the chosen routing algorithm, k-shortest-path
// or ECMP").
//
// Unlike ECMP, the alternatives need not be equal length: KSP trades a
// slightly longer path for congestion spreading on irregular
// topologies. Paths are precomputed per (source switch, destination
// host); forwarding follows the pinned path hop by hop.
type KSP struct {
	g *topology.Graph
	k int
	// paths[key] lists up to k node sequences from a source switch to a
	// destination host, inclusive.
	paths map[pathKey][][]topology.NodeID
	// dead is the failed-link set the paths avoid (nil when intact).
	dead map[topology.LinkID]bool
}

type pathKey struct {
	src topology.NodeID // source ToR switch
	dst topology.NodeID // destination host
}

// NewKSP precomputes up to k shortest paths from every ToR switch to
// every host. Memory grows with switches x hosts x k; intended for the
// analysis- and simulation-scale topologies of this repository.
func NewKSP(g *topology.Graph, k int) (*KSP, error) {
	if k < 1 {
		return nil, fmt.Errorf("routing: ksp needs k >= 1, got %d", k)
	}
	r := &KSP{g: g, k: k}
	if err := r.rebuild(); err != nil {
		return nil, err
	}
	return r, nil
}

// rebuild recomputes the path sets around the current dead-link set.
// With failures present a pair may become unreachable; its entry is
// dropped (NextPort then reports "no paths", and the simulator counts
// the drop) rather than failing the whole rebuild.
func (r *KSP) rebuild() error {
	r.paths = make(map[pathKey][][]topology.NodeID)
	for _, sw := range r.g.Switches() {
		for _, h := range r.g.Hosts() {
			if r.g.ToRof(h) == sw {
				if l, ok := r.g.FindLink(sw, h); !ok || r.dead[l.ID] {
					continue // host link down: unreachable
				}
				// Deliver directly (single hop to the host).
				r.paths[pathKey{sw, h}] = [][]topology.NodeID{{sw, h}}
				continue
			}
			ps := KShortestPathsAvoiding(r.g, sw, h, r.k, r.dead)
			if len(ps) == 0 {
				if r.dead != nil {
					continue // severed by failures: tolerated
				}
				return fmt.Errorf("routing: ksp: no path from switch %d to host %d", sw, h)
			}
			r.paths[pathKey{sw, h}] = ps
		}
	}
	return nil
}

// Reroute implements Rerouter: path sets are recomputed avoiding the
// failed links. The dead map is copied. Pairs left unreachable lose
// their entries until a later Reroute restores connectivity.
func (r *KSP) Reroute(dead map[topology.LinkID]bool) {
	r.dead = copyDead(dead)
	r.rebuild() // unreachable pairs are dropped, so err is always nil here
}

// Name implements Router.
func (r *KSP) Name() string { return fmt.Sprintf("ksp(%d)", r.k) }

// NextPort implements Router. The flow's pinned path is the hash-chosen
// one from its source switch; at an intermediate node the packet
// follows the suffix of that path. If the node is not on the pinned
// path (possible only after a mid-flight router swap), it falls back to
// the node's own best path set.
func (r *KSP) NextPort(n topology.NodeID, pkt PacketMeta) (topology.Port, error) {
	if r.g.Node(n).Kind == topology.Host {
		// Source host: forward to its ToR.
		for _, p := range r.g.Ports(n) {
			if r.dead[p.Link] {
				continue
			}
			if r.g.Node(p.Peer).Kind == topology.Switch {
				return p, nil
			}
		}
		return topology.Port{}, fmt.Errorf("routing: ksp: host %d has no uplink", n)
	}
	srcSw := n
	if r.g.Node(pkt.Src).Kind == topology.Host {
		srcSw = r.g.ToRof(pkt.Src)
	}
	ps, ok := r.paths[pathKey{srcSw, pkt.Dst}]
	if !ok || len(ps) == 0 {
		return topology.Port{}, fmt.Errorf("routing: ksp: no paths from %d to %d", srcSw, pkt.Dst)
	}
	path := ps[pickHash(metaHash(pkt), 0)%uint64(len(ps))]
	// Find n on the pinned path and forward to the successor.
	for i, node := range path[:len(path)-1] {
		if node == n {
			return r.portTo(n, path[i+1])
		}
	}
	// Off-path (e.g. the flow was rerouted): restart from n's own set.
	ps, ok = r.paths[pathKey{n, pkt.Dst}]
	if !ok || len(ps) == 0 {
		return topology.Port{}, fmt.Errorf("routing: ksp: node %d off-path to %d", n, pkt.Dst)
	}
	path = ps[pickHash(metaHash(pkt), n)%uint64(len(ps))]
	if len(path) < 2 {
		return topology.Port{}, fmt.Errorf("routing: ksp: degenerate path at %d", n)
	}
	return r.portTo(n, path[1])
}

func (r *KSP) portTo(n, next topology.NodeID) (topology.Port, error) {
	for _, p := range r.g.Ports(n) {
		if p.Peer == next && !r.dead[p.Link] {
			return p, nil
		}
	}
	return topology.Port{}, fmt.Errorf("routing: ksp: missing link %d-%d", n, next)
}

// PathCount returns how many alternatives the router holds for a
// source switch / destination host pair (for diversity analysis).
func (r *KSP) PathCount(srcSwitch, dstHost topology.NodeID) int {
	return len(r.paths[pathKey{srcSwitch, dstHost}])
}
