package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

func mesh(t testing.TB, m, n int) *topology.Graph {
	t.Helper()
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: m, HostsPerSwitch: n})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// walk forwards a packet from src's ToR until it reaches dst, returning
// the switch-level path (excluding hosts). Fails after maxHops.
func walk(t *testing.T, g *topology.Graph, r Router, pkt PacketMeta, maxHops int) []topology.NodeID {
	t.Helper()
	n := g.ToRof(pkt.Src)
	var path []topology.NodeID
	for hops := 0; hops < maxHops; hops++ {
		path = append(path, n)
		if n == pkt.Waypoint {
			pkt.Waypoint = -1
		}
		port, err := r.NextPort(n, pkt)
		if err != nil {
			t.Fatalf("NextPort(%d): %v (path %v)", n, err, path)
		}
		if port.Peer == pkt.Dst {
			return path
		}
		n = port.Peer
	}
	t.Fatalf("packet did not arrive after %d hops; path %v", maxHops, path)
	return nil
}

func TestECMPDirectPathOnMesh(t *testing.T) {
	g := mesh(t, 8, 2)
	r := NewECMP(g)
	hosts := g.Hosts()
	// Any cross-rack pair must use exactly the 2-switch direct path.
	for trial := 0; trial < 20; trial++ {
		src, dst := hosts[trial%len(hosts)], hosts[(trial*7+3)%len(hosts)]
		if g.ToRof(src) == g.ToRof(dst) {
			continue
		}
		path := walk(t, g, r, PacketMeta{Flow: FlowID(trial), Src: src, Dst: dst, Waypoint: -1}, 10)
		if len(path) != 2 {
			t.Errorf("mesh ECMP path %v has %d switches, want 2", path, len(path))
		}
	}
}

func TestECMPSameRack(t *testing.T) {
	g := mesh(t, 4, 2)
	r := NewECMP(g)
	hosts := g.HostsInRack(0)
	path := walk(t, g, r, PacketMeta{Flow: 1, Src: hosts[0], Dst: hosts[1], Waypoint: -1}, 4)
	if len(path) != 1 {
		t.Errorf("same-rack path %v, want single ToR hop", path)
	}
}

func TestECMPUnknownDestination(t *testing.T) {
	g := mesh(t, 3, 1)
	r := NewECMP(g)
	sw := g.Switches()
	if _, err := r.NextPort(sw[0], PacketMeta{Dst: 999, Waypoint: -1}); err == nil {
		t.Error("unknown destination accepted")
	}
	// A switch asked to route to itself-as-destination fails cleanly
	// (hosts are the only valid destinations).
	if _, err := r.NextPort(sw[0], PacketMeta{Dst: sw[1], Waypoint: -1}); err == nil {
		t.Error("switch destination accepted")
	}
}

func TestECMPFlowPinning(t *testing.T) {
	// On a diamond topology with two equal-cost paths, one flow must
	// always take the same path, and different flows should eventually
	// use both.
	g := topology.New("diamond")
	a := g.AddSwitch("a", topology.TierToR, 0)
	b := g.AddSwitch("b", topology.TierAgg, -1)
	c := g.AddSwitch("c", topology.TierAgg, -1)
	d := g.AddSwitch("d", topology.TierToR, 1)
	hs := g.AddHost("hs", 0)
	hd := g.AddHost("hd", 1)
	g.Connect(hs, a, sim.Gbps, 0)
	g.Connect(hd, d, sim.Gbps, 0)
	g.Connect(a, b, sim.Gbps, 0)
	g.Connect(a, c, sim.Gbps, 0)
	g.Connect(b, d, sim.Gbps, 0)
	g.Connect(c, d, sim.Gbps, 0)
	r := NewECMP(g)

	seen := map[topology.NodeID]bool{}
	for f := 0; f < 64; f++ {
		pkt := PacketMeta{Flow: FlowID(f), Src: hs, Dst: hd, Waypoint: -1}
		first, err := r.NextPort(a, pkt)
		if err != nil {
			t.Fatal(err)
		}
		seen[first.Peer] = true
		// Same flow: same choice every time.
		for i := 0; i < 5; i++ {
			again, err := r.NextPort(a, pkt)
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("flow %d flapped between ports %v and %v", f, first, again)
			}
		}
	}
	if !seen[b] || !seen[c] {
		t.Errorf("64 flows only used paths %v; want both b and c", seen)
	}
}

func TestVLBWaypointRouting(t *testing.T) {
	g := mesh(t, 6, 2)
	v, err := NewVLB(g, 1.0) // all flows indirect
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	sSw, dSw := g.ToRof(src), g.ToRof(dst)
	for trial := 0; trial < 50; trial++ {
		w := v.ChooseWaypoint(src, dst, rng)
		if w < 0 {
			t.Fatalf("fraction=1.0 returned direct path")
		}
		if w == sSw || w == dSw {
			t.Fatalf("waypoint %d is an endpoint ToR", w)
		}
		path := walk(t, g, v, PacketMeta{Flow: FlowID(trial), Src: src, Dst: dst, Waypoint: w}, 10)
		if len(path) != 3 {
			t.Errorf("VLB path %v has %d switches, want 3 (two-hop)", path, len(path))
		}
		if path[1] != w {
			t.Errorf("VLB path %v does not transit waypoint %d", path, w)
		}
	}
}

func TestVLBDirectFraction(t *testing.T) {
	g := mesh(t, 6, 2)
	v, err := NewVLB(g, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	hosts := g.Hosts()
	for trial := 0; trial < 20; trial++ {
		if w := v.ChooseWaypoint(hosts[0], hosts[len(hosts)-1], rng); w != -1 {
			t.Fatalf("fraction=0 chose waypoint %d", w)
		}
	}
}

func TestVLBFractionSplit(t *testing.T) {
	g := mesh(t, 8, 1)
	v, err := NewVLB(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	hosts := g.Hosts()
	indirect := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if v.ChooseWaypoint(hosts[0], hosts[7], rng) >= 0 {
			indirect++
		}
	}
	frac := float64(indirect) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("indirect fraction = %.3f, want ~0.5", frac)
	}
}

func TestVLBInvalidFraction(t *testing.T) {
	g := mesh(t, 3, 1)
	if _, err := NewVLB(g, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := NewVLB(g, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestVLBTinyMeshFallsBackToDirect(t *testing.T) {
	// Two switches: no third switch to detour through.
	g := mesh(t, 2, 1)
	v, err := NewVLB(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	hosts := g.Hosts()
	if w := v.ChooseWaypoint(hosts[0], hosts[1], rng); w != -1 {
		t.Errorf("2-switch mesh chose waypoint %d, want direct", w)
	}
}

func TestSpanningTree(t *testing.T) {
	// 2-tier tree rooted at the single aggregation switch: all
	// cross-rack traffic goes via the root.
	g, err := topology.NewTwoTierTree(topology.TreeConfig{ToRs: 3, Roots: 1, HostsPerToR: 2})
	if err != nil {
		t.Fatal(err)
	}
	root := g.SwitchesInTier(topology.TierAgg)[0]
	st, err := NewSpanningTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	src, dst := hosts[0], hosts[5] // racks 0 and 2
	path := walk(t, g, st, PacketMeta{Flow: 9, Src: src, Dst: dst, Waypoint: -1}, 10)
	if len(path) != 3 {
		t.Fatalf("stp path %v, want tor-root-tor", path)
	}
	if path[1] != root {
		t.Errorf("stp path %v does not transit root %d", path, root)
	}
	// Same-rack stays local.
	local := walk(t, g, st, PacketMeta{Flow: 9, Src: hosts[0], Dst: hosts[1], Waypoint: -1}, 4)
	if len(local) != 1 {
		t.Errorf("stp same-rack path %v, want 1 switch", local)
	}
}

func TestSpanningTreeOnMeshUsesFewLinks(t *testing.T) {
	// On a full mesh, a spanning tree uses only M-1 of the M(M-1)/2
	// switch links — the paper's argument for why plain Ethernet wastes
	// the mesh (§3.4).
	g := mesh(t, 6, 1)
	st, err := NewSpanningTree(g, g.Switches()[0])
	if err != nil {
		t.Fatal(err)
	}
	switchLinks := 0
	for id := range st.TreeLinks() {
		l := g.Link(id)
		if g.Node(l.A).Kind == topology.Switch && g.Node(l.B).Kind == topology.Switch {
			switchLinks++
		}
	}
	if switchLinks != 5 {
		t.Errorf("spanning tree uses %d switch links, want 5", switchLinks)
	}
}

func TestSpanningTreeErrors(t *testing.T) {
	g := mesh(t, 3, 1)
	if _, err := NewSpanningTree(g, g.Hosts()[0]); err == nil {
		t.Error("host root accepted")
	}
}

func TestKShortestPathsRing(t *testing.T) {
	// Ring of 6: between opposite nodes there are exactly two 3-hop
	// edge-disjoint paths.
	g := topology.New("ring6")
	var sw [6]topology.NodeID
	for i := range sw {
		sw[i] = g.AddSwitch("s", topology.TierToR, i)
	}
	for i := range sw {
		g.Connect(sw[i], sw[(i+1)%6], sim.Gbps, 0)
	}
	paths := KShortestPaths(g, sw[0], sw[3], 4)
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want >=2", len(paths))
	}
	if len(paths[0]) != 4 || len(paths[1]) != 4 {
		t.Errorf("first two paths lengths %d,%d; want 4,4 (3 hops)", len(paths[0]), len(paths[1]))
	}
	for _, p := range paths {
		if p[0] != sw[0] || p[len(p)-1] != sw[3] {
			t.Errorf("path %v has wrong endpoints", p)
		}
	}
}

func TestKShortestPathsMesh(t *testing.T) {
	g := mesh(t, 5, 0)
	sw := g.Switches()
	paths := KShortestPaths(g, sw[0], sw[1], 10)
	if len(paths) < 4 {
		t.Fatalf("got %d paths, want >=4 (1 direct + 3 two-hop)", len(paths))
	}
	if len(paths[0]) != 2 {
		t.Errorf("shortest path %v, want direct", paths[0])
	}
	// Paths are sorted by length and loop-free.
	for i := 1; i < len(paths); i++ {
		if len(paths[i]) < len(paths[i-1]) {
			t.Errorf("paths out of order at %d", i)
		}
		seen := map[topology.NodeID]bool{}
		for _, n := range paths[i] {
			if seen[n] {
				t.Errorf("path %v revisits node %d", paths[i], n)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsEdgeCases(t *testing.T) {
	g := mesh(t, 3, 0)
	sw := g.Switches()
	if p := KShortestPaths(g, sw[0], sw[1], 0); p != nil {
		t.Error("k=0 returned paths")
	}
	// Disconnected: two isolated switches.
	g2 := topology.New("disc")
	a := g2.AddSwitch("a", topology.TierToR, 0)
	b := g2.AddSwitch("b", topology.TierToR, 1)
	if p := KShortestPaths(g2, a, b, 3); p != nil {
		t.Error("disconnected pair returned paths")
	}
}

// TestECMPValidNextHopProperty checks on random meshes that every
// ECMP hop moves strictly closer to the destination.
func TestECMPValidNextHopProperty(t *testing.T) {
	f := func(mm, ff uint16) bool {
		m := int(mm%10) + 2
		g, err := topology.NewFullMesh(topology.MeshConfig{Switches: m, HostsPerSwitch: 2})
		if err != nil {
			return false
		}
		r := NewECMP(g)
		hosts := g.Hosts()
		src := hosts[int(ff)%len(hosts)]
		dst := hosts[int(ff/7)%len(hosts)]
		if src == dst {
			return true
		}
		dist := g.BFSDist(dst, nil)
		n := g.ToRof(src)
		for n != dst {
			port, err := r.NextPort(n, PacketMeta{Flow: FlowID(ff), Src: src, Dst: dst, Waypoint: -1})
			if err != nil {
				return false
			}
			if dist[port.Peer] != dist[n]-1 {
				return false
			}
			n = port.Peer
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRouterNames(t *testing.T) {
	g := mesh(t, 3, 1)
	if NewECMP(g).Name() != "ecmp" {
		t.Error("ECMP name wrong")
	}
	v, _ := NewVLB(g, 0.25)
	if v.Name() != "vlb(0.25)" {
		t.Errorf("VLB name = %q", v.Name())
	}
	st, _ := NewSpanningTree(g, g.Switches()[0])
	if st.Name() != "stp(root=tor0)" {
		t.Errorf("STP name = %q", st.Name())
	}
}
