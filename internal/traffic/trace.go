package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
)

// TraceEvent is one packet of a recorded workload: an injection time
// and endpoints given as host indices into Graph.Hosts().
type TraceEvent struct {
	// At is the injection time.
	At sim.Time
	// Src and Dst index into the topology's host list.
	Src, Dst int
	// Size is the packet size in bytes.
	Size int
	// Flow groups packets for ECMP; 0 lets the replayer derive one from
	// the (src, dst) pair.
	Flow routing.FlowID
	// Tag groups deliveries in the harness (default 1).
	Tag int
}

// ParseTrace reads a CSV trace: `at_us,src,dst,size[,flow[,tag]]` with
// an optional header row. Events need not be sorted; the replayer
// sorts them.
func ParseTrace(r io.Reader) ([]TraceEvent, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var events []TraceEvent
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %w", line+1, err)
		}
		line++
		if line == 1 && len(rec) > 0 {
			if _, err := strconv.ParseFloat(rec[0], 64); err != nil {
				continue // header row
			}
		}
		if len(rec) < 4 {
			return nil, fmt.Errorf("traffic: trace line %d: need at least 4 fields, got %d", line, len(rec))
		}
		atUs, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: bad time %q", line, rec[0])
		}
		ints := make([]int, 0, 5)
		for _, f := range rec[1:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("traffic: trace line %d: bad field %q", line, f)
			}
			ints = append(ints, v)
		}
		ev := TraceEvent{
			At:   sim.Time(atUs * float64(sim.Microsecond)),
			Src:  ints[0],
			Dst:  ints[1],
			Size: ints[2],
			Tag:  1,
		}
		if len(ints) > 3 {
			ev.Flow = routing.FlowID(ints[3])
		}
		if len(ints) > 4 {
			ev.Tag = ints[4]
		}
		events = append(events, ev)
	}
	return events, nil
}

// WriteTrace writes events as CSV with a header, the inverse of
// ParseTrace — for synthesizing shareable workloads from the built-in
// generators.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_us", "src", "dst", "size", "flow", "tag"}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := []string{
			strconv.FormatFloat(ev.At.Micros(), 'f', 3, 64),
			strconv.Itoa(ev.Src),
			strconv.Itoa(ev.Dst),
			strconv.Itoa(ev.Size),
			strconv.FormatUint(uint64(ev.Flow), 10),
			strconv.Itoa(ev.Tag),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Replay schedules every trace event onto the network. Events are
// sorted by time; host indices are resolved against the network's
// topology. It returns the number of packets scheduled.
func Replay(net *netsim.Network, events []TraceEvent) (int, error) {
	hosts := net.Graph().Hosts()
	sorted := make([]TraceEvent, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	now := net.Scheduler().Now()
	for i, ev := range sorted {
		if ev.Src < 0 || ev.Src >= len(hosts) || ev.Dst < 0 || ev.Dst >= len(hosts) {
			return 0, fmt.Errorf("traffic: trace event %d: host index out of range (%d hosts)", i, len(hosts))
		}
		if ev.Size <= 0 {
			return 0, fmt.Errorf("traffic: trace event %d: size %d", i, ev.Size)
		}
		if ev.At < 0 {
			return 0, fmt.Errorf("traffic: trace event %d: negative time", i)
		}
		p := netsim.Packet{
			Flow: ev.Flow,
			Src:  hosts[ev.Src], Dst: hosts[ev.Dst],
			Size: ev.Size, Tag: ev.Tag, Waypoint: netsim.NoWaypoint,
		}
		if p.Flow == 0 {
			p.Flow = routing.FlowID(ev.Src)<<20 | routing.FlowID(ev.Dst)
		}
		at := now + ev.At
		// Schedule on the source host's shard so the send runs on the
		// goroutine that owns the host (the single engine in legacy mode).
		net.SchedulerFor(p.Src).Schedule(at, func() { net.Send(p) })
	}
	return len(sorted), nil
}

// SynthesizeTrace renders a set of Poisson streams into a trace — the
// bridge from the built-in generators to a shareable file. ratePPS and
// size apply to every (src, dst) pair; duration bounds the trace.
func SynthesizeTrace(pairs [][2]int, ratePPS float64, size int, duration sim.Time, rng interface{ ExpFloat64() float64 }) ([]TraceEvent, error) {
	if ratePPS <= 0 || size <= 0 || duration <= 0 {
		return nil, fmt.Errorf("traffic: invalid synthesis parameters")
	}
	meanGap := float64(sim.Second) / ratePPS
	var events []TraceEvent
	for i, pr := range pairs {
		at := sim.Time(0)
		for {
			at += sim.Time(rng.ExpFloat64() * meanGap)
			if at >= duration {
				break
			}
			events = append(events, TraceEvent{
				At: at, Src: pr[0], Dst: pr[1], Size: size,
				Flow: routing.FlowID(i + 1), Tag: 1,
			})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	return events, nil
}
