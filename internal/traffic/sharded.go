package traffic

// Sharded-execution counterparts of the harness and the reply-sending
// workloads. On a sharded netsim.Network, deliveries fire concurrently
// on K shard goroutines, so the single-map Harness cannot take them
// directly; and the legacy ScatterGather numbers its reply flows with
// a shared counter in delivery order, which is neither goroutine-safe
// nor shard-count-independent. The sharded variants fix both: one
// sub-harness per shard (merged on read), and reply identities derived
// from the request packet's ID — a pure function of the workload, the
// same for every shard count.

import (
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// ShardedHarness multiplexes per-shard delivery streams: wire Deliver
// into netsim.Config.OnDeliverSharded. Each shard's deliveries land in
// that shard's private sub-harness, so handlers run on the delivering
// shard's goroutine with no sharing; Latency merges the per-shard
// statistics on read. Handlers registered with Handle are installed on
// every sub-harness and must therefore be safe to run concurrently
// from different shards for different deliveries — handlers that only
// touch the delivery and call Network.Send from the destination host
// (the reply pattern) are.
type ShardedHarness struct {
	subs []*Harness
}

// NewShardedHarness returns a harness with one sub-harness per shard.
func NewShardedHarness(shards int) *ShardedHarness {
	h := &ShardedHarness{subs: make([]*Harness, shards)}
	for i := range h.subs {
		h.subs[i] = NewHarness()
	}
	return h
}

// Deliver records d in the delivering shard's sub-harness. Pass this
// to netsim.Config.OnDeliverSharded.
func (h *ShardedHarness) Deliver(shard int, d netsim.Delivery) {
	h.subs[shard].Deliver(d)
}

// Handle registers fn on every sub-harness (see the concurrency note
// on ShardedHarness).
func (h *ShardedHarness) Handle(tag int, fn func(netsim.Delivery)) {
	for _, s := range h.subs {
		s.Handle(tag, fn)
	}
}

// Shard returns one shard's sub-harness.
func (h *ShardedHarness) Shard(i int) *Harness { return h.subs[i] }

// Latency returns the tag's latency statistics merged across shards
// (a snapshot, unlike Harness.Latency's live Stats). Integer moments
// (count, min, max) are exact; mean and variance combine by the
// parallel Welford rule and may differ from a single-shard run in the
// last floating-point digits.
func (h *ShardedHarness) Latency(tag int) *metrics.Stats {
	out := &metrics.Stats{}
	for _, s := range h.subs {
		out.Merge(s.Latency(tag))
	}
	return out
}

// ShardedScatterGather is ScatterGather for sharded networks: the
// reply flow ID and VLB waypoint derive from the request packet's ID
// instead of a shared delivery-order counter, so replies are identical
// for every shard count and the handler is safe on concurrent shard
// goroutines. The handler is registered on h for reqTag.
func ShardedScatterGather(net *netsim.Network, h *ShardedHarness, sender topology.NodeID,
	receivers []topology.NodeID, perDestPPS float64, reqTag, replyTag int,
	vlb *routing.VLB, rng *rand.Rand) *Task {
	t := Scatter(net, sender, receivers, perDestPPS, reqTag, vlb, rng)
	h.Handle(reqTag, func(d netsim.Delivery) {
		reply := netsim.Packet{
			Flow: flowBase(replyTag) + routing.FlowID(d.Packet.ID%1024),
			Src:  d.Packet.Dst, Dst: d.Packet.Src,
			Size: d.Packet.Size, Tag: replyTag, Waypoint: netsim.NoWaypoint,
		}
		if vlb != nil {
			replyRand := rand.New(rand.NewSource(int64(d.Packet.ID)))
			reply.Waypoint = vlb.ChooseWaypoint(reply.Src, reply.Dst, replyRand)
		}
		net.Send(reply)
	})
	return t
}
