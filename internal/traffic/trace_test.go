package traffic

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{At: 10 * sim.Microsecond, Src: 0, Dst: 3, Size: 400, Flow: 7, Tag: 2},
		{At: 5 * sim.Microsecond, Src: 1, Dst: 2, Size: 1500, Flow: 8, Tag: 1},
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("parsed %d events, want 2", len(back))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestParseTraceHeaderAndErrors(t *testing.T) {
	good := "at_us,src,dst,size\n1.5,0,1,400\n"
	events, err := ParseTrace(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].At != 1500*sim.Nanosecond || events[0].Tag != 1 {
		t.Errorf("parsed %+v", events)
	}
	for name, bad := range map[string]string{
		"short row": "1.0,0,1\n",
		"bad time":  "abc,0,1,400\n2.0,x,1,400\n",
		"bad field": "1.0,zero,1,400\n",
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSynthesizeAndReplay(t *testing.T) {
	net, h, g := meshNet(t, 4, 2)
	rng := rand.New(rand.NewSource(3))
	events, err := SynthesizeTrace([][2]int{{0, 5}, {2, 7}}, 1e5, 400, 5*sim.Millisecond, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 500 {
		t.Fatalf("synthesized %d events, want ~1000", len(events))
	}
	// Events sorted by time.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events not sorted")
		}
	}
	n, err := Replay(net, events)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Errorf("scheduled %d, want %d", n, len(events))
	}
	net.Engine().Run()
	if got := h.Latency(1).N(); got != int64(len(events)) {
		t.Errorf("delivered %d, want %d", got, len(events))
	}
	_ = g
}

func TestReplayValidation(t *testing.T) {
	net, _, _ := meshNet(t, 3, 1)
	cases := map[string][]TraceEvent{
		"bad src":  {{At: 0, Src: 99, Dst: 0, Size: 400}},
		"bad dst":  {{At: 0, Src: 0, Dst: -1, Size: 400}},
		"bad size": {{At: 0, Src: 0, Dst: 1, Size: 0}},
		"bad time": {{At: -5, Src: 0, Dst: 1, Size: 400}},
	}
	for name, evs := range cases {
		if _, err := Replay(net, evs); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SynthesizeTrace(nil, 0, 400, sim.Second, rng); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := SynthesizeTrace(nil, 100, 0, sim.Second, rng); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := SynthesizeTrace(nil, 100, 400, 0, rng); err == nil {
		t.Error("zero duration accepted")
	}
}
