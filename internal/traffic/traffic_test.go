package traffic

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// meshNet builds a small Quartz-style mesh with a harness attached.
func meshNet(t testing.TB, m, hostsPer int) (*netsim.Network, *Harness, *topology.Graph) {
	t.Helper()
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: m, HostsPerSwitch: hostsPer})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:     g,
		Router:    routing.NewECMP(g),
		OnDeliver: h.Deliver,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, h, g
}

func TestPoissonStreamRate(t *testing.T) {
	net, h, g := meshNet(t, 4, 2)
	hosts := g.Hosts()
	s := &Stream{
		Net: net, Src: hosts[0], Dst: hosts[7],
		Flow: 1, RatePPS: 1e6, Tag: 3,
		Rand: rand.New(rand.NewSource(10)),
	}
	if err := s.Start(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	// Expect ~10,000 packets in 10ms at 1Mpps.
	n := h.Latency(3).N()
	if n < 9000 || n > 11000 {
		t.Errorf("delivered %d packets, want ~10000", n)
	}
	// Defaults applied.
	if s.Size != PacketSize {
		t.Errorf("size defaulted to %d, want %d", s.Size, PacketSize)
	}
}

func TestStreamErrors(t *testing.T) {
	net, _, g := meshNet(t, 3, 1)
	hosts := g.Hosts()
	s := &Stream{Net: net, Src: hosts[0], Dst: hosts[1], RatePPS: 100}
	if err := s.Start(sim.Second); err == nil {
		t.Error("nil Rand accepted")
	}
	s2 := &Stream{Net: net, Src: hosts[0], Dst: hosts[1], Rand: rand.New(rand.NewSource(1))}
	if err := s2.Start(sim.Second); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestScatterTask(t *testing.T) {
	net, h, g := meshNet(t, 4, 4)
	hosts := g.Hosts()
	task := Scatter(net, hosts[0], hosts[4:10], 1e5, 1, nil, rand.New(rand.NewSource(11)))
	if err := task.Start(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	// 6 receivers x 1e5 pps x 5ms = ~3000 packets.
	n := h.Latency(1).N()
	if n < 2400 || n > 3600 {
		t.Errorf("scatter delivered %d, want ~3000", n)
	}
	// Mesh latency stays in single-digit microseconds at this load.
	if mean := h.Latency(1).Mean(); mean > 5 {
		t.Errorf("scatter mean latency %v us, want < 5us on an idle mesh", mean)
	}
}

func TestGatherTask(t *testing.T) {
	net, h, g := meshNet(t, 4, 4)
	hosts := g.Hosts()
	task := Gather(net, hosts[4:10], hosts[0], 1e5, 2, nil, rand.New(rand.NewSource(12)))
	if err := task.Start(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	n := h.Latency(2).N()
	if n < 2400 || n > 3600 {
		t.Errorf("gather delivered %d, want ~3000", n)
	}
}

func TestScatterGatherRepliesFlow(t *testing.T) {
	net, h, g := meshNet(t, 4, 4)
	hosts := g.Hosts()
	task := ScatterGather(net, h, hosts[0], hosts[4:8], 1e5, 10, 11, nil, rand.New(rand.NewSource(13)))
	if err := task.Start(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	req, rep := h.Latency(10).N(), h.Latency(11).N()
	if req == 0 {
		t.Fatal("no requests delivered")
	}
	if rep != req {
		t.Errorf("replies %d != requests %d", rep, req)
	}
}

func TestRPCClosedLoop(t *testing.T) {
	net, h, g := meshNet(t, 4, 2)
	hosts := g.Hosts()
	r := &RPC{
		Net: net, Harness: h,
		Client: hosts[0], Server: hosts[5],
		Count: 100, ReqTag: 20, ReplyTag: 21,
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	if r.RTT.N() != 100 {
		t.Fatalf("completed %d RPCs, want 100", r.RTT.N())
	}
	// RTT should be roughly twice the one-way latency and tightly
	// distributed on an idle network.
	if r.RTT.Mean() <= 0 || r.RTT.Mean() > 10 {
		t.Errorf("mean RTT = %v us, want ~4us", r.RTT.Mean())
	}
	if r.RTT.StdDev() > 0.01 {
		t.Errorf("idle-network RTT jitter %v us, want ~0", r.RTT.StdDev())
	}
	bad := &RPC{Net: net, Harness: h, Client: hosts[0], Server: hosts[1], Count: 0, ReqTag: 22, ReplyTag: 23}
	if err := bad.Start(); err == nil {
		t.Error("zero count accepted")
	}
}

func TestBurstyAverageBandwidth(t *testing.T) {
	net, h, g := meshNet(t, 4, 2)
	hosts := g.Hosts()
	b := &Bursty{
		Net: net, Src: hosts[0], Dst: hosts[6], Flow: 9,
		Bandwidth: 200 * sim.Mbps, Tag: 30,
		Rand: rand.New(rand.NewSource(14)),
	}
	const dur = 100 * sim.Millisecond
	if err := b.Start(dur); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	bytes := float64(h.Latency(30).N()) * 1500
	gotRate := bytes * 8 / dur.Seconds()
	if gotRate < 1.4e8 || gotRate > 2.6e8 {
		t.Errorf("bursty achieved %v bps, want ~2e8", gotRate)
	}
	if b.BurstLen != 20 || b.Size != 1500 {
		t.Errorf("defaults: burst=%d size=%d, want 20/1500", b.BurstLen, b.Size)
	}
	bad := &Bursty{Net: net, Src: hosts[0], Dst: hosts[1], Rand: b.Rand}
	if err := bad.Start(dur); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad2 := &Bursty{Net: net, Src: hosts[0], Dst: hosts[1], Bandwidth: sim.Gbps}
	if err := bad2.Start(dur); err == nil {
		t.Error("nil rand accepted")
	}
}

func TestRandomPermutation(t *testing.T) {
	_, _, g := meshNet(t, 4, 4)
	hosts := g.Hosts()
	rng := rand.New(rand.NewSource(15))
	pairs := RandomPermutation(hosts, rng)
	if len(pairs) != len(hosts) {
		t.Fatalf("pairs = %d, want %d", len(pairs), len(hosts))
	}
	sends := map[topology.NodeID]int{}
	recvs := map[topology.NodeID]int{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("self-pair %v", p)
		}
		sends[p[0]]++
		recvs[p[1]]++
	}
	for _, h := range hosts {
		if sends[h] != 1 || recvs[h] != 1 {
			t.Errorf("host %d sends %d recvs %d, want 1/1", h, sends[h], recvs[h])
		}
	}
}

func TestIncast(t *testing.T) {
	_, _, g := meshNet(t, 4, 4)
	hosts := g.Hosts()
	rng := rand.New(rand.NewSource(16))
	pairs := Incast(hosts, 10, rng)
	if len(pairs) != len(hosts)*10 {
		t.Fatalf("pairs = %d, want %d", len(pairs), len(hosts)*10)
	}
	recvs := map[topology.NodeID]int{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("self-pair %v", p)
		}
		recvs[p[1]]++
	}
	for _, h := range hosts {
		if recvs[h] != 10 {
			t.Errorf("host %d receives %d, want 10", h, recvs[h])
		}
	}
}

func TestRackShuffle(t *testing.T) {
	_, _, g := meshNet(t, 6, 4)
	rng := rand.New(rand.NewSource(17))
	pairs := RackShuffle(g, 3, rng)
	if len(pairs) != len(g.Hosts()) {
		t.Fatalf("pairs = %d, want one per host (%d)", len(pairs), len(g.Hosts()))
	}
	for _, p := range pairs {
		if g.Node(p[0]).Rack == g.Node(p[1]).Rack {
			t.Errorf("pair %v stays in rack %d", p, g.Node(p[0]).Rack)
		}
	}
	// Degenerate single-rack graph.
	g1, err := topology.NewFullMesh(topology.MeshConfig{Switches: 1, HostsPerSwitch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := RackShuffle(g1, 2, rng); len(got) != 0 {
		t.Errorf("single-rack shuffle produced %d pairs", len(got))
	}
}

func TestPathological(t *testing.T) {
	net, h, g := meshNet(t, 4, 4)
	srcs := g.HostsInRack(0)
	dsts := g.HostsInRack(1)
	task, err := Pathological(net, srcs, dsts, 100*sim.Mbps, 40, nil, rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	// 100Mbps of 400B packets for 10ms = ~312 packets.
	n := h.Latency(40).N()
	if n < 200 || n > 450 {
		t.Errorf("pathological delivered %d, want ~312", n)
	}
	if _, err := Pathological(net, srcs, dsts[:1], sim.Gbps, 41, nil, rand.New(rand.NewSource(19))); err == nil {
		t.Error("mismatched src/dst accepted")
	}
}

func TestVLBStreamSpreadsPackets(t *testing.T) {
	// With VLB fraction 1.0 on a 5-switch mesh, packets from one pair
	// transit all three possible waypoints.
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: 5, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	vlb, err := routing.NewVLB(g, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness()
	hopCount := map[int]int{}
	net, err := netsim.New(netsim.Config{
		Graph:  g,
		Router: vlb,
		OnDeliver: func(d netsim.Delivery) {
			h.Deliver(d)
			hopCount[d.Packet.Hops]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	s := &Stream{
		Net: net, Src: hosts[0], Dst: hosts[4],
		Flow: 7, RatePPS: 1e5, Tag: 50, VLB: vlb,
		Rand: rand.New(rand.NewSource(20)),
	}
	if err := s.Start(5 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	// All packets took two-hop paths: 3 forwarding elements + delivery.
	if len(hopCount) != 1 {
		t.Errorf("hop counts %v, want all equal (all indirect)", hopCount)
	}
	for hops := range hopCount {
		if hops != 4 {
			t.Errorf("hops = %d, want 4 (src ToR, waypoint, dst ToR, host)", hops)
		}
	}
	if h.Latency(50).N() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestHarnessUnknownTag(t *testing.T) {
	h := NewHarness()
	if h.Latency(99).N() != 0 {
		t.Error("unknown tag should have empty stats")
	}
}

func TestPoissonLatencyReasonable(t *testing.T) {
	// Sanity: mean latency on an idle mesh ~ 2 switch hops ~ 2.6us with
	// NIC overheads (Table 9's 1.0us is switch latency only).
	net, h, g := meshNet(t, 8, 2)
	hosts := g.Hosts()
	s := &Stream{
		Net: net, Src: hosts[0], Dst: hosts[15],
		Flow: 1, RatePPS: 1e4, Tag: 60,
		Rand: rand.New(rand.NewSource(21)),
	}
	if err := s.Start(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	net.Engine().Run()
	mean := h.Latency(60).Mean()
	// 2 x 380ns switching + 320ns ser + ~1us NICs + prop: ~2.5us.
	if math.Abs(mean-2.5) > 1.0 {
		t.Errorf("idle mesh mean latency = %v us, want ~2.5us", mean)
	}
}
