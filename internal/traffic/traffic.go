// Package traffic generates the workloads of the Quartz paper's
// evaluation: Poisson packet streams, scatter / gather / scatter-gather
// tasks (§7.1), bursty cross-traffic and closed-loop RPCs (§6.1,
// Figure 14), the pathological switch-pair pattern (§7.2, Figure 20),
// and the flow-level pair patterns of Figure 10 (random permutation,
// incast, rack-level shuffle).
package traffic

import (
	"fmt"
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// PacketSize is the paper's simulation packet size (§7): 400 bytes.
const PacketSize = 400

// Harness multiplexes delivery events to per-tag statistics and
// handlers. Wire its Deliver method into netsim.Config.OnDeliver.
type Harness struct {
	lat      map[int]*metrics.Stats
	handlers map[int]func(netsim.Delivery)
}

// NewHarness returns an empty harness.
func NewHarness() *Harness {
	return &Harness{
		lat:      make(map[int]*metrics.Stats),
		handlers: make(map[int]func(netsim.Delivery)),
	}
}

// Deliver records the delivery latency under the packet's tag and runs
// any registered handler. Pass this to netsim.Config.OnDeliver.
func (h *Harness) Deliver(d netsim.Delivery) {
	s, ok := h.lat[d.Packet.Tag]
	if !ok {
		s = &metrics.Stats{}
		h.lat[d.Packet.Tag] = s
	}
	s.Add(d.Latency.Micros())
	if fn, ok := h.handlers[d.Packet.Tag]; ok {
		fn(d)
	}
}

// Handle registers fn to run on every delivery with the given tag.
func (h *Harness) Handle(tag int, fn func(netsim.Delivery)) {
	h.handlers[tag] = fn
}

// Latency returns the latency statistics (in microseconds) for a tag.
// The returned Stats is live; it is nil-safe to query a tag that never
// delivered (an empty Stats is returned).
func (h *Harness) Latency(tag int) *metrics.Stats {
	if s, ok := h.lat[tag]; ok {
		return s
	}
	return &metrics.Stats{}
}

// Stream is an open-loop Poisson packet stream between two hosts.
type Stream struct {
	Net  *netsim.Network
	Src  topology.NodeID
	Dst  topology.NodeID
	Flow routing.FlowID
	// RatePPS is the mean packet rate.
	RatePPS float64
	// Size is the packet size in bytes (PacketSize when zero).
	Size int
	Tag  int
	// VLB, when non-nil, assigns each packet a waypoint (per-packet
	// Valiant spreading, §3.4).
	VLB *routing.VLB
	// Rand drives arrivals and VLB choices; required.
	Rand *rand.Rand
}

// Start schedules the stream's Poisson arrivals from now until the
// given absolute time.
func (s *Stream) Start(until sim.Time) error {
	if s.Rand == nil {
		return fmt.Errorf("traffic: stream needs a Rand")
	}
	if s.RatePPS <= 0 {
		return fmt.Errorf("traffic: stream rate %v pps", s.RatePPS)
	}
	if s.Size == 0 {
		s.Size = PacketSize
	}
	meanGapPs := float64(sim.Second) / s.RatePPS
	// Ticks run on the source's shard scheduler, so on a sharded
	// network each stream injects from its own shard's goroutine.
	eng := s.Net.SchedulerFor(s.Src)
	var tick func()
	tick = func() {
		if eng.Now() >= until {
			return
		}
		p := netsim.Packet{
			Flow: s.Flow, Src: s.Src, Dst: s.Dst,
			Size: s.Size, Tag: s.Tag, Waypoint: netsim.NoWaypoint,
		}
		if s.VLB != nil {
			p.Waypoint = s.VLB.ChooseWaypoint(s.Src, s.Dst, s.Rand)
		}
		s.Net.Send(p)
		eng.After(sim.Time(s.Rand.ExpFloat64()*meanGapPs), tick)
	}
	eng.After(sim.Time(s.Rand.ExpFloat64()*meanGapPs), tick)
	return nil
}

// Task is a scatter, gather, or scatter-gather task instance.
type Task struct {
	streams []*Stream
}

// Add appends a stream to the task.
func (t *Task) Add(s *Stream) { t.streams = append(t.streams, s) }

// Streams returns the number of streams in the task.
func (t *Task) Streams() int { return len(t.streams) }

// SetSize overrides the packet size of every stream in the task.
// Must be called before Start.
func (t *Task) SetSize(bytes int) {
	for _, s := range t.streams {
		s.Size = bytes
	}
}

// Start begins all of the task's streams.
func (t *Task) Start(until sim.Time) error {
	for _, s := range t.streams {
		if err := s.Start(until); err != nil {
			return err
		}
	}
	return nil
}

// flowBase spreads flow IDs so concurrent tasks hash independently.
func flowBase(tag int) routing.FlowID { return routing.FlowID(tag) << 20 }

// Scatter builds a task in which sender concurrently streams packets to
// every receiver (§7.1) at perDestPPS packets per second each.
func Scatter(net *netsim.Network, sender topology.NodeID, receivers []topology.NodeID,
	perDestPPS float64, tag int, vlb *routing.VLB, rng *rand.Rand) *Task {
	t := &Task{}
	for i, r := range receivers {
		t.streams = append(t.streams, &Stream{
			Net: net, Src: sender, Dst: r,
			Flow: flowBase(tag) + routing.FlowID(i), RatePPS: perDestPPS,
			Tag: tag, VLB: vlb,
			Rand: rand.New(rand.NewSource(rng.Int63())),
		})
	}
	return t
}

// Gather builds a task in which every sender concurrently streams
// packets to one receiver (§7.1).
func Gather(net *netsim.Network, senders []topology.NodeID, receiver topology.NodeID,
	perSrcPPS float64, tag int, vlb *routing.VLB, rng *rand.Rand) *Task {
	t := &Task{}
	for i, s := range senders {
		t.streams = append(t.streams, &Stream{
			Net: net, Src: s, Dst: receiver,
			Flow: flowBase(tag) + routing.FlowID(i), RatePPS: perSrcPPS,
			Tag: tag, VLB: vlb,
			Rand: rand.New(rand.NewSource(rng.Int63())),
		})
	}
	return t
}

// ScatterGather builds a scatter task whose receivers send a reply
// packet back for every request received (§7.1). Requests are tagged
// reqTag, replies replyTag; the round-trip mean is the sum of the two
// tags' latency means. The handler is registered on h.
func ScatterGather(net *netsim.Network, h *Harness, sender topology.NodeID,
	receivers []topology.NodeID, perDestPPS float64, reqTag, replyTag int,
	vlb *routing.VLB, rng *rand.Rand) *Task {
	t := Scatter(net, sender, receivers, perDestPPS, reqTag, vlb, rng)
	replyRand := rand.New(rand.NewSource(rng.Int63()))
	var replyFlow routing.FlowID
	h.Handle(reqTag, func(d netsim.Delivery) {
		reply := netsim.Packet{
			Flow: flowBase(replyTag) + replyFlow%1024,
			Src:  d.Packet.Dst, Dst: d.Packet.Src,
			Size: d.Packet.Size, Tag: replyTag, Waypoint: netsim.NoWaypoint,
		}
		replyFlow++
		if vlb != nil {
			reply.Waypoint = vlb.ChooseWaypoint(reply.Src, reply.Dst, replyRand)
		}
		net.Send(reply)
	})
	return t
}

// RPC runs a closed-loop request/response exchange: one request in
// flight at a time, reply sent immediately on request delivery, next
// request sent on reply delivery (the prototype's Thrift "Hello World"
// RPC, §6.1). Round-trip times land in rttMicros.
type RPC struct {
	Net       *netsim.Network
	Harness   *Harness
	Client    topology.NodeID
	Server    topology.NodeID
	ReqSize   int
	ReplySize int
	// Count is the number of RPCs to issue (the paper uses 10,000).
	Count int
	// ReqTag/ReplyTag must be unique in the harness.
	ReqTag, ReplyTag int
	// Priority is the queueing class of the RPC's own packets (0 is
	// served first); BackgroundPriority is unused by RPC itself but
	// mirrors the class its competition runs at, for experiment code
	// symmetry.
	Priority, BackgroundPriority uint8

	// RTT accumulates round-trip times in microseconds.
	RTT metrics.Stats

	sent    int
	started sim.Time
}

// Start registers handlers and issues the first request.
func (r *RPC) Start() error {
	if r.Count <= 0 {
		return fmt.Errorf("traffic: rpc count %d", r.Count)
	}
	if r.ReqSize == 0 {
		r.ReqSize = 128
	}
	if r.ReplySize == 0 {
		r.ReplySize = 128
	}
	r.Harness.Handle(r.ReqTag, func(d netsim.Delivery) {
		r.Net.Send(netsim.Packet{
			Flow: flowBase(r.ReplyTag), Src: r.Server, Dst: r.Client,
			Size: r.ReplySize, Tag: r.ReplyTag, Waypoint: netsim.NoWaypoint,
			Priority: r.Priority,
		})
	})
	r.Harness.Handle(r.ReplyTag, func(d netsim.Delivery) {
		r.RTT.Add((d.At - r.started).Micros())
		if r.sent < r.Count {
			r.issue()
		}
	})
	r.issue()
	return nil
}

func (r *RPC) issue() {
	r.sent++
	r.started = r.Net.SchedulerFor(r.Client).Now()
	r.Net.Send(netsim.Packet{
		Flow: flowBase(r.ReqTag), Src: r.Client, Dst: r.Server,
		Size: r.ReqSize, Tag: r.ReqTag, Waypoint: netsim.NoWaypoint,
		Priority: r.Priority,
	})
}

// Bursty generates the prototype experiment's cross-traffic (§6.1):
// bursts of BurstLen packets back-to-back, separated by idle intervals
// sized to average the target bandwidth.
type Bursty struct {
	Net      *netsim.Network
	Src, Dst topology.NodeID
	Flow     routing.FlowID
	// Bandwidth is the target average rate.
	Bandwidth sim.Rate
	// Size is the packet size (1500 when zero — bulk traffic).
	Size int
	// BurstLen is packets per burst (20 in the paper).
	BurstLen int
	Tag      int
	// Priority is the queueing class of the burst packets.
	Priority uint8
	Rand     *rand.Rand
}

// Start schedules bursts until the given absolute time.
func (b *Bursty) Start(until sim.Time) error {
	if b.Bandwidth <= 0 {
		return fmt.Errorf("traffic: bursty bandwidth %v", b.Bandwidth)
	}
	if b.Size == 0 {
		b.Size = 1500
	}
	if b.BurstLen == 0 {
		b.BurstLen = 20
	}
	if b.Rand == nil {
		return fmt.Errorf("traffic: bursty needs a Rand")
	}
	burstBits := float64(b.BurstLen) * float64(b.Size) * 8
	periodPs := burstBits / float64(b.Bandwidth) * float64(sim.Second)
	eng := b.Net.SchedulerFor(b.Src)
	var tick func()
	tick = func() {
		if eng.Now() >= until {
			return
		}
		for i := 0; i < b.BurstLen; i++ {
			b.Net.Send(netsim.Packet{
				Flow: b.Flow, Src: b.Src, Dst: b.Dst,
				Size: b.Size, Tag: b.Tag, Waypoint: netsim.NoWaypoint,
				Priority: b.Priority,
			})
		}
		// Randomize the phase a little so concurrent bursty sources do
		// not synchronize (the paper's sources are unsynchronized).
		jitter := 0.5 + b.Rand.Float64()
		eng.After(sim.Time(periodPs*jitter), tick)
	}
	eng.After(sim.Time(periodPs*b.Rand.Float64()), tick)
	return nil
}

// Pairs of hosts for the flow-level patterns of Figure 10.

// RandomPermutation pairs every host with a distinct random partner:
// each host sends to exactly one host and receives from exactly one.
func RandomPermutation(hosts []topology.NodeID, rng *rand.Rand) [][2]topology.NodeID {
	n := len(hosts)
	perm := rng.Perm(n)
	// Fix any fixed points by swapping with a neighbour.
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	out := make([][2]topology.NodeID, 0, n)
	for i, p := range perm {
		if i == p {
			continue // single-host corner case
		}
		out = append(out, [2]topology.NodeID{hosts[i], hosts[p]})
	}
	return out
}

// Incast gives every host fanIn senders at random locations (the
// MapReduce shuffle stage of §5.1). Senders are spread round-robin so
// each host sends approximately fanIn flows.
func Incast(hosts []topology.NodeID, fanIn int, rng *rand.Rand) [][2]topology.NodeID {
	var out [][2]topology.NodeID
	n := len(hosts)
	for _, dst := range hosts {
		for k := 0; k < fanIn; k++ {
			src := hosts[rng.Intn(n)]
			for src == dst {
				src = hosts[rng.Intn(n)]
			}
			out = append(out, [2]topology.NodeID{src, dst})
		}
	}
	return out
}

// RackShuffle sends from every host in each rack to hosts in a few
// other racks (VM-migration style load balancing, §5.1). The pattern
// is built from racksPerSource random rack rotations so that every
// host sends exactly one flow and receives exactly one flow — the
// congestion is purely from rack-level concentration, not receiver
// collisions.
func RackShuffle(g *topology.Graph, racksPerSource int, rng *rand.Rand) [][2]topology.NodeID {
	rackSet := map[int][]topology.NodeID{}
	var rackIDs []int
	for _, h := range g.Hosts() {
		r := g.Node(h).Rack
		if _, ok := rackSet[r]; !ok {
			rackIDs = append(rackIDs, r)
		}
		rackSet[r] = append(rackSet[r], h)
	}
	R := len(rackIDs)
	if R < 2 {
		return nil
	}
	if racksPerSource > R-1 {
		racksPerSource = R - 1
	}
	// Distinct non-zero rack rotations: rotation k maps rack i to rack
	// (i + shift[k]) mod R, a bijection, so host slot j of each rack
	// receives exactly one flow per rotation class.
	shifts := rng.Perm(R - 1)[:racksPerSource]
	var out [][2]topology.NodeID
	for ri, rack := range rackIDs {
		srcs := rackSet[rack]
		for j, src := range srcs {
			shift := shifts[j%racksPerSource] + 1
			target := rackIDs[(ri+shift)%R]
			dsts := rackSet[target]
			out = append(out, [2]topology.NodeID{src, dsts[j%len(dsts)]})
		}
	}
	return out
}

// Pathological builds the §7.2 stress pattern: count flows from hosts
// under one switch to hosts under another, at aggregate bandwidth
// total. Returns per-flow streams (open-loop Poisson of 400 B packets).
func Pathological(net *netsim.Network, srcs, dsts []topology.NodeID,
	total sim.Rate, tag int, vlb *routing.VLB, rng *rand.Rand) (*Task, error) {
	if len(srcs) == 0 || len(srcs) != len(dsts) {
		return nil, fmt.Errorf("traffic: pathological needs equal non-empty src/dst sets")
	}
	perFlow := float64(total) / float64(len(srcs))
	pps := perFlow / (PacketSize * 8)
	t := &Task{}
	for i := range srcs {
		t.streams = append(t.streams, &Stream{
			Net: net, Src: srcs[i], Dst: dsts[i],
			Flow: flowBase(tag) + routing.FlowID(i), RatePPS: pps,
			Tag: tag, VLB: vlb,
			Rand: rand.New(rand.NewSource(rng.Int63())),
		})
	}
	return t, nil
}
