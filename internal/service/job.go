package service

// Job lifecycle: one submission's identity, state machine, and
// observable snapshot. Jobs move queued → running → one of
// done/failed/cancelled; cache hits are born done. All mutable state
// is guarded by the job's mutex so HTTP handlers can snapshot a job
// while a worker drives it.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// State is a job's lifecycle position.
type State uint8

// Job lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

// String returns the lowercase state name used in the JSON API.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// MarshalJSON serializes the state as its lowercase name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the lowercase state name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for st := StateQueued; st <= StateCancelled; st++ {
		if st.String() == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("unknown job state %q", name)
}

// ParamSpec is the wire form of experiments.Params: lowercase JSON
// field names, zero values meaning "use the default".
type ParamSpec struct {
	Seed   int64 `json:"seed,omitempty"`
	Trials int   `json:"trials,omitempty"`
	Tasks  int   `json:"tasks,omitempty"`
	RPCs   int   `json:"rpcs,omitempty"`
	Shards int   `json:"shards,omitempty"`
}

// Params converts the wire form to runner parameters.
func (ps ParamSpec) Params() experiments.Params {
	return experiments.Params{Seed: ps.Seed, Trials: ps.Trials, Tasks: ps.Tasks, RPCs: ps.RPCs, Shards: ps.Shards}
}

// specOf converts runner parameters back to the wire form.
func specOf(p experiments.Params) ParamSpec {
	return ParamSpec{Seed: p.Seed, Trials: p.Trials, Tasks: p.Tasks, RPCs: p.RPCs, Shards: p.Shards}
}

// CellRange selects the contiguous sweep cells [Lo, Hi) of a cell-range
// sub-job.
type CellRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Request is one job submission. Exactly one of Experiment, Scenario,
// or ScenarioRef selects what to run.
type Request struct {
	// Experiment is a registry name (experiments.Find).
	Experiment string `json:"experiment,omitempty"`
	// Scenario is an inline declarative scenario document
	// (internal/scenario, JSON form). POSTing a raw scenario document —
	// anything with "schema": "quartz-scenario/v1" at the top level —
	// to /jobs is shorthand for wrapping it here.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// ScenarioRef names a scenario stored via PUT /scenarios/{name}.
	ScenarioRef string `json:"scenario_ref,omitempty"`
	// Params are the run parameters; zero fields take defaults.
	// Scenario submissions pin their parameters in the document and
	// reject a non-empty Params.
	Params ParamSpec `json:"params"`
	// TimeoutSecs caps the job's run time; 0 takes the service default.
	TimeoutSecs float64 `json:"timeout_secs,omitempty"`
	// NoCache forces execution even when a cached result exists, and
	// keeps the result out of the cache.
	NoCache bool `json:"no_cache,omitempty"`
	// Cells, when non-nil, restricts execution to sweep cells [Lo, Hi)
	// of a registry experiment that publishes a Sweep grid — the
	// sub-job form the cluster coordinator fans out to workers. The
	// result is a partial CellBlock (JSON in the result text), cached
	// under the experiments.CacheKeyRange sub-key so any worker's prior
	// block serves any later client. Only valid with Experiment.
	Cells *CellRange `json:"cells,omitempty"`
	// TraceID names the job's execution trace; it defaults to the job
	// ID. The HTTP layer fills it from the X-Quartz-Trace request
	// header, echoes it on responses, and serves the trace itself at
	// GET /jobs/{id}/trace.
	TraceID string `json:"trace_id,omitempty"`
}

// Job is one tracked submission.
type Job struct {
	id     string
	key    string
	name   string
	params experiments.Params // defaults applied, no hooks
	run    func(ctx context.Context, p experiments.Params) (experiments.Output, error)

	timeout time.Duration
	noCache bool
	traceID string
	// cells is non-nil for cell-range sub-jobs (Request.Cells).
	cells *CellRange
	// rec is the job's flight recorder: lifecycle spans plus whatever
	// the experiment records through Params.Trace, bounded so a
	// long-running job keeps its most recent windows. Set at creation
	// and never reassigned, so handlers may read it while a worker
	// records into it.
	rec *trace.Recorder

	mu          sync.Mutex
	state       State
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	progDone    int
	progTotal   int
	output      experiments.Output
	errMsg      string
	cacheHit    bool
	cancel      context.CancelFunc // non-nil while running
	// watchers are SSE subscribers: 1-buffered poke channels. A poke
	// means "re-snapshot me"; sends never block, and consecutive pokes
	// coalesce — the subscriber reads current state, not an event log.
	watchers map[chan struct{}]struct{}

	done chan struct{} // closed on entering a terminal state
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's canonical cache key.
func (j *Job) Key() string { return j.key }

// TraceID returns the job's trace identifier.
func (j *Job) TraceID() string { return j.traceID }

// Trace returns the job's span recorder. Safe to export at any point
// in the lifecycle; a still-running job yields the spans so far.
func (j *Job) Trace() *trace.Recorder { return j.rec }

// traceSpan records one wall-only lifecycle span on the job's trace.
func (j *Job) traceSpan(name string, start, end time.Time) {
	wall := j.rec.Since(start)
	if wall < 0 {
		// The recorder epoch lands a hair after the submission
		// timestamp; pin the queued span to the epoch.
		wall = 0
	}
	j.rec.Add(trace.Span{
		Name: name, Cat: "job", Track: 0,
		Wall: wall, WallDur: end.Sub(start).Nanoseconds(),
	})
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// CacheHit reports whether the job was served from the result cache.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Output returns the experiment output and error message once the job
// is terminal (zero values before then).
func (j *Job) Output() (experiments.Output, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output, j.errMsg
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx is cancelled.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// setProgress records a progress callback from the experiment.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	j.progDone, j.progTotal = done, total
	j.notifyLocked()
	j.mu.Unlock()
}

// watch subscribes to job updates: the returned channel is poked
// (coalescing, never blocking) on every progress tick and state
// transition. It arrives pre-poked so the subscriber emits the current
// state immediately. Pair with unwatch.
func (j *Job) watch() chan struct{} {
	ch := make(chan struct{}, 1)
	ch <- struct{}{}
	j.mu.Lock()
	if j.watchers == nil {
		j.watchers = make(map[chan struct{}]struct{})
	}
	j.watchers[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

// unwatch removes a watch subscription.
func (j *Job) unwatch(ch chan struct{}) {
	j.mu.Lock()
	delete(j.watchers, ch)
	j.mu.Unlock()
}

// notifyLocked pokes every watcher. Caller holds j.mu.
func (j *Job) notifyLocked() {
	for ch := range j.watchers {
		select {
		case ch <- struct{}{}:
		default: // already poked; the watcher will re-snapshot anyway
		}
	}
}

// finish moves the job to a terminal state exactly once; later calls
// are no-ops (a job cancelled while queued stays cancelled even after
// the worker drains it). Returns the state that was recorded.
func (j *Job) finish(state State, out experiments.Output, errMsg string, at time.Time) State {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return j.state
	}
	j.state = state
	j.output = out
	j.errMsg = errMsg
	j.finishedAt = at
	j.cancel = nil
	j.notifyLocked()
	close(j.done)
	return state
}

// ProgressView is the progress block of a job snapshot.
type ProgressView struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// View is a job frozen for serialization.
type View struct {
	ID         string    `json:"id"`
	Experiment string    `json:"experiment"`
	Key        string    `json:"key"`
	Params     ParamSpec `json:"params"`
	State      State     `json:"state"`
	CacheHit   bool      `json:"cache_hit,omitempty"`
	TraceID    string    `json:"trace_id,omitempty"`
	// Cells marks a cell-range sub-job (the cluster fan-out unit).
	Cells *CellRange `json:"cells,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// QueueSecs is time spent queued; RunSecs time spent executing.
	// Both keep counting while the job is in the respective phase.
	QueueSecs float64 `json:"queue_secs"`
	RunSecs   float64 `json:"run_secs,omitempty"`

	Progress *ProgressView `json:"progress,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Snapshot freezes the job at now for serialization.
func (j *Job) Snapshot(now time.Time) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:          j.id,
		Experiment:  j.name,
		Key:         j.key,
		Params:      specOf(j.params),
		State:       j.state,
		CacheHit:    j.cacheHit,
		TraceID:     j.traceID,
		SubmittedAt: j.submittedAt,
		Error:       j.errMsg,
	}
	if j.cells != nil {
		c := *j.cells
		v.Cells = &c
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
		v.QueueSecs = j.startedAt.Sub(j.submittedAt).Seconds()
	} else if j.state == StateQueued {
		v.QueueSecs = now.Sub(j.submittedAt).Seconds()
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
		if !j.startedAt.IsZero() {
			v.RunSecs = j.finishedAt.Sub(j.startedAt).Seconds()
		}
	} else if j.state == StateRunning {
		v.RunSecs = now.Sub(j.startedAt).Seconds()
	}
	if j.progTotal > 0 {
		v.Progress = &ProgressView{Done: j.progDone, Total: j.progTotal}
	}
	return v
}
