package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server, *stubRegistry) {
	t.Helper()
	sr := newStubRegistry()
	if cfg.Lookup == nil {
		cfg.Lookup = sr.lookup
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler(nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts, sr
}

func postJob(t *testing.T, ts *httptest.Server, req Request) (*http.Response, View) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, v
}

func getJSON(t *testing.T, url string, into interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPSubmitPollResult(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{QueueCapacity: 4, Workers: 1})

	resp, v := postJob(t, ts, Request{Experiment: "echo", Params: ParamSpec{Seed: 11}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if v.ID == "" || v.Experiment != "echo" {
		t.Fatalf("submit view = %+v", v)
	}

	// Poll until terminal.
	deadline := time.Now().Add(10 * time.Second)
	var cur View
	for {
		getJSON(t, ts.URL+"/jobs/"+v.ID, &cur)
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cur.State != StateDone {
		t.Fatalf("state = %v (%s)", cur.State, cur.Error)
	}

	var res resultBody
	getJSON(t, ts.URL+"/jobs/"+v.ID+"/result", &res)
	if res.Text != "seed=11" || res.State != StateDone {
		t.Fatalf("result = %+v", res)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	// Queue capacity N; with the single worker wedged, N fills succeed
	// and submission N+1 answers 429 with Retry-After.
	const capN = 2
	s, ts, sr := newTestServer(t, Config{QueueCapacity: capN, Workers: 1})
	defer close(sr.release)

	resp, _ := postJob(t, ts, Request{Experiment: "block", Params: ParamSpec{Seed: 1}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	select {
	case <-sr.started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the blocking job")
	}
	for i := 0; i < capN; i++ {
		resp, _ := postJob(t, ts, Request{Experiment: "block", Params: ParamSpec{Seed: int64(10 + i)}})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d = %d", i, resp.StatusCode)
		}
	}
	resp, _ = postJob(t, ts, Request{Experiment: "block", Params: ParamSpec{Seed: 99}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	_ = s
}

func TestHTTPCacheHit200(t *testing.T) {
	_, ts, sr := newTestServer(t, Config{QueueCapacity: 4, Workers: 1})

	req := Request{Experiment: "echo", Params: ParamSpec{Seed: 3}}
	_, v := postJob(t, ts, req)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur View
		getJSON(t, ts.URL+"/jobs/"+v.ID, &cur)
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, hit := postJob(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit = %d, want 200", resp.StatusCode)
	}
	if !hit.CacheHit || hit.State != StateDone {
		t.Fatalf("cache-hit view = %+v", hit)
	}
	if sr.runs.Load() != 1 {
		t.Errorf("cache hit executed the experiment: runs = %d", sr.runs.Load())
	}
}

func TestHTTPErrorsAndAuxRoutes(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{QueueCapacity: 2, Workers: 1})

	// Unknown experiment → 404.
	resp, _ := postJob(t, ts, Request{Experiment: "no-such-thing"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment = %d, want 404", resp.StatusCode)
	}
	// Malformed body → 400.
	r2, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", r2.StatusCode)
	}
	// Unknown job → 404; result of a fresh job → 409 until terminal.
	if resp := getJSON(t, ts.URL+"/jobs/j-404404", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	// Health + experiments listing (real registry names via Experiments()).
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	var exps []experimentBody
	getJSON(t, ts.URL+"/experiments", &exps)
	if len(exps) == 0 {
		t.Error("experiments listing is empty")
	}
	// Metrics endpoint serves Prometheus text including service series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(buf.Bytes(), []byte("quartzd_queue_capacity")) {
		t.Errorf("metrics output missing quartzd series:\n%.400s", buf.String())
	}
}

func TestHTTPCancelAndList(t *testing.T) {
	_, ts, sr := newTestServer(t, Config{QueueCapacity: 4, Workers: 1})
	defer close(sr.release)

	_, running := postJob(t, ts, Request{Experiment: "block", Params: ParamSpec{Seed: 1}})
	select {
	case <-sr.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	_, queued := postJob(t, ts, Request{Experiment: "block", Params: ParamSpec{Seed: 2}})

	// Result before terminal → 409.
	if resp := getJSON(t, ts.URL+"/jobs/"+running.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("premature result = %d, want 409", resp.StatusCode)
	}

	// DELETE cancels the queued job.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled View
	if err := json.NewDecoder(dresp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if cancelled.State != StateCancelled {
		t.Errorf("cancelled view state = %v", cancelled.State)
	}

	var all []View
	getJSON(t, ts.URL+"/jobs", &all)
	if len(all) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(all))
	}
	for i, want := range []string{running.ID, queued.ID} {
		if all[i].ID != want {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, all[i].ID, want)
		}
	}
}

func TestHTTPDraining503(t *testing.T) {
	s, ts, sr := newTestServer(t, Config{QueueCapacity: 4, Workers: 1})

	_, _ = postJob(t, ts, Request{Experiment: "block", Params: ParamSpec{Seed: 1}})
	select {
	case <-sr.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := postJob(t, ts, Request{Experiment: "echo", Params: ParamSpec{Seed: 2}})
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 missing Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission during drain = %d, want 503", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}
	close(sr.release)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
