package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// stubRegistry builds a Lookup over synthetic experiments for tests:
// "echo" returns immediately, "block" parks until release is closed
// (or its context is cancelled), "fail" errors, "ticker" reports
// progress. runs counts real executions of each experiment.
type stubRegistry struct {
	runs    atomic.Int64
	release chan struct{}
	started chan string // receives the experiment name as a run begins
}

func newStubRegistry() *stubRegistry {
	return &stubRegistry{release: make(chan struct{}), started: make(chan string, 64)}
}

func (sr *stubRegistry) lookup(name string) (experiments.Experiment, bool) {
	run := func(fn func(ctx context.Context, p experiments.Params) (experiments.Output, error)) func(context.Context, experiments.Params) (experiments.Output, error) {
		return func(ctx context.Context, p experiments.Params) (experiments.Output, error) {
			sr.runs.Add(1)
			select {
			case sr.started <- name:
			default:
			}
			return fn(ctx, p)
		}
	}
	switch name {
	case "echo":
		return experiments.Experiment{Name: "echo", Run: run(func(_ context.Context, p experiments.Params) (experiments.Output, error) {
			return experiments.Output{Text: fmt.Sprintf("seed=%d", p.Seed)}, nil
		})}, true
	case "block":
		return experiments.Experiment{Name: "block", Run: run(func(ctx context.Context, _ experiments.Params) (experiments.Output, error) {
			select {
			case <-sr.release:
				return experiments.Output{Text: "released"}, nil
			case <-ctx.Done():
				return experiments.Output{}, ctx.Err()
			}
		})}, true
	case "fail":
		return experiments.Experiment{Name: "fail", Run: run(func(context.Context, experiments.Params) (experiments.Output, error) {
			return experiments.Output{}, errors.New("synthetic failure")
		})}, true
	case "spanner":
		return experiments.Experiment{Name: "spanner", Run: run(func(_ context.Context, p experiments.Params) (experiments.Output, error) {
			p.Trace.Add(trace.Span{Name: "cell", Cat: "experiment", Track: 0})
			return experiments.Output{Text: "spanned"}, nil
		})}, true
	case "ticker":
		return experiments.Experiment{Name: "ticker", Run: run(func(_ context.Context, p experiments.Params) (experiments.Output, error) {
			for i := 1; i <= 4; i++ {
				if p.Progress != nil {
					p.Progress(i, 4)
				}
			}
			return experiments.Output{Text: "ticked"}, nil
		})}, true
	case "grid":
		// A synthetic 8-cell sweep: cell i's value is seed*100+i, the
		// merge renders them space-separated. Counts executions like the
		// other stubs so cache tests can assert "no recompute".
		sw := &experiments.Sweep{
			Cells: func(experiments.Params) int { return 8 },
			RunCells: func(_ context.Context, p experiments.Params, lo, hi int) (experiments.CellBlock, error) {
				sr.runs.Add(1)
				vals := make([]int64, hi-lo)
				for k := range vals {
					vals[k] = p.Seed*100 + int64(lo+k)
					if p.Progress != nil {
						p.Progress(k+1, hi-lo)
					}
				}
				data, err := json.Marshal(vals)
				if err != nil {
					return experiments.CellBlock{}, err
				}
				return experiments.CellBlock{Lo: lo, Hi: hi, Data: data}, nil
			},
			Merge: func(_ experiments.Params, blocks []experiments.CellBlock) (experiments.Output, error) {
				var all []int64
				for _, b := range blocks {
					var part []int64
					if err := json.Unmarshal(b.Data, &part); err != nil {
						return experiments.Output{}, err
					}
					all = append(all, part...)
				}
				return experiments.Output{Text: fmt.Sprintf("grid=%v", all)}, nil
			},
		}
		return experiments.Experiment{Name: "grid", Run: sw.Run, Sweep: sw}, true
	}
	return experiments.Experiment{}, false
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not reach a terminal state: %v", j.ID(), err)
	}
}

// counterValue reads one counter series out of a snapshot.
func counterValue(t *testing.T, reg *metrics.Registry, name string, labels metrics.Labels) float64 {
	t.Helper()
	for _, s := range reg.Snapshot().Series {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("no series %s %v in snapshot", name, labels)
	return 0
}

func TestSubmitRunsToCompletion(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 2, Lookup: sr.lookup})
	defer s.Drain(context.Background())

	job, err := s.Submit(Request{Experiment: "echo", Params: ParamSpec{Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if st := job.State(); st != StateDone {
		t.Fatalf("state = %v, want done", st)
	}
	out, errMsg := job.Output()
	if out.Text != "seed=42" || errMsg != "" {
		t.Fatalf("output = %q / %q", out.Text, errMsg)
	}
	v := job.Snapshot(time.Now())
	if v.Params.Seed != 42 || v.Params.Trials != experiments.DefaultParams().Trials {
		t.Errorf("params not canonicalized in view: %+v", v.Params)
	}
}

func TestQueueBackpressure(t *testing.T) {
	// One worker occupied by a blocking job, a queue of capacity N
	// filled with N more: submission N+2 must be rejected with
	// ErrQueueFull, and the rejection counter must say so.
	const capN = 3
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: capN, Workers: 1, Lookup: sr.lookup})
	defer func() {
		close(sr.release)
		s.Drain(context.Background())
	}()

	first, err := s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has dequeued it, so the queue is empty.
	select {
	case <-sr.started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocking job never started")
	}
	for i := 0; i < capN; i++ {
		if _, err := s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: int64(100 + i)}}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	_, err = s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: 999}})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission: err = %v, want ErrQueueFull", err)
	}
	if got := counterValue(t, s.Registry(), "quartzd_submissions_total", metrics.Labels{"outcome": "rejected_full"}); got != 1 {
		t.Errorf("rejected_full = %v, want 1", got)
	}
	_ = first
}

func TestResultCacheHit(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})
	defer s.Drain(context.Background())

	req := Request{Experiment: "echo", Params: ParamSpec{Seed: 7}}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	if sr.runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", sr.runs.Load())
	}

	second, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID() == first.ID() {
		t.Fatalf("cache hit reused the job object; want a fresh job record")
	}
	if st := second.State(); st != StateDone {
		t.Fatalf("cached job state = %v, want done immediately", st)
	}
	if !second.CacheHit() {
		t.Error("cached job not marked as a cache hit")
	}
	out, _ := second.Output()
	if out.Text != "seed=7" {
		t.Errorf("cached output = %q", out.Text)
	}
	if sr.runs.Load() != 1 {
		t.Errorf("cache hit re-executed the experiment: runs = %d", sr.runs.Load())
	}
	if got := counterValue(t, s.Registry(), "quartzd_cache_hits_total", nil); got != 1 {
		t.Errorf("cache hits = %v, want 1", got)
	}

	// Different parameters miss.
	third, err := s.Submit(Request{Experiment: "echo", Params: ParamSpec{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, third)
	if sr.runs.Load() != 2 {
		t.Errorf("distinct params did not execute: runs = %d", sr.runs.Load())
	}

	// NoCache forces execution even with a cached result present.
	req.NoCache = true
	fourth, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, fourth)
	if fourth.CacheHit() || sr.runs.Load() != 3 {
		t.Errorf("NoCache submission served from cache (runs = %d)", sr.runs.Load())
	}
}

func TestCoalesceInFlight(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})
	defer s.Drain(context.Background())

	req := Request{Experiment: "block", Params: ParamSpec{Seed: 5}}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("identical in-flight submission was not coalesced")
	}
	close(sr.release)
	waitTerminal(t, first)
	if sr.runs.Load() != 1 {
		t.Errorf("coalesced submission executed twice: runs = %d", sr.runs.Load())
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})
	defer func() {
		close(sr.release)
		s.Drain(context.Background())
	}()

	running, err := s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sr.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	queued, err := s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job: immediate terminal state, never runs.
	if _, err := s.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCancelled {
		t.Fatalf("queued job state after cancel = %v", st)
	}

	// Cancel the running job: context cancellation propagates.
	if _, err := s.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, running)
	if st := running.State(); st != StateCancelled {
		t.Fatalf("running job state after cancel = %v", st)
	}
	if sr.runs.Load() != 1 {
		t.Errorf("cancelled-while-queued job ran anyway: runs = %d", sr.runs.Load())
	}
	if _, err := s.Cancel("j-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel unknown job: err = %v", err)
	}
}

func TestJobDeadline(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})
	defer func() {
		close(sr.release)
		s.Drain(context.Background())
	}()

	job, err := s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: 1}, TimeoutSecs: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if st := job.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed on deadline", st)
	}
	if _, msg := job.Output(); !strings.Contains(msg, "deadline") {
		t.Errorf("error message %q does not mention the deadline", msg)
	}
}

func TestFailedJobNotCached(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})
	defer s.Drain(context.Background())

	req := Request{Experiment: "fail", Params: ParamSpec{Seed: 1}}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	if st := first.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	second, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, second)
	if second.CacheHit() {
		t.Error("failed result was served from the cache")
	}
	if sr.runs.Load() != 2 {
		t.Errorf("runs = %d, want 2 (failures re-execute)", sr.runs.Load())
	}
}

func TestProgressPropagates(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})
	defer s.Drain(context.Background())

	job, err := s.Submit(Request{Experiment: "ticker", Params: ParamSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	v := job.Snapshot(time.Now())
	if v.Progress == nil || v.Progress.Done != 4 || v.Progress.Total != 4 {
		t.Errorf("progress = %+v, want 4/4", v.Progress)
	}
}

func TestDrainGraceful(t *testing.T) {
	// Drain with a live job: submissions are refused immediately, the
	// job finishes, Drain returns nil.
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})

	job, err := s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sr.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()

	// Admission is closed as soon as Drain begins.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := s.Submit(Request{Experiment: "echo", Params: ParamSpec{Seed: 2}})
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submission during drain: err = %v, want ErrDraining", err)
		}
		time.Sleep(time.Millisecond)
	}

	close(sr.release) // let the in-flight job complete
	if err := <-drainErr; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	if st := job.State(); st != StateDone {
		t.Fatalf("in-flight job after drain = %v, want done", st)
	}
}

func TestDrainForcedCancelsInFlight(t *testing.T) {
	// A drain whose grace period expires cancels the in-flight job and
	// reports it cancelled — never lost.
	sr := newStubRegistry()
	s := New(Config{QueueCapacity: 4, Workers: 1, Lookup: sr.lookup})

	job, err := s.Submit(Request{Experiment: "block", Params: ParamSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sr.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	if st := job.State(); st != StateCancelled {
		t.Fatalf("in-flight job after forced drain = %v, want cancelled", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", experiments.Output{Text: "A"}, "j1")
	c.put("b", experiments.Output{Text: "B"}, "j2")
	if _, ok := c.get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.put("c", experiments.Output{Text: "C"}, "j3") // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// Capacity 0 disables caching.
	off := newResultCache(0)
	off.put("x", experiments.Output{}, "j")
	if _, ok := off.get("x"); ok {
		t.Error("disabled cache stored a result")
	}
}

func TestRealRegistrySmoke(t *testing.T) {
	// End to end against the real experiments registry: the validate
	// experiment at reduced trials, then a cache hit.
	if testing.Short() {
		t.Skip("real simulation")
	}
	s := New(Config{QueueCapacity: 2, Workers: 1})
	defer s.Drain(context.Background())

	req := Request{Experiment: "validate", Params: ParamSpec{Seed: 3, Trials: 50}}
	job, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	if st := job.State(); st != StateDone {
		_, msg := job.Output()
		t.Fatalf("validate: state %v (%s)", st, msg)
	}
	out, _ := job.Output()
	if !strings.Contains(out.Text, "Simulator validation") {
		t.Errorf("unexpected output: %.80q", out.Text)
	}
	again, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit() {
		t.Error("identical resubmission was not a cache hit")
	}
}
