package service

// The result cache: completed experiment outputs keyed by the
// canonical parameter hash (experiments.CacheKey), with LRU eviction.
// Experiments are deterministic for a given parameter set, so a cached
// result is exactly what a re-execution would produce — the cache
// trades a few megabytes of rendered tables for entire simulation
// runs.

import (
	"container/list"
	"sync"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

// cacheEntry is one cached result.
type cacheEntry struct {
	key    string
	output experiments.Output
	// producedBy is the job that computed the result, for provenance
	// in job views of later hits.
	producedBy string
}

// resultCache is a fixed-capacity LRU of experiment outputs.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // key → element holding *cacheEntry
	lru     *list.List               // front = most recently used
}

// newResultCache returns a cache holding at most capacity results;
// capacity <= 0 disables caching (every get misses, puts are dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores a result, evicting the least recently used entry when
// over capacity.
func (c *resultCache) put(key string, out experiments.Output, producedBy string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Deterministic experiments: identical key means identical
		// output; just refresh recency and provenance.
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).producedBy = producedBy
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, output: out, producedBy: producedBy})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
