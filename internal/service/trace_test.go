package service

// Job execution traces: lifecycle spans, trace-ID propagation through
// the X-Quartz-Trace header, and the GET /jobs/{id}/trace export.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// spanNames folds a job's trace into cat/name counts.
func spanNames(j *Job) map[string]int {
	names := map[string]int{}
	for _, s := range j.Trace().Spans() {
		names[s.Cat+"/"+s.Name]++
	}
	return names
}

func TestJobTraceLifecycle(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{Lookup: sr.lookup, Workers: 1})
	defer drain(t, s)

	j, err := s.Submit(Request{Experiment: "spanner"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.TraceID() != j.ID() {
		t.Errorf("default trace ID = %q, want the job ID %q", j.TraceID(), j.ID())
	}
	names := spanNames(j)
	for _, want := range []string{"job/queued", "job/run", "experiment/cell"} {
		if names[want] == 0 {
			t.Errorf("no %s span recorded (got %v)", want, names)
		}
	}
	if v := j.Snapshot(time.Now()); v.TraceID != j.TraceID() {
		t.Errorf("snapshot trace_id = %q, want %q", v.TraceID, j.TraceID())
	}
}

func TestJobTraceCustomID(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{Lookup: sr.lookup, Workers: 1})
	defer drain(t, s)

	j, err := s.Submit(Request{Experiment: "echo", TraceID: "deploy-42"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.TraceID() != "deploy-42" {
		t.Errorf("trace ID = %q, want the submitted one", j.TraceID())
	}
}

func TestCacheHitJobTrace(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{Lookup: sr.lookup, Workers: 1})
	defer drain(t, s)

	first, err := s.Submit(Request{Experiment: "echo", Params: ParamSpec{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, first)
	hit, err := s.Submit(Request{Experiment: "echo", Params: ParamSpec{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit() {
		t.Fatal("second submission was not a cache hit")
	}
	names := spanNames(hit)
	if names["job/cached"] == 0 || names["job/run"] != 0 {
		t.Errorf("cache-hit trace = %v, want a cached span and no run span", names)
	}
}

// drain shuts the service down within the test deadline.
func drain(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}

// chromeTrace is the slice of the Chrome trace-event format the
// HTTP round-trip asserts on.
type chromeTrace struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	} `json:"traceEvents"`
	OtherData map[string]string `json:"otherData"`
}

func TestHTTPTraceRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{QueueCapacity: 4, Workers: 1})

	// Submit with a client-chosen trace ID in the header.
	body, _ := json.Marshal(Request{Experiment: "spanner"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(traceHeader, "ci-run-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get(traceHeader); got != "ci-run-9" {
		t.Fatalf("submit response %s = %q, want the submitted ID", traceHeader, got)
	}
	if v.TraceID != "ci-run-9" {
		t.Fatalf("view trace_id = %q, want the submitted ID", v.TraceID)
	}

	// Poll until terminal, then fetch the trace.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur View
		getJSON(t, ts.URL+"/jobs/"+v.ID, &cur)
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = doGet(t, ts.URL+"/jobs/"+v.ID+"/trace")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(traceHeader); got != "ci-run-9" {
		t.Errorf("trace response %s = %q, want the submitted ID", traceHeader, got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("trace body is not valid JSON: %v\n%s", err, raw)
	}
	if ct.OtherData["trace_id"] != "ci-run-9" || ct.OtherData["job"] != v.ID {
		t.Errorf("otherData = %v, want trace_id/job stamped", ct.OtherData)
	}
	var haveRun bool
	for _, e := range ct.TraceEvents {
		if e.Name == "run" && e.Ph == "X" {
			haveRun = true
		}
	}
	if !haveRun {
		t.Errorf("trace export has no run span (%d events)", len(ct.TraceEvents))
	}

	// Unknown job: 404.
	resp = doGet(t, ts.URL+"/jobs/j-999999/trace")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown-job trace status = %d, want 404", resp.StatusCode)
	}
}

func doGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
