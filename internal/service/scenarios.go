package service

// Named scenario storage: PUT /scenarios/{name} stores a declarative
// scenario document (internal/scenario) server-side, and a later job
// submission can run it by reference ({"scenario_ref": "name"}).
// Documents are compiled at storage time, so a bad scenario is
// rejected with its field-precise errors at PUT, never at run time.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/quartz-dcn/quartz/internal/scenario"
)

// Scenario-related submission and storage errors. The HTTP layer maps
// ErrBadScenario → 400, ErrUnknownScenario → 404, ErrStoreFull → 507.
var (
	ErrBadScenario     = errors.New("bad scenario")
	ErrUnknownScenario = errors.New("unknown scenario")
	ErrStoreFull       = errors.New("scenario store full")
)

// StoredScenario is one named document in the store.
type StoredScenario struct {
	// Name is the storage key (the URL path element).
	Name string
	// Raw is the document as uploaded (JSON or TOML).
	Raw []byte
	// Compiled is the validated, compiled form.
	Compiled *scenario.Compiled
}

// scenarioStore is the bounded named-scenario table.
type scenarioStore struct {
	mu  sync.Mutex
	cap int
	m   map[string]*StoredScenario
}

func newScenarioStore(capacity int) *scenarioStore {
	return &scenarioStore{cap: capacity, m: make(map[string]*StoredScenario)}
}

// compileScenario decodes and compiles raw, wrapping document problems
// in ErrBadScenario. name flavors error messages ("request" for inline
// submissions; it also selects TOML when it ends in .toml).
func compileScenario(raw []byte, name string) (*scenario.Compiled, error) {
	f, err := scenario.Decode(raw, name)
	if err != nil {
		return nil, fmt.Errorf("%w:\n%v", ErrBadScenario, err)
	}
	c, err := scenario.Compile(f)
	if err != nil {
		return nil, fmt.Errorf("%w:\n%v", ErrBadScenario, err)
	}
	return c, nil
}

// PutScenario validates, compiles, and stores a named scenario,
// overwriting any previous document under that name. The document's
// own "name" field must match.
func (s *Service) PutScenario(name string, raw []byte) (*StoredScenario, error) {
	c, err := compileScenario(raw, name)
	if err != nil {
		return nil, err
	}
	if c.Doc.Name != name {
		return nil, fmt.Errorf("%w: document is named %q but was PUT as %q; make them match",
			ErrBadScenario, c.Doc.Name, name)
	}
	st := &StoredScenario{Name: name, Raw: raw, Compiled: c}
	s.scenarios.mu.Lock()
	defer s.scenarios.mu.Unlock()
	if _, exists := s.scenarios.m[name]; !exists && len(s.scenarios.m) >= s.scenarios.cap {
		return nil, fmt.Errorf("%w (capacity %d)", ErrStoreFull, s.scenarios.cap)
	}
	s.scenarios.m[name] = st
	return st, nil
}

// GetScenario returns a stored scenario by name.
func (s *Service) GetScenario(name string) (*StoredScenario, error) {
	s.scenarios.mu.Lock()
	defer s.scenarios.mu.Unlock()
	st, ok := s.scenarios.m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, name)
	}
	return st, nil
}

// DeleteScenario removes a stored scenario by name.
func (s *Service) DeleteScenario(name string) error {
	s.scenarios.mu.Lock()
	defer s.scenarios.mu.Unlock()
	if _, ok := s.scenarios.m[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownScenario, name)
	}
	delete(s.scenarios.m, name)
	return nil
}

// Scenarios lists the stored scenarios sorted by name.
func (s *Service) Scenarios() []*StoredScenario {
	s.scenarios.mu.Lock()
	defer s.scenarios.mu.Unlock()
	out := make([]*StoredScenario, 0, len(s.scenarios.m))
	for _, st := range s.scenarios.m {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
