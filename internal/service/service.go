// Package service runs Quartz experiments on behalf of concurrent
// clients: a bounded submission queue with backpressure, a worker pool
// executing registry experiments (internal/experiments) under per-job
// deadlines and cancellation, a result cache keyed by the canonical
// parameter hash, and queryable job lifecycle state. cmd/quartzd
// fronts a Service with an HTTP JSON API (see http.go); tests drive it
// directly.
//
// Concurrency model: Submit, Cancel, and the workers serialize every
// lifecycle transition under the service mutex (taken before the job
// mutex, never after), so the queued/running gauges can never drift
// from the states jobs are actually in. Experiment execution itself —
// the expensive part — runs outside any lock.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/quartz-dcn/quartz/internal/experiments"
	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/scenario"
	"github.com/quartz-dcn/quartz/internal/trace"
)

// jobFlightSpans bounds each job's trace recorder. The ring grows
// lazily, so short jobs pay only for the spans they record; a
// long-running sharded job keeps its most recent windows.
const jobFlightSpans = 2048

// Submission errors. The HTTP layer maps these to status codes
// (ErrQueueFull → 429, ErrDraining → 503, ErrUnknownExperiment → 404).
var (
	ErrQueueFull         = errors.New("submission queue full")
	ErrDraining          = errors.New("draining, not accepting jobs")
	ErrUnknownExperiment = errors.New("unknown experiment")
	ErrUnknownJob        = errors.New("unknown job")
	// ErrBadRange rejects a cell-range submission whose experiment has
	// no sweep grid or whose bounds fall outside it (HTTP 400).
	ErrBadRange = errors.New("bad cell range")
)

// Config parameterizes a Service. Zero values take the documented
// defaults.
type Config struct {
	// QueueCapacity bounds the submission queue; a full queue rejects
	// with ErrQueueFull (backpressure, not buffering). Default 16.
	QueueCapacity int
	// Workers is the worker-pool size. Default runtime.GOMAXPROCS(0).
	Workers int
	// CacheEntries caps the result cache (LRU). Default 256; negative
	// disables caching.
	CacheEntries int
	// DefaultTimeout caps a job's run time when the request does not
	// set one. Default 10 minutes.
	DefaultTimeout time.Duration
	// MaxJobs bounds the in-memory job table: when exceeded, the
	// oldest terminal jobs are forgotten (their results stay in the
	// cache until evicted). Default 1000.
	MaxJobs int
	// ScenarioEntries bounds the named-scenario store
	// (PUT /scenarios/{name}). Default 128.
	ScenarioEntries int
	// Registry receives the service's instruments; a private registry
	// is created when nil.
	Registry *metrics.Registry
	// Lookup resolves experiment names. Default experiments.Find.
	Lookup func(name string) (experiments.Experiment, bool)
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1000
	}
	if c.ScenarioEntries <= 0 {
		c.ScenarioEntries = 128
	}
	if c.Lookup == nil {
		c.Lookup = experiments.Find
	}
	return c
}

// Service is the job subsystem. Create one with New; it is safe for
// concurrent use.
type Service struct {
	cfg        Config
	reg        *metrics.Registry
	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // one count per pool worker
	drained    chan struct{}  // closed once every worker has exited

	// mu serializes lifecycle transitions and is always taken before a
	// job's own mutex, never after.
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job IDs in submission order
	inflight map[string]*Job // cache key → live (queued/running) job, for coalescing
	nQueued  int
	nRunning int
	draining bool
	nextID   uint64

	cache     *resultCache
	scenarios *scenarioStore

	mQueueDepth *metrics.Gauge
	mQueueCap   *metrics.Gauge
	mQueued     *metrics.Gauge
	mRunning    *metrics.Gauge
	mQueueWait  *metrics.LatencyHistogram
	mRunLatency *metrics.LatencyHistogram
	mTerminal   map[State]*metrics.Counter
	mSubmit     map[string]*metrics.Counter
	mCacheHits  *metrics.Counter
	mCacheMiss  *metrics.Counter
	mCacheSize  *metrics.Gauge
}

// New returns a started Service: its worker pool is live and Submit
// may be called immediately. Stop it with Drain.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		reg:        reg,
		queue:      make(chan *Job, cfg.QueueCapacity),
		baseCtx:    ctx,
		baseCancel: cancel,
		drained:    make(chan struct{}),
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		cache:      newResultCache(cfg.CacheEntries),
		scenarios:  newScenarioStore(cfg.ScenarioEntries),

		mQueueDepth: reg.Gauge("quartzd_queue_depth", "jobs waiting in the submission queue", nil),
		mQueueCap:   reg.Gauge("quartzd_queue_capacity", "submission queue capacity", nil),
		mQueued:     reg.Gauge("quartzd_jobs_queued", "jobs currently queued", nil),
		mRunning:    reg.Gauge("quartzd_jobs_running", "jobs currently executing", nil),
		mQueueWait:  reg.Histogram("quartzd_queue_wait_us", "time from submission to execution start, microseconds", nil),
		mRunLatency: reg.Histogram("quartzd_job_run_us", "job execution time, microseconds", nil),
		mTerminal: map[State]*metrics.Counter{
			StateDone:      reg.Counter("quartzd_jobs_total", "jobs finished, by terminal state", metrics.Labels{"state": "done"}),
			StateFailed:    reg.Counter("quartzd_jobs_total", "jobs finished, by terminal state", metrics.Labels{"state": "failed"}),
			StateCancelled: reg.Counter("quartzd_jobs_total", "jobs finished, by terminal state", metrics.Labels{"state": "cancelled"}),
		},
		mSubmit: map[string]*metrics.Counter{
			"accepted":          reg.Counter("quartzd_submissions_total", "submissions, by outcome", metrics.Labels{"outcome": "accepted"}),
			"cache_hit":         reg.Counter("quartzd_submissions_total", "submissions, by outcome", metrics.Labels{"outcome": "cache_hit"}),
			"coalesced":         reg.Counter("quartzd_submissions_total", "submissions, by outcome", metrics.Labels{"outcome": "coalesced"}),
			"rejected_full":     reg.Counter("quartzd_submissions_total", "submissions, by outcome", metrics.Labels{"outcome": "rejected_full"}),
			"rejected_draining": reg.Counter("quartzd_submissions_total", "submissions, by outcome", metrics.Labels{"outcome": "rejected_draining"}),
		},
		mCacheHits: reg.Counter("quartzd_cache_hits_total", "submissions served from the result cache", nil),
		mCacheMiss: reg.Counter("quartzd_cache_misses_total", "submissions that required execution", nil),
		mCacheSize: reg.Gauge("quartzd_cache_entries", "results held in the cache", nil),
	}
	s.mQueueCap.Set(float64(cfg.QueueCapacity))
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Registry returns the metrics registry the service reports into.
func (s *Service) Registry() *metrics.Registry { return s.reg }

// QueueCapacity returns the configured submission-queue bound.
func (s *Service) QueueCapacity() int { return s.cfg.QueueCapacity }

// QueueDepth returns the number of jobs waiting in the submission
// queue right now — the load signal /healthz exposes so clients and
// the cluster coordinator can balance on backpressure instead of
// blindly retrying 429s.
func (s *Service) QueueDepth() int { return len(s.queue) }

// Experiments returns the registry entries this service can run.
func (s *Service) Experiments() []experiments.Experiment { return experiments.All() }

// resolve turns a request into the experiment to run and its
// parameters, from whichever of Experiment, Scenario, or ScenarioRef
// is set. Scenario compilation preserves cache identity: a scenario
// that parameterizes a registry entry resolves to the registry entry
// itself, so it coalesces with direct submissions of that experiment.
func (s *Service) resolve(req Request) (experiments.Experiment, experiments.Params, error) {
	selected := 0
	for _, set := range []bool{req.Experiment != "", len(req.Scenario) > 0, req.ScenarioRef != ""} {
		if set {
			selected++
		}
	}
	if selected > 1 {
		return experiments.Experiment{}, experiments.Params{},
			fmt.Errorf("%w: pick one of experiment, scenario, scenario_ref", ErrBadScenario)
	}
	if req.Experiment == "" && selected == 1 && req.Params != (ParamSpec{}) {
		return experiments.Experiment{}, experiments.Params{},
			fmt.Errorf("%w: a scenario pins its parameters in the document; drop the params field", ErrBadScenario)
	}
	var compiled *scenario.Compiled
	switch {
	case req.Experiment != "":
		exp, ok := s.cfg.Lookup(req.Experiment)
		if !ok {
			return experiments.Experiment{}, experiments.Params{},
				fmt.Errorf("%w: %q", ErrUnknownExperiment, req.Experiment)
		}
		return exp, req.Params.Params().WithDefaults(), nil
	case len(req.Scenario) > 0:
		var err error
		if compiled, err = compileScenario(req.Scenario, "scenario"); err != nil {
			return experiments.Experiment{}, experiments.Params{}, err
		}
	case req.ScenarioRef != "":
		st, err := s.GetScenario(req.ScenarioRef)
		if err != nil {
			return experiments.Experiment{}, experiments.Params{}, err
		}
		compiled = st.Compiled
	default:
		return experiments.Experiment{}, experiments.Params{},
			fmt.Errorf("%w: %q", ErrUnknownExperiment, "")
	}
	return compiled.Experiment, compiled.Params.WithDefaults(), nil
}

// Submit admits one job. On success the returned job is queued (or
// already terminal, for cache hits) and owned by the service. Repeated
// submission of identical parameters is served without recomputation:
// from the cache when a result exists, or by returning the in-flight
// job computing it. Errors: ErrUnknownExperiment, ErrBadScenario,
// ErrUnknownScenario, ErrDraining, ErrQueueFull.
func (s *Service) Submit(req Request) (*Job, error) {
	exp, params, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	key := experiments.CacheKey(exp.Name, params)
	run := exp.Run
	if req.Cells != nil {
		// Cell-range sub-job: run only [Lo, Hi) of the experiment's
		// sweep grid and report the partial block. The cache key becomes
		// the range sub-key, so a block this worker computed once serves
		// every later request for the same cells — the shared-cache tier
		// the cluster coordinator leans on.
		if req.Experiment == "" {
			return nil, fmt.Errorf("%w: cells requires a registry experiment", ErrBadRange)
		}
		sw := exp.Sweep
		if sw == nil {
			return nil, fmt.Errorf("%w: experiment %q has no sweep grid", ErrBadRange, exp.Name)
		}
		n := sw.Cells(params)
		lo, hi := req.Cells.Lo, req.Cells.Hi
		if lo < 0 || hi <= lo || hi > n {
			return nil, fmt.Errorf("%w: [%d,%d) outside grid of %d cells", ErrBadRange, lo, hi, n)
		}
		key = experiments.CacheKeyRange(exp.Name, params, lo, hi)
		run = func(ctx context.Context, p experiments.Params) (experiments.Output, error) {
			return sw.RunRange(ctx, p, lo, hi)
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSecs > 0 {
		timeout = time.Duration(req.TimeoutSecs * float64(time.Second))
	}
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.mSubmit["rejected_draining"].Inc()
		return nil, ErrDraining
	}
	if !req.NoCache {
		if ent, ok := s.cache.get(key); ok {
			s.mCacheHits.Inc()
			s.mSubmit["cache_hit"].Inc()
			job := s.newJobLocked(exp, params, run, key, timeout, req, now)
			job.cacheHit = true
			job.startedAt = now
			job.traceSpan("cached", now, now)
			job.finish(StateDone, ent.output, "", now)
			s.mTerminal[StateDone].Inc()
			s.registerLocked(job)
			return job, nil
		}
		if live, ok := s.inflight[key]; ok {
			s.mSubmit["coalesced"].Inc()
			return live, nil
		}
	}
	job := s.newJobLocked(exp, params, run, key, timeout, req, now)
	select {
	case s.queue <- job:
	default:
		s.mSubmit["rejected_full"].Inc()
		return nil, fmt.Errorf("%w (capacity %d)", ErrQueueFull, s.cfg.QueueCapacity)
	}
	s.mCacheMiss.Inc()
	s.mSubmit["accepted"].Inc()
	s.registerLocked(job)
	if !req.NoCache {
		s.inflight[key] = job
	}
	s.nQueued++
	s.gaugesLocked()
	return job, nil
}

// newJobLocked allocates a job shell. Caller holds s.mu.
func (s *Service) newJobLocked(exp experiments.Experiment, p experiments.Params, run func(context.Context, experiments.Params) (experiments.Output, error), key string, timeout time.Duration, req Request, now time.Time) *Job {
	s.nextID++
	j := &Job{
		id:          fmt.Sprintf("j-%06d", s.nextID),
		key:         key,
		name:        exp.Name,
		params:      p,
		run:         run,
		cells:       req.Cells,
		timeout:     timeout,
		noCache:     req.NoCache,
		traceID:     req.TraceID,
		rec:         trace.NewFlightRecorder(jobFlightSpans),
		state:       StateQueued,
		submittedAt: now,
		done:        make(chan struct{}),
	}
	if j.traceID == "" {
		j.traceID = j.id
	}
	j.rec.NameTrack("job", 0, "lifecycle")
	return j
}

// registerLocked records a job in the table, evicting the oldest
// terminal jobs beyond the retention bound. Caller holds s.mu.
func (s *Service) registerLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.order) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			if old := s.jobs[id]; old != nil && old.State().Terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the table run long
		}
	}
}

// gaugesLocked refreshes the queue/state gauges. Caller holds s.mu.
func (s *Service) gaugesLocked() {
	s.mQueueDepth.Set(float64(len(s.queue)))
	s.mQueued.Set(float64(s.nQueued))
	s.mRunning.Set(float64(s.nRunning))
	s.mCacheSize.Set(float64(s.cache.len()))
}

// Job returns the job with the given ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every tracked job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel stops a job: a queued job goes terminal immediately, a
// running job has its context cancelled (the transition lands when the
// experiment observes it). Cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	switch state {
	case StateQueued:
		j.finish(StateCancelled, experiments.Output{}, "cancelled while queued", time.Now())
		s.mTerminal[StateCancelled].Inc()
		delete(s.inflight, j.key)
		s.nQueued--
		s.gaugesLocked()
	case StateRunning:
		if cancel != nil {
			cancel()
		}
	}
	return j, nil
}

// worker is one pool member: it drains the submission queue until the
// queue is closed by Drain.
func (s *Service) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one dequeued job end to end.
func (s *Service) runJob(j *Job) {
	now := time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, j.timeout)
	defer cancel()

	s.mu.Lock()
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued; already accounted
		j.mu.Unlock()
		s.gaugesLocked()
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.startedAt = now
	j.cancel = cancel
	j.notifyLocked()
	j.mu.Unlock()
	s.nQueued--
	s.nRunning++
	s.gaugesLocked()
	s.mu.Unlock()
	s.mQueueWait.Observe(float64(now.Sub(j.submittedAt).Microseconds()))
	j.traceSpan("queued", j.submittedAt, now)

	p := j.params
	p.Progress = j.setProgress
	p.Trace = j.rec
	out, err := j.run(ctx, p)

	state := StateDone
	msg := ""
	switch {
	case err == nil:
		state = StateDone
	case errors.Is(err, context.Canceled):
		state = StateCancelled
		msg = "cancelled while running"
	case errors.Is(err, context.DeadlineExceeded):
		state = StateFailed
		msg = fmt.Sprintf("deadline exceeded after %v", j.timeout)
	default:
		state = StateFailed
		msg = err.Error()
	}
	end := time.Now()
	j.traceSpan("run", now, end)

	s.mu.Lock()
	recorded := j.finish(state, out, msg, end)
	s.mTerminal[recorded].Inc()
	if recorded == StateDone && !j.noCache {
		s.cache.put(j.key, out, j.id)
	}
	delete(s.inflight, j.key)
	s.nRunning--
	s.gaugesLocked()
	s.mu.Unlock()
	s.mRunLatency.Observe(float64(end.Sub(now).Microseconds()))
}

// Drain shuts the service down gracefully: stop admitting (further
// Submits fail with ErrDraining), let queued and running jobs finish,
// then return. If ctx expires first, in-flight job contexts are
// cancelled and Drain waits for the workers to observe that before
// returning ctx.Err(). Safe to call more than once.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		go func() {
			s.wg.Wait()
			close(s.drained)
		}()
	}
	s.mu.Unlock()

	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		// Grace period over: cancel every in-flight job context and
		// wait for the pool to observe it and unwind.
		s.baseCancel()
		<-s.drained
		return ctx.Err()
	}
}

// Stats summarizes lifetime activity, for the daemon's exit log.
type Stats struct {
	Done, Failed, Cancelled uint64
	CacheHits, CacheMisses  uint64
	CacheEntries            int
}

// Stats returns lifetime counters.
func (s *Service) Stats() Stats {
	return Stats{
		Done:         s.mTerminal[StateDone].Value(),
		Failed:       s.mTerminal[StateFailed].Value(),
		Cancelled:    s.mTerminal[StateCancelled].Value(),
		CacheHits:    s.mCacheHits.Value(),
		CacheMisses:  s.mCacheMiss.Value(),
		CacheEntries: s.cache.len(),
	}
}
