package service

// Tests for the cluster-facing service surfaces: cell-range sub-jobs
// with range sub-key caching, the SSE progress stream, deterministic
// job listing, and the backpressure signals (jittered Retry-After,
// queue depth on /healthz).

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

func TestCellRangeSubJob(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{Lookup: sr.lookup})
	defer drain(t, s)

	req := Request{Experiment: "grid", Params: ParamSpec{Seed: 3}, Cells: &CellRange{Lo: 2, Hi: 5}}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	out, errMsg := j.Output()
	if errMsg != "" {
		t.Fatalf("sub-job failed: %s", errMsg)
	}
	block, err := experiments.DecodeBlock(out.Text)
	if err != nil {
		t.Fatalf("result text is not a cell block: %v", err)
	}
	if block.Lo != 2 || block.Hi != 5 {
		t.Errorf("block range [%d,%d), want [2,5)", block.Lo, block.Hi)
	}
	if want := experiments.CacheKeyRange("grid", req.Params.Params().WithDefaults(), 2, 5); j.Key() != want {
		t.Errorf("sub-job key %s, want range sub-key %s", j.Key(), want)
	}

	// The same range resubmitted — from any client — is a cache hit on
	// the sub-key; a different range of the same grid is not.
	runsBefore := sr.runs.Load()
	again, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, again)
	if !again.CacheHit() {
		t.Errorf("identical cell range not served from cache")
	}
	if sr.runs.Load() != runsBefore {
		t.Errorf("cache hit recomputed the range")
	}
	other, err := s.Submit(Request{Experiment: "grid", Params: ParamSpec{Seed: 3}, Cells: &CellRange{Lo: 5, Hi: 8}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, other)
	if other.CacheHit() {
		t.Errorf("different cell range unexpectedly hit the cache")
	}
}

func TestCellRangeValidation(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{Lookup: sr.lookup})
	defer drain(t, s)

	for name, req := range map[string]Request{
		"no sweep":    {Experiment: "echo", Cells: &CellRange{Lo: 0, Hi: 1}},
		"inverted":    {Experiment: "grid", Cells: &CellRange{Lo: 3, Hi: 3}},
		"negative":    {Experiment: "grid", Cells: &CellRange{Lo: -1, Hi: 2}},
		"off the end": {Experiment: "grid", Cells: &CellRange{Lo: 0, Hi: 9}},
	} {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRange) {
			t.Errorf("%s: got %v, want ErrBadRange", name, err)
		}
	}
}

// TestEventsSSE: the events stream delivers progress and a terminal
// state event, then closes.
func TestEventsSSE(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	_, v := postJob(t, ts, Request{Experiment: "ticker"})

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var sawProgress, sawDone bool
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" && strings.Contains(data, `"total":4`) {
				sawProgress = true
			}
			if event == "state" && strings.Contains(data, `"state":"done"`) {
				sawDone = true
			}
		}
	}
	// The stream must terminate on its own (scanner hits EOF) — that is
	// the close-on-terminal contract.
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatalf("stream error: %v", err)
	}
	if !sawProgress {
		t.Errorf("no progress event with the experiment's total")
	}
	if !sawDone {
		t.Errorf("no terminal state event before stream close")
	}
}

// TestEventsSSEClientCancel: an abandoned subscription unblocks the
// handler (watcher removed, no goroutine leak visible as a hang).
func TestEventsSSEClientCancel(t *testing.T) {
	s, ts, sr := newTestServer(t, Config{Workers: 1})
	_, v := postJob(t, ts, Request{Experiment: "block"})

	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+v.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the initial state event, then hang up mid-job.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(sr.release)
	j, _ := s.Job(v.ID)
	waitTerminal(t, j)
}

// TestListDeterministicOrder: GET /jobs returns jobs sorted by
// submission time (ID tiebreak), and identical calls return identical
// bodies.
func TestListDeterministicOrder(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{QueueCapacity: 16})
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(Request{Experiment: "echo", Params: ParamSpec{Seed: int64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range s.Jobs() {
		waitTerminal(t, j)
	}
	var first []View
	getJSON(t, ts.URL+"/jobs", &first)
	if len(first) != 6 {
		t.Fatalf("listed %d jobs, want 6", len(first))
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if b.SubmittedAt.Before(a.SubmittedAt) || (b.SubmittedAt.Equal(a.SubmittedAt) && b.ID < a.ID) {
			t.Errorf("listing out of order at %d: %s(%v) before %s(%v)", i, a.ID, a.SubmittedAt, b.ID, b.SubmittedAt)
		}
	}
	var second []View
	getJSON(t, ts.URL+"/jobs", &second)
	for i := range first {
		if first[i].ID != second[i].ID {
			t.Errorf("listing order changed between calls: %s vs %s at %d", first[i].ID, second[i].ID, i)
		}
	}
}

// TestHealthzQueueDepth: /healthz carries the load signal the cluster
// coordinator balances on.
func TestHealthzQueueDepth(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{QueueCapacity: 7})
	var hb HealthBody
	resp := getJSON(t, ts.URL+"/healthz", &hb)
	if hb.Status != "ok" || hb.QueueCapacity != 7 {
		t.Errorf("healthz = %+v", hb)
	}
	if resp.Header.Get(queueDepthHeader) == "" {
		t.Errorf("no %s header on /healthz", queueDepthHeader)
	}
}

// TestRetryAfterJitter: the backpressure hint stays within [1,3] and
// actually varies, so rejected clients desynchronize.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := retryAfterSecs()
		if v < 1 || v > 3 {
			t.Fatalf("retryAfterSecs() = %d, want 1..3", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("no jitter: every hint was identical")
	}
}
