package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

// scenarioTable2 parameterizes a real registry experiment; small
// trials keep the test fast.
const scenarioTable2 = `{
  "schema": "quartz-scenario/v1",
  "name": "table2-tiny",
  "experiment": {"name": "table2", "trials": 2}
}`

func realRegistryServer(t *testing.T) (*Service, string) {
	t.Helper()
	s, ts, _ := newTestServer(t, Config{Lookup: experiments.Find})
	return s, ts.URL
}

func postBody(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func waitDone(t *testing.T, s *Service, id string) {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if st := j.State(); st != StateDone {
		_, msg := j.Output()
		t.Fatalf("job %s ended %v: %s", id, st, msg)
	}
}

// The acceptance flow: POST a raw scenario document, let it run, POST
// it again, and see cache_hit=true — and a direct (non-scenario)
// submission of the same experiment+params must hit the same entry.
func TestRawScenarioSubmitAndCacheHit(t *testing.T) {
	s, url := realRegistryServer(t)

	resp, data := postBody(t, url, scenarioTable2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, data)
	}
	var v View
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Experiment != "table2" {
		t.Errorf("compiled experiment = %q, want the registry entry", v.Experiment)
	}
	waitDone(t, s, v.ID)

	resp2, data2 := postBody(t, url, scenarioTable2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, data2)
	}
	var v2 View
	if err := json.Unmarshal(data2, &v2); err != nil {
		t.Fatal(err)
	}
	if !v2.CacheHit {
		t.Error("identical scenario resubmission missed the cache")
	}
	if v2.Key != v.Key {
		t.Errorf("keys differ across submissions: %s vs %s", v2.Key, v.Key)
	}

	// Direct envelope, same experiment and parameters: the scenario's
	// cached result must serve it too (cross-representation parity).
	env, _ := json.Marshal(Request{Experiment: "table2", Params: ParamSpec{Trials: 2}})
	resp3, data3 := postBody(t, url, string(env))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("direct submit: %d %s", resp3.StatusCode, data3)
	}
	var v3 View
	if err := json.Unmarshal(data3, &v3); err != nil {
		t.Fatal(err)
	}
	if !v3.CacheHit || v3.Key != v.Key {
		t.Errorf("direct submission did not coalesce: hit=%v key=%s want %s", v3.CacheHit, v3.Key, v.Key)
	}
}

func TestScenarioStoreHTTP(t *testing.T) {
	s, url := realRegistryServer(t)
	client := &http.Client{}
	put := func(name, body string) (*http.Response, []byte) {
		req, _ := http.NewRequest(http.MethodPut, url+"/scenarios/"+name, strings.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	// Bad document: 400 with the field-precise message.
	resp, data := put("broken", `{"schema": "quartz-scenario/v1", "name": "broken",
	                              "experiment": {"name": "fig66"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad doc: %d", resp.StatusCode)
	}
	if !bytes.Contains(data, []byte("did you mean")) {
		t.Errorf("error lost the suggestion: %s", data)
	}

	// Name mismatch: 400.
	if resp, _ := put("other-name", scenarioTable2); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("name mismatch accepted: %d", resp.StatusCode)
	}

	// Good document: stored, listed, retrievable byte-for-byte.
	resp, data = put("table2-tiny", scenarioTable2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: %d %s", resp.StatusCode, data)
	}
	var sb struct {
		Experiment string `json:"experiment"`
		Key        string `json:"key"`
	}
	if err := json.Unmarshal(data, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Experiment != "table2" || sb.Key == "" {
		t.Errorf("put response = %s", data)
	}

	getResp, err := http.Get(url + "/scenarios/table2-tiny")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if string(raw) != scenarioTable2 {
		t.Errorf("stored document drifted: %s", raw)
	}

	var list []json.RawMessage
	if r := getJSON(t, url+"/scenarios", &list); r.StatusCode != http.StatusOK || len(list) != 1 {
		t.Errorf("list: %d entries", len(list))
	}

	// Submit by reference; runs the stored compiled form.
	respRef, dataRef := postBody(t, url, `{"scenario_ref": "table2-tiny"}`)
	if respRef.StatusCode != http.StatusAccepted && respRef.StatusCode != http.StatusOK {
		t.Fatalf("scenario_ref submit: %d %s", respRef.StatusCode, dataRef)
	}
	var vRef View
	if err := json.Unmarshal(dataRef, &vRef); err != nil {
		t.Fatal(err)
	}
	if vRef.Key != sb.Key {
		t.Errorf("ref submission key %s, stored key %s", vRef.Key, sb.Key)
	}
	waitDone(t, s, vRef.ID)

	// Delete, then the ref 404s at submit time.
	delReq, _ := http.NewRequest(http.MethodDelete, url+"/scenarios/table2-tiny", nil)
	if resp, err := client.Do(delReq); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v %d", err, resp.StatusCode)
	}
	if resp, _ := postBody(t, url, `{"scenario_ref": "table2-tiny"}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted ref submit: %d, want 404", resp.StatusCode)
	}
	if resp, err := http.Get(url + "/scenarios/table2-tiny"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted get: %d, want 404", resp.StatusCode)
	}
}

func TestScenarioSubmitErrors(t *testing.T) {
	_, url := realRegistryServer(t)
	cases := []struct {
		name, body string
		code       int
		want       string
	}{
		{"invalid scenario doc", `{"schema": "quartz-scenario/v1", "name": "x"}`,
			http.StatusBadRequest, `needs either an`},
		{"two selectors", `{"experiment": "table2", "scenario_ref": "x"}`,
			http.StatusBadRequest, "pick one"},
		{"scenario with params", `{"scenario_ref": "none", "params": {"trials": 3}}`,
			http.StatusBadRequest, "drop the params field"},
		{"unknown ref", `{"scenario_ref": "nope"}`,
			http.StatusNotFound, "unknown scenario"},
		{"nothing selected", `{}`,
			http.StatusNotFound, "unknown experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postBody(t, url, tc.body)
			if resp.StatusCode != tc.code {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.code, data)
			}
			if !bytes.Contains(data, []byte(tc.want)) {
				t.Errorf("body %s missing %q", data, tc.want)
			}
		})
	}
}

func TestRawTOMLSubmit(t *testing.T) {
	s, url := realRegistryServer(t)
	toml := "schema = \"quartz-scenario/v1\"\nname = \"toml-sub\"\n[experiment]\nname = \"table2\"\ntrials = 2\n"
	resp, data := postBody(t, url, toml)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("TOML submit: %d %s", resp.StatusCode, data)
	}
	var v View
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Experiment != "table2" {
		t.Errorf("experiment = %q", v.Experiment)
	}
	waitDone(t, s, v.ID)

	// The TOML and JSON forms of the same scenario share a cache key.
	respJSON, dataJSON := postBody(t, url, scenarioTable2)
	var vj View
	if err := json.Unmarshal(dataJSON, &vj); err != nil {
		t.Fatal(err)
	}
	if respJSON.StatusCode != http.StatusOK || !vj.CacheHit || vj.Key != v.Key {
		t.Errorf("JSON twin missed the TOML result: %d hit=%v %s vs %s",
			respJSON.StatusCode, vj.CacheHit, vj.Key, v.Key)
	}
}

func TestScenarioStoreCap(t *testing.T) {
	sr := newStubRegistry()
	s := New(Config{Lookup: sr.lookup, ScenarioEntries: 1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	mk := func(name string) string {
		return `{"schema": "quartz-scenario/v1", "name": "` + name + `",
		         "experiment": {"name": "table2"}}`
	}
	if _, err := s.PutScenario("one", []byte(mk("one"))); err != nil {
		t.Fatal(err)
	}
	// Overwriting the existing name is fine at capacity.
	if _, err := s.PutScenario("one", []byte(mk("one"))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutScenario("two", []byte(mk("two"))); err == nil || !strings.Contains(err.Error(), "store full") {
		t.Errorf("want store-full error, got %v", err)
	}
}
