package service

// The HTTP JSON surface of the job subsystem — cmd/quartzd mounts
// this. Routes:
//
//	POST   /jobs            submit (202; 200 on cache hit; 429 full; 503 draining)
//	GET    /jobs            list jobs, submission order
//	GET    /jobs/{id}       job state + progress
//	GET    /jobs/{id}/result  output of a terminal job (409 until then)
//	GET    /jobs/{id}/trace   execution trace, Chrome trace-event JSON
//	GET    /jobs/{id}/events  Server-Sent Events: per-cell progress + state
//	DELETE /jobs/{id}       cancel
//	PUT    /scenarios/{name}  store a named scenario document (400 on doc errors)
//	GET    /scenarios/{name}  the stored document, as uploaded
//	GET    /scenarios       list stored scenarios
//	DELETE /scenarios/{name}  remove a stored scenario
//	GET    /experiments     the experiments registry
//	GET    /metrics         Prometheus text format
//	GET    /status          JSON status page (meta + metric series)
//	GET    /healthz         liveness
//
// POST /jobs accepts three request shapes: the job envelope
// ({"experiment": ..., "params": ...}), the envelope carrying an
// inline or named scenario ({"scenario": {...}} / {"scenario_ref":
// "name"}), or — as a convenience for `curl -d @file.json` — a raw
// scenario document, recognized by its required "schema":
// "quartz-scenario/v1" field (TOML documents are recognized by a
// non-'{' first byte). A scenario that parameterizes a registry
// experiment shares that experiment's cache key, so identical
// submissions coalesce regardless of shape.
//
// Every job carries an execution trace: POST /jobs reads an optional
// X-Quartz-Trace header naming it (default: the job ID), job responses
// echo the header back, and GET /jobs/{id}/trace serves the spans —
// job lifecycle down to sharded-engine barrier windows — as Chrome
// trace-event JSON loadable in Perfetto. The trace of a running job is
// whatever has been recorded so far.
//
// Backpressure is visible at the protocol level: a full queue answers
// 429 Too Many Requests with a jittered Retry-After and the live queue
// depth (X-Quartz-Queue-Depth, also on /healthz), a draining daemon
// 503 Service Unavailable. Handlers only read service state through
// the public accessors, so they are safe alongside the worker pool.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/quartz-dcn/quartz/internal/metrics"
)

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

// resultBody is the GET /jobs/{id}/result response.
type resultBody struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Text is the experiment's rendered output.
	Text string `json:"text,omitempty"`
	// CSVTables lists the data-bearing row sets the experiment
	// produced (exported via quartzbench -csv; the API serves text).
	CSVTables []string `json:"csv_tables,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// experimentBody is one GET /experiments entry.
type experimentBody struct {
	Name    string `json:"name"`
	Section string `json:"section"`
	Title   string `json:"title"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// Handler returns the daemon mux. meta is shown on /status (may be
// nil).
func (s *Service) Handler(meta metrics.StatusMeta) http.Handler {
	mux := http.NewServeMux()
	metricsMux := metrics.Handler(s.reg, meta)
	mux.Handle("/metrics", metricsMux)
	mux.Handle("/status", metricsMux)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("PUT /scenarios/{name}", s.handleScenarioPut)
	mux.HandleFunc("GET /scenarios/{name}", s.handleScenarioGet)
	mux.HandleFunc("GET /scenarios", s.handleScenarioList)
	mux.HandleFunc("DELETE /scenarios/{name}", s.handleScenarioDelete)
	return mux
}

func (s *Service) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var out []experimentBody
	for _, e := range s.Experiments() {
		out = append(out, experimentBody{Name: e.Name, Section: e.Section, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

// maxBodyBytes bounds a request body read (scenario documents and job
// envelopes are small; a megabyte is generous).
const maxBodyBytes = 1 << 20

// parseSubmitBody turns a POST /jobs body into a Request, accepting
// both the job envelope and a raw scenario document (JSON recognized
// by its top-level "schema" field, TOML by a non-'{' first byte).
func parseSubmitBody(body []byte) (Request, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] != '{' {
		// Not a JSON object: treat it as a TOML scenario document.
		return Request{Scenario: body}, nil
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && probe.Schema != "" {
		return Request{Scenario: body}, nil
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading request body: " + err.Error()})
		return
	}
	req, err := parseSubmitBody(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if tid := r.Header.Get(traceHeader); tid != "" {
		req.TraceID = tid
	}
	job, err := s.Submit(req)
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownExperiment), errors.Is(err, ErrUnknownScenario):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrBadScenario), errors.Is(err, ErrBadRange):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell the client when to come back, with jitter
		// so a herd of rejected clients (or cluster dispatchers) does
		// not retry in lockstep. One second is a deliberate floor —
		// smoke-scale jobs finish in less. The live queue depth rides
		// along so callers can load-balance instead of blindly retrying.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs()))
		w.Header().Set(queueDepthHeader, strconv.Itoa(s.QueueDepth()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "60")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if job.State().Terminal() { // cache hit: no execution pending
		code = http.StatusOK
	}
	w.Header().Set(traceHeader, job.TraceID())
	writeJSON(w, code, job.Snapshot(time.Now()))
}

// traceHeader carries a client-chosen trace ID on POST /jobs and comes
// back on job responses, so a client can correlate its own request
// with the exported trace.
const traceHeader = "X-Quartz-Trace"

// handleTrace serves the job's execution trace as Chrome trace-event
// JSON (Perfetto-loadable). Works at any lifecycle point: a running
// job yields the spans recorded so far, a cache-hit job only its
// lifecycle spans.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	w.Header().Set(traceHeader, j.TraceID())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = j.Trace().WriteChrome(w, map[string]string{
		"job":        j.ID(),
		"trace_id":   j.TraceID(),
		"experiment": j.name,
		"state":      j.State().String(),
	})
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	jobs := s.Jobs()
	out := make([]View, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot(now))
	}
	// Deterministic listing order: submission time, job ID as the
	// tiebreak (IDs are monotonic, so same-timestamp submissions still
	// list in admission order). Identical GET /jobs calls must return
	// identical bodies — clients diff them.
	sort.SliceStable(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.Before(out[b].SubmittedAt)
		}
		return out[a].ID < out[b].ID
	})
	writeJSON(w, http.StatusOK, out)
}

// queueDepthHeader carries the live submission-queue depth on 429
// responses and /healthz, the coordinator's load-balancing signal.
const queueDepthHeader = "X-Quartz-Queue-Depth"

// retryAfterSecs returns the 429 Retry-After hint: a 1-second floor
// plus up to 2 seconds of jitter, so synchronized clients desynchronize
// instead of stampeding the queue on the same tick.
func retryAfterSecs() int { return 1 + rand.Intn(3) }

// HealthBody is the GET /healthz response: liveness plus the queue
// load signal (see the Retry-After jitter note on handleSubmit — the
// depth lets clients and the cluster coordinator balance on
// backpressure rather than probe it).
type HealthBody struct {
	Status        string `json:"status"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	depth := s.QueueDepth()
	w.Header().Set(queueDepthHeader, strconv.Itoa(depth))
	writeJSON(w, http.StatusOK, HealthBody{
		Status:        "ok",
		QueueDepth:    depth,
		QueueCapacity: s.QueueCapacity(),
	})
}

// handleEvents streams job lifecycle and per-cell progress as
// Server-Sent Events: an initial "state" event, a "progress" event per
// observed done/total change, a "state" event per transition, and
// stream close once the job is terminal. A cluster job aggregates its
// workers' per-cell callbacks into the same stream, so one SSE
// subscription watches a whole fan-out.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.Header().Set(traceHeader, j.TraceID())
	w.WriteHeader(http.StatusOK)

	ch := j.watch() // pre-poked: first loop iteration emits current state
	defer j.unwatch(ch)
	lastState := State(255)
	lastDone, lastTotal := -1, -1
	emit := func(event string, v interface{}) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
		v := j.Snapshot(time.Now())
		if v.Progress != nil && (v.Progress.Done != lastDone || v.Progress.Total != lastTotal) {
			lastDone, lastTotal = v.Progress.Done, v.Progress.Total
			emit("progress", v.Progress)
		}
		if v.State != lastState {
			lastState = v.State
			emit("state", map[string]interface{}{"id": v.ID, "state": v.State, "error": v.Error})
		}
		fl.Flush()
		if v.State.Terminal() {
			return
		}
	}
}

// jobOr404 resolves {id} or writes the 404.
func (s *Service) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: ErrUnknownJob.Error() + ": " + id})
		return nil, false
	}
	return j, true
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.Snapshot(time.Now()))
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	state := j.State()
	if !state.Terminal() {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "job " + j.ID() + " is " + state.String() + "; result not ready",
		})
		return
	}
	out, errMsg := j.Output()
	body := resultBody{ID: j.ID(), State: state, Text: out.Text, Error: errMsg}
	for name := range out.CSV {
		body.CSVTables = append(body.CSVTables, name)
	}
	sort.Strings(body.CSVTables)
	writeJSON(w, http.StatusOK, body)
}

// scenarioBody is one GET /scenarios entry (and the PUT response).
type scenarioBody struct {
	Name string `json:"name"`
	// Title is the document's heading.
	Title string `json:"title,omitempty"`
	// Experiment is the compiled identity: a registry name for
	// passthrough documents, "scenario/<hash>" otherwise.
	Experiment string `json:"experiment"`
	// Key is the result-cache key a submission of this scenario uses.
	Key string `json:"key"`
}

func scenarioView(st *StoredScenario) scenarioBody {
	return scenarioBody{
		Name:       st.Name,
		Title:      st.Compiled.Doc.Title,
		Experiment: st.Compiled.Experiment.Name,
		Key:        st.Compiled.CacheKey(),
	}
}

func (s *Service) handleScenarioPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading request body: " + err.Error()})
		return
	}
	st, err := s.PutScenario(r.PathValue("name"), body)
	switch {
	case err == nil:
	case errors.Is(err, ErrStoreFull):
		writeJSON(w, http.StatusInsufficientStorage, errorBody{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, scenarioView(st))
}

func (s *Service) handleScenarioGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.GetScenario(r.PathValue("name"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	// Serve the document as uploaded, byte for byte.
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(st.Raw)
}

func (s *Service) handleScenarioList(w http.ResponseWriter, _ *http.Request) {
	out := []scenarioBody{}
	for _, st := range s.Scenarios() {
		out = append(out, scenarioView(st))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleScenarioDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.DeleteScenario(name); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, err := s.Cancel(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot(time.Now()))
}
