package wdm

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
)

// Demand gives a switch pair a channel multiplicity: hot pairs can be
// allocated several dedicated wavelengths, trading ring capacity for
// lower oversubscription on specific rack pairs — the flexible n:k
// tradeoff of §3 taken per-pair.
type Demand struct {
	S, T int
	// Channels is the number of wavelengths to dedicate (>= 1).
	Channels int
}

// GreedyWeighted runs the longest-path-first greedy assignment with
// per-pair channel multiplicities. Pairs not listed in demands get one
// channel each; listed pairs get the requested count. Every allocated
// channel appears as its own Assignment (so a pair with multiplicity 3
// has three entries differing only in Channel/Ring).
func GreedyWeighted(m int, demands []Demand, rng *rand.Rand) (*Plan, error) {
	if m < 2 {
		return &Plan{M: m, Rings: 1}, nil
	}
	mult := make(map[[2]int]int)
	for _, d := range demands {
		s, t := d.S, d.T
		if s > t {
			s, t = t, s
		}
		if s < 0 || t >= m || s == t {
			return nil, fmt.Errorf("wdm: demand pair (%d,%d) invalid for M=%d", d.S, d.T, m)
		}
		if d.Channels < 1 {
			return nil, fmt.Errorf("wdm: demand pair (%d,%d) wants %d channels", d.S, d.T, d.Channels)
		}
		mult[[2]int{s, t}] = d.Channels
	}

	pairs := Pairs(m)
	dirs := shortestDirections(m)
	type arc struct {
		idx  int // into pairs/dirs
		len  int
		copy int
	}
	var arcs []arc
	for i, pr := range pairs {
		n := 1
		if c, ok := mult[[2]int{pr[0], pr[1]}]; ok {
			n = c
		}
		l := arcLen(m, pr[0], pr[1], dirs[i])
		for c := 0; c < n; c++ {
			arcs = append(arcs, arc{idx: i, len: l, copy: c})
		}
	}
	sort.SliceStable(arcs, func(i, j int) bool { return arcs[i].len > arcs[j].len })
	start := 0
	if rng != nil {
		start = rng.Intn(m)
	}
	sort.SliceStable(arcs, func(i, j int) bool {
		if arcs[i].len != arcs[j].len {
			return arcs[i].len > arcs[j].len
		}
		si := (pairs[arcs[i].idx][0] - start + m) % m
		sj := (pairs[arcs[j].idx][0] - start + m) % m
		return si < sj
	})

	var usage [][]bool
	assigned := make([]Assignment, 0, len(arcs))
	for _, a := range arcs {
		pr := pairs[a.idx]
		dir := dirs[a.idx]
		// For extra copies beyond the first, alternate direction so a
		// hot pair's channels split across both sides of the ring.
		if a.copy%2 == 1 {
			dir ^= 1
		}
		ch := -1
		for c := 0; c < len(usage); c++ {
			free := true
			arcLinks(m, pr[0], pr[1], dir, func(link int) {
				if usage[c][link] {
					free = false
				}
			})
			if free {
				ch = c
				break
			}
		}
		if ch == -1 {
			usage = append(usage, make([]bool, m))
			ch = len(usage) - 1
		}
		arcLinks(m, pr[0], pr[1], dir, func(link int) { usage[ch][link] = true })
		assigned = append(assigned, Assignment{S: pr[0], T: pr[1], Dir: dir, Channel: ch})
	}
	return &Plan{M: m, Channels: len(usage), Rings: 1, Assignments: assigned}, nil
}

// ValidateWeighted checks a weighted plan: every pair has at least one
// channel, listed pairs have exactly their multiplicity, and no
// wavelength is reused on a fiber link of the same ring.
func (p *Plan) ValidateWeighted(demands []Demand) error {
	want := make(map[[2]int]int)
	for s := 0; s < p.M; s++ {
		for t := s + 1; t < p.M; t++ {
			want[[2]int{s, t}] = 1
		}
	}
	for _, d := range demands {
		s, t := d.S, d.T
		if s > t {
			s, t = t, s
		}
		want[[2]int{s, t}] = d.Channels
	}
	got := make(map[[2]int]int)
	rings := p.Rings
	if rings == 0 {
		rings = 1
	}
	type slot struct{ ring, link, ch int }
	used := make(map[slot]bool)
	for _, a := range p.Assignments {
		got[[2]int{a.S, a.T}]++
		conflict := false
		arcLinks(p.M, a.S, a.T, a.Dir, func(link int) {
			s := slot{a.Ring, link, a.Channel}
			if used[s] {
				conflict = true
			}
			used[s] = true
		})
		if conflict {
			return fmt.Errorf("wdm: channel %d reused on a fiber link (pair %d-%d)", a.Channel, a.S, a.T)
		}
	}
	for pr, w := range want {
		if got[pr] != w {
			return fmt.Errorf("wdm: pair (%d,%d) has %d channels, want %d", pr[0], pr[1], got[pr], w)
		}
	}
	return nil
}

// planJSON is the serialized form of a Plan.
type planJSON struct {
	M           int          `json:"ringSize"`
	Channels    int          `json:"channels"`
	Rings       int          `json:"physicalRings"`
	Assignments []Assignment `json:"assignments"`
}

// MarshalJSON serializes the plan; wavelength planning is a one-time,
// design-time activity (§3.1.1: performed "by the device manufacturer
// at the factory"), so plans are meant to be stored and shipped.
func (p *Plan) MarshalJSON() ([]byte, error) {
	return json.Marshal(planJSON{M: p.M, Channels: p.Channels, Rings: p.Rings, Assignments: p.Assignments})
}

// UnmarshalJSON deserializes and validates structural bounds; call
// Validate for the full §3.1 invariants.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var pj planJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	if pj.M < 0 || pj.Channels < 0 || pj.Rings < 0 {
		return fmt.Errorf("wdm: negative fields in serialized plan")
	}
	p.M, p.Channels, p.Rings, p.Assignments = pj.M, pj.Channels, pj.Rings, pj.Assignments
	return nil
}
