package wdm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOptimalChannelsFormula(t *testing.T) {
	cases := []struct{ m, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1},
		{4, 3}, // M=4 provably needs 3, not the load bound 2
		{5, 3}, {6, 5}, {7, 6},
		{8, 9}, // M=0 mod 4: M^2/8+1
		{9, 10}, {10, 13},
		// Odd M=2k+1: k(k+1)/2. M=35 (k=17): 153 <= 160, hence the
		// paper's maximum ring size of 35 (§3.1.1).
		{35, 153},
		{37, 171}, // first odd size over the 160-channel budget
	}
	for _, c := range cases {
		if got := OptimalChannels(c.m); got != c.want {
			t.Errorf("OptimalChannels(%d) = %d, want %d", c.m, got, c.want)
		}
		if lb := LowerBound(c.m); lb > c.want {
			t.Errorf("LowerBound(%d) = %d exceeds optimum %d", c.m, lb, c.want)
		}
	}
}

func TestMaxRingSize(t *testing.T) {
	// The paper: "the maximum ring size is 35 since current fiber cables
	// can only support 160 channels" (§3.1.1).
	if got := MaxRingSize(MaxChannelsPerFiber); got != 35 {
		t.Errorf("MaxRingSize(160) = %d, want 35", got)
	}
	if got := MaxRingSize(CommodityMuxChannels); got >= 35 {
		t.Errorf("MaxRingSize(80) = %d, want < 35", got)
	}
}

func TestGreedyValidAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for m := 2; m <= 41; m++ {
		p := Greedy(m, rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if p.Channels < LowerBound(m) {
			t.Errorf("m=%d: greedy used %d channels, below lower bound %d (impossible)",
				m, p.Channels, LowerBound(m))
		}
		// The paper's Figure 5 shows greedy within a small factor of
		// optimal; allow 30% slack.
		if opt := OptimalChannels(m); p.Channels > opt+opt/3+1 {
			t.Errorf("m=%d: greedy used %d channels, optimum %d: worse than Figure 5 suggests",
				m, p.Channels, opt)
		}
	}
}

func TestGreedyDeterministicWithNilRand(t *testing.T) {
	a, b := Greedy(9, nil), Greedy(9, nil)
	if a.Channels != b.Channels || len(a.Assignments) != len(b.Assignments) {
		t.Fatal("nil-rand greedy not deterministic")
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

func TestGreedyTrivialRings(t *testing.T) {
	for _, m := range []int{0, 1} {
		p := Greedy(m, nil)
		if p.Channels != 0 || len(p.Assignments) != 0 {
			t.Errorf("m=%d: got %d channels, %d assignments", m, p.Channels, len(p.Assignments))
		}
		if err := p.Validate(); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
	p := Greedy(2, nil)
	if p.Channels != 1 || len(p.Assignments) != 1 {
		t.Errorf("m=2: got %d channels %d assignments, want 1/1", p.Channels, len(p.Assignments))
	}
}

func TestOptimalMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for m := 2; m <= 41; m++ {
		p := Optimal(m, rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		opt := OptimalChannels(m)
		if p.Channels < opt {
			t.Fatalf("m=%d: colouring used %d channels, below proven optimum %d (impossible)",
				m, p.Channels, opt)
		}
		// The colouring search reliably reaches the proven optimum on
		// small and mid-sized rings.
		if m <= 13 && p.Channels != opt {
			t.Errorf("m=%d: optimal search = %d channels, want %d", m, p.Channels, opt)
		}
		// Larger rings: like the paper's own greedy deployment (137 vs
		// 136 at M=33), the search may end a few channels above the
		// closed-form optimum.
		if p.Channels > opt+8 {
			t.Errorf("m=%d: optimal search = %d channels, formula %d: gap too large",
				m, p.Channels, opt)
		}
	}
}

func TestExactBranchBoundSmall(t *testing.T) {
	// m=10 covers the M≡2 (mod 4) case of the closed form (13 channels)
	// and m=8 the M≡0 (mod 4) case (9 channels).
	for m := 2; m <= 10; m++ {
		p, err := ExactBranchBound(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("m=%d: invalid plan: %v", m, err)
		}
		if p.Channels != OptimalChannels(m) {
			t.Errorf("m=%d: exact = %d, closed form %d (must agree)",
				m, p.Channels, OptimalChannels(m))
		}
	}
	if _, err := ExactBranchBound(20); err == nil {
		t.Error("m=20 accepted by exact solver")
	}
}

func TestExactAgreesWithOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for m := 3; m <= 8; m++ {
		exact, err := ExactBranchBound(m)
		if err != nil {
			t.Fatal(err)
		}
		opt := Optimal(m, rng)
		if exact.Channels != opt.Channels {
			t.Errorf("m=%d: exact %d != optimal-colouring %d", m, exact.Channels, opt.Channels)
		}
	}
}

func TestPaper33SwitchExample(t *testing.T) {
	// §3.5: "a Quartz network with 33 switches requires 137 channels" —
	// that is the paper's greedy/ILP result; the true optimum is
	// 16*17/2 = 136 and greedy lands within a few channels.
	rng := rand.New(rand.NewSource(14))
	if OptimalChannels(33) != 136 {
		t.Errorf("OptimalChannels(33) = %d, want 136", OptimalChannels(33))
	}
	opt := Optimal(33, rng)
	if opt.Channels < 136 || opt.Channels > 141 {
		t.Errorf("optimal search(33) = %d channels, want within [136,141]", opt.Channels)
	}
	g := Greedy(33, rng)
	if g.Channels < 136 || g.Channels > 145 {
		t.Errorf("greedy(33) = %d channels, want within [136,145] (paper: 137)", g.Channels)
	}
	// Either way, more than one 80-channel mux is needed, but two
	// suffice — the paper's two-ring configuration.
	if g.Channels <= CommodityMuxChannels {
		t.Errorf("greedy(33) = %d fits one 80-channel mux; paper needs two", g.Channels)
	}
	if g.Channels > 2*CommodityMuxChannels {
		t.Errorf("greedy(33) = %d exceeds two muxes", g.Channels)
	}
}

func TestSplitAcrossRings(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := Optimal(33, rng) // 136 channels
	split, err := SplitAcrossRings(p, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if split.Rings != 2 {
		t.Errorf("Rings = %d, want 2", split.Rings)
	}
	// Per-ring channel indices must stay within the fiber budget:
	// channels dealt round-robin means ring r sees channels r, r+2, ...
	counts := map[int]int{}
	for _, a := range split.Assignments {
		counts[a.Ring]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("unbalanced split: %v", counts)
	}
	// Original plan untouched.
	for _, a := range p.Assignments {
		if a.Ring != 0 {
			t.Fatal("SplitAcrossRings modified its input")
		}
	}
}

func TestSplitAcrossRingsErrors(t *testing.T) {
	p := Greedy(12, nil)
	if _, err := SplitAcrossRings(p, 0, 80); err == nil {
		t.Error("0 rings accepted")
	}
	if _, err := SplitAcrossRings(p, 1, 5); err == nil {
		t.Error("overfull fiber accepted")
	}
}

func TestValidateCatchesConflicts(t *testing.T) {
	// Hand-build a broken plan: two pairs share channel 0 on link 0.
	p := &Plan{M: 4, Channels: 1, Rings: 1, Assignments: []Assignment{
		{S: 0, T: 1, Dir: Clockwise, Channel: 0},
		{S: 0, T: 2, Dir: Clockwise, Channel: 0},
	}}
	if err := p.Validate(); err == nil {
		t.Error("conflicting plan validated")
	}
	// Missing pairs.
	p2 := &Plan{M: 3, Channels: 1, Rings: 1, Assignments: []Assignment{
		{S: 0, T: 1, Dir: Clockwise, Channel: 0},
	}}
	if err := p2.Validate(); err == nil {
		t.Error("incomplete plan validated")
	}
	// Duplicate pair.
	p3 := &Plan{M: 3, Channels: 2, Rings: 1, Assignments: []Assignment{
		{S: 0, T: 1, Dir: Clockwise, Channel: 0},
		{S: 0, T: 1, Dir: CounterClockwise, Channel: 1},
		{S: 1, T: 2, Dir: Clockwise, Channel: 1},
	}}
	if err := p3.Validate(); err == nil {
		t.Error("duplicate pair validated")
	}
	// Channel out of range.
	p4 := &Plan{M: 2, Channels: 1, Rings: 1, Assignments: []Assignment{
		{S: 0, T: 1, Dir: Clockwise, Channel: 3},
	}}
	if err := p4.Validate(); err == nil {
		t.Error("out-of-range channel validated")
	}
}

func TestChannelFor(t *testing.T) {
	p := Greedy(6, nil)
	a, ok := p.ChannelFor(4, 1) // reversed order should still work
	if !ok {
		t.Fatal("pair (1,4) not found")
	}
	if a.S != 1 || a.T != 4 {
		t.Errorf("got pair (%d,%d), want (1,4)", a.S, a.T)
	}
	if _, ok := p.ChannelFor(0, 0); ok {
		t.Error("self pair found")
	}
}

func TestMaxLinkLoad(t *testing.T) {
	p := Optimal(9, rand.New(rand.NewSource(16)))
	// With an optimal plan, max link load equals the channel count.
	if got := p.MaxLinkLoad(); got != p.Channels {
		t.Errorf("MaxLinkLoad = %d, channels = %d; optimal plan should be load-tight", got, p.Channels)
	}
}

func TestArcHelpers(t *testing.T) {
	// Clockwise 1->3 on M=5 covers links 1,2.
	var links []int
	arcLinks(5, 1, 3, Clockwise, func(l int) { links = append(links, l) })
	if len(links) != 2 || links[0] != 1 || links[1] != 2 {
		t.Errorf("cw arc links = %v, want [1 2]", links)
	}
	// CounterClockwise 1->3 on M=5 covers links 0,4,3.
	links = nil
	arcLinks(5, 1, 3, CounterClockwise, func(l int) { links = append(links, l) })
	if len(links) != 3 || links[0] != 0 || links[1] != 4 || links[2] != 3 {
		t.Errorf("ccw arc links = %v, want [0 4 3]", links)
	}
	if arcLen(5, 1, 3, Clockwise) != 2 || arcLen(5, 1, 3, CounterClockwise) != 3 {
		t.Error("arcLen wrong")
	}
	if Clockwise.String() != "cw" || CounterClockwise.String() != "ccw" {
		t.Error("Direction strings wrong")
	}
}

// TestGreedyPlanProperty property-checks that for any ring size and
// seed, the greedy plan satisfies both §3.1 invariants.
func TestGreedyPlanProperty(t *testing.T) {
	f := func(mm uint8, seed int64) bool {
		m := int(mm%30) + 2
		p := Greedy(m, rand.New(rand.NewSource(seed)))
		return p.Validate() == nil && p.Channels >= OptimalChannels(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSplitPlanProperty property-checks splitting across 1-4 rings.
func TestSplitPlanProperty(t *testing.T) {
	f := func(mm, rr uint8) bool {
		m := int(mm%20) + 4
		rings := int(rr%4) + 1
		p := Greedy(m, nil)
		per := (p.Channels + rings - 1) / rings
		split, err := SplitAcrossRings(p, rings, per)
		if err != nil {
			return false
		}
		return split.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLinkLoadsAndChannelMap(t *testing.T) {
	p := Greedy(6, nil)
	loads := p.LinkLoads()
	if len(loads) != 1 || len(loads[0]) != 6 {
		t.Fatalf("loads shape %dx%d, want 1x6", len(loads), len(loads[0]))
	}
	total := 0
	maxLoad := 0
	for _, n := range loads[0] {
		total += n
		if n > maxLoad {
			maxLoad = n
		}
	}
	// Sum of link loads equals the sum of arc lengths.
	want := 0
	for _, a := range p.Assignments {
		want += a.Hops(6)
	}
	if total != want {
		t.Errorf("total load = %d, want %d", total, want)
	}
	if maxLoad != p.MaxLinkLoad() {
		t.Errorf("max from LinkLoads = %d, MaxLinkLoad = %d", maxLoad, p.MaxLinkLoad())
	}
	out := p.RenderChannelMap()
	if !strings.Contains(out, "occupancy") || !strings.Contains(out, "per-link load") {
		t.Errorf("map missing sections:\n%s", out)
	}
	// Every channel row appears.
	if got := strings.Count(out, "λ"); got != p.Channels {
		t.Errorf("map shows %d channels, want %d", got, p.Channels)
	}
	// Large rings skip the grid but keep the bars.
	big := Greedy(20, nil)
	bigOut := big.RenderChannelMap()
	if strings.Contains(bigOut, "occupancy") {
		t.Error("20-ring map should skip the occupancy grid")
	}
	if !strings.Contains(bigOut, "per-link load") {
		t.Error("20-ring map missing load bars")
	}
}
