// Package wdm solves the Quartz wavelength (channel) assignment problem
// of §3.1: give every pair of switches on a physical ring of size M a
// dedicated wavelength such that no wavelength is used twice on any
// fiber link, minimizing the number of distinct wavelengths.
//
// Three solvers are provided:
//
//   - Greedy: the paper's longest-path-first heuristic (§3.1.1).
//   - ExactBranchBound: an exact solver equivalent to the paper's ILP,
//     practical for small rings.
//   - Optimal: an iterated-greedy conflict-graph colouring search that
//     targets OptimalChannels, the closed-form proven minimum (the
//     value the paper's ILP computes).
//
// Ring conventions: nodes are 0..M-1 around the ring; fiber link i joins
// node i and node (i+1) mod M. A clockwise arc starting at node s with
// length L covers links s, s+1, ..., s+L-1 (mod M).
package wdm

import (
	"bytes"
	"fmt"
	"strings"
)

// Direction of travel around the ring.
type Direction uint8

// Arc directions.
const (
	Clockwise Direction = iota
	CounterClockwise
)

func (d Direction) String() string {
	if d == Clockwise {
		return "cw"
	}
	return "ccw"
}

// Assignment dedicates one wavelength channel to one switch pair.
type Assignment struct {
	// S, T are the pair's endpoints, S < T.
	S, T int
	// Dir is the direction of the arc from S to T.
	Dir Direction
	// Channel is the wavelength index, 0-based.
	Channel int
	// Ring is the physical fiber ring carrying this channel (0 unless
	// the plan has been split across multiple rings; §3.5).
	Ring int
}

// Plan is a complete channel assignment for a ring of M switches.
type Plan struct {
	// M is the ring size (number of switches).
	M int
	// Channels is the number of distinct wavelengths used per ring.
	Channels int
	// Rings is the number of physical fiber rings (1 unless split).
	Rings int
	// Assignments has one entry per unordered switch pair.
	Assignments []Assignment
}

// arcLinks calls fn for each fiber link index covered by the arc from s
// to t in direction dir on a ring of size m.
func arcLinks(m, s, t int, dir Direction, fn func(link int)) {
	switch dir {
	case Clockwise:
		for i := s; i != t; i = (i + 1) % m {
			fn(i)
		}
	case CounterClockwise:
		for i := s; i != t; i = (i - 1 + m) % m {
			fn((i - 1 + m) % m)
		}
	}
}

// arcLen returns the number of links in the arc from s to t going dir.
func arcLen(m, s, t int, dir Direction) int {
	if dir == Clockwise {
		return (t - s + m) % m
	}
	return (s - t + m) % m
}

// LowerBound returns a simple link-load lower bound on the number of
// wavelengths for all-pairs traffic on a ring of M switches: the total
// fiber-link demand of shortest-arc routing divided by the M links. It
// is tight for odd M and one or two below the true optimum for even M
// (see OptimalChannels).
func LowerBound(m int) int {
	if m < 2 {
		return 0
	}
	k := m / 2
	if m%2 == 1 {
		return k * (k + 1) / 2
	}
	// Forced (non-diametral) load per link plus the averaged diametral
	// load, rounded up.
	return k*(k-1)/2 + (k+1)/2
}

// OptimalChannels returns the provably minimum number of wavelengths for
// all-pairs communication on a ring of M switches — the value the
// paper's ILP computes. The closed form is the classical all-to-all
// ring RWA result:
//
//	M odd:         (M^2-1)/8
//	M ≡ 2 (mod 4): (M^2+4)/8
//	M ≡ 0 (mod 4): M^2/8 + 1
//
// The even cases exceed the naive load bound because the M/2 diametral
// pairs cannot be split without stacking three deep somewhere (for
// example, M=4 provably needs 3 channels, not 2). ExactBranchBound
// verifies this formula for every M it can reach, and TestOptimal*
// cross-checks the colouring solver against it.
func OptimalChannels(m int) int {
	if m < 2 {
		return 0
	}
	switch {
	case m%2 == 1:
		return (m*m - 1) / 8
	case m%4 == 2:
		return (m*m + 4) / 8
	default:
		return m*m/8 + 1
	}
}

// Pairs returns all unordered pairs of a ring of size m in (s,t) order.
func Pairs(m int) [][2]int {
	var out [][2]int
	for s := 0; s < m; s++ {
		for t := s + 1; t < m; t++ {
			out = append(out, [2]int{s, t})
		}
	}
	return out
}

// Validate checks the two invariants of §3.1: (1) every unordered pair
// has exactly one assigned channel along one arc, and (2) on every fiber
// link of every ring, a wavelength is used at most once.
func (p *Plan) Validate() error {
	if p.M < 2 {
		if len(p.Assignments) != 0 {
			return fmt.Errorf("wdm: ring of %d has %d assignments", p.M, len(p.Assignments))
		}
		return nil
	}
	rings := p.Rings
	if rings == 0 {
		rings = 1
	}
	seen := make(map[[2]int]bool, len(p.Assignments))
	type slot struct{ ring, link, ch int }
	used := make(map[slot][2]int, len(p.Assignments)*p.M/4)
	for _, a := range p.Assignments {
		if a.S < 0 || a.T >= p.M || a.S >= a.T {
			return fmt.Errorf("wdm: bad pair (%d,%d) for M=%d", a.S, a.T, p.M)
		}
		if a.Channel < 0 || a.Channel >= p.Channels {
			return fmt.Errorf("wdm: pair (%d,%d) uses channel %d outside [0,%d)", a.S, a.T, a.Channel, p.Channels)
		}
		if a.Ring < 0 || a.Ring >= rings {
			return fmt.Errorf("wdm: pair (%d,%d) on ring %d outside [0,%d)", a.S, a.T, a.Ring, rings)
		}
		key := [2]int{a.S, a.T}
		if seen[key] {
			return fmt.Errorf("wdm: pair (%d,%d) assigned twice", a.S, a.T)
		}
		seen[key] = true
		var conflict error
		arcLinks(p.M, a.S, a.T, a.Dir, func(link int) {
			s := slot{a.Ring, link, a.Channel}
			if other, clash := used[s]; clash && conflict == nil {
				conflict = fmt.Errorf("wdm: channel %d reused on ring %d link %d by (%d,%d) and (%d,%d)",
					a.Channel, a.Ring, link, other[0], other[1], a.S, a.T)
			}
			used[s] = key
		})
		if conflict != nil {
			return conflict
		}
	}
	if want := p.M * (p.M - 1) / 2; len(seen) != want {
		return fmt.Errorf("wdm: %d pairs assigned, want %d", len(seen), want)
	}
	return nil
}

// MaxLinkLoad returns the maximum number of channels traversing any one
// fiber link in the plan (per ring).
func (p *Plan) MaxLinkLoad() int {
	rings := p.Rings
	if rings == 0 {
		rings = 1
	}
	load := make([][]int, rings)
	for r := range load {
		load[r] = make([]int, p.M)
	}
	max := 0
	for _, a := range p.Assignments {
		arcLinks(p.M, a.S, a.T, a.Dir, func(link int) {
			load[a.Ring][link]++
			if load[a.Ring][link] > max {
				max = load[a.Ring][link]
			}
		})
	}
	return max
}

// ChannelFor returns the assignment covering the unordered pair (s,t).
func (p *Plan) ChannelFor(s, t int) (Assignment, bool) {
	if s > t {
		s, t = t, s
	}
	for _, a := range p.Assignments {
		if a.S == s && a.T == t {
			return a, true
		}
	}
	return Assignment{}, false
}

// shortestDirections routes every pair along its shorter arc, breaking
// diametral ties (even M) by alternating directions so the load stays
// balanced. It returns the per-pair directions in Pairs(m) order.
func shortestDirections(m int) []Direction {
	pairs := Pairs(m)
	dirs := make([]Direction, len(pairs))
	diametral := 0
	for i, pr := range pairs {
		cw := arcLen(m, pr[0], pr[1], Clockwise)
		ccw := arcLen(m, pr[0], pr[1], CounterClockwise)
		switch {
		case cw < ccw:
			dirs[i] = Clockwise
		case ccw < cw:
			dirs[i] = CounterClockwise
		default:
			// Diametral pair: alternate to balance the two half-rings.
			if diametral%2 == 0 {
				dirs[i] = Clockwise
			} else {
				dirs[i] = CounterClockwise
			}
			diametral++
		}
	}
	return dirs
}

// Hops returns the number of ring hops (fiber segments) the assignment's
// arc spans on a ring of size m.
func (a Assignment) Hops(m int) int {
	return arcLen(m, a.S, a.T, a.Dir)
}

// LinkLoads returns, per physical ring, the number of channels crossing
// each fiber link.
func (p *Plan) LinkLoads() [][]int {
	rings := p.Rings
	if rings == 0 {
		rings = 1
	}
	load := make([][]int, rings)
	for r := range load {
		load[r] = make([]int, p.M)
	}
	for _, a := range p.Assignments {
		arcLinks(p.M, a.S, a.T, a.Dir, func(l int) { load[a.Ring][l]++ })
	}
	return load
}

// RenderChannelMap draws the plan as text: for rings of up to 16
// switches, a wavelength-by-link occupancy grid ('#' = channel crosses
// the link); for all sizes, per-link load bars. Intended for the
// wavelengths planning CLI.
func (p *Plan) RenderChannelMap() string {
	var b strings.Builder
	rings := p.Rings
	if rings == 0 {
		rings = 1
	}
	if p.M <= 16 {
		for r := 0; r < rings; r++ {
			fmt.Fprintf(&b, "ring %d occupancy (rows: wavelengths, cols: fiber links 0..%d):\n", r, p.M-1)
			grid := make([][]byte, p.Channels)
			for ch := range grid {
				grid[ch] = bytes.Repeat([]byte{'.'}, p.M)
			}
			for _, a := range p.Assignments {
				if a.Ring != r {
					continue
				}
				arcLinks(p.M, a.S, a.T, a.Dir, func(l int) { grid[a.Channel][l] = '#' })
			}
			for ch, row := range grid {
				fmt.Fprintf(&b, "  λ%-3d %s\n", ch, row)
			}
		}
	}
	loads := p.LinkLoads()
	for r, row := range loads {
		fmt.Fprintf(&b, "ring %d per-link load:\n", r)
		for l, n := range row {
			fmt.Fprintf(&b, "  link %2d-%-2d %3d %s\n", l, (l+1)%p.M, n, strings.Repeat("*", n))
		}
	}
	return b.String()
}
