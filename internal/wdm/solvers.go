package wdm

import (
	"fmt"
	"math/rand"
	"sort"
)

// Greedy runs the paper's greedy channel assignment (§3.1.1): paths are
// grouped by length and processed longest-first (long paths are the most
// constrained, so assigning them early avoids fragmenting the channel
// space); within a length group, assignment starts from a random ring
// location. Each path takes the lowest-numbered channel free on all of
// its links. rng may be nil for a deterministic start location.
func Greedy(m int, rng *rand.Rand) *Plan {
	if m < 2 {
		return &Plan{M: m, Rings: 1}
	}
	pairs := Pairs(m)
	dirs := shortestDirections(m)
	type path struct {
		idx int // into pairs/dirs
		len int
	}
	paths := make([]path, len(pairs))
	for i, pr := range pairs {
		paths[i] = path{idx: i, len: arcLen(m, pr[0], pr[1], dirs[i])}
	}
	// Longest first; within a length, rotate the start location.
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].len > paths[j].len })
	start := 0
	if rng != nil {
		start = rng.Intn(m)
	}
	sort.SliceStable(paths, func(i, j int) bool {
		if paths[i].len != paths[j].len {
			return paths[i].len > paths[j].len
		}
		si := (pairs[paths[i].idx][0] - start + m) % m
		sj := (pairs[paths[j].idx][0] - start + m) % m
		return si < sj
	})

	// usage[ch] is a bitmask-ish bool slice of links occupied by channel ch.
	var usage [][]bool
	assigned := make([]Assignment, 0, len(pairs))
	for _, p := range paths {
		pr := pairs[p.idx]
		dir := dirs[p.idx]
		ch := -1
		for c := 0; c < len(usage); c++ {
			free := true
			arcLinks(m, pr[0], pr[1], dir, func(link int) {
				if usage[c][link] {
					free = false
				}
			})
			if free {
				ch = c
				break
			}
		}
		if ch == -1 {
			usage = append(usage, make([]bool, m))
			ch = len(usage) - 1
		}
		arcLinks(m, pr[0], pr[1], dir, func(link int) { usage[ch][link] = true })
		assigned = append(assigned, Assignment{S: pr[0], T: pr[1], Dir: dir, Channel: ch})
	}
	return &Plan{M: m, Channels: len(usage), Rings: 1, Assignments: assigned}
}

// Optimal searches for a minimum-channel plan by colouring the
// circular-arc conflict graph (arcs conflict when they share a fiber
// link) using iterated greedy colouring (Culberson-style: re-running
// first-fit with arcs grouped by their previous colour classes never
// increases the colour count, and permuting the classes explores the
// plateau). For even rings it also re-splits the diametral pairs.
//
// The returned plan always satisfies both §3.1 invariants and uses at
// least OptimalChannels(m) channels; the search stops as soon as it
// reaches that proven minimum, which it reliably does for small and
// mid-sized rings (and is within a few channels elsewhere — mirroring
// the paper's own deployment of the greedy plan: §3.5 quotes 137
// channels for M=33 where the true optimum is 136). Use
// OptimalChannels for the exact minimum count itself.
func Optimal(m int, rng *rand.Rand) *Plan {
	if m < 2 {
		return &Plan{M: m, Rings: 1}
	}
	if m > 64 {
		// One uint64 link mask per channel; rings beyond 64 switches are
		// far past the 35-switch fiber limit anyway.
		panic(fmt.Sprintf("wdm: Optimal supports m <= 64, got %d", m))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	target := OptimalChannels(m)
	pairs := Pairs(m)

	best := Greedy(m, rng)
	if best.Channels == target {
		return best
	}

	// Arc bitmasks for the current direction assignment.
	masks := make([]uint64, len(pairs))
	lens := make([]int, len(pairs))
	buildMasks := func(dirs []Direction) {
		for i, pr := range pairs {
			var mask uint64
			arcLinks(m, pr[0], pr[1], dirs[i], func(l int) { mask |= 1 << uint(l) })
			masks[i] = mask
			lens[i] = arcLen(m, pr[0], pr[1], dirs[i])
		}
	}

	// firstFit colours arcs in the given order, lowest free channel
	// first, and returns the per-arc colours and the channel count.
	firstFit := func(order []int) ([]int, int) {
		usage := make([]uint64, 0, best.Channels)
		color := make([]int, len(pairs))
		for _, i := range order {
			c := 0
			for ; c < len(usage); c++ {
				if usage[c]&masks[i] == 0 {
					break
				}
			}
			if c == len(usage) {
				usage = append(usage, 0)
			}
			usage[c] |= masks[i]
			color[i] = c
		}
		return color, len(usage)
	}

	record := func(dirs []Direction, color []int, channels int) *Plan {
		plan := &Plan{M: m, Channels: channels, Rings: 1}
		for i, pr := range pairs {
			plan.Assignments = append(plan.Assignments, Assignment{
				S: pr[0], T: pr[1], Dir: dirs[i], Channel: color[i],
			})
		}
		return plan
	}

	const outerTries = 8
	const innerIters = 1200
	for outer := 0; outer < outerTries && best.Channels > target; outer++ {
		dirs := shortestDirections(m)
		if m%2 == 0 && outer > 0 {
			// Re-split the diametral pairs randomly: the conflict graph
			// itself depends on this choice.
			for i, pr := range pairs {
				if arcLen(m, pr[0], pr[1], Clockwise) == m/2 && rng.Intn(2) == 0 {
					dirs[i] ^= 1
				}
			}
		}
		buildMasks(dirs)

		// Initial order: longest arcs first, random tie-break.
		order := make([]int, len(pairs))
		for i := range order {
			order[i] = i
		}
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		sort.SliceStable(order, func(a, b int) bool { return lens[order[a]] > lens[order[b]] })

		color, channels := firstFit(order)
		if channels < best.Channels {
			best = record(dirs, color, channels)
			if channels == target {
				break
			}
		}
		for iter := 0; iter < innerIters; iter++ {
			// Group arcs by colour class and permute the classes.
			classes := make([][]int, channels)
			for i, c := range color {
				classes[c] = append(classes[c], i)
			}
			switch iter % 3 {
			case 0: // random class order
				rng.Shuffle(len(classes), func(a, b int) { classes[a], classes[b] = classes[b], classes[a] })
			case 1: // largest classes first
				sort.SliceStable(classes, func(a, b int) bool { return len(classes[a]) > len(classes[b]) })
			case 2: // reverse
				for a, b := 0, len(classes)-1; a < b; a, b = a+1, b-1 {
					classes[a], classes[b] = classes[b], classes[a]
				}
			}
			order = order[:0]
			for _, cl := range classes {
				order = append(order, cl...)
			}
			color, channels = firstFit(order)
			if channels < best.Channels {
				best = record(dirs, color, channels)
				if channels == target {
					return best
				}
			}
		}
	}
	return best
}

// ExactBranchBound finds the true minimum number of channels by
// branch-and-bound over direction and channel choices — the same search
// space as the paper's ILP (Eqs. 1-6). Exponential: limited to m <= 10
// (45 pairs), which is enough to verify OptimalChannels on all three
// residue classes of the closed form; larger rings should use Optimal.
func ExactBranchBound(m int) (*Plan, error) {
	if m < 2 {
		return &Plan{M: m, Rings: 1}, nil
	}
	if m > 10 {
		return nil, fmt.Errorf("wdm: exact solver limited to m<=10, got %d (use Optimal)", m)
	}
	pairs := Pairs(m)
	// Order pairs by decreasing shortest-arc length (most constrained
	// first) for better pruning.
	ord := make([]int, len(pairs))
	for i := range ord {
		ord[i] = i
	}
	shortLen := func(i int) int {
		cw := arcLen(m, pairs[i][0], pairs[i][1], Clockwise)
		if c2 := arcLen(m, pairs[i][0], pairs[i][1], CounterClockwise); c2 < cw {
			return c2
		}
		return cw
	}
	sort.SliceStable(ord, func(a, b int) bool { return shortLen(ord[a]) > shortLen(ord[b]) })

	// Start from the greedy solution as the incumbent upper bound.
	incumbent := Greedy(m, nil)
	bestChannels := incumbent.Channels
	lb := LowerBound(m)
	if bestChannels == lb {
		return incumbent, nil
	}
	bestAssign := append([]Assignment(nil), incumbent.Assignments...)

	// usage[ch][link] occupancy; assign[k] is the choice for ord[k].
	usage := make([][]bool, 0, bestChannels)
	assign := make([]Assignment, len(pairs))

	var rec func(k, used int)
	rec = func(k, used int) {
		if used >= bestChannels {
			return
		}
		if k == len(pairs) {
			bestChannels = used
			copy(bestAssign, assign)
			return
		}
		i := ord[k]
		s, t := pairs[i][0], pairs[i][1]
		// Try the shorter arc first (better incumbent sooner), but do
		// explore both directions: the ILP's Eq. 2 allows either.
		dirOrder := []Direction{Clockwise, CounterClockwise}
		if arcLen(m, s, t, CounterClockwise) < arcLen(m, s, t, Clockwise) {
			dirOrder = []Direction{CounterClockwise, Clockwise}
		}
		for _, dir := range dirOrder {
			tryChannels := used + 1
			if tryChannels > bestChannels-1 {
				tryChannels = bestChannels - 1
			}
			for c := 0; c < tryChannels && c <= used; c++ {
				if c == used {
					usage = append(usage, make([]bool, m))
				}
				free := true
				arcLinks(m, s, t, dir, func(l int) {
					if usage[c][l] {
						free = false
					}
				})
				if free {
					arcLinks(m, s, t, dir, func(l int) { usage[c][l] = true })
					assign[k] = Assignment{S: s, T: t, Dir: dir, Channel: c}
					next := used
					if c == used {
						next = used + 1
					}
					rec(k+1, next)
					arcLinks(m, s, t, dir, func(l int) { usage[c][l] = false })
				}
				if c == used {
					usage = usage[:used]
				}
				if bestChannels == lb {
					return
				}
			}
		}
	}
	rec(0, 0)
	plan := &Plan{M: m, Channels: bestChannels, Rings: 1, Assignments: bestAssign}
	return plan, nil
}

// MaxChannelsPerFiber is the per-fiber channel budget the paper assumes:
// current fiber supports 160 channels at 10 Gb/s (§3.1, Figure 5).
const MaxChannelsPerFiber = 160

// CommodityMuxChannels is the channel count of a commodity DWDM
// mux/demux (§3.1: "commodity WDMs support about 80 channels").
const CommodityMuxChannels = 80

// MaxRingSizeSingleFiber is the largest ring a single 160-channel fiber
// supports: 35 switches (Figure 5's conclusion).
const MaxRingSizeSingleFiber = 35

// MaxRingSize returns the largest ring size whose optimal channel count
// fits within the given per-fiber channel budget. With the paper's
// 160-channel budget this is 35.
func MaxRingSize(channelBudget int) int {
	m := 2
	for OptimalChannels(m+1) <= channelBudget {
		m++
	}
	return m
}

// SplitAcrossRings distributes a plan's channels over numRings physical
// fiber rings, each carrying at most perFiber channels (§3.5: a 33-switch
// Quartz needs 137 channels, hence two 80-channel muxes forming two
// rings). Channels are dealt round-robin so failures of one fiber spread
// across switch pairs. The input plan is not modified.
func SplitAcrossRings(p *Plan, numRings, perFiber int) (*Plan, error) {
	if numRings < 1 {
		return nil, fmt.Errorf("wdm: numRings %d < 1", numRings)
	}
	if p.Channels > numRings*perFiber {
		return nil, fmt.Errorf("wdm: %d channels do not fit in %d rings of %d channels",
			p.Channels, numRings, perFiber)
	}
	out := &Plan{M: p.M, Channels: p.Channels, Rings: numRings}
	out.Assignments = make([]Assignment, len(p.Assignments))
	for i, a := range p.Assignments {
		a.Ring = a.Channel % numRings
		out.Assignments[i] = a
	}
	return out, nil
}
