package wdm

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyWeightedMatchesPlainWhenUniform(t *testing.T) {
	p, err := GreedyWeighted(12, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := Greedy(12, nil)
	if p.Channels != plain.Channels {
		t.Errorf("uniform weighted = %d channels, plain greedy = %d", p.Channels, plain.Channels)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGreedyWeightedHotPair(t *testing.T) {
	demands := []Demand{{S: 0, T: 6, Channels: 4}}
	p, err := GreedyWeighted(12, demands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateWeighted(demands); err != nil {
		t.Fatal(err)
	}
	// 4 channels for (0,6), one for everyone else.
	count := 0
	cw, ccw := 0, 0
	for _, a := range p.Assignments {
		if a.S == 0 && a.T == 6 {
			count++
			if a.Dir == Clockwise {
				cw++
			} else {
				ccw++
			}
		}
	}
	if count != 4 {
		t.Errorf("hot pair has %d channels, want 4", count)
	}
	// Copies alternate direction to balance ring halves.
	if cw != 2 || ccw != 2 {
		t.Errorf("hot-pair directions cw=%d ccw=%d, want 2/2", cw, ccw)
	}
	// Extra channels cost extra wavelengths but not absurdly many.
	base := Greedy(12, nil).Channels
	if p.Channels < base {
		t.Errorf("weighted channels %d below uniform %d", p.Channels, base)
	}
	if p.Channels > base+8 {
		t.Errorf("weighted channels %d far above uniform %d", p.Channels, base)
	}
}

func TestGreedyWeightedErrors(t *testing.T) {
	if _, err := GreedyWeighted(8, []Demand{{S: 0, T: 9, Channels: 1}}, nil); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := GreedyWeighted(8, []Demand{{S: 3, T: 3, Channels: 1}}, nil); err == nil {
		t.Error("self pair accepted")
	}
	if _, err := GreedyWeighted(8, []Demand{{S: 0, T: 1, Channels: 0}}, nil); err == nil {
		t.Error("zero multiplicity accepted")
	}
}

func TestValidateWeightedCatchesWrongMultiplicity(t *testing.T) {
	p, err := GreedyWeighted(6, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Claim pair (0,1) should have had 2 channels.
	if err := p.ValidateWeighted([]Demand{{S: 0, T: 1, Channels: 2}}); err == nil {
		t.Error("wrong multiplicity validated")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	orig := Greedy(10, rand.New(rand.NewSource(3)))
	split, err := SplitAcrossRings(orig, 2, (orig.Channels+1)/2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(split)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.M != split.M || back.Channels != split.Channels || back.Rings != split.Rings {
		t.Errorf("round trip header: %+v vs %+v", back, split)
	}
	if len(back.Assignments) != len(split.Assignments) {
		t.Fatalf("assignments %d vs %d", len(back.Assignments), len(split.Assignments))
	}
	for i := range back.Assignments {
		if back.Assignments[i] != split.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
	if err := back.Validate(); err != nil {
		t.Error(err)
	}
	// Bad payloads rejected.
	if err := json.Unmarshal([]byte(`{"ringSize":-1}`), &back); err == nil {
		t.Error("negative ring size accepted")
	}
	if err := json.Unmarshal([]byte(`{bad`), &back); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestGreedyWeightedProperty: for random demand sets, the plan
// validates and dedicates the right multiplicities.
func TestGreedyWeightedProperty(t *testing.T) {
	f := func(mm uint8, seed int64) bool {
		m := int(mm%12) + 4
		rng := rand.New(rand.NewSource(seed))
		var demands []Demand
		for i := 0; i < rng.Intn(4); i++ {
			s := rng.Intn(m)
			tt := rng.Intn(m)
			if s == tt {
				continue
			}
			demands = append(demands, Demand{S: s, T: tt, Channels: rng.Intn(3) + 1})
		}
		// Deduplicate pairs (last write wins in the map anyway, but the
		// validator expects consistent demands).
		seen := map[[2]int]bool{}
		var clean []Demand
		for _, d := range demands {
			s, tt := d.S, d.T
			if s > tt {
				s, tt = tt, s
			}
			if seen[[2]int{s, tt}] {
				continue
			}
			seen[[2]int{s, tt}] = true
			clean = append(clean, d)
		}
		p, err := GreedyWeighted(m, clean, rng)
		if err != nil {
			return false
		}
		return p.ValidateWeighted(clean) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExpandPlanMinimalDisruption(t *testing.T) {
	old := Greedy(12, nil)
	plan, stats, err := ExpandPlan(old, 16, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.From != 12 || stats.To != 16 {
		t.Errorf("stats = %+v", stats)
	}
	oldPairs := 12 * 11 / 2
	if stats.Kept+stats.Retuned != oldPairs {
		t.Errorf("kept %d + retuned %d != %d old pairs", stats.Kept, stats.Retuned, oldPairs)
	}
	if stats.Added != 16*15/2-oldPairs {
		t.Errorf("added = %d, want %d", stats.Added, 16*15/2-oldPairs)
	}
	// The point of in-place expansion: a majority of existing channels
	// survive untouched (only splice-crossing arcs retune).
	if stats.Kept <= stats.Retuned {
		t.Errorf("kept %d <= retuned %d; expansion should preserve most channels", stats.Kept, stats.Retuned)
	}
	// Every kept assignment is bit-identical to the old plan's.
	oldByPair := map[[2]int]Assignment{}
	for _, a := range old.Assignments {
		oldByPair[[2]int{a.S, a.T}] = a
	}
	kept := 0
	for _, a := range plan.Assignments {
		if o, ok := oldByPair[[2]int{a.S, a.T}]; ok && o.Channel == a.Channel && o.Dir == a.Dir {
			kept++
		}
	}
	if kept < stats.Kept {
		t.Errorf("only %d assignments actually identical, stats claim %d", kept, stats.Kept)
	}
	if stats.String() == "" {
		t.Error("empty stats string")
	}
}

func TestExpandPlanErrors(t *testing.T) {
	old := Greedy(8, nil)
	if _, _, err := ExpandPlan(old, 8, nil); err == nil {
		t.Error("non-growing expansion accepted")
	}
	split, err := SplitAcrossRings(old, 2, old.Channels)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExpandPlan(split, 10, nil); err == nil {
		t.Error("multi-ring plan accepted")
	}
	bad := &Plan{M: 4, Channels: 1, Rings: 1}
	if _, _, err := ExpandPlan(bad, 6, nil); err == nil {
		t.Error("invalid input plan accepted")
	}
}

// TestExpandPlanProperty: any expansion of any greedy plan validates,
// and channel growth stays near the fresh-plan greedy count.
func TestExpandPlanProperty(t *testing.T) {
	f := func(mm, grow uint8, seed int64) bool {
		m := int(mm%14) + 4
		to := m + int(grow%6) + 1
		rng := rand.New(rand.NewSource(seed))
		old := Greedy(m, rng)
		plan, stats, err := ExpandPlan(old, to, rng)
		if err != nil {
			return false
		}
		if plan.Validate() != nil {
			return false
		}
		// Incremental planning pays a bounded premium over planning the
		// larger ring from scratch.
		fresh := Greedy(to, rng)
		return stats.ChannelsAfter <= fresh.Channels*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
