package wdm

import (
	"fmt"
	"math/rand"
	"sort"
)

// ExpansionStats quantifies the disruption of growing a ring in place —
// the §8 claim that Quartz "can be incrementally deployed as needed":
// new switches are spliced into the fiber between the old last switch
// and switch 0, existing transceivers keep their wavelength wherever
// the new plan allows, and only the channels whose arcs crossed the
// splice point (plus the new pairs) need attention.
type ExpansionStats struct {
	From, To int
	// Kept counts existing pairs whose wavelength and path survive
	// unchanged — no operator action at all.
	Kept int
	// Retuned counts existing pairs whose transceivers must retune to a
	// new wavelength (their arc crossed the splice or their old channel
	// now conflicts).
	Retuned int
	// Added counts the new pairs involving the new switches.
	Added int
	// ChannelsBefore/After are the wavelength counts of the two plans.
	ChannelsBefore, ChannelsAfter int
}

func (s ExpansionStats) String() string {
	return fmt.Sprintf("expand %d->%d: %d kept, %d retuned, %d added; channels %d -> %d",
		s.From, s.To, s.Kept, s.Retuned, s.Added, s.ChannelsBefore, s.ChannelsAfter)
}

// ExpandPlan grows a single-fiber plan from its ring size to newM
// switches with minimal disruption. The new switches are inserted
// between switch old.M-1 and switch 0, so fiber links 0..old.M-2 keep
// their identity; every old assignment whose arc avoided the splice
// keeps its exact links and wavelength. Arcs that crossed the splice,
// and all pairs involving new switches, are assigned greedily on top.
//
// The input must be a single-ring plan (expand before splitting across
// fibers). The result is a valid plan for the larger ring plus the
// disruption statistics.
func ExpandPlan(old *Plan, newM int, rng *rand.Rand) (*Plan, ExpansionStats, error) {
	if old.Rings > 1 {
		return nil, ExpansionStats{}, fmt.Errorf("wdm: expand a single-ring plan, then split")
	}
	if newM <= old.M {
		return nil, ExpansionStats{}, fmt.Errorf("wdm: new size %d not larger than %d", newM, old.M)
	}
	if err := old.Validate(); err != nil {
		return nil, ExpansionStats{}, fmt.Errorf("wdm: invalid input plan: %w", err)
	}
	stats := ExpansionStats{From: old.M, To: newM, ChannelsBefore: old.Channels}

	// usage[ch][link] occupancy on the new ring.
	var usage [][]bool
	ensure := func(ch int) {
		for len(usage) <= ch {
			usage = append(usage, make([]bool, newM))
		}
	}
	occupy := func(a Assignment) bool {
		ensure(a.Channel)
		free := true
		arcLinks(newM, a.S, a.T, a.Dir, func(l int) {
			if usage[a.Channel][l] {
				free = false
			}
		})
		if !free {
			return false
		}
		arcLinks(newM, a.S, a.T, a.Dir, func(l int) { usage[a.Channel][l] = true })
		return true
	}

	// Splice point: old link old.M-1 (joining old.M-1 and 0) is cut and
	// the new switches take indices old.M..newM-1 there. An old
	// clockwise arc s->t crossed the splice iff s > t (it wrapped); a
	// counter-clockwise arc crossed iff it wrapped the other way
	// (s < t means ccw from s passes 0... ccw from s to t covers links
	// s-1..t, wrapping iff s < t).
	crossedSplice := func(a Assignment) bool {
		if a.Dir == Clockwise {
			return a.S > a.T
		}
		return a.S < a.T
	}

	var out []Assignment
	var pending [][2]int
	for _, a := range old.Assignments {
		if crossedSplice(a) {
			pending = append(pending, [2]int{a.S, a.T})
			stats.Retuned++
			continue
		}
		// Same links as before, so keeping every non-crossing
		// assignment can never self-conflict; occupy must succeed.
		if !occupy(a) {
			return nil, ExpansionStats{}, fmt.Errorf("wdm: internal: surviving assignment (%d,%d) conflicts", a.S, a.T)
		}
		out = append(out, a)
		stats.Kept++
	}
	// New pairs: everything touching switches old.M..newM-1.
	for s := 0; s < newM; s++ {
		for t := s + 1; t < newM; t++ {
			if s >= old.M || t >= old.M {
				pending = append(pending, [2]int{s, t})
				stats.Added++
			}
		}
	}
	// Assign the pending pairs longest-shortest-arc first.
	dirFor := func(pr [2]int) Direction {
		if arcLen(newM, pr[0], pr[1], Clockwise) <= arcLen(newM, pr[0], pr[1], CounterClockwise) {
			return Clockwise
		}
		return CounterClockwise
	}
	sort.SliceStable(pending, func(i, j int) bool {
		li := arcLen(newM, pending[i][0], pending[i][1], dirFor(pending[i]))
		lj := arcLen(newM, pending[j][0], pending[j][1], dirFor(pending[j]))
		return li > lj
	})
	if rng != nil {
		// Random rotation within equal lengths, as in Greedy.
		start := rng.Intn(newM)
		sort.SliceStable(pending, func(i, j int) bool {
			li := arcLen(newM, pending[i][0], pending[i][1], dirFor(pending[i]))
			lj := arcLen(newM, pending[j][0], pending[j][1], dirFor(pending[j]))
			if li != lj {
				return li > lj
			}
			return (pending[i][0]-start+newM)%newM < (pending[j][0]-start+newM)%newM
		})
	}
	for _, pr := range pending {
		dir := dirFor(pr)
		placed := false
		for ch := 0; !placed; ch++ {
			ensure(ch)
			a := Assignment{S: pr[0], T: pr[1], Dir: dir, Channel: ch}
			if occupy(a) {
				out = append(out, a)
				placed = true
			}
		}
	}
	plan := &Plan{M: newM, Channels: len(usage), Rings: 1, Assignments: out}
	stats.ChannelsAfter = plan.Channels
	if err := plan.Validate(); err != nil {
		return nil, ExpansionStats{}, fmt.Errorf("wdm: expanded plan invalid: %w", err)
	}
	return plan, stats, nil
}
