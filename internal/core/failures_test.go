package core

import (
	"encoding/json"
	"testing"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

func TestFiberCutImpactMatchesPlan(t *testing.T) {
	r, err := NewRing(RingConfig{Switches: 8, HostsPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Total severed pairs across all segments and fibers equals the
	// total channel-link traversals of the plan.
	total := 0
	rings := r.Plan.Rings
	for fiber := 0; fiber < rings; fiber++ {
		for seg := 0; seg < 8; seg++ {
			severed, err := r.FiberCutImpact(fiber, seg)
			if err != nil {
				t.Fatal(err)
			}
			total += len(severed)
		}
	}
	wantTraversals := 0
	for _, a := range r.Plan.Assignments {
		wantTraversals += a.Hops(8)
	}
	if total != wantTraversals {
		t.Errorf("severed pair-segments = %d, want %d (sum of arc lengths)", total, wantTraversals)
	}
	// Adjacent pair (0,1): its 1-hop channel must be severed by exactly
	// one segment cut.
	hits := 0
	for fiber := 0; fiber < rings; fiber++ {
		for seg := 0; seg < 8; seg++ {
			severed, _ := r.FiberCutImpact(fiber, seg)
			for _, p := range severed {
				if p == [2]int{0, 1} {
					hits++
				}
			}
		}
	}
	if hits != 1 {
		t.Errorf("pair (0,1) severed by %d cuts, want 1", hits)
	}
	if _, err := r.FiberCutImpact(0, 99); err == nil {
		t.Error("bad segment accepted")
	}
	if _, err := r.FiberCutImpact(99, 0); err == nil {
		t.Error("bad fiber accepted")
	}
}

func TestFiberCutEndToEndReroute(t *testing.T) {
	// The full §3.5 story in one test: plan a ring, cut a fiber, watch
	// direct traffic die, install the degraded router, watch traffic
	// take two-hop logical paths.
	r, err := NewRing(RingConfig{Switches: 6, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := traffic.NewHarness()
	var lastHops int
	net, err := netsim.New(netsim.Config{
		Graph:  r.Graph,
		Router: routing.NewECMP(r.Graph),
		OnDeliver: func(d netsim.Delivery) {
			h.Deliver(d)
			lastHops = d.Packet.Hops
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := r.Graph.Hosts()
	// Find a pair severed by cutting segment 0 of fiber 0.
	severed, err := r.ApplyFiberCut(net, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(severed) == 0 {
		t.Fatal("segment 0 cut severed nothing")
	}
	pair := severed[0]
	src, dst := hosts[pair[0]], hosts[pair[1]]

	// Direct routing now drops on the dead link.
	net.Unicast(1, src, dst, 400, 0)
	net.Engine().Run()
	if net.Delivered() != 0 || net.Dropped() != 1 {
		t.Fatalf("after cut: delivered %d dropped %d, want 0/1", net.Delivered(), net.Dropped())
	}

	// Control plane reconverges: the degraded router avoids all severed
	// links.
	degraded, err := r.DegradedRouter(severed)
	if err != nil {
		t.Fatal(err)
	}
	net.SetRouter(degraded)
	net.Unicast(2, src, dst, 400, 0)
	net.Engine().Run()
	if net.Delivered() != 1 {
		t.Fatalf("after reroute: delivered %d, want 1", net.Delivered())
	}
	if lastHops != 4 {
		t.Errorf("rerouted path hops = %d, want 4 (two-hop logical path)", lastHops)
	}

	// Splice repaired: restore and verify the direct path returns.
	if err := r.RestoreFiberCut(net, 0, 0); err != nil {
		t.Fatal(err)
	}
	net.SetRouter(routing.NewECMP(r.Graph))
	net.Unicast(3, src, dst, 400, 0)
	net.Engine().Run()
	if net.Delivered() != 2 {
		t.Fatalf("after restore: delivered %d, want 2", net.Delivered())
	}
	if lastHops != 3 {
		t.Errorf("restored path hops = %d, want 3 (direct)", lastHops)
	}
}

func TestApplyFiberCutWrongGraph(t *testing.T) {
	r1, err := NewRing(RingConfig{Switches: 4, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(RingConfig{Switches: 4, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	net, err := netsim.New(netsim.Config{Graph: r2.Graph, Router: routing.NewECMP(r2.Graph)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.ApplyFiberCut(net, 0, 0); err == nil {
		t.Error("cut applied to a network built on a different graph")
	}
}

func TestRingJSONRoundTrip(t *testing.T) {
	r, err := NewRing(RingConfig{Switches: 12, HostsPerSwitch: 8})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadRing(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ports() != r.Ports() || back.Channels() != r.Channels() {
		t.Errorf("round trip: ports %d/%d channels %d/%d",
			back.Ports(), r.Ports(), back.Channels(), r.Channels())
	}
	if back.Budget != r.Budget {
		t.Errorf("budget differs: %+v vs %+v", back.Budget, r.Budget)
	}
	if err := back.ValidateOptics(); err != nil {
		t.Error(err)
	}
	// Corrupt payloads rejected.
	if _, err := LoadRing([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadRing([]byte(`{"switches":3}`)); err == nil {
		t.Error("missing plan accepted")
	}
	if _, err := LoadRing([]byte(`{"switches":5,"plan":{"ringSize":4,"channels":0,"physicalRings":1}}`)); err == nil {
		t.Error("mismatched sizes accepted")
	}
}
