package core

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

// FiberCutImpact returns the logical switch pairs severed by cutting
// fiber segment seg (joining ring switches seg and seg+1) of physical
// ring fiber: every channel whose assigned arc traverses that segment
// on that fiber dies (§3.5).
func (r *Ring) FiberCutImpact(fiber, seg int) ([][2]int, error) {
	m := r.Config.Switches
	if seg < 0 || seg >= m {
		return nil, fmt.Errorf("core: segment %d out of range [0,%d)", seg, m)
	}
	rings := r.Plan.Rings
	if rings == 0 {
		rings = 1
	}
	if fiber < 0 || fiber >= rings {
		return nil, fmt.Errorf("core: fiber %d out of range [0,%d)", fiber, rings)
	}
	var severed [][2]int
	for _, a := range r.Plan.Assignments {
		if a.Ring != fiber {
			continue
		}
		if arcCrossesSegment(m, a, seg) {
			severed = append(severed, [2]int{a.S, a.T})
		}
	}
	return severed, nil
}

// arcCrossesSegment reports whether the assignment's arc traverses
// fiber segment seg.
func arcCrossesSegment(m int, a wdm.Assignment, seg int) bool {
	crossed := false
	walk := func(from, to int, step int) {
		for i := from; i != to; i = (i + step + m) % m {
			link := i
			if step < 0 {
				link = (i - 1 + m) % m
			}
			if link == seg {
				crossed = true
			}
		}
	}
	if a.Dir == wdm.Clockwise {
		walk(a.S, a.T, 1)
	} else {
		walk(a.S, a.T, -1)
	}
	return crossed
}

// FiberLinks resolves a fiber-segment cut to the logical mesh links it
// severs — FiberCutImpact mapped onto the ring's Graph. It is the
// canonical netsim.FaultSchedule.FiberLinks resolver; AttachFaults
// installs it.
func (r *Ring) FiberLinks(fiber, seg int) ([]topology.LinkID, error) {
	severed, err := r.FiberCutImpact(fiber, seg)
	if err != nil {
		return nil, err
	}
	sw := r.Graph.Switches()
	links := make([]topology.LinkID, 0, len(severed))
	for _, pair := range severed {
		l, ok := r.Graph.FindLink(sw[pair[0]], sw[pair[1]])
		if !ok {
			return nil, fmt.Errorf("core: no mesh link for pair %v", pair)
		}
		links = append(links, l.ID)
	}
	return links, nil
}

// AttachFaults returns the network's fault injector with this ring's
// fiber resolver installed, so scheduled netsim.FaultFiber events kill
// exactly the §3.5-severed wavelength links. The network must have been
// built on the ring's Graph.
func (r *Ring) AttachFaults(net *netsim.Network) (*netsim.FaultInjector, error) {
	if net.Graph() != r.Graph {
		return nil, fmt.Errorf("core: network was not built on this ring's graph")
	}
	fi := net.Faults()
	fi.SetFiberResolver(r.FiberLinks)
	return fi, nil
}

// ApplyFiberCut fails, in a packet simulation built on this ring's
// Graph, every logical mesh link whose channel the cut destroys. It
// returns the severed pairs. Restore with RestoreFiberCut. For cuts at
// virtual times mid-run, with detection delay and reconvergence, use
// AttachFaults and a netsim.FaultSchedule instead.
func (r *Ring) ApplyFiberCut(net *netsim.Network, fiber, seg int) ([][2]int, error) {
	return r.setFiberCut(net, fiber, seg, true)
}

// RestoreFiberCut reverses ApplyFiberCut.
func (r *Ring) RestoreFiberCut(net *netsim.Network, fiber, seg int) error {
	_, err := r.setFiberCut(net, fiber, seg, false)
	return err
}

func (r *Ring) setFiberCut(net *netsim.Network, fiber, seg int, down bool) ([][2]int, error) {
	if net.Graph() != r.Graph {
		return nil, fmt.Errorf("core: network was not built on this ring's graph")
	}
	severed, err := r.FiberCutImpact(fiber, seg)
	if err != nil {
		return nil, err
	}
	sw := r.Graph.Switches()
	for _, pair := range severed {
		l, ok := r.Graph.FindLink(sw[pair[0]], sw[pair[1]])
		if !ok {
			return nil, fmt.Errorf("core: no mesh link for pair %v", pair)
		}
		if down {
			err = net.FailLink(l.ID)
		} else {
			err = net.RestoreLink(l.ID)
		}
		if err != nil {
			return nil, err
		}
	}
	return severed, nil
}

// DegradedRouter returns an ECMP router computed on the ring's mesh
// with the given severed pairs' links removed — install it with
// netsim.Network.SetRouter after a fiber cut so surviving traffic
// reroutes over multi-hop logical paths.
func (r *Ring) DegradedRouter(severed [][2]int) (routing.Router, error) {
	dead := make(map[topology.LinkID]bool)
	sw := r.Graph.Switches()
	for _, pair := range severed {
		l, ok := r.Graph.FindLink(sw[pair[0]], sw[pair[1]])
		if !ok {
			return nil, fmt.Errorf("core: no mesh link for pair %v", pair)
		}
		dead[l.ID] = true
	}
	return routing.NewECMPAvoiding(r.Graph, dead), nil
}
