// Package core implements the paper's primary contribution: the Quartz
// design element — a full mesh of low-latency switches physically
// realized as a WDM ring — and its placements in larger datacenter
// networks (§4): whole-DCN ring, Quartz in the edge, in the core, in
// both, and inside a Jellyfish-style random topology.
//
// A Ring bundles everything a deployment needs: the logical full-mesh
// topology, the wavelength channel plan (§3.1), the optical power
// budget with amplifier placement (§3.3), and the multi-fiber split for
// fault tolerance (§3.5).
package core

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/optics"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

// RingConfig describes a Quartz ring deployment.
type RingConfig struct {
	// Switches is M, the number of ToR switches on the ring (>= 2).
	Switches int
	// HostsPerSwitch is n, the server-facing ports used per switch.
	HostsPerSwitch int
	// SwitchPorts is the switch port count (64, the ULL limit, when
	// zero). Each switch needs HostsPerSwitch + (Switches-1) ports.
	SwitchPorts int
	// HostRate and MeshRate set link speeds (both 10 Gb/s when zero).
	HostRate sim.Rate
	MeshRate sim.Rate
	// PhysicalRings forces a fiber ring count; zero selects the minimum
	// that fits the channel plan in 80-channel commodity muxes.
	PhysicalRings int
	// Parts selects optical components (optics.DefaultParts when zero).
	Parts optics.PartSpec
	// Rand seeds the channel-plan heuristic; nil is deterministic.
	Rand *rand.Rand
}

// Ring is a planned Quartz ring.
type Ring struct {
	Config RingConfig
	// Graph is the logical full mesh with hosts attached.
	Graph *topology.Graph
	// Plan is the wavelength assignment, split across physical rings.
	Plan *wdm.Plan
	// Budget is the amplifier/attenuator plan per physical ring.
	Budget optics.RingBudget
}

// NewRing plans a Quartz ring: it validates port budgets, computes the
// channel plan with the paper's greedy heuristic, splits it across the
// minimum number of physical fiber rings, and places amplifiers.
func NewRing(cfg RingConfig) (*Ring, error) {
	if cfg.Switches < 2 {
		return nil, fmt.Errorf("core: ring needs >= 2 switches, got %d", cfg.Switches)
	}
	if cfg.Switches > wdm.MaxRingSizeSingleFiber {
		return nil, fmt.Errorf("core: %d switches exceed the %d-switch fiber limit (%d channels); use multiple rings as a DCN element instead",
			cfg.Switches, wdm.MaxRingSizeSingleFiber, wdm.MaxChannelsPerFiber)
	}
	if cfg.HostsPerSwitch < 0 {
		return nil, fmt.Errorf("core: negative hosts per switch")
	}
	if cfg.SwitchPorts == 0 {
		cfg.SwitchPorts = 64
	}
	need := cfg.HostsPerSwitch + cfg.Switches - 1
	if need > cfg.SwitchPorts {
		return nil, fmt.Errorf("core: switch needs %d ports (%d hosts + %d peers), only %d available",
			need, cfg.HostsPerSwitch, cfg.Switches-1, cfg.SwitchPorts)
	}
	if cfg.HostRate == 0 {
		cfg.HostRate = 10 * sim.Gbps
	}
	if cfg.MeshRate == 0 {
		cfg.MeshRate = 10 * sim.Gbps
	}
	if cfg.Parts == (optics.PartSpec{}) {
		cfg.Parts = optics.DefaultParts
	}

	plan := wdm.Greedy(cfg.Switches, cfg.Rand)
	rings := cfg.PhysicalRings
	minRings := (plan.Channels + wdm.CommodityMuxChannels - 1) / wdm.CommodityMuxChannels
	if minRings == 0 {
		minRings = 1
	}
	if rings == 0 {
		rings = minRings
	}
	if rings < minRings {
		return nil, fmt.Errorf("core: %d channels need %d physical rings of %d-channel muxes, got %d",
			plan.Channels, minRings, wdm.CommodityMuxChannels, rings)
	}
	split, err := wdm.SplitAcrossRings(plan, rings, wdm.CommodityMuxChannels)
	if err != nil {
		return nil, fmt.Errorf("core: splitting channel plan: %w", err)
	}
	if err := split.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid channel plan: %w", err)
	}

	budget, err := optics.PlanRing(cfg.Switches, cfg.Parts)
	if err != nil {
		return nil, fmt.Errorf("core: optical budget: %w", err)
	}
	if err := optics.ValidateRing(budget, cfg.Parts, 0.05); err != nil {
		return nil, fmt.Errorf("core: optical budget: %w", err)
	}

	g, err := topology.NewFullMesh(topology.MeshConfig{
		Switches:       cfg.Switches,
		HostsPerSwitch: cfg.HostsPerSwitch,
		HostLink:       topology.LinkSpec{Rate: cfg.HostRate},
		MeshLink:       topology.LinkSpec{Rate: cfg.MeshRate},
	})
	if err != nil {
		return nil, err
	}
	g.Name = fmt.Sprintf("quartz(M=%d,n=%d,rings=%d)", cfg.Switches, cfg.HostsPerSwitch, rings)
	return &Ring{Config: cfg, Graph: g, Plan: split, Budget: budget}, nil
}

// Ports returns the usable server ports of the ring — the size of the
// single switch it mimics (§3.2: 32x33 = 1056 with 64-port switches).
func (r *Ring) Ports() int {
	return r.Config.Switches * r.Config.HostsPerSwitch
}

// PhysicalRings returns the number of fiber rings carrying the plan.
func (r *Ring) PhysicalRings() int { return r.Plan.Rings }

// Channels returns the number of wavelengths in use.
func (r *Ring) Channels() int { return r.Plan.Channels }

// WiringComplexity returns the number of cross-rack cables: two fiber
// connections per switch per physical ring (§3: "implementing a full
// mesh requires only two physical cables to connect to each Quartz
// switch").
func (r *Ring) WiringComplexity() int {
	return r.Config.Switches * r.Plan.Rings
}

func (r *Ring) String() string {
	return fmt.Sprintf("Quartz ring: %d switches x %d hosts (%d ports), %d channels on %d fiber ring(s), %d amplifiers",
		r.Config.Switches, r.Config.HostsPerSwitch, r.Ports(),
		r.Plan.Channels, r.Plan.Rings, r.Budget.Amplifiers*r.Plan.Rings)
}

// MaxPortsSingleRing returns the largest switch a single Quartz ring
// can mimic with switches of the given port count, and the ring size
// achieving it: with 64 ports, 33 switches x 32 hosts = 1056 (§3.2).
func MaxPortsSingleRing(switchPorts int) (ports, ringSize int) {
	best, bestM := 0, 0
	for m := 2; m <= wdm.MaxRingSizeSingleFiber; m++ {
		hosts := switchPorts - (m - 1)
		if hosts <= 0 {
			break
		}
		// Prefer the larger ring on ties: 32x33 and 33x32 both give
		// 1056, and the paper's configuration is the 33-switch one.
		if p := m * hosts; p >= best {
			best, bestM = p, m
		}
	}
	return best, bestM
}

// MaxPortsDualToR returns the §3.2 scaling variant: two ToR switches
// per rack, each server dual-homed, racks fully meshed pairwise. With
// 64-port switches this reaches 2080 ports (32 x 65).
func MaxPortsDualToR(switchPorts int) (ports, racks int) {
	// Each rack has 2 switches; each switch splits ports between
	// servers (s) and peers. With R racks, a switch needs 2R-2 peer
	// links (one to each other rack's two switches... the paper counts
	// 32x65: 65 racks of 32 servers with the longest path two
	// switches). We mirror the paper's arithmetic: ports = s*(2s+1)
	// with s = switchPorts/2.
	s := switchPorts / 2
	return s * (2*s + 1), 2*s + 1
}

// ChannelReport describes one channel's optical feasibility.
type ChannelReport struct {
	wdm.Assignment
	// Hops is the arc length in ring segments.
	Hops int
	// MinDBm is the lowest power level along the path.
	MinDBm float64
	// ArrivalDBm is the level at the drop demux output.
	ArrivalDBm float64
	// AttenuationDB is the terminal attenuation needed to protect the
	// receiver (0 if none).
	AttenuationDB float64
}

// hopKm is the assumed fiber length of one ring hop: adjacent racks.
const hopKm = 0.05

// ChannelReports walks every assigned channel through the optical power
// budget (§3.3) and reports its levels. The ring's own amplifier plan
// (Budget) is applied.
func (r *Ring) ChannelReports() []ChannelReport {
	parts := r.Config.Parts
	out := make([]ChannelReport, 0, len(r.Plan.Assignments))
	for _, a := range r.Plan.Assignments {
		hops := a.Hops(r.Config.Switches)
		min, arrival := optics.WalkChannel(parts, hops, r.Budget.AmpAfterHops, hopKm)
		out = append(out, ChannelReport{
			Assignment:    a,
			Hops:          hops,
			MinDBm:        min,
			ArrivalDBm:    arrival,
			AttenuationDB: optics.AttenuationNeeded(parts, arrival),
		})
	}
	return out
}

// ValidateOptics checks that every channel of the plan stays above the
// receiver sensitivity along its entire path under the ring's amplifier
// plan. NewRing already validates the worst case; this is the
// exhaustive per-channel version.
func (r *Ring) ValidateOptics() error {
	parts := r.Config.Parts
	for _, rep := range r.ChannelReports() {
		if rep.MinDBm < parts.RxSensitivityDBm {
			return fmt.Errorf("core: channel %d (pair %d-%d, %d hops) dips to %.1f dBm, below sensitivity %.1f dBm",
				rep.Channel, rep.S, rep.T, rep.Hops, rep.MinDBm, parts.RxSensitivityDBm)
		}
	}
	return nil
}

// ringJSON is the shippable description of a planned deployment: what
// the device manufacturer would program at the factory (§3.1.1).
type ringJSON struct {
	Switches       int               `json:"switches"`
	HostsPerSwitch int               `json:"hostsPerSwitch"`
	Ports          int               `json:"ports"`
	Plan           *wdm.Plan         `json:"plan"`
	Budget         optics.RingBudget `json:"budget"`
}

// MarshalJSON serializes the deployment plan (topology parameters,
// wavelength assignments, amplifier budget).
func (r *Ring) MarshalJSON() ([]byte, error) {
	return json.Marshal(ringJSON{
		Switches:       r.Config.Switches,
		HostsPerSwitch: r.Config.HostsPerSwitch,
		Ports:          r.Ports(),
		Plan:           r.Plan,
		Budget:         r.Budget,
	})
}

// LoadRing reconstructs a Ring from its serialized form, rebuilding the
// logical mesh and validating the plan.
func LoadRing(data []byte) (*Ring, error) {
	var rj ringJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if rj.Plan == nil {
		return nil, fmt.Errorf("core: serialized ring missing plan")
	}
	if err := rj.Plan.Validate(); err != nil {
		return nil, fmt.Errorf("core: serialized plan invalid: %w", err)
	}
	if rj.Switches != rj.Plan.M {
		return nil, fmt.Errorf("core: switches %d != plan ring size %d", rj.Switches, rj.Plan.M)
	}
	g, err := topology.NewFullMesh(topology.MeshConfig{
		Switches:       rj.Switches,
		HostsPerSwitch: rj.HostsPerSwitch,
	})
	if err != nil {
		return nil, err
	}
	return &Ring{
		Config: RingConfig{
			Switches:       rj.Switches,
			HostsPerSwitch: rj.HostsPerSwitch,
			SwitchPorts:    64,
			Parts:          optics.DefaultParts,
		},
		Graph:  g,
		Plan:   rj.Plan,
		Budget: rj.Budget,
	}, nil
}
