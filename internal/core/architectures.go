package core

import (
	"fmt"
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// Architecture bundles a simulated network design: the topology, the
// routing strategy, and the switch model of each node — everything the
// packet simulator needs. The six §7 architectures are built by the
// functions below, at the paper's simulated scale (4-switch Quartz
// rings, 16-switch Jellyfish).
type Architecture struct {
	Name   string
	Graph  *topology.Graph
	Router routing.Router
	// Model selects the switch model per node (Table 16: ULL for ToR,
	// aggregation and Quartz switches; CCS for core switches).
	Model func(topology.Node) netsim.SwitchModel
	// VLB is non-nil when the architecture routes with Valiant load
	// balancing (used by the Figure 20 comparison).
	VLB *routing.VLB
	// Ring is the planned Quartz ring behind the architecture, when it
	// is a single ring (QuartzRingArch): it carries the wavelength plan
	// that fiber-cut fault injection resolves against.
	Ring *Ring
}

// ArchParams sizes the simulated architectures. The zero value selects
// the paper's configuration.
type ArchParams struct {
	// Pods is the number of pods / edge rings (default 4).
	Pods int
	// ToRsPerPod is ToR switches per pod; Quartz replacements use one
	// 4-switch ring per pod (default 4).
	ToRsPerPod int
	// HostsPerToR is servers per rack (default 4).
	HostsPerToR int
}

func (p *ArchParams) setDefaults() {
	if p.Pods == 0 {
		p.Pods = 4
	}
	if p.ToRsPerPod == 0 {
		p.ToRsPerPod = 4
	}
	if p.HostsPerToR == 0 {
		p.HostsPerToR = 4
	}
}

// modelByTier returns ULL for edge/aggregation switches and CCS for
// core switches — the paper's assignment (§7).
func modelByTier(n topology.Node) netsim.SwitchModel {
	if n.Tier == topology.TierCore {
		return netsim.CiscoNexus7000
	}
	return netsim.Arista7150
}

// allULL returns the cut-through model for every switch (§7: "We use
// ULL exclusively in Quartz").
func allULL(topology.Node) netsim.SwitchModel { return netsim.Arista7150 }

// ThreeTierTree builds §7's baseline (Figure 15(a)): ToRs connected to
// two aggregation switches over 40 Gb/s, aggregation to two CCS cores
// over 40 Gb/s, hosts at 10 Gb/s.
func ThreeTierTree(p ArchParams) (*Architecture, error) {
	p.setDefaults()
	g, err := topology.NewThreeTierTree(topology.ThreeTierConfig{
		Pods: p.Pods, ToRsPerPod: p.ToRsPerPod, AggsPerPod: 2, Cores: 2,
		HostsPerToR: p.HostsPerToR,
		AggLink:     topology.LinkSpec{Rate: 40 * sim.Gbps},
		CoreLink:    topology.LinkSpec{Rate: 40 * sim.Gbps},
	})
	if err != nil {
		return nil, err
	}
	return &Architecture{
		Name:   "three-tier tree",
		Graph:  g,
		Router: routing.NewECMPPerPacket(g),
		Model:  modelByTier,
	}, nil
}

// quartzRingSimSize is the simulated ring size: "Each simulated Quartz
// ring consists of four switches; the size of the ring does not affect
// performance" (§7).
const quartzRingSimSize = 4

// QuartzInCore builds Figure 15(b): the 3-tier structure with the core
// switches replaced by one Quartz ring of four ULL switches meshed at
// 40 Gb/s; each aggregation switch connects to two ring switches.
func QuartzInCore(p ArchParams) (*Architecture, error) {
	p.setDefaults()
	g := topology.New("quartz-in-core")
	// Core ring: full mesh of 4 ULL switches (TierToR tier marker would
	// confuse the model function, so they are TierAgg-like "core ring"
	// switches; use TierAgg so they get the ULL model).
	ring := make([]topology.NodeID, quartzRingSimSize)
	for i := range ring {
		ring[i] = g.AddSwitch(fmt.Sprintf("qcore%d", i), topology.TierAgg, -1)
	}
	for i := 0; i < len(ring); i++ {
		for j := i + 1; j < len(ring); j++ {
			g.Connect(ring[i], ring[j], 40*sim.Gbps, topology.DefaultProp)
		}
	}
	rack := 0
	for pod := 0; pod < p.Pods; pod++ {
		aggs := make([]topology.NodeID, 2)
		for a := range aggs {
			aggs[a] = g.AddSwitch(fmt.Sprintf("agg%d-%d", pod, a), topology.TierAgg, -1)
			// Connect to two ring switches, spread across pods.
			g.Connect(aggs[a], ring[(pod+a)%len(ring)], 40*sim.Gbps, topology.DefaultProp)
			g.Connect(aggs[a], ring[(pod+a+1)%len(ring)], 40*sim.Gbps, topology.DefaultProp)
		}
		for t := 0; t < p.ToRsPerPod; t++ {
			tor := g.AddSwitch(fmt.Sprintf("tor%d-%d", pod, t), topology.TierToR, rack)
			for _, a := range aggs {
				g.Connect(tor, a, 40*sim.Gbps, topology.DefaultProp)
			}
			for h := 0; h < p.HostsPerToR; h++ {
				host := g.AddHost(fmt.Sprintf("h%d-%d", rack, h), rack)
				g.Connect(host, tor, 10*sim.Gbps, topology.DefaultProp)
			}
			rack++
		}
	}
	return &Architecture{
		Name:   "quartz in core",
		Graph:  g,
		Router: routing.NewECMPPerPacket(g),
		Model:  allULL,
	}, nil
}

// QuartzInEdge builds Figure 15(c): the ToR and aggregation tiers are
// replaced by Quartz rings (one 4-switch ring per pod); servers attach
// at 10 Gb/s and the rings connect to the CCS cores at 40 Gb/s.
func QuartzInEdge(p ArchParams) (*Architecture, error) {
	p.setDefaults()
	g := topology.New("quartz-in-edge")
	cores := make([]topology.NodeID, 2)
	for i := range cores {
		cores[i] = g.AddSwitch(fmt.Sprintf("core%d", i), topology.TierCore, -1)
	}
	rack := 0
	for pod := 0; pod < p.Pods; pod++ {
		ring := make([]topology.NodeID, p.ToRsPerPod)
		for i := range ring {
			ring[i] = g.AddSwitch(fmt.Sprintf("qtor%d-%d", pod, i), topology.TierToR, rack)
			for h := 0; h < p.HostsPerToR; h++ {
				host := g.AddHost(fmt.Sprintf("h%d-%d", rack, h), rack)
				g.Connect(host, ring[i], 10*sim.Gbps, topology.DefaultProp)
			}
			// Each ring switch runs two parallel 40 Gb/s uplinks to
			// each core: the ring replaces both the ToR and the
			// aggregation tier, so it owns the pod's full uplink
			// capacity (Figure 15(c)).
			for _, c := range cores {
				g.Connect(ring[i], c, 40*sim.Gbps, topology.DefaultProp)
				g.Connect(ring[i], c, 40*sim.Gbps, topology.DefaultProp)
			}
			rack++
		}
		for i := 0; i < len(ring); i++ {
			for j := i + 1; j < len(ring); j++ {
				g.Connect(ring[i], ring[j], 10*sim.Gbps, topology.DefaultProp)
			}
		}
	}
	return &Architecture{
		Name:   "quartz in edge",
		Graph:  g,
		Router: routing.NewECMPPerPacket(g),
		Model:  modelByTier,
	}, nil
}

// QuartzInEdgeAndCore builds Figure 15(d): edge rings as in
// QuartzInEdge, with the core replaced by a Quartz ring as in
// QuartzInCore.
func QuartzInEdgeAndCore(p ArchParams) (*Architecture, error) {
	p.setDefaults()
	g := topology.New("quartz-in-edge-and-core")
	ringCore := make([]topology.NodeID, quartzRingSimSize)
	for i := range ringCore {
		ringCore[i] = g.AddSwitch(fmt.Sprintf("qcore%d", i), topology.TierCore, -1)
	}
	for i := 0; i < len(ringCore); i++ {
		for j := i + 1; j < len(ringCore); j++ {
			g.Connect(ringCore[i], ringCore[j], 40*sim.Gbps, topology.DefaultProp)
		}
	}
	rack := 0
	for pod := 0; pod < p.Pods; pod++ {
		ring := make([]topology.NodeID, p.ToRsPerPod)
		for i := range ring {
			ring[i] = g.AddSwitch(fmt.Sprintf("qtor%d-%d", pod, i), topology.TierToR, rack)
			for h := 0; h < p.HostsPerToR; h++ {
				host := g.AddHost(fmt.Sprintf("h%d-%d", rack, h), rack)
				g.Connect(host, ring[i], 10*sim.Gbps, topology.DefaultProp)
			}
			// Uplink to two core-ring switches.
			g.Connect(ring[i], ringCore[(pod+i)%len(ringCore)], 40*sim.Gbps, topology.DefaultProp)
			g.Connect(ring[i], ringCore[(pod+i+1)%len(ringCore)], 40*sim.Gbps, topology.DefaultProp)
			rack++
		}
		for i := 0; i < len(ring); i++ {
			for j := i + 1; j < len(ring); j++ {
				g.Connect(ring[i], ring[j], 10*sim.Gbps, topology.DefaultProp)
			}
		}
	}
	return &Architecture{
		Name:   "quartz in edge and core",
		Graph:  g,
		Router: routing.NewECMPPerPacket(g),
		Model:  allULL,
	}, nil
}

// Jellyfish builds §7's random baseline: 16 ULL switches, each
// dedicating four 10 Gb/s links to other switches.
func Jellyfish(p ArchParams, rng *rand.Rand) (*Architecture, error) {
	p.setDefaults()
	if rng == nil {
		return nil, fmt.Errorf("core: jellyfish needs a Rand")
	}
	g, err := topology.NewJellyfish(topology.JellyfishConfig{
		Switches:       p.Pods * p.ToRsPerPod,
		HostsPerSwitch: p.HostsPerToR,
		NetDegree:      4,
		Rand:           rng,
	})
	if err != nil {
		return nil, err
	}
	return &Architecture{
		Name:   "jellyfish",
		Graph:  g,
		Router: routing.NewECMPPerPacket(g),
		Model:  allULL,
	}, nil
}

// QuartzInJellyfish builds §7's sixth architecture: four Quartz rings
// (one per pod), each dedicating four 10 Gb/s links to random other
// rings (§4.3).
func QuartzInJellyfish(p ArchParams, rng *rand.Rand) (*Architecture, error) {
	p.setDefaults()
	if rng == nil {
		return nil, fmt.Errorf("core: quartz-in-jellyfish needs a Rand")
	}
	g := topology.New("quartz-in-jellyfish")
	rings := make([][]topology.NodeID, p.Pods)
	rack := 0
	for pod := 0; pod < p.Pods; pod++ {
		ring := make([]topology.NodeID, p.ToRsPerPod)
		for i := range ring {
			ring[i] = g.AddSwitch(fmt.Sprintf("q%d-%d", pod, i), topology.TierToR, rack)
			for h := 0; h < p.HostsPerToR; h++ {
				host := g.AddHost(fmt.Sprintf("h%d-%d", rack, h), rack)
				g.Connect(host, ring[i], 10*sim.Gbps, topology.DefaultProp)
			}
			rack++
		}
		for i := 0; i < len(ring); i++ {
			for j := i + 1; j < len(ring); j++ {
				g.Connect(ring[i], ring[j], 10*sim.Gbps, topology.DefaultProp)
			}
		}
		rings[pod] = ring
	}
	// Random inter-ring links: each ring gets 4 outgoing links to
	// switches in other rings, attachment points round-robin.
	for pod := range rings {
		for l := 0; l < 4; l++ {
			other := rng.Intn(len(rings) - 1)
			if other >= pod {
				other++
			}
			a := rings[pod][l%len(rings[pod])]
			b := rings[other][rng.Intn(len(rings[other]))]
			g.Connect(a, b, 10*sim.Gbps, topology.DefaultProp)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Architecture{
		Name:   "quartz in jellyfish",
		Graph:  g,
		Router: routing.NewECMPPerPacket(g),
		Model:  allULL,
	}, nil
}

// WithVLB returns a copy of the architecture routing with VLB at the
// given indirect fraction (only meaningful for mesh-based designs).
func (a *Architecture) WithVLB(indirectFraction float64) (*Architecture, error) {
	vlb, err := routing.NewVLB(a.Graph, indirectFraction)
	if err != nil {
		return nil, err
	}
	out := *a
	out.Name = a.Name + "+vlb"
	out.Router = vlb
	out.VLB = vlb
	return &out, nil
}

// TwoTierTreeArch builds the small-DC baseline of Table 8: ToRs under
// cut-through root switches (§4.4 uses cut-through switches for the
// edge and aggregation tiers of every tree configuration).
func TwoTierTreeArch(p ArchParams) (*Architecture, error) {
	p.setDefaults()
	g, err := topology.NewTwoTierTree(topology.TreeConfig{
		ToRs:        p.Pods * p.ToRsPerPod,
		Roots:       2,
		HostsPerToR: p.HostsPerToR,
		UpLink:      topology.LinkSpec{Rate: 40 * sim.Gbps},
	})
	if err != nil {
		return nil, err
	}
	return &Architecture{
		Name:   "two-tier tree",
		Graph:  g,
		Router: routing.NewECMPPerPacket(g),
		Model:  allULL,
	}, nil
}

// QuartzRingArch builds a single Quartz ring as the whole network of a
// small DC (§4's first bullet): all ToR switches fully meshed. The
// architecture carries the full ring plan (Architecture.Ring) — channel
// assignments and fiber split — so fiber-segment fault injection can
// resolve a physical cut to the exact severed mesh links (§3.5).
func QuartzRingArch(p ArchParams) (*Architecture, error) {
	p.setDefaults()
	ring, err := NewRing(RingConfig{
		Switches:       p.Pods * p.ToRsPerPod,
		HostsPerSwitch: p.HostsPerToR,
	})
	if err != nil {
		return nil, err
	}
	return &Architecture{
		Name:   "single Quartz ring",
		Graph:  ring.Graph,
		Router: routing.NewECMPPerPacket(ring.Graph),
		Model:  allULL,
		Ring:   ring,
	}, nil
}
