package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/topology"
)

func TestNewRingSmall(t *testing.T) {
	r, err := NewRing(RingConfig{Switches: 8, HostsPerSwitch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ports() != 128 {
		t.Errorf("Ports = %d, want 128", r.Ports())
	}
	if r.PhysicalRings() != 1 {
		t.Errorf("PhysicalRings = %d, want 1", r.PhysicalRings())
	}
	if err := r.Plan.Validate(); err != nil {
		t.Errorf("plan invalid: %v", err)
	}
	if r.Graph.Diameter(r.Graph.Switches()) != 1 {
		t.Error("ring graph is not a full mesh")
	}
	if !strings.Contains(r.String(), "8 switches") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestNewRing33NeedsTwoFibers(t *testing.T) {
	// §3.5: 33 switches -> ~137 channels -> two 80-channel muxes.
	r, err := NewRing(RingConfig{Switches: 33, HostsPerSwitch: 31})
	if err != nil {
		t.Fatal(err)
	}
	if r.PhysicalRings() != 2 {
		t.Errorf("PhysicalRings = %d, want 2", r.PhysicalRings())
	}
	if r.Channels() < 136 || r.Channels() > 145 {
		t.Errorf("Channels = %d, want ~137", r.Channels())
	}
	// Two cables per switch per ring.
	if r.WiringComplexity() != 66 {
		t.Errorf("WiringComplexity = %d, want 66", r.WiringComplexity())
	}
}

func TestNewRingPortBudget(t *testing.T) {
	// 33 switches need 32 peer ports, leaving 32 for hosts on a 64-port
	// switch; 33 hosts must be rejected.
	if _, err := NewRing(RingConfig{Switches: 33, HostsPerSwitch: 32}); err != nil {
		t.Errorf("32 hosts rejected: %v", err)
	}
	if _, err := NewRing(RingConfig{Switches: 33, HostsPerSwitch: 33}); err == nil {
		t.Error("33 hosts accepted on a 64-port switch with 32 peers")
	}
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(RingConfig{Switches: 1}); err == nil {
		t.Error("1 switch accepted")
	}
	if _, err := NewRing(RingConfig{Switches: 40, HostsPerSwitch: 1}); err == nil {
		t.Error("40 switches accepted (past fiber limit)")
	}
	if _, err := NewRing(RingConfig{Switches: 8, HostsPerSwitch: -1}); err == nil {
		t.Error("negative hosts accepted")
	}
	if _, err := NewRing(RingConfig{Switches: 33, HostsPerSwitch: 8, PhysicalRings: 1}); err == nil {
		t.Error("forced single ring accepted for a 137-channel plan")
	}
}

func TestMaxPortsSingleRing(t *testing.T) {
	// §3.2: 64-port switches -> 1056-port equivalent at 33 switches.
	ports, m := MaxPortsSingleRing(64)
	if ports != 1056 || m != 33 {
		t.Errorf("MaxPortsSingleRing(64) = %d at M=%d, want 1056 at 33", ports, m)
	}
}

func TestMaxPortsDualToR(t *testing.T) {
	// §3.2: dual-ToR scaling reaches 2080 = 32 x 65 ports.
	ports, racks := MaxPortsDualToR(64)
	if ports != 2080 || racks != 65 {
		t.Errorf("MaxPortsDualToR(64) = %d over %d racks, want 2080 over 65", ports, racks)
	}
}

func archNames(t *testing.T) map[string]*Architecture {
	t.Helper()
	p := ArchParams{}
	out := map[string]*Architecture{}
	tt, err := ThreeTierTree(p)
	if err != nil {
		t.Fatal(err)
	}
	out["tree"] = tt
	qc, err := QuartzInCore(p)
	if err != nil {
		t.Fatal(err)
	}
	out["core"] = qc
	qe, err := QuartzInEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	out["edge"] = qe
	qec, err := QuartzInEdgeAndCore(p)
	if err != nil {
		t.Fatal(err)
	}
	out["edgecore"] = qec
	jf, err := Jellyfish(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	out["jellyfish"] = jf
	qj, err := QuartzInJellyfish(p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	out["qjellyfish"] = qj
	return out
}

func TestArchitecturesAreValid(t *testing.T) {
	for name, a := range archNames(t) {
		if err := a.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Same host count everywhere: 4 pods x 4 tors x 4 hosts = 64.
		if got := len(a.Graph.Hosts()); got != 64 {
			t.Errorf("%s: %d hosts, want 64", name, got)
		}
		if a.Router == nil || a.Model == nil {
			t.Errorf("%s: missing router or model", name)
		}
	}
}

func TestArchitectureHopCounts(t *testing.T) {
	// Host diameters: tree 6 (h-tor-agg-core-agg-tor-h); quartz-in-edge
	// cross-pod 6 but intra-pod 3; edge+core intra-pod 3.
	a := archNames(t)
	if d := a["tree"].Graph.Diameter(a["tree"].Graph.Hosts()); d != 6 {
		t.Errorf("tree diameter = %d, want 6", d)
	}
	// Quartz in edge: hosts in the same pod are 3 hops (h-sw-sw-h).
	qe := a["edge"].Graph
	pod0 := qe.HostsInRack(0)
	pod3 := qe.HostsInRack(3)
	dist := qe.BFSDist(pod0[0], nil)
	if got := dist[pod3[0]]; got != 3 {
		t.Errorf("edge intra-pod host distance = %d, want 3", got)
	}
}

func TestArchitectureModels(t *testing.T) {
	a := archNames(t)
	// Tree: core switches get CCS, others ULL.
	tree := a["tree"]
	for _, s := range tree.Graph.Switches() {
		m := tree.Model(tree.Graph.Node(s))
		if tree.Graph.Node(s).Tier == topology.TierCore {
			if m.Name != netsim.CiscoNexus7000.Name {
				t.Errorf("tree core switch got model %s", m.Name)
			}
		} else if m.Name != netsim.Arista7150.Name {
			t.Errorf("tree edge switch got model %s", m.Name)
		}
	}
	// Quartz in core: everything ULL.
	qc := a["core"]
	for _, s := range qc.Graph.Switches() {
		if m := qc.Model(qc.Graph.Node(s)); m.Name != netsim.Arista7150.Name {
			t.Errorf("quartz-in-core switch got model %s", m.Name)
		}
	}
}

func TestWithVLB(t *testing.T) {
	r, err := NewRing(RingConfig{Switches: 6, HostsPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := &Architecture{
		Name:   "ring",
		Graph:  r.Graph,
		Router: routing.NewECMP(r.Graph),
		Model:  allULL,
	}
	v, err := a.WithVLB(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v.VLB == nil || v.Router == a.Router {
		t.Error("WithVLB did not swap the router")
	}
	if !strings.HasSuffix(v.Name, "+vlb") {
		t.Errorf("name = %q", v.Name)
	}
	if a.VLB != nil {
		t.Error("WithVLB mutated the original")
	}
	if _, err := a.WithVLB(2.0); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestJellyfishErrors(t *testing.T) {
	if _, err := Jellyfish(ArchParams{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := QuartzInJellyfish(ArchParams{}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestChannelReportsAllFeasible(t *testing.T) {
	r, err := NewRing(RingConfig{Switches: 33, HostsPerSwitch: 32})
	if err != nil {
		t.Fatal(err)
	}
	reports := r.ChannelReports()
	if len(reports) != 33*32/2 {
		t.Fatalf("reports = %d, want %d", len(reports), 33*32/2)
	}
	if err := r.ValidateOptics(); err != nil {
		t.Fatal(err)
	}
	maxHops := 0
	for _, rep := range reports {
		if rep.Hops < 1 || rep.Hops > 16 {
			t.Errorf("channel %d spans %d hops, want 1..16 (shortest arcs)", rep.Channel, rep.Hops)
		}
		if rep.Hops > maxHops {
			maxHops = rep.Hops
		}
		if rep.AttenuationDB < 0 {
			t.Errorf("negative attenuation for channel %d", rep.Channel)
		}
	}
	if maxHops != 16 {
		t.Errorf("longest arc = %d hops, want 16 on a 33-ring", maxHops)
	}
}

func TestValidateOpticsCatchesBadBudget(t *testing.T) {
	r, err := NewRing(RingConfig{Switches: 12, HostsPerSwitch: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the amplifier plan: no amps at all.
	r.Budget.AmpAfterHops = 0
	r.Budget.Amplifiers = 0
	if err := r.ValidateOptics(); err == nil {
		t.Error("unamplified 12-ring passed per-channel validation")
	}
}
