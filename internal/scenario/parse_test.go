package scenario

import (
	"strings"
	"testing"
)

const minimalExperiment = `{
  "schema": "quartz-scenario/v1",
  "name": "t",
  "experiment": {"name": "fig6"}
}`

func TestDecodeMinimalExperiment(t *testing.T) {
	f, err := Decode([]byte(minimalExperiment), "t.json")
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if f.Doc.Experiment == nil || f.Doc.Experiment.Name != "fig6" {
		t.Fatalf("experiment = %+v", f.Doc.Experiment)
	}
	if f.Doc.Seed != 2014 {
		t.Errorf("default seed = %d, want 2014", f.Doc.Seed)
	}
	if f.Doc.Title != "t" {
		t.Errorf("default title = %q, want name", f.Doc.Title)
	}
}

func TestJSONLineIndex(t *testing.T) {
	doc := `{
  "schema": "quartz-scenario/v1",
  "name": "lines",
  "sim": {
    "topology": {"kind": "tree3", "quartz": "edge"},
    "workload": {
      "kind": "scatter"
    },
    "faults": {
      "events": [
        {"kind": "link", "link": 3, "at_ms": 2},
        {"kind": "switch", "switch": "agg0", "at_ms": 4}
      ]
    }
  }
}`
	index := jsonLineIndex([]byte(doc))
	want := map[string]int{
		"schema":                      2,
		"name":                        3,
		"sim":                         4,
		"sim.topology":                5,
		"sim.topology.kind":           5,
		"sim.workload.kind":           7,
		"sim.faults.events":           10,
		"sim.faults.events[0]":        11,
		"sim.faults.events[1].at_ms":  12,
		"sim.faults.events[1].switch": 12,
	}
	for path, line := range want {
		if got := index[path]; got != line {
			t.Errorf("line(%s) = %d, want %d", path, got, line)
		}
	}
}

func TestLineAncestorFallback(t *testing.T) {
	f, err := Decode([]byte(minimalExperiment), "t.json")
	if err != nil {
		t.Fatal(err)
	}
	// experiment.trials was omitted; its line should fall back to the
	// experiment table's line.
	if got, want := f.Line("experiment.trials"), 4; got != want {
		t.Errorf("Line(experiment.trials) = %d, want %d (the experiment line)", got, want)
	}
	if got := f.Line("nonexistent.path"); got != 0 {
		t.Errorf("Line(unknown) = %d, want 0", got)
	}
}

func TestDecodeUnknownField(t *testing.T) {
	doc := `{
  "schema": "quartz-scenario/v1",
  "name": "t",
  "experiment": {"name": "fig6", "trails": 100}
}`
	_, err := Decode([]byte(doc), "t.json")
	if err == nil {
		t.Fatal("want error for unknown field")
	}
	msg := err.Error()
	if !strings.Contains(msg, "t.json:4") || !strings.Contains(msg, "trails") {
		t.Errorf("error %q should name t.json:4 and the field", msg)
	}
}

func TestDecodeTypeError(t *testing.T) {
	doc := `{
  "schema": "quartz-scenario/v1",
  "name": "t",
  "experiment": {"name": "fig6", "trials": "many"}
}`
	_, err := Decode([]byte(doc), "t.json")
	if err == nil {
		t.Fatal("want error for type mismatch")
	}
	if msg := err.Error(); !strings.Contains(msg, "t.json:4") {
		t.Errorf("error %q should carry line 4", msg)
	}
}

func TestDecodeSyntaxError(t *testing.T) {
	doc := "{\n  \"schema\": \"quartz-scenario/v1\",\n  \"name\" \"t\"\n}"
	_, err := Decode([]byte(doc), "t.json")
	if err == nil {
		t.Fatal("want syntax error")
	}
	if msg := err.Error(); !strings.Contains(msg, "t.json:3") {
		t.Errorf("error %q should carry line 3", msg)
	}
}

func TestDecodeTrailingData(t *testing.T) {
	_, err := Decode([]byte(minimalExperiment+"\n{\"more\": true}"), "t.json")
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("want trailing-data error, got %v", err)
	}
}

func TestFormatSniffing(t *testing.T) {
	// No extension: '{' means JSON, anything else TOML.
	if _, err := Decode([]byte(minimalExperiment), "request"); err != nil {
		t.Errorf("sniffed JSON: %v", err)
	}
	toml := "schema = \"quartz-scenario/v1\"\nname = \"t\"\n[experiment]\nname = \"fig6\"\n"
	if _, err := Decode([]byte(toml), "request"); err != nil {
		t.Errorf("sniffed TOML: %v", err)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{File: "a.json", Line: 7, Path: "sim.workload.kind", Msg: "boom"}
	if got, want := e.Error(), "a.json:7: sim.workload.kind: boom"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	e2 := &Error{Msg: "just a message"}
	if got := e2.Error(); got != "just a message" {
		t.Errorf("Error() = %q", got)
	}
}
