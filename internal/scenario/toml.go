package scenario

// A minimal TOML reader — enough of the language to write any scenario
// the schema can express, implemented here because the module is
// standard-library only. Supported: `key = value` with bare, quoted,
// and dotted keys; `[table]` and nested `[a.b]` headers; `[[array]]`
// array-of-tables headers (fault events); strings ("..." with the
// common escapes, and literal '...'), integers, floats, booleans, and
// (possibly multiline) arrays; `#` comments. Not supported, rejected
// with a pointed message: inline tables, dates, and multiline strings.
//
// The parsed tree is re-marshalled to JSON and strict-decoded into the
// Doc, so both formats pass through one schema; the TOML reader's own
// line index keeps errors precise in the original file.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// decodeTOML parses the TOML subset into f.Doc and fills f.lines.
func decodeTOML(data []byte, f *File) error {
	p := &tomlParser{file: f.Name, root: map[string]interface{}{}, lines: map[string]int{}}
	if err := p.parse(string(data)); err != nil {
		return err
	}
	f.lines = p.lines
	// One schema for both formats: round-trip the generic tree through
	// JSON into the typed document.
	raw, err := json.Marshal(p.root)
	if err != nil {
		return ErrorList{{File: f.Name, Msg: "internal: " + err.Error()}}
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f.Doc); err != nil {
		return ErrorList{tomlSchemaError(err, f)}
	}
	return nil
}

// tomlSchemaError locates a strict-decode error in the TOML source via
// the parser's line index (the JSON offsets of jsonError would point
// into the intermediate re-marshalled bytes, which the user never saw).
func tomlSchemaError(err error, f *File) *Error {
	if e, ok := err.(*json.UnmarshalTypeError); ok {
		return &Error{File: f.Name, Line: f.Line(e.Field), Path: e.Field,
			Msg: fmt.Sprintf("cannot use a %s here (want %s)", e.Value, e.Type)}
	}
	if name, ok := strings.CutPrefix(err.Error(), `json: unknown field `); ok {
		return unknownFieldError(strings.Trim(name, `"`), f)
	}
	return &Error{File: f.Name, Msg: err.Error()}
}

// tomlParser holds the line-oriented parse state.
type tomlParser struct {
	file  string
	root  map[string]interface{}
	lines map[string]int

	table     map[string]interface{} // current [table]
	tablePath string                 // its dotted path ("" = root)
}

// errf builds a located parse error.
func (p *tomlParser) errf(line int, format string, args ...interface{}) error {
	return ErrorList{{File: p.file, Line: line, Msg: fmt.Sprintf(format, args...)}}
}

func (p *tomlParser) parse(src string) error {
	p.table = p.root
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		lineNo := i + 1
		line := strings.TrimSpace(stripComment(lines[i]))
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "[["):
			if !strings.HasSuffix(line, "]]") {
				return p.errf(lineNo, "malformed [[table]] header %q", line)
			}
			if err := p.openTableArray(strings.TrimSuffix(strings.TrimPrefix(line, "[["), "]]"), lineNo); err != nil {
				return err
			}
		case strings.HasPrefix(line, "["):
			if !strings.HasSuffix(line, "]") {
				return p.errf(lineNo, "malformed [table] header %q", line)
			}
			if err := p.openTable(strings.TrimSuffix(strings.TrimPrefix(line, "["), "]"), lineNo); err != nil {
				return err
			}
		default:
			key, rest, ok := cutAssign(line)
			if !ok {
				return p.errf(lineNo, "expected key = value, got %q", line)
			}
			// Multiline arrays: keep consuming lines until brackets
			// balance outside strings.
			for bracketDepth(rest) > 0 && i+1 < len(lines) {
				i++
				rest += "\n" + strings.TrimSpace(stripComment(lines[i]))
			}
			val, err := parseTOMLValue(strings.TrimSpace(rest), lineNo, p)
			if err != nil {
				return err
			}
			if err := p.setKey(key, val, lineNo); err != nil {
				return err
			}
		}
	}
	return nil
}

// openTable enters (creating as needed) the table named by a dotted
// header like [sim.workload].
func (p *tomlParser) openTable(header string, lineNo int) error {
	parts, err := splitKey(header)
	if err != nil {
		return p.errf(lineNo, "bad table header [%s]: %v", header, err)
	}
	node, path, err := p.navigate(p.root, "", parts, lineNo)
	if err != nil {
		return err
	}
	p.table, p.tablePath = node, path
	p.record(path, lineNo)
	return nil
}

// openTableArray appends a new element to the array of tables named by
// a [[header]] and enters it.
func (p *tomlParser) openTableArray(header string, lineNo int) error {
	parts, err := splitKey(header)
	if err != nil {
		return p.errf(lineNo, "bad table header [[%s]]: %v", header, err)
	}
	parent, path, err := p.navigate(p.root, "", parts[:len(parts)-1], lineNo)
	if err != nil {
		return err
	}
	last := parts[len(parts)-1]
	arr, _ := parent[last].([]interface{})
	if parent[last] != nil && arr == nil {
		return p.errf(lineNo, "[[%s]] conflicts with an earlier non-array value", header)
	}
	elem := map[string]interface{}{}
	parent[last] = append(arr, elem)
	p.table = elem
	p.tablePath = fmt.Sprintf("%s[%d]", joinPath(path, last), len(arr))
	p.record(p.tablePath, lineNo)
	return nil
}

// navigate descends (creating tables as needed) through parts from
// node; arrays of tables descend into their last element.
func (p *tomlParser) navigate(node map[string]interface{}, path string, parts []string, lineNo int) (map[string]interface{}, string, error) {
	for _, part := range parts {
		next := node[part]
		childPath := joinPath(path, part)
		switch v := next.(type) {
		case nil:
			m := map[string]interface{}{}
			node[part] = m
			node = m
		case map[string]interface{}:
			node = v
		case []interface{}:
			if len(v) == 0 {
				return nil, "", p.errf(lineNo, "%s is an empty array, not a table", childPath)
			}
			m, ok := v[len(v)-1].(map[string]interface{})
			if !ok {
				return nil, "", p.errf(lineNo, "%s is an array of values, not of tables", childPath)
			}
			childPath = fmt.Sprintf("%s[%d]", childPath, len(v)-1)
			node = m
		default:
			return nil, "", p.errf(lineNo, "%s is a value, not a table", childPath)
		}
		path = childPath
	}
	return node, path, nil
}

// setKey assigns a (possibly dotted) key inside the current table.
func (p *tomlParser) setKey(key string, val interface{}, lineNo int) error {
	parts, err := splitKey(key)
	if err != nil {
		return p.errf(lineNo, "bad key %q: %v", key, err)
	}
	node, path, err := p.navigate(p.table, p.tablePath, parts[:len(parts)-1], lineNo)
	if err != nil {
		return err
	}
	last := parts[len(parts)-1]
	full := joinPath(path, last)
	if _, exists := node[last]; exists {
		return p.errf(lineNo, "duplicate key %s", full)
	}
	node[last] = val
	p.record(full, lineNo)
	return nil
}

// record notes the first line a path appeared on.
func (p *tomlParser) record(path string, lineNo int) {
	if path == "" {
		return
	}
	if _, ok := p.lines[path]; !ok {
		p.lines[path] = lineNo
	}
}

// joinPath appends one segment to a dotted path.
func joinPath(path, part string) string {
	if path == "" {
		return part
	}
	return path + "." + part
}

// splitKey splits a bare or dotted key, honoring quoted segments.
func splitKey(s string) ([]string, error) {
	var parts []string
	s = strings.TrimSpace(s)
	for s != "" {
		var part string
		if s[0] == '"' || s[0] == '\'' {
			rest, str, err := scanString(s)
			if err != nil {
				return nil, err
			}
			part, s = str, strings.TrimSpace(rest)
			if s != "" && s[0] != '.' {
				return nil, fmt.Errorf("unexpected %q after quoted segment", s)
			}
		} else {
			i := strings.IndexByte(s, '.')
			if i < 0 {
				part, s = strings.TrimSpace(s), ""
			} else {
				part, s = strings.TrimSpace(s[:i]), s[i:]
			}
			if !isBareKey(part) {
				return nil, fmt.Errorf("bad segment %q", part)
			}
		}
		parts = append(parts, part)
		if strings.HasPrefix(s, ".") {
			s = strings.TrimSpace(s[1:])
			if s == "" {
				return nil, fmt.Errorf("trailing dot")
			}
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty key")
	}
	return parts, nil
}

// isBareKey reports whether s is a valid unquoted key segment.
func isBareKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// cutAssign splits "key = value" at the first '=' outside quotes.
func cutAssign(line string) (key, value string, ok bool) {
	inStr := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr != 0:
			if c == '\\' && inStr == '"' {
				i++
			} else if c == inStr {
				inStr = 0
			}
		case c == '"' || c == '\'':
			inStr = c
		case c == '=':
			return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+1:]), true
		}
	}
	return "", "", false
}

// stripComment removes a trailing # comment, honoring strings.
func stripComment(line string) string {
	inStr := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr != 0:
			if c == '\\' && inStr == '"' {
				i++
			} else if c == inStr {
				inStr = 0
			}
		case c == '"' || c == '\'':
			inStr = c
		case c == '#':
			return line[:i]
		}
	}
	return line
}

// bracketDepth counts unbalanced '[' outside strings (multiline array
// detection).
func bracketDepth(s string) int {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr != 0:
			if c == '\\' && inStr == '"' {
				i++
			} else if c == inStr {
				inStr = 0
			}
		case c == '"' || c == '\'':
			inStr = c
		case c == '[':
			depth++
		case c == ']':
			depth--
		}
	}
	return depth
}

// scanString consumes a leading quoted string, returning the remainder
// and the decoded value.
func scanString(s string) (rest, val string, err error) {
	quote := s[0]
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c == quote:
			return s[i+1:], b.String(), nil
		case quote == '"' && c == '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("unterminated escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"', '\\', '/':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated string")
}

// parseTOMLValue parses one value: string, bool, number, or array.
func parseTOMLValue(s string, lineNo int, p *tomlParser) (interface{}, error) {
	switch {
	case s == "":
		return nil, p.errf(lineNo, "missing value")
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"' || s[0] == '\'':
		rest, val, err := scanString(s)
		if err != nil {
			return nil, p.errf(lineNo, "bad string %s: %v", s, err)
		}
		if strings.TrimSpace(rest) != "" {
			return nil, p.errf(lineNo, "unexpected %q after string", strings.TrimSpace(rest))
		}
		return val, nil
	case s[0] == '[':
		return parseTOMLArray(s, lineNo, p)
	case s[0] == '{':
		return nil, p.errf(lineNo, "inline tables are not supported; use a [table] or [[table]] header")
	default:
		clean := strings.ReplaceAll(s, "_", "")
		if n, err := strconv.ParseInt(clean, 10, 64); err == nil {
			return n, nil
		}
		if x, err := strconv.ParseFloat(clean, 64); err == nil {
			return x, nil
		}
		return nil, p.errf(lineNo, "cannot parse value %q (strings need quotes; dates and inline tables are not supported)", s)
	}
}

// parseTOMLArray parses a (possibly multiline, already joined) array.
func parseTOMLArray(s string, lineNo int, p *tomlParser) (interface{}, error) {
	if !strings.HasSuffix(strings.TrimSpace(s), "]") {
		return nil, p.errf(lineNo, "unterminated array %q", s)
	}
	inner := strings.TrimSpace(s)
	inner = strings.TrimSpace(inner[1 : len(inner)-1])
	out := []interface{}{}
	for inner != "" {
		elem, rest, err := splitArrayElem(inner)
		if err != nil {
			return nil, p.errf(lineNo, "bad array: %v", err)
		}
		if elem != "" {
			v, err := parseTOMLValue(elem, lineNo, p)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		inner = rest
	}
	return out, nil
}

// splitArrayElem cuts the next element at a top-level comma.
func splitArrayElem(s string) (elem, rest string, err error) {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr != 0:
			if c == '\\' && inStr == '"' {
				i++
			} else if c == inStr {
				inStr = 0
			}
		case c == '"' || c == '\'':
			inStr = c
		case c == '[':
			depth++
		case c == ']':
			depth--
		case c == ',' && depth == 0:
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), nil
		}
	}
	if inStr != 0 {
		return "", "", fmt.Errorf("unterminated string in array")
	}
	return strings.TrimSpace(s), "", nil
}
