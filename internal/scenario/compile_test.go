package scenario

import (
	"context"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

// The acceptance property of the whole format: a scenario that merely
// parameterizes a registry experiment caches under the same key as a
// direct submission of that experiment.
func TestRegistryCacheKeyParity(t *testing.T) {
	cases := []struct {
		doc    string
		name   string
		params experiments.Params
	}{
		{
			doc: `{"schema": "quartz-scenario/v1", "name": "fig6-run",
			      "experiment": {"name": "fig6"}}`,
			name:   "fig6",
			params: experiments.Params{},
		},
		{
			doc: `{"schema": "quartz-scenario/v1", "name": "table8-run", "seed": 99,
			      "experiment": {"name": "table8", "trials": 250}}`,
			name:   "table8",
			params: experiments.Params{Seed: 99, Trials: 250},
		},
	}
	for _, tc := range cases {
		f, err := Decode([]byte(tc.doc), tc.name+".json")
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		c, err := Compile(f)
		if err != nil {
			t.Fatalf("%s: Compile: %v", tc.name, err)
		}
		if c.Experiment.Name != tc.name {
			t.Errorf("%s: compiled to %q, want the registry entry", tc.name, c.Experiment.Name)
		}
		want := experiments.CacheKey(tc.name, tc.params)
		if got := c.CacheKey(); got != want {
			t.Errorf("%s: CacheKey = %s, want %s (registry parity broken)", tc.name, got, want)
		}
	}
}

// Two byte-different documents meaning the same experiment must share
// one cache identity.
func TestCanonicalInvariance(t *testing.T) {
	terse := `{"schema": "quartz-scenario/v1", "name": "inv",
	           "sim": {"topology": {"kind": "tree3"}, "workload": {"kind": "scatter"}}}`
	spelled := `{
	  "seed": 2014,
	  "name": "inv",
	  "title": "inv",
	  "schema": "quartz-scenario/v1",
	  "sim": {
	    "duration_ms": 10,
	    "workload": {"kind": "SCATTER", "tasks": 4, "fanout": 12, "pps": 20000, "packet_size": 400},
	    "topology": {"kind": "Tree3", "quartz": "none"},
	    "routing": {"policy": "default"}
	  }
	}`
	a, err := Decode([]byte(terse), "a.json")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode([]byte(spelled), "b.json")
	if err != nil {
		t.Fatal(err)
	}
	if ScenarioName(a.Doc) != ScenarioName(b.Doc) {
		t.Errorf("defaults spelled out changed the identity:\n%s\n%s", Canonical(a.Doc), Canonical(b.Doc))
	}

	// Title is presentation only; it must not split cache entries.
	titled := strings.Replace(terse, `"name": "inv"`, `"name": "inv", "title": "A Grand Experiment"`, 1)
	c, err := Decode([]byte(titled), "c.json")
	if err != nil {
		t.Fatal(err)
	}
	if ScenarioName(a.Doc) != ScenarioName(c.Doc) {
		t.Error("title changed the cache identity")
	}

	// A real parameter change must split them.
	changed := strings.Replace(terse, `"kind": "scatter"`, `"kind": "gather"`, 1)
	d, err := Decode([]byte(changed), "d.json")
	if err != nil {
		t.Fatal(err)
	}
	if ScenarioName(a.Doc) == ScenarioName(d.Doc) {
		t.Error("different workloads share an identity")
	}
}

func TestSweepCells(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "sw",
	         "experiment": {"name": "fig6"},
	         "sweep": {"axes": {"trials": [100, 200], "seed": [1, 2, 3]}, "trials": 2}}`
	f, err := Decode([]byte(doc), "sw.json")
	if err != nil {
		t.Fatal(err)
	}
	cells := cellsOf(&f.Doc)
	if len(cells) != 2*3*2 {
		t.Fatalf("got %d cells, want 12", len(cells))
	}
	// Sorted axis order: "seed" before "trials", last axis fastest,
	// trials innermost.
	first := cells[0]
	if first.overrides[0].name != "seed" || first.overrides[1].name != "trials" {
		t.Errorf("axis order = %v", first.overrides)
	}
	if cells[0].trial != 0 || cells[1].trial != 1 {
		t.Errorf("trials not innermost: %+v %+v", cells[0], cells[1])
	}
	if got := cells[1].label(2); got != "seed=1 trials=100, trial 2/2" {
		t.Errorf("label = %q", got)
	}

	// A sweep compiles to a synthesized experiment, not the registry
	// entry — its key must NOT collide with plain fig6.
	c, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.Experiment.Name, "scenario/") {
		t.Errorf("sweep compiled to %q, want a scenario/ name", c.Experiment.Name)
	}
	if c.CacheKey() == experiments.CacheKey("fig6", experiments.Params{}) {
		t.Error("sweep shares a cache key with the plain experiment")
	}
}

func TestSweepRunsEachCell(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "sweep-sim",
	         "sim": {"duration_ms": 1,
	                 "topology": {"kind": "tree2"},
	                 "workload": {"kind": "scatter", "tasks": 1, "fanout": 2, "pps": 500}},
	         "sweep": {"axes": {"fanout": [2, 3]}}}`
	f, err := Decode([]byte(doc), "sw.json")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	var ticks []int
	out, err := c.Experiment.Run(context.Background(), experiments.Params{
		Seed:     c.Params.Seed,
		Progress: func(done, total int) { ticks = append(ticks, done*100+total) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.Text, "== sweep-sim ["); n != 2 {
		t.Errorf("want 2 cell headers, got %d in:\n%s", n, out.Text)
	}
	if !strings.Contains(out.Text, "fanout=2") || !strings.Contains(out.Text, "fanout=3") {
		t.Errorf("cell labels missing:\n%s", out.Text)
	}
	if len(ticks) != 2 || ticks[0] != 102 || ticks[1] != 202 {
		t.Errorf("progress ticks = %v", ticks)
	}
}

func TestCloneIsolation(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "cl",
	         "sim": {"topology": {"kind": "tree3"}, "workload": {"kind": "scatter"},
	                 "faults": {"events": [{"kind": "link", "link": 1, "at_ms": 2}]}}}`
	f, err := Decode([]byte(doc), "cl.json")
	if err != nil {
		t.Fatal(err)
	}
	orig := f.Doc
	cp := orig.clone()
	cp.Sim.Workload.Tasks = 99
	cp.Sim.Faults.Events[0].Link = 99
	if orig.Sim.Workload.Tasks == 99 || orig.Sim.Faults.Events[0].Link == 99 {
		t.Error("clone shares state with the original")
	}
}
