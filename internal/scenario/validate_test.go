package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden .err files")

// Golden tests: every testdata/*.json and *.toml must fail Decode, and
// the full error text (one problem per line, file:line: path: msg) must
// match the .err file next to it. Run with -update to regenerate.
func TestValidationGoldens(t *testing.T) {
	docs, err := filepath.Glob("testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	tomls, err := filepath.Glob("testdata/*.toml")
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, tomls...)
	if len(docs) == 0 {
		t.Fatal("no testdata documents")
	}
	for _, path := range docs {
		t.Run(filepath.Base(path), func(t *testing.T) {
			_, err := Load(path)
			if err == nil {
				t.Fatalf("%s decoded cleanly; every testdata document must fail", path)
			}
			got := err.Error() + "\n"
			golden := path + ".err"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run: go test ./internal/scenario -run Goldens -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("error text drifted.\n--- got\n%s--- want\n%s", got, want)
			}
		})
	}
}

func TestValidateCollectsAllErrors(t *testing.T) {
	doc := `{
  "schema": "quartz-scenario/v1",
  "name": "Bad Name!",
  "sim": {
    "topology": {"kind": "hypercube"},
    "workload": {"kind": "scatter", "pps": -5}
  }
}`
	_, err := Decode([]byte(doc), "multi.json")
	if err == nil {
		t.Fatal("want errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("want ErrorList, got %T", err)
	}
	if len(list) < 3 {
		t.Errorf("want all 3 problems reported at once, got %d:\n%s", len(list), err)
	}
	// Sorted by line: name (3) before topology (5) before pps (6).
	for i := 1; i < len(list); i++ {
		if list[i-1].Line > list[i].Line {
			t.Errorf("errors not in document order: %v", err)
		}
	}
}

func TestExperimentSuggestion(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "t", "experiment": {"name": "fig66"}}`
	_, err := Decode([]byte(doc), "t.json")
	if err == nil || !strings.Contains(err.Error(), `did you mean "fig6"?`) {
		t.Errorf("want a fig6 suggestion, got: %v", err)
	}
}

func TestSweepValidation(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{
			"unknown axis",
			`{"schema": "quartz-scenario/v1", "name": "t", "experiment": {"name": "fig6"},
			  "sweep": {"axes": {"wavelengths": [1, 2]}}}`,
			"unknown sweep axis",
		},
		{
			"sim axis on experiment doc",
			`{"schema": "quartz-scenario/v1", "name": "t", "experiment": {"name": "fig6"},
			  "sweep": {"axes": {"fanout": [1, 2]}}}`,
			"unknown sweep axis",
		},
		{
			"cap",
			`{"schema": "quartz-scenario/v1", "name": "t", "experiment": {"name": "fig6"},
			  "sweep": {"axes": {"seed": [1,2,3,4,5,6,7,8,9,10]}, "trials": 100}}`,
			"the cap is 512",
		},
		{
			"bad value",
			`{"schema": "quartz-scenario/v1", "name": "t", "experiment": {"name": "fig6"},
			  "sweep": {"axes": {"trials": [100, "lots"]}}}`,
			"want an integer",
		},
		{
			"bad quartz for topology",
			`{"schema": "quartz-scenario/v1", "name": "t",
			  "sim": {"topology": {"kind": "jellyfish"}, "workload": {"kind": "scatter"}},
			  "sweep": {"axes": {"quartz": ["core"]}}}`,
			"does not support quartz",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.doc), "t.json")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want %q in error, got: %v", tc.want, err)
			}
		})
	}
}
