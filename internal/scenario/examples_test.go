package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

const examplesDir = "../../examples/scenarios"

// Every shipped example must load, validate, and compile — the same
// bar the CI scenario-smoke step holds them to via quartzsim -dry-run.
func TestExamplesCompile(t *testing.T) {
	entries, err := os.ReadDir(examplesDir)
	if err != nil {
		t.Fatalf("reading %s: %v", examplesDir, err)
	}
	var n int
	for _, e := range entries {
		ext := filepath.Ext(e.Name())
		if ext != ".json" && ext != ".toml" {
			continue
		}
		n++
		f, err := Load(filepath.Join(examplesDir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if _, err := Compile(f); err != nil {
			t.Errorf("%s: compile: %v", e.Name(), err)
		}
	}
	if n < 4 {
		t.Fatalf("only %d example scenarios in %s, want at least 4", n, examplesDir)
	}
}

// The shipped registry-backed examples must hit the same cache entries
// as the equivalent direct submissions — this is the acceptance bar for
// the declarative format: figure6.json coalesces with a plain
// {"experiment":"fig6"} POST, and the JSON/TOML table8 twins coalesce
// with each other and with {"experiment":"table8","params":{...}}.
func TestExamplesRegistryCacheKeyParity(t *testing.T) {
	load := func(name string) *Compiled {
		t.Helper()
		f, err := Load(filepath.Join(examplesDir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := Compile(f)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		return c
	}

	fig6 := load("figure6.json")
	if got, want := fig6.CacheKey(), experiments.CacheKey("fig6", experiments.DefaultParams()); got != want {
		t.Errorf("figure6.json cache key %s, want registry key %s", got, want)
	}

	t8json := load("table8.json")
	t8toml := load("table8.toml")
	want := experiments.CacheKey("table8", experiments.Params{Seed: 99, Trials: 250})
	if got := t8json.CacheKey(); got != want {
		t.Errorf("table8.json cache key %s, want registry key %s", got, want)
	}
	if got := t8toml.CacheKey(); got != want {
		t.Errorf("table8.toml cache key %s, want registry key %s", got, want)
	}
}
