package scenario

// Parsing: bytes in (JSON or the TOML subset), *File out — the decoded
// document plus a field-path → line-number index so that validation
// and compilation errors can point at the offending line of the
// original file, whichever format it was written in.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Error is one parse or validation problem, locatable in the source
// document: File:Line names the place, Path the schema field (dotted,
// with [i] array indices), Msg what is wrong.
type Error struct {
	File string
	Line int
	Path string
	Msg  string
}

// Error formats "file:line: path: msg", omitting unknown parts.
func (e *Error) Error() string {
	var b strings.Builder
	if e.File != "" {
		b.WriteString(e.File)
		if e.Line > 0 {
			fmt.Fprintf(&b, ":%d", e.Line)
		}
		b.WriteString(": ")
	}
	if e.Path != "" {
		b.WriteString(e.Path)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	return b.String()
}

// ErrorList is every problem found in one document, in document order
// where lines are known.
type ErrorList []*Error

// Error joins the list, one problem per line.
func (l ErrorList) Error() string {
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

// File is a decoded scenario document plus the source mapping needed
// for precise error messages.
type File struct {
	// Doc is the normalized document (defaults applied).
	Doc Doc
	// Name is the source name used in error messages (a path, or
	// something like "request" for an HTTP body).
	Name string

	lines map[string]int
}

// Line returns the 1-based source line of a field path, walking up to
// the nearest present ancestor when the field itself was omitted
// (a missing required field is reported at its enclosing table).
// Returns 0 when nothing is known.
func (f *File) Line(path string) int {
	for path != "" {
		if n, ok := f.lines[path]; ok {
			return n
		}
		path = parentPath(path)
	}
	return 0
}

// errAt builds an *Error located at path.
func (f *File) errAt(path, format string, args ...interface{}) *Error {
	return &Error{File: f.Name, Line: f.Line(path), Path: path, Msg: fmt.Sprintf(format, args...)}
}

// parentPath strips the last path segment: "a.b[2].c" → "a.b[2]",
// "a.b[2]" → "a.b", "a" → "".
func parentPath(path string) string {
	if i := strings.LastIndexAny(path, ".["); i >= 0 {
		return path[:i]
	}
	return ""
}

// Load reads and decodes path. Format is chosen by extension: ".toml"
// parses the TOML subset, everything else JSON.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data, path)
}

// Decode parses, normalizes, and validates one document. name is used
// in error messages and selects TOML when it ends in ".toml"; with any
// other name the format is sniffed (a document whose first significant
// byte is '{' is JSON, otherwise TOML). The returned error is an
// ErrorList (possibly of one) for document problems.
func Decode(data []byte, name string) (*File, error) {
	f := &File{Name: name}
	var err error
	if isTOML(data, name) {
		err = decodeTOML(data, f)
	} else {
		err = decodeJSON(data, f)
	}
	if err != nil {
		return nil, err
	}
	f.Doc.Normalize()
	if err := Validate(f); err != nil {
		return nil, err
	}
	return f, nil
}

// isTOML picks the parse format for Decode.
func isTOML(data []byte, name string) bool {
	if strings.HasSuffix(name, ".toml") {
		return true
	}
	if strings.HasSuffix(name, ".json") {
		return false
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] != '{'
}

// decodeJSON strictly decodes JSON into f.Doc and builds the line
// index.
func decodeJSON(data []byte, f *File) error {
	f.lines = jsonLineIndex(data)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f.Doc); err != nil {
		return ErrorList{jsonError(err, data, f)}
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(bytes.TrimSpace(trailing)) > 0 {
		return ErrorList{{File: f.Name, Msg: "trailing data after the document"}}
	}
	return nil
}

// jsonError converts an encoding/json error into a located *Error.
func jsonError(err error, data []byte, f *File) *Error {
	switch e := err.(type) {
	case *json.SyntaxError:
		return &Error{File: f.Name, Line: lineAt(data, e.Offset), Msg: "syntax error: " + e.Error()}
	case *json.UnmarshalTypeError:
		path := e.Field
		return &Error{File: f.Name, Line: lineAt(data, e.Offset), Path: path,
			Msg: fmt.Sprintf("cannot use JSON %s here (want %s)", e.Value, e.Type)}
	}
	// DisallowUnknownFields reports `json: unknown field "x"`; locate
	// the field by its name in the index.
	msg := err.Error()
	if name, ok := strings.CutPrefix(msg, `json: unknown field `); ok {
		name = strings.Trim(name, `"`)
		return unknownFieldError(name, f)
	}
	return &Error{File: f.Name, Msg: msg}
}

// unknownFieldError locates an unknown field by name in the line index
// and suggests the path it appeared under.
func unknownFieldError(name string, f *File) *Error {
	var paths []string
	for p := range f.lines {
		if p == name || strings.HasSuffix(p, "."+name) {
			paths = append(paths, p)
		}
	}
	sort.Slice(paths, func(i, j int) bool { return f.lines[paths[i]] < f.lines[paths[j]] })
	e := &Error{File: f.Name, Msg: fmt.Sprintf("unknown field %q", name)}
	if len(paths) > 0 {
		e.Path = paths[0]
		e.Line = f.lines[paths[0]]
		e.Msg = "unknown field"
	}
	return e
}

// lineAt converts a byte offset to a 1-based line number.
func lineAt(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte{'\n'})
}

// jsonLineIndex walks the raw token stream and records the source line
// of every field path ("sim.workload.kind") and array element
// ("faults.events[1]"). Best effort: an unparsable document yields a
// partial index, which is fine — it is only consulted for messages.
func jsonLineIndex(data []byte) map[string]int {
	index := map[string]int{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()

	type frame struct {
		prefix  string
		isObj   bool
		key     string // last key seen (objects)
		wantKey bool
		idx     int // next element (arrays)
	}
	var stack []frame

	// childPath names the value position about to be consumed.
	childPath := func() string {
		if len(stack) == 0 {
			return ""
		}
		top := &stack[len(stack)-1]
		if top.isObj {
			if top.prefix == "" {
				return top.key
			}
			return top.prefix + "." + top.key
		}
		return fmt.Sprintf("%s[%d]", top.prefix, top.idx)
	}
	// consumed advances the parent frame past one completed value.
	consumed := func() {
		if len(stack) == 0 {
			return
		}
		top := &stack[len(stack)-1]
		if top.isObj {
			top.wantKey = true
		} else {
			top.idx++
		}
	}

	for {
		tok, err := dec.Token()
		if err != nil {
			return index
		}
		// The offset after the token ends still lands on the token's
		// own line for everything we index (keys and scalars do not
		// span lines).
		line := lineAt(data, dec.InputOffset())
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{', '[':
				prefix := childPath()
				if prefix != "" {
					index[prefix] = line
				}
				stack = append(stack, frame{prefix: prefix, isObj: t == '{', wantKey: t == '{'})
			case '}', ']':
				stack = stack[:len(stack)-1]
				consumed()
			}
		case string:
			if len(stack) > 0 && stack[len(stack)-1].isObj && stack[len(stack)-1].wantKey {
				top := &stack[len(stack)-1]
				top.key = t
				top.wantKey = false
				index[childPath()] = line
			} else {
				index[childPath()] = line
				consumed()
			}
		default: // number, bool, null
			if p := childPath(); p != "" {
				index[p] = line
			}
			consumed()
		}
	}
}
