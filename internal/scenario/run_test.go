package scenario

import (
	"context"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/trace"
)

// compileSim is a helper: decode + compile a sim document.
func compileSim(t *testing.T, doc string) *Compiled {
	t.Helper()
	f, err := Decode([]byte(doc), "t.json")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runOnce(t *testing.T, c *Compiled) string {
	t.Helper()
	out, err := c.Experiment.Run(context.Background(), c.Params)
	if err != nil {
		t.Fatal(err)
	}
	return out.Text
}

func TestSimRunDeterministic(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "det",
	         "sim": {"duration_ms": 2,
	                 "topology": {"kind": "tree3", "quartz": "edge"},
	                 "workload": {"kind": "scatter", "tasks": 2, "fanout": 3, "pps": 2000},
	                 "probes": {"flows": true, "hot_ports": 3}}}`
	c := compileSim(t, doc)
	a := runOnce(t, c)
	b := runOnce(t, c)
	if a != b {
		t.Fatalf("same scenario, different output:\n--- first\n%s\n--- second\n%s", a, b)
	}
	for _, want := range []string{"delivered", "task  1:", "task  2:", "hottest ports", "flows:"} {
		if !strings.Contains(a, want) {
			t.Errorf("output missing %q:\n%s", want, a)
		}
	}
}

func TestSimRunFaults(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "cut",
	         "sim": {"duration_ms": 3,
	                 "topology": {"kind": "tree3"},
	                 "workload": {"kind": "scatter", "tasks": 1, "fanout": 2, "pps": 1000},
	                 "faults": {"detect_ms": 0.5,
	                            "events": [{"kind": "link", "link": 0, "at_ms": 1, "repair_ms": 2}]}}}`
	c := compileSim(t, doc)
	out := runOnce(t, c)
	for _, want := range []string{"fault schedule: 1 event(s)", "fail:", "repair:", "routes reconverged"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSimRunWorkloads(t *testing.T) {
	for _, kind := range []string{"gather", "scattergather", "permutation", "incast"} {
		t.Run(kind, func(t *testing.T) {
			doc := `{"schema": "quartz-scenario/v1", "name": "w",
			         "sim": {"duration_ms": 1,
			                 "topology": {"kind": "tree2"},
			                 "workload": {"kind": "` + kind + `", "fanout": 2, "pps": 500}}}`
			c := compileSim(t, doc)
			out := runOnce(t, c)
			if !strings.Contains(out, "delivered") {
				t.Errorf("no summary:\n%s", out)
			}
		})
	}
}

func TestSimRunVLBAndSampler(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "vlb",
	         "sim": {"duration_ms": 1,
	                 "topology": {"kind": "ring"},
	                 "routing": {"policy": "vlb", "vlb_fraction": 0.5},
	                 "workload": {"kind": "scatter", "tasks": 1, "fanout": 2, "pps": 1000},
	                 "probes": {"queue_sample_us": 100}}}`
	c := compileSim(t, doc)
	out := runOnce(t, c)
	if !strings.Contains(out, "queue depth by port") {
		t.Errorf("sampler summary missing:\n%s", out)
	}
}

func TestSimRunCancellation(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "cancel",
	         "sim": {"duration_ms": 1000,
	                 "topology": {"kind": "tree2"},
	                 "workload": {"kind": "scatter", "tasks": 1, "fanout": 2, "pps": 100}}}`
	c := compileSim(t, doc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Experiment.Run(ctx, c.Params); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

func TestBuildArchRejectsUnknownCombo(t *testing.T) {
	_, err := BuildArch(TopologySpec{Kind: "tree2", Quartz: "edge"}, nil, nil)
	if err == nil {
		t.Fatal("tree2/edge should not build")
	}
}

// A registry-backed scenario run goes through the registry entry.
func TestRegistryScenarioRuns(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "t2",
	         "experiment": {"name": "table2"}}`
	f, err := Decode([]byte(doc), "t.json")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Experiment.Run(context.Background(), c.Params.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if out.Text == "" {
		t.Error("empty output")
	}
}

// TestSimRunSharded runs the same document at several shard counts and
// requires identical delivered/dropped totals — the sharded engine
// family is deterministic, so sharding must never change the physics.
func TestSimRunSharded(t *testing.T) {
	summary := func(shards string) (string, string) {
		doc := `{"schema": "quartz-scenario/v1", "name": "shards",
		         "sim": {"duration_ms": 2, "shards": ` + shards + `,
		                 "topology": {"kind": "tree3", "quartz": "both"},
		                 "workload": {"kind": "scattergather", "tasks": 2, "fanout": 3, "pps": 2000},
		                 "probes": {"flows": true}}}`
		out := runOnce(t, compileSim(t, doc))
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "delivered") {
				return out, line
			}
		}
		t.Fatalf("no delivered line:\n%s", out)
		return out, ""
	}
	out1, base := summary("1")
	if !strings.Contains(out1, "1 shard(s)") {
		t.Errorf("output missing shard count:\n%s", out1)
	}
	for _, shards := range []string{"2", "4"} {
		if _, got := summary(shards); got != base {
			t.Errorf("shards=%s: %q, want %q", shards, got, base)
		}
	}
	// Same scenario, same shards: byte-identical output (cache safety).
	a, _ := summary("2")
	b, _ := summary("2")
	if a != b {
		t.Fatalf("same sharded scenario, different output:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestSimRunTraceSpans(t *testing.T) {
	doc := `{"schema": "quartz-scenario/v1", "name": "spans",
	         "sim": {"duration_ms": 2, "shards": 2,
	                 "topology": {"kind": "tree3", "quartz": "edge"},
	                 "workload": {"kind": "scatter", "tasks": 2, "fanout": 3, "pps": 2000},
	                 "probes": {"trace_spans": true}}}`
	c := compileSim(t, doc)

	// Without a recorder the probe is inert.
	plain := runOnce(t, c)

	// With one, engine and flow spans land in it — and the rendered
	// text stays byte-identical, so tracing never splits cache entries.
	rec := trace.NewRecorder()
	p := c.Params
	p.Trace = rec
	out, err := c.Experiment.Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Text != plain {
		t.Errorf("trace_spans changed the rendered output:\n--- without\n%s\n--- with\n%s", plain, out.Text)
	}
	names := map[string]int{}
	for _, s := range rec.Spans() {
		names[s.Cat+"/"+s.Name]++
	}
	for _, want := range []string{"engine/window", "engine/barrier", "net/flow"} {
		if names[want] == 0 {
			t.Errorf("no %s spans recorded (got %v)", want, names)
		}
	}
}
