package scenario

import (
	"bytes"
	"strings"
	"testing"
)

const tomlScenario = `# Fault-injection scenario, TOML form.
schema = "quartz-scenario/v1"
name = "fault-demo"
seed = 7

[sim]
duration_ms = 4.0

[sim.topology]
kind = "tree3"
quartz = "edge"

[sim.workload]
kind = "scatter"
tasks = 2
fanout = 4
pps = 1_000

[sim.faults]
detect_ms = 0.5
policy = "detour"

[[sim.faults.events]]
kind = "link"
link = 3
at_ms = 1.0
repair_ms = 2.5

[[sim.faults.events]]
kind = "switch"
switch = "agg0"
at_ms = 2.0
`

const jsonScenario = `{
  "schema": "quartz-scenario/v1",
  "name": "fault-demo",
  "seed": 7,
  "sim": {
    "duration_ms": 4,
    "topology": {"kind": "tree3", "quartz": "edge"},
    "workload": {"kind": "scatter", "tasks": 2, "fanout": 4, "pps": 1000},
    "faults": {
      "detect_ms": 0.5,
      "policy": "detour",
      "events": [
        {"kind": "link", "link": 3, "at_ms": 1, "repair_ms": 2.5},
        {"kind": "switch", "switch": "agg0", "at_ms": 2}
      ]
    }
  }
}`

func TestTOMLEquivalentToJSON(t *testing.T) {
	ft, err := Decode([]byte(tomlScenario), "s.toml")
	if err != nil {
		t.Fatalf("TOML: %v", err)
	}
	fj, err := Decode([]byte(jsonScenario), "s.json")
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !bytes.Equal(Canonical(ft.Doc), Canonical(fj.Doc)) {
		t.Errorf("canonical forms differ:\nTOML %s\nJSON %s", Canonical(ft.Doc), Canonical(fj.Doc))
	}
	if ScenarioName(ft.Doc) != ScenarioName(fj.Doc) {
		t.Errorf("names differ: %s vs %s", ScenarioName(ft.Doc), ScenarioName(fj.Doc))
	}
}

func TestTOMLLineIndex(t *testing.T) {
	f, err := Decode([]byte(tomlScenario), "s.toml")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"schema":                      2,
		"sim.topology.kind":           10,
		"sim.workload.pps":            17,
		"sim.faults.events[0]":        23,
		"sim.faults.events[1].switch": 31,
	}
	for path, line := range want {
		if got := f.Line(path); got != line {
			t.Errorf("Line(%s) = %d, want %d", path, got, line)
		}
	}
}

func TestTOMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"inline table", "schema = \"quartz-scenario/v1\"\nsim = { x = 1 }\n", "inline tables"},
		{"bad value", "name = yes\n", "strings need quotes"},
		{"duplicate key", "name = \"a\"\nname = \"b\"\n", "duplicate key"},
		{"no assign", "just some words\n", "expected key = value"},
		{"bad header", "[sim\nname = \"a\"\n", "malformed"},
		{"unterminated string", "name = \"abc\n", "unterminated string"},
		{"unknown field", "schema = \"quartz-scenario/v1\"\nname = \"t\"\n[experiment]\nname = \"fig6\"\ntrails = 3\n", "unknown field"},
		{"type error", "schema = \"quartz-scenario/v1\"\nname = \"t\"\n[experiment]\nname = \"fig6\"\ntrials = \"many\"\n", "want int"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.src), "bad.toml")
			if err == nil {
				t.Fatal("want an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "bad.toml:") {
				t.Errorf("error %q is missing the file:line location", err)
			}
		})
	}
}

func TestTOMLMultilineArray(t *testing.T) {
	src := `schema = "quartz-scenario/v1"
name = "sweep-demo"
[experiment]
name = "fig6"
[sweep]
trials = 2
[sweep.axes]
seed = [
  1,
  2,
  3, # inline comment
]
`
	f, err := Decode([]byte(src), "s.toml")
	if err != nil {
		t.Fatal(err)
	}
	vals := f.Doc.Sweep.Axes["seed"]
	if len(vals) != 3 {
		t.Fatalf("axis values = %v", vals)
	}
}

func TestTOMLDottedAndQuotedKeys(t *testing.T) {
	src := "schema = \"quartz-scenario/v1\"\nname = \"t\"\nexperiment.name = \"fig6\"\nexperiment.\"trials\" = 10\n"
	f, err := Decode([]byte(src), "s.toml")
	if err != nil {
		t.Fatal(err)
	}
	if f.Doc.Experiment.Trials != 10 {
		t.Errorf("trials = %d", f.Doc.Experiment.Trials)
	}
}
