package scenario

// The sim runner: executes a SimSpec the way cmd/quartzsim would, but
// renders only virtual-time-derived statistics, so the output of a
// scenario is a pure function of the document and the seed — a hard
// requirement for the result cache, where a cached body must equal
// what a re-execution would print.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/trace"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// BuildArch constructs the architecture a TopologySpec selects, sized
// by its dimensions and routed per the RoutingSpec. rng feeds the
// random graphs (jellyfish); pass a seeded source for reproducibility.
func BuildArch(t TopologySpec, r *RoutingSpec, rng *rand.Rand) (*core.Architecture, error) {
	p := core.ArchParams{Pods: t.Pods, ToRsPerPod: t.TorsPerPod, HostsPerToR: t.HostsPerTor}
	var arch *core.Architecture
	var err error
	switch t.Kind + "/" + t.Quartz {
	case "tree2/none":
		arch, err = core.TwoTierTreeArch(p)
	case "tree3/none":
		arch, err = core.ThreeTierTree(p)
	case "tree3/edge":
		arch, err = core.QuartzInEdge(p)
	case "tree3/core":
		arch, err = core.QuartzInCore(p)
	case "tree3/both":
		arch, err = core.QuartzInEdgeAndCore(p)
	case "ring/none":
		arch, err = core.QuartzRingArch(p)
	case "jellyfish/none":
		arch, err = core.Jellyfish(p, rng)
	case "jellyfish/edge":
		arch, err = core.QuartzInJellyfish(p, rng)
	default:
		return nil, fmt.Errorf("scenario: no architecture for topology %q with quartz %q", t.Kind, t.Quartz)
	}
	if err != nil {
		return nil, err
	}
	if r != nil && r.Policy == "vlb" {
		arch, err = arch.WithVLB(r.VLBFraction)
		if err != nil {
			return nil, err
		}
	}
	return arch, nil
}

// msTime converts virtual milliseconds (a scenario field) to sim.Time.
func msTime(ms float64) sim.Time { return sim.Time(ms * float64(sim.Millisecond)) }

// resolveSwitch finds a fault target switch by name or numeric node ID.
func resolveSwitch(g *topology.Graph, target string) (topology.NodeID, error) {
	for _, s := range g.Switches() {
		if g.Node(s).Name == target {
			return s, nil
		}
	}
	if id, err := strconv.Atoi(target); err == nil && id >= 0 && id < g.NumNodes() {
		if g.Node(topology.NodeID(id)).Kind == topology.Switch {
			return topology.NodeID(id), nil
		}
	}
	return 0, fmt.Errorf("no switch %q", target)
}

// faultSchedule lowers a FaultsSpec onto netsim's fault injector types.
func faultSchedule(fs *FaultsSpec, g *topology.Graph) (netsim.FaultSchedule, error) {
	sched := netsim.FaultSchedule{
		DetectionDelay: msTime(fs.DetectMS),
		Policy:         netsim.DropInFlight,
	}
	if fs.Policy == "detour" {
		sched.Policy = netsim.DetourInFlight
	}
	for i, e := range fs.Events {
		ev := netsim.FaultEvent{At: msTime(e.AtMS), RepairAt: msTime(e.RepairMS)}
		switch e.Kind {
		case "link":
			ev.Kind = netsim.FaultLink
			ev.Link = topology.LinkID(e.Link)
		case "switch":
			ev.Kind = netsim.FaultSwitch
			id, err := resolveSwitch(g, e.Switch)
			if err != nil {
				return sched, fmt.Errorf("faults.events[%d]: %v", i, err)
			}
			ev.Switch = id
		case "fiber":
			ev.Kind = netsim.FaultFiber
			ev.Fiber = e.Fiber
			ev.Segment = e.Segment
		default:
			return sched, fmt.Errorf("faults.events[%d]: unknown kind %q", i, e.Kind)
		}
		sched.Events = append(sched.Events, ev)
	}
	return sched, nil
}

// runSim executes one SimSpec and renders the deterministic summary.
// rec, when non-nil and the document sets probes.trace_spans, receives
// execution spans (engine windows, flow lifetimes) as a side channel.
func runSim(ctx context.Context, spec *SimSpec, seed int64, rec *trace.Recorder) (string, error) {
	arch, err := BuildArch(spec.Topology, spec.Routing, rand.New(rand.NewSource(seed)))
	if err != nil {
		return "", err
	}
	cfg := netsim.Config{
		Graph:       arch.Graph,
		Router:      arch.Router,
		SwitchModel: arch.Model,
	}
	// Sharded runs take deliveries on K goroutines; the sharded harness
	// gives each shard a private sub-harness and merges on read. The
	// partitioner may clamp the shard count, so size the harness by the
	// request — unused sub-harnesses merge as zeros.
	var h *traffic.Harness
	var sh *traffic.ShardedHarness
	if spec.Shards >= 1 {
		sh = traffic.NewShardedHarness(spec.Shards)
		cfg.Shards = spec.Shards
		cfg.OnDeliverSharded = sh.Deliver
	} else {
		h = traffic.NewHarness()
		cfg.OnDeliver = h.Deliver
	}
	net, err := netsim.New(cfg)
	if err != nil {
		return "", err
	}
	latency := func(tag int) *metrics.Stats {
		if sh != nil {
			return sh.Latency(tag)
		}
		return h.Latency(tag)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	hosts := arch.Graph.Hosts()
	end := msTime(spec.DurationMS)
	runEnd := end + 2*sim.Millisecond

	var b strings.Builder

	// Observability rides the consolidated attach surface: Observe
	// builds per-shard probes (one set on a legacy network) and merges
	// their output on read, so the same code serves both modes.
	var obs *netsim.Observer
	var sampler *netsim.QueueSampler
	tracing := spec.Probes != nil && spec.Probes.TraceSpans && rec != nil
	if p := spec.Probes; p != nil && (p.Flows || p.QueueSampleUS > 0 || tracing) {
		oo := netsim.ObserveOptions{Flows: p.Flows || tracing}
		if p.QueueSampleUS > 0 {
			oo.SampleEvery = sim.Time(p.QueueSampleUS) * sim.Microsecond
			oo.Until = end
		}
		if tracing {
			oo.Spans = rec
		}
		obs = net.Observe(oo)
		sampler = obs.Sampler()
	}

	if spec.Faults != nil {
		sched, err := faultSchedule(spec.Faults, arch.Graph)
		if err != nil {
			return "", err
		}
		fi := net.Faults()
		if arch.Ring != nil {
			if _, err := arch.Ring.AttachFaults(net); err != nil {
				return "", err
			}
		}
		fi.OnChange = func(c netsim.FaultChange) {
			if c.Reconverged {
				fmt.Fprintf(&b, "[%v] routes reconverged (%d links down)\n", c.At, c.DeadLinks)
				return
			}
			verb := "fail"
			if c.Repair {
				verb = "repair"
			}
			fmt.Fprintf(&b, "[%v] %s: %s (%d links, %d down)\n", c.At, verb, c.Event, len(c.Links), c.DeadLinks)
		}
		if err := fi.Apply(sched); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "fault schedule: %d event(s), detection %v, policy %s\n",
			len(sched.Events), sched.DetectionDelay, spec.Faults.Policy)
	}

	w := spec.Workload
	pick := func(k int) []topology.NodeID {
		perm := rng.Perm(len(hosts))
		out := make([]topology.NodeID, 0, k)
		for _, i := range perm[:k] {
			out = append(out, hosts[i])
		}
		return out
	}
	startPairs := func(pairs [][2]topology.NodeID, tag int) error {
		t := &traffic.Task{}
		for i, pr := range pairs {
			t.Add(&traffic.Stream{
				Net: net, Src: pr[0], Dst: pr[1],
				Flow: routing.FlowID(1<<20 + i), RatePPS: w.PPS,
				Size: w.PacketSize, Tag: tag, VLB: arch.VLB,
				Rand: rand.New(rand.NewSource(rng.Int63())),
			})
		}
		return t.Start(end)
	}

	var tags []int
	streams := w.Fanout
	for i := 0; i < w.Tasks; i++ {
		tag := 10 * (i + 1)
		var t *traffic.Task
		switch w.Kind {
		case "scatter", "gather", "scattergather":
			members := pick(w.Fanout + 1)
			sender, rest := members[0], members[1:]
			switch w.Kind {
			case "scatter":
				t = traffic.Scatter(net, sender, rest, w.PPS, tag, arch.VLB, rng)
			case "gather":
				t = traffic.Gather(net, rest, sender, w.PPS, tag, arch.VLB, rng)
			case "scattergather":
				if sh != nil {
					t = traffic.ShardedScatterGather(net, sh, sender, rest, w.PPS, tag, tag+1, arch.VLB, rng)
				} else {
					t = traffic.ScatterGather(net, h, sender, rest, w.PPS, tag, tag+1, arch.VLB, rng)
				}
			}
			t.SetSize(w.PacketSize)
			if err := t.Start(end); err != nil {
				return "", err
			}
		case "permutation":
			pairs := traffic.RandomPermutation(hosts, rng)
			streams = len(pairs)
			if err := startPairs(pairs, tag); err != nil {
				return "", err
			}
		case "incast":
			pairs := traffic.Incast(hosts, w.Fanout, rng)
			streams = len(pairs)
			if err := startPairs(pairs, tag); err != nil {
				return "", err
			}
		default:
			return "", fmt.Errorf("unknown workload %q", w.Kind)
		}
		tags = append(tags, tag)
	}

	// Stop the event loop promptly when the submission is cancelled
	// (quartzd timeouts, Ctrl-C in quartzsim). On a sharded network the
	// watchdog is a global event: it runs with every shard parked.
	sched := net.Scheduler()
	const watchdogEvery = 100 * sim.Microsecond
	var watchdog func()
	watchdog = func() {
		if ctx.Err() != nil {
			sched.Stop()
			return
		}
		sched.After(watchdogEvery, watchdog)
	}
	sched.After(watchdogEvery, watchdog)

	net.RunUntil(runEnd)
	if err := ctx.Err(); err != nil {
		return "", err
	}
	if tracing {
		// Side-band only: flow spans go to the recorder, never the text.
		obs.FlowSpans()
	}

	fmt.Fprintf(&b, "%s | %s | %d task(s), %d streams each at %.0f pps | %g ms",
		arch.Name, w.Kind, w.Tasks, streams, w.PPS, spec.DurationMS)
	if spec.Shards >= 1 {
		fmt.Fprintf(&b, " | %d shard(s)", net.NumShards())
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "delivered %d packets, dropped %d\n", net.Delivered(), net.Dropped())
	for _, tag := range tags {
		s := latency(tag)
		if s.N() == 0 {
			continue
		}
		fmt.Fprintf(&b, "task %2d: n=%-8d mean %8.2fus ±%.2f  min %.2f  max %.2f\n",
			tag/10, s.N(), s.Mean(), s.CI95(), s.Min(), s.Max())
	}
	if obs != nil && spec.Probes.Flows {
		fct := metrics.NewLatencyHistogram()
		if n := obs.Flows().FCTStats(fct); n > 0 {
			fmt.Fprintf(&b, "flows: %d tracked | FCT p50 %.1fus p99 %.1fus max %.1fus\n",
				n, fct.Quantile(0.50), fct.Quantile(0.99), fct.Max())
		}
	}
	if spec.Probes != nil && spec.Probes.HotPorts > 0 {
		fmt.Fprintf(&b, "hottest ports (by bytes):\n")
		for _, ps := range net.HottestPorts(spec.Probes.HotPorts) {
			from := arch.Graph.Node(ps.From)
			l := arch.Graph.Link(ps.Link)
			to := arch.Graph.Node(l.Other(ps.From))
			fmt.Fprintf(&b, "  %-10s -> %-10s  %8d pkts %10d B  util %5.1f%%  drops %d\n",
				from.Name, to.Name, ps.Packets, ps.Bytes,
				100*ps.Utilization(sched.Now()), ps.Drops)
		}
	}
	if sampler != nil {
		type portPeak struct {
			name string
			peak int
			mean float64
			n    int64
		}
		var peaks []portPeak
		for i := 0; i < arch.Graph.NumLinks(); i++ {
			l := arch.Graph.Link(topology.LinkID(i))
			for _, from := range []topology.NodeID{l.A, l.B} {
				ref := netsim.PortRef{Link: l.ID, From: from}
				st := sampler.DepthStats(ref)
				to := arch.Graph.Node(l.Other(from))
				peaks = append(peaks, portPeak{
					name: fmt.Sprintf("%-10s -> %-10s", arch.Graph.Node(from).Name, to.Name),
					peak: sampler.PeakDepth(ref), mean: st.Mean(), n: st.N(),
				})
			}
		}
		sort.Slice(peaks, func(i, j int) bool {
			if peaks[i].peak != peaks[j].peak {
				return peaks[i].peak > peaks[j].peak
			}
			return peaks[i].name < peaks[j].name
		})
		show := 5
		if show > len(peaks) {
			show = len(peaks)
		}
		fmt.Fprintf(&b, "queue depth by port (sampled every %d us; deepest %d):\n", spec.Probes.QueueSampleUS, show)
		for _, pp := range peaks[:show] {
			fmt.Fprintf(&b, "  %s  peak %7d B  mean %9.1f B over %d samples\n", pp.name, pp.peak, pp.mean, pp.n)
		}
	}
	return b.String(), nil
}
