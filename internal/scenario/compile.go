package scenario

// Compilation: a validated Doc becomes an experiments.Experiment plus
// experiments.Params — the same currency the registry, quartzbench,
// and the quartzd job service already trade in.
//
// Identity rules (the result cache keys on these):
//
//   - An "experiment" document with no sweep compiles to the registry
//     entry itself, so its CacheKey is byte-identical to the key of a
//     direct submission of that experiment with the same parameters —
//     scenario and non-scenario submissions of the same work coalesce.
//   - Everything else (sim documents, any sweep) is keyed by the
//     canonical hash of the normalized document: "scenario/<hash>".
//     Normalization applies defaults and lowercases enums, and
//     canonical marshalling fixes field order, so JSON vs TOML,
//     reordered keys, and spelled-out defaults all reach one key.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

// Compiled is a scenario lowered onto the experiment machinery.
type Compiled struct {
	// Doc is the normalized source document.
	Doc Doc
	// Experiment runs the scenario; for registry passthrough documents
	// it is the registry entry itself.
	Experiment experiments.Experiment
	// Params are the run parameters the scenario pins.
	Params experiments.Params
}

// CacheKey returns the canonical result-cache identity — equal to the
// registry experiment's key for passthrough documents.
func (c *Compiled) CacheKey() string {
	return experiments.CacheKey(c.Experiment.Name, c.Params)
}

// Compile lowers a decoded (normalized, validated) file onto the
// experiment machinery.
func Compile(f *File) (*Compiled, error) {
	doc := f.Doc
	if doc.Experiment != nil && doc.Sweep == nil {
		exp, ok := experiments.Find(doc.Experiment.Name)
		if !ok {
			return nil, ErrorList{f.errAt("experiment.name", "unknown experiment %q", doc.Experiment.Name)}
		}
		return &Compiled{
			Doc:        doc,
			Experiment: exp,
			Params: experiments.Params{
				Seed:   doc.Seed,
				Trials: doc.Experiment.Trials,
				Tasks:  doc.Experiment.Tasks,
				RPCs:   doc.Experiment.RPCs,
			},
		}, nil
	}

	c := &Compiled{
		Doc:    doc,
		Params: experiments.Params{Seed: doc.Seed},
	}
	title := doc.Title
	if doc.Sweep != nil {
		title += fmt.Sprintf(" (sweep: %d runs)", len(cellsOf(&doc)))
	}
	c.Experiment = experiments.Experiment{
		Name:    ScenarioName(doc),
		Title:   title,
		Section: "scenario",
		Run: func(ctx context.Context, p experiments.Params) (experiments.Output, error) {
			return runCells(ctx, doc, p)
		},
	}
	return c, nil
}

// ScenarioName is the registry-style identity of a non-passthrough
// scenario: "scenario/" + the first 12 hex digits of the canonical
// document hash.
func ScenarioName(d Doc) string {
	sum := sha256.Sum256(Canonical(d))
	return "scenario/" + hex.EncodeToString(sum[:6])
}

// Canonical returns the canonical byte form of a normalized document:
// JSON with the struct's fixed field order, map keys sorted (Go's
// encoder), and presentation-only fields (Title) cleared. Two
// documents describing the same experiment marshal identically.
func Canonical(d Doc) []byte {
	d.Title = ""
	b, err := json.Marshal(d)
	if err != nil {
		// Doc is plain data; Marshal cannot fail on it.
		panic("scenario: canonical marshal: " + err.Error())
	}
	return b
}

// A sweepCell is one point of the sweep grid: the axis values it pins
// plus its trial index.
type sweepCell struct {
	overrides []axisValue
	trial     int
}

type axisValue struct {
	name string
	val  interface{}
}

// label renders the cell header fragment ("tasks=4 pps=40000, trial 2/3").
func (c sweepCell) label(trials int) string {
	var parts []string
	for _, ov := range c.overrides {
		parts = append(parts, fmt.Sprintf("%s=%v", ov.name, ov.val))
	}
	s := strings.Join(parts, " ")
	if trials > 1 {
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("trial %d/%d", c.trial+1, trials)
	}
	return s
}

// cellsOf enumerates the sweep grid in deterministic order: sorted
// axis names, row-major with the last axis fastest, trials innermost.
// A doc without a sweep yields one empty cell.
func cellsOf(d *Doc) []sweepCell {
	if d.Sweep == nil {
		return []sweepCell{{}}
	}
	names := sortedAxisNames(d.Sweep.Axes)
	cells := []sweepCell{{}}
	for _, name := range names {
		vals := d.Sweep.Axes[name]
		next := make([]sweepCell, 0, len(cells)*len(vals))
		for _, c := range cells {
			for _, v := range vals {
				ov := make([]axisValue, len(c.overrides), len(c.overrides)+1)
				copy(ov, c.overrides)
				next = append(next, sweepCell{overrides: append(ov, axisValue{name, v})})
			}
		}
		cells = next
	}
	if d.Sweep.Trials > 1 {
		next := make([]sweepCell, 0, len(cells)*d.Sweep.Trials)
		for _, c := range cells {
			for t := 0; t < d.Sweep.Trials; t++ {
				next = append(next, sweepCell{overrides: c.overrides, trial: t})
			}
		}
		cells = next
	}
	return cells
}

// sortedAxisNames returns the axis names in canonical order.
func sortedAxisNames(axes map[string][]interface{}) []string {
	names := make([]string, 0, len(axes))
	for name := range axes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// runCells executes every cell of doc (one, without a sweep) and
// merges the outputs in cell order.
func runCells(ctx context.Context, doc Doc, p experiments.Params) (experiments.Output, error) {
	cells := cellsOf(&doc)
	trials := 1
	if doc.Sweep != nil {
		trials = doc.Sweep.Trials
	}
	var b strings.Builder
	out := experiments.Output{CSV: map[string]interface{}{}}
	for i, cell := range cells {
		if err := ctx.Err(); err != nil {
			return experiments.Output{}, err
		}
		cellDoc := doc.clone()
		defs := axisDefs(&cellDoc)
		for _, ov := range cell.overrides {
			def, ok := defs[ov.name]
			if !ok {
				return experiments.Output{}, fmt.Errorf("scenario: unknown axis %q", ov.name)
			}
			def.apply(&cellDoc, ov.val)
		}
		seed := cellDoc.Seed
		if seed == 0 || seed == doc.Seed {
			// The axis didn't pin a seed: the submission's seed rules.
			seed = p.Seed
		}
		seed += int64(cell.trial)

		if len(cells) > 1 {
			fmt.Fprintf(&b, "== %s [%d/%d: %s, seed %d]\n", doc.Name, i+1, len(cells), cell.label(trials), seed)
		}
		text, csv, err := runCell(ctx, &cellDoc, seed, p)
		if err != nil {
			return experiments.Output{}, fmt.Errorf("cell %d/%d (%s): %w", i+1, len(cells), cell.label(trials), err)
		}
		b.WriteString(text)
		if len(cells) > 1 {
			b.WriteString("\n")
		}
		for name, rows := range csv {
			key := name
			if len(cells) > 1 {
				key = fmt.Sprintf("%s-cell%03d", name, i+1)
			}
			out.CSV[key] = rows
		}
		tickProgress(p, i+1, len(cells))
	}
	out.Text = b.String()
	if len(out.CSV) == 0 {
		out.CSV = nil
	}
	return out, nil
}

// tickProgress forwards cell completion to the submission's hook.
func tickProgress(p experiments.Params, done, total int) {
	if p.Progress != nil {
		p.Progress(done, total)
	}
}

// runCell executes one fully-pinned scenario instance.
func runCell(ctx context.Context, d *Doc, seed int64, p experiments.Params) (string, map[string]interface{}, error) {
	if d.Experiment != nil {
		exp, ok := experiments.Find(d.Experiment.Name)
		if !ok {
			return "", nil, fmt.Errorf("unknown experiment %q", d.Experiment.Name)
		}
		cellParams := experiments.Params{
			Seed:   seed,
			Trials: d.Experiment.Trials,
			Tasks:  d.Experiment.Tasks,
			RPCs:   d.Experiment.RPCs,
			Trace:  p.Trace,
		}
		out, err := exp.Run(ctx, cellParams.WithDefaults())
		if err != nil {
			return "", nil, err
		}
		return out.Text, out.CSV, nil
	}
	text, err := runSim(ctx, d.Sim, seed, p.Trace)
	return text, nil, err
}

// clone returns a deep-enough copy of the document for per-cell
// mutation: every pointed-to section and slice is copied.
func (d Doc) clone() Doc {
	if d.Experiment != nil {
		e := *d.Experiment
		d.Experiment = &e
	}
	if d.Sim != nil {
		s := *d.Sim
		if s.Routing != nil {
			r := *s.Routing
			s.Routing = &r
		}
		if s.Faults != nil {
			fa := *s.Faults
			fa.Events = append([]FaultEventSpec(nil), fa.Events...)
			s.Faults = &fa
		}
		if s.Probes != nil {
			pr := *s.Probes
			s.Probes = &pr
		}
		d.Sim = &s
	}
	// Sweep is read-only during runs; share it.
	return d
}

// axisDef validates and applies one sweep axis.
type axisDef struct {
	check func(v interface{}) error
	apply func(d *Doc, v interface{})
}

// axisDefs returns the sweepable axes of a document, which depend on
// its type (registry parameters vs simulation knobs).
func axisDefs(d *Doc) map[string]axisDef {
	defs := map[string]axisDef{
		"seed": intAxis(1, 1<<62, func(d *Doc, n int64) { d.Seed = n }),
	}
	if d.Experiment != nil {
		defs["trials"] = intAxis(1, 1_000_000, func(d *Doc, n int64) { d.Experiment.Trials = int(n) })
		defs["tasks"] = intAxis(1, maxTasks, func(d *Doc, n int64) { d.Experiment.Tasks = int(n) })
		defs["rpcs"] = intAxis(1, 1_000_000, func(d *Doc, n int64) { d.Experiment.RPCs = int(n) })
	}
	if d.Sim != nil {
		defs["tasks"] = intAxis(1, maxTasks, func(d *Doc, n int64) { d.Sim.Workload.Tasks = int(n) })
		defs["fanout"] = intAxis(1, 4096, func(d *Doc, n int64) { d.Sim.Workload.Fanout = int(n) })
		defs["packet_size"] = intAxis(64, 9000, func(d *Doc, n int64) { d.Sim.Workload.PacketSize = int(n) })
		defs["pps"] = floatAxis(0, 100e6, func(d *Doc, x float64) { d.Sim.Workload.PPS = x })
		defs["duration_ms"] = floatAxis(0, maxDurationMS, func(d *Doc, x float64) { d.Sim.DurationMS = x })
		defs["shards"] = intAxis(1, maxShards, func(d *Doc, n int64) { d.Sim.Shards = int(n) })
		defs["workload"] = stringAxis(workloadKinds, func(d *Doc, s string) {
			d.Sim.Workload.Kind = s
			if s == "permutation" || s == "incast" {
				d.Sim.Workload.Tasks = 1
			}
		})
		defs["quartz"] = axisDef{
			check: func(v interface{}) error {
				s, ok := v.(string)
				if !ok {
					return fmt.Errorf("want a string, got %v", v)
				}
				allowed := quartzPlacements[d.Sim.Topology.Kind]
				if !oneOf(lower(s), allowed) {
					return fmt.Errorf("topology %q does not support quartz=%q (valid here: %s)",
						d.Sim.Topology.Kind, s, strings.Join(allowed, ", "))
				}
				return nil
			},
			apply: func(d *Doc, v interface{}) { d.Sim.Topology.Quartz = lower(v.(string)) },
		}
	}
	return defs
}

// asInt coerces a decoded axis value (float64 from JSON, or a Go int
// in hand-built docs) to an integer.
func asInt(v interface{}) (int64, bool) {
	switch n := v.(type) {
	case float64:
		if n != float64(int64(n)) {
			return 0, false
		}
		return int64(n), true
	case int:
		return int64(n), true
	case int64:
		return n, true
	}
	return 0, false
}

// asFloat coerces a decoded axis value to a float.
func asFloat(v interface{}) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	}
	return 0, false
}

func intAxis(min, max int64, set func(*Doc, int64)) axisDef {
	return axisDef{
		check: func(v interface{}) error {
			n, ok := asInt(v)
			if !ok {
				return fmt.Errorf("want an integer, got %v", v)
			}
			if n < min || n > max {
				return fmt.Errorf("value %d out of range [%d, %d]", n, min, max)
			}
			return nil
		},
		apply: func(d *Doc, v interface{}) { n, _ := asInt(v); set(d, n) },
	}
}

func floatAxis(min, max float64, set func(*Doc, float64)) axisDef {
	return axisDef{
		check: func(v interface{}) error {
			x, ok := asFloat(v)
			if !ok {
				return fmt.Errorf("want a number, got %v", v)
			}
			if x <= min || x > max {
				return fmt.Errorf("value %g out of range (%g, %g]", x, min, max)
			}
			return nil
		},
		apply: func(d *Doc, v interface{}) { x, _ := asFloat(v); set(d, x) },
	}
}

func stringAxis(valid []string, set func(*Doc, string)) axisDef {
	return axisDef{
		check: func(v interface{}) error {
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("want a string, got %v", v)
			}
			if !oneOf(lower(s), valid) {
				return fmt.Errorf("unknown value %q (valid: %s)", s, strings.Join(valid, ", "))
			}
			return nil
		},
		apply: func(d *Doc, v interface{}) { set(d, lower(v.(string))) },
	}
}
