// Package scenario makes experiments data instead of code: a
// declarative document format (JSON, with a TOML subset accepted) that
// describes a Quartz experiment — either a parameterization of a
// registry entry (internal/experiments) or a full packet-level
// simulation (topology, Quartz placement, routing policy, workload,
// fault schedule, probes) — plus optional sweep axes, and the
// machinery to parse, validate, and compile such a document onto the
// existing experiment runners.
//
// The compile path is:
//
//	bytes ──Decode──▶ *File{Doc, path→line index}
//	      ──Validate──▶ field-precise errors ("f.json:12: sim.workload.kind: ...")
//	      ──Compile──▶ *Compiled{experiments.Experiment, experiments.Params}
//
// A compiled scenario is indistinguishable from a registry experiment
// to everything downstream: cmd/quartzsim and cmd/quartzbench run its
// Experiment.Run directly, and internal/service submits it through the
// same queue, worker pool, and result cache as a named experiment.
//
// Cache identity is preserved across representations. A scenario that
// merely parameterizes a registry entry (an "experiment" document with
// no sweep) compiles to the registry entry itself with the scenario's
// parameters, so its experiments.CacheKey equals the key of the
// equivalent direct POST /jobs submission — identical work coalesces in
// quartzd's result cache no matter which format submitted it. Custom
// simulations and sweeps are keyed by the canonical hash of the
// normalized document (see Canonical), so two byte-different files
// describing the same experiment — JSON vs TOML, reordered keys,
// defaults spelled out vs omitted — still share one cache entry.
package scenario

import "strings"

// SchemaV1 is the required value of a document's "schema" field. It
// names the format version; quartzd also uses it to recognize a raw
// scenario document POSTed to /jobs.
const SchemaV1 = "quartz-scenario/v1"

// Doc is one parsed scenario document. Exactly one of Experiment or
// Sim must be set: Experiment parameterizes a registry entry, Sim
// describes a packet-level simulation. Sweep applies to either.
//
// Zero-valued optional fields take the defaults documented in
// SCENARIOS.md; Normalize applies them in place.
type Doc struct {
	// Schema must be SchemaV1.
	Schema string `json:"schema"`
	// Name identifies the scenario (lowercase letters, digits, "-",
	// "_", "."); it is the storage key of quartzd's PUT /scenarios/{name}.
	Name string `json:"name"`
	// Title is an optional human heading; defaults to Name.
	Title string `json:"title,omitempty"`
	// Seed makes the scenario deterministic. Default 2014
	// (experiments.DefaultParams), so an omitted seed matches an
	// omitted seed in a direct job submission.
	Seed int64 `json:"seed,omitempty"`

	// Experiment selects and parameterizes a registry entry.
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
	// Sim describes a custom packet-level simulation.
	Sim *SimSpec `json:"sim,omitempty"`
	// Sweep runs the scenario once per cell of the axis grid.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// ExperimentSpec parameterizes one experiments registry entry — the
// declarative equivalent of quartzbench -run NAME with parameter flags.
type ExperimentSpec struct {
	// Name is a registry name (quartzbench -list). Required.
	Name string `json:"name"`
	// Trials, Tasks, and RPCs override experiments.Params fields;
	// zero means the experiment default (5000 / 8 / 2000).
	Trials int `json:"trials,omitempty"`
	Tasks  int `json:"tasks,omitempty"`
	RPCs   int `json:"rpcs,omitempty"`
}

// SimSpec is a packet-level simulation: what cmd/quartzsim runs, as
// data. Topology and Workload are required; the rest defaults.
type SimSpec struct {
	// Topology picks the network under test.
	Topology TopologySpec `json:"topology"`
	// Routing overrides the architecture's routing policy.
	Routing *RoutingSpec `json:"routing,omitempty"`
	// Workload is the traffic pattern.
	Workload WorkloadSpec `json:"workload"`
	// Faults schedules failures at virtual times mid-run.
	Faults *FaultsSpec `json:"faults,omitempty"`
	// Probes selects the observability sections of the output.
	Probes *ProbesSpec `json:"probes,omitempty"`
	// DurationMS is the measured virtual time in milliseconds.
	// Default 10.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Shards, when >= 1, runs the simulation on that many parallel
	// topology shards (DESIGN.md §11). Results are identical for every
	// value — sharding buys wall-clock time on multi-core runners, not
	// different physics. 0 (the default, omitted from the canonical
	// form so pre-sharding documents keep their cache keys) selects the
	// legacy single-engine path.
	Shards int `json:"shards,omitempty"`
}

// TopologySpec selects and sizes the simulated network.
type TopologySpec struct {
	// Kind is the base topology: "tree2", "tree3", "ring" (a single
	// Quartz ring as the whole fabric), or "jellyfish". Required.
	Kind string `json:"kind"`
	// Quartz is the replacement placement on tree3/jellyfish:
	// "none" (default), "edge", "core" (tree3 only), or "both".
	// Meaningless for kind "ring" (the fabric is the ring) and
	// rejected for "tree2".
	Quartz string `json:"quartz,omitempty"`
	// Pods, TorsPerPod, and HostsPerTor size the network; zero selects
	// the paper's configuration (4 / 4 / 4).
	Pods        int `json:"pods,omitempty"`
	TorsPerPod  int `json:"tors_per_pod,omitempty"`
	HostsPerTor int `json:"hosts_per_tor,omitempty"`
}

// RoutingSpec overrides the routing policy of the architecture.
type RoutingSpec struct {
	// Policy is "default" (the architecture's own router) or "vlb"
	// (Valiant load balancing layered on it, §3.4).
	Policy string `json:"policy,omitempty"`
	// VLBFraction is the fraction of traffic routed indirectly when
	// Policy is "vlb"; default 1.0.
	VLBFraction float64 `json:"vlb_fraction,omitempty"`
}

// WorkloadSpec is the traffic pattern of a Sim scenario.
type WorkloadSpec struct {
	// Kind is "scatter", "gather", "scattergather", "permutation", or
	// "incast". Required.
	Kind string `json:"kind"`
	// Tasks is the number of concurrent task instances
	// (scatter/gather/scattergather; default 4). Permutation and
	// incast are single global patterns and reject Tasks > 1.
	Tasks int `json:"tasks,omitempty"`
	// Fanout is receivers (scatter), senders (gather), or both
	// (scattergather) per task, and the fan-in of incast. Default 12.
	Fanout int `json:"fanout,omitempty"`
	// PPS is the per-stream mean packet rate. Default 20000.
	PPS float64 `json:"pps,omitempty"`
	// PacketSize is the payload size in bytes. Default 400
	// (traffic.PacketSize).
	PacketSize int `json:"packet_size,omitempty"`
}

// FaultsSpec schedules mid-run failures (DESIGN.md §7).
type FaultsSpec struct {
	// DetectMS is the detection delay before routes reconverge, in
	// milliseconds of virtual time. Default 1.
	DetectMS float64 `json:"detect_ms,omitempty"`
	// Policy disposes of packets queued on a cut link: "drop"
	// (default) or "detour".
	Policy string `json:"policy,omitempty"`
	// Events is the schedule; at least one is required when Faults is
	// present.
	Events []FaultEventSpec `json:"events"`
}

// FaultEventSpec is one scheduled failure (and optional repair).
type FaultEventSpec struct {
	// Kind is "link", "switch", or "fiber" (fiber cuts need topology
	// kind "ring").
	Kind string `json:"kind"`
	// Link is the link ID for kind "link".
	Link int `json:"link,omitempty"`
	// Switch is the switch name or numeric node ID for kind "switch".
	Switch string `json:"switch,omitempty"`
	// Fiber and Segment address a ring fiber segment for kind "fiber".
	Fiber   int `json:"fiber,omitempty"`
	Segment int `json:"segment,omitempty"`
	// AtMS is the failure time in virtual milliseconds. Required
	// (and must be > 0).
	AtMS float64 `json:"at_ms"`
	// RepairMS, when > 0, repairs the fault at that virtual time.
	RepairMS float64 `json:"repair_ms,omitempty"`
}

// ProbesSpec selects observability sections of a Sim scenario's
// rendered output. Everything here is derived from virtual-time state,
// so enabling probes never breaks output determinism (and therefore
// never splits cache entries).
type ProbesSpec struct {
	// Flows attaches a FlowTracker and appends per-flow FCT
	// percentiles to the output.
	Flows bool `json:"flows,omitempty"`
	// QueueSampleUS samples every port's queue depth each N virtual
	// microseconds and appends the deepest-queue summary. 0 = off.
	QueueSampleUS int64 `json:"queue_sample_us,omitempty"`
	// HotPorts appends the N busiest ports by bytes. 0 = off.
	HotPorts int `json:"hot_ports,omitempty"`
	// TraceSpans records execution spans (sharded-engine barrier
	// windows, flow lifetimes) into the submission's trace recorder —
	// quartzd's per-job flight recorder, or the file behind quartzsim
	// -trace-spans. Span output is side-band: it never appears in the
	// rendered text, so enabling it cannot split cache entries. A
	// submission without a recorder ignores it.
	TraceSpans bool `json:"trace_spans,omitempty"`
}

// SweepSpec fans a scenario out over a grid of parameter values.
type SweepSpec struct {
	// Axes maps an axis name to the values it takes. Registry
	// scenarios sweep "seed", "trials", "tasks", "rpcs"; sim scenarios
	// sweep "seed", "tasks", "fanout", "pps", "packet_size",
	// "duration_ms" (numbers) and "workload", "quartz" (strings).
	// Cells enumerate the cartesian product in sorted axis-name order,
	// last axis fastest.
	Axes map[string][]interface{} `json:"axes,omitempty"`
	// Trials repeats every cell with seeds seed+0 .. seed+Trials-1.
	// Default 1.
	Trials int `json:"trials,omitempty"`
}

// Normalize applies documented defaults in place and lowercases the
// enumerated string fields, so that two documents that mean the same
// experiment become byte-identical under canonical marshalling
// (Canonical) regardless of how much they spelled out.
func (d *Doc) Normalize() {
	d.Name = lower(d.Name)
	if d.Title == "" {
		d.Title = d.Name
	}
	if d.Seed == 0 {
		d.Seed = 2014 // experiments.DefaultParams().Seed
	}
	if d.Experiment != nil {
		d.Experiment.Name = lower(d.Experiment.Name)
	}
	if d.Sim != nil {
		s := d.Sim
		s.Topology.Kind = lower(s.Topology.Kind)
		if s.Topology.Quartz == "" {
			s.Topology.Quartz = "none"
		}
		s.Topology.Quartz = lower(s.Topology.Quartz)
		if s.Routing != nil {
			if s.Routing.Policy == "" {
				s.Routing.Policy = "default"
			}
			s.Routing.Policy = lower(s.Routing.Policy)
			if s.Routing.Policy == "vlb" && s.Routing.VLBFraction == 0 {
				s.Routing.VLBFraction = 1.0
			}
			if s.Routing.Policy == "default" {
				s.Routing = nil // the zero policy: absence and presence hash alike
			}
		}
		s.Workload.Kind = lower(s.Workload.Kind)
		if s.Workload.Tasks == 0 {
			if s.Workload.Kind == "permutation" || s.Workload.Kind == "incast" {
				s.Workload.Tasks = 1 // single global patterns
			} else {
				s.Workload.Tasks = 4
			}
		}
		if s.Workload.Fanout == 0 {
			s.Workload.Fanout = 12
		}
		if s.Workload.PPS == 0 {
			s.Workload.PPS = 20e3
		}
		if s.Workload.PacketSize == 0 {
			s.Workload.PacketSize = 400 // traffic.PacketSize
		}
		if s.Faults != nil {
			if s.Faults.DetectMS == 0 {
				s.Faults.DetectMS = 1
			}
			if s.Faults.Policy == "" {
				s.Faults.Policy = "drop"
			}
			s.Faults.Policy = lower(s.Faults.Policy)
			for i := range s.Faults.Events {
				s.Faults.Events[i].Kind = lower(s.Faults.Events[i].Kind)
			}
		}
		if s.DurationMS == 0 {
			s.DurationMS = 10
		}
	}
	if d.Sweep != nil {
		if d.Sweep.Trials == 0 {
			d.Sweep.Trials = 1
		}
		for name, vals := range d.Sweep.Axes {
			for i, v := range vals {
				if sv, ok := v.(string); ok {
					vals[i] = lower(sv)
				}
			}
			d.Sweep.Axes[name] = vals
		}
	}
}

// lower canonicalizes an enumerated string field.
func lower(s string) string { return strings.ToLower(strings.TrimSpace(s)) }
