package scenario

// Semantic validation. Runs after Normalize, collects every problem
// (not just the first) into an ErrorList whose entries carry the field
// path and, via the parse-time line index, the source line.

import (
	"fmt"
	"sort"
	"strings"

	"github.com/quartz-dcn/quartz/internal/experiments"
)

// Caps keep declared work within what the service should accept from
// an untrusted document: they bound topology size, run length, and
// sweep fan-out, not expressiveness.
const (
	maxTopologyDim = 128   // pods, tors_per_pod, hosts_per_tor
	maxTasks       = 64    // concurrent workload tasks
	maxDurationMS  = 10000 // 10 s of virtual time per cell
	maxSweepCells  = 512   // cells × trials
	maxShards      = 64    // execution shards of a sim scenario
)

var (
	topologyKinds = []string{"jellyfish", "ring", "tree2", "tree3"}
	quartzKinds   = []string{"both", "core", "edge", "none"}
	workloadKinds = []string{"gather", "incast", "permutation", "scatter", "scattergather"}
	faultKinds    = []string{"fiber", "link", "switch"}
	faultPolicies = []string{"detour", "drop"}
)

// quartzPlacements lists the Quartz replacement placements each base
// topology supports (the core.Architecture builders that exist).
var quartzPlacements = map[string][]string{
	"tree2":     {"none"},
	"tree3":     {"both", "core", "edge", "none"},
	"ring":      {"none"}, // the fabric is the ring; "quartz" is meaningless
	"jellyfish": {"edge", "none"},
}

// Validate checks f.Doc (which must already be normalized) and returns
// nil or an ErrorList describing every problem found.
func Validate(f *File) error {
	var errs ErrorList
	add := func(e *Error) { errs = append(errs, e) }
	d := &f.Doc

	switch d.Schema {
	case SchemaV1:
	case "":
		add(f.errAt("schema", "missing required field (want %q)", SchemaV1))
	default:
		add(f.errAt("schema", "unsupported schema %q (this build understands %q)", d.Schema, SchemaV1))
	}
	if d.Name == "" {
		add(f.errAt("name", "missing required field: a scenario needs a name"))
	} else if !validName(d.Name) {
		add(f.errAt("name", "invalid name %q (lowercase letters, digits, '-', '_', '.')", d.Name))
	}

	switch {
	case d.Experiment == nil && d.Sim == nil:
		add(f.errAt("", `a scenario needs either an "experiment" or a "sim" section`))
	case d.Experiment != nil && d.Sim != nil:
		add(f.errAt("sim", `"experiment" and "sim" are mutually exclusive; keep one`))
	}
	if d.Experiment != nil {
		validateExperiment(f, d.Experiment, add)
	}
	if d.Sim != nil {
		validateSim(f, d.Sim, add)
	}
	if d.Sweep != nil {
		validateSweep(f, d, add)
	}
	if len(errs) == 0 {
		return nil
	}
	sort.SliceStable(errs, func(i, j int) bool { return errs[i].Line < errs[j].Line })
	return errs
}

func validateExperiment(f *File, e *ExperimentSpec, add func(*Error)) {
	if e.Name == "" {
		add(f.errAt("experiment.name", "missing required field: which registry experiment to run"))
	} else if _, ok := experiments.Find(e.Name); !ok {
		msg := fmt.Sprintf("unknown experiment %q", e.Name)
		if s := suggestExperiment(e.Name); s != "" {
			msg += fmt.Sprintf(" (did you mean %q?)", s)
		} else {
			msg += " (quartzbench -list prints the registry)"
		}
		add(f.errAt("experiment.name", "%s", msg))
	}
	checkRange(f, add, "experiment.trials", e.Trials, 0, 1_000_000)
	checkRange(f, add, "experiment.tasks", e.Tasks, 0, maxTasks)
	checkRange(f, add, "experiment.rpcs", e.RPCs, 0, 1_000_000)
}

func validateSim(f *File, s *SimSpec, add func(*Error)) {
	// Topology.
	t := &s.Topology
	if t.Kind == "" {
		add(f.errAt("sim.topology.kind", "missing required field (valid: %s)", strings.Join(topologyKinds, ", ")))
	} else if !oneOf(t.Kind, topologyKinds) {
		add(f.errAt("sim.topology.kind", "unknown topology %q (valid: %s)", t.Kind, strings.Join(topologyKinds, ", ")))
	} else if !oneOf(t.Quartz, quartzKinds) {
		add(f.errAt("sim.topology.quartz", "unknown placement %q (valid: %s)", t.Quartz, strings.Join(quartzKinds, ", ")))
	} else if allowed := quartzPlacements[t.Kind]; !oneOf(t.Quartz, allowed) {
		add(f.errAt("sim.topology.quartz", "topology %q does not support quartz=%q (valid here: %s)",
			t.Kind, t.Quartz, strings.Join(allowed, ", ")))
	}
	checkRange(f, add, "sim.topology.pods", t.Pods, 0, maxTopologyDim)
	checkRange(f, add, "sim.topology.tors_per_pod", t.TorsPerPod, 0, maxTopologyDim)
	checkRange(f, add, "sim.topology.hosts_per_tor", t.HostsPerTor, 0, maxTopologyDim)

	// Routing.
	if r := s.Routing; r != nil {
		if r.Policy != "vlb" { // Normalize drops "default"
			add(f.errAt("sim.routing.policy", "unknown policy %q (valid: default, vlb)", r.Policy))
		} else if r.VLBFraction <= 0 || r.VLBFraction > 1 {
			add(f.errAt("sim.routing.vlb_fraction", "fraction %g out of range (0, 1]", r.VLBFraction))
		}
	}

	// Workload.
	w := &s.Workload
	single := w.Kind == "permutation" || w.Kind == "incast"
	if w.Kind == "" {
		add(f.errAt("sim.workload.kind", "missing required field (valid: %s)", strings.Join(workloadKinds, ", ")))
	} else if !oneOf(w.Kind, workloadKinds) {
		add(f.errAt("sim.workload.kind", "unknown workload %q (valid: %s)", w.Kind, strings.Join(workloadKinds, ", ")))
	} else if single && w.Tasks != 1 {
		add(f.errAt("sim.workload.tasks", "%s is a single global pattern; tasks must be 1 (or omitted)", w.Kind))
	}
	if !single {
		checkRange(f, add, "sim.workload.tasks", w.Tasks, 1, maxTasks)
	}
	checkRange(f, add, "sim.workload.fanout", w.Fanout, 1, 4096)
	if w.PPS <= 0 || w.PPS > 100e6 {
		add(f.errAt("sim.workload.pps", "rate %g out of range (0, 1e8] packets/s", w.PPS))
	}
	checkRange(f, add, "sim.workload.packet_size", w.PacketSize, 64, 9000)

	// Duration.
	if s.DurationMS <= 0 || s.DurationMS > maxDurationMS {
		add(f.errAt("sim.duration_ms", "duration %g out of range (0, %d] ms", s.DurationMS, maxDurationMS))
	}

	// Shards (0 = legacy single engine; the partitioner clamps to the
	// switch count, so large values are wasteful but not wrong).
	checkRange(f, add, "sim.shards", s.Shards, 1, maxShards)

	// Faults.
	if fa := s.Faults; fa != nil {
		if !oneOf(fa.Policy, faultPolicies) {
			add(f.errAt("sim.faults.policy", "unknown policy %q (valid: %s)", fa.Policy, strings.Join(faultPolicies, ", ")))
		}
		if fa.DetectMS <= 0 {
			add(f.errAt("sim.faults.detect_ms", "detection delay %g must be > 0 ms", fa.DetectMS))
		}
		if len(fa.Events) == 0 {
			add(f.errAt("sim.faults.events", "a faults section needs at least one event"))
		}
		for i := range fa.Events {
			validateFaultEvent(f, s, &fa.Events[i], fmt.Sprintf("sim.faults.events[%d]", i), add)
		}
	}

	// Probes.
	if p := s.Probes; p != nil {
		if p.QueueSampleUS < 0 {
			add(f.errAt("sim.probes.queue_sample_us", "interval %d must be >= 0 µs", p.QueueSampleUS))
		}
		checkRange(f, add, "sim.probes.hot_ports", p.HotPorts, 0, 1024)
	}
}

func validateFaultEvent(f *File, s *SimSpec, ev *FaultEventSpec, path string, add func(*Error)) {
	switch ev.Kind {
	case "link":
		if ev.Link < 0 {
			add(f.errAt(path+".link", "link ID %d must be >= 0", ev.Link))
		}
	case "switch":
		if ev.Switch == "" {
			add(f.errAt(path+".switch", "missing switch name or node ID"))
		}
	case "fiber":
		if s.Topology.Kind != "ring" {
			add(f.errAt(path+".kind", `fiber cuts resolve against the ring's wavelength plan; they need topology kind "ring"`))
		}
		if ev.Fiber < 0 || ev.Segment < 0 {
			add(f.errAt(path, "fiber %d / segment %d must be >= 0", ev.Fiber, ev.Segment))
		}
	case "":
		add(f.errAt(path+".kind", "missing required field (valid: %s)", strings.Join(faultKinds, ", ")))
	default:
		add(f.errAt(path+".kind", "unknown fault kind %q (valid: %s)", ev.Kind, strings.Join(faultKinds, ", ")))
	}
	if ev.AtMS <= 0 {
		add(f.errAt(path+".at_ms", "fault time %g must be > 0 ms", ev.AtMS))
	} else if ev.AtMS >= s.DurationMS {
		add(f.errAt(path+".at_ms", "fault at %g ms fires after the %g ms run ends", ev.AtMS, s.DurationMS))
	}
	if ev.RepairMS != 0 && ev.RepairMS <= ev.AtMS {
		add(f.errAt(path+".repair_ms", "repair at %g ms must come after the fault at %g ms", ev.RepairMS, ev.AtMS))
	}
}

func validateSweep(f *File, d *Doc, add func(*Error)) {
	sw := d.Sweep
	checkRange(f, add, "sweep.trials", sw.Trials, 1, maxSweepCells)
	defs := axisDefs(d)
	valid := make([]string, 0, len(defs))
	for name := range defs {
		valid = append(valid, name)
	}
	sort.Strings(valid)

	cells := sw.Trials
	for _, name := range sortedAxisNames(sw.Axes) {
		vals := sw.Axes[name]
		path := "sweep.axes." + name
		def, ok := defs[name]
		if !ok {
			add(f.errAt(path, "unknown sweep axis %q (valid for this scenario type: %s)", name, strings.Join(valid, ", ")))
			continue
		}
		if len(vals) == 0 {
			add(f.errAt(path, "axis needs at least one value"))
			continue
		}
		cells *= len(vals)
		for i, v := range vals {
			if err := def.check(v); err != nil {
				add(f.errAt(fmt.Sprintf("%s[%d]", path, i), "%v", err))
			}
		}
	}
	if cells > maxSweepCells {
		add(f.errAt("sweep", "sweep expands to %d runs (cells × trials); the cap is %d", cells, maxSweepCells))
	}
}

// checkRange flags v outside [0-or-min, max]; zero is always allowed
// because it means "default".
func checkRange(f *File, add func(*Error), path string, v, min, max int) {
	if v == 0 {
		return
	}
	if v < min || v > max {
		add(f.errAt(path, "value %d out of range [%d, %d]", v, min, max))
	}
}

func oneOf(s string, set []string) bool {
	for _, x := range set {
		if s == x {
			return true
		}
	}
	return false
}

// validName restricts scenario names to registry-safe identifiers.
func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', '0' <= c && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return len(s) > 0 && len(s) <= 64
}

// suggestExperiment proposes a registry name within edit distance 2.
func suggestExperiment(name string) string {
	best, bestDist := "", 3
	for _, e := range experiments.All() {
		if d := editDistance(name, e.Name); d < bestDist {
			best, bestDist = e.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance, small-string sized.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
