package tcp

import (
	"math"
	"testing"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// dumbbell builds h0,h1 - s0 -(bottleneck)- s1 - h2 with the given
// bottleneck rate and switch model.
func dumbbell(t testing.TB, bottleneck sim.Rate, model netsim.SwitchModel) (*netsim.Network, *traffic.Harness, []topology.NodeID) {
	t.Helper()
	g := topology.New("dumbbell")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	h0 := g.AddHost("h0", 0)
	h1 := g.AddHost("h1", 0)
	h2 := g.AddHost("h2", 1)
	fast := 40 * sim.Gbps
	g.Connect(h0, s0, fast, topology.DefaultProp)
	g.Connect(h1, s0, fast, topology.DefaultProp)
	g.Connect(s0, s1, bottleneck, topology.DefaultProp)
	g.Connect(s1, h2, fast, topology.DefaultProp)
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: func(topology.Node) netsim.SwitchModel { return model },
		Host:        netsim.HostModel{NICLatency: 500 * sim.Nanosecond, ForwardLatency: 15 * sim.Microsecond, BufferBytes: 4 << 20},
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, h, []topology.NodeID{h0, h1, h2}
}

func TestSingleFlowFillsBottleneck(t *testing.T) {
	net, h, hosts := dumbbell(t, 1*sim.Gbps, netsim.Arista7150)
	c, err := New(Config{
		Net: net, Harness: h, Src: hosts[0], Dst: hosts[2],
		Flow: 10, DataTag: 1, AckTag: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	net.Engine().RunUntil(50 * sim.Millisecond)
	// Goodput should reach ~90%+ of the 1 Gb/s bottleneck.
	tput := c.Throughput()
	if tput < 0.85e9 || tput > 1.01e9 {
		t.Errorf("throughput = %.2f Mb/s, want ~1000", tput/1e6)
	}
}

func TestFiniteFlowCompletes(t *testing.T) {
	net, h, hosts := dumbbell(t, 10*sim.Gbps, netsim.Arista7150)
	var fct sim.Time
	c, err := New(Config{
		Net: net, Harness: h, Src: hosts[0], Dst: hosts[2],
		Flow: 10, DataTag: 1, AckTag: 2,
		Bytes:      1_500_000, // 1000 segments
		OnComplete: func(d sim.Time) { fct = d },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	net.Engine().RunUntil(200 * sim.Millisecond)
	if !c.Done() {
		t.Fatalf("flow incomplete: acked %d segments", c.DeliveredSegments())
	}
	if fct <= 0 {
		t.Fatal("no completion callback")
	}
	// 12 Mbit at 10 Gb/s is 1.2 ms on the wire; slow start roughly
	// doubles per RTT (~5 µs), so completion within a few ms.
	if fct > 10*sim.Millisecond {
		t.Errorf("FCT = %v, want a few ms", fct)
	}
	if c.DeliveredSegments() != 1000 {
		t.Errorf("delivered %d segments, want 1000", c.DeliveredSegments())
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	net, h, hosts := dumbbell(t, 1*sim.Gbps, netsim.Arista7150)
	mk := func(src topology.NodeID, flow routing.FlowID, dataTag int) *Conn {
		c, err := New(Config{
			Net: net, Harness: h, Src: src, Dst: hosts[2],
			Flow: flow, DataTag: dataTag, AckTag: dataTag + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := mk(hosts[0], 10, 1)
	b := mk(hosts[1], 20, 3)
	a.Start()
	b.Start()
	net.Engine().RunUntil(100 * sim.Millisecond)
	ta, tb := a.Throughput(), b.Throughput()
	total := ta + tb
	if total < 0.8e9 {
		t.Errorf("aggregate = %.0f Mb/s, want near 1000", total/1e6)
	}
	ratio := ta / tb
	if ratio < 1 {
		ratio = 1 / ratio
	}
	// AIMD fairness: within 2x of each other over 100 ms.
	if ratio > 2.0 {
		t.Errorf("unfair split: %.0f vs %.0f Mb/s", ta/1e6, tb/1e6)
	}
}

func TestLossRecovery(t *testing.T) {
	// A tiny bottleneck buffer forces drops; the flow must still finish.
	small := netsim.Arista7150
	small.BufferBytes = 15_000 // 10 segments
	net, h, hosts := dumbbell(t, 500*sim.Mbps, small)
	c, err := New(Config{
		Net: net, Harness: h, Src: hosts[0], Dst: hosts[2],
		Flow: 10, DataTag: 1, AckTag: 2,
		Bytes: 750_000, // 500 segments
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	net.Engine().RunUntil(2 * sim.Second)
	if !c.Done() {
		t.Fatalf("flow incomplete after loss: acked %d/500, retrans %d, cwnd %.1f",
			c.DeliveredSegments(), c.Retransmits(), c.Cwnd())
	}
	if c.Retransmits() == 0 {
		t.Error("expected retransmissions with a 10-segment buffer")
	}
}

func TestDCTCPKeepsQueuesShort(t *testing.T) {
	// Same bottleneck, ECN threshold at 30 KB: DCTCP holds the queue
	// near the threshold while Reno fills the whole buffer.
	run := func(mode Mode) (maxQueue int) {
		model := netsim.Arista7150
		model.BufferBytes = 500_000
		model.ECNThresholdBytes = 30_000
		net, h, hosts := dumbbell(t, 1*sim.Gbps, model)
		c, err := New(Config{
			Net: net, Harness: h, Src: hosts[0], Dst: hosts[2],
			Flow: 10, DataTag: 1, AckTag: 2, Mode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		g := net.Graph()
		bott, _ := g.FindLink(g.Switches()[0], g.Switches()[1])
		eng := net.Engine()
		// Sample the bottleneck queue every 100 µs.
		var tick func()
		tick = func() {
			if q := net.QueuedBytes(bott.ID, g.Switches()[0]); q > maxQueue {
				maxQueue = q
			}
			if eng.Now() < 50*sim.Millisecond {
				eng.After(100*sim.Microsecond, tick)
			}
		}
		eng.After(100*sim.Microsecond, tick)
		eng.RunUntil(50 * sim.Millisecond)
		if tput := c.Throughput(); tput < 0.7e9 {
			t.Errorf("%v throughput = %.0f Mb/s, want near line rate", mode, tput/1e6)
		}
		return maxQueue
	}
	reno := run(Reno)
	dctcp := run(DCTCP)
	if dctcp >= reno {
		t.Errorf("DCTCP max queue %d >= Reno %d; ECN had no effect", dctcp, reno)
	}
	if dctcp > 150_000 {
		t.Errorf("DCTCP max queue %d B, want well under the 500 KB buffer", dctcp)
	}
}

func TestConfigErrors(t *testing.T) {
	net, h, hosts := dumbbell(t, sim.Gbps, netsim.Arista7150)
	if _, err := New(Config{Net: nil, Harness: h, Src: hosts[0], Dst: hosts[2]}); err == nil {
		t.Error("nil net accepted")
	}
	if _, err := New(Config{Net: net, Harness: h, Src: hosts[0], Dst: hosts[0]}); err == nil {
		t.Error("src==dst accepted")
	}
	if _, err := New(Config{Net: net, Harness: h, Src: hosts[0], Dst: hosts[2], MSS: 8}); err == nil {
		t.Error("tiny MSS accepted")
	}
	if Reno.String() != "reno" || DCTCP.String() != "dctcp" {
		t.Error("Mode strings wrong")
	}
}

func TestRTTEstimation(t *testing.T) {
	net, h, hosts := dumbbell(t, 10*sim.Gbps, netsim.Arista7150)
	c, err := New(Config{
		Net: net, Harness: h, Src: hosts[0], Dst: hosts[2],
		Flow: 10, DataTag: 1, AckTag: 2, Bytes: 150_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	net.Engine().RunUntil(50 * sim.Millisecond)
	if !c.Done() {
		t.Fatal("flow incomplete")
	}
	// The base RTT is a few microseconds; with self-induced queueing
	// during slow start SRTT lands in the tens of microseconds, and the
	// RTO sits at its 200 µs floor.
	if c.srtt <= 0 || c.srtt > 200*sim.Microsecond {
		t.Errorf("srtt = %v, want tens of us", c.srtt)
	}
	if c.rto != 200*sim.Microsecond {
		t.Errorf("rto = %v, want the 200us floor", c.rto)
	}
	if math.IsNaN(c.Alpha()) {
		t.Error("alpha NaN")
	}
}
