// Package tcp implements a window-based reliable transport on the
// packet simulator: TCP Reno-style congestion control and the DCTCP
// variant the paper discusses (§2.1.4). It exists for two reasons:
//
//   - Realistic cross-traffic: the §6 prototype's bursty flows were
//     nuttcp/TCP, whose self-clocking holds standing queues at shared
//     links — the effect behind the tree's 70% RPC slowdown in
//     Figure 14. The open-loop generators in internal/traffic cannot
//     hold a queue; Conn can.
//   - Flow-completion-time experiments: short-flow latency under
//     congestion-control regimes, the subject of the related work the
//     paper positions itself against (DCTCP, D3, PDQ, DeTail).
//
// The model is deliberately compact: one maximum-segment-size packet
// per sequence number, cumulative ACKs, fast retransmit on three
// duplicate ACKs, RTO with exponential backoff, slow start and AIMD
// congestion avoidance, and (in DCTCP mode) ECN-fraction-proportional
// window reduction. There is no SACK, no delayed ACK, no Nagle.
package tcp

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// Mode selects the congestion controller.
type Mode int

// Congestion-control modes.
const (
	// Reno: slow start, AIMD, fast retransmit/recovery.
	Reno Mode = iota
	// DCTCP: Reno's machinery with ECN-fraction-proportional window
	// decrease (Alizadeh et al., the paper's [19]).
	DCTCP
)

func (m Mode) String() string {
	if m == DCTCP {
		return "dctcp"
	}
	return "reno"
}

// Config describes one connection.
type Config struct {
	Net     *netsim.Network
	Harness *traffic.Harness
	Src     topology.NodeID
	Dst     topology.NodeID
	// Flow is the ECMP flow identity (per-connection).
	Flow routing.FlowID
	// DataTag and AckTag must be unique per connection in the harness.
	DataTag, AckTag int
	// Bytes is the flow size; 0 means unbounded (runs until the
	// simulation ends — bulk cross-traffic).
	Bytes int64
	// MSS is the segment payload size on the wire (1460+40=1500 when 0).
	MSS int
	// Mode selects Reno or DCTCP.
	Mode Mode
	// InitRTO seeds the retransmission timer before an RTT estimate
	// exists (1 ms when 0; datacenter scale).
	InitRTO sim.Time
	// OnComplete fires when the last byte is acknowledged (finite
	// flows only).
	OnComplete func(fct sim.Time)
}

// Conn is a simulated TCP sender and its receiver.
//
// The receiver side is implicit: every delivered data segment
// immediately generates a cumulative ACK carrying the highest
// in-order sequence received and the ECN echo of the segment that
// triggered it.
type Conn struct {
	cfg Config
	eng *sim.Engine

	// Sender state. Sequence numbers count segments, not bytes.
	nextSeq   uint64 // next new segment to send
	sendHi    uint64 // highest segment ever sent + 1
	ackedTo   uint64 // cumulative: all segments < ackedTo delivered
	totalSegs uint64 // 0 if unbounded

	cwnd           float64 // in segments
	ssthresh       float64
	dupAcks        int
	inFastRecovery bool

	// DCTCP state.
	alpha        float64
	ackedWindow  uint64 // ACKs since last alpha update
	markedWindow uint64
	alphaSeq     uint64 // update alpha when ackedTo passes this

	// RTT estimation (SRTT/RTTVAR, RFC 6298 style).
	srtt, rttvar sim.Time
	rto          sim.Time
	rtoGen       uint64 // invalidates stale timers
	sendTimes    map[uint64]sim.Time

	// Receiver state.
	rcvNext uint64 // next in-order segment expected

	started   sim.Time
	done      bool
	retrans   uint64
	delivered uint64
}

// New creates a connection and registers its handlers; call Start to
// begin transmitting.
func New(cfg Config) (*Conn, error) {
	if cfg.Net == nil || cfg.Harness == nil {
		return nil, fmt.Errorf("tcp: nil network or harness")
	}
	if cfg.Src == cfg.Dst {
		return nil, fmt.Errorf("tcp: src == dst")
	}
	if cfg.MSS == 0 {
		cfg.MSS = 1500
	}
	if cfg.MSS < 64 {
		return nil, fmt.Errorf("tcp: MSS %d too small", cfg.MSS)
	}
	if cfg.InitRTO == 0 {
		cfg.InitRTO = sim.Millisecond
	}
	c := &Conn{
		cfg:       cfg,
		eng:       cfg.Net.Engine(),
		cwnd:      2,
		ssthresh:  64,
		alpha:     0,
		rto:       cfg.InitRTO,
		sendTimes: make(map[uint64]sim.Time),
	}
	if cfg.Bytes > 0 {
		c.totalSegs = uint64((cfg.Bytes + int64(cfg.MSS) - 1) / int64(cfg.MSS))
	}
	cfg.Harness.Handle(cfg.DataTag, c.onData)
	cfg.Harness.Handle(cfg.AckTag, c.onAck)
	return c, nil
}

// Start begins transmission at the current simulation time.
func (c *Conn) Start() {
	c.started = c.eng.Now()
	c.alphaSeq = c.window()
	c.pump()
	c.armRTO()
}

// Done reports whether a finite flow has been fully acknowledged.
func (c *Conn) Done() bool { return c.done }

// Retransmits returns the number of retransmitted segments.
func (c *Conn) Retransmits() uint64 { return c.retrans }

// Cwnd returns the current congestion window in segments.
func (c *Conn) Cwnd() float64 { return c.cwnd }

// Alpha returns the DCTCP congestion estimate (0 for Reno).
func (c *Conn) Alpha() float64 { return c.alpha }

// window returns cwnd in whole segments, at least 1.
func (c *Conn) window() uint64 {
	w := uint64(c.cwnd)
	if w < 1 {
		w = 1
	}
	return w
}

// pump transmits new segments while the window allows.
func (c *Conn) pump() {
	if c.done {
		return
	}
	for c.nextSeq-c.ackedTo < c.window() {
		if c.totalSegs > 0 && c.nextSeq >= c.totalSegs {
			return
		}
		c.transmit(c.nextSeq)
		c.nextSeq++
		if c.nextSeq > c.sendHi {
			c.sendHi = c.nextSeq
		}
	}
}

// transmit sends one data segment.
func (c *Conn) transmit(seq uint64) {
	c.sendTimes[seq] = c.eng.Now()
	c.cfg.Net.Send(netsim.Packet{
		Flow: c.cfg.Flow, Src: c.cfg.Src, Dst: c.cfg.Dst,
		Size: c.cfg.MSS, Tag: c.cfg.DataTag,
		UserData: seq, Waypoint: netsim.NoWaypoint,
	})
}

// ackSize is the ACK segment size on the wire.
const ackSize = 64

// onData runs at the receiver for every delivered data segment: advance
// the in-order point and return a cumulative ACK echoing the ECN mark.
func (c *Conn) onData(d netsim.Delivery) {
	seq := d.Packet.UserData
	if seq == c.rcvNext {
		c.rcvNext++
		// A real receiver buffers out-of-order segments; with a single
		// path and FIFO queues, reordering only happens after loss, and
		// the cumulative ACK scheme retransmits from the hole anyway.
	}
	ack := netsim.Packet{
		Flow: c.cfg.Flow + 1, Src: c.cfg.Dst, Dst: c.cfg.Src,
		Size: ackSize, Tag: c.cfg.AckTag,
		UserData: c.rcvNext, Waypoint: netsim.NoWaypoint,
	}
	if d.Packet.Marked {
		// Echo congestion experienced (simplified: per-ACK echo).
		ack.Marked = true
	}
	c.cfg.Net.Send(ack)
}

// onAck runs at the sender for every delivered ACK.
func (c *Conn) onAck(d netsim.Delivery) {
	if c.done {
		return
	}
	ackTo := d.Packet.UserData

	// DCTCP bookkeeping: count marks per window of ACKs.
	if c.cfg.Mode == DCTCP {
		c.ackedWindow++
		if d.Packet.Marked {
			c.markedWindow++
		}
		if ackTo >= c.alphaSeq {
			frac := 0.0
			if c.ackedWindow > 0 {
				frac = float64(c.markedWindow) / float64(c.ackedWindow)
			}
			const g = 1.0 / 16
			c.alpha = (1-g)*c.alpha + g*frac
			c.ackedWindow, c.markedWindow = 0, 0
			c.alphaSeq = ackTo + c.window()
			if frac > 0 {
				// DCTCP decrease: cwnd *= 1 - alpha/2, once per window.
				c.cwnd *= 1 - c.alpha/2
				if c.cwnd < 1 {
					c.cwnd = 1
				}
			}
		}
	}

	switch {
	case ackTo > c.ackedTo:
		// New data acknowledged.
		newly := ackTo - c.ackedTo
		if ts, ok := c.sendTimes[c.ackedTo]; ok {
			c.updateRTT(c.eng.Now() - ts)
		}
		for s := c.ackedTo; s < ackTo; s++ {
			delete(c.sendTimes, s)
		}
		c.ackedTo = ackTo
		c.delivered += newly
		c.dupAcks = 0
		if c.inFastRecovery && ackTo >= c.sendHi {
			c.inFastRecovery = false
			c.cwnd = c.ssthresh
		}
		if !c.inFastRecovery {
			if c.cwnd < c.ssthresh {
				c.cwnd += float64(newly) // slow start
			} else {
				c.cwnd += float64(newly) / c.cwnd // congestion avoidance
			}
		}
		c.rtoGen++ // fresh progress: re-arm the timer
		c.armRTO()
		if c.totalSegs > 0 && c.ackedTo >= c.totalSegs {
			c.done = true
			c.rtoGen++
			if c.cfg.OnComplete != nil {
				c.cfg.OnComplete(c.eng.Now() - c.started)
			}
			return
		}
	case ackTo == c.ackedTo:
		c.dupAcks++
		if c.dupAcks == 3 && !c.inFastRecovery {
			// Fast retransmit: resend the hole, halve the window.
			c.ssthresh = c.cwnd / 2
			if c.ssthresh < 2 {
				c.ssthresh = 2
			}
			c.cwnd = c.ssthresh
			c.inFastRecovery = true
			c.retrans++
			c.transmit(c.ackedTo)
		}
	}
	c.pump()
}

// updateRTT folds one sample into SRTT/RTTVAR and recomputes the RTO.
func (c *Conn) updateRTT(sample sim.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		d := c.srtt - sample
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < 200*sim.Microsecond {
		c.rto = 200 * sim.Microsecond // datacenter-scale minimum RTO
	}
}

// armRTO schedules the retransmission timer for the current outstanding
// data; stale timers are invalidated by rtoGen.
func (c *Conn) armRTO() {
	if c.done || c.ackedTo == c.nextSeq {
		return
	}
	gen := c.rtoGen
	rto := c.rto
	c.eng.After(rto, func() {
		if c.done || gen != c.rtoGen || c.ackedTo == c.nextSeq {
			return
		}
		// Timeout: collapse to slow start and resend the hole.
		c.ssthresh = c.cwnd / 2
		if c.ssthresh < 2 {
			c.ssthresh = 2
		}
		c.cwnd = 1
		c.inFastRecovery = false
		c.dupAcks = 0
		c.retrans++
		c.rto *= 2 // exponential backoff until the next RTT sample
		if c.rto > 100*sim.Millisecond {
			c.rto = 100 * sim.Millisecond
		}
		c.transmit(c.ackedTo)
		c.armRTO()
	})
}

// DeliveredSegments reports how many segments have been cumulatively
// acknowledged.
func (c *Conn) DeliveredSegments() uint64 { return c.delivered }

// Throughput returns the goodput in bits per second since Start.
func (c *Conn) Throughput() float64 {
	elapsed := c.eng.Now() - c.started
	if elapsed <= 0 {
		return 0
	}
	return float64(c.delivered) * float64(c.cfg.MSS) * 8 / elapsed.Seconds()
}
