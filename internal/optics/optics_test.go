package optics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxMuxesWithoutAmp(t *testing.T) {
	// The paper's worked example: (4 - (-15)) / 6 = 3.17 -> 3.
	if got := DefaultParts.MaxMuxesWithoutAmp(); got != 3 {
		t.Errorf("MaxMuxesWithoutAmp = %d, want 3", got)
	}
	lossless := DefaultParts
	lossless.MuxInsertionLossDB = 0
	if got := lossless.MaxMuxesWithoutAmp(); got != math.MaxInt32 {
		t.Errorf("zero-loss mux budget = %d, want unbounded", got)
	}
}

func TestPlanRing24(t *testing.T) {
	// §3.3: a 24-node ring needs one amplifier for every two switches,
	// i.e. 12 amplifiers.
	b, err := PlanRing(24, DefaultParts)
	if err != nil {
		t.Fatal(err)
	}
	if b.AmpAfterHops != 2 {
		t.Errorf("AmpAfterHops = %d, want 2", b.AmpAfterHops)
	}
	if b.Amplifiers != 12 {
		t.Errorf("Amplifiers = %d, want 12", b.Amplifiers)
	}
	if b.Attenuators != 12 {
		t.Errorf("Attenuators = %d, want 12", b.Attenuators)
	}
	if err := ValidateRing(b, DefaultParts, 0.05); err != nil {
		t.Errorf("24-node plan invalid: %v", err)
	}
}

func TestPlanRingTinyNeedsNoAmps(t *testing.T) {
	// A 2-node ring has a single 2-mux hop: within the 3-mux budget.
	b, err := PlanRing(2, DefaultParts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Amplifiers != 0 || b.AmpAfterHops != 0 {
		t.Errorf("2-node ring plan = %+v, want no amplifiers", b)
	}
	if err := ValidateRing(b, DefaultParts, 0.05); err != nil {
		t.Errorf("2-node plan invalid: %v", err)
	}
}

func TestPlanRingErrors(t *testing.T) {
	if _, err := PlanRing(0, DefaultParts); err == nil {
		t.Error("size 0 accepted")
	}
	weak := DefaultParts
	weak.TxPowerDBm = -20
	if _, err := PlanRing(8, weak); err == nil {
		t.Error("tx below sensitivity accepted")
	}
	lossy := DefaultParts
	lossy.MuxInsertionLossDB = 30
	if _, err := PlanRing(8, lossy); err == nil {
		t.Error("mux loss exceeding whole budget accepted")
	}
}

func TestPathFeasible(t *testing.T) {
	// 3 muxes, no fiber: 4 - 18 = -14 dBm >= -15: feasible.
	power, ok := PathFeasible(DefaultParts, 3, 0, 0)
	if !ok || power != -14 {
		t.Errorf("3 muxes: power=%v ok=%v, want -14 dBm feasible", power, ok)
	}
	// 4 muxes: 4 - 24 = -20 dBm < -15: infeasible.
	if _, ok := PathFeasible(DefaultParts, 4, 0, 0); ok {
		t.Error("4 muxes should be infeasible without amplification")
	}
	// 4 muxes + 1 amp: 4 - 24 + 25 = 5 dBm: feasible (but hot).
	power, ok = PathFeasible(DefaultParts, 4, 0, 1)
	if !ok || power != 5 {
		t.Errorf("amped path power=%v ok=%v, want 5 dBm feasible", power, ok)
	}
	// Negative inputs rejected.
	if _, ok := PathFeasible(DefaultParts, -1, 0, 0); ok {
		t.Error("negative mux count accepted")
	}
	// 40 km of fiber at 0.25 dB/km is the transceiver's rated reach:
	// 4 - 10 = -6 dBm with no muxes.
	power, ok = PathFeasible(DefaultParts, 0, 40, 0)
	if !ok || power != -6 {
		t.Errorf("40km path power=%v ok=%v, want -6 dBm feasible", power, ok)
	}
}

func TestAttenuationNeeded(t *testing.T) {
	// Arrival at 5 dBm with a -7 dBm overload limit: need 12 dB.
	if got := AttenuationNeeded(DefaultParts, 5); got != 12 {
		t.Errorf("AttenuationNeeded(5 dBm) = %v, want 12", got)
	}
	if got := AttenuationNeeded(DefaultParts, -10); got != 0 {
		t.Errorf("AttenuationNeeded(-10 dBm) = %v, want 0", got)
	}
}

func TestValidateRingRejectsBadPlans(t *testing.T) {
	// A no-amplifier plan for a large ring must fail.
	bad := RingBudget{RingSize: 24}
	if err := ValidateRing(bad, DefaultParts, 0.05); err == nil {
		t.Error("unamplified 24-node ring validated")
	}
	// Spacing too wide: runs of 2*4-1 = 7 muxes = 42 dB dips below.
	wide := RingBudget{RingSize: 24, AmpAfterHops: 4, Amplifiers: 6}
	if err := ValidateRing(wide, DefaultParts, 0.05); err == nil {
		t.Error("4-hop spacing validated")
	}
	// Weak amplifiers: per-period loss exceeds gain.
	weakAmp := DefaultParts
	weakAmp.AmpGainDB = 10
	plan := RingBudget{RingSize: 24, AmpAfterHops: 2, Amplifiers: 12}
	if err := ValidateRing(plan, weakAmp, 0.05); err == nil {
		t.Error("weak amplifier plan validated")
	}
	// Trivial ring always valid.
	if err := ValidateRing(RingBudget{RingSize: 1}, DefaultParts, 0.05); err != nil {
		t.Errorf("1-node ring: %v", err)
	}
}

// TestPlanRingProperty checks that for any ring size, the produced plan
// validates with the default parts.
func TestPlanRingProperty(t *testing.T) {
	f := func(size uint8) bool {
		n := int(size%40) + 1
		b, err := PlanRing(n, DefaultParts)
		if err != nil {
			return false
		}
		return ValidateRing(b, DefaultParts, 0.05) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAmplifierCountScalesLinearly checks the §3.3 claim shape: the
// amplifier count is about size/2 for the default parts.
func TestAmplifierCountScalesLinearly(t *testing.T) {
	for _, size := range []int{8, 16, 24, 33} {
		b, err := PlanRing(size, DefaultParts)
		if err != nil {
			t.Fatal(err)
		}
		want := (size + 1) / 2
		if b.Amplifiers != want {
			t.Errorf("size %d: %d amplifiers, want %d", size, b.Amplifiers, want)
		}
	}
}

func TestMuxTraversals(t *testing.T) {
	// One hop traverses two DWDMs (§3.3); h hops traverse h+1.
	cases := map[int]int{0: 0, 1: 2, 2: 3, 16: 17}
	for hops, want := range cases {
		if got := MuxTraversals(hops); got != want {
			t.Errorf("MuxTraversals(%d) = %d, want %d", hops, got, want)
		}
	}
}

func TestWalkChannelUnamplified(t *testing.T) {
	// Two hops, no amps: 3 muxes = 18 dB -> arrive at -14 dBm, feasible.
	min, arrival := WalkChannel(DefaultParts, 2, 0, 0)
	if arrival != -14 {
		t.Errorf("arrival = %v, want -14", arrival)
	}
	if min != -14 {
		t.Errorf("min = %v, want -14 (monotone decay)", min)
	}
	// Three hops, no amps: 4 muxes = -20 dBm, below sensitivity.
	min, _ = WalkChannel(DefaultParts, 3, 0, 0)
	if min >= DefaultParts.RxSensitivityDBm {
		t.Errorf("3 unamplified hops min = %v, want below -15", min)
	}
}

func TestWalkChannelAmplified(t *testing.T) {
	// The longest path of a 33-ring (16 hops) with amps every 2 switches
	// never dips below sensitivity and arrives hot (attenuator needed).
	min, arrival := WalkChannel(DefaultParts, 16, 2, 0.05)
	if min < DefaultParts.RxSensitivityDBm {
		t.Errorf("min = %v, want >= -15", min)
	}
	if arrival <= DefaultParts.RxSensitivityDBm {
		t.Errorf("arrival = %v, want comfortably above sensitivity", arrival)
	}
	if att := AttenuationNeeded(DefaultParts, arrival); att < 0 {
		t.Errorf("negative attenuation %v", att)
	}
	// Amplifiers saturate at launch power: the level never exceeds Tx.
	if arrival > DefaultParts.TxPowerDBm {
		t.Errorf("arrival %v exceeds launch power", arrival)
	}
}

func TestPlanRingSmallRingsNeedNoAmps(t *testing.T) {
	// Up to 5 switches the longest shortest arc is 2 hops = 3 muxes:
	// within the budget.
	for size := 1; size <= 5; size++ {
		b, err := PlanRing(size, DefaultParts)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if b.Amplifiers != 0 {
			t.Errorf("size %d: %d amplifiers, want 0", size, b.Amplifiers)
		}
	}
	// Size 6: 3-hop arcs pay 4 muxes and need amplification.
	b, err := PlanRing(6, DefaultParts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Amplifiers == 0 {
		t.Error("size 6 should need amplifiers (3-hop arcs pay 4 muxes)")
	}
}

func TestITUGridAnchor(t *testing.T) {
	// Channel 0 sits at the 193.1 THz anchor, ~1552.52 nm.
	if f := ChannelFrequencyTHz(0, Spacing50GHz); f != 193.1 {
		t.Errorf("anchor frequency = %v, want 193.1", f)
	}
	nm := ChannelWavelengthNm(0, Spacing50GHz)
	if math.Abs(nm-1552.52) > 0.01 {
		t.Errorf("anchor wavelength = %v nm, want ~1552.52", nm)
	}
	// 50 GHz spacing: adjacent channels ~0.4 nm apart.
	gap := ChannelWavelengthNm(0, Spacing50GHz) - ChannelWavelengthNm(1, Spacing50GHz)
	if gap < 0.35 || gap > 0.45 {
		t.Errorf("channel gap = %v nm, want ~0.4", gap)
	}
	// 100 GHz doubles the gap.
	gap100 := ChannelWavelengthNm(0, Spacing100GHz) - ChannelWavelengthNm(1, Spacing100GHz)
	if math.Abs(gap100-2*gap) > 0.05 {
		t.Errorf("100GHz gap = %v, want ~2x the 50GHz gap %v", gap100, gap)
	}
}

func TestCBandCapacity(t *testing.T) {
	// The C-band fits ~87 channels at 50 GHz upward from the anchor —
	// comfortably covering the paper's 80-channel commodity muxes.
	n := MaxCBandChannels(Spacing50GHz)
	if n < 80 || n > 120 {
		t.Errorf("C-band channels at 50GHz = %d, want ~87 (>= 80)", n)
	}
	if n100 := MaxCBandChannels(Spacing100GHz); n100 >= n {
		t.Errorf("100GHz capacity %d not below 50GHz capacity %d", n100, n)
	}
	if !InCBand(0, Spacing50GHz) {
		t.Error("anchor not in C-band")
	}
	if InCBand(500, Spacing50GHz) {
		t.Error("channel 500 claimed to be in C-band")
	}
}

func TestChannelLabel(t *testing.T) {
	l := ChannelLabel(12, Spacing50GHz)
	if l == "" || l[:5] != "ch 12" {
		t.Errorf("label = %q", l)
	}
}
