// Package optics models the optical power budget of a Quartz ring
// (§3.3 of the paper): DWDM transceivers emit at a known power, every
// mux/demux traversal costs insertion loss, and pump-laser amplifiers
// (EDFAs) are inserted where the accumulated loss would otherwise drop
// a channel below the receiver sensitivity. Attenuators protect
// receivers on short paths from overload.
//
// All power levels are in dBm and gains/losses in dB, carried as
// float64 — the quantities are logarithmic and never enter hot loops.
package optics

import (
	"fmt"
	"math"
)

// PartSpec describes the optical parts of a ring deployment. The zero
// value is not usable; start from DefaultParts (the paper's cited
// components).
type PartSpec struct {
	// TxPowerDBm is the transceiver launch power.
	TxPowerDBm float64
	// RxSensitivityDBm is the minimum receive power.
	RxSensitivityDBm float64
	// RxOverloadDBm is the maximum safe receive power; above it an
	// attenuator is required.
	RxOverloadDBm float64
	// MuxInsertionLossDB is the loss of one mux or demux traversal.
	MuxInsertionLossDB float64
	// FiberLossDBPerKm is the fiber attenuation.
	FiberLossDBPerKm float64
	// AmpGainDB is the gain of one amplifier (EDFA).
	AmpGainDB float64
}

// DefaultParts matches the worked example of §3.3: 10 Gb/s DWDM
// transceivers with 4 dBm launch power and -15 dBm sensitivity [7], and
// 80-channel DWDMs with 6 dB insertion loss [8]. The overload limit and
// fiber loss are typical datasheet values for those parts.
var DefaultParts = PartSpec{
	TxPowerDBm:         4,
	RxSensitivityDBm:   -15,
	RxOverloadDBm:      -7,
	MuxInsertionLossDB: 6,
	FiberLossDBPerKm:   0.25,
	AmpGainDB:          25,
}

// MaxMuxesWithoutAmp returns how many mux/demux traversals a channel
// survives unamplified: floor((tx - sensitivity) / insertionLoss). For
// the default parts this is the paper's (4-(-15))/6 = 3.17 -> 3.
func (p PartSpec) MaxMuxesWithoutAmp() int {
	if p.MuxInsertionLossDB <= 0 {
		return math.MaxInt32
	}
	return int((p.TxPowerDBm - p.RxSensitivityDBm) / p.MuxInsertionLossDB)
}

// RingBudget is the amplifier/attenuator plan for one Quartz ring.
type RingBudget struct {
	// RingSize is the number of switches.
	RingSize int
	// AmpAfterHops is the spacing of amplifiers: one amplifier after
	// every AmpAfterHops optical hops (0 means no amplifiers needed).
	AmpAfterHops int
	// Amplifiers is the total number of amplifiers on the ring.
	Amplifiers int
	// Attenuators is the number of attenuators needed to protect
	// receivers adjacent to amplifiers from overload.
	Attenuators int
}

// MuxTraversals returns how many mux/demux insertion losses a channel
// spanning the given number of ring hops pays: the add mux at its
// source, one express traversal per intermediate OADM, and the drop
// demux at its destination — hops+1 in total. (The paper's "each
// optical hop requires traversing two DWDMs" is this count for a
// single hop.)
func MuxTraversals(hops int) int {
	if hops < 1 {
		return 0
	}
	return hops + 1
}

// PlanRing computes the amplifier plan of §3.3 for a ring of the given
// size. A channel spanning h hops pays MuxTraversals(h) = h+1 insertion
// losses, and the power budget allows MaxMuxesWithoutAmp traversals
// (3 for the default parts: (4-(-15))/6 = 3.17). Placing an amplifier
// inside every s-th switch bay keeps unamplified runs at s+1 muxes, so
// the widest feasible spacing is maxMux-1 = 2 switches: the paper's
// "one amplifier for every two switches", i.e. 12 amplifiers on a
// 24-node ring (a 3% cost increase, §3.3).
func PlanRing(size int, parts PartSpec) (RingBudget, error) {
	if size < 1 {
		return RingBudget{}, fmt.Errorf("optics: ring size %d < 1", size)
	}
	if parts.TxPowerDBm <= parts.RxSensitivityDBm {
		return RingBudget{}, fmt.Errorf("optics: tx power %.1f dBm at or below sensitivity %.1f dBm",
			parts.TxPowerDBm, parts.RxSensitivityDBm)
	}
	b := RingBudget{RingSize: size}
	maxMux := parts.MaxMuxesWithoutAmp()
	if maxMux < 2 {
		return RingBudget{}, fmt.Errorf("optics: add+drop muxes (%.1f dB) exceed the %.1f dB budget",
			2*parts.MuxInsertionLossDB, parts.TxPowerDBm-parts.RxSensitivityDBm)
	}
	// Channels take shortest arcs, so the longest path is floor(M/2)
	// hops; if its mux count fits the budget no amplification is
	// needed.
	if MuxTraversals(size/2) <= maxMux {
		return b, nil
	}
	spacing := maxMux - 1
	if spacing < 1 {
		spacing = 1
	}
	b.AmpAfterHops = spacing
	b.Amplifiers = (size + spacing - 1) / spacing
	// Receivers right after an amplifier see boosted power and need an
	// attenuator (§3.3: "we also need to add optical attenuators").
	b.Attenuators = b.Amplifiers
	return b, nil
}

// WalkChannel traces a channel's power level across the given number of
// ring hops with an amplifier inside every ampEvery-th switch bay
// (0 = no amplifiers). Amplifiers restore the level to at most the
// transceiver launch power (saturated EDFA). It returns the minimum
// level seen en route and the arrival level at the drop demux output,
// before any terminal attenuator.
func WalkChannel(parts PartSpec, hops, ampEvery int, hopKm float64) (minDBm, arrivalDBm float64) {
	power := parts.TxPowerDBm - parts.MuxInsertionLossDB // add mux
	min := power
	for h := 1; h <= hops; h++ {
		power -= hopKm * parts.FiberLossDBPerKm
		if h == hops {
			power -= parts.MuxInsertionLossDB // drop demux
			if power < min {
				min = power
			}
			break
		}
		power -= parts.MuxInsertionLossDB // express traversal
		if power < min {
			min = power
		}
		if ampEvery > 0 && h%ampEvery == 0 {
			power += parts.AmpGainDB
			if power > parts.TxPowerDBm {
				power = parts.TxPowerDBm
			}
		}
	}
	return min, power
}

// PathFeasible reports whether a channel that traverses the given
// number of muxes and kilometres of fiber, with the given number of
// amplifiers on its path, arrives within the receiver's window, and
// returns the arrival power.
func PathFeasible(parts PartSpec, muxes int, km float64, amps int) (float64, bool) {
	if muxes < 0 || km < 0 || amps < 0 {
		return 0, false
	}
	power := parts.TxPowerDBm -
		float64(muxes)*parts.MuxInsertionLossDB -
		km*parts.FiberLossDBPerKm +
		float64(amps)*parts.AmpGainDB
	return power, power >= parts.RxSensitivityDBm
}

// AttenuationNeeded returns the attenuation in dB required to bring the
// given arrival power inside the receiver window, or 0 if none is
// needed.
func AttenuationNeeded(parts PartSpec, arrivalDBm float64) float64 {
	if arrivalDBm <= parts.RxOverloadDBm {
		return 0
	}
	return arrivalDBm - parts.RxOverloadDBm
}

// ValidateRing checks that the budget plan keeps every channel alive:
// walking the longest shortest-arc path (floor(M/2) hops) with the
// planned amplifier spacing must never dip below the receiver
// sensitivity. hopKm is the fiber length of one hop.
func ValidateRing(b RingBudget, parts PartSpec, hopKm float64) error {
	worst := b.RingSize / 2
	if worst < 1 {
		return nil
	}
	min, _ := WalkChannel(parts, worst, b.AmpAfterHops, hopKm)
	if min < parts.RxSensitivityDBm {
		return fmt.Errorf("optics: worst path (%d hops, amp every %d) dips to %.1f dBm, below sensitivity %.1f dBm",
			worst, b.AmpAfterHops, min, parts.RxSensitivityDBm)
	}
	return nil
}
