package optics

import (
	"fmt"
)

// The ITU-T G.694.1 DWDM grid: channels on a fixed frequency grid
// anchored at 193.1 THz. The paper's parts are 80-channel C-band
// mux/demuxes at 50 GHz spacing [8]; CWDM (the prototype's 1470/1490/
// 1510 nm SFPs) uses the coarse 20 nm grid of G.694.2.

// GridSpacing is a DWDM channel spacing.
type GridSpacing int

// Standard spacings.
const (
	// Spacing50GHz is the 80-channel C-band grid of the paper's muxes.
	Spacing50GHz GridSpacing = 50
	// Spacing100GHz is the coarser 40-channel grid.
	Spacing100GHz GridSpacing = 100
)

// speedOfLight in metres per second.
const speedOfLight = 299_792_458.0

// anchorTHz is the ITU grid anchor frequency.
const anchorTHz = 193.1

// ChannelFrequencyTHz returns the centre frequency of channel index i
// (0-based, counting up from the anchor) on the given grid.
func ChannelFrequencyTHz(i int, spacing GridSpacing) float64 {
	return anchorTHz + float64(i)*float64(spacing)/1000.0
}

// ChannelWavelengthNm returns the centre wavelength in nanometres of
// channel index i on the given grid.
func ChannelWavelengthNm(i int, spacing GridSpacing) float64 {
	fTHz := ChannelFrequencyTHz(i, spacing)
	return speedOfLight / (fTHz * 1e12) * 1e9
}

// CBand is the conventional band amplified by EDFAs: roughly
// 1530-1565 nm. The paper's 80-channel muxes and amplifiers operate
// here.
const (
	CBandMinNm = 1530.0
	CBandMaxNm = 1565.0
)

// InCBand reports whether channel i of the grid lies in the C-band.
// The anchor (193.1 THz, ~1552.5 nm) sits inside the band; positive
// indices move toward 1530 nm, negative toward 1565 nm.
func InCBand(i int, spacing GridSpacing) bool {
	nm := ChannelWavelengthNm(i, spacing)
	return nm >= CBandMinNm && nm <= CBandMaxNm
}

// MaxCBandChannels returns how many grid channels fit in the C-band at
// the given spacing — ~87 at 50 GHz, which is why commodity muxes ship
// 80 of them (§3.1).
func MaxCBandChannels(spacing GridSpacing) int {
	n := 0
	for i := -200; i <= 200; i++ {
		if InCBand(i, spacing) {
			n++
		}
	}
	return n
}

// ChannelLabel renders a channel in the conventional "C-band index +
// wavelength" form, e.g. "ch 12 (1547.72 nm, 193.70 THz)".
func ChannelLabel(i int, spacing GridSpacing) string {
	return fmt.Sprintf("ch %d (%.2f nm, %.2f THz)",
		i, ChannelWavelengthNm(i, spacing), ChannelFrequencyTHz(i, spacing))
}
