package topology

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/quartz-dcn/quartz/internal/sim"
)

func TestGraphBasics(t *testing.T) {
	g := New("test")
	s0 := g.AddSwitch("s0", TierToR, 0)
	s1 := g.AddSwitch("s1", TierToR, 1)
	h0 := g.AddHost("h0", 0)
	h1 := g.AddHost("h1", 1)
	g.Connect(h0, s0, 10*sim.Gbps, DefaultProp)
	g.Connect(h1, s1, 10*sim.Gbps, DefaultProp)
	l := g.Connect(s0, s1, 40*sim.Gbps, DefaultProp)

	if g.NumNodes() != 4 || g.NumLinks() != 3 {
		t.Fatalf("got %d nodes %d links, want 4/3", g.NumNodes(), g.NumLinks())
	}
	if got := g.ToRof(h0); got != s0 {
		t.Errorf("ToRof(h0) = %d, want %d", got, s0)
	}
	if g.Link(l).Other(s0) != s1 || g.Link(l).Other(s1) != s0 {
		t.Errorf("Link.Other wrong")
	}
	if len(g.Hosts()) != 2 || len(g.Switches()) != 2 {
		t.Errorf("hosts/switches = %d/%d, want 2/2", len(g.Hosts()), len(g.Switches()))
	}
	if _, ok := g.FindLink(s0, s1); !ok {
		t.Errorf("FindLink(s0,s1) not found")
	}
	if _, ok := g.FindLink(h0, h1); ok {
		t.Errorf("FindLink(h0,h1) found nonexistent link")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Only the switch-switch link crosses racks.
	if got := g.CrossRackLinks(); got != 1 {
		t.Errorf("CrossRackLinks = %d, want 1", got)
	}
}

func TestConnectPanics(t *testing.T) {
	g := New("test")
	n := g.AddSwitch("s", TierToR, 0)
	for name, fn := range map[string]func(){
		"self-link":    func() { g.Connect(n, n, sim.Gbps, 0) },
		"unknown node": func() { g.Connect(n, 99, sim.Gbps, 0) },
		"zero rate":    func() { m := g.AddSwitch("m", TierToR, 0); g.Connect(n, m, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFullMesh(t *testing.T) {
	g, err := NewFullMesh(MeshConfig{Switches: 6, HostsPerSwitch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Switches()); got != 6 {
		t.Fatalf("switches = %d, want 6", got)
	}
	if got := len(g.Hosts()); got != 24 {
		t.Fatalf("hosts = %d, want 24", got)
	}
	// 6*5/2 = 15 mesh links + 24 host links.
	if got := g.NumLinks(); got != 39 {
		t.Fatalf("links = %d, want 39", got)
	}
	// Every switch pair directly connected: switch-graph diameter 1.
	if d := g.Diameter(g.Switches()); d != 1 {
		t.Errorf("mesh switch diameter = %d, want 1", d)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFullMeshTrunks(t *testing.T) {
	g, err := NewFullMesh(MeshConfig{Switches: 4, HostsPerSwitch: 1, TrunksPerPair: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 4*3/2*3 = 18 mesh links + 4 host links.
	if got := g.NumLinks(); got != 22 {
		t.Fatalf("links = %d, want 22", got)
	}
}

func TestFullMeshErrors(t *testing.T) {
	if _, err := NewFullMesh(MeshConfig{Switches: 0}); err == nil {
		t.Error("0 switches accepted")
	}
	if _, err := NewFullMesh(MeshConfig{Switches: 2, HostsPerSwitch: -1}); err == nil {
		t.Error("negative hosts accepted")
	}
}

func TestTwoTierTree(t *testing.T) {
	g, err := NewTwoTierTree(TreeConfig{ToRs: 16, Roots: 1, HostsPerToR: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Table 9's 2-tier entry: 17 switches for ~1k hosts.
	if got := len(g.Switches()); got != 17 {
		t.Errorf("switches = %d, want 17", got)
	}
	if got := len(g.Hosts()); got != 960 {
		t.Errorf("hosts = %d, want 960", got)
	}
	// Wiring complexity: 16 ToR-root links cross racks.
	if got := g.CrossRackLinks(); got != 16 {
		t.Errorf("cross-rack links = %d, want 16", got)
	}
	// Host-to-host worst case: h -> tor -> root -> tor -> h = 4 hops.
	if d := g.Diameter(g.Hosts()); d != 4 {
		t.Errorf("host diameter = %d, want 4", d)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestThreeTierTree(t *testing.T) {
	g, err := NewThreeTierTree(ThreeTierConfig{
		Pods: 4, ToRsPerPod: 4, AggsPerPod: 2, Cores: 2, HostsPerToR: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSwitches := 2 + 4*2 + 4*4 // cores + aggs + tors
	if got := len(g.Switches()); got != wantSwitches {
		t.Errorf("switches = %d, want %d", got, wantSwitches)
	}
	if got := len(g.Hosts()); got != 128 {
		t.Errorf("hosts = %d, want 128", got)
	}
	// Cross-pod host path: h-tor-agg-core-agg-tor-h = 6 hops.
	if d := g.Diameter(g.Hosts()); d != 6 {
		t.Errorf("host diameter = %d, want 6", d)
	}
	if got := len(g.SwitchesInTier(TierCore)); got != 2 {
		t.Errorf("core switches = %d, want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFatTree(t *testing.T) {
	for _, k := range []int{4, 8} {
		g, err := NewFatTree(k, LinkSpec{})
		if err != nil {
			t.Fatal(err)
		}
		half := k / 2
		if got, want := len(g.Hosts()), k*half*half; got != want {
			t.Errorf("k=%d: hosts = %d, want %d", k, got, want)
		}
		if got, want := len(g.Switches()), half*half+k*k; got != want {
			t.Errorf("k=%d: switches = %d, want %d", k, got, want)
		}
		// Fat-tree total links: hosts + edge-agg (k*half*half) + agg-core.
		wantLinks := k * half * half * 3
		if got := g.NumLinks(); got != wantLinks {
			t.Errorf("k=%d: links = %d, want %d", k, got, wantLinks)
		}
		if d := g.Diameter(g.Hosts()); d != 6 {
			t.Errorf("k=%d: host diameter = %d, want 6", k, d)
		}
		if err := g.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := NewFatTree(3, LinkSpec{}); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := NewFatTree(0, LinkSpec{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestFatTreePathDiversity(t *testing.T) {
	// Edge-disjoint paths between two edge switches are bounded by each
	// switch's k/2 uplinks, and the fat-tree achieves that bound: 4 for
	// k=8 (Table 9's value of 32 comes from 64-port switches).
	g, err := NewFatTree(8, LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.SwitchesInTier(TierToR)
	// First edge switch of pod 0 and pod 1 (4 edges per pod).
	got := g.EdgeDisjointPaths(edges[0], edges[4])
	if got != 4 {
		t.Errorf("fat-tree k=8 edge-disjoint paths = %d, want 4", got)
	}
}

func TestBCube(t *testing.T) {
	// BCube(4,1): 16 hosts, 8 switches, each host 2 links.
	g, err := NewBCube(4, 1, LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != 16 {
		t.Errorf("hosts = %d, want 16", got)
	}
	if got := len(g.Switches()); got != 8 {
		t.Errorf("switches = %d, want 8", got)
	}
	for _, h := range g.Hosts() {
		if d := g.Degree(h); d != 2 {
			t.Errorf("host %d degree = %d, want 2", h, d)
		}
	}
	for _, s := range g.Switches() {
		if d := g.Degree(s); d != 4 {
			t.Errorf("switch %d degree = %d, want 4", s, d)
		}
	}
	// Two hosts sharing no switch are exactly 4 hops apart
	// (h-sw-h-sw-h... in BCube(4,1): h0 and h5 differ in both digits).
	hosts := g.Hosts()
	dist := g.BFSDist(hosts[0], nil)
	if dist[hosts[5]] != 4 {
		t.Errorf("bcube dist(h0,h5) = %d, want 4", dist[hosts[5]])
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := NewBCube(1, 1, LinkSpec{}); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestJellyfish(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := NewJellyfish(JellyfishConfig{
		Switches: 24, HostsPerSwitch: 40, NetDegree: 10, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Switches()); got != 24 {
		t.Errorf("switches = %d, want 24", got)
	}
	if got := len(g.Hosts()); got != 960 {
		t.Errorf("hosts = %d, want 960", got)
	}
	// All switches should have close to NetDegree network links.
	short := 0
	for i, s := range g.Switches() {
		netLinks := 0
		for _, p := range g.Ports(s) {
			if g.Node(p.Peer).Kind == Switch {
				netLinks++
			}
		}
		if netLinks > 10 {
			t.Errorf("switch %d has %d net links, want <=10", i, netLinks)
		}
		if netLinks < 10 {
			short += 10 - netLinks
		}
	}
	if short > 2 {
		t.Errorf("%d unused network ports, want <=2", short)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestJellyfishErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewJellyfish(JellyfishConfig{Switches: 1, NetDegree: 1, Rand: rng}); err == nil {
		t.Error("1 switch accepted")
	}
	if _, err := NewJellyfish(JellyfishConfig{Switches: 4, NetDegree: 4, Rand: rng}); err == nil {
		t.Error("degree >= switches accepted")
	}
	if _, err := NewJellyfish(JellyfishConfig{Switches: 4, NetDegree: 2}); err == nil {
		t.Error("nil Rand accepted")
	}
}

func TestJellyfishDeterministic(t *testing.T) {
	build := func() *Graph {
		g, err := NewJellyfish(JellyfishConfig{
			Switches: 12, HostsPerSwitch: 2, NetDegree: 4,
			Rand: rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	if a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed, different link counts: %d vs %d", a.NumLinks(), b.NumLinks())
	}
	for i := 0; i < a.NumLinks(); i++ {
		la, lb := a.Link(LinkID(i)), b.Link(LinkID(i))
		if la.A != lb.A || la.B != lb.B {
			t.Fatalf("same seed, link %d differs: %v vs %v", i, la, lb)
		}
	}
}

func TestBFSDistAndShortestPath(t *testing.T) {
	// Path graph: s0 - s1 - s2 - s3.
	g := New("path")
	var sw [4]NodeID
	for i := range sw {
		sw[i] = g.AddSwitch("s", TierToR, i)
	}
	var links [3]LinkID
	for i := 0; i < 3; i++ {
		links[i] = g.Connect(sw[i], sw[i+1], sim.Gbps, 0)
	}
	dist := g.BFSDist(sw[0], nil)
	for i, want := range []int{0, 1, 2, 3} {
		if dist[sw[i]] != want {
			t.Errorf("dist[s%d] = %d, want %d", i, dist[sw[i]], want)
		}
	}
	p := g.ShortestPath(sw[0], sw[3], nil)
	if len(p) != 4 || p[0] != sw[0] || p[3] != sw[3] {
		t.Errorf("ShortestPath = %v", p)
	}
	// Failing the middle link disconnects s0 from s3.
	dead := map[LinkID]bool{links[1]: true}
	if g.ShortestPath(sw[0], sw[3], dead) != nil {
		t.Error("path found across dead link")
	}
	if g.Connected([]NodeID{sw[0], sw[3]}, dead) {
		t.Error("Connected across dead link")
	}
	if cc := g.ConnectedComponents(dead); cc != 2 {
		t.Errorf("components with dead middle link = %d, want 2", cc)
	}
	if p := g.ShortestPath(sw[2], sw[2], nil); len(p) != 1 || p[0] != sw[2] {
		t.Errorf("self path = %v, want [s2]", p)
	}
}

func TestEdgeDisjointPathsRing(t *testing.T) {
	// A ring of 5 switches has exactly 2 edge-disjoint paths between any
	// pair.
	g := New("ring")
	var sw [5]NodeID
	for i := range sw {
		sw[i] = g.AddSwitch("s", TierToR, i)
	}
	for i := range sw {
		g.Connect(sw[i], sw[(i+1)%5], sim.Gbps, 0)
	}
	for i := 1; i < 5; i++ {
		if got := g.EdgeDisjointPaths(sw[0], sw[i]); got != 2 {
			t.Errorf("ring diversity s0-s%d = %d, want 2", i, got)
		}
	}
	if got := g.EdgeDisjointPaths(sw[0], sw[0]); got != 0 {
		t.Errorf("self diversity = %d, want 0", got)
	}
}

func TestEdgeDisjointPathsMesh(t *testing.T) {
	// In a full mesh of M switches, diversity between two switches is
	// M-1 (direct + M-2 two-hop paths).
	g, err := NewFullMesh(MeshConfig{Switches: 8, HostsPerSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	sw := g.Switches()
	if got := g.EdgeDisjointPaths(sw[0], sw[5]); got != 7 {
		t.Errorf("mesh-8 diversity = %d, want 7", got)
	}
}

func TestAvgShortestPath(t *testing.T) {
	g, err := NewFullMesh(MeshConfig{Switches: 5, HostsPerSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.AvgShortestPath(g.Switches()); got != 1.0 {
		t.Errorf("mesh avg path = %v, want 1.0", got)
	}
	if !math.IsNaN(g.AvgShortestPath(nil)) {
		t.Error("empty set should be NaN")
	}
}

func TestAllShortestNextHops(t *testing.T) {
	// Diamond: a-b, a-c, b-d, c-d. From a to d there are two equal-cost
	// next hops (b and c).
	g := New("diamond")
	a := g.AddSwitch("a", TierToR, 0)
	b := g.AddSwitch("b", TierToR, 1)
	c := g.AddSwitch("c", TierToR, 2)
	d := g.AddSwitch("d", TierToR, 3)
	g.Connect(a, b, sim.Gbps, 0)
	g.Connect(a, c, sim.Gbps, 0)
	g.Connect(b, d, sim.Gbps, 0)
	g.Connect(c, d, sim.Gbps, 0)
	next := g.AllShortestNextHops(d)
	if len(next[a]) != 2 {
		t.Errorf("a has %d next hops to d, want 2", len(next[a]))
	}
	if len(next[b]) != 1 || next[b][0].Peer != d {
		t.Errorf("b next hops = %v, want [d]", next[b])
	}
	if next[d] != nil {
		t.Errorf("dst has next hops %v, want none", next[d])
	}
}

func TestLinksBetweenSets(t *testing.T) {
	g, err := NewFullMesh(MeshConfig{Switches: 6, HostsPerSwitch: 0})
	if err != nil {
		t.Fatal(err)
	}
	sw := g.Switches()
	setA := map[NodeID]bool{sw[0]: true, sw[1]: true, sw[2]: true}
	// Bisection of a 6-mesh: 3*3 = 9 links cross.
	if got := g.LinksBetweenSets(setA); got != 9 {
		t.Errorf("bisection links = %d, want 9", got)
	}
}

// TestMeshPropertyInvariants property-checks mesh construction: for any
// valid (M, n), switch count, host count, link count, and diameter are
// as predicted.
func TestMeshPropertyInvariants(t *testing.T) {
	f := func(m, n uint8) bool {
		M := int(m%20) + 2
		N := int(n % 8)
		g, err := NewFullMesh(MeshConfig{Switches: M, HostsPerSwitch: N})
		if err != nil {
			return false
		}
		wantLinks := M*(M-1)/2 + M*N
		if g.NumLinks() != wantLinks || len(g.Hosts()) != M*N {
			return false
		}
		return g.Diameter(g.Switches()) == 1 && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBCubePropertyInvariants property-checks BCube sizes.
func TestBCubePropertyInvariants(t *testing.T) {
	f := func(nn, kk uint8) bool {
		n := int(nn%4) + 2 // 2..5
		k := int(kk % 3)   // 0..2
		g, err := NewBCube(n, k, LinkSpec{})
		if err != nil {
			return false
		}
		hosts := 1
		for i := 0; i <= k; i++ {
			hosts *= n
		}
		if len(g.Hosts()) != hosts {
			return false
		}
		if len(g.Switches()) != (k+1)*hosts/n {
			return false
		}
		for _, h := range g.Hosts() {
			if g.Degree(h) != k+1 {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKindTierStrings(t *testing.T) {
	if Host.String() != "host" || Switch.String() != "switch" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown Kind string wrong")
	}
	for tier, want := range map[Tier]string{
		TierNone: "none", TierToR: "tor", TierAgg: "agg", TierCore: "core", Tier(9): "Tier(9)",
	} {
		if tier.String() != want {
			t.Errorf("Tier %d string = %q, want %q", tier, tier.String(), want)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g, err := NewFullMesh(MeshConfig{Switches: 3, HostsPerSwitch: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph", "n0 --", "shape=box", "shape=circle", "10Gbps"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Every node and link appears.
	if got := strings.Count(out, "--"); got != g.NumLinks() {
		t.Errorf("DOT has %d edges, want %d", got, g.NumLinks())
	}
}

func TestEstimateBisection(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	// Full-bisection leaf-spine: 8 ToRs x 4 hosts, 4 roots, 32 uplinks.
	// Any balanced bisection cuts >= 16 uplinks (half the fabric).
	tree, err := NewTwoTierTree(TreeConfig{ToRs: 8, Roots: 4, HostsPerToR: 4})
	if err != nil {
		t.Fatal(err)
	}
	cut := tree.EstimateBisection(200, rng)
	if cut < 8 || cut > 24 {
		t.Errorf("leaf-spine bisection estimate = %d, want ~16", cut)
	}
	// A mesh of 8 switches: the best host bisection groups whole racks:
	// 4x4 = 16 mesh links cross.
	mesh, err := NewFullMesh(MeshConfig{Switches: 8, HostsPerSwitch: 4})
	if err != nil {
		t.Fatal(err)
	}
	mcut := mesh.EstimateBisection(400, rng)
	if mcut < 16 || mcut > 28 {
		t.Errorf("mesh-8 bisection estimate = %d, want >= 16 (rack-aligned cut)", mcut)
	}
	// Degenerate inputs.
	if got := mesh.EstimateBisection(0, rng); got != 0 {
		t.Errorf("0 trials = %d, want 0", got)
	}
	if got := mesh.EstimateBisection(10, nil); got != 0 {
		t.Errorf("nil rng = %d, want 0", got)
	}
}
