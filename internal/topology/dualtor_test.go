package topology

import (
	"testing"
	"testing/quick"
)

func TestDualToRMeshPaper2080(t *testing.T) {
	// §3.2: 65 racks x 32 dual-homed servers = 2080 ports, with every
	// 64-port switch exactly full (32 host + 32 inter-rack links) and
	// the longest path between any two servers two switches.
	g, err := NewDualToRMesh(DualToRConfig{Racks: 65, HostsPerRack: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != 2080 {
		t.Fatalf("hosts = %d, want 2080", got)
	}
	if got := len(g.Switches()); got != 130 {
		t.Fatalf("switches = %d, want 130", got)
	}
	for _, s := range g.Switches() {
		if d := g.Degree(s); d != 64 {
			t.Fatalf("switch %s degree = %d, want 64", g.Node(s).Name, d)
		}
	}
	// One link per rack pair: 65*64/2 = 2080 inter-rack links plus
	// 2*2080 host links.
	if got, want := g.NumLinks(), 65*64/2+2*2080; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDualToRMeshTwoSwitchPaths(t *testing.T) {
	g, err := NewDualToRMesh(DualToRConfig{Racks: 9, HostsPerRack: 2})
	if err != nil {
		t.Fatal(err)
	}
	hosts := g.Hosts()
	// Host diameter 3 means h-switch-switch-h: two switches max.
	if d := g.Diameter(hosts); d != 3 {
		t.Errorf("host diameter = %d, want 3 (two switches)", d)
	}
}

func TestDualToRMeshEvenRacks(t *testing.T) {
	g, err := NewDualToRMesh(DualToRConfig{Racks: 8, HostsPerRack: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 8*7/2 = 28 inter-rack links + 2 per host.
	if got, want := g.NumLinks(), 28+2*16; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	if d := g.Diameter(g.Hosts()); d != 3 {
		t.Errorf("host diameter = %d, want 3", d)
	}
}

func TestDualToRMeshErrors(t *testing.T) {
	if _, err := NewDualToRMesh(DualToRConfig{Racks: 1}); err == nil {
		t.Error("1 rack accepted")
	}
	if _, err := NewDualToRMesh(DualToRConfig{Racks: 3, HostsPerRack: -1}); err == nil {
		t.Error("negative hosts accepted")
	}
}

// TestDualToRMeshProperty: for any rack count, every rack pair has
// exactly one inter-rack link and every host pair is at most 3 hops.
func TestDualToRMeshProperty(t *testing.T) {
	f := func(rr uint8) bool {
		r := int(rr%12) + 2
		g, err := NewDualToRMesh(DualToRConfig{Racks: r, HostsPerRack: 1})
		if err != nil {
			return false
		}
		// Count inter-rack links per rack pair.
		pairs := map[[2]int]int{}
		for i := 0; i < g.NumLinks(); i++ {
			l := g.Link(LinkID(i))
			na, nb := g.Node(l.A), g.Node(l.B)
			if na.Kind != Switch || nb.Kind != Switch {
				continue
			}
			ra, rb := na.Rack, nb.Rack
			if ra > rb {
				ra, rb = rb, ra
			}
			pairs[[2]int{ra, rb}]++
		}
		if len(pairs) != r*(r-1)/2 {
			return false
		}
		for _, c := range pairs {
			if c != 1 {
				return false
			}
		}
		return g.Diameter(g.Hosts()) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDCellStructure(t *testing.T) {
	// DCell_1 with n=4: 5 cells x 4 servers = 20 servers, 5 switches,
	// 10 inter-cell links, every server exactly 2 links.
	g, err := NewDCell(4, LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Hosts()); got != 20 {
		t.Errorf("hosts = %d, want 20", got)
	}
	if got := len(g.Switches()); got != 5 {
		t.Errorf("switches = %d, want 5", got)
	}
	if got := g.NumLinks(); got != 20+10 {
		t.Errorf("links = %d, want 30", got)
	}
	for _, h := range g.Hosts() {
		if d := g.Degree(h); d != 2 {
			t.Fatalf("server %s degree = %d, want 2", g.Node(h).Name, d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Cross-cell shortest paths transit at least one server (the
	// server-centric forwarding penalty of §2.1.5): the worst case is
	// 2 switch hops + 1-2 server hops.
	hosts := g.Hosts()
	srcCell0 := hosts[0]
	dstCell4 := hosts[len(hosts)-1]
	path := g.ShortestPath(srcCell0, dstCell4, nil)
	serverHops := 0
	for _, node := range path[1 : len(path)-1] {
		if g.Node(node).Kind == Host {
			serverHops++
		}
	}
	if serverHops < 1 {
		t.Errorf("cross-cell path %v transits no servers", path)
	}
	if d := g.Diameter(g.Hosts()); d > 7 {
		t.Errorf("diameter = %d, want <= 7", d)
	}
	if _, err := NewDCell(1, LinkSpec{}); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestDCellForwardingPaysStackDelay(t *testing.T) {
	// One packet between cells must pay the 15 us server-forwarding
	// penalty in the packet simulator — the §2.1.5 argument made
	// concrete. (Exercised here at the topology level: the shortest
	// path includes a host, which netsim charges ForwardLatency for;
	// see netsim's TestServerForwardingPaysStackLatency.)
	g, err := NewDCell(3, LinkSpec{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick two servers in different cells with no direct link.
	hosts := g.Hosts()
	var src, dst NodeID = hosts[0], -1
	for _, h := range hosts {
		if g.Node(h).Rack != g.Node(src).Rack {
			if _, direct := g.FindLink(src, h); !direct {
				dst = h
				break
			}
		}
	}
	if dst < 0 {
		t.Fatal("no indirect cross-cell pair found")
	}
	path := g.ShortestPath(src, dst, nil)
	hostsOnPath := 0
	for _, n := range path[1 : len(path)-1] {
		if g.Node(n).Kind == Host {
			hostsOnPath++
		}
	}
	if hostsOnPath == 0 {
		t.Errorf("path %v avoids server forwarding; DCell cannot", path)
	}
}
