// Package topology models datacenter network topologies as graphs of
// hosts and switches, and provides builders for the network structures the
// Quartz paper analyzes (§4, §5, Table 9): full mesh (the Quartz logical
// topology, §3), 2-tier and 3-tier trees, Fat-Tree, BCube, Jellyfish, and
// the §3.2 dual-ToR scaling variant.
//
// A Graph is a static description of nodes and links; the packet simulator
// (internal/netsim), routing (internal/routing), flow allocator
// (internal/flowsim), and analysis (internal/analysis) packages all
// consume this representation.
package topology

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/sim"
)

// NodeID identifies a node within one Graph. IDs are dense, starting at 0.
type NodeID int

// LinkID identifies an undirected link within one Graph.
type LinkID int

// Kind distinguishes hosts from switches.
type Kind uint8

// Node kinds.
const (
	Host Kind = iota
	Switch
)

func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Tier classifies a switch's role in a hierarchical network. Hosts have
// TierNone. Flat topologies (mesh, Jellyfish) use TierToR for all
// switches.
type Tier uint8

// Switch tiers.
const (
	TierNone Tier = iota
	TierToR
	TierAgg
	TierCore
)

func (t Tier) String() string {
	switch t {
	case TierNone:
		return "none"
	case TierToR:
		return "tor"
	case TierAgg:
		return "agg"
	case TierCore:
		return "core"
	default:
		return fmt.Sprintf("Tier(%d)", uint8(t))
	}
}

// Node is a host or switch in the topology.
type Node struct {
	ID   NodeID
	Kind Kind
	Tier Tier
	Name string
	// Rack groups nodes for locality-aware workloads: a host shares its
	// ToR switch's rack number. -1 means no rack affinity (core tier).
	Rack int
}

// Link is an undirected link between two nodes. The packet simulator
// treats it as two independent simplex channels of the same rate.
type Link struct {
	ID   LinkID
	A, B NodeID
	Rate sim.Rate
	// Prop is the one-way propagation delay.
	Prop sim.Time
}

// Other returns the endpoint of l that is not n.
// It panics if n is not an endpoint of l.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topology: node %d not on link %d (%d-%d)", n, l.ID, l.A, l.B))
}

// Port is one end of a link as seen from a node: the link and the peer.
type Port struct {
	Link LinkID
	Peer NodeID
}

// Graph is a static network topology. Build one with New and the Add*
// methods, or use a builder such as NewFatTree. Graphs are cheap to share
// read-only; mutation is not goroutine-safe.
type Graph struct {
	// Name describes the topology, e.g. "fat-tree(k=8)".
	Name string

	nodes []Node
	links []Link
	ports [][]Port // ports[n] lists n's attachments

	hosts    []NodeID
	switches []NodeID
}

// New returns an empty graph with the given descriptive name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddHost adds a host in the given rack and returns its ID.
func (g *Graph) AddHost(name string, rack int) NodeID {
	return g.addNode(Node{Kind: Host, Tier: TierNone, Name: name, Rack: rack})
}

// AddSwitch adds a switch at the given tier and rack (-1 for none) and
// returns its ID.
func (g *Graph) AddSwitch(name string, tier Tier, rack int) NodeID {
	return g.addNode(Node{Kind: Switch, Tier: tier, Name: name, Rack: rack})
}

func (g *Graph) addNode(n Node) NodeID {
	n.ID = NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.ports = append(g.ports, nil)
	if n.Kind == Host {
		g.hosts = append(g.hosts, n.ID)
	} else {
		g.switches = append(g.switches, n.ID)
	}
	return n.ID
}

// Connect links nodes a and b with the given rate and propagation delay
// and returns the link's ID. Self-links are rejected; parallel links are
// allowed (they model link aggregates and multi-fiber trunks).
func (g *Graph) Connect(a, b NodeID, rate sim.Rate, prop sim.Time) LinkID {
	if a == b {
		panic(fmt.Sprintf("topology: self-link on node %d", a))
	}
	if !g.valid(a) || !g.valid(b) {
		panic(fmt.Sprintf("topology: connect %d-%d with unknown node", a, b))
	}
	if rate <= 0 {
		panic(fmt.Sprintf("topology: connect %d-%d with rate %d", a, b, rate))
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b, Rate: rate, Prop: prop})
	g.ports[a] = append(g.ports[a], Port{Link: id, Peer: b})
	g.ports[b] = append(g.ports[b], Port{Link: id, Peer: a})
	return id
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.nodes) }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Ports returns the ports of node n. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Ports(n NodeID) []Port { return g.ports[n] }

// Degree returns the number of links attached to n.
func (g *Graph) Degree(n NodeID) int { return len(g.ports[n]) }

// Hosts returns the IDs of all hosts, in creation order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Hosts() []NodeID { return g.hosts }

// Switches returns the IDs of all switches, in creation order. The
// returned slice is owned by the graph and must not be modified.
func (g *Graph) Switches() []NodeID { return g.switches }

// SwitchesInTier returns the switches at the given tier.
func (g *Graph) SwitchesInTier(t Tier) []NodeID {
	var out []NodeID
	for _, s := range g.switches {
		if g.nodes[s].Tier == t {
			out = append(out, s)
		}
	}
	return out
}

// HostsInRack returns all hosts in the given rack.
func (g *Graph) HostsInRack(rack int) []NodeID {
	var out []NodeID
	for _, h := range g.hosts {
		if g.nodes[h].Rack == rack {
			out = append(out, h)
		}
	}
	return out
}

// ToRof returns the switch a host attaches to. Hosts attached to multiple
// switches (dual-homed) return the first. It panics if h is not a host or
// has no uplink.
func (g *Graph) ToRof(h NodeID) NodeID {
	if g.nodes[h].Kind != Host {
		panic(fmt.Sprintf("topology: ToRof(%d): not a host", h))
	}
	for _, p := range g.ports[h] {
		if g.nodes[p.Peer].Kind == Switch {
			return p.Peer
		}
	}
	panic(fmt.Sprintf("topology: host %d has no switch uplink", h))
}

// FindLink returns a link between a and b, if any.
func (g *Graph) FindLink(a, b NodeID) (Link, bool) {
	for _, p := range g.ports[a] {
		if p.Peer == b {
			return g.links[p.Link], true
		}
	}
	return Link{}, false
}

// CrossRackLinks counts links whose endpoints are in different racks
// (or touch a rackless node). The paper uses this as its wiring
// complexity metric: cables that must leave a rack.
func (g *Graph) CrossRackLinks() int {
	n := 0
	for _, l := range g.links {
		ra, rb := g.nodes[l.A].Rack, g.nodes[l.B].Rack
		if ra != rb || ra == -1 {
			n++
		}
	}
	return n
}

// Validate checks structural invariants: every host has at least one
// link, every node referenced by a link exists, and the graph is
// connected (if it has any nodes).
func (g *Graph) Validate() error {
	for _, h := range g.hosts {
		if len(g.ports[h]) == 0 {
			return fmt.Errorf("topology %q: host %s has no links", g.Name, g.nodes[h].Name)
		}
	}
	for _, l := range g.links {
		if !g.valid(l.A) || !g.valid(l.B) {
			return fmt.Errorf("topology %q: link %d references unknown node", g.Name, l.ID)
		}
	}
	if len(g.nodes) > 0 {
		if cc := g.ConnectedComponents(nil); cc != 1 {
			return fmt.Errorf("topology %q: %d connected components, want 1", g.Name, cc)
		}
	}
	return nil
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d hosts, %d switches, %d links",
		g.Name, len(g.hosts), len(g.switches), len(g.links))
}
