package topology

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/sim"
)

// DualToRConfig describes the §3.2 scaling variant: two ToR switches
// per rack, every server dual-homed to both, and one direct inter-rack
// link per rack pair — the longest server-to-server path is still two
// switches, and 64-port switches reach 2080 ports over 65 racks.
type DualToRConfig struct {
	// Racks is the number of racks (R). Each rack pair gets exactly one
	// direct link, split evenly between each rack's two switches, so
	// each switch carries ceil((R-1)/2) inter-rack links.
	Racks int
	// HostsPerRack is the number of dual-homed servers per rack.
	HostsPerRack int
	HostLink     LinkSpec
	MeshLink     LinkSpec
}

// NewDualToRMesh builds the dual-ToR rack mesh. Rack i's switches are
// named a<i> and b<i>; the link for rack pair (i, j) with
// (j-i) mod R in 1..ceil((R-1)/2) runs a<i> -> b<j>, which gives every
// switch an equal share and guarantees a two-switch path between any
// two servers: either a_i-b_j or a_j-b_i exists for every pair.
func NewDualToRMesh(cfg DualToRConfig) (*Graph, error) {
	if cfg.Racks < 2 {
		return nil, fmt.Errorf("topology: dual-ToR mesh needs >= 2 racks, got %d", cfg.Racks)
	}
	if cfg.HostsPerRack < 0 {
		return nil, fmt.Errorf("topology: negative hosts per rack")
	}
	if cfg.HostLink.Rate == 0 {
		cfg.HostLink.Rate = 10 * sim.Gbps
	}
	if cfg.MeshLink.Rate == 0 {
		cfg.MeshLink.Rate = 10 * sim.Gbps
	}
	if cfg.HostLink.Prop == 0 {
		cfg.HostLink.Prop = DefaultProp
	}
	if cfg.MeshLink.Prop == 0 {
		cfg.MeshLink.Prop = DefaultProp
	}
	g := New(fmt.Sprintf("dual-tor-mesh(racks=%d,n=%d)", cfg.Racks, cfg.HostsPerRack))
	a := make([]NodeID, cfg.Racks)
	b := make([]NodeID, cfg.Racks)
	for r := 0; r < cfg.Racks; r++ {
		a[r] = g.AddSwitch(fmt.Sprintf("a%d", r), TierToR, r)
		b[r] = g.AddSwitch(fmt.Sprintf("b%d", r), TierToR, r)
		for h := 0; h < cfg.HostsPerRack; h++ {
			host := g.AddHost(fmt.Sprintf("h%d-%d", r, h), r)
			g.Connect(host, a[r], cfg.HostLink.Rate, cfg.HostLink.Prop)
			g.Connect(host, b[r], cfg.HostLink.Rate, cfg.HostLink.Prop)
		}
	}
	half := (cfg.Racks - 1 + 1) / 2 // ceil((R-1)/2)
	for i := 0; i < cfg.Racks; i++ {
		for d := 1; d <= half; d++ {
			j := (i + d) % cfg.Racks
			if cfg.Racks%2 == 0 && d == half && i >= cfg.Racks/2 {
				// Even rack counts: the diametral pairing would be
				// created twice; keep only the first half's links.
				continue
			}
			if j == i {
				continue
			}
			g.Connect(a[i], b[j], cfg.MeshLink.Rate, cfg.MeshLink.Prop)
		}
	}
	return g, nil
}
