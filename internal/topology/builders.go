package topology

import (
	"fmt"
	"math/rand"

	"github.com/quartz-dcn/quartz/internal/sim"
)

// LinkSpec gives the rate and propagation delay for one class of links.
type LinkSpec struct {
	Rate sim.Rate
	Prop sim.Time
}

// Default propagation delay for intra-datacenter links: 50 m of fiber at
// ~5 ns/m.
const DefaultProp = 250 * sim.Nanosecond

// MeshConfig describes a full mesh of ToR switches — the logical topology
// of a Quartz ring (§3 of the paper).
type MeshConfig struct {
	// Switches is the number of ToR switches (M, the ring size).
	Switches int
	// HostsPerSwitch is n, the number of server-facing ports used.
	HostsPerSwitch int
	// HostLink and MeshLink give the link classes; zero rates default to
	// 10 Gb/s.
	HostLink LinkSpec
	MeshLink LinkSpec
	// TrunksPerPair creates this many parallel links between each switch
	// pair (default 1). A Quartz switch pair may be allocated several
	// wavelengths.
	TrunksPerPair int
}

func (c *MeshConfig) setDefaults() {
	if c.HostLink.Rate == 0 {
		c.HostLink.Rate = 10 * sim.Gbps
	}
	if c.MeshLink.Rate == 0 {
		c.MeshLink.Rate = 10 * sim.Gbps
	}
	if c.HostLink.Prop == 0 {
		c.HostLink.Prop = DefaultProp
	}
	if c.MeshLink.Prop == 0 {
		c.MeshLink.Prop = DefaultProp
	}
	if c.TrunksPerPair == 0 {
		c.TrunksPerPair = 1
	}
}

// NewFullMesh builds a full mesh of ToR switches with hosts attached —
// the logical view of a single Quartz ring.
func NewFullMesh(cfg MeshConfig) (*Graph, error) {
	if cfg.Switches < 1 {
		return nil, fmt.Errorf("topology: mesh needs >=1 switch, got %d", cfg.Switches)
	}
	if cfg.HostsPerSwitch < 0 {
		return nil, fmt.Errorf("topology: negative hosts per switch")
	}
	cfg.setDefaults()
	g := New(fmt.Sprintf("mesh(M=%d,n=%d)", cfg.Switches, cfg.HostsPerSwitch))
	sw := make([]NodeID, cfg.Switches)
	for i := range sw {
		sw[i] = g.AddSwitch(fmt.Sprintf("tor%d", i), TierToR, i)
		for h := 0; h < cfg.HostsPerSwitch; h++ {
			host := g.AddHost(fmt.Sprintf("h%d-%d", i, h), i)
			g.Connect(host, sw[i], cfg.HostLink.Rate, cfg.HostLink.Prop)
		}
	}
	for i := 0; i < len(sw); i++ {
		for j := i + 1; j < len(sw); j++ {
			for t := 0; t < cfg.TrunksPerPair; t++ {
				g.Connect(sw[i], sw[j], cfg.MeshLink.Rate, cfg.MeshLink.Prop)
			}
		}
	}
	return g, nil
}

// TreeConfig describes a 2-tier multi-root tree: ToR switches each
// connected to every root (aggregation) switch.
type TreeConfig struct {
	ToRs           int
	Roots          int
	HostsPerToR    int
	UplinksPerRoot int // parallel links from each ToR to each root (default 1)
	HostLink       LinkSpec
	UpLink         LinkSpec
}

// NewTwoTierTree builds a 2-tier multi-root tree.
func NewTwoTierTree(cfg TreeConfig) (*Graph, error) {
	if cfg.ToRs < 1 || cfg.Roots < 1 {
		return nil, fmt.Errorf("topology: 2-tier tree needs >=1 ToR and root, got %d/%d", cfg.ToRs, cfg.Roots)
	}
	if cfg.HostLink.Rate == 0 {
		cfg.HostLink.Rate = 10 * sim.Gbps
	}
	if cfg.UpLink.Rate == 0 {
		cfg.UpLink.Rate = 40 * sim.Gbps
	}
	if cfg.HostLink.Prop == 0 {
		cfg.HostLink.Prop = DefaultProp
	}
	if cfg.UpLink.Prop == 0 {
		cfg.UpLink.Prop = DefaultProp
	}
	if cfg.UplinksPerRoot == 0 {
		cfg.UplinksPerRoot = 1
	}
	g := New(fmt.Sprintf("two-tier(tors=%d,roots=%d)", cfg.ToRs, cfg.Roots))
	roots := make([]NodeID, cfg.Roots)
	for i := range roots {
		roots[i] = g.AddSwitch(fmt.Sprintf("root%d", i), TierAgg, -1)
	}
	for i := 0; i < cfg.ToRs; i++ {
		tor := g.AddSwitch(fmt.Sprintf("tor%d", i), TierToR, i)
		for h := 0; h < cfg.HostsPerToR; h++ {
			host := g.AddHost(fmt.Sprintf("h%d-%d", i, h), i)
			g.Connect(host, tor, cfg.HostLink.Rate, cfg.HostLink.Prop)
		}
		for _, r := range roots {
			for u := 0; u < cfg.UplinksPerRoot; u++ {
				g.Connect(tor, r, cfg.UpLink.Rate, cfg.UpLink.Prop)
			}
		}
	}
	return g, nil
}

// ThreeTierConfig describes the paper's baseline 3-tier multi-root tree
// (Figure 15(a)): pods of ToR switches under aggregation switches, with
// aggregation switches connected to core switches.
type ThreeTierConfig struct {
	// Pods is the number of aggregation pods.
	Pods int
	// ToRsPerPod is the number of ToR switches in each pod.
	ToRsPerPod int
	// AggsPerPod is the number of aggregation switches per pod; each ToR
	// connects to all of them (the paper uses 2).
	AggsPerPod int
	// Cores is the number of core switches; each aggregation switch
	// connects to all of them (the paper uses 2).
	Cores int
	// HostsPerToR is the number of servers per rack.
	HostsPerToR int
	HostLink    LinkSpec // default 10 Gb/s
	AggLink     LinkSpec // ToR-to-agg, default 40 Gb/s
	CoreLink    LinkSpec // agg-to-core, default 40 Gb/s
}

func (c *ThreeTierConfig) setDefaults() {
	if c.HostLink.Rate == 0 {
		c.HostLink.Rate = 10 * sim.Gbps
	}
	if c.AggLink.Rate == 0 {
		c.AggLink.Rate = 40 * sim.Gbps
	}
	if c.CoreLink.Rate == 0 {
		c.CoreLink.Rate = 40 * sim.Gbps
	}
	if c.HostLink.Prop == 0 {
		c.HostLink.Prop = DefaultProp
	}
	if c.AggLink.Prop == 0 {
		c.AggLink.Prop = DefaultProp
	}
	if c.CoreLink.Prop == 0 {
		c.CoreLink.Prop = DefaultProp
	}
}

// NewThreeTierTree builds a 3-tier multi-root tree.
func NewThreeTierTree(cfg ThreeTierConfig) (*Graph, error) {
	if cfg.Pods < 1 || cfg.ToRsPerPod < 1 || cfg.AggsPerPod < 1 || cfg.Cores < 1 {
		return nil, fmt.Errorf("topology: invalid 3-tier config %+v", cfg)
	}
	cfg.setDefaults()
	g := New(fmt.Sprintf("three-tier(pods=%d,tors=%d,aggs=%d,cores=%d)",
		cfg.Pods, cfg.ToRsPerPod, cfg.AggsPerPod, cfg.Cores))
	cores := make([]NodeID, cfg.Cores)
	for i := range cores {
		cores[i] = g.AddSwitch(fmt.Sprintf("core%d", i), TierCore, -1)
	}
	rack := 0
	for p := 0; p < cfg.Pods; p++ {
		aggs := make([]NodeID, cfg.AggsPerPod)
		for a := range aggs {
			aggs[a] = g.AddSwitch(fmt.Sprintf("agg%d-%d", p, a), TierAgg, -1)
			for _, c := range cores {
				g.Connect(aggs[a], c, cfg.CoreLink.Rate, cfg.CoreLink.Prop)
			}
		}
		for t := 0; t < cfg.ToRsPerPod; t++ {
			tor := g.AddSwitch(fmt.Sprintf("tor%d-%d", p, t), TierToR, rack)
			for h := 0; h < cfg.HostsPerToR; h++ {
				host := g.AddHost(fmt.Sprintf("h%d-%d", rack, h), rack)
				g.Connect(host, tor, cfg.HostLink.Rate, cfg.HostLink.Prop)
			}
			for _, a := range aggs {
				g.Connect(tor, a, cfg.AggLink.Rate, cfg.AggLink.Prop)
			}
			rack++
		}
	}
	return g, nil
}

// NewFatTree builds the k-ary Fat-Tree of Al-Fares et al.: k pods, each
// with k/2 edge and k/2 aggregation switches; (k/2)^2 core switches;
// (k/2)^2 * k hosts. k must be even and >= 2. All links share one rate.
func NewFatTree(k int, link LinkSpec) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and >=2, got %d", k)
	}
	if link.Rate == 0 {
		link.Rate = 10 * sim.Gbps
	}
	if link.Prop == 0 {
		link.Prop = DefaultProp
	}
	g := New(fmt.Sprintf("fat-tree(k=%d)", k))
	half := k / 2
	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = g.AddSwitch(fmt.Sprintf("core%d", i), TierCore, -1)
	}
	rack := 0
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		for a := range aggs {
			aggs[a] = g.AddSwitch(fmt.Sprintf("agg%d-%d", p, a), TierAgg, -1)
			// Aggregation switch a in each pod connects to core group a.
			for c := 0; c < half; c++ {
				g.Connect(aggs[a], cores[a*half+c], link.Rate, link.Prop)
			}
		}
		for e := 0; e < half; e++ {
			edge := g.AddSwitch(fmt.Sprintf("edge%d-%d", p, e), TierToR, rack)
			for _, a := range aggs {
				g.Connect(edge, a, link.Rate, link.Prop)
			}
			for h := 0; h < half; h++ {
				host := g.AddHost(fmt.Sprintf("h%d-%d", rack, h), rack)
				g.Connect(host, edge, link.Rate, link.Prop)
			}
			rack++
		}
	}
	return g, nil
}

// NewBCube builds a BCube(n, k) of Guo et al.: n-port hosts... more
// precisely, level-k BCube with n-port switches. Hosts have k+1 links;
// there are n^(k+1) hosts and (k+1)*n^k switches. BCube is
// server-centric: switches never connect to switches, and multi-hop
// forwarding goes through hosts.
func NewBCube(n, k int, link LinkSpec) (*Graph, error) {
	if n < 2 || k < 0 {
		return nil, fmt.Errorf("topology: bcube needs n>=2, k>=0, got n=%d k=%d", n, k)
	}
	if link.Rate == 0 {
		link.Rate = 10 * sim.Gbps
	}
	if link.Prop == 0 {
		link.Prop = DefaultProp
	}
	g := New(fmt.Sprintf("bcube(n=%d,k=%d)", n, k))
	numHosts := 1
	for i := 0; i <= k; i++ {
		numHosts *= n
	}
	hosts := make([]NodeID, numHosts)
	for i := range hosts {
		// A host's rack is its BCube-0 group: hosts sharing a level-0
		// switch.
		hosts[i] = g.AddHost(fmt.Sprintf("h%d", i), i/n)
	}
	// Level l has n^k switches; switch j at level l connects to the n
	// hosts whose address agrees with j in all digits except digit l.
	numSwitchesPerLevel := numHosts / n
	pow := 1 // n^l
	for l := 0; l <= k; l++ {
		for j := 0; j < numSwitchesPerLevel; j++ {
			rack := -1
			if l == 0 {
				rack = j
			}
			sw := g.AddSwitch(fmt.Sprintf("sw%d-%d", l, j), TierToR, rack)
			// j encodes all digits except digit l. Reconstruct the host
			// addresses: low = j mod n^l gives digits below l, high =
			// j div n^l gives digits above l.
			low := j % pow
			high := j / pow
			for d := 0; d < n; d++ {
				host := hosts[high*pow*n+d*pow+low]
				g.Connect(host, sw, link.Rate, link.Prop)
			}
		}
		pow *= n
	}
	return g, nil
}

// JellyfishConfig describes a Jellyfish random regular graph of ToR
// switches (Singla et al.).
type JellyfishConfig struct {
	Switches       int
	HostsPerSwitch int
	// NetDegree is the number of switch-to-switch ports per switch (r in
	// the paper).
	NetDegree int
	HostLink  LinkSpec
	NetLink   LinkSpec
	// Rand seeds the random graph; required.
	Rand *rand.Rand
}

// NewJellyfish builds a random regular graph of switches using the
// Jellyfish construction: repeatedly join random port pairs, fixing up
// non-regular leftovers with edge swaps.
func NewJellyfish(cfg JellyfishConfig) (*Graph, error) {
	if cfg.Switches < 2 {
		return nil, fmt.Errorf("topology: jellyfish needs >=2 switches, got %d", cfg.Switches)
	}
	if cfg.NetDegree < 1 || cfg.NetDegree >= cfg.Switches {
		return nil, fmt.Errorf("topology: jellyfish net degree %d invalid for %d switches", cfg.NetDegree, cfg.Switches)
	}
	if cfg.Rand == nil {
		return nil, fmt.Errorf("topology: jellyfish requires a seeded *rand.Rand")
	}
	if cfg.HostLink.Rate == 0 {
		cfg.HostLink.Rate = 10 * sim.Gbps
	}
	if cfg.NetLink.Rate == 0 {
		cfg.NetLink.Rate = 10 * sim.Gbps
	}
	if cfg.HostLink.Prop == 0 {
		cfg.HostLink.Prop = DefaultProp
	}
	if cfg.NetLink.Prop == 0 {
		cfg.NetLink.Prop = DefaultProp
	}
	g := New(fmt.Sprintf("jellyfish(sw=%d,r=%d)", cfg.Switches, cfg.NetDegree))
	sw := make([]NodeID, cfg.Switches)
	for i := range sw {
		sw[i] = g.AddSwitch(fmt.Sprintf("sw%d", i), TierToR, i)
		for h := 0; h < cfg.HostsPerSwitch; h++ {
			host := g.AddHost(fmt.Sprintf("h%d-%d", i, h), i)
			g.Connect(host, sw[i], cfg.HostLink.Rate, cfg.HostLink.Prop)
		}
	}
	// Random regular graph via pairing with retry. adj tracks
	// switch-switch adjacency to avoid parallel links and self-loops.
	free := make([]int, cfg.Switches) // remaining network ports per switch
	for i := range free {
		free[i] = cfg.NetDegree
	}
	adj := make([]map[int]bool, cfg.Switches)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	connect := func(a, b int) {
		g.Connect(sw[a], sw[b], cfg.NetLink.Rate, cfg.NetLink.Prop)
		adj[a][b], adj[b][a] = true, true
		free[a]--
		free[b]--
	}
	var open []int // switches with free ports
	refresh := func() {
		open = open[:0]
		for i, f := range free {
			if f > 0 {
				open = append(open, i)
			}
		}
	}
	refresh()
	stall := 0
	for len(open) > 1 && stall < 1000 {
		a := open[cfg.Rand.Intn(len(open))]
		b := open[cfg.Rand.Intn(len(open))]
		if a == b || adj[a][b] {
			stall++
			continue
		}
		connect(a, b)
		stall = 0
		refresh()
	}
	// Fix-up: if ports remain on switches that are all mutually
	// connected, break a random existing switch link (x,y) where x,y are
	// not adjacent to the stuck switches, and rewire.
	for {
		refresh()
		if len(open) == 0 {
			break
		}
		if len(open) == 1 && free[open[0]] == 1 {
			// One odd port left over: acceptable, leave it unused.
			break
		}
		a := open[0]
		// Find a link (x,y) with x,y both non-adjacent to a.
		rewired := false
		links := g.links
		for tries := 0; tries < 4*len(links); tries++ {
			l := links[cfg.Rand.Intn(len(links))]
			na, nb := g.Node(l.A), g.Node(l.B)
			if na.Kind != Switch || nb.Kind != Switch {
				continue
			}
			x, y := na.Rack, nb.Rack // rack == switch index by construction
			if x == a || y == a || adj[a][x] || adj[a][y] {
				continue
			}
			// Remove link l and connect a-x and a-y.
			g.removeLink(l.ID)
			delete(adj[x], y)
			delete(adj[y], x)
			free[x]++
			free[y]++
			connect(a, x)
			if free[a] > 0 {
				connect(a, y)
			}
			rewired = true
			break
		}
		if !rewired {
			break // give up; graph is still connected and nearly regular
		}
	}
	if cc := g.ConnectedComponents(nil); cc != 1 {
		return nil, fmt.Errorf("topology: jellyfish construction disconnected (%d components); use another seed", cc)
	}
	return g, nil
}

// removeLink deletes link id from the graph, renumbering the last link
// into its place. Only builders use it.
func (g *Graph) removeLink(id LinkID) {
	l := g.links[id]
	drop := func(n NodeID) {
		ports := g.ports[n]
		for i, p := range ports {
			if p.Link == id {
				g.ports[n] = append(ports[:i], ports[i+1:]...)
				break
			}
		}
	}
	drop(l.A)
	drop(l.B)
	last := LinkID(len(g.links) - 1)
	if id != last {
		moved := g.links[last]
		moved.ID = id
		g.links[id] = moved
		for _, n := range []NodeID{moved.A, moved.B} {
			for i, p := range g.ports[n] {
				if p.Link == last {
					g.ports[n][i].Link = id
				}
			}
		}
	}
	g.links = g.links[:last]
}

// NewDCell builds a level-1 DCell (Guo et al., the paper's §2.1.5
// server-centric example): n+1 cells of n servers, each cell with its
// own n-port mini-switch, and one direct server-to-server link per cell
// pair — server (i, j-1) connects to server (j, i) for i < j. Every
// server uses two ports (switch + one inter-cell link), and inter-cell
// forwarding transits a server, paying the OS-stack delay the paper
// calls out for server-centric designs.
func NewDCell(n int, link LinkSpec) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: dcell needs n >= 2, got %d", n)
	}
	if link.Rate == 0 {
		link.Rate = 10 * sim.Gbps
	}
	if link.Prop == 0 {
		link.Prop = DefaultProp
	}
	g := New(fmt.Sprintf("dcell(n=%d)", n))
	cells := n + 1
	servers := make([][]NodeID, cells)
	for c := 0; c < cells; c++ {
		sw := g.AddSwitch(fmt.Sprintf("sw%d", c), TierToR, c)
		servers[c] = make([]NodeID, n)
		for s := 0; s < n; s++ {
			host := g.AddHost(fmt.Sprintf("h%d-%d", c, s), c)
			servers[c][s] = host
			g.Connect(host, sw, link.Rate, link.Prop)
		}
	}
	for i := 0; i < cells; i++ {
		for j := i + 1; j < cells; j++ {
			g.Connect(servers[i][j-1], servers[j][i], link.Rate, link.Prop)
		}
	}
	return g, nil
}
