package topology

import (
	"math"
	"math/rand"
)

// BFSDist returns hop distances from src to every node, with -1 for
// unreachable nodes. dead lists failed links to skip (may be nil).
func (g *Graph) BFSDist(src NodeID, dead map[LinkID]bool) []int {
	dist := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range g.ports[n] {
			if dead[p.Link] || dist[p.Peer] >= 0 {
				continue
			}
			dist[p.Peer] = dist[n] + 1
			queue = append(queue, p.Peer)
		}
	}
	return dist
}

// ConnectedComponents returns the number of connected components,
// ignoring the given dead links.
func (g *Graph) ConnectedComponents(dead map[LinkID]bool) int {
	seen := make([]bool, len(g.nodes))
	count := 0
	for start := range g.nodes {
		if seen[start] {
			continue
		}
		count++
		queue := []NodeID{NodeID(start)}
		seen[start] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, p := range g.ports[n] {
				if dead[p.Link] || seen[p.Peer] {
					continue
				}
				seen[p.Peer] = true
				queue = append(queue, p.Peer)
			}
		}
	}
	return count
}

// Connected reports whether all the given nodes are mutually reachable,
// ignoring dead links. An empty or single-node set is connected.
func (g *Graph) Connected(nodes []NodeID, dead map[LinkID]bool) bool {
	if len(nodes) <= 1 {
		return true
	}
	dist := g.BFSDist(nodes[0], dead)
	for _, n := range nodes[1:] {
		if dist[n] < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum shortest-path hop count over the given
// node set (typically g.Switches() or g.Hosts()). It returns -1 if any
// pair is disconnected.
func (g *Graph) Diameter(nodes []NodeID) int {
	d := 0
	for _, s := range nodes {
		dist := g.BFSDist(s, nil)
		for _, t := range nodes {
			if dist[t] < 0 {
				return -1
			}
			if dist[t] > d {
				d = dist[t]
			}
		}
	}
	return d
}

// AvgShortestPath returns the mean shortest-path hop count over ordered
// pairs of distinct nodes from the given set. It returns NaN on an
// empty/singleton set and +Inf if any pair is disconnected.
func (g *Graph) AvgShortestPath(nodes []NodeID) float64 {
	if len(nodes) < 2 {
		return math.NaN()
	}
	sum, pairs := 0, 0
	for _, s := range nodes {
		dist := g.BFSDist(s, nil)
		for _, t := range nodes {
			if t == s {
				continue
			}
			if dist[t] < 0 {
				return math.Inf(1)
			}
			sum += dist[t]
			pairs++
		}
	}
	return float64(sum) / float64(pairs)
}

// ShortestPath returns one shortest path from src to dst as a node
// sequence including both endpoints, or nil if disconnected.
func (g *Graph) ShortestPath(src, dst NodeID, dead map[LinkID]bool) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	prev := make([]NodeID, len(g.nodes))
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			break
		}
		for _, p := range g.ports[n] {
			if dead[p.Link] || prev[p.Peer] >= 0 {
				continue
			}
			prev[p.Peer] = n
			queue = append(queue, p.Peer)
		}
	}
	if prev[dst] < 0 {
		return nil
	}
	var rev []NodeID
	for n := dst; n != src; n = prev[n] {
		rev = append(rev, n)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgeDisjointPaths returns the maximum number of edge-disjoint paths
// between src and dst — the path diversity metric of Teixeira et al.
// that Table 9 of the paper uses. It is computed as max-flow with unit
// link capacities (BFS augmenting paths; capacities are small).
func (g *Graph) EdgeDisjointPaths(src, dst NodeID) int {
	if src == dst {
		return 0
	}
	// residual[l] holds remaining capacity in each direction of link l:
	// [0] A->B, [1] B->A.
	residual := make([][2]int, len(g.links))
	for i := range residual {
		residual[i] = [2]int{1, 1}
	}
	dirIdx := func(l Link, from NodeID) int {
		if l.A == from {
			return 0
		}
		return 1
	}
	flow := 0
	for {
		// BFS for an augmenting path in the residual graph.
		type hop struct {
			node NodeID
			link LinkID
		}
		prev := make([]hop, len(g.nodes))
		for i := range prev {
			prev[i] = hop{node: -1, link: -1}
		}
		prev[src] = hop{node: src, link: -1}
		queue := []NodeID{src}
		found := false
		for len(queue) > 0 && !found {
			n := queue[0]
			queue = queue[1:]
			for _, p := range g.ports[n] {
				l := g.links[p.Link]
				if residual[p.Link][dirIdx(l, n)] == 0 || prev[p.Peer].node >= 0 {
					continue
				}
				prev[p.Peer] = hop{node: n, link: p.Link}
				if p.Peer == dst {
					found = true
					break
				}
				queue = append(queue, p.Peer)
			}
		}
		if !found {
			return flow
		}
		// Augment along the path.
		for n := dst; n != src; n = prev[n].node {
			l := g.links[prev[n].link]
			from := prev[n].node
			residual[prev[n].link][dirIdx(l, from)]--
			residual[prev[n].link][1-dirIdx(l, from)]++
		}
		flow++
	}
}

// AllShortestNextHops computes, for every node, the set of next-hop ports
// on some shortest path toward dst. It is the building block for ECMP
// routing tables. next[n] is nil when n is dst or disconnected from dst.
func (g *Graph) AllShortestNextHops(dst NodeID) [][]Port {
	return g.AllShortestNextHopsAvoiding(dst, nil)
}

// AllShortestNextHopsAvoiding is AllShortestNextHops on the graph with
// the given links removed — for routing around failures.
func (g *Graph) AllShortestNextHopsAvoiding(dst NodeID, dead map[LinkID]bool) [][]Port {
	dist := g.BFSDist(dst, dead)
	next := make([][]Port, len(g.nodes))
	for n := range g.nodes {
		if dist[n] <= 0 { // dst itself or unreachable
			continue
		}
		for _, p := range g.ports[n] {
			if dead[p.Link] {
				continue
			}
			if dist[p.Peer] >= 0 && dist[p.Peer] == dist[n]-1 {
				next[n] = append(next[n], p)
			}
		}
	}
	return next
}

// LinksBetweenSets counts links with one endpoint in each of two disjoint
// node sets — used to measure the capacity of a bisection cut.
func (g *Graph) LinksBetweenSets(setA map[NodeID]bool) int {
	n := 0
	for _, l := range g.links {
		if setA[l.A] != setA[l.B] {
			n++
		}
	}
	return n
}

// EstimateBisection estimates the network's bisection width: the
// minimum, over sampled balanced host bisections, of the number of
// links crossing the cut. Exact bisection is NP-hard; random sampling
// gives an upper bound that is tight for the symmetric topologies in
// this repository. rng drives the sampling; trials bounds the work.
func (g *Graph) EstimateBisection(trials int, rng *rand.Rand) int {
	hosts := g.Hosts()
	if len(hosts) < 2 || trials < 1 || rng == nil {
		return 0
	}
	best := -1
	half := len(hosts) / 2
	idx := make([]int, len(hosts))
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < trials; t++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		setA := make(map[NodeID]bool, half)
		for _, i := range idx[:half] {
			setA[hosts[i]] = true
		}
		// Grow the host set to include each host's ToR when every host
		// of that switch is in A — a simple switch-side assignment that
		// avoids counting host access links for symmetric topologies.
		for _, s := range g.Switches() {
			inA, total := 0, 0
			for _, p := range g.ports[s] {
				if g.nodes[p.Peer].Kind == Host {
					total++
					if setA[p.Peer] {
						inA++
					}
				}
			}
			if total > 0 && inA*2 >= total {
				setA[s] = true
			}
		}
		if cut := g.LinksBetweenSets(setA); best < 0 || cut < best {
			best = cut
		}
	}
	return best
}
