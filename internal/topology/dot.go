package topology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format: switches as boxes
// (core tier shaded), hosts as small circles, link labels carrying the
// rate. Useful for eyeballing generated topologies:
//
//	go run ./cmd/topoinfo -mesh 8 -dot | dot -Tsvg > mesh.svg
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", sanitizeID(g.Name))
	b.WriteString("  layout=neato;\n  overlap=false;\n  splines=true;\n")
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		switch {
		case n.Kind == Host:
			fmt.Fprintf(&b, "  n%d [label=%q shape=circle width=0.3 fontsize=8];\n", i, n.Name)
		case n.Tier == TierCore:
			fmt.Fprintf(&b, "  n%d [label=%q shape=box style=filled fillcolor=lightgray];\n", i, n.Name)
		default:
			fmt.Fprintf(&b, "  n%d [label=%q shape=box];\n", i, n.Name)
		}
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		fmt.Fprintf(&b, "  n%d -- n%d [label=%q fontsize=8];\n", l.A, l.B, l.Rate.String())
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeID makes a string safe as a DOT identifier payload.
func sanitizeID(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
