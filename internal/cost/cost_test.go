package cost

import (
	"strings"
	"testing"
)

func ratio(a, b *BOM) float64 { return a.PerServer()/b.PerServer() - 1 }

func TestTable8SmallDC(t *testing.T) {
	// Paper: 500 servers, two-tier $589 vs Quartz ring $633 -> +7%.
	c := Default2014
	tree := TwoTierTree(500, c)
	ring, err := QuartzRing(500, c)
	if err != nil {
		t.Fatal(err)
	}
	if tree.PerServer() < 450 || tree.PerServer() > 700 {
		t.Errorf("two-tier $/server = %.0f, want in the paper's ballpark (~589)", tree.PerServer())
	}
	r := ratio(ring, tree)
	if r < 0.02 || r > 0.15 {
		t.Errorf("Quartz ring premium = %+.0f%%, paper reports +7%%", 100*r)
	}
}

func TestTable8MediumDC(t *testing.T) {
	// Paper: 10k servers, three-tier $544 vs Quartz in edge $612 -> +13%.
	c := Default2014
	tree := ThreeTierTree(10_000, c)
	edge := QuartzEdge(10_000, c)
	r := ratio(edge, tree)
	if r < 0.05 || r > 0.20 {
		t.Errorf("Quartz edge premium = %+.0f%%, paper reports +13%%", 100*r)
	}
}

func TestTable8LargeDC(t *testing.T) {
	// Paper: 100k servers, Quartz in core costs the same as the
	// three-tier tree ($525 both), and edge+core costs +17%.
	c := Default2014
	tree := ThreeTierTree(100_000, c)
	core := QuartzCore(100_000, c)
	both := QuartzEdgeAndCore(100_000, c)
	if r := ratio(core, tree); r < -0.05 || r > 0.05 {
		t.Errorf("Quartz core premium = %+.1f%%, paper reports ~0%%", 100*r)
	}
	r := ratio(both, tree)
	if r < 0.08 || r > 0.25 {
		t.Errorf("Quartz edge+core premium = %+.0f%%, paper reports +17%%", 100*r)
	}
}

func TestQuartzRingSizeLimit(t *testing.T) {
	// 35 switches * 32 servers = 1120 is the most a single ring serves.
	if _, err := QuartzRing(1120, Default2014); err != nil {
		t.Errorf("1120 servers rejected: %v", err)
	}
	if _, err := QuartzRing(1121, Default2014); err == nil {
		t.Error("1121 servers accepted for a single ring")
	}
}

func TestBOMAccounting(t *testing.T) {
	b := &BOM{Name: "test", Servers: 10}
	b.add("widget", 3, 100)
	b.add("nothing", 0, 5) // ignored
	b.add("negative", -1, 5)
	if len(b.Items) != 1 {
		t.Fatalf("items = %d, want 1", len(b.Items))
	}
	if b.Total() != 300 {
		t.Errorf("Total = %v, want 300", b.Total())
	}
	if b.PerServer() != 30 {
		t.Errorf("PerServer = %v, want 30", b.PerServer())
	}
	if (&BOM{}).PerServer() != 0 {
		t.Error("zero-server BOM should be 0 per server")
	}
	if !strings.Contains(b.String(), "widget") {
		t.Error("String() missing line items")
	}
}

func TestCostScalesWithServers(t *testing.T) {
	c := Default2014
	small := ThreeTierTree(10_000, c)
	large := ThreeTierTree(100_000, c)
	if large.Total() < 9*small.Total() {
		t.Errorf("100k total $%.0f not ~10x the 10k total $%.0f", large.Total(), small.Total())
	}
	// Per-server cost falls slightly with scale (chassis amortization).
	if large.PerServer() > small.PerServer() {
		t.Errorf("per-server cost rose with scale: %.0f -> %.0f", small.PerServer(), large.PerServer())
	}
}

func TestBOMsCoverExpectedParts(t *testing.T) {
	c := Default2014
	ring, err := QuartzRing(500, c)
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string]bool{}
	for _, it := range ring.Items {
		parts[it.Part] = true
	}
	for _, want := range []string{"ULL 64-port switch (ToR)", "DWDM transceiver", "80-ch DWDM mux/demux", "EDFA amplifier"} {
		if !parts[want] {
			t.Errorf("Quartz ring BOM missing %q", want)
		}
	}
	// A 16-switch ring needs exactly 16*15 transceivers.
	for _, it := range ring.Items {
		if it.Part == "DWDM transceiver" && it.Qty != 16*15 {
			t.Errorf("transceivers = %d, want 240", it.Qty)
		}
	}
}

func TestShapeThreeTier(t *testing.T) {
	s := shapeThreeTier(10_000)
	if s.tors != 313 {
		t.Errorf("tors = %d, want 313", s.tors)
	}
	if s.pods != 20 || s.aggs != 40 {
		t.Errorf("pods/aggs = %d/%d, want 20/40", s.pods, s.aggs)
	}
	if s.cores < 2 {
		t.Errorf("cores = %d, want >= 2", s.cores)
	}
}

func TestWDMCostTrend(t *testing.T) {
	rows, err := WDMCostTrend(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (years 0,4,8,12)", len(rows))
	}
	// Premiums fall monotonically as WDM prices halve (§8's claim).
	for i := 1; i < len(rows); i++ {
		if rows[i].RingPremium >= rows[i-1].RingPremium {
			t.Errorf("ring premium not falling: %.3f then %.3f", rows[i-1].RingPremium, rows[i].RingPremium)
		}
		if rows[i].EdgePremium >= rows[i-1].EdgePremium {
			t.Errorf("edge premium not falling: %.3f then %.3f", rows[i-1].EdgePremium, rows[i].EdgePremium)
		}
	}
	// Starting premium is the Table 8 figure; after three halvings the
	// ring is nearly cost-neutral.
	if rows[0].RingPremium < 0.02 {
		t.Errorf("base ring premium = %.3f, want positive", rows[0].RingPremium)
	}
	if last := rows[len(rows)-1].RingPremium; last > rows[0].RingPremium/2 {
		t.Errorf("premium after 12 years = %.3f, want well below the base %.3f", last, rows[0].RingPremium)
	}
	if _, err := WDMCostTrend(-1, 4); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := WDMCostTrend(8, 0); err == nil {
		t.Error("zero halving accepted")
	}
}
