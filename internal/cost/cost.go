// Package cost models datacenter network hardware cost — the §4.4
// configurator behind Table 8 of the Quartz paper. It prices complete
// bills of materials for the paper's deployment options (2-tier tree,
// 3-tier tree, single Quartz ring, Quartz in the edge, in the core, and
// in both) at small/medium/large scale.
//
// The catalog prices are reconstructed 2014-era street prices for the
// part classes the paper cites ([2]-[12]); Table 8 compares cost
// *ratios* between topologies, and the catalog is calibrated so those
// ratios match the paper (e.g. a single Quartz ring costs ~7% more per
// server than a 2-tier tree at 500 servers).
package cost

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/optics"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

// Catalog holds unit prices in USD.
type Catalog struct {
	// ULLSwitch is a 64-port 10 GbE cut-through switch (Arista
	// 7150-class [4]).
	ULLSwitch float64
	// CoreChassis is the empty chassis+fabric+supervisors of a modular
	// store-and-forward core switch (Nexus 7700-class [9]).
	CoreChassis float64
	// CorePortTenG is the per-port cost of populated core line cards.
	CorePortTenG float64
	// SFPPlus is a standard short-reach 10G transceiver (tree links).
	SFPPlus float64
	// DWDMTransceiver is a tunable 10G DWDM transceiver [7].
	DWDMTransceiver float64
	// Mux80 is an 80-channel DWDM mux/demux [8].
	Mux80 float64
	// Amplifier is an EDFA line amplifier [12].
	Amplifier float64
	// Attenuator is a fixed fiber attenuator [10].
	Attenuator float64
	// FiberCable is one cross-rack fiber run.
	FiberCable float64
	// CopperCable is one in-rack copper run.
	CopperCable float64
}

// Default2014 is the calibrated catalog. Individual prices are plausible
// 2014 street prices; the Table 8 comparisons depend only on their
// ratios.
var Default2014 = Catalog{
	ULLSwitch:       14000,
	CoreChassis:     120000,
	CorePortTenG:    500,
	SFPPlus:         30,
	DWDMTransceiver: 125,
	Mux80:           2000,
	Amplifier:       1600,
	Attenuator:      40,
	FiberCable:      30,
	CopperCable:     10,
}

// LineItem is one row of a bill of materials.
type LineItem struct {
	Part  string
	Qty   int
	Unit  float64
	Total float64
}

// BOM is a priced bill of materials for one deployment.
type BOM struct {
	Name    string
	Servers int
	Items   []LineItem
}

func (b *BOM) add(part string, qty int, unit float64) {
	if qty <= 0 {
		return
	}
	b.Items = append(b.Items, LineItem{Part: part, Qty: qty, Unit: unit, Total: float64(qty) * unit})
}

// Total returns the BOM's total cost.
func (b *BOM) Total() float64 {
	t := 0.0
	for _, it := range b.Items {
		t += it.Total
	}
	return t
}

// PerServer returns cost per server.
func (b *BOM) PerServer() float64 {
	if b.Servers == 0 {
		return 0
	}
	return b.Total() / float64(b.Servers)
}

func (b *BOM) String() string {
	s := fmt.Sprintf("%s (%d servers): $%.0f total, $%.0f/server\n", b.Name, b.Servers, b.Total(), b.PerServer())
	for _, it := range b.Items {
		s += fmt.Sprintf("  %-28s x%-6d @ $%-8.0f = $%.0f\n", it.Part, it.Qty, it.Unit, it.Total)
	}
	return s
}

// Deployment-level constants shared by all configurations.
const (
	// ServersPerToR is the paper's running configuration: 64-port
	// switches with a 32:32 split (§3.2, §3.4).
	ServersPerToR = 32
	// ULLPorts is the port count of the cut-through switch.
	ULLPorts = 64
	// CorePortsTenG is the 10G port count of one core chassis (Table 16:
	// Nexus 7000, 768 10G ports).
	CorePortsTenG = 768
	// ToRUplinks is the uplink count of a tree ToR (32 servers with
	// ~2.7:1 oversubscription, a typical 2014 design point).
	ToRUplinks = 12
	// AggCoreUplinks is the 10G-equivalent uplink count from one
	// aggregation switch (or one edge ring switch) to the core tier.
	AggCoreUplinks = 8
)

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TwoTierTree prices a 2-tier multi-root tree: ToRs with a 32:32
// server/uplink split and enough 64-port root switches for the uplinks
// (full provisioning, as the paper's small-DC baseline).
func TwoTierTree(servers int, c Catalog) *BOM {
	b := &BOM{Name: "two-tier tree", Servers: servers}
	tors := ceilDiv(servers, ServersPerToR)
	uplinksPerToR := ToRUplinks
	roots := ceilDiv(tors*uplinksPerToR, ULLPorts)
	b.add("ULL 64-port switch (ToR)", tors, c.ULLSwitch)
	b.add("ULL 64-port switch (root)", roots, c.ULLSwitch)
	uplinks := tors * uplinksPerToR
	b.add("SFP+ transceiver", 2*uplinks, c.SFPPlus)
	b.add("fiber cable (cross-rack)", uplinks, c.FiberCable)
	b.add("copper cable (server)", servers, c.CopperCable)
	return b
}

// QuartzRing prices a single Quartz ring replacing the whole network of
// a small DC: M ToR switches in a WDM ring (§4's first bullet). It
// fails if the server count needs a ring beyond the 35-switch fiber
// limit.
func QuartzRing(servers int, c Catalog) (*BOM, error) {
	m := ceilDiv(servers, ServersPerToR)
	if m > wdm.MaxRingSizeSingleFiber {
		return nil, fmt.Errorf("cost: %d servers need a %d-switch ring, beyond the 35-switch fiber limit", servers, m)
	}
	b := &BOM{Name: "single Quartz ring", Servers: servers}
	b.add("ULL 64-port switch (ToR)", m, c.ULLSwitch)
	// One DWDM transceiver per peer per switch: full mesh.
	transceivers := m * (m - 1)
	b.add("DWDM transceiver", transceivers, c.DWDMTransceiver)
	// Muxes per switch: enough 80-channel muxes for the channel count.
	channels := wdm.OptimalChannels(m)
	muxesPerSwitch := ceilDiv(channels, wdm.CommodityMuxChannels)
	b.add("80-ch DWDM mux/demux", m*muxesPerSwitch, c.Mux80)
	if budget, err := optics.PlanRing(m, optics.DefaultParts); err == nil {
		b.add("EDFA amplifier", budget.Amplifiers*muxesPerSwitch, c.Amplifier)
		b.add("attenuator", budget.Attenuators*muxesPerSwitch, c.Attenuator)
	}
	b.add("fiber cable (ring segment)", m*muxesPerSwitch, c.FiberCable)
	b.add("copper cable (server)", servers, c.CopperCable)
	return b, nil
}

// threeTierShape derives the paper-style 3-tier structure for a server
// count: pods of 16 ToRs with 2 aggregation switches each, and core
// chassis sized to terminate one 10G-equivalent uplink per aggregation
// switch pair.
type threeTierShape struct {
	tors, pods, aggs, cores int
}

func shapeThreeTier(servers int) threeTierShape {
	tors := ceilDiv(servers, ServersPerToR)
	pods := ceilDiv(tors, 16)
	aggs := pods * 2
	// Each aggregation switch runs AggCoreUplinks 10G-equivalent
	// uplinks to the core tier.
	coreUplinks := aggs * AggCoreUplinks
	cores := ceilDiv(coreUplinks, CorePortsTenG)
	if cores < 2 {
		cores = 2 // multi-root redundancy
	}
	return threeTierShape{tors: tors, pods: pods, aggs: aggs, cores: cores}
}

// ThreeTierTree prices the paper's 3-tier baseline for medium/large DCs.
func ThreeTierTree(servers int, c Catalog) *BOM {
	b := &BOM{Name: "three-tier tree", Servers: servers}
	s := shapeThreeTier(servers)
	b.add("ULL 64-port switch (ToR)", s.tors, c.ULLSwitch)
	b.add("ULL 64-port switch (agg)", s.aggs, c.ULLSwitch)
	b.add("core chassis", s.cores, c.CoreChassis)
	b.add("core 10G port", s.aggs*AggCoreUplinks, c.CorePortTenG)
	uplinks := s.tors*ToRUplinks + s.aggs*AggCoreUplinks
	b.add("SFP+ transceiver", 2*uplinks, c.SFPPlus)
	b.add("fiber cable (cross-rack)", uplinks, c.FiberCable)
	b.add("copper cable (server)", servers, c.CopperCable)
	return b
}

// quartzEdgeRingSize is the ring size used when Quartz replaces the
// ToR+aggregation tiers: one ring per pod of 16 racks.
const quartzEdgeRingSize = 16

// QuartzEdge prices a 3-tier network whose edge (ToR + aggregation
// tiers) is replaced by Quartz rings of 16 switches (§4.1, Figure
// 15(c)). The core tier is unchanged.
func QuartzEdge(servers int, c Catalog) *BOM {
	b := &BOM{Name: "Quartz in edge", Servers: servers}
	s := shapeThreeTier(servers)
	rings := ceilDiv(s.tors, quartzEdgeRingSize)
	m := quartzEdgeRingSize
	b.add("ULL 64-port switch (ring ToR)", s.tors, c.ULLSwitch)
	// Mesh transceivers within each ring.
	b.add("DWDM transceiver", rings*m*(m-1), c.DWDMTransceiver)
	channels := wdm.OptimalChannels(m)
	muxesPerSwitch := ceilDiv(channels, wdm.CommodityMuxChannels)
	b.add("80-ch DWDM mux/demux", rings*m*muxesPerSwitch, c.Mux80)
	if budget, err := optics.PlanRing(m, optics.DefaultParts); err == nil {
		b.add("EDFA amplifier", rings*budget.Amplifiers*muxesPerSwitch, c.Amplifier)
		b.add("attenuator", rings*budget.Attenuators*muxesPerSwitch, c.Attenuator)
	}
	// Core tier sized as in the 3-tier baseline: each ring switch runs
	// one core uplink, matching the aggregate uplink capacity.
	coreUplinks := s.tors
	b.add("core chassis", s.cores, c.CoreChassis)
	b.add("core 10G port", coreUplinks, c.CorePortTenG)
	b.add("SFP+ transceiver", 2*coreUplinks, c.SFPPlus)
	b.add("fiber cable", coreUplinks+rings*m*muxesPerSwitch, c.FiberCable)
	b.add("copper cable (server)", servers, c.CopperCable)
	return b
}

// quartzCoreRingSize is the ring size replacing one core chassis: a
// 33-switch ring mimics a 1056-port switch (§3.2).
const quartzCoreRingSize = 33

// QuartzCore prices a 3-tier network whose core chassis are replaced by
// Quartz rings of 33 ULL switches (§4.2, Figure 15(b)).
func QuartzCore(servers int, c Catalog) *BOM {
	b := &BOM{Name: "Quartz in core", Servers: servers}
	s := shapeThreeTier(servers)
	b.add("ULL 64-port switch (ToR)", s.tors, c.ULLSwitch)
	b.add("ULL 64-port switch (agg)", s.aggs, c.ULLSwitch)
	quartzCores(b, s, c)
	uplinks := s.tors*ToRUplinks + s.aggs*AggCoreUplinks
	b.add("SFP+ transceiver", 2*uplinks, c.SFPPlus)
	b.add("fiber cable (cross-rack)", uplinks, c.FiberCable)
	b.add("copper cable (server)", servers, c.CopperCable)
	return b
}

// quartzCores adds ring-based replacements for the core chassis.
func quartzCores(b *BOM, s threeTierShape, c Catalog) {
	m := quartzCoreRingSize
	ringPorts := ServersPerToR * m // 1056 usable ports per ring
	coreUplinks := s.aggs * AggCoreUplinks
	rings := ceilDiv(coreUplinks, ringPorts)
	b.add("ULL 64-port switch (core ring)", rings*m, c.ULLSwitch)
	b.add("DWDM transceiver", rings*m*(m-1), c.DWDMTransceiver)
	channels := wdm.OptimalChannels(m)
	muxesPerSwitch := ceilDiv(channels, wdm.CommodityMuxChannels)
	b.add("80-ch DWDM mux/demux", rings*m*muxesPerSwitch, c.Mux80)
	if budget, err := optics.PlanRing(m, optics.DefaultParts); err == nil {
		b.add("EDFA amplifier", rings*budget.Amplifiers*muxesPerSwitch, c.Amplifier)
		b.add("attenuator", rings*budget.Attenuators*muxesPerSwitch, c.Attenuator)
	}
	b.add("fiber cable (ring segment)", rings*m*muxesPerSwitch, c.FiberCable)
}

// QuartzEdgeAndCore prices the full conversion: Quartz rings at the
// edge and in the core (§4, Figure 15(d)).
func QuartzEdgeAndCore(servers int, c Catalog) *BOM {
	b := &BOM{Name: "Quartz in edge and core", Servers: servers}
	s := shapeThreeTier(servers)
	rings := ceilDiv(s.tors, quartzEdgeRingSize)
	m := quartzEdgeRingSize
	b.add("ULL 64-port switch (ring ToR)", s.tors, c.ULLSwitch)
	b.add("DWDM transceiver (edge)", rings*m*(m-1), c.DWDMTransceiver)
	channels := wdm.OptimalChannels(m)
	muxesPerSwitch := ceilDiv(channels, wdm.CommodityMuxChannels)
	b.add("80-ch DWDM mux/demux (edge)", rings*m*muxesPerSwitch, c.Mux80)
	if budget, err := optics.PlanRing(m, optics.DefaultParts); err == nil {
		b.add("EDFA amplifier (edge)", rings*budget.Amplifiers*muxesPerSwitch, c.Amplifier)
		b.add("attenuator (edge)", rings*budget.Attenuators*muxesPerSwitch, c.Attenuator)
	}
	quartzCores(b, s, c)
	coreUplinks := s.tors
	b.add("SFP+ transceiver", 2*coreUplinks, c.SFPPlus)
	b.add("fiber cable", coreUplinks+rings*m*muxesPerSwitch, c.FiberCable)
	b.add("copper cable (server)", servers, c.CopperCable)
	return b
}

// TrendRow projects the Quartz cost premium as WDM part prices fall
// (Figure 1 of the paper: backbone DWDM cost per bit-km has dropped
// exponentially since 1993, driven by fiber-to-the-home volume; §8
// expects "the price difference will diminish as WDM shipping volumes
// continue to rise").
type TrendRow struct {
	// Year is an offset from the catalog's base year (2014).
	Year int
	// WDMPriceFactor multiplies the optical parts (transceivers, muxes,
	// amplifiers) of the base catalog.
	WDMPriceFactor float64
	// RingPremium is the small-DC Quartz ring's cost premium over the
	// two-tier tree at that price level.
	RingPremium float64
	// EdgePremium is the medium-DC Quartz-in-edge premium.
	EdgePremium float64
}

// WDMCostTrend sweeps the Figure 1 decline: optical part prices halving
// roughly every `halvingYears` years, with switch and cable prices held
// constant, over the given horizon. servers sizes the small and medium
// comparisons (500 and 10k, as in Table 8).
func WDMCostTrend(horizonYears, halvingYears int) ([]TrendRow, error) {
	if horizonYears < 0 || halvingYears < 1 {
		return nil, fmt.Errorf("cost: invalid trend horizon %d / halving %d", horizonYears, halvingYears)
	}
	var rows []TrendRow
	for year := 0; year <= horizonYears; year += halvingYears {
		factor := 1.0
		for y := 0; y < year; y += halvingYears {
			factor /= 2
		}
		c := Default2014
		c.DWDMTransceiver *= factor
		c.Mux80 *= factor
		c.Amplifier *= factor
		c.Attenuator *= factor
		ring, err := QuartzRing(500, c)
		if err != nil {
			return nil, err
		}
		tree := TwoTierTree(500, c)
		edge := QuartzEdge(10_000, c)
		tri := ThreeTierTree(10_000, c)
		rows = append(rows, TrendRow{
			Year:           year,
			WDMPriceFactor: factor,
			RingPremium:    ring.PerServer()/tree.PerServer() - 1,
			EdgePremium:    edge.PerServer()/tri.PerServer() - 1,
		})
	}
	return rows, nil
}
