package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("quartz_packets_delivered_total", "packets delivered", nil).Add(12)
	r.Counter("quartz_packets_dropped_total", "packets dropped", Labels{"reason": "queue-full"}).Add(3)
	r.Gauge("quartz_queue_bytes_max", "deepest output queue", nil).Set(9000)
	h := r.Histogram("quartz_packet_latency_us", "per-packet latency", nil)
	for _, v := range []float64{2, 3, 5, 8, 13, 210} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE quartz_packets_delivered_total counter",
		"quartz_packets_delivered_total 12",
		`quartz_packets_dropped_total{reason="queue-full"} 3`,
		"# TYPE quartz_queue_bytes_max gauge",
		"quartz_queue_bytes_max 9000",
		"# TYPE quartz_packet_latency_us histogram",
		`quartz_packet_latency_us_bucket{le="+Inf"} 6`,
		"quartz_packet_latency_us_count 6",
		`quartz_packet_latency_us{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be nondecreasing and end at count.
	var last int64 = -1
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "quartz_packet_latency_us_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %d after %d (%s)", v, last, line)
		}
		last = v
	}
	if last != 6 {
		t.Fatalf("last cumulative bucket = %d, want 6", last)
	}
}

func TestNDJSONExporterRoundTrip(t *testing.T) {
	r := testRegistry()
	var buf bytes.Buffer
	exp := NewNDJSONExporter(&buf)
	if err := exp.Export(1_000_000, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	r.Counter("quartz_packets_delivered_total", "", nil).Add(8)
	if err := exp.Export(2_000_000, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if exp.Snapshots() != 2 {
		t.Fatalf("snapshots = %d, want 2", exp.Snapshots())
	}

	dec := json.NewDecoder(&buf)
	var recs []NDJSONRecord
	for {
		var rec NDJSONRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("NDJSON line did not parse: %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 8 { // 4 series x 2 snapshots
		t.Fatalf("records = %d, want 8", len(recs))
	}
	var sawDelta bool
	for _, rec := range recs {
		if rec.Seq == 1 && rec.Name == "quartz_packets_delivered_total" {
			if rec.AtPs != 2_000_000 {
				t.Errorf("at_ps = %d, want 2000000", rec.AtPs)
			}
			if rec.Value != 20 {
				t.Errorf("cumulative value = %v, want 20", rec.Value)
			}
			if rec.Delta == nil || *rec.Delta != 8 {
				t.Errorf("delta = %v, want 8", rec.Delta)
			}
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Fatal("no second-snapshot counter record found")
	}
}

func TestHTTPHandler(t *testing.T) {
	h := Handler(testRegistry(), StatusMeta{"arch": "edgecore", "workload": "scatter"})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "quartz_packets_delivered_total 12") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status status = %d", rec.Code)
	}
	var page struct {
		Meta   map[string]string `json:"meta"`
		Series []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if page.Meta["arch"] != "edgecore" || len(page.Series) != 4 {
		t.Fatalf("status page: meta=%v series=%d", page.Meta, len(page.Series))
	}
}
