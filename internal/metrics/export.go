package metrics

// Exporters over Snapshot: Prometheus text exposition (the live
// endpoint's /metrics page) and streaming NDJSON (interval snapshots
// appended to a file so a long run leaves a replayable telemetry
// trail).

import (
	"encoding/json"
	"fmt"
	"io"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE lines per family, histograms
// as cumulative _bucket{le=...} series plus _sum and _count, and the
// quantile estimates as <name>{quantile="..."} gauges the way summaries
// export them.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	lastFamily := ""
	for _, s := range snap.Series {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if help := snap.Help(s.Name); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, help); err != nil {
					return err
				}
			}
			typ := "untyped"
			switch snap.KindOf(s.Name) {
			case KindCounter:
				typ = "counter"
			case KindGauge:
				typ = "gauge"
			case KindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, typ); err != nil {
				return err
			}
		}
		if err := writePromSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

// promName renders name{labels} with extra label pairs appended.
func promName(name string, labels Labels, extra string) string {
	lk := labels.key()
	switch {
	case lk == "" && extra == "":
		return name
	case lk == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + lk + "}"
	}
	return name + "{" + lk + "," + extra + "}"
}

func writePromSeries(w io.Writer, s SeriesSnapshot) error {
	switch s.Kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s %v\n", promName(s.Name, s.Labels, ""), s.Value)
		return err
	case KindHistogram:
		var cum uint64
		for _, b := range s.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s %d\n",
				promName(s.Name+"_bucket", s.Labels, fmt.Sprintf("le=%q", fmt.Sprintf("%g", b.UpperBound))), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			promName(s.Name+"_bucket", s.Labels, `le="+Inf"`), s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %v\n", promName(s.Name+"_sum", s.Labels, ""), s.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(s.Name+"_count", s.Labels, ""), s.Count); err != nil {
			return err
		}
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}, {"0.999", s.P999}} {
			if s.Count == 0 {
				break // quantiles are NaN on an empty histogram
			}
			if _, err := fmt.Fprintf(w, "%s %v\n",
				promName(s.Name, s.Labels, fmt.Sprintf("quantile=%q", q.q)), q.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// NDJSONRecord is one exported line: a series at a snapshot instant.
// Counter values and histogram counts/sums are cumulative; Delta
// carries the change since the previous Export for counters.
type NDJSONRecord struct {
	// Seq numbers the snapshot this record belongs to (0-based).
	Seq int `json:"seq"`
	// AtPs is the virtual time of the snapshot in picoseconds.
	AtPs int64 `json:"at_ps"`
	SeriesSnapshot
	Kind  string   `json:"kind"`
	Delta *float64 `json:"delta,omitempty"`
}

// NDJSONExporter appends one line per series per Export call to w —
// newline-delimited JSON, the streaming form of Snapshot. It remembers
// the previous snapshot to emit counter deltas.
type NDJSONExporter struct {
	w    io.Writer
	enc  *json.Encoder
	prev Snapshot
	seq  int
}

// NewNDJSONExporter returns an exporter writing to w.
func NewNDJSONExporter(w io.Writer) *NDJSONExporter {
	return &NDJSONExporter{w: w, enc: json.NewEncoder(w)}
}

// Export writes the snapshot taken at virtual time atPs (picoseconds).
func (e *NDJSONExporter) Export(atPs int64, snap Snapshot) error {
	diff := snap.Diff(e.prev)
	for i, s := range snap.Series {
		rec := NDJSONRecord{
			Seq: e.seq, AtPs: atPs, SeriesSnapshot: s, Kind: s.Kind.String(),
		}
		if s.Kind == KindCounter || s.Kind == KindHistogram {
			d := diff.Series[i].Value
			if s.Kind == KindHistogram {
				d = float64(diff.Series[i].Count)
			}
			rec.Delta = &d
		}
		if err := e.enc.Encode(rec); err != nil {
			return err
		}
	}
	e.seq++
	e.prev = snap
	return nil
}

// Snapshots reports how many Export calls have been written.
func (e *NDJSONExporter) Snapshots() int { return e.seq }
