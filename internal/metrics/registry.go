package metrics

// This file is the metrics registry: named, labeled instruments
// (Counter, Gauge, LatencyHistogram) that the simulator's probes feed
// while a run executes, with snapshot/diff semantics on top. All
// instrument operations are lock-free atomic updates, so the live HTTP
// exporter (cmd/quartzsim -metrics-addr) can read a registry from
// another goroutine while the single-threaded event loop writes it.
//
// The cardinality model is deliberately small: a production DCN
// telemetry pipeline exports aggregates (per-port, per-class, per-run),
// never per-flow or per-packet series — those stay in the FlowTracker
// and TraceRecorder tables. Keep label sets bounded.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one instrument's label set. Instruments are identified by
// (name, labels); the registry canonicalizes the map by sorting keys,
// so equal maps always resolve to the same series.
type Labels map[string]string

// key returns the canonical form: `k1="v1",k2="v2"` with sorted keys
// (also exactly the Prometheus exposition form between braces).
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// clone copies the label map so callers can reuse theirs.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Kind is the instrument type of a metric family.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Counter is a monotonically increasing count. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Add adds x (CAS loop; cheap under the simulator's single writer).
func (g *Gauge) Add(x float64) {
	for {
		old := g.bits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + x)
		if g.bits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one (labels, instrument) pair inside a family.
type series struct {
	labels Labels
	key    string

	counter *Counter
	gauge   *Gauge
	hist    *LatencyHistogram
}

// family groups every series sharing a metric name.
type family struct {
	name, help string
	kind       Kind

	order  []string // series keys in creation order
	series map[string]*series
}

// Registry holds metric families. The zero value is not usable; create
// one with NewRegistry. Instrument lookup takes the registry lock;
// updating a resolved instrument is lock-free, so hot paths should
// resolve instruments once and hold the pointers.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the series (name, labels), enforcing one kind
// per family.
func (r *Registry) lookup(name, help string, kind Kind, labels Labels) *series {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	k := labels.key()
	s := f.series[k]
	if s == nil {
		s = &series{labels: labels.clone(), key: k}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = NewLatencyHistogram()
		}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	return s
}

// Counter returns the counter (name, labels), creating it on first use.
// Requesting an existing name with a different kind panics.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, KindCounter, labels).counter
}

// Gauge returns the gauge (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, KindGauge, labels).gauge
}

// Histogram returns the latency histogram (name, labels), creating it
// on first use.
func (r *Registry) Histogram(name, help string, labels Labels) *LatencyHistogram {
	return r.lookup(name, help, KindHistogram, labels).hist
}

// Bucket is one non-empty histogram bucket of a snapshot, keyed by its
// upper bound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	// Count is the bucket's own count (not cumulative).
	Count uint64 `json:"count"`
}

// SeriesSnapshot is one series frozen at snapshot time.
type SeriesSnapshot struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Kind   Kind   `json:"-"`

	// Value carries the counter count or the gauge value.
	Value float64 `json:"value"`

	// Histogram state (KindHistogram only).
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	P50     float64  `json:"p50,omitempty"`
	P95     float64  `json:"p95,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	P999    float64  `json:"p999,omitempty"`
	Buckets []Bucket `json:"-"`
	HistMin float64  `json:"min,omitempty"`
	HistMax float64  `json:"max,omitempty"`
}

// Snapshot is a point-in-time copy of every series in a registry,
// ordered by family creation then series creation — deterministic for
// a deterministic simulation.
type Snapshot struct {
	Series []SeriesSnapshot
	// help/kind per family name, carried for the exporters.
	help map[string]string
	kind map[string]Kind
}

// Help returns the registered help string of a family.
func (s Snapshot) Help(name string) string { return s.help[name] }

// KindOf returns the instrument kind of a family.
func (s Snapshot) KindOf(name string) Kind { return s.kind[name] }

// Snapshot freezes the registry. Safe to call from any goroutine while
// instruments are being updated; each series is read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		help: make(map[string]string, len(r.families)),
		kind: make(map[string]Kind, len(r.families)),
	}
	for _, name := range r.order {
		f := r.families[name]
		snap.help[name] = f.help
		snap.kind[name] = f.kind
		for _, k := range f.order {
			s := f.series[k]
			ss := SeriesSnapshot{Name: name, Labels: s.labels, Kind: f.kind}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.counter.Value())
			case KindGauge:
				ss.Value = s.gauge.Value()
			case KindHistogram:
				h := s.hist
				ss.Count = h.Count()
				ss.Sum = h.Sum()
				if ss.Count > 0 { // quantiles are NaN (not JSON-safe) when empty
					ss.P50 = h.Quantile(0.50)
					ss.P95 = h.Quantile(0.95)
					ss.P99 = h.Quantile(0.99)
					ss.P999 = h.Quantile(0.999)
					ss.HistMin = h.Min()
					ss.HistMax = h.Max()
				}
				ss.Buckets = h.Buckets()
			}
			snap.Series = append(snap.Series, ss)
		}
	}
	return snap
}

// Diff returns the change from prev to s: counter values and histogram
// counts/sums become deltas (series absent from prev diff against
// zero), gauges keep their current value, and histogram quantiles keep
// the cumulative estimate (per-interval quantiles are not recoverable
// from bucket deltas with useful accuracy, and the cumulative value is
// what an operator watching a run wants).
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	prevBy := make(map[string]SeriesSnapshot, len(prev.Series))
	for _, ps := range prev.Series {
		prevBy[ps.Name+"{"+ps.Labels.key()+"}"] = ps
	}
	out := Snapshot{help: s.help, kind: s.kind}
	out.Series = make([]SeriesSnapshot, 0, len(s.Series))
	for _, cur := range s.Series {
		p, ok := prevBy[cur.Name+"{"+cur.Labels.key()+"}"]
		if ok {
			switch cur.Kind {
			case KindCounter:
				cur.Value -= p.Value
			case KindHistogram:
				cur.Count -= p.Count
				cur.Sum -= p.Sum
				cur.Buckets = diffBuckets(cur.Buckets, p.Buckets)
			}
		}
		out.Series = append(out.Series, cur)
	}
	return out
}

// diffBuckets subtracts prev bucket counts from cur, dropping buckets
// that end up empty.
func diffBuckets(cur, prev []Bucket) []Bucket {
	prevBy := make(map[float64]uint64, len(prev))
	for _, b := range prev {
		prevBy[b.UpperBound] = b.Count
	}
	out := make([]Bucket, 0, len(cur))
	for _, b := range cur {
		b.Count -= prevBy[b.UpperBound]
		if b.Count > 0 {
			out = append(out, b)
		}
	}
	return out
}
