package metrics

// Concurrent use of the Registry: writers updating instruments and
// minting new series while readers snapshot and export. The service
// layer (internal/service) drives the registry exactly this way — HTTP
// /metrics scrapes race worker-pool updates — so this is run under
// -race in `make verify`.

import (
	"io"
	"sync"
	"testing"
)

func TestRegistryConcurrentReadersAndWriters(t *testing.T) {
	reg := NewRegistry()

	// Pre-existing instruments the writers hammer.
	base := reg.Counter("conc_ops_total", "ops", nil)
	gauge := reg.Gauge("conc_depth", "depth", nil)
	hist := reg.Histogram("conc_latency_us", "latency", nil)

	const (
		writers = 4
		readers = 4
		rounds  = 500
	)
	start := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: update existing series and mint fresh ones (lookup path
	// and instrument path both exercised).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			labels := Labels{"writer": string(rune('a' + w))}
			for i := 0; i < rounds; i++ {
				base.Inc()
				gauge.Set(float64(i))
				hist.Observe(float64(i%100 + 1))
				// Same (name, labels) each round: the registry must
				// return the one existing series, never a duplicate.
				reg.Counter("conc_per_writer_total", "per-writer ops", labels).Inc()
				if i%50 == 0 {
					// A genuinely new family appears mid-flight.
					reg.Gauge("conc_dynamic", "appears during the run", Labels{
						"writer": string(rune('a' + w)),
						"round":  string(rune('A' + i/50)),
					}).Set(1)
				}
			}
		}(w)
	}

	// Readers: snapshot and run both exporters against live state.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			exp := NewNDJSONExporter(io.Discard)
			for i := 0; i < rounds/10; i++ {
				snap := reg.Snapshot()
				for _, s := range snap.Series {
					if s.Name == "" {
						t.Error("snapshot series with empty name")
						return
					}
				}
				if err := WritePrometheus(io.Discard, snap); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				if err := exp.Export(int64(i), snap); err != nil {
					t.Errorf("NDJSON export: %v", err)
					return
				}
			}
		}()
	}

	close(start)
	wg.Wait()

	// Totals must be exact: no update may be lost to a concurrent
	// snapshot or a duplicate series.
	if got := base.Value(); got != writers*rounds {
		t.Errorf("conc_ops_total = %d, want %d", got, writers*rounds)
	}
	snap := reg.Snapshot()
	perWriter := 0
	for _, s := range snap.Series {
		if s.Name == "conc_per_writer_total" {
			perWriter++
			if s.Value != rounds {
				t.Errorf("per-writer series %v = %v, want %d", s.Labels, s.Value, rounds)
			}
		}
	}
	if perWriter != writers {
		t.Errorf("conc_per_writer_total has %d series, want %d", perWriter, writers)
	}
	var histCount uint64
	for _, s := range snap.Series {
		if s.Name == "conc_latency_us" {
			histCount = s.Count
		}
	}
	if histCount != writers*rounds {
		t.Errorf("histogram count = %d, want %d", histCount, writers*rounds)
	}
}
