package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStatsBasics(t *testing.T) {
	var s Stats
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty Stats should be NaN")
	}
	if s.CI95() != 0 {
		t.Error("empty CI95 should be 0")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Known population: sample variance = 32/7.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = [%v,%v], want [2,9]", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 = %v, want > 0", s.CI95())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestStatsMatchesDirectComputation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 2
		var s Stats
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(count)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		wantVar := varSum / float64(count-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-wantVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Percentile(50)) || !math.IsNaN(s.Mean()) {
		t.Error("empty Sample should be NaN")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Median = %v, want 50.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	if got := s.Percentile(99); got < 98 || got > 100 {
		t.Errorf("P99 = %v, want ~99", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	if s.N() != 100 {
		t.Errorf("N = %d, want 100", s.N())
	}
}

func TestSampleUnsortedInsertions(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5, 3, 7} {
		s.Add(x)
	}
	if got := s.Median(); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	s.Add(0) // re-sorts lazily
	if got := s.Percentile(0); got != 0 {
		t.Errorf("P0 after insert = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "quartz"
	s.Add(1, 2.5, 0.1)
	s.Add(2, 3.5, 0.2)
	if len(s.Points) != 2 || s.Points[1].Y != 3.5 {
		t.Errorf("Series = %+v", s)
	}
}
