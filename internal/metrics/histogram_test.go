package metrics

import (
	"math"
	"math/rand"
	"testing"
	"unsafe"
)

// relErr returns |a-b| / |b|.
func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestLatencyHistogramVsSampleMillion is the acceptance check: over a
// 1M-observation stream shaped like a congested run's latency
// distribution (lognormal body, heavy tail), the histogram's p99 must
// stay within 5% of the exact Sample.Percentile(99) while using
// O(buckets) memory.
func TestLatencyHistogramVsSampleMillion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := NewLatencyHistogram()
	var exact Sample
	const n = 1_000_000
	for i := 0; i < n; i++ {
		// Lognormal around ~20 µs with a 1% heavy tail out to ~10 ms —
		// the shape of a queueing latency distribution.
		x := math.Exp(3 + 0.8*rng.NormFloat64())
		if rng.Float64() < 0.01 {
			x *= 50 + 100*rng.Float64()
		}
		h.Observe(x)
		exact.Add(x)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, tc := range []struct {
		q float64
		p float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {0.999, 99.9}} {
		got := h.Quantile(tc.q)
		want := exact.Percentile(tc.p)
		if e := relErr(got, want); e > 0.05 {
			t.Errorf("q%g: histogram %.4g vs exact %.4g (rel err %.2f%% > 5%%)",
				tc.q*100, got, want, 100*e)
		}
	}
	// O(buckets) memory: the struct is fixed-size regardless of n.
	if sz := unsafe.Sizeof(*h); sz > 1<<14 {
		t.Errorf("histogram footprint %d bytes — expected a fixed ~9KB struct", sz)
	}
	if e := relErr(h.Mean(), exact.Mean()); e > 1e-9 {
		t.Errorf("mean drifted: %v vs %v", h.Mean(), exact.Mean())
	}
	if h.Min() != exact.Percentile(0) || h.Max() != exact.Percentile(100) {
		t.Errorf("extrema not exact: [%v, %v] vs [%v, %v]",
			h.Min(), h.Max(), exact.Percentile(0), exact.Percentile(100))
	}
}

func TestLatencyHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) || !math.IsNaN(h.Min()) {
		t.Fatal("empty histogram must report NaN")
	}
	if h.Buckets() != nil {
		t.Fatal("empty histogram has no buckets")
	}
}

func TestLatencyHistogramEdges(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0)    // zero bucket
	h.Observe(-5)   // also zero bucket
	h.Observe(1e20) // clamps into the top bucket
	h.Observe(1e-9) // clamps into the bottom bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("q25 = %v, want 0 (zero bucket)", got)
	}
	// Extrema stay exact even for clamped observations.
	if h.Min() != -5 || h.Max() != 1e20 {
		t.Errorf("extrema [%v, %v], want [-5, 1e20]", h.Min(), h.Max())
	}
	// The top quantile clamps to the exact max rather than the bucket
	// representative.
	if got := h.Quantile(1); got != 1e20 {
		t.Errorf("q100 = %v, want exact max 1e20", got)
	}
}

func TestLatencyHistogramSingleValue(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(42)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if e := relErr(h.Quantile(q), 42); e > histAlpha {
			t.Errorf("q%v = %v, want 42 within %v", q, h.Quantile(q), histAlpha)
		}
	}
}

func BenchmarkLatencyHistogramObserve(b *testing.B) {
	h := NewLatencyHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
}
