package metrics

// LatencyHistogram is the O(buckets) replacement for Sample on
// million-packet runs: log-spaced buckets give every quantile a bounded
// *relative* error (DDSketch-style), so p50 of a 3 µs ULL path and p999
// of a 500 µs congested tree path are equally trustworthy from the same
// instrument. Sample keeps every observation and is still the right
// tool for exact figures on small runs; this one never grows.

import (
	"math"
	"sync/atomic"
)

// histAlpha is the relative accuracy target: any quantile estimate q̂
// satisfies |q̂ - q| <= histAlpha * q. 2% leaves comfortable margin
// under the repo's 5% acceptance bound while keeping the bucket count
// (and the per-histogram footprint, ~9 KB) small.
const histAlpha = 0.02

// histGamma is the bucket growth factor: bucket i covers
// (gamma^(i-1), gamma^i].
var (
	histGamma    = (1 + histAlpha) / (1 - histAlpha)
	histLogGamma = math.Log(histGamma)
)

// Bucket index range. With gamma ≈ 1.0408, index = ceil(ln x / ln
// gamma) spans roughly x ∈ [1e-6, 3e12]: nanoseconds through hours
// when observing microseconds, bytes through terabytes when observing
// sizes. Observations outside the range clamp into the edge buckets
// (Count/Sum/Min/Max stay exact; only their quantile position
// saturates).
const (
	histMinIdx = -346 // gamma^-346 ≈ 9.6e-7
	histMaxIdx = 718  // gamma^718  ≈ 3.4e12
	numBuckets = histMaxIdx - histMinIdx + 1
)

// LatencyHistogram records a stream of positive observations into
// log-spaced buckets. The zero value is NOT ready; use
// NewLatencyHistogram (the Registry does). Safe for concurrent use:
// Observe is two atomic adds plus two CAS extrema updates.
type LatencyHistogram struct {
	buckets [numBuckets]atomic.Uint64
	// zero counts observations <= 0 (quantile position: 0).
	zero    atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; math.Inf(1) when empty
	maxBits atomic.Uint64 // float64 bits; math.Inf(-1) when empty
}

// NewLatencyHistogram returns an empty histogram.
func NewLatencyHistogram() *LatencyHistogram {
	h := &LatencyHistogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketIndex maps a positive observation to its bucket slot.
func bucketIndex(x float64) int {
	i := int(math.Ceil(math.Log(x) / histLogGamma))
	if i < histMinIdx {
		i = histMinIdx
	}
	if i > histMaxIdx {
		i = histMaxIdx
	}
	return i - histMinIdx
}

// bucketValue returns the representative value of bucket slot i: the
// midpoint 2·gamma^i/(gamma+1) of (gamma^(i-1), gamma^i], which is
// what bounds the relative error at alpha.
func bucketValue(slot int) float64 {
	i := slot + histMinIdx
	return 2 * math.Pow(histGamma, float64(i)) / (histGamma + 1)
}

// Observe records one observation.
func (h *LatencyHistogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.count.Add(1)
	addFloat(&h.sumBits, x)
	casMin(&h.minBits, x)
	casMax(&h.maxBits, x)
	if x <= 0 {
		h.zero.Add(1)
		return
	}
	h.buckets[bucketIndex(x)].Add(1)
}

// addFloat atomically adds x to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if x >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, x float64) {
	for {
		old := bits.Load()
		if x <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(x)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *LatencyHistogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (NaN if empty).
func (h *LatencyHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, exactly (NaN if empty).
func (h *LatencyHistogram) Min() float64 {
	if h.Count() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, exactly (NaN if empty).
func (h *LatencyHistogram) Max() float64 {
	if h.Count() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-th quantile (0 <= q <= 1) with relative
// error bounded by 2% (histAlpha). NaN if empty. Under concurrent
// writes the estimate reflects some recent state — fine for a live
// exporter watching a run.
func (h *LatencyHistogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the k-th smallest observation.
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	// The extrema are tracked exactly; serve the edge ranks from them.
	if rank >= n {
		return math.Float64frombits(h.maxBits.Load())
	}
	cum := h.zero.Load()
	if rank <= cum {
		return 0
	}
	if rank == cum+1 && cum == 0 {
		return math.Float64frombits(h.minBits.Load())
	}
	for slot := 0; slot < numBuckets; slot++ {
		c := h.buckets[slot].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := bucketValue(slot)
			// Clamp to the exact extrema: the edge buckets are wide and
			// the true min/max are known.
			if min := math.Float64frombits(h.minBits.Load()); v < min {
				v = min
			}
			if max := math.Float64frombits(h.maxBits.Load()); v > max {
				v = max
			}
			return v
		}
	}
	// Writers raced past the count we loaded; return the max seen.
	return math.Float64frombits(h.maxBits.Load())
}

// Buckets returns the non-empty buckets in ascending order, each with
// its upper bound gamma^i and its own (non-cumulative) count. The zero
// bucket, if populated, appears first with upper bound 0.
func (h *LatencyHistogram) Buckets() []Bucket {
	var out []Bucket
	if z := h.zero.Load(); z > 0 {
		out = append(out, Bucket{UpperBound: 0, Count: z})
	}
	for slot := 0; slot < numBuckets; slot++ {
		if c := h.buckets[slot].Load(); c > 0 {
			out = append(out, Bucket{
				UpperBound: math.Pow(histGamma, float64(slot+histMinIdx)),
				Count:      c,
			})
		}
	}
	return out
}
