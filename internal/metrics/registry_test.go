package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("pkts_total", "packets", Labels{"arch": "ring"})
	c2 := r.Counter("pkts_total", "", Labels{"arch": "ring"})
	if c1 != c2 {
		t.Fatal("same (name, labels) must resolve to the same counter")
	}
	c3 := r.Counter("pkts_total", "", Labels{"arch": "tree3"})
	if c1 == c3 {
		t.Fatal("different labels must resolve to different counters")
	}
	c1.Add(3)
	c3.Inc()
	if c1.Value() != 3 || c3.Value() != 1 {
		t.Fatalf("counter values: %d, %d", c1.Value(), c3.Value())
	}

	g := r.Gauge("depth_bytes", "queue depth", nil)
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge value: %v", g.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x", "", nil)
}

func TestLabelsCanonicalization(t *testing.T) {
	a := Labels{"b": "2", "a": "1"}
	b := Labels{"a": "1", "b": "2"}
	if a.key() != b.key() {
		t.Fatalf("label keys differ: %q vs %q", a.key(), b.key())
	}
	if want := `a="1",b="2"`; a.key() != want {
		t.Fatalf("key = %q, want %q", a.key(), want)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "", nil)
	g := r.Gauge("pending", "", nil)
	h := r.Histogram("lat_us", "", nil)

	c.Add(10)
	g.Set(5)
	h.Observe(1)
	h.Observe(100)
	s1 := r.Snapshot()

	c.Add(7)
	g.Set(3)
	h.Observe(10)
	s2 := r.Snapshot()

	d := s2.Diff(s1)
	byName := map[string]SeriesSnapshot{}
	for _, s := range d.Series {
		byName[s.Name] = s
	}
	if v := byName["events_total"].Value; v != 7 {
		t.Errorf("counter delta = %v, want 7", v)
	}
	if v := byName["pending"].Value; v != 3 {
		t.Errorf("gauge after diff = %v, want 3 (latest value)", v)
	}
	if n := byName["lat_us"].Count; n != 1 {
		t.Errorf("histogram count delta = %d, want 1", n)
	}
	var bucketTotal uint64
	for _, b := range byName["lat_us"].Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 1 {
		t.Errorf("diffed bucket counts sum to %d, want 1", bucketTotal)
	}
	// Diff against an empty snapshot is the snapshot itself.
	d0 := s1.Diff(Snapshot{})
	for _, s := range d0.Series {
		if s.Name == "events_total" && s.Value != 10 {
			t.Errorf("diff vs empty: counter = %v, want 10", s.Value)
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "", nil)
	r.Counter("a_total", "", Labels{"z": "1"})
	r.Counter("a_total", "", Labels{"y": "1"})
	s := r.Snapshot()
	var got []string
	for _, ss := range s.Series {
		got = append(got, ss.Name+"{"+ss.Labels.key()+"}")
	}
	want := []string{`b_total{}`, `a_total{z="1"}`, `a_total{y="1"}`}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("snapshot order = %v, want creation order %v", got, want)
	}
}

func TestInstrumentsConcurrentSafe(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", nil)
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				c.Inc()
				h.Observe(float64(i%100) + 1)
				_ = h.Quantile(0.99) // concurrent reader path
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.Value() != 40_000 {
		t.Fatalf("counter = %d, want 40000", c.Value())
	}
	if h.Count() != 40_000 {
		t.Fatalf("histogram count = %d, want 40000", h.Count())
	}
	if math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("quantile of populated histogram is NaN")
	}
}
