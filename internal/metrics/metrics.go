// Package metrics provides the statistics used to report experiment
// results: online mean/variance (Welford), percentiles, histograms, and
// the 95% confidence intervals the Quartz paper draws as error bars on
// its evaluation figures (§6.1, §7.1). The observability probes of
// internal/netsim aggregate their queue-depth samples with these types.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Stats accumulates scalar observations with O(1) memory using
// Welford's online algorithm. The zero value is ready to use.
type Stats struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add records one observation.
func (s *Stats) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// Merge folds another accumulator into s, as if every observation o
// recorded had been recorded on s (Chan et al.'s parallel combination
// of Welford states). Sharded runs keep one Stats per shard and merge
// at the end; the merged moments can differ from the sequential ones
// in the last floating-point ulp, which is why byte-identity
// guarantees are stated over integer outputs, not float summaries.
func (s *Stats) Merge(o *Stats) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of observations.
func (s *Stats) N() int64 { return s.n }

// Mean returns the sample mean (NaN if empty).
func (s *Stats) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the unbiased sample variance (NaN if n < 2).
func (s *Stats) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation (NaN if n < 2).
func (s *Stats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (NaN if empty).
func (s *Stats) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (NaN if empty).
func (s *Stats) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean under the normal approximation (the paper reports 95% CIs as
// error bars, §6.1). It returns 0 if n < 2.
func (s *Stats) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

func (s *Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.3g ±%.2g [%.3g, %.3g]", s.n, s.Mean(), s.CI95(), s.Min(), s.Max())
}

// Sample keeps all observations for percentile queries. The zero value
// is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (NaN if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. NaN if empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo]*(1-frac) + s.xs[lo+1]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Histogram counts observations into fixed-width bins over [lo, hi);
// out-of-range values go to the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int64
	Underflow int64
	Overflow  int64
	width     float64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("metrics: invalid histogram [%v,%v) with %d bins", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n), width: (hi - lo) / float64(n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		h.Bins[int((x-h.Lo)/h.width)]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Point is one (x, y) pair of a figure series, with an optional error
// bar half-width.
type Point struct {
	X, Y, Err float64
}

// Series is a labelled sequence of points — one line of a paper figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}
