package metrics

// The live export surface: an http.Handler over a Registry so a
// multi-minute simulation can be watched mid-flight. /metrics serves
// the Prometheus text format; /status (and /) serves a JSON run-status
// page: static metadata from the caller plus the full current
// snapshot. Handlers only read atomic instrument state — they never
// touch the simulation's own structures — so serving from another
// goroutine while the single-threaded event loop runs is race-free.

import (
	"encoding/json"
	"net/http"
	"time"
)

// StatusMeta is the static run description shown on the status page.
type StatusMeta map[string]string

// statusPage is the JSON document served at /status.
type statusPage struct {
	Meta       StatusMeta       `json:"meta,omitempty"`
	UptimeSecs float64          `json:"uptime_secs"`
	Series     []SeriesSnapshot `json:"series"`
}

// Handler returns the live export mux for a registry. meta may be nil.
func Handler(r *Registry, meta StatusMeta) http.Handler {
	started := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
	status := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(statusPage{
			Meta:       meta,
			UptimeSecs: time.Since(started).Seconds(),
			Series:     r.Snapshot().Series,
		})
	}
	mux.HandleFunc("/status", status)
	mux.HandleFunc("/", status)
	return mux
}

// Serve starts an HTTP server for the registry on addr in a background
// goroutine and returns it; errors after startup (and clean shutdowns)
// are delivered to errc if non-nil. Callers that outlive the run should
// Close the returned server.
func Serve(addr string, r *Registry, meta StatusMeta, errc chan<- error) *http.Server {
	srv := &http.Server{Addr: addr, Handler: Handler(r, meta)}
	go func() {
		err := srv.ListenAndServe()
		if errc != nil {
			errc <- err
		}
	}()
	return srv
}
