// Package trace is the execution-tracing layer of the simulator: a
// low-overhead span recorder capturing dual-clock spans — virtual
// simulation time and wall time side by side — with a bounded
// flight-recorder mode for long runs and a Chrome trace-event JSON
// exporter loadable in Perfetto or chrome://tracing.
//
// The package depends only on the standard library so every layer of
// the tree (the event engine, the network simulator, the experiment
// runners, the job service) can record into the same Recorder without
// import cycles. Aggregation into the metrics registry happens at the
// attach sites (sim.AttachTrace), not here.
//
// Clock model. Every span carries two clocks:
//
//   - the virtual clock (Virt, VirtEnd): simulation time in engine
//     ticks (picoseconds in this repo). Virtual fields are a pure
//     function of the simulated workload, so they are byte-identical
//     across shard counts and across machines — the determinism tests
//     compare exactly these (ContentCSV).
//   - the wall clock (Wall, WallDur): nanoseconds since the recorder's
//     epoch. Wall fields are the performance instrument — where the
//     coordinator actually spent its time — and are excluded from every
//     determinism comparison.
//
// Overhead. A nil *Recorder is a valid disabled recorder: every method
// is nil-safe, so instrumented code holds a possibly-nil pointer and
// pays one branch when tracing is off. Recording a span takes one
// mutex acquisition and one slice store; nothing in this package runs
// per simulation event.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Arg is one integer span annotation. Spans carry a small fixed array
// of these instead of a map so recording never allocates per span.
type Arg struct {
	Key string
	Val int64
}

// maxArgs bounds the per-span annotation count.
const maxArgs = 6

// Span is one recorded interval (or instant, when both durations are
// zero) on a named track.
type Span struct {
	// Name labels the span ("window", "barrier", "flow", "cell", ...).
	Name string
	// Cat groups spans into a Perfetto process ("engine", "net",
	// "experiment", "job"). Determinism comparisons can filter by it.
	Cat string
	// Track is the Perfetto thread within the category: the shard index
	// for engine spans, the flow ID for flow spans, the cell index for
	// experiment spans. CoordinatorTrack marks the synchronizer itself.
	Track int
	// Virt and VirtEnd bound the span on the virtual clock, in engine
	// ticks. Both zero for wall-only spans (setup, job lifecycle).
	Virt, VirtEnd int64
	// Wall is the span's start on the wall clock, nanoseconds since the
	// recorder epoch; WallDur its wall duration. Both zero for
	// virtual-only spans derived after the fact (flow spans).
	Wall, WallDur int64
	// NArgs is the number of valid entries in Args.
	NArgs int
	Args  [maxArgs]Arg
}

// CoordinatorTrack is the Track value for spans recorded by a
// synchronizer/coordinator rather than one of its shards.
const CoordinatorTrack = -1

// Annotate appends an annotation in place (dropped when full) and
// returns the span for chaining.
func (s Span) Annotate(key string, val int64) Span {
	if s.NArgs < maxArgs {
		s.Args[s.NArgs] = Arg{Key: key, Val: val}
		s.NArgs++
	}
	return s
}

// Recorder accumulates spans. Create one with NewRecorder (unbounded)
// or NewFlightRecorder (bounded ring that overwrites the oldest span —
// the "what were the last N windows doing" black box for long runs).
// A nil *Recorder is the disabled recorder: every method is safe to
// call and does nothing. Recorders are safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	limit   int // > 0: flight-recorder ring capacity
	next    int // ring write cursor when limit > 0
	wrapped bool
	dropped uint64

	trackNames map[trackID]string
}

// trackID keys the track display names: one Perfetto thread.
type trackID struct {
	cat   string
	track int
}

// NewRecorder returns an unbounded recorder with its wall epoch at now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// NewFlightRecorder returns a recorder bounded to the most recent
// capacity spans: when full, each Add overwrites the oldest span and
// Dropped counts the overwritten. capacity must be positive.
func NewFlightRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: flight recorder capacity must be positive, got %d", capacity))
	}
	return &Recorder{epoch: time.Now(), limit: capacity}
}

// Enabled reports whether the recorder records (false on nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Epoch returns the wall instant span Wall offsets are relative to
// (zero time on nil).
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Since converts a wall instant to a span Wall offset (ns since epoch).
func (r *Recorder) Since(t time.Time) int64 {
	if r == nil {
		return 0
	}
	return t.Sub(r.epoch).Nanoseconds()
}

// Add records one span. Nil-safe; in flight-recorder mode a full ring
// overwrites its oldest span.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.limit > 0 {
		if len(r.spans) < r.limit {
			r.spans = append(r.spans, s)
		} else {
			r.spans[r.next] = s
			r.dropped++
			r.wrapped = true
		}
		r.next++
		if r.next == r.limit {
			r.next = 0
		}
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// NameTrack sets the display name of (cat, track) for the Chrome
// export's thread_name metadata. Nil-safe.
func (r *Recorder) NameTrack(cat string, track int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.trackNames == nil {
		r.trackNames = make(map[trackID]string)
	}
	r.trackNames[trackID{cat, track}] = name
	r.mu.Unlock()
}

// Len returns the number of spans held (post-overwrite in flight mode).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans the flight ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the held spans in record order (oldest first,
// unwrapping the flight ring). Nil-safe.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spansLocked()
}

func (r *Recorder) spansLocked() []Span {
	if r.limit > 0 && r.wrapped {
		out := make([]Span, 0, len(r.spans))
		out = append(out, r.spans[r.next:]...)
		out = append(out, r.spans[:r.next]...)
		return out
	}
	return append([]Span(nil), r.spans...)
}

// contentLess is a total order on spans by virtual-clock content:
// every field except the wall clock. Spans that compare equal are
// identical rows, so the sorted order — and therefore ContentCSV — is
// independent of record order and of which shard recorded what.
func contentLess(a, b Span) bool {
	if a.Virt != b.Virt {
		return a.Virt < b.Virt
	}
	if a.VirtEnd != b.VirtEnd {
		return a.VirtEnd < b.VirtEnd
	}
	if a.Cat != b.Cat {
		return a.Cat < b.Cat
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Track != b.Track {
		return a.Track < b.Track
	}
	if a.NArgs != b.NArgs {
		return a.NArgs < b.NArgs
	}
	for i := 0; i < a.NArgs; i++ {
		if a.Args[i].Key != b.Args[i].Key {
			return a.Args[i].Key < b.Args[i].Key
		}
		if a.Args[i].Val != b.Args[i].Val {
			return a.Args[i].Val < b.Args[i].Val
		}
	}
	return false
}

// ContentCSV renders the spans whose category is in cats (every span
// when cats is empty) as CSV in virtual-time content order, with every
// wall-clock field excluded. Two runs of the same workload produce
// identical ContentCSV regardless of shard count, goroutine schedule,
// or machine speed — the property the determinism tests pin.
func (r *Recorder) ContentCSV(cats ...string) string {
	if r == nil {
		return ""
	}
	want := make(map[string]bool, len(cats))
	for _, c := range cats {
		want[c] = true
	}
	r.mu.Lock()
	all := r.spansLocked()
	r.mu.Unlock()
	var spans []Span
	for _, s := range all {
		if len(want) == 0 || want[s.Cat] {
			spans = append(spans, s)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return contentLess(spans[i], spans[j]) })
	var b strings.Builder
	b.WriteString("virt,virt_end,cat,name,track,args\n")
	for _, s := range spans {
		fmt.Fprintf(&b, "%d,%d,%s,%s,%d,", s.Virt, s.VirtEnd, s.Cat, s.Name, s.Track)
		for i := 0; i < s.NArgs; i++ {
			if i > 0 {
				b.WriteByte(';')
			}
			fmt.Fprintf(&b, "%s=%d", s.Args[i].Key, s.Args[i].Val)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Merge appends every span of the others into r (record order, others
// in argument order). Use with per-shard recorders before exporting;
// ContentCSV re-sorts by content, so the merged output is independent
// of the argument order.
func (r *Recorder) Merge(others ...*Recorder) {
	if r == nil {
		return
	}
	for _, o := range others {
		for _, s := range o.Spans() {
			r.Add(s)
		}
	}
}
