package trace

// Chrome trace-event export: the JSON object format understood by
// Perfetto (ui.perfetto.dev) and chrome://tracing. One Perfetto
// process per span category, one thread per track, complete ("X")
// events on the wall clock with the virtual clock carried in args —
// so a sharded run renders as one track per shard whose window and
// barrier spans tile the wall time.
//
// Reference: the Trace Event Format document (Google, public). The
// required keys per event are name, ph, ts, pid, tid; "X" events add
// dur. ts and dur are microseconds; fractional values carry nanosecond
// precision.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace-event row.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeDoc is the JSON object form of a trace file.
type chromeDoc struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// virtTicksPerMicro converts engine ticks (picoseconds) to trace
// microseconds for the virtual-clock args.
const virtTicksPerMicro = 1e6

// WriteChrome serializes the recorder as Chrome trace-event JSON.
// meta, when non-nil, lands in the document's otherData block (the
// place for a run description or a propagated trace ID). Events are
// sorted by wall start then content, so ts is monotonic within every
// (pid, tid) track — the invariant the trace smoke test validates.
func (r *Recorder) WriteChrome(w io.Writer, meta map[string]string) error {
	spans := r.Spans()

	// One Perfetto process per category, numbered in sorted order so
	// the export is deterministic.
	cats := map[string]int{}
	for _, s := range spans {
		cats[s.Cat] = 0
	}
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, c)
	}
	sort.Strings(names)
	for i, c := range names {
		cats[c] = i + 1
	}

	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Wall != spans[j].Wall {
			return spans[i].Wall < spans[j].Wall
		}
		return contentLess(spans[i], spans[j])
	})

	doc := chromeDoc{
		TraceEvents:     make([]chromeEvent, 0, len(spans)+2*len(names)),
		DisplayTimeUnit: "ms",
		OtherData:       meta,
	}
	if r != nil && !r.epoch.IsZero() {
		if doc.OtherData == nil {
			doc.OtherData = map[string]string{}
		}
		if _, ok := doc.OtherData["epoch"]; !ok {
			doc.OtherData["epoch"] = r.epoch.UTC().Format("2006-01-02T15:04:05.000000Z07:00")
		}
		if d := r.Dropped(); d > 0 {
			doc.OtherData["spans_dropped"] = fmt.Sprintf("%d", d)
		}
	}

	// Metadata: process names, plus thread names where NameTrack set one.
	for _, c := range names {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: cats[c], TID: 0,
			Args: map[string]interface{}{"name": c},
		})
	}
	if r != nil {
		r.mu.Lock()
		keys := make([]trackID, 0, len(r.trackNames))
		for k := range r.trackNames {
			keys = append(keys, k)
		}
		tn := make(map[trackID]string, len(r.trackNames))
		for k, v := range r.trackNames {
			tn[k] = v
		}
		r.mu.Unlock()
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].cat != keys[j].cat {
				return keys[i].cat < keys[j].cat
			}
			return keys[i].track < keys[j].track
		})
		for _, k := range keys {
			pid, ok := cats[k.cat]
			if !ok {
				continue
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: k.track,
				Args: map[string]interface{}{"name": tn[k]},
			})
		}
	}

	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Wall) / 1e3,
			PID:  cats[s.Cat],
			TID:  s.Track,
		}
		dur := float64(s.WallDur) / 1e3
		ev.Dur = &dur
		args := make(map[string]interface{}, s.NArgs+2)
		if s.Virt != 0 || s.VirtEnd != 0 {
			args["virt_us"] = float64(s.Virt) / virtTicksPerMicro
			args["virt_end_us"] = float64(s.VirtEnd) / virtTicksPerMicro
			// Wall-less spans (derived after the run, e.g. flow spans)
			// render on the virtual clock so they are visible at all.
			if s.Wall == 0 && s.WallDur == 0 {
				ev.TS = float64(s.Virt) / virtTicksPerMicro
				d := float64(s.VirtEnd-s.Virt) / virtTicksPerMicro
				ev.Dur = &d
			}
		}
		for i := 0; i < s.NArgs; i++ {
			args[s.Args[i].Key] = s.Args[i].Val
		}
		if len(args) > 0 {
			ev.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	// Virtual-clock events were re-timed onto their own timeline, which
	// can break per-track wall monotonicity if a track mixes both kinds;
	// tracks never do (flow tracks are virtual-only, engine tracks
	// wall-only), but a final per-track stable sort keeps the exported
	// invariant unconditional.
	sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
		a, b := doc.TraceEvents[i], doc.TraceEvents[j]
		if a.Ph == "M" || b.Ph == "M" {
			return a.Ph == "M" && b.Ph != "M"
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.TS < b.TS
	})

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
