package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Add(Span{Name: "x"})
	r.NameTrack("c", 0, "n")
	r.Merge(NewRecorder())
	if r.Len() != 0 || r.Dropped() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder holds state")
	}
	if r.ContentCSV() != "" {
		t.Fatal("nil recorder has content")
	}
	if !r.Epoch().IsZero() || r.Since(time.Now()) != 0 {
		t.Fatal("nil recorder has a clock")
	}
}

func TestFlightRecorderOverwritesOldest(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Add(Span{Name: "s", Virt: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
	spans := r.Spans()
	for i, s := range spans {
		if want := int64(6 + i); s.Virt != want {
			t.Fatalf("span %d has virt %d, want %d (oldest-first unwrap)", i, s.Virt, want)
		}
	}
}

func TestFlightRecorderCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	NewFlightRecorder(0)
}

func TestAnnotateBounds(t *testing.T) {
	s := Span{Name: "s"}
	for i := 0; i < maxArgs+3; i++ {
		s = s.Annotate("k", int64(i))
	}
	if s.NArgs != maxArgs {
		t.Fatalf("NArgs %d, want %d", s.NArgs, maxArgs)
	}
}

// TestContentCSVWallIndependent pins the determinism surface: two
// recorders holding the same virtual content in different record
// orders and with different wall clocks render identical ContentCSV.
func TestContentCSVWallIndependent(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	s1 := Span{Name: "flow", Cat: "net", Track: 7, Virt: 100, VirtEnd: 900}.Annotate("pkts", 3)
	s2 := Span{Name: "flow", Cat: "net", Track: 9, Virt: 50, VirtEnd: 400}.Annotate("pkts", 1)
	// a: in order, no wall. b: reversed, with wall stamps.
	a.Add(s1)
	a.Add(s2)
	w1, w2 := s1, s2
	w1.Wall, w1.WallDur = 5000, 10
	w2.Wall, w2.WallDur = 9000, 20
	b.Add(w2)
	b.Add(w1)
	if got, want := b.ContentCSV("net"), a.ContentCSV("net"); got != want {
		t.Fatalf("content differs:\n%s\nvs\n%s", got, want)
	}
	if !strings.HasPrefix(a.ContentCSV(), "virt,virt_end,cat,name,track,args\n50,") {
		t.Fatalf("content not sorted by virtual time:\n%s", a.ContentCSV())
	}
}

func TestContentCSVFiltersByCategory(t *testing.T) {
	r := NewRecorder()
	r.Add(Span{Name: "window", Cat: "engine", Virt: 1, VirtEnd: 2})
	r.Add(Span{Name: "flow", Cat: "net", Virt: 1, VirtEnd: 2})
	if got := r.ContentCSV("net"); strings.Contains(got, "engine") {
		t.Fatalf("filtered content leaks other categories:\n%s", got)
	}
	if got := r.ContentCSV(); !strings.Contains(got, "engine") || !strings.Contains(got, "net") {
		t.Fatalf("unfiltered content misses categories:\n%s", got)
	}
}

func TestMergeIsOrderIndependent(t *testing.T) {
	mk := func(vs ...int64) *Recorder {
		r := NewRecorder()
		for _, v := range vs {
			r.Add(Span{Name: "s", Cat: "net", Virt: v, VirtEnd: v + 1})
		}
		return r
	}
	m1, m2 := NewRecorder(), NewRecorder()
	m1.Merge(mk(1, 5), mk(3))
	m2.Merge(mk(3), mk(1, 5))
	if m1.ContentCSV() != m2.ContentCSV() {
		t.Fatal("merge order changed content")
	}
	if m1.Len() != 3 {
		t.Fatalf("merged len %d, want 3", m1.Len())
	}
}

// chromeFile mirrors the exported JSON for validation.
type chromeFile struct {
	TraceEvents []struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		TS   *float64               `json:"ts"`
		Dur  *float64               `json:"dur"`
		PID  *int                   `json:"pid"`
		TID  *int                   `json:"tid"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

func TestWriteChrome(t *testing.T) {
	r := NewRecorder()
	r.NameTrack("engine", 0, "shard 0")
	r.NameTrack("engine", CoordinatorTrack, "coordinator")
	r.Add(Span{Name: "window", Cat: "engine", Track: 0, Virt: 1e6, VirtEnd: 2e6, Wall: 1000, WallDur: 500}.
		Annotate("events", 42))
	r.Add(Span{Name: "window", Cat: "engine", Track: 0, Virt: 2e6, VirtEnd: 3e6, Wall: 2000, WallDur: 700})
	r.Add(Span{Name: "flow", Cat: "net", Track: 3, Virt: 5e5, VirtEnd: 4e6})
	var b strings.Builder
	if err := r.WriteChrome(&b, map[string]string{"run": "test"}); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", f.DisplayTimeUnit)
	}
	if f.OtherData["run"] != "test" {
		t.Fatal("otherData lost the metadata")
	}
	var xEvents, mEvents int
	lastTS := map[[2]int]float64{}
	for _, e := range f.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.TS == nil || e.PID == nil || e.TID == nil {
			t.Fatalf("event missing required keys: %+v", e)
		}
		switch e.Ph {
		case "M":
			mEvents++
			continue
		case "X":
			xEvents++
			if e.Dur == nil {
				t.Fatalf("complete event without dur: %+v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		key := [2]int{*e.PID, *e.TID}
		if prev, ok := lastTS[key]; ok && *e.TS < prev {
			t.Fatalf("ts not monotonic on track %v: %v after %v", key, *e.TS, prev)
		}
		lastTS[key] = *e.TS
	}
	if xEvents != 3 {
		t.Fatalf("%d X events, want 3", xEvents)
	}
	if mEvents < 3 { // 2 process_name + 2 thread_name, net has no thread names
		t.Fatalf("%d metadata events, want >= 3", mEvents)
	}
	// The virtual-only flow span renders on the virtual clock: 0.5us.
	found := false
	for _, e := range f.TraceEvents {
		if e.Name == "flow" && e.Ph == "X" {
			found = true
			if *e.TS != 0.5 || *e.Dur != 3.5 {
				t.Fatalf("flow span ts/dur %v/%v, want 0.5/3.5", *e.TS, *e.Dur)
			}
			if e.Args["virt_us"] != 0.5 {
				t.Fatalf("flow span virt_us %v", e.Args["virt_us"])
			}
		}
	}
	if !found {
		t.Fatal("flow span missing from export")
	}
}

func TestWriteChromeRecordsDropped(t *testing.T) {
	r := NewFlightRecorder(1)
	r.Add(Span{Name: "a", Cat: "c"})
	r.Add(Span{Name: "b", Cat: "c"})
	var b strings.Builder
	if err := r.WriteChrome(&b, nil); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatal(err)
	}
	if f.OtherData["spans_dropped"] != "1" {
		t.Fatalf("spans_dropped %q, want 1", f.OtherData["spans_dropped"])
	}
}
