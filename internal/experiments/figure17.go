package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// TaskKind selects the §7.1 workload.
type TaskKind int

// Workload kinds of Figures 17 and 18.
const (
	ScatterKind TaskKind = iota
	GatherKind
	ScatterGatherKind
)

// String names the workload kind as the figures label it.
func (k TaskKind) String() string {
	switch k {
	case ScatterKind:
		return "scatter"
	case GatherKind:
		return "gather"
	case ScatterGatherKind:
		return "scatter/gather"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Figure17Architectures lists the compared designs in the paper's
// legend order. Jellyfish and Quartz-in-Jellyfish perform almost
// identically on global patterns (§7.1), and the figure omits the
// latter; both are available here.
var Figure17Architectures = []string{
	"three-tier tree", "jellyfish", "quartz in core", "quartz in edge", "quartz in edge and core",
}

// Figure18Architectures lists the designs compared on localized
// patterns (Figure 18).
var Figure18Architectures = []string{
	"three-tier tree", "jellyfish", "quartz in jellyfish", "quartz in edge and core",
}

// Figure17Row is one x-position: mean per-packet latency (µs) by
// architecture at a given number of concurrent tasks.
type Figure17Row struct {
	Tasks   int
	Latency map[string]float64 // architecture -> mean latency in µs
	CI      map[string]float64 // 95% CI half-width
}

// fig17Params tunes the workload: per-destination packet rate and the
// fan-out of each task. The defaults produce the paper's operating
// regime: the three-tier tree's shared 40 Gb/s links and CCS core run
// into queueing as tasks are added, while Quartz designs stay flat.
type fig17Params struct {
	receivers int     // fan-out (or fan-in) of each task
	pps       float64 // packets/s per stream
	warm      sim.Time
	measure   sim.Time
}

func defaultFig17Params(kind TaskKind) fig17Params {
	p := fig17Params{
		receivers: 16,
		// 18k packets/s per stream: at 8 tasks the CCS core ports
		// (one 400 B frame per 6 us, ~166k frames/s) run near 80%
		// utilization — the paper's operating regime, where the tree's
		// latency roughly doubles while all-ULL designs stay flat.
		pps:     18e3,
		warm:    1 * sim.Millisecond,
		measure: 20 * sim.Millisecond,
	}
	if kind == GatherKind {
		// Gather concentrates all of a task's streams on one pod's core
		// downlinks; a lower per-stream rate keeps multiple co-located
		// tasks below port saturation, as in the paper's gently rising
		// gather curve.
		p.pps = 14e3
	}
	if kind == ScatterGatherKind {
		// Requests plus replies double the core load; at 4 tasks the
		// core ports tip just past saturation, reproducing the paper's
		// latency jump from 3 to 4 tasks. The shorter window bounds the
		// post-saturation queue growth.
		p.pps = 28e3
		p.measure = 4 * sim.Millisecond
	}
	return p
}

// buildArch constructs an architecture by name.
func buildArch(name string, rng *rand.Rand) (*core.Architecture, error) {
	p := core.ArchParams{}
	switch name {
	case "three-tier tree":
		return core.ThreeTierTree(p)
	case "jellyfish":
		return core.Jellyfish(p, rng)
	case "quartz in core":
		return core.QuartzInCore(p)
	case "quartz in edge":
		return core.QuartzInEdge(p)
	case "quartz in edge and core":
		return core.QuartzInEdgeAndCore(p)
	case "quartz in jellyfish":
		return core.QuartzInJellyfish(p, rng)
	default:
		return nil, fmt.Errorf("experiments: unknown architecture %q", name)
	}
}

// runTasks measures mean packet latency with n concurrent tasks of the
// given kind on one architecture. When local is true, the first task's
// endpoints all sit in one pod ("nearby racks", Figure 18) and only
// that task is measured; the remaining tasks are global cross-traffic.
func runTasks(arch *core.Architecture, kind TaskKind, n int, local bool, params fig17Params, seed int64) (mean, ci float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       arch.Graph,
		Router:      arch.Router,
		SwitchModel: arch.Model,
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		return 0, 0, err
	}
	hosts := arch.Graph.Hosts()
	pick := func(k int, exclude map[topology.NodeID]bool) []topology.NodeID {
		var out []topology.NodeID
		for len(out) < k {
			c := hosts[rng.Intn(len(hosts))]
			if exclude[c] {
				continue
			}
			exclude[c] = true
			out = append(out, c)
		}
		return out
	}
	localHosts := func() []topology.NodeID {
		// "Nearby racks" (§7.1): racks 2..5 — four adjacent racks that
		// straddle the first pod boundary. A three-tier tree must carry
		// half of this traffic over its loaded core tier, whereas the
		// Quartz designs keep it on cheap ULL paths (rings plus the ULL
		// core ring or the inter-ring links) — the paper's locality
		// argument (§4.1).
		var out []topology.NodeID
		for rack := 2; rack < 6; rack++ {
			out = append(out, arch.Graph.HostsInRack(rack)...)
		}
		return out
	}

	end := params.warm + params.measure
	for task := 0; task < n; task++ {
		reqTag := 10 * (task + 1)
		var members []topology.NodeID
		if local && task == 0 {
			lh := localHosts()
			// Local tasks address fewer targets (§7.1): half the global
			// fan-out, all within the pod.
			k := params.receivers/2 + 1
			if k >= len(lh) {
				k = len(lh) - 1
			}
			perm := rng.Perm(len(lh))[:k+1]
			for _, i := range perm {
				members = append(members, lh[i])
			}
		} else {
			members = pick(params.receivers+1, map[topology.NodeID]bool{})
		}
		sender, receivers := members[0], members[1:]
		var t *traffic.Task
		switch kind {
		case ScatterKind:
			t = traffic.Scatter(net, sender, receivers, params.pps, reqTag, arch.VLB, rng)
		case GatherKind:
			t = traffic.Gather(net, receivers, sender, params.pps, reqTag, arch.VLB, rng)
		case ScatterGatherKind:
			t = traffic.ScatterGather(net, h, sender, receivers, params.pps, reqTag, reqTag+1, arch.VLB, rng)
		}
		if err := t.Start(end); err != nil {
			return 0, 0, err
		}
	}
	net.Engine().RunUntil(end + 2*sim.Millisecond)

	// Aggregate: mean per-packet latency over the measured tasks. For
	// scatter/gather the round trip is request mean + reply mean.
	agg := func(task int) (float64, float64, bool) {
		req := h.Latency(10 * (task + 1))
		if req.N() == 0 {
			return 0, 0, false
		}
		m, c := req.Mean(), req.CI95()
		if kind == ScatterGatherKind {
			rep := h.Latency(10*(task+1) + 1)
			if rep.N() > 0 {
				m += rep.Mean()
				c += rep.CI95()
			}
		}
		return m, c, true
	}
	if local {
		m, c, ok := agg(0)
		if !ok {
			return 0, 0, fmt.Errorf("experiments: local task delivered nothing")
		}
		return m, c, nil
	}
	sum, ciSum, count := 0.0, 0.0, 0
	for task := 0; task < n; task++ {
		if m, c, ok := agg(task); ok {
			sum += m
			ciSum += c
			count++
		}
	}
	if count == 0 {
		return 0, 0, fmt.Errorf("experiments: no task delivered anything")
	}
	return sum / float64(count), ciSum / float64(count), nil
}

// Figure17 sweeps 1..maxTasks concurrent global tasks of the given
// kind across the five §7 architectures (Figure 17 a/b/c). Cancelling
// ctx stops dispatching cells and returns ctx.Err().
func Figure17(ctx context.Context, kind TaskKind, maxTasks int, seed int64) ([]Figure17Row, error) {
	return figureTasks(ctx, kind, maxTasks, false, Figure17Architectures, seed)
}

// Figure18 sweeps one localized task plus 0..maxTasks-1 global
// cross-traffic tasks (Figure 18 a/b/c). Cancelling ctx stops
// dispatching cells and returns ctx.Err().
func Figure18(ctx context.Context, kind TaskKind, maxTasks int, seed int64) ([]Figure17Row, error) {
	return figureTasks(ctx, kind, maxTasks, true, Figure18Architectures, seed)
}

func figureTasks(ctx context.Context, kind TaskKind, maxTasks int, local bool, archs []string, seed int64) ([]Figure17Row, error) {
	params := defaultFig17Params(kind)
	rows := make([]Figure17Row, maxTasks)
	for n := 1; n <= maxTasks; n++ {
		rows[n-1] = Figure17Row{Tasks: n, Latency: map[string]float64{}, CI: map[string]float64{}}
	}
	// Every (architecture, task-count) cell is an independent
	// simulation; run them on all cores.
	type cell struct {
		n    int
		name string
	}
	var cells []cell
	for n := 1; n <= maxTasks; n++ {
		for _, name := range archs {
			cells = append(cells, cell{n: n, name: name})
		}
	}
	var mu sync.Mutex
	err := forEachCell(ctx, len(cells), nil, func(i int) error {
		c := cells[i]
		arch, err := buildArch(c.name, rand.New(rand.NewSource(seed)))
		if err != nil {
			return err
		}
		m, ci, err := runTasks(arch, kind, c.n, local, params, seed+int64(100*c.n))
		if err != nil {
			return fmt.Errorf("%s with %d tasks: %w", c.name, c.n, err)
		}
		mu.Lock()
		rows[c.n-1].Latency[c.name] = m
		rows[c.n-1].CI[c.name] = ci
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure17 renders a task sweep.
func RenderFigure17(title string, archs []string, rows []Figure17Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: mean latency per packet (us)\n", title)
	fmt.Fprintf(&b, "%6s", "tasks")
	for _, a := range archs {
		fmt.Fprintf(&b, "%26s", a)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d", r.Tasks)
		for _, a := range archs {
			fmt.Fprintf(&b, "%26s", fmt.Sprintf("%.2f ±%.2f", r.Latency[a], r.CI[a]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
