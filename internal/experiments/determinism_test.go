package experiments

import (
	"context"
	"testing"
)

// TestShardedExperimentsDeterministic locks in the sharding contract:
// cells run on a GOMAXPROCS worker pool, but because every cell owns
// its engine and seed and results merge by index, two same-seed runs
// render byte-identical reports. This must hold on any core count.
func TestShardedExperimentsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func() (string, error)
	}{
		{"validate", func() (string, error) {
			rows, err := SimulatorValidation(context.Background(), 2014, 5_000, nil)
			if err != nil {
				return "", err
			}
			return RenderValidation(rows), nil
		}},
		{"table8", func() (string, error) {
			rows, err := Table8(context.Background(), 2014, nil)
			if err != nil {
				return "", err
			}
			return RenderTable8(rows), nil
		}},
		{"ablation-switch-model", func() (string, error) {
			rows, err := AblationSwitchModel(context.Background(), 2014, nil)
			if err != nil {
				return "", err
			}
			return RenderAblation("switch model", rows), nil
		}},
		{"ablation-ring-size", func() (string, error) {
			rows, err := AblationRingSize(context.Background(), 2014, nil)
			if err != nil {
				return "", err
			}
			return RenderAblation("ring size", rows), nil
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			second, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if first != second {
				t.Errorf("same-seed runs differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
			}
			if first == "" {
				t.Error("empty report")
			}
		})
	}
}
