package experiments

import (
	"strings"
	"testing"
)

func TestPriorityComparison(t *testing.T) {
	rows, err := PriorityComparison(7, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	t.Log("\n" + RenderPriority(rows))
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Topology+"/"+r.Discipline] = r.RTTUs
	}
	// DeTail's lever: priorities rescue the tree's RPC from queueing.
	if byKey["two-tier tree/priority"] >= byKey["two-tier tree/fifo"] {
		t.Errorf("priority queueing did not help the tree: %.1f vs %.1f",
			byKey["two-tier tree/priority"], byKey["two-tier tree/fifo"])
	}
	// The mesh needs no classification: FIFO is already near its
	// priority result (within 10%).
	if q, qp := byKey["quartz mesh/fifo"], byKey["quartz mesh/priority"]; q > qp*1.10 {
		t.Errorf("quartz fifo %.1f not close to quartz priority %.1f", q, qp)
	}
	// And even with priorities, the tree cannot beat the mesh (extra
	// hop + store-and-forward on the path).
	if byKey["two-tier tree/priority"] < byKey["quartz mesh/fifo"] {
		t.Errorf("prioritized tree %.1f beat FIFO mesh %.1f",
			byKey["two-tier tree/priority"], byKey["quartz mesh/fifo"])
	}
	if out := RenderPriority(rows); !strings.Contains(out, "discipline") {
		t.Error("render missing header")
	}
}
