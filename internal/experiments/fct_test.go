package experiments

import (
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/tcp"
)

func TestFlowCompletionComparison(t *testing.T) {
	rows, err := FlowCompletion(17, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	t.Log("\n" + RenderFCT(rows))
	byKey := map[string]FCTRow{}
	for _, r := range rows {
		byKey[r.Topology+"/"+r.Mode.String()] = r
		if r.Flows < 140 {
			t.Errorf("%s/%v completed only %d flows", r.Topology, r.Mode, r.Flows)
		}
		if r.P99Us < r.MeanUs*0.999 {
			t.Errorf("%s/%v p99 %.1f below mean %.1f", r.Topology, r.Mode, r.P99Us, r.MeanUs)
		}
	}
	// Topology lever: the mesh beats the tree under the same protocol.
	if q, tr := byKey["quartz mesh/reno"], byKey["two-tier tree/reno"]; q.MeanUs >= tr.MeanUs {
		t.Errorf("mesh reno %.1fus not below tree reno %.1fus", q.MeanUs, tr.MeanUs)
	}
	// Protocol lever: DCTCP tames the tree's *tail* (the DCTCP paper's
	// headline metric) — short flows stop hiding behind a full buffer.
	if d, r := byKey["two-tier tree/dctcp"], byKey["two-tier tree/reno"]; d.P99Us >= r.P99Us {
		t.Errorf("tree dctcp p99 %.1fus not below tree reno p99 %.1fus", d.P99Us, r.P99Us)
	}
	// Topology beats protocol: the mesh under either protocol is far
	// below the tree under either — §2.1.4's point that protocol fixes
	// are "limited by the amount of path diversity in the underlying
	// network topology".
	for _, mode := range []string{"reno", "dctcp"} {
		q := byKey["quartz mesh/"+mode]
		for _, tmode := range []string{"reno", "dctcp"} {
			tr := byKey["two-tier tree/"+tmode]
			if q.P99Us*2 > tr.P99Us {
				t.Errorf("mesh/%s p99 %.1f not well below tree/%s p99 %.1f", mode, q.P99Us, tmode, tr.P99Us)
			}
		}
	}
	if out := RenderFCT(rows); !strings.Contains(out, "p99") {
		t.Error("render missing p99")
	}
}

var _ = tcp.Reno
