package experiments

import (
	"strings"
	"testing"
)

func TestSchedulerComparisonDiversityClaim(t *testing.T) {
	rows, err := SchedulerComparison(21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	t.Log("\n" + RenderScheduler(rows))
	tree, mesh := rows[0], rows[1]
	if tree.Alternatives != 1 {
		t.Errorf("tree diversity = %d, want 1", tree.Alternatives)
	}
	if mesh.Alternatives != 3 {
		t.Errorf("mesh diversity = %d, want 3", mesh.Alternatives)
	}
	// On the tree there is nowhere to move flows: scheduling changes
	// nothing (within 15%).
	treeGain := tree.Unscheduled / tree.Scheduled
	if treeGain > 1.15 || treeGain < 0.85 {
		t.Errorf("tree scheduling changed latency %.1f -> %.1f; no alternatives exist",
			tree.Unscheduled, tree.Scheduled)
	}
	// On the mesh the scheduler finds two-hop detours and cuts the
	// overload latency dramatically.
	if mesh.Moves == 0 {
		t.Error("scheduler never moved a flow on the mesh")
	}
	if mesh.Scheduled*2 > mesh.Unscheduled {
		t.Errorf("mesh scheduling gain too small: %.1f -> %.1f us",
			mesh.Unscheduled, mesh.Scheduled)
	}
	if out := RenderScheduler(rows); !strings.Contains(out, "alternatives") {
		t.Error("render missing columns")
	}
}
