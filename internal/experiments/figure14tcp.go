package experiments

import (
	"fmt"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/tcp"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// Figure14TCP is an extension of the §6.1 prototype experiment: the
// cross-traffic is carried by unthrottled bulk TCP connections instead
// of the paper's paced 20-packet bursts. TCP's self-clocking parks a
// standing queue at whatever link saturates first, so the contrast is
// starker than Figure 14's: the tree's RPC shares its aggregation
// trunk with every bulk flow and slows down dramatically, while the
// Quartz mesh isolates the RPC completely — even the bulk flow that
// shares the RPC's own S2-S3 channel cannot congest it, because a
// single 1 Gb/s source cannot oversubscribe a dedicated 1 Gb/s channel
// (its standing queue forms at its own access link instead). The
// full mesh turns cross-traffic interference into a same-rack-only
// phenomenon.
//
// The x-axis is the number of active bulk sources (0..3): first the
// two servers on S4, then the second server on S2 (co-channel with the
// RPC in the mesh).
func Figure14TCP(seed int64, rpcs int) ([]Figure14TCPRow, error) {
	var rows []Figure14TCPRow
	treeBase, err := runFigure14TCP(false, 0, rpcs, seed)
	if err != nil {
		return nil, err
	}
	quartzBase, err := runFigure14TCP(true, 0, rpcs, seed)
	if err != nil {
		return nil, err
	}
	for sources := 0; sources <= 3; sources++ {
		tm, err := runFigure14TCP(false, sources, rpcs, seed+int64(sources))
		if err != nil {
			return nil, err
		}
		qm, err := runFigure14TCP(true, sources, rpcs, seed+int64(sources))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure14TCPRow{
			Sources:     sources,
			TwoTierTree: tm / treeBase,
			Quartz:      qm / quartzBase,
		})
	}
	return rows, nil
}

// Figure14TCPRow is one point of the TCP variant: normalized RPC
// latency with the given number of bulk TCP cross-flows.
type Figure14TCPRow struct {
	Sources     int
	TwoTierTree float64
	Quartz      float64
}

// runFigure14TCP measures mean RPC latency with n bulk TCP cross-flows.
func runFigure14TCP(quartz bool, sources, rpcs int, seed int64) (float64, error) {
	g, hosts, _, err := prototype(quartz)
	if err != nil {
		return 0, err
	}
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: prototypeSwitch,
		Host:        netsim.HostModel{NICLatency: 10 * sim.Microsecond, ForwardLatency: 15 * sim.Microsecond, BufferBytes: 1 << 20},
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		return 0, err
	}
	rsrc, rdst := hosts[0], hosts[2]
	rpc := &traffic.RPC{
		Net: net, Harness: h,
		Client: rsrc, Server: rdst,
		Count: rpcs, ReqTag: 1, ReplyTag: 2,
	}
	crossTarget := hosts[3]
	// S4's servers first (disjoint from the RPC in the mesh), then the
	// S2 server that shares the RPC's direct channel.
	crossSrcs := []topology.NodeID{hosts[4], hosts[5], hosts[1]}
	for i := 0; i < sources && i < len(crossSrcs); i++ {
		conn, err := tcp.New(tcp.Config{
			Net: net, Harness: h,
			Src: crossSrcs[i], Dst: crossTarget,
			Flow:    routing.FlowID(2000 + 10*i),
			DataTag: 100 + 2*i, AckTag: 101 + 2*i,
		})
		if err != nil {
			return 0, err
		}
		conn.Start()
	}
	if err := rpc.Start(); err != nil {
		return 0, err
	}
	eng := net.Engine()
	for rpc.RTT.N() < int64(rpcs) && eng.Pending() > 0 {
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		if eng.Now() > 120*sim.Second {
			return 0, fmt.Errorf("figure14tcp: RPCs starved (completed %d/%d)", rpc.RTT.N(), rpcs)
		}
	}
	return rpc.RTT.Mean(), nil
}

// RenderFigure14TCP renders the TCP-cross-traffic variant.
func RenderFigure14TCP(rows []Figure14TCPRow) string {
	s := "Figure 14 (TCP variant): normalized RPC latency vs bulk TCP cross-flows\n"
	s += fmt.Sprintf("%14s %16s %12s\n", "TCP sources", "two-tier tree", "quartz")
	for _, r := range rows {
		s += fmt.Sprintf("%14d %16.2f %12.2f\n", r.Sources, r.TwoTierTree, r.Quartz)
	}
	return s
}
