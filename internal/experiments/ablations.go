package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// The ablations isolate the design choices behind Quartz's results:
// ring size (§7 claims it does not matter), cut-through switching,
// the VLB split, and per-packet load balancing.

// AblationRow is one configuration's measured mean latency.
type AblationRow struct {
	Config  string
	Latency float64 // µs
	CI      float64
	Drops   uint64
}

// RenderAblation renders a generic ablation table.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-34s %14s %10s\n", title, "configuration", "latency (us)", "drops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %8.2f ±%4.2f %10d\n", r.Config, r.Latency, r.CI, r.Drops)
	}
	return b.String()
}

// meshScatterLatency measures one scatter task's latency on a mesh of m
// switches with the given switch model and router.
func meshScatterLatency(m, hostsPer int, model netsim.SwitchModel, seed int64) (AblationRow, error) {
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: m, HostsPerSwitch: hostsPer})
	if err != nil {
		return AblationRow{}, err
	}
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      routing.NewECMPPerPacket(g),
		SwitchModel: func(topology.Node) netsim.SwitchModel { return model },
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		return AblationRow{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	hosts := g.Hosts()
	perm := rng.Perm(len(hosts))
	sender := hosts[perm[0]]
	var receivers []topology.NodeID
	for _, i := range perm[1:13] {
		receivers = append(receivers, hosts[i])
	}
	const end = 5 * sim.Millisecond
	t := traffic.Scatter(net, sender, receivers, 30e3, 1, nil, rng)
	if err := t.Start(end); err != nil {
		return AblationRow{}, err
	}
	net.Engine().RunUntil(end + sim.Millisecond)
	s := h.Latency(1)
	return AblationRow{Latency: s.Mean(), CI: s.CI95(), Drops: net.Dropped()}, nil
}

// ablationRingSizes is the ring-size ablation's sweep axis.
var ablationRingSizes = []int{4, 8, 16, 32}

// ablationRingCell runs one ring-size configuration.
func ablationRingCell(i int, seed int64) (AblationRow, error) {
	row, err := meshScatterLatency(ablationRingSizes[i], 4, netsim.Arista7150, seed)
	if err != nil {
		return AblationRow{}, err
	}
	row.Config = fmt.Sprintf("quartz ring, %d switches", ablationRingSizes[i])
	return row, nil
}

// AblationRingSize tests the §7 claim that "the size of the ring does
// not affect performance": a scatter task on meshes of 4..32 switches.
func AblationRingSize(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	return runAblationCells(ctx, len(ablationRingSizes), hooks, seed, ablationRingCell)
}

// runAblationCells shards one ablation axis over the worker pool,
// assembling rows from indexed slots.
func runAblationCells(ctx context.Context, n int, hooks *Hooks, seed int64, cell func(i int, seed int64) (AblationRow, error)) ([]AblationRow, error) {
	rows := make([]AblationRow, n)
	err := forEachCell(ctx, n, hooks, func(i int) error {
		var err error
		rows[i], err = cell(i, seed)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ablationSwitchModels is the switch-model ablation's sweep axis.
var ablationSwitchModels = []struct {
	name  string
	model netsim.SwitchModel
}{
	{"mesh of ULL (380ns cut-through)", netsim.Arista7150},
	{"mesh of CCS (6us store-and-forward)", netsim.CiscoNexus7000},
}

// ablationSwitchCell runs one switch-model configuration.
func ablationSwitchCell(i int, seed int64) (AblationRow, error) {
	row, err := meshScatterLatency(8, 4, ablationSwitchModels[i].model, seed)
	if err != nil {
		return AblationRow{}, err
	}
	row.Config = ablationSwitchModels[i].name
	return row, nil
}

// AblationSwitchModel isolates the cut-through contribution: the same
// mesh built from ULL cut-through switches versus CCS
// store-and-forward chassis.
func AblationSwitchModel(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	return runAblationCells(ctx, len(ablationSwitchModels), hooks, seed, ablationSwitchCell)
}

// AblationVLBFraction sweeps the VLB indirect fraction on the Figure 20
// pathological pattern at 45 Gb/s — just past the direct channel's
// capacity — showing the adaptive tradeoff of §3.4: too little
// spreading saturates the direct link, too much wastes capacity on
// two-hop detours.
func AblationVLBFraction(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	return runAblationCells(ctx, len(ablationVLBFracs), hooks, seed, ablationVLBCell)
}

// ablationVLBFracs is the VLB-fraction ablation's sweep axis.
var ablationVLBFracs = []float64{0, 0.125, 0.25, 0.5, 0.75, 1.0}

// ablationVLBCell runs one VLB indirect fraction. Each cell builds its
// own ring: routers keep per-graph state, so cells must not share a
// topology.
func ablationVLBCell(i int, seed int64) (AblationRow, error) {
	ull := func(topology.Node) netsim.SwitchModel { return netsim.Arista7150 }
	frac := ablationVLBFracs[i]
	ring, err := fig20Ring()
	if err != nil {
		return AblationRow{}, err
	}
	var router routing.Router
	var vlb *routing.VLB
	if frac == 0 {
		router = routing.NewECMPPerPacket(ring)
	} else {
		v, err := routing.NewVLB(ring, frac)
		if err != nil {
			return AblationRow{}, err
		}
		router, vlb = v, v
	}
	mean, saturated, err := runFig20(ring, router, ull, vlb, 45*sim.Gbps, seed)
	if err != nil {
		return AblationRow{}, err
	}
	row := AblationRow{
		Config:  fmt.Sprintf("VLB indirect fraction %.3f", frac),
		Latency: mean,
	}
	if saturated {
		row.Config += " (saturated)"
	}
	return row, nil
}

// AblationECMPMode compares per-flow ECMP pinning against per-packet
// spraying on the three-tier tree under the Figure 17 scatter load:
// pinned flows collide on the few core ports and inflate the tail.
func AblationECMPMode(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	return runAblationCells(ctx, len(ablationECMPModes), hooks, seed, ablationECMPCell)
}

// ablationECMPModes is the ECMP-mode ablation's sweep axis.
var ablationECMPModes = []struct {
	name      string
	perPacket bool
}{
	{"three-tier, per-flow ECMP", false},
	{"three-tier, per-packet spraying", true},
}

// ablationECMPCell runs one ECMP mode.
func ablationECMPCell(i int, seed int64) (AblationRow, error) {
	arch, err := core.ThreeTierTree(core.ArchParams{})
	if err != nil {
		return AblationRow{}, err
	}
	if ablationECMPModes[i].perPacket {
		arch.Router = routing.NewECMPPerPacket(arch.Graph)
	} else {
		arch.Router = routing.NewECMP(arch.Graph)
	}
	params := defaultFig17Params(ScatterKind)
	mean, ci, err := runTasks(arch, ScatterKind, 6, false, params, seed)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{Config: ablationECMPModes[i].name, Latency: mean, CI: ci}, nil
}

// ablationPart is one axis of the flattened ablation grid.
type ablationPart struct {
	label string
	n     int
	cell  func(i int, seed int64) (AblationRow, error)
}

// ablationParts lays the four ablation axes end to end into one global
// cell grid — the unit the cluster coordinator shards. Order matches
// the historical registry rendering.
func ablationParts() []ablationPart {
	return []ablationPart{
		{"ring size", len(ablationRingSizes), ablationRingCell},
		{"switch model", len(ablationSwitchModels), ablationSwitchCell},
		{"VLB fraction at 45 Gb/s", len(ablationVLBFracs), ablationVLBCell},
		{"ECMP mode", len(ablationECMPModes), ablationECMPCell},
	}
}

// AblationCells returns the flattened grid size across all four axes.
func AblationCells() int {
	n := 0
	for _, p := range ablationParts() {
		n += p.n
	}
	return n
}

// AblationRange executes global grid cells [lo, hi): each global index
// maps to (axis, local index) by walking the parts in order. Results
// are indexed from the range start.
func AblationRange(ctx context.Context, seed int64, lo, hi int, hooks *Hooks) ([]AblationRow, error) {
	parts := ablationParts()
	n := AblationCells()
	if err := checkRange(n, lo, hi); err != nil {
		return nil, fmt.Errorf("ablations: %w", err)
	}
	locate := func(g int) (ablationPart, int) {
		for _, p := range parts {
			if g < p.n {
				return p, g
			}
			g -= p.n
		}
		panic("unreachable: index validated above")
	}
	rows := make([]AblationRow, hi-lo)
	err := forEachCell(ctx, hi-lo, hooks, func(k int) error {
		part, i := locate(lo + k)
		row, err := part.cell(i, seed)
		if err != nil {
			return fmt.Errorf("ablation %s[%d]: %w", part.label, i, err)
		}
		rows[k] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationMerge renders the full grid's rows as the four ablation
// tables in axis order.
func AblationMerge(rows []AblationRow) (string, error) {
	if len(rows) != AblationCells() {
		return "", fmt.Errorf("ablation merge: %d rows for a %d-cell grid", len(rows), AblationCells())
	}
	var b strings.Builder
	at := 0
	for _, p := range ablationParts() {
		b.WriteString(RenderAblation(p.label, rows[at:at+p.n]))
		at += p.n
	}
	return b.String(), nil
}

// AblationSweep publishes the flattened ablation grid for distributed
// execution.
func AblationSweep() *Sweep {
	return &Sweep{
		Cells: func(Params) int { return AblationCells() },
		RunCells: func(ctx context.Context, p Params, lo, hi int) (CellBlock, error) {
			rows, err := AblationRange(ctx, p.Seed, lo, hi, p.hooks())
			if err != nil {
				return CellBlock{}, err
			}
			return encodeBlock(lo, hi, rows)
		},
		Merge: func(p Params, blocks []CellBlock) (Output, error) {
			rows, err := mergeBlocks[AblationRow](AblationCells(), blocks)
			if err != nil {
				return Output{}, fmt.Errorf("ablations: %w", err)
			}
			text, err := AblationMerge(rows)
			if err != nil {
				return Output{}, err
			}
			return Output{Text: text}, nil
		},
	}
}
