package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// The ablations isolate the design choices behind Quartz's results:
// ring size (§7 claims it does not matter), cut-through switching,
// the VLB split, and per-packet load balancing.

// AblationRow is one configuration's measured mean latency.
type AblationRow struct {
	Config  string
	Latency float64 // µs
	CI      float64
	Drops   uint64
}

// RenderAblation renders a generic ablation table.
func RenderAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-34s %14s %10s\n", title, "configuration", "latency (us)", "drops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %8.2f ±%4.2f %10d\n", r.Config, r.Latency, r.CI, r.Drops)
	}
	return b.String()
}

// meshScatterLatency measures one scatter task's latency on a mesh of m
// switches with the given switch model and router.
func meshScatterLatency(m, hostsPer int, model netsim.SwitchModel, seed int64) (AblationRow, error) {
	g, err := topology.NewFullMesh(topology.MeshConfig{Switches: m, HostsPerSwitch: hostsPer})
	if err != nil {
		return AblationRow{}, err
	}
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      routing.NewECMPPerPacket(g),
		SwitchModel: func(topology.Node) netsim.SwitchModel { return model },
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		return AblationRow{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	hosts := g.Hosts()
	perm := rng.Perm(len(hosts))
	sender := hosts[perm[0]]
	var receivers []topology.NodeID
	for _, i := range perm[1:13] {
		receivers = append(receivers, hosts[i])
	}
	const end = 5 * sim.Millisecond
	t := traffic.Scatter(net, sender, receivers, 30e3, 1, nil, rng)
	if err := t.Start(end); err != nil {
		return AblationRow{}, err
	}
	net.Engine().RunUntil(end + sim.Millisecond)
	s := h.Latency(1)
	return AblationRow{Latency: s.Mean(), CI: s.CI95(), Drops: net.Dropped()}, nil
}

// AblationRingSize tests the §7 claim that "the size of the ring does
// not affect performance": a scatter task on meshes of 4..32 switches.
func AblationRingSize(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	sizes := []int{4, 8, 16, 32}
	rows := make([]AblationRow, len(sizes))
	err := forEachCell(ctx, len(sizes), hooks, func(i int) error {
		row, err := meshScatterLatency(sizes[i], 4, netsim.Arista7150, seed)
		if err != nil {
			return err
		}
		row.Config = fmt.Sprintf("quartz ring, %d switches", sizes[i])
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationSwitchModel isolates the cut-through contribution: the same
// mesh built from ULL cut-through switches versus CCS
// store-and-forward chassis.
func AblationSwitchModel(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	cfgs := []struct {
		name  string
		model netsim.SwitchModel
	}{
		{"mesh of ULL (380ns cut-through)", netsim.Arista7150},
		{"mesh of CCS (6us store-and-forward)", netsim.CiscoNexus7000},
	}
	rows := make([]AblationRow, len(cfgs))
	err := forEachCell(ctx, len(cfgs), hooks, func(i int) error {
		row, err := meshScatterLatency(8, 4, cfgs[i].model, seed)
		if err != nil {
			return err
		}
		row.Config = cfgs[i].name
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationVLBFraction sweeps the VLB indirect fraction on the Figure 20
// pathological pattern at 45 Gb/s — just past the direct channel's
// capacity — showing the adaptive tradeoff of §3.4: too little
// spreading saturates the direct link, too much wastes capacity on
// two-hop detours.
func AblationVLBFraction(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	ull := func(topology.Node) netsim.SwitchModel { return netsim.Arista7150 }
	fracs := []float64{0, 0.125, 0.25, 0.5, 0.75, 1.0}
	rows := make([]AblationRow, len(fracs))
	// Each cell builds its own ring: routers keep per-graph state, so
	// shards must not share a topology.
	err := forEachCell(ctx, len(fracs), hooks, func(i int) error {
		frac := fracs[i]
		ring, err := fig20Ring()
		if err != nil {
			return err
		}
		var router routing.Router
		var vlb *routing.VLB
		if frac == 0 {
			router = routing.NewECMPPerPacket(ring)
		} else {
			v, err := routing.NewVLB(ring, frac)
			if err != nil {
				return err
			}
			router, vlb = v, v
		}
		mean, saturated, err := runFig20(ring, router, ull, vlb, 45*sim.Gbps, seed)
		if err != nil {
			return err
		}
		row := AblationRow{
			Config:  fmt.Sprintf("VLB indirect fraction %.3f", frac),
			Latency: mean,
		}
		if saturated {
			row.Config += " (saturated)"
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationECMPMode compares per-flow ECMP pinning against per-packet
// spraying on the three-tier tree under the Figure 17 scatter load:
// pinned flows collide on the few core ports and inflate the tail.
func AblationECMPMode(ctx context.Context, seed int64, hooks *Hooks) ([]AblationRow, error) {
	cfgs := []struct {
		name      string
		perPacket bool
	}{
		{"three-tier, per-flow ECMP", false},
		{"three-tier, per-packet spraying", true},
	}
	rows := make([]AblationRow, len(cfgs))
	err := forEachCell(ctx, len(cfgs), hooks, func(i int) error {
		arch, err := core.ThreeTierTree(core.ArchParams{})
		if err != nil {
			return err
		}
		if cfgs[i].perPacket {
			arch.Router = routing.NewECMPPerPacket(arch.Graph)
		} else {
			arch.Router = routing.NewECMP(arch.Graph)
		}
		params := defaultFig17Params(ScatterKind)
		mean, ci, err := runTasks(arch, ScatterKind, 6, false, params, seed)
		if err != nil {
			return err
		}
		rows[i] = AblationRow{Config: cfgs[i].name, Latency: mean, CI: ci}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
