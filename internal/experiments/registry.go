// Registry of every reproduced table and figure. cmd/quartzbench
// iterates All() instead of hand-maintaining a switch; tests walk it to
// check no exported Figure*/Table* entrypoint is left unregistered.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/quartz-dcn/quartz/internal/cost"
)

// Output is what one experiment produced: rendered text plus any
// CSV-exportable row sets, keyed by file stem (e.g. "figure5").
type Output struct {
	Text string
	CSV  map[string]interface{}
}

// Experiment is one registry entry.
type Experiment struct {
	// Name is the CLI selector (quartzbench -run <name>).
	Name string
	// Title is the heading printed above the output.
	Title string
	// Section is the paper section the experiment reproduces ("ext."
	// entries go beyond the paper).
	Section string
	// Covers lists the exported Figure*/Table* functions this entry
	// exercises; the registry completeness test checks their union.
	Covers []string
	// Run executes the experiment. Implementations honor ctx where the
	// underlying runner does.
	Run func(ctx context.Context, p Params) (Output, error)
	// Sweep, when non-nil, publishes the experiment's cell grid for
	// distributed execution: internal/service accepts cell-range
	// sub-jobs for it and internal/cluster shards it across workers.
	// Entries with a Sweep use Sweep.Run as their Run, so local and
	// cluster-merged output are byte-identical by construction.
	Sweep *Sweep
}

// The registry's shared sweep definitions (one instance each, so every
// All() call hands out the same grid).
var (
	table8Sweep   = Table8Sweep()
	ablationSweep = AblationSweep()
)

// Find returns the experiment registered under name (case-insensitive).
func Find(name string) (Experiment, bool) {
	name = strings.ToLower(name)
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// All returns the registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{
			Name: "table2", Title: "Table 2: network latency components", Section: "§2.1",
			Run: func(context.Context, Params) (Output, error) {
				return Output{Text: table2Text}, nil
			},
		},
		{
			Name: "fig5", Title: "Figure 5: optimal wavelength assignment", Section: "§3.3",
			Covers: []string{"Figure5"},
			Run: func(_ context.Context, p Params) (Output, error) {
				rows := Figure5(41, p.Seed)
				return Output{Text: RenderFigure5(rows), CSV: map[string]interface{}{"figure5": rows}}, nil
			},
		},
		{
			Name: "fig6", Title: "Figure 6: fault tolerance under fiber cuts", Section: "§3.5",
			Covers: []string{"Figure6"},
			Run: func(ctx context.Context, p Params) (Output, error) {
				grid, err := Figure6(ctx, p.Trials, p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderFigure6(grid)}, nil
			},
		},
		{
			Name: "f6dynamic", Title: "Figure 6 (dynamic): mid-run fiber cut and reconvergence", Section: "§3.5",
			Covers: []string{"FigureF6Dynamic"},
			Run: func(ctx context.Context, p Params) (Output, error) {
				res, err := FigureF6Dynamic(ctx, p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderFigureF6(res), CSV: map[string]interface{}{"figuref6": res.Windows}}, nil
			},
		},
		{
			Name: "table8", Title: "Table 8: cost and latency configurator", Section: "§4.2",
			Covers: []string{"Table8", "Table8Range", "Table8Merge", "Table8Sweep"},
			// Run via the sweep: RunCells(0, 12) + Merge, the same pair a
			// cluster run composes, so the table is byte-identical for
			// every worker count.
			Run:   table8Sweep.Run,
			Sweep: table8Sweep,
		},
		{
			Name: "table9", Title: "Table 9: topology comparison at ~1k ports", Section: "§5",
			Covers: []string{"Table9"},
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := Table9(p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderTable9(rows), CSV: map[string]interface{}{"table9": rows}}, nil
			},
		},
		{
			Name: "fig10", Title: "Figure 10: normalized throughput", Section: "§5.1",
			Covers: []string{"Figure10"},
			Run: func(ctx context.Context, p Params) (Output, error) {
				rows, err := Figure10(ctx, p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderFigure10(rows)}, nil
			},
		},
		{
			Name: "fig14", Title: "Figure 14: prototype cross-traffic experiment", Section: "§6.1",
			Covers: []string{"Figure14", "Figure14Sweep"},
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := Figure14Sweep(p.Seed, p.RPCs)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderFigure14(rows), CSV: map[string]interface{}{"figure14": rows}}, nil
			},
		},
		{
			Name: "fig17", Title: "Figure 17: global task latency", Section: "§7.1",
			Covers: []string{"Figure17"},
			Run: func(ctx context.Context, p Params) (Output, error) {
				out := Output{CSV: map[string]interface{}{}}
				done := 0
				var b strings.Builder
				for _, kc := range []struct {
					kind  TaskKind
					n     int
					label string
				}{
					{ScatterKind, p.Tasks, "Figure 17(a): scatter"},
					{GatherKind, p.Tasks, "Figure 17(b): gather"},
					{ScatterGatherKind, min(p.Tasks, 4), "Figure 17(c): scatter/gather"},
				} {
					start := time.Now()
					rows, err := Figure17(ctx, kc.kind, kc.n, p.Seed)
					if err != nil {
						return Output{}, err
					}
					b.WriteString(RenderFigure17(kc.label, Figure17Architectures, rows))
					out.CSV["figure17-"+strings.ReplaceAll(kc.kind.String(), "/", "-")] = rows
					p.span("panel", done, start)
					done++
					p.tick(done, 3)
				}
				out.Text = b.String()
				return out, nil
			},
		},
		{
			Name: "fig18", Title: "Figure 18: localized task latency", Section: "§7.1",
			Covers: []string{"Figure18"},
			Run: func(ctx context.Context, p Params) (Output, error) {
				var b strings.Builder
				done := 0
				for _, kc := range []struct {
					kind  TaskKind
					n     int
					label string
				}{
					{ScatterKind, min(p.Tasks, 6), "Figure 18(a): localized scatter"},
					{GatherKind, min(p.Tasks, 6), "Figure 18(b): localized gather"},
					{ScatterGatherKind, min(p.Tasks, 5), "Figure 18(c): localized scatter/gather"},
				} {
					start := time.Now()
					rows, err := Figure18(ctx, kc.kind, kc.n, p.Seed)
					if err != nil {
						return Output{}, err
					}
					b.WriteString(RenderFigure17(kc.label, Figure18Architectures, rows))
					p.span("panel", done, start)
					done++
					p.tick(done, 3)
				}
				return Output{Text: b.String()}, nil
			},
		},
		{
			Name: "fig20", Title: "Figure 20: pathological traffic pattern", Section: "§7.2",
			Covers: []string{"Figure20"},
			Run: func(ctx context.Context, p Params) (Output, error) {
				rows, err := Figure20(ctx, p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderFigure20(rows), CSV: map[string]interface{}{"figure20": rows}}, nil
			},
		},
		{
			Name: "table16", Title: "Table 16: simulated switch models", Section: "§7",
			Run: func(context.Context, Params) (Output, error) {
				return Output{Text: table16Text}, nil
			},
		},
		{
			Name: "fig14tcp", Title: "Figure 14 (extension): bulk TCP cross-traffic", Section: "§6 ext.",
			Covers: []string{"Figure14TCP"},
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := Figure14TCP(p.Seed, p.RPCs)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderFigure14TCP(rows)}, nil
			},
		},
		{
			Name: "oversub", Title: "Oversubscription tradeoff (§3): n:k port split", Section: "§3.2",
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := OversubscriptionSweep(p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderOversub(rows)}, nil
			},
		},
		{
			Name: "stack", Title: "Table 2 composition: order-of-magnitude stack walk", Section: "§2.1",
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := StackComparison(p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderStack(rows)}, nil
			},
		},
		{
			Name: "fig1", Title: "Figure 1 extrapolation: Quartz premium vs WDM price decline", Section: "§1",
			Run: func(context.Context, Params) (Output, error) {
				rows, err := cost.WDMCostTrend(12, 4)
				if err != nil {
					return Output{}, err
				}
				var b strings.Builder
				fmt.Fprintf(&b, "%6s %12s %14s %14s\n", "year", "WDM price", "ring premium", "edge premium")
				for _, r := range rows {
					fmt.Fprintf(&b, "%6d %11.0f%% %13.1f%% %13.1f%%\n",
						2014+r.Year, 100*r.WDMPriceFactor, 100*r.RingPremium, 100*r.EdgePremium)
				}
				return Output{Text: b.String()}, nil
			},
		},
		{
			Name: "fct", Title: "Extension: short-flow completion times (topology x protocol)", Section: "ext.",
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := FlowCompletion(p.Seed, 150)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderFCT(rows)}, nil
			},
		},
		{
			Name: "sched", Title: "Extension: flow scheduling vs path diversity (§2.1.4)", Section: "§2.1.4",
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := SchedulerComparison(p.Seed)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderScheduler(rows)}, nil
			},
		},
		{
			Name: "validate", Title: "Simulator validation against queueing theory (§7)", Section: "§7",
			Run: func(ctx context.Context, p Params) (Output, error) {
				// 30 packets per trial: the default 5000 trials keeps the
				// historical 150k-packet run, and reduced-trial submissions
				// (the service smoke test, quartzd clients) scale down.
				rows, err := SimulatorValidation(ctx, p.Seed, 30*p.WithDefaults().Trials, p.hooks())
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderValidation(rows)}, nil
			},
		},
		{
			Name: "prio", Title: "Extension: priority queueing vs topology (DeTail, §2.1.4)", Section: "§2.1.4",
			Run: func(_ context.Context, p Params) (Output, error) {
				rows, err := PriorityComparison(p.Seed, p.RPCs)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderPriority(rows)}, nil
			},
		},
		{
			Name: "sharded", Title: "Sharded execution: event throughput vs shard count", Section: "ext.",
			Covers: []string{"ShardedThroughput"},
			Run: func(ctx context.Context, p Params) (Output, error) {
				var counts []int
				if p.Shards > 0 {
					counts = []int{1, p.Shards}
				}
				rows, err := ShardedThroughput(ctx, counts, p)
				if err != nil {
					return Output{}, err
				}
				return Output{Text: RenderSharded(rows), CSV: map[string]interface{}{"sharded": rows}}, nil
			},
		},
		{
			Name: "ablations", Title: "Ablations: ring size, switch model, VLB fraction, ECMP mode", Section: "ext.",
			// The four axes flatten into one 14-cell grid (AblationRange)
			// so progress ticks per cell and cluster runs shard freely;
			// the merge renders the same four tables in the same order.
			Run:   ablationSweep.Run,
			Sweep: ablationSweep,
		},
	}
}

const table2Text = `Table 2: network latencies of different components
component          standard        state of the art
OS network stack   15 us           1 - 4 us
NIC                2.5 - 32 us     0.5 us
Switch             6 us            0.5 us (380 ns modelled)
Congestion         50 us           (workload dependent)
`

const table16Text = `Table 16: switches used in the simulations
switch                    latency     ports
Cisco Nexus 7000 (CCS)    6 us        768 x 10G or 192 x 40G
Arista 7150S-64 (ULL)     380 ns      64 x 10G or 16 x 40G
`
