package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// Figure14Row is one x-position of Figure 14: RPC latency under
// cross-traffic, normalized to the zero-cross-traffic baseline of each
// topology.
type Figure14Row struct {
	// CrossTraffic is the per-source cross-traffic bandwidth (the
	// x-axis, 0..200 Mb/s).
	CrossTraffic sim.Rate
	// TwoTierTree and Quartz are normalized mean RPC latencies.
	TwoTierTree float64
	Quartz      float64
	// TreeCI and QuartzCI are 95% confidence half-widths (normalized).
	TreeCI   float64
	QuartzCI float64
}

// prototype recreates the §6 testbed: four 48-port 1 Gb/s managed
// switches and six servers (two per edge switch). quartz selects the
// full-mesh wiring of Figure 12; otherwise the 2-tier tree rewiring of
// §6.1 (S1 as the aggregation switch).
func prototype(quartz bool) (*topology.Graph, []topology.NodeID, topology.NodeID, error) {
	g := topology.New("prototype")
	rate := 1 * sim.Gbps
	s := make([]topology.NodeID, 4)
	for i := range s {
		tier := topology.TierToR
		rack := i
		if !quartz && i == 0 {
			tier = topology.TierAgg
			rack = -1
		}
		s[i] = g.AddSwitch(fmt.Sprintf("S%d", i+1), tier, rack)
	}
	if quartz {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.Connect(s[i], s[j], rate, topology.DefaultProp)
			}
		}
	} else {
		for i := 1; i < 4; i++ {
			g.Connect(s[i], s[0], rate, topology.DefaultProp)
		}
	}
	// Six servers: two on each of S2, S3, S4 (S1 is the aggregation
	// switch in the tree rewiring; in the mesh it carries cross-traffic
	// sources only, as in Figure 13).
	var hosts []topology.NodeID
	for i := 1; i < 4; i++ {
		for k := 0; k < 2; k++ {
			h := g.AddHost(fmt.Sprintf("h%d-%d", i, k), i)
			g.Connect(h, s[i], rate, topology.DefaultProp)
			hosts = append(hosts, h)
		}
	}
	return g, hosts, s[0], nil
}

// prototypeSwitches models the testbed's 1 Gb/s store-and-forward
// managed switches (Nortel 5510 / Catalyst 4948 class).
func prototypeSwitch(topology.Node) netsim.SwitchModel {
	return netsim.SwitchModel{
		Name:        "1G-SF",
		Latency:     10 * sim.Microsecond,
		CutThrough:  false,
		BufferBytes: 256 << 10,
	}
}

// figure14RPCs is the RPC count per run (the paper runs 10,000; 2,000
// keeps the default sweep fast while the CI stays tight).
const figure14RPCs = 2000

// runFigure14 measures the mean RPC latency on one topology at one
// cross-traffic level.
func runFigure14(quartz bool, cross sim.Rate, rpcs int, seed int64) (mean, ci float64, err error) {
	g, hosts, _, err := prototype(quartz)
	if err != nil {
		return 0, 0, err
	}
	var router routing.Router = routing.NewECMP(g)
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      router,
		SwitchModel: prototypeSwitch,
		// The testbed servers run stock Ubuntu: standard NIC latency.
		Host:      netsim.HostModel{NICLatency: 10 * sim.Microsecond, ForwardLatency: 15 * sim.Microsecond, BufferBytes: 1 << 20},
		OnDeliver: h.Deliver,
	})
	if err != nil {
		return 0, 0, err
	}
	// hosts: h2a h2b (S2), h3a h3b (S3), h4a h4b (S4).
	rsrc, rdst := hosts[0], hosts[2] // S2 -> S3, as in Figure 13
	rpc := &traffic.RPC{
		Net: net, Harness: h,
		Client: rsrc, Server: rdst,
		Count: rpcs, ReqTag: 1, ReplyTag: 2,
	}
	rng := rand.New(rand.NewSource(seed))
	if cross > 0 {
		// Three bursty sources aimed at the second server on S3
		// (Figure 13): the second servers of S2 and S4, and the first
		// of S4. In the tree all three share the aggregation uplink to
		// S3 with the RPC; in the mesh only the S2 source shares the
		// direct S2-S3 channel.
		crossTarget := hosts[3] // h3b
		for i, src := range []topology.NodeID{hosts[1], hosts[4], hosts[5]} {
			b := &traffic.Bursty{
				Net: net, Src: src, Dst: crossTarget,
				Flow: routing.FlowID(1000 + i), Bandwidth: cross,
				Tag:  100 + i,
				Rand: rand.New(rand.NewSource(rng.Int63())),
			}
			if err := b.Start(sim.Time(1) << 62); err != nil {
				return 0, 0, err
			}
		}
	}
	if err := rpc.Start(); err != nil {
		return 0, 0, err
	}
	// Run until the RPCs complete; cross-traffic generators re-arm
	// forever, so bound the run generously and stop when done.
	eng := net.Engine()
	for rpc.RTT.N() < int64(rpcs) && eng.Pending() > 0 {
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		if eng.Now() > 120*sim.Second {
			return 0, 0, fmt.Errorf("figure14: RPCs starved (completed %d/%d)", rpc.RTT.N(), rpcs)
		}
	}
	return rpc.RTT.Mean(), rpc.RTT.CI95(), nil
}

// Figure14 sweeps cross-traffic 0..200 Mb/s in 25 Mb/s steps on both
// prototype wirings and reports RPC latency normalized to each
// topology's zero-cross-traffic mean (§6.1).
func Figure14(seed int64) ([]Figure14Row, error) {
	return Figure14Sweep(seed, figure14RPCs)
}

// Figure14Sweep is Figure14 with a configurable RPC count per point.
func Figure14Sweep(seed int64, rpcs int) ([]Figure14Row, error) {
	treeBase, _, err := runFigure14(false, 0, rpcs, seed)
	if err != nil {
		return nil, err
	}
	quartzBase, _, err := runFigure14(true, 0, rpcs, seed)
	if err != nil {
		return nil, err
	}
	var points []int
	for mbps := 0; mbps <= 200; mbps += 25 {
		points = append(points, mbps)
	}
	rows := make([]Figure14Row, len(points))
	err = forEachCell(context.Background(), len(points), nil, func(i int) error {
		mbps := points[i]
		cross := sim.Rate(mbps) * sim.Mbps
		tm, tci, err := runFigure14(false, cross, rpcs, seed+int64(mbps))
		if err != nil {
			return err
		}
		qm, qci, err := runFigure14(true, cross, rpcs, seed+int64(mbps))
		if err != nil {
			return err
		}
		rows[i] = Figure14Row{
			CrossTraffic: cross,
			TwoTierTree:  tm / treeBase,
			Quartz:       qm / quartzBase,
			TreeCI:       tci / treeBase,
			QuartzCI:     qci / quartzBase,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure14 renders the sweep.
func RenderFigure14(rows []Figure14Row) string {
	var b strings.Builder
	b.WriteString("Figure 14: impact of cross-traffic on normalized RPC latency\n")
	fmt.Fprintf(&b, "%12s %18s %18s\n", "cross (Mb/s)", "two-tier tree", "quartz")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %12.2f ±%4.2f %12.2f ±%4.2f\n",
			int64(r.CrossTraffic/sim.Mbps), r.TwoTierTree, r.TreeCI, r.Quartz, r.QuartzCI)
	}
	return b.String()
}
