package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestReportWriteJSON(t *testing.T) {
	r := NewReport(Params{Seed: 7}, time.Date(2014, 8, 17, 12, 0, 0, 0, time.UTC))
	r.Add(ExperimentReport{Name: "fig17", Title: "Figure 17", Section: "7.1",
		WallSecs: 2.0, Events: 1_000_000, CSVRows: 1})
	r.Add(ExperimentReport{Name: "table8", Title: "Table 8", Section: "6.2"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if back.Schema != ReportSchema {
		t.Errorf("schema = %q", back.Schema)
	}
	if back.StartedAt != "2014-08-17T12:00:00Z" {
		t.Errorf("started_at = %q", back.StartedAt)
	}
	if back.Params.Seed != 7 || back.Params.Trials != DefaultParams().Trials {
		t.Errorf("params = %+v, want seed 7 with defaults filled in", back.Params)
	}
	if len(back.Experiments) != 2 {
		t.Fatalf("experiments = %d, want 2", len(back.Experiments))
	}
	if got := back.Experiments[0].EventsPerSec; got != 500_000 {
		t.Errorf("events_per_sec = %v, want 500000 (1M events / 2s)", got)
	}
	if back.WallSecs != 2.0 {
		t.Errorf("total wall = %v, want 2.0", back.WallSecs)
	}
	// An analytic experiment with no events must not report a rate.
	if back.Experiments[1].EventsPerSec != 0 {
		t.Errorf("analytic events_per_sec = %v, want 0", back.Experiments[1].EventsPerSec)
	}
}
