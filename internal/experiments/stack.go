package experiments

import (
	"fmt"
	"strings"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// StackRow is one end-to-end configuration of Table 2's component
// menu: a host stack, a NIC, a switch generation, and a topology.
type StackRow struct {
	Config string
	// RTTUs is the measured RPC round-trip time in microseconds.
	RTTUs float64
}

// Host models from Table 2.
var (
	// standardHost: 15 µs OS stack + 2.5 µs commodity NIC per side.
	standardHost = netsim.HostModel{
		NICLatency:     17_500 * sim.Nanosecond, // stack + NIC, paid per send/receive
		ForwardLatency: 15 * sim.Microsecond,
		BufferBytes:    1 << 20,
	}
	// tunedHost: Chronos-style kernel bypass (1 µs) + FPGA NIC (0.5 µs).
	tunedHost = netsim.HostModel{
		NICLatency:     1_500 * sim.Nanosecond,
		ForwardLatency: 15 * sim.Microsecond,
		BufferBytes:    1 << 20,
	}
)

// StackComparison reproduces §1/§2's claim that combining the
// state-of-the-art components "can, in theory, result in an order of
// magnitude reduction in end-to-end network latency" — and that the
// architectural lever (Quartz) composes with them. Four cumulative
// steps, measured as a cross-rack RPC round trip:
//
//  1. standard stack + standard NIC, store-and-forward switches, 3-tier
//  2. tuned stack + tuned NIC, same network
//  3. tuned hosts, cut-through switches, same topology
//  4. tuned hosts, cut-through switches, Quartz mesh (2 hops)
func StackComparison(seed int64) ([]StackRow, error) {
	type step struct {
		name   string
		host   netsim.HostModel
		arch   func() (*core.Architecture, error)
		models func(*core.Architecture)
	}
	sf := netsim.SwitchModel{Name: "SF", Latency: 6 * sim.Microsecond, CutThrough: false, BufferBytes: 1 << 20}
	steps := []step{
		{
			name: "standard stack+NIC, SF switches, 3-tier",
			host: standardHost,
			arch: func() (*core.Architecture, error) { return core.ThreeTierTree(core.ArchParams{}) },
			models: func(a *core.Architecture) {
				a.Model = func(topology.Node) netsim.SwitchModel { return sf }
			},
		},
		{
			name: "tuned stack+NIC, SF switches, 3-tier",
			host: tunedHost,
			arch: func() (*core.Architecture, error) { return core.ThreeTierTree(core.ArchParams{}) },
			models: func(a *core.Architecture) {
				a.Model = func(topology.Node) netsim.SwitchModel { return sf }
			},
		},
		{
			name: "tuned hosts, cut-through switches, 3-tier",
			host: tunedHost,
			arch: func() (*core.Architecture, error) { return core.ThreeTierTree(core.ArchParams{}) },
			models: func(a *core.Architecture) {
				a.Model = func(topology.Node) netsim.SwitchModel { return netsim.Arista7150 }
			},
		},
		{
			name: "tuned hosts, cut-through switches, quartz mesh",
			host: tunedHost,
			arch: func() (*core.Architecture, error) { return core.QuartzRingArch(core.ArchParams{}) },
		},
	}
	var rows []StackRow
	for _, st := range steps {
		arch, err := st.arch()
		if err != nil {
			return nil, err
		}
		if st.models != nil {
			st.models(arch)
		}
		h := traffic.NewHarness()
		net, err := netsim.New(netsim.Config{
			Graph:       arch.Graph,
			Router:      arch.Router,
			SwitchModel: arch.Model,
			Host:        st.host,
			OnDeliver:   h.Deliver,
		})
		if err != nil {
			return nil, err
		}
		hosts := arch.Graph.Hosts()
		rpc := &traffic.RPC{
			Net: net, Harness: h,
			Client: hosts[0], Server: hosts[len(hosts)-1],
			Count: 200, ReqTag: 1, ReplyTag: 2,
		}
		if err := rpc.Start(); err != nil {
			return nil, err
		}
		net.Engine().Run()
		rows = append(rows, StackRow{Config: st.name, RTTUs: rpc.RTT.Mean()})
	}
	return rows, nil
}

// RenderStack renders the cumulative comparison.
func RenderStack(rows []StackRow) string {
	var b strings.Builder
	b.WriteString("Table 2 composition: cross-rack RPC round trip by component generation\n")
	fmt.Fprintf(&b, "%-48s %12s %10s\n", "configuration", "RTT (us)", "speedup")
	base := rows[0].RTTUs
	for _, r := range rows {
		fmt.Fprintf(&b, "%-48s %12.2f %9.1fx\n", r.Config, r.RTTUs, base/r.RTTUs)
	}
	return b.String()
}
