package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
)

// ValidationRow compares the simulator against a queueing-theory
// prediction at one utilization level — the paper's own methodology:
// "We have performed extensive validation testing of our simulator to
// ensure that it produces correct results that match queuing theory"
// (§7).
type ValidationRow struct {
	// Model names the theoretical reference.
	Model string
	// Rho is the offered utilization.
	Rho float64
	// TheoryUs and MeasuredUs are the predicted and simulated mean
	// waiting times (queueing only, excluding service), in µs.
	TheoryUs, MeasuredUs float64
	// ErrorPct is the relative deviation.
	ErrorPct float64
}

// SimulatorValidation drives a single bottleneck queue with Poisson
// arrivals at a range of utilizations and compares the measured mean
// wait against the M/D/1 and M/M/1 formulas:
//
//	M/D/1: W = ρ·S / (2(1-ρ))           (fixed-size packets)
//	M/M/1: W = ρ·S̄ / (1-ρ)             (exponential packet sizes)
//
// The deterministic-service case uses fixed 400-byte packets; the
// exponential case draws packet sizes from a (discretized, truncated)
// exponential distribution.
//
// Cancelling ctx stops the sweep between cells; hooks (may be nil)
// carries the progress and trace hooks. Both may come from the service
// layer's job context.
func SimulatorValidation(ctx context.Context, seed int64, packets int, hooks *Hooks) ([]ValidationRow, error) {
	type cell struct {
		exponential bool
		rho         float64
		seed        int64
	}
	var cells []cell
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
		cells = append(cells, cell{false, rho, seed})
	}
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		cells = append(cells, cell{true, rho, seed + 1})
	}
	// Each cell is an independent simulation with a fixed seed; shard
	// them across the worker pool and merge by index, so the table is
	// byte-identical however many cores run it.
	rows := make([]ValidationRow, len(cells))
	err := forEachCell(ctx, len(cells), hooks, func(i int) error {
		var err error
		rows[i], err = runQueueValidation(cells[i].exponential, cells[i].rho, packets, cells[i].seed)
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// validationMeanSize is the mean packet size of the validation
// workloads, bytes.
const validationMeanSize = 400

// validationInjector drives the Poisson arrival process as a
// self-rescheduling typed event: each firing sends one packet and draws
// the next inter-arrival gap. The engine therefore holds one pending
// injection instead of a closure per packet — for a 150k-packet trial
// that removes 150k closure allocations and keeps the event queue a few
// entries deep. Draw order (gap, then size, per packet) matches the
// old pre-scheduling loop, so a seed maps to the same sample path.
type validationInjector struct {
	net         *netsim.Network
	eng         *sim.Engine
	rng         *rand.Rand
	src, dst    topology.NodeID
	exponential bool
	meanGapPs   float64
	remaining   int
	flow        int
	sentBytes   float64
}

func (in *validationInjector) Run(int64, int64) {
	size := validationMeanSize
	if in.exponential {
		// Discretized exponential, truncated to [64, 6000] to keep the
		// wire model sane; resample to preserve the mean.
		for {
			s := int(in.rng.ExpFloat64() * validationMeanSize)
			if s >= 64 && s <= 6000 {
				size = s
				break
			}
		}
	}
	in.sentBytes += float64(size)
	in.net.Send(netsim.Packet{
		Flow: routing.FlowID(in.flow), Src: in.src, Dst: in.dst,
		Size: size, Waypoint: netsim.NoWaypoint,
	})
	in.flow++
	in.remaining--
	if in.remaining > 0 {
		in.eng.AfterAction(sim.Time(in.rng.ExpFloat64()*in.meanGapPs), in, 0, 0)
	}
}

// runQueueValidation measures mean waiting time on an isolated
// bottleneck: fast ingress/egress, one 10 Gb/s service link, ideal
// (zero-latency, infinite-buffer) switches.
func runQueueValidation(exponential bool, rho float64, packets int, seed int64) (ValidationRow, error) {
	g := topology.New("queue")
	s0 := g.AddSwitch("s0", topology.TierToR, 0)
	s1 := g.AddSwitch("s1", topology.TierToR, 1)
	h0 := g.AddHost("h0", 0)
	h1 := g.AddHost("h1", 1)
	fast := 400 * sim.Gbps
	service := 10 * sim.Gbps
	g.Connect(h0, s0, fast, 0)
	g.Connect(s0, s1, service, 0)
	g.Connect(s1, h1, fast, 0)

	ideal := netsim.SwitchModel{Name: "ideal", BufferBytes: 1 << 30}
	delivered := 0
	sumLat := 0.0
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: func(topology.Node) netsim.SwitchModel { return ideal },
		Host:        netsim.HostModel{BufferBytes: 1 << 30},
		OnDeliver: func(d netsim.Delivery) {
			delivered++
			sumLat += d.Latency.Seconds()
		},
	})
	if err != nil {
		return ValidationRow{}, err
	}

	const meanSize = validationMeanSize
	meanService := service.Serialize(meanSize).Seconds()
	meanGapPs := float64(service.Serialize(meanSize)) / rho
	rng := rand.New(rand.NewSource(seed))
	eng := net.Engine()
	inj := &validationInjector{
		net: net, eng: eng, rng: rng, src: h0, dst: h1,
		exponential: exponential, meanGapPs: meanGapPs, remaining: packets,
	}
	eng.AfterAction(sim.Time(rng.ExpFloat64()*meanGapPs), inj, 0, 0)
	eng.Run()
	if delivered != packets {
		return ValidationRow{}, fmt.Errorf("validation: delivered %d/%d", delivered, packets)
	}
	// Measured wait = mean latency minus the fixed pipeline (ingress
	// ser + own service + egress ser).
	meanLat := sumLat / float64(delivered)
	avgSize := inj.sentBytes / float64(packets)
	fixed := fast.Serialize(int(avgSize)).Seconds()*2 + sim.Rate(service).Serialize(int(avgSize)).Seconds()
	measuredWait := meanLat - fixed

	// Actual offered load (truncation shifts the exponential's mean).
	actualRho := rho * avgSize / meanSize
	var theory float64
	model := "M/D/1"
	if exponential {
		model = "M/M/1 (truncated)"
		// With truncated-exponential service, use the M/G/1
		// Pollaczek-Khinchine formula with the empirical first two
		// moments of the size distribution folded into Cs^2 ~ 1 — the
		// truncation lowers variance slightly, so theory uses the
		// untruncated M/M/1 value as the reference the paper would
		// quote.
		sMean := meanService * avgSize / meanSize
		theory = actualRho * sMean / (1 - actualRho)
	} else {
		theory = actualRho * meanService / (2 * (1 - actualRho))
	}
	row := ValidationRow{
		Model:      model,
		Rho:        rho,
		TheoryUs:   theory * 1e6,
		MeasuredUs: measuredWait * 1e6,
	}
	if theory > 0 {
		row.ErrorPct = 100 * math.Abs(measuredWait-theory) / theory
	}
	return row, nil
}

// RenderValidation renders the validation table.
func RenderValidation(rows []ValidationRow) string {
	var b strings.Builder
	b.WriteString("Simulator validation against queueing theory (§7)\n")
	fmt.Fprintf(&b, "%-20s %6s %12s %12s %8s\n", "model", "rho", "theory (us)", "sim (us)", "error")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %6.2f %12.3f %12.3f %7.1f%%\n",
			r.Model, r.Rho, r.TheoryUs, r.MeasuredUs, r.ErrorPct)
	}
	return b.String()
}
