package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestCacheKeyCanonical(t *testing.T) {
	// Defaults applied: zero params and explicit defaults share a key.
	zero := CacheKey("validate", Params{})
	explicit := CacheKey("validate", DefaultParams())
	if zero != explicit {
		t.Errorf("zero params key %s != default params key %s", zero, explicit)
	}
	// Name is case/space-insensitive.
	if CacheKey(" Validate ", Params{}) != zero {
		t.Errorf("name canonicalization changed the key")
	}
	// Hooks are not identity.
	hooked := Params{Progress: func(int, int) {}}
	if CacheKey("validate", hooked) != zero {
		t.Errorf("Progress hook changed the key")
	}
	// Every result-affecting knob is identity.
	for name, p := range map[string]Params{
		"seed":   {Seed: 1},
		"trials": {Trials: 1},
		"tasks":  {Tasks: 1},
		"rpcs":   {RPCs: 1},
	} {
		if CacheKey("validate", p) == zero {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	// Experiment name is identity.
	if CacheKey("fig6", Params{}) == zero {
		t.Errorf("experiment name did not change the key")
	}
	if len(zero) != 32 || strings.ToLower(zero) != zero {
		t.Errorf("key %q is not a 32-char lowercase hex string", zero)
	}
}

func TestForEachCellProgress(t *testing.T) {
	const n = 37
	var dones []int
	var lastTotal int
	err := forEachCell(context.Background(), n, &Hooks{Progress: func(done, total int) {
		// Serialized by contract: no lock needed here.
		dones = append(dones, done)
		lastTotal = total
	}}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != n || lastTotal != n {
		t.Fatalf("got %d callbacks (last total %d), want %d", len(dones), lastTotal, n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("callback %d reported done=%d, want %d (monotonic)", i, d, i+1)
		}
	}
}

func TestRegistryProgressTicks(t *testing.T) {
	// The validate experiment reports per-cell progress through
	// Params.Progress, ending with done == total.
	e, ok := Find("validate")
	if !ok {
		t.Fatal("validate not registered")
	}
	var last, total int
	p := Params{Trials: 10, Progress: func(d, tot int) { last, total = d, tot }}
	if _, err := e.Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if total == 0 || last != total {
		t.Errorf("final progress %d/%d, want done == total > 0", last, total)
	}
}
