package experiments

// Params and its hooks: the knobs shared by every experiment runner,
// plus the service-layer concerns that ride along with them — a
// progress callback for long sweeps and a canonical hash that gives
// each (experiment, parameters) execution a stable identity for result
// caching.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"github.com/quartz-dcn/quartz/internal/trace"
)

// Progress is the experiment progress hook: done units of work are
// complete out of total. The unit is experiment-defined (cells of a
// sharded sweep, panels of a multi-part figure); total is constant for
// the lifetime of one run. Callbacks may arrive from the worker
// goroutines of a sharded sweep, but never concurrently — the
// dispatcher serializes them.
type Progress func(done, total int)

// Params carries the knobs shared by the experiment runners. Zero
// values are replaced by DefaultParams' fields.
type Params struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Trials is the Monte-Carlo trial count (Figure 6) and scales the
	// validation experiment's packet count.
	Trials int
	// Tasks caps concurrent tasks (Figures 17/18).
	Tasks int
	// RPCs is the RPC count per point (Figure 14 and extensions).
	RPCs int
	// Shards, when > 0, pins the shard count of sharded-execution
	// experiments: the "sharded" sweep compares {1, Shards} instead of
	// its default ladder. 0 keeps the experiment default.
	Shards int

	// Progress, when non-nil, receives coarse completion callbacks as
	// an experiment finishes internal units of work. It is a hook, not
	// a parameter: it does not affect results, is excluded from
	// CacheKey, and is omitted from JSON reports.
	Progress Progress `json:"-"`

	// Trace, when non-nil, records execution spans as the experiment
	// runs: per-cell wall spans under forEachCell, engine window spans
	// from sharded runs. Like Progress it is a hook — it never affects
	// results, is excluded from CacheKey, and is omitted from JSON.
	Trace *trace.Recorder `json:"-"`
}

// Hooks bundles the observer hooks a runner threads into its cells. A
// nil *Hooks is valid and means "no hooks" — existing callers that
// passed a nil Progress keep passing nil unchanged.
type Hooks struct {
	Progress Progress
	Trace    *trace.Recorder
}

// hooks projects the Params hook fields for threading into runners.
func (p Params) hooks() *Hooks {
	if p.Progress == nil && p.Trace == nil {
		return nil
	}
	return &Hooks{Progress: p.Progress, Trace: p.Trace}
}

// tick invokes the progress hook if one is attached.
func (h *Hooks) tick(done, total int) {
	if h != nil && h.Progress != nil {
		h.Progress(done, total)
	}
}

// trace returns the span recorder (nil-safe on a nil *Hooks; a nil
// *trace.Recorder is itself the disabled recorder).
func (h *Hooks) trace() *trace.Recorder {
	if h == nil {
		return nil
	}
	return h.Trace
}

// span records one wall-only experiment span started at start onto the
// Params trace hook — the panel/part-level instrument for runners that
// do their own phase bookkeeping (fig17 panels, ablation parts).
func (p Params) span(name string, track int, start time.Time) {
	if p.Trace == nil {
		return
	}
	p.Trace.Add(trace.Span{
		Name: name, Cat: "experiment", Track: track,
		Wall: p.Trace.Since(start), WallDur: time.Since(start).Nanoseconds(),
	})
}

// DefaultParams returns the values quartzbench uses by default.
func DefaultParams() Params {
	return Params{Seed: 2014, Trials: 5000, Tasks: 8, RPCs: 2000}
}

// WithDefaults returns p with zero-valued knobs replaced by
// DefaultParams' fields. Hooks pass through unchanged.
func (p Params) WithDefaults() Params {
	d := DefaultParams()
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	if p.Trials == 0 {
		p.Trials = d.Trials
	}
	if p.Tasks == 0 {
		p.Tasks = d.Tasks
	}
	if p.RPCs == 0 {
		p.RPCs = d.RPCs
	}
	return p
}

// tick invokes the progress hook if one is attached.
func (p Params) tick(done, total int) {
	if p.Progress != nil {
		p.Progress(done, total)
	}
}

// CacheKey returns the canonical identity of one experiment execution:
// a stable hash over the experiment name and every result-affecting
// parameter, with defaults applied first — so a zero-valued Params and
// an explicit DefaultParams() hash identically, and two submissions
// that would produce the same output share a key. Hook fields
// (Progress) are excluded. The result-cache of internal/service keys
// on this.
func CacheKey(name string, p Params) string {
	sum := sha256.Sum256(keyPreimage(name, p))
	return hex.EncodeToString(sum[:16])
}

// CacheKeyRange returns the sub-key identifying a partial execution —
// cells [lo, hi) of the experiment's sweep grid. The cluster tier keys
// cell-range sub-jobs on this, so a range a worker computed once (for
// any client, under any coordinator) serves every later request for
// the same cells. The degenerate whole-grid request (lo=0, hi=0) keys
// identically to CacheKey.
func CacheKeyRange(name string, p Params, lo, hi int) string {
	if lo == 0 && hi == 0 {
		return CacheKey(name, p)
	}
	key := fmt.Appendf(keyPreimage(name, p), "|cells=%d-%d", lo, hi)
	sum := sha256.Sum256(key)
	return hex.EncodeToString(sum[:16])
}

// keyPreimage builds the canonical hash input shared by CacheKey and
// CacheKeyRange.
func keyPreimage(name string, p Params) []byte {
	p = p.WithDefaults()
	key := fmt.Appendf(nil, "quartz-exp/v1|%s|seed=%d|trials=%d|tasks=%d|rpcs=%d",
		strings.ToLower(strings.TrimSpace(name)), p.Seed, p.Trials, p.Tasks, p.RPCs)
	if p.Shards > 0 {
		// Appended only when set, so every pre-sharding submission keeps
		// its historical cache key.
		key = fmt.Appendf(key, "|shards=%d", p.Shards)
	}
	return key
}
