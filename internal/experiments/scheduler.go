package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/schedule"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// SchedulerRow reports one topology's latency with and without a
// Hedera/DeTail-style congestion-aware flow scheduler.
type SchedulerRow struct {
	Topology string
	// Unscheduled and Scheduled are mean packet latencies in µs.
	Unscheduled, Scheduled float64
	// Moves is how many flow re-pins the scheduler performed.
	Moves int
	// Alternatives is the topology's path diversity between the hot
	// endpoints.
	Alternatives int
}

// SchedulerComparison makes §2.1.4's closing argument quantitative:
// congestion-aware flow scheduling is "limited by the amount of path
// diversity in the underlying network topology". The same overloaded
// rack-pair workload runs on a single-root 2-tier tree (diversity 1 —
// the scheduler has nowhere to move flows) and on a Quartz mesh
// (diversity M-1 — the scheduler spreads the overload over two-hop
// paths).
func SchedulerComparison(seed int64) ([]SchedulerRow, error) {
	var rows []SchedulerRow
	for _, tc := range []struct {
		name  string
		build func() (*topology.Graph, error)
	}{
		{"two-tier tree (diversity 1)", func() (*topology.Graph, error) {
			return topology.NewTwoTierTree(topology.TreeConfig{
				ToRs: 4, Roots: 1, HostsPerToR: 2,
				UpLink: topology.LinkSpec{Rate: 1 * sim.Gbps},
			})
		}},
		{"quartz mesh (diversity 3)", func() (*topology.Graph, error) {
			return topology.NewFullMesh(topology.MeshConfig{
				Switches: 4, HostsPerSwitch: 2,
				MeshLink: topology.LinkSpec{Rate: 1 * sim.Gbps},
			})
		}},
	} {
		g, err := tc.build()
		if err != nil {
			return nil, err
		}
		unsched, _, err := runSchedulerCase(g, false, seed)
		if err != nil {
			return nil, fmt.Errorf("%s unscheduled: %w", tc.name, err)
		}
		sched, moves, err := runSchedulerCase(g, true, seed)
		if err != nil {
			return nil, fmt.Errorf("%s scheduled: %w", tc.name, err)
		}
		sw := g.Switches()
		var torA, torB topology.NodeID = -1, -1
		for _, s := range sw {
			switch g.Node(s).Rack {
			case 0:
				torA = s
			case 1:
				torB = s
			}
		}
		rows = append(rows, SchedulerRow{
			Topology:     tc.name,
			Unscheduled:  unsched,
			Scheduled:    sched,
			Moves:        moves,
			Alternatives: g.EdgeDisjointPaths(torA, torB),
		})
	}
	return rows, nil
}

// runSchedulerCase overloads the rack-0 to rack-1 pair with two flows
// whose aggregate exceeds the 1 Gb/s inter-switch capacity and measures
// mean latency.
func runSchedulerCase(g *topology.Graph, withScheduler bool, seed int64) (float64, int, error) {
	router := schedule.NewRouter(g, routing.NewECMP(g))
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph:     g,
		Router:    router,
		OnDeliver: h.Deliver,
	})
	if err != nil {
		return 0, 0, err
	}
	srcs := g.HostsInRack(0)
	dsts := g.HostsInRack(1)
	rng := rand.New(rand.NewSource(seed))
	const end = 10 * sim.Millisecond
	var flows []schedule.FlowInfo
	for i := range srcs {
		st := &traffic.Stream{
			Net: net, Src: srcs[i], Dst: dsts[i],
			Flow: routing.FlowID(i + 1), RatePPS: 280e3, Size: 400, Tag: 1,
			Rand: rand.New(rand.NewSource(rng.Int63())),
		}
		if err := st.Start(end); err != nil {
			return 0, 0, err
		}
		flows = append(flows, schedule.FlowInfo{Flow: routing.FlowID(i + 1), Src: srcs[i], Dst: dsts[i]})
	}
	moves := 0
	if withScheduler {
		s := schedule.New(net, router, flows)
		s.Start(end)
		defer func() { moves = s.Moves() }()
		net.Engine().RunUntil(end + 2*sim.Millisecond)
		moves = s.Moves()
	} else {
		net.Engine().RunUntil(end + 2*sim.Millisecond)
	}
	return h.Latency(1).Mean(), moves, nil
}

// RenderScheduler renders the comparison.
func RenderScheduler(rows []SchedulerRow) string {
	var b strings.Builder
	b.WriteString("Flow scheduling vs path diversity (§2.1.4): overloaded rack pair\n")
	fmt.Fprintf(&b, "%-28s %14s %14s %8s %14s\n",
		"topology", "no sched (us)", "sched (us)", "moves", "alternatives")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %14.1f %14.1f %8d %14d\n",
			r.Topology, r.Unscheduled, r.Scheduled, r.Moves, r.Alternatives)
	}
	return b.String()
}
