package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCellRunsAll(t *testing.T) {
	var count int64
	seen := make([]int32, 100)
	err := forEachCell(100, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("ran %d cells, want 100", count)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("cell %d ran %d times", i, c)
		}
	}
}

func TestForEachCellPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEachCell(10, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestForEachCellZeroAndOne(t *testing.T) {
	if err := forEachCell(0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Error(err)
	}
	ran := false
	if err := forEachCell(1, func(i int) error { ran = true; return nil }); err != nil {
		t.Error(err)
	}
	if !ran {
		t.Error("single cell did not run")
	}
}
