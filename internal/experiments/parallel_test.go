package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/quartz-dcn/quartz/internal/trace"
)

func TestForEachCellRunsAll(t *testing.T) {
	var count int64
	seen := make([]int32, 100)
	err := forEachCell(context.Background(), 100, nil, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt32(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("ran %d cells, want 100", count)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("cell %d ran %d times", i, c)
		}
	}
}

func TestForEachCellPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forEachCell(context.Background(), 10, nil, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestForEachCellFewerCellsThanWorkers(t *testing.T) {
	// n below GOMAXPROCS exercises the worker clamp: every cell must
	// still run exactly once and errors must still propagate.
	for n := 2; n <= 4; n++ {
		var count int64
		seen := make([]int32, n)
		if err := forEachCell(context.Background(), n, nil, func(i int) error {
			atomic.AddInt64(&count, 1)
			atomic.AddInt32(&seen[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != int64(n) {
			t.Errorf("n=%d: ran %d cells", n, count)
		}
		for i, c := range seen {
			if c != 1 {
				t.Errorf("n=%d: cell %d ran %d times", n, i, c)
			}
		}
		boom := errors.New("boom")
		err := forEachCell(context.Background(), n, nil, func(i int) error {
			if i == n-1 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("n=%d: err = %v, want boom", n, err)
		}
	}
}

func TestForEachCellSerialError(t *testing.T) {
	// n == 1 takes the serial path; the error must stop the loop there.
	boom := errors.New("boom")
	ran := 0
	err := forEachCell(context.Background(), 1, nil, func(i int) error {
		ran++
		return boom
	})
	if !errors.Is(err, boom) || ran != 1 {
		t.Errorf("err = %v after %d runs, want boom after 1", err, ran)
	}
}

func TestForEachCellKeepsFirstError(t *testing.T) {
	// Every cell fails; exactly one of their errors must surface and it
	// must be one of the returned values, not a zero value.
	errs := make([]error, 50)
	for i := range errs {
		errs[i] = errors.New("boom")
	}
	err := forEachCell(context.Background(), len(errs), nil, func(i int) error { return errs[i] })
	if err == nil {
		t.Fatal("err = nil, want one of the cell errors")
	}
	found := false
	for _, e := range errs {
		if errors.Is(err, e) {
			found = true
		}
	}
	if !found {
		t.Errorf("err = %v, not one of the cells' errors", err)
	}
}

func TestForEachCellZeroAndOne(t *testing.T) {
	if err := forEachCell(context.Background(), 0, nil, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Error(err)
	}
	ran := false
	if err := forEachCell(context.Background(), 1, nil, func(i int) error { ran = true; return nil }); err != nil {
		t.Error(err)
	}
	if !ran {
		t.Error("single cell did not run")
	}
}

func TestForEachCellHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int64(0)
	err := forEachCell(ctx, 100, nil, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt64(&ran) == 100 {
		t.Error("cancelled context still ran every cell")
	}
}

// TestForEachCellSpans checks the trace hook records one wall-only
// "cell" span per cell, tracked by cell index.
func TestForEachCellSpans(t *testing.T) {
	rec := trace.NewRecorder()
	const n = 9
	err := forEachCell(context.Background(), n, &Hooks{Trace: rec}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	if len(spans) != n {
		t.Fatalf("%d spans, want %d", len(spans), n)
	}
	tracks := map[int]bool{}
	for _, s := range spans {
		if s.Name != "cell" || s.Cat != "experiment" {
			t.Fatalf("unexpected span %+v", s)
		}
		if s.Virt != 0 || s.VirtEnd != 0 {
			t.Fatalf("cell span carries virtual time: %+v", s)
		}
		tracks[s.Track] = true
	}
	if len(tracks) != n {
		t.Fatalf("%d distinct tracks, want %d", len(tracks), n)
	}
}
