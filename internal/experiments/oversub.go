package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

// OversubRow is one point of the §3 n:k tradeoff: a 64-port Quartz
// switch splits its ports between n servers and k = M-1 ring peers;
// more servers per switch means fewer, larger rings (lower cost per
// port) but higher rack-to-rack oversubscription.
type OversubRow struct {
	// Switches is the ring size M; HostsPerSwitch is n.
	Switches       int
	HostsPerSwitch int
	// Ratio is the server-to-ring-bandwidth oversubscription n:(M-1).
	Ratio float64
	// Permutation is the normalized random-permutation throughput
	// (adaptive VLB, 1.0 = every server at full rate).
	Permutation float64
	// Channels is the wavelength count of the ring.
	Channels int
}

// OversubscriptionSweep evaluates the §3 tradeoff across port splits of
// a 64-port switch. Ring sizes are chosen so M-1 + n = 64: from a
// 33-switch balanced ring (32:32, ratio 1) down to small rings of
// dense racks.
func OversubscriptionSweep(seed int64) ([]OversubRow, error) {
	var rows []OversubRow
	for _, m := range []int{33, 17, 9, 5} {
		n := 64 - (m - 1)
		// Keep the simulated host count manageable: scale hosts down by
		// a fixed factor while preserving the n:(M-1) ratio, since the
		// normalized throughput depends only on the ratio.
		scale := 4
		hosts := n / scale
		if hosts < 1 {
			hosts = 1
		}
		g, err := topology.NewFullMesh(topology.MeshConfig{
			Switches:       m,
			HostsPerSwitch: hosts,
		})
		if err != nil {
			return nil, err
		}
		// The mesh builder gives every switch pair one 10G channel; the
		// scaled-down host count keeps per-pair capacity comparable.
		rng := rand.New(rand.NewSource(seed))
		pairs := traffic.RandomPermutation(g.Hosts(), rng)
		tp, err := throughputOnQuartz(g, pairs)
		if err != nil {
			return nil, err
		}
		ideal := float64(len(g.Hosts())) * 1e10
		rows = append(rows, OversubRow{
			Switches:       m,
			HostsPerSwitch: n,
			Ratio:          float64(n) / float64(m-1),
			Permutation:    tp / ideal,
			Channels:       wdm.OptimalChannels(m),
		})
	}
	return rows, nil
}

// RenderOversub renders the tradeoff table.
func RenderOversub(rows []OversubRow) string {
	var b strings.Builder
	b.WriteString("Oversubscription tradeoff (§3): 64-port switches, n servers : M-1 ring peers\n")
	fmt.Fprintf(&b, "%8s %8s %12s %14s %10s\n", "ring M", "n", "ratio n:k", "perm tput", "channels")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %8d %11.2f:1 %14.2f %10d\n",
			r.Switches, r.HostsPerSwitch, r.Ratio, r.Permutation, r.Channels)
	}
	return b.String()
}
