package experiments

// The sweep abstraction: experiments whose work is a grid of
// independent cells publish the grid's size, a cell-range executor,
// and a deterministic merge. That is exactly the shape the cluster
// coordinator (internal/cluster) needs to fan a sweep out across
// worker daemons: any partition of [0, n) into contiguous ranges,
// executed anywhere and in any order, merges back into the same bytes
// a single process produces — because the single-process path runs
// through the very same RunCells + Merge pair.
//
// Partial results travel between processes as CellBlocks: the range
// bounds plus a JSON payload of per-cell values. encoding/json renders
// float64s in their shortest round-tripping form, so a block that
// crosses the wire decodes to bit-identical values and the merged
// table is byte-identical to a local run.

import (
	"context"
	"encoding/json"
	"fmt"
)

// CellBlock is the result of executing one contiguous cell range
// [Lo, Hi) of a sweep grid: the experiment-specific per-cell values,
// JSON-encoded so blocks can cross process boundaries.
type CellBlock struct {
	Lo   int             `json:"lo"`
	Hi   int             `json:"hi"`
	Data json.RawMessage `json:"data"`
}

// Sweep describes an experiment divisible into independent cells. All
// three funcs are pure with respect to Params (hooks excluded):
// Cells(p) is constant for a given p, and RunCells results depend only
// on (p, lo, hi).
type Sweep struct {
	// Cells returns the grid size under p.
	Cells func(p Params) int
	// RunCells executes cells [lo, hi) under the forEachCell index
	// discipline and returns their values as one block. Progress ticks
	// (p.Progress) count within the range: done ∈ [0, hi-lo].
	RunCells func(ctx context.Context, p Params, lo, hi int) (CellBlock, error)
	// Merge combines blocks covering exactly [0, Cells(p)) — disjoint,
	// sorted ascending by Lo — into the experiment's final Output.
	Merge func(p Params, blocks []CellBlock) (Output, error)
}

// Run executes the whole grid locally: RunCells(0, n) followed by
// Merge. Registry entries that publish a Sweep use this as their Run,
// so single-process output and cluster-merged output are byte-identical
// by construction.
func (sw *Sweep) Run(ctx context.Context, p Params) (Output, error) {
	n := sw.Cells(p)
	block, err := sw.RunCells(ctx, p, 0, n)
	if err != nil {
		return Output{}, err
	}
	return sw.Merge(p, []CellBlock{block})
}

// RunRange executes cells [lo, hi) and returns the block wrapped in an
// Output whose Text is the JSON-encoded CellBlock — the wire form a
// cell-range sub-job (internal/service Request.Cells) reports back to
// the cluster coordinator. DecodeBlock inverts it.
func (sw *Sweep) RunRange(ctx context.Context, p Params, lo, hi int) (Output, error) {
	block, err := sw.RunCells(ctx, p, lo, hi)
	if err != nil {
		return Output{}, err
	}
	enc, err := json.Marshal(block)
	if err != nil {
		return Output{}, fmt.Errorf("encoding cell block [%d,%d): %w", lo, hi, err)
	}
	return Output{Text: string(enc)}, nil
}

// DecodeBlock parses the Output.Text of a cell-range execution back
// into its CellBlock.
func DecodeBlock(text string) (CellBlock, error) {
	var b CellBlock
	if err := json.Unmarshal([]byte(text), &b); err != nil {
		return CellBlock{}, fmt.Errorf("decoding cell block: %w", err)
	}
	if b.Hi <= b.Lo {
		return CellBlock{}, fmt.Errorf("decoding cell block: empty range [%d,%d)", b.Lo, b.Hi)
	}
	return b, nil
}

// encodeBlock wraps per-cell values (a slice covering [lo, hi)) as a
// CellBlock.
func encodeBlock(lo, hi int, cells interface{}) (CellBlock, error) {
	data, err := json.Marshal(cells)
	if err != nil {
		return CellBlock{}, fmt.Errorf("encoding cells [%d,%d): %w", lo, hi, err)
	}
	return CellBlock{Lo: lo, Hi: hi, Data: data}, nil
}

// mergeBlocks decodes blocks covering exactly [0, n) into one slice of
// per-cell values in cell order, rejecting gaps, overlaps, and blocks
// whose payload length disagrees with their bounds.
func mergeBlocks[T any](n int, blocks []CellBlock) ([]T, error) {
	vals := make([]T, 0, n)
	next := 0
	for _, b := range blocks {
		if b.Lo != next {
			return nil, fmt.Errorf("merging cell blocks: want cells from %d, got block [%d,%d)", next, b.Lo, b.Hi)
		}
		if b.Hi <= b.Lo || b.Hi > n {
			return nil, fmt.Errorf("merging cell blocks: bad range [%d,%d) of %d cells", b.Lo, b.Hi, n)
		}
		var part []T
		if err := json.Unmarshal(b.Data, &part); err != nil {
			return nil, fmt.Errorf("merging cell blocks: block [%d,%d): %w", b.Lo, b.Hi, err)
		}
		if len(part) != b.Hi-b.Lo {
			return nil, fmt.Errorf("merging cell blocks: block [%d,%d) carries %d cells", b.Lo, b.Hi, len(part))
		}
		vals = append(vals, part...)
		next = b.Hi
	}
	if next != n {
		return nil, fmt.Errorf("merging cell blocks: cells [%d,%d) missing", next, n)
	}
	return vals, nil
}

// checkRange validates a requested cell range against a grid of n
// cells.
func checkRange(n, lo, hi int) error {
	if lo < 0 || hi <= lo || hi > n {
		return fmt.Errorf("cell range [%d,%d) outside grid of %d cells", lo, hi, n)
	}
	return nil
}
