package experiments

import (
	"strings"
	"testing"
)

func TestStackComparisonOrderOfMagnitude(t *testing.T) {
	rows, err := StackComparison(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	t.Log("\n" + RenderStack(rows))
	// Each step improves on the previous.
	for i := 1; i < len(rows); i++ {
		if rows[i].RTTUs >= rows[i-1].RTTUs {
			t.Errorf("step %q (%.2fus) not faster than %q (%.2fus)",
				rows[i].Config, rows[i].RTTUs, rows[i-1].Config, rows[i-1].RTTUs)
		}
	}
	// §1's claim: combining the techniques yields an order of magnitude.
	if speedup := rows[0].RTTUs / rows[3].RTTUs; speedup < 10 {
		t.Errorf("total speedup = %.1fx, want >= 10x", speedup)
	}
	if out := RenderStack(rows); !strings.Contains(out, "speedup") {
		t.Error("render missing speedup column")
	}
}
