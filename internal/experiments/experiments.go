// Package experiments regenerates every table and figure of the Quartz
// paper's evaluation (§5–§7: Figures 5–20, Tables 8 and 9). Each
// Figure*/Table* function builds the workload, runs the appropriate
// simulator, and returns typed rows; String helpers render paper-style
// ASCII tables. cmd/quartzbench and the repository's benchmark suite
// are thin wrappers around this package.
//
// Every function takes an explicit seed: results are deterministic for
// a given seed.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/analysis"
	"github.com/quartz-dcn/quartz/internal/fault"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

// Figure5Row is one x-position of Figure 5: wavelengths required for a
// ring size, by the greedy heuristic and by the ILP optimum.
type Figure5Row struct {
	RingSize int
	// Greedy is the paper's heuristic (§3.1.1), measured.
	Greedy int
	// Optimal is the proven minimum — the value the paper's ILP
	// computes (closed form, verified by branch-and-bound for small
	// rings; see internal/wdm).
	Optimal int
}

// Figure5 sweeps ring sizes 2..maxRing (the paper plots 1..41).
func Figure5(maxRing int, seed int64) []Figure5Row {
	rng := rand.New(rand.NewSource(seed))
	var rows []Figure5Row
	for m := 2; m <= maxRing; m++ {
		g := wdm.Greedy(m, rng)
		rows = append(rows, Figure5Row{
			RingSize: m,
			Greedy:   g.Channels,
			Optimal:  wdm.OptimalChannels(m),
		})
	}
	return rows
}

// RenderFigure5 renders the sweep with the 160-channel fiber limit
// annotated (the paper's conclusion: maximum ring size 35).
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: wavelengths required vs ring size (fiber limit %d channels)\n", wdm.MaxChannelsPerFiber)
	fmt.Fprintf(&b, "%8s %22s %18s\n", "ring", "greedy approximation", "optimal (ILP)")
	for _, r := range rows {
		note := ""
		if r.Optimal > wdm.MaxChannelsPerFiber {
			note = "  over single-fiber limit"
		}
		fmt.Fprintf(&b, "%8d %22d %18d%s\n", r.RingSize, r.Greedy, r.Optimal, note)
	}
	fmt.Fprintf(&b, "maximum single-fiber ring size: %d\n", wdm.MaxRingSize(wdm.MaxChannelsPerFiber))
	return b.String()
}

// Figure6 runs the fault-tolerance sweep of §3.5 on a 33-switch Quartz
// deployment: 1..4 physical rings, 1..4 simultaneous fiber cuts.
// Results are indexed [rings-1][cuts-1]. Cancelling ctx aborts the
// sweep between cells.
func Figure6(ctx context.Context, trials int, seed int64) ([][]fault.Result, error) {
	rng := rand.New(rand.NewSource(seed))
	return fault.Sweep(ctx, 33, 4, 4, trials, rng)
}

// RenderFigure6 renders both panels of Figure 6.
func RenderFigure6(grid [][]fault.Result) string {
	var b strings.Builder
	b.WriteString("Figure 6 (top): percentage of bandwidth loss\n")
	fmt.Fprintf(&b, "%8s", "rings")
	for c := 1; c <= len(grid[0]); c++ {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("%d cut(s)", c))
	}
	b.WriteByte('\n')
	for r, row := range grid {
		fmt.Fprintf(&b, "%8d", r+1)
		for _, res := range row {
			fmt.Fprintf(&b, "%9.1f%%", 100*res.AvgBandwidthLoss)
		}
		b.WriteByte('\n')
	}
	b.WriteString("Figure 6 (bottom): probability of network partition\n")
	fmt.Fprintf(&b, "%8s", "rings")
	for c := 1; c <= len(grid[0]); c++ {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("%d cut(s)", c))
	}
	b.WriteByte('\n')
	for r, row := range grid {
		fmt.Fprintf(&b, "%8d", r+1)
		for _, res := range row {
			fmt.Fprintf(&b, "%10.4f", res.PartitionProb)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table9 recomputes the §5 topology comparison.
func Table9(seed int64) ([]analysis.Row, error) {
	return analysis.Table9(analysis.Table9Config{Rand: rand.New(rand.NewSource(seed))})
}

// RenderTable9 renders the comparison in the paper's column order.
func RenderTable9(rows []analysis.Row) string {
	var b strings.Builder
	b.WriteString("Table 9: network structures with ~1k ports (64-port switches)\n")
	fmt.Fprintf(&b, "%-12s %-28s %10s %8s %10s\n",
		"Network", "Latency w/o congestion", "Switches", "Wiring", "Diversity")
	for _, r := range rows {
		lat := fmt.Sprintf("%.1fus (%d switch hops", r.Latency.Micros(), r.SwitchHops)
		if r.ServerHops > 0 {
			lat += fmt.Sprintf(" & %d server hop", r.ServerHops)
		}
		lat += ")"
		wiring := fmt.Sprintf("%d", r.Wiring)
		if r.WDMWiring > 0 {
			wiring += fmt.Sprintf(" (%d w/ WDM)", r.WDMWiring)
		}
		fmt.Fprintf(&b, "%-12s %-28s %10d %8s %10d\n",
			r.Network, lat, r.Switches, wiring, r.Diversity)
	}
	return b.String()
}
