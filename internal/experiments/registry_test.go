package experiments

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestRegistryCoversAllEntrypoints parses this package's sources and
// checks every exported Figure*/Table* function appears in some
// registry entry's Covers list, so new reproductions cannot silently
// miss quartzbench.
func TestRegistryCoversAllEntrypoints(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, e := range All() {
		for _, c := range e.Covers {
			covered[c] = true
		}
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for path, f := range pkg.Files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil {
					continue
				}
				name := fd.Name.Name
				if !strings.HasPrefix(name, "Figure") && !strings.HasPrefix(name, "Table") {
					continue
				}
				if strings.HasPrefix(name, "Render") {
					continue
				}
				if !covered[name] {
					t.Errorf("exported entrypoint %s (%s) is not covered by any registry entry", name, path)
				}
			}
		}
	}
}

// TestRegistryCoversPointToRealFunctions is the inverse direction: a
// Covers entry must name a function that actually exists.
func TestRegistryCoversPointToRealFunctions(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	exists := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
					exists[fd.Name.Name] = true
				}
			}
		}
	}
	for _, e := range All() {
		for _, c := range e.Covers {
			if !exists[c] {
				t.Errorf("experiment %q covers %q, which is not a function in this package", e.Name, c)
			}
		}
	}
}

func TestRegistryNamesUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.Name == "" || e.Title == "" {
			t.Errorf("entry %+v missing name or title", e)
		}
		if e.Name != strings.ToLower(e.Name) {
			t.Errorf("entry %q: names must be lower-case", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil {
			t.Errorf("entry %q has no Run", e.Name)
		}
		got, ok := Find(strings.ToUpper(e.Name))
		if !ok || got.Name != e.Name {
			t.Errorf("Find(%q) did not return the entry", e.Name)
		}
	}
	if _, ok := Find("no-such-experiment"); ok {
		t.Error("Find returned an entry for an unknown name")
	}
}

// TestRegistryRunsCheapEntries executes the static entries end to end.
func TestRegistryRunsCheapEntries(t *testing.T) {
	for _, name := range []string{"table2", "table16", "fig1"} {
		e, ok := Find(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		out, err := e.Run(context.Background(), DefaultParams())
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if out.Text == "" {
			t.Errorf("%s produced no text", name)
		}
	}
}

func TestParamsWithDefaults(t *testing.T) {
	// Params carries a func-typed hook, so compare the knobs directly.
	knobs := func(p Params) [4]int64 {
		return [4]int64{p.Seed, int64(p.Trials), int64(p.Tasks), int64(p.RPCs)}
	}
	p := Params{}.WithDefaults()
	if knobs(p) != knobs(DefaultParams()) {
		t.Errorf("zero params = %+v, want defaults %+v", p, DefaultParams())
	}
	q := Params{Seed: 7, Trials: 1, Tasks: 2, RPCs: 3}.WithDefaults()
	if knobs(q) != [4]int64{7, 1, 2, 3} {
		t.Errorf("explicit params changed: %+v", q)
	}
}
