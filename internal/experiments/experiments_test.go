package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/wdm"
)

func TestFigure5GreedyTracksOptimal(t *testing.T) {
	rows := Figure5(41, 1)
	if len(rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(rows))
	}
	for _, r := range rows {
		if r.Greedy < r.Optimal {
			t.Errorf("m=%d: greedy %d below optimum %d (impossible)", r.RingSize, r.Greedy, r.Optimal)
		}
		// Figure 5's visual claim: greedy nearly coincides with the ILP.
		if float64(r.Greedy) > float64(r.Optimal)*1.15+2 {
			t.Errorf("m=%d: greedy %d strays from optimum %d", r.RingSize, r.Greedy, r.Optimal)
		}
	}
	// The 160-channel fiber admits rings up to 35 switches and no more.
	last35 := rows[35-2]
	first36 := rows[36-2]
	if last35.Optimal > wdm.MaxChannelsPerFiber {
		t.Errorf("m=35 needs %d channels, expected to fit 160", last35.Optimal)
	}
	if first36.Optimal <= wdm.MaxChannelsPerFiber {
		t.Errorf("m=36 needs %d channels, expected to exceed 160", first36.Optimal)
	}
	out := RenderFigure5(rows)
	if !strings.Contains(out, "maximum single-fiber ring size: 35") {
		t.Errorf("render missing ring-size conclusion:\n%s", out)
	}
}

func TestFigure6HeadlineClaims(t *testing.T) {
	grid, err := Figure6(context.Background(), 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One ring, one cut: ~20-30% bandwidth loss, no partition.
	r11 := grid[0][0]
	if r11.AvgBandwidthLoss < 0.15 || r11.AvgBandwidthLoss > 0.35 {
		t.Errorf("1 ring 1 cut loss = %v, want ~0.2", r11.AvgBandwidthLoss)
	}
	if r11.PartitionProb != 0 {
		t.Errorf("1 ring 1 cut partition = %v, want 0", r11.PartitionProb)
	}
	// One ring, >= 2 cuts: partition probability > 90%.
	if grid[0][1].PartitionProb < 0.9 {
		t.Errorf("1 ring 2 cuts partition = %v, want > 0.9", grid[0][1].PartitionProb)
	}
	// Two rings, four cuts: partition probability ~0.24%.
	if grid[1][3].PartitionProb > 0.02 {
		t.Errorf("2 rings 4 cuts partition = %v, want < 2%%", grid[1][3].PartitionProb)
	}
	// Four rings, one cut: loss ~6%.
	if grid[3][0].AvgBandwidthLoss > 0.12 {
		t.Errorf("4 rings 1 cut loss = %v, want ~0.06", grid[3][0].AvgBandwidthLoss)
	}
	if RenderFigure6(grid) == "" {
		t.Error("empty render")
	}
}

func TestTable9Renders(t *testing.T) {
	rows, err := Table9(3)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable9(rows)
	for _, want := range []string{"2-Tier Tree", "Fat-Tree", "BCube", "Jellyfish", "Mesh", "528 (33 w/ WDM)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure10QuartzBetweenHalfAndFull(t *testing.T) {
	rows, err := Figure10(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		q := r.Throughput["quartz"]
		half := r.Throughput["1/2 bisection"]
		quarter := r.Throughput["1/4 bisection"]
		full := r.Throughput["full bisection"]
		if full != 1.0 {
			t.Errorf("%s: full bisection = %v, want 1.0", r.Pattern, full)
		}
		// §5.1's conclusion: Quartz is below full bisection but above
		// the other oversubscribed fabrics.
		if q >= 1.0 {
			t.Errorf("%s: quartz = %v, want < 1", r.Pattern, q)
		}
		if q <= half {
			t.Errorf("%s: quartz %v not above 1/2 bisection %v", r.Pattern, q, half)
		}
		if half <= quarter {
			t.Errorf("%s: 1/2 bisection %v not above 1/4 %v", r.Pattern, half, quarter)
		}
	}
	// Permutation and incast ~0.8-1.0; rack shuffle noticeably lower.
	perm := rows[0].Throughput["quartz"]
	incast := rows[1].Throughput["quartz"]
	shuffle := rows[2].Throughput["quartz"]
	if perm < 0.7 || incast < 0.7 {
		t.Errorf("permutation/incast quartz = %v/%v, want >= 0.7", perm, incast)
	}
	if shuffle >= perm {
		t.Errorf("shuffle %v should underperform permutation %v on quartz", shuffle, perm)
	}
	if RenderFigure10(rows) == "" {
		t.Error("empty render")
	}
}

func TestFigure14TreeSensitiveQuartzFlat(t *testing.T) {
	rows, err := Figure14Sweep(7, 400)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.CrossTraffic != 200*sim.Mbps {
		t.Fatalf("sweep ends at %v, want 200Mbps", last.CrossTraffic)
	}
	// Tree latency rises clearly with cross-traffic; Quartz stays flat.
	if last.TwoTierTree < first.TwoTierTree+0.05 {
		t.Errorf("tree normalized latency flat: %v -> %v", first.TwoTierTree, last.TwoTierTree)
	}
	if last.Quartz > 1.10 {
		t.Errorf("quartz normalized latency rose to %v, want ~1.0", last.Quartz)
	}
	if last.TwoTierTree < last.Quartz+0.05 {
		t.Errorf("tree %v should exceed quartz %v at 200Mbps", last.TwoTierTree, last.Quartz)
	}
	if RenderFigure14(rows) == "" {
		t.Error("empty render")
	}
}

func TestFigure17ScatterOrdering(t *testing.T) {
	rows, err := Figure17(context.Background(), ScatterKind, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	tree1, tree8 := first.Latency["three-tier tree"], last.Latency["three-tier tree"]
	// The tree shows significant latency even with one task (CCS core)
	// and an approximately linear increase with tasks (§7.1).
	if tree1 < 6 || tree1 > 12 {
		t.Errorf("tree at 1 task = %.1fus, want ~8-9us", tree1)
	}
	if tree8 < 1.5*tree1 {
		t.Errorf("tree did not rise with tasks: %.1f -> %.1f us", tree1, tree8)
	}
	// Quartz in edge+core cuts latency by ~half or more vs the tree.
	ec8 := last.Latency["quartz in edge and core"]
	if ec8 > tree8/2 {
		t.Errorf("edge+core %.1fus not at least 2x below tree %.1fus", ec8, tree8)
	}
	// All-ULL designs stay flat: last within 40% of first.
	for _, name := range []string{"quartz in core", "quartz in edge and core", "jellyfish"} {
		if last.Latency[name] > first.Latency[name]*1.4 {
			t.Errorf("%s rose from %.2f to %.2f us; expected flat", name, first.Latency[name], last.Latency[name])
		}
	}
	// Quartz in edge sits between the tree and the all-ULL designs, and
	// rises more slowly than the tree.
	edge1, edge8 := first.Latency["quartz in edge"], last.Latency["quartz in edge"]
	if edge1 >= tree1 {
		t.Errorf("edge at 1 task %.1f not below tree %.1f", edge1, tree1)
	}
	if edge8-edge1 >= tree8-tree1 {
		t.Errorf("edge slope (%.1f) not below tree slope (%.1f)", edge8-edge1, tree8-tree1)
	}
	if RenderFigure17("Figure 17(a)", Figure17Architectures, rows) == "" {
		t.Error("empty render")
	}
}

func TestFigure17GatherSimilarToScatter(t *testing.T) {
	rows, err := Figure17(context.Background(), GatherKind, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree := rows[len(rows)-1].Latency["three-tier tree"]
	quartz := rows[len(rows)-1].Latency["quartz in edge and core"]
	if quartz >= tree {
		t.Errorf("gather: edge+core %.1f not below tree %.1f", quartz, tree)
	}
}

func TestFigure17ScatterGatherJump(t *testing.T) {
	rows, err := Figure17(context.Background(), ScatterGatherKind, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// "a substantial jump in latency going from three to four tasks...
	// due to link saturation from an oversubscribed link" (§7.1).
	tree3 := rows[2].Latency["three-tier tree"]
	tree4 := rows[3].Latency["three-tier tree"]
	if tree4 < 3*tree3 {
		t.Errorf("no saturation jump: tree %.1f -> %.1f us from 3 to 4 tasks", tree3, tree4)
	}
	// Quartz in edge+core remains low throughout.
	if ec := rows[3].Latency["quartz in edge and core"]; ec > 20 {
		t.Errorf("edge+core at 4 scatter/gather tasks = %.1fus, want low", ec)
	}
}

func TestFigure18LocalityClaims(t *testing.T) {
	rows, err := Figure18(context.Background(), ScatterKind, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	// Quartz designs keep the local task's traffic on cheap paths:
	// clearly below the tree at every point.
	for _, r := range rows {
		tree := r.Latency["three-tier tree"]
		for _, name := range []string{"quartz in jellyfish", "quartz in edge and core"} {
			if r.Latency[name] >= tree {
				t.Errorf("tasks=%d: %s %.2f not below tree %.2f", r.Tasks, name, r.Latency[name], tree)
			}
		}
	}
	// The tree's local task degrades with cross-traffic; the quartz
	// designs stay flat (within 35%).
	if last.Latency["three-tier tree"] < first.Latency["three-tier tree"]*1.2 {
		t.Errorf("tree local task did not degrade: %.2f -> %.2f",
			first.Latency["three-tier tree"], last.Latency["three-tier tree"])
	}
	for _, name := range []string{"quartz in jellyfish", "quartz in edge and core"} {
		if last.Latency[name] > first.Latency[name]*1.35 {
			t.Errorf("%s local task degraded: %.2f -> %.2f", name, first.Latency[name], last.Latency[name])
		}
	}
}

func TestFigure20Claims(t *testing.T) {
	rows, err := Figure20(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for i, r := range rows {
		gbps := int64(r.Aggregate / sim.Gbps)
		// The non-blocking switch is unaffected by load but pays its
		// store-and-forward latency.
		if r.NonBlocking < 6 || r.NonBlocking > 12 {
			t.Errorf("%dG: non-blocking = %.1fus, want ~8us", gbps, r.NonBlocking)
		}
		// Below saturation, both Quartz modes beat the core switch
		// significantly (§7.2).
		if gbps <= 30 {
			if r.QuartzECMP > r.NonBlocking/2 {
				t.Errorf("%dG: quartz ECMP %.1f not well below core %.1f", gbps, r.QuartzECMP, r.NonBlocking)
			}
			if r.ECMPSaturated {
				t.Errorf("%dG: ECMP saturated too early", gbps)
			}
		}
		// VLB never saturates in the sweep and stays low.
		if r.QuartzVLB > r.NonBlocking {
			t.Errorf("%dG: quartz VLB %.1f above core switch %.1f", gbps, r.QuartzVLB, r.NonBlocking)
		}
		_ = i
	}
	// ECMP saturates at or past the 40 Gb/s direct-link rate.
	if !rows[4].ECMPSaturated && rows[4].QuartzECMP < 50 {
		t.Errorf("50G: ECMP should be saturated or far above baseline (got %.1fus)", rows[4].QuartzECMP)
	}
	if RenderFigure20(rows) == "" {
		t.Error("empty render")
	}
}

func TestTable8Claims(t *testing.T) {
	rows, err := Table8(context.Background(), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		// Quartz reduces latency in every scenario.
		if r.LatencyReduction <= 0.05 {
			t.Errorf("%s/%s: reduction %.0f%%, want positive", r.Size, r.Utilization, 100*r.LatencyReduction)
		}
		// The cost premium stays bounded (paper: at most +17%).
		premium := r.QuartzCostPerServer/r.BaselineCostPerServer - 1
		if premium > 0.25 {
			t.Errorf("%s/%s: cost premium %.0f%%, want <= 25%%", r.Size, r.Utilization, 100*premium)
		}
	}
	// Large/Low (Quartz in core) costs about the same as the tree.
	largeLow := rows[4]
	if p := largeLow.QuartzCostPerServer/largeLow.BaselineCostPerServer - 1; p < -0.05 || p > 0.05 {
		t.Errorf("large/low premium = %.1f%%, want ~0", 100*p)
	}
	// Large/High gives the biggest reduction (paper: >74%).
	if rows[5].LatencyReduction < 0.6 {
		t.Errorf("large/high reduction = %.0f%%, want > 60%%", 100*rows[5].LatencyReduction)
	}
	if RenderTable8(rows) == "" {
		t.Error("empty render")
	}
}

func TestTaskKindString(t *testing.T) {
	if ScatterKind.String() != "scatter" || GatherKind.String() != "gather" ||
		ScatterGatherKind.String() != "scatter/gather" {
		t.Error("TaskKind strings wrong")
	}
	if TaskKind(9).String() != "TaskKind(9)" {
		t.Error("unknown TaskKind string wrong")
	}
}

func TestBuildArchUnknown(t *testing.T) {
	if _, err := buildArch("nonsense", nil); err == nil {
		t.Error("unknown architecture accepted")
	}
}
