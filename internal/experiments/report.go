// Machine-readable run reports. quartzbench -json (and the bench-json
// Makefile target) serializes one Report per invocation so the repo's
// perf trajectory accumulates in version-controlled artifacts
// (BENCH_quartz.json) instead of scrollback: per-experiment wall time
// and simulator events/sec, alongside the parameters that produced
// them.
package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// ExperimentReport is the machine-readable record of one experiment
// run.
type ExperimentReport struct {
	Name    string `json:"name"`
	Title   string `json:"title"`
	Section string `json:"section"`
	// WallSecs is real time spent inside the experiment's Run.
	WallSecs float64 `json:"wall_secs"`
	// Events is the number of simulator events the experiment drove
	// (sim.TotalEvents delta; 0 for analytic experiments that never
	// touch the event loop).
	Events uint64 `json:"events"`
	// EventsPerSec is Events over WallSecs.
	EventsPerSec float64 `json:"events_per_sec"`
	// CSVRows counts data-bearing output tables.
	CSVRows int `json:"csv_tables,omitempty"`
}

// Report is the full run report quartzbench -json emits.
type Report struct {
	// Schema names the report format for downstream tooling.
	Schema string `json:"schema"`
	// StartedAt is the wall-clock start of the run (RFC 3339).
	StartedAt string `json:"started_at"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Params    Params `json:"params"`
	// WallSecs is total wall time across the selected experiments.
	WallSecs    float64            `json:"wall_secs"`
	Experiments []ExperimentReport `json:"experiments"`
}

// ReportSchema identifies the current report format.
const ReportSchema = "quartz-bench-report/v1"

// NewReport returns a Report shell stamped with the build environment;
// the caller appends ExperimentReports as experiments finish.
func NewReport(p Params, startedAt time.Time) *Report {
	return &Report{
		Schema:    ReportSchema,
		StartedAt: startedAt.UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Params:    p.withDefaults(),
	}
}

// Add appends one experiment's record and folds its wall time into the
// run total.
func (r *Report) Add(er ExperimentReport) {
	if er.WallSecs > 0 {
		er.EventsPerSec = float64(er.Events) / er.WallSecs
	}
	r.WallSecs += er.WallSecs
	r.Experiments = append(r.Experiments, er)
}

// WriteJSON serializes the report, indented for diff-friendly
// version-controlled artifacts.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
