// Machine-readable run reports. quartzbench -json (and the bench-json
// Makefile target) serializes one Report per invocation so the repo's
// perf trajectory accumulates in version-controlled artifacts
// (BENCH_quartz.json) instead of scrollback: per-experiment wall time
// and simulator events/sec, alongside the parameters that produced
// them.
package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"github.com/quartz-dcn/quartz/internal/sim"
)

// ExperimentReport is the machine-readable record of one experiment
// run.
type ExperimentReport struct {
	Name    string `json:"name"`
	Title   string `json:"title"`
	Section string `json:"section"`
	// WallSecs is real time spent inside the experiment's Run.
	WallSecs float64 `json:"wall_secs"`
	// Events is the number of simulator events the experiment drove
	// (sim.TotalEvents delta; 0 for analytic experiments that never
	// touch the event loop).
	Events uint64 `json:"events"`
	// EventsPerSec is Events over WallSecs.
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocBytes and Mallocs are runtime.MemStats deltas across the
	// experiment — the memory-cost companion to events/sec that the
	// zero-allocation hot-path work keeps honest.
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	Mallocs    uint64 `json:"mallocs,omitempty"`
	// CSVRows counts data-bearing output tables.
	CSVRows int `json:"csv_tables,omitempty"`
}

// MemStats summarizes the run's memory behaviour, from
// runtime.ReadMemStats.
type MemStats struct {
	// TotalAllocBytes is cumulative bytes allocated on the heap.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64 `json:"mallocs"`
	// PeakHeapBytes is the largest live heap observed at an experiment
	// boundary.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// NumGC is the number of completed GC cycles.
	NumGC uint32 `json:"num_gc"`
}

// CaptureMemStats snapshots the runtime allocator counters.
// PeakHeapBytes holds the current live heap; callers fold successive
// snapshots' maxima into the run-level peak.
func CaptureMemStats() MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return MemStats{
		TotalAllocBytes: m.TotalAlloc,
		Mallocs:         m.Mallocs,
		PeakHeapBytes:   m.HeapAlloc,
		NumGC:           m.NumGC,
	}
}

// Report is the full run report quartzbench -json emits.
type Report struct {
	// Schema names the report format for downstream tooling.
	Schema string `json:"schema"`
	// StartedAt is the wall-clock start of the run (RFC 3339).
	StartedAt string `json:"started_at"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU and GoMaxProcs record the host parallelism the run had —
	// the context a speedup column is meaningless without (a 1-CPU box
	// inverts it). cmd/benchdiff warns when comparing across differing
	// CPU counts.
	NumCPU     int    `json:"num_cpu,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	Params     Params `json:"params"`
	// WallSecs is total wall time across the selected experiments.
	WallSecs    float64            `json:"wall_secs"`
	Experiments []ExperimentReport `json:"experiments"`
	// Mem is the run-wide memory summary (nil in reports from versions
	// that predate it; the field is additive to the v1 schema).
	Mem *MemStats `json:"mem,omitempty"`
	// BarrierProfile is the sharded synchronizer's window economics over
	// the run (sim.BarrierProfileSnapshot delta; nil when no sharded
	// engine ran or in reports that predate it — additive to v1).
	BarrierProfile *sim.BarrierProfile `json:"barrier_profile,omitempty"`
}

// ReportSchema identifies the current report format.
const ReportSchema = "quartz-bench-report/v1"

// NewReport returns a Report shell stamped with the build environment;
// the caller appends ExperimentReports as experiments finish.
func NewReport(p Params, startedAt time.Time) *Report {
	return &Report{
		Schema:     ReportSchema,
		StartedAt:  startedAt.UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Params:     p.WithDefaults(),
	}
}

// Add appends one experiment's record and folds its wall time into the
// run total.
func (r *Report) Add(er ExperimentReport) {
	if er.WallSecs > 0 {
		er.EventsPerSec = float64(er.Events) / er.WallSecs
	}
	r.WallSecs += er.WallSecs
	r.Experiments = append(r.Experiments, er)
}

// WriteJSON serializes the report, indented for diff-friendly
// version-controlled artifacts.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
