package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestAblationRingSizeFlat(t *testing.T) {
	// §7: "the size of the ring does not affect performance" — latency
	// is flat across ring sizes (within 25%).
	rows, err := AblationRingSize(context.Background(), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	base := rows[0].Latency
	for _, r := range rows {
		if r.Latency < base*0.75 || r.Latency > base*1.25 {
			t.Errorf("%s: %.2fus strays from %.2fus", r.Config, r.Latency, base)
		}
		if r.Drops != 0 {
			t.Errorf("%s: %d drops on an uncongested mesh", r.Config, r.Drops)
		}
	}
	if out := RenderAblation("ring size", rows); !strings.Contains(out, "32 switches") {
		t.Error("render missing configurations")
	}
}

func TestAblationSwitchModelGap(t *testing.T) {
	rows, err := AblationSwitchModel(context.Background(), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	ull, ccs := rows[0].Latency, rows[1].Latency
	// Two switch hops: CCS should cost roughly 2 x (6us - 0.38us) more.
	if ccs-ull < 8 || ccs-ull > 16 {
		t.Errorf("CCS-ULL gap = %.2fus, want ~11us (two hops)", ccs-ull)
	}
}

func TestAblationVLBFractionShape(t *testing.T) {
	rows, err := AblationVLBFraction(context.Background(), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Direct-only (fraction 0) saturates at 45 Gb/s through a 40 Gb/s
	// channel; moderate spreading does not.
	if rows[0].Latency < 3*rows[2].Latency {
		t.Errorf("direct-only %.1fus not far above fraction-0.25 %.1fus",
			rows[0].Latency, rows[2].Latency)
	}
	// Every spread fraction >= 0.25 stays in single-digit microseconds.
	for _, r := range rows[2:] {
		if r.Latency > 10 {
			t.Errorf("%s: %.1fus, want low", r.Config, r.Latency)
		}
	}
}

func TestAblationECMPMode(t *testing.T) {
	rows, err := AblationECMPMode(context.Background(), 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	pinned, sprayed := rows[0].Latency, rows[1].Latency
	// Pinned flows collide on core ports; spraying is never worse.
	if sprayed > pinned*1.1 {
		t.Errorf("spraying %.2fus worse than pinning %.2fus", sprayed, pinned)
	}
}

func TestOversubscriptionSweep(t *testing.T) {
	rows, err := OversubscriptionSweep(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// The balanced 33-switch ring is ~1:1; denser racks raise the ratio
	// monotonically and throughput falls monotonically.
	if rows[0].Ratio != 1.0 {
		t.Errorf("33-ring ratio = %v, want 1.0", rows[0].Ratio)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Errorf("ratio not increasing: %v", rows)
		}
		if rows[i].Permutation >= rows[i-1].Permutation {
			t.Errorf("throughput not decreasing with oversubscription: %v then %v",
				rows[i-1].Permutation, rows[i].Permutation)
		}
	}
	// Balanced ring keeps most of the ideal throughput.
	if rows[0].Permutation < 0.7 {
		t.Errorf("balanced ring permutation throughput = %v, want >= 0.7", rows[0].Permutation)
	}
	if out := RenderOversub(rows); !strings.Contains(out, "1.00:1") {
		t.Errorf("render missing balanced row:\n%s", out)
	}
}
