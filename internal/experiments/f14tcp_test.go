package experiments

import "testing"

func TestFigure14TCPIsolation(t *testing.T) {
	rows, err := Figure14TCP(7, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	t.Log("\n" + RenderFigure14TCP(rows))
	// The tree's RPC degrades sharply once any bulk TCP flow shares its
	// aggregation trunk.
	if rows[1].TwoTierTree < 1.5 {
		t.Errorf("tree with 1 TCP source = %.2fx, want well above baseline", rows[1].TwoTierTree)
	}
	if rows[3].TwoTierTree < rows[1].TwoTierTree {
		t.Errorf("tree not degrading with more sources: %v", rows)
	}
	// Quartz isolates the RPC entirely: a single-source bulk flow
	// cannot oversubscribe its dedicated channel, so even the
	// co-channel third flow leaves the RPC untouched.
	for i := 1; i <= 3; i++ {
		if rows[i].Quartz > 1.2 {
			t.Errorf("quartz degraded with %d TCP flows: %.2fx", rows[i].Sources, rows[i].Quartz)
		}
	}
	// At every load the tree is at least as bad as quartz.
	for i := 1; i <= 3; i++ {
		if rows[i].TwoTierTree < rows[i].Quartz {
			t.Errorf("sources=%d: tree %.2f below quartz %.2f", rows[i].Sources, rows[i].TwoTierTree, rows[i].Quartz)
		}
	}
}
