package experiments

import (
	"context"
	"reflect"
	"testing"
)

// meanDelivered averages Delivered over the windows in the given phase.
func meanDelivered(res *FigureF6Result, phase string) float64 {
	sum, n := 0, 0
	for _, w := range res.Windows {
		if w.Phase == phase {
			sum += w.Delivered
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func TestFigureF6DipAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level run")
	}
	res, err := FigureF6Dynamic(context.Background(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.SeveredLinks == 0 {
		t.Fatal("fiber cut severed no links")
	}
	// The schedule produces cut, reconverge, repair, reconverge.
	if len(res.Changes) != 4 {
		t.Fatalf("recorded %d fault changes, want 4", len(res.Changes))
	}
	if res.Changes[0].Repair || res.Changes[0].Reconverged ||
		!res.Changes[1].Reconverged || !res.Changes[2].Repair ||
		!(res.Changes[3].Repair && res.Changes[3].Reconverged) {
		t.Errorf("change sequence out of order: %+v", res.Changes)
	}
	if res.Changes[0].DeadLinks != res.SeveredLinks {
		t.Errorf("cut left %d links dead, want %d", res.Changes[0].DeadLinks, res.SeveredLinks)
	}

	before := meanDelivered(res, "before")
	rerouted := meanDelivered(res, "rerouted")
	repaired := meanDelivered(res, "repaired")
	if before == 0 || rerouted == 0 || repaired == 0 {
		t.Fatalf("empty phase: before=%.0f rerouted=%.0f repaired=%.0f", before, rerouted, repaired)
	}
	// During the blackhole some streams lose every packet; the affected
	// pairs' traffic must reappear once routes avoid the severed links.
	dropsDuringBlackhole := 0
	for _, w := range res.Windows {
		if w.Phase == "blackhole" {
			dropsDuringBlackhole += w.Dropped
		}
	}
	if dropsDuringBlackhole == 0 {
		t.Error("no drops in the blackhole window despite severed links")
	}
	// Rerouted and repaired phases recover to at least 90% of baseline.
	if rerouted < 0.9*before {
		t.Errorf("rerouted mean %.1f below 90%% of before mean %.1f", rerouted, before)
	}
	if repaired < 0.9*before {
		t.Errorf("repaired mean %.1f below 90%% of before mean %.1f", repaired, before)
	}
	// And drops stop after reconvergence.
	for _, w := range res.Windows[1:] {
		if w.Phase == "repaired" && w.Start > res.Changes[3].At && w.Dropped > 0 {
			t.Errorf("window at %v still dropping after repair reconvergence", w.Start)
		}
	}
}

func TestFigureF6Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level run")
	}
	a, err := FigureF6Dynamic(context.Background(), 2014)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigureF6Dynamic(context.Background(), 2014)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two runs with the same seed differ")
	}
	if RenderFigureF6(a) == "" {
		t.Error("empty rendering")
	}
}

func TestFigureF6Cancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FigureF6Dynamic(ctx, 1); err == nil {
		t.Error("cancelled context did not abort the run")
	}
}
