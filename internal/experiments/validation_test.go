package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestSimulatorValidation(t *testing.T) {
	rows, err := SimulatorValidation(context.Background(), 99, 80_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	t.Log("\n" + RenderValidation(rows))
	for _, r := range rows {
		tolerance := 8.0
		if strings.Contains(r.Model, "M/M/1") {
			// Truncation perturbs the service distribution's second
			// moment; allow a wider band.
			tolerance = 20.0
		}
		if r.Rho >= 0.9 {
			tolerance = 12.0 // slow mixing near saturation
		}
		if r.ErrorPct > tolerance {
			t.Errorf("%s rho=%.1f: theory %.3fus vs sim %.3fus (%.1f%% > %.0f%%)",
				r.Model, r.Rho, r.TheoryUs, r.MeasuredUs, r.ErrorPct, tolerance)
		}
	}
	// Waits grow with utilization within each model.
	for i := 1; i < 4; i++ {
		if rows[i].MeasuredUs <= rows[i-1].MeasuredUs {
			t.Errorf("M/D/1 wait not increasing with rho: %v then %v", rows[i-1].MeasuredUs, rows[i].MeasuredUs)
		}
	}
}
