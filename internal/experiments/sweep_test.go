package experiments

import (
	"context"
	"reflect"
	"testing"
)

// runPartitioned executes a sweep as a set of contiguous ranges (the
// cluster coordinator's shape) and merges the blocks.
func runPartitioned(t *testing.T, sw *Sweep, p Params, cuts []int) Output {
	t.Helper()
	n := sw.Cells(p)
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, n)
	var blocks []CellBlock
	for i := 0; i+1 < len(bounds); i++ {
		// Round-trip each block through its wire form, as a worker
		// sub-job result would.
		out, err := sw.RunRange(context.Background(), p, bounds[i], bounds[i+1])
		if err != nil {
			t.Fatalf("RunRange[%d,%d): %v", bounds[i], bounds[i+1], err)
		}
		b, err := DecodeBlock(out.Text)
		if err != nil {
			t.Fatalf("DecodeBlock[%d,%d): %v", bounds[i], bounds[i+1], err)
		}
		blocks = append(blocks, b)
	}
	out, err := sw.Merge(p, blocks)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return out
}

// TestSweepPartitionDeterminism: for each registered sweep, the
// whole-grid run and a partitioned run that crosses the wire merge to
// byte-identical output — the invariant the cluster coordinator relies
// on for worker-count independence.
func TestSweepPartitionDeterminism(t *testing.T) {
	p := Params{Seed: 2014}.WithDefaults()
	for _, tc := range []struct {
		name string
		sw   *Sweep
		cuts []int
	}{
		{"table8", table8Sweep, []int{5, 9}},
		{"ablations", ablationSweep, []int{1, 6, 13}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			whole, err := tc.sw.Run(context.Background(), p)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			split := runPartitioned(t, tc.sw, p, tc.cuts)
			if whole.Text != split.Text {
				t.Errorf("partitioned text differs from whole-grid text:\n--- whole ---\n%s\n--- split ---\n%s", whole.Text, split.Text)
			}
			if !reflect.DeepEqual(whole.CSV, split.CSV) {
				t.Errorf("partitioned CSV rows differ from whole-grid rows")
			}
		})
	}
}

// TestSweepRegistryIdentity: registry entries that publish a sweep run
// through it, so Find(...).Run and a cluster merge share one code path.
func TestSweepRegistryIdentity(t *testing.T) {
	for _, name := range []string{"table8", "ablations"} {
		exp, ok := Find(name)
		if !ok {
			t.Fatalf("registry entry %q missing", name)
		}
		if exp.Sweep == nil {
			t.Errorf("%s: no Sweep published", name)
			continue
		}
		if exp.Sweep.Cells(DefaultParams()) <= 1 {
			t.Errorf("%s: degenerate grid", name)
		}
	}
	// Non-divisible experiments must not publish a grid by accident.
	if exp, _ := Find("table2"); exp.Sweep != nil {
		t.Errorf("table2 unexpectedly publishes a sweep")
	}
}

// TestSweepMergeRejectsBadCoverage: gaps, overlaps, and length
// mismatches are merge errors, never silent corruption.
func TestSweepMergeRejectsBadCoverage(t *testing.T) {
	mk := func(lo, hi int, vals []float64) CellBlock {
		b, err := encodeBlock(lo, hi, vals)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := map[string][]CellBlock{
		"gap":      {mk(0, 2, []float64{1, 2}), mk(3, 4, []float64{4})},
		"overlap":  {mk(0, 3, []float64{1, 2, 3}), mk(2, 4, []float64{3, 4})},
		"short":    {mk(0, 4, []float64{1, 2})},
		"missing":  {mk(0, 2, []float64{1, 2})},
		"inverted": {mk(2, 1, []float64{9})},
	}
	for name, blocks := range cases {
		if _, err := mergeBlocks[float64](4, blocks); err == nil {
			t.Errorf("%s: merge accepted invalid coverage", name)
		}
	}
}

// TestCacheKeyRange: range sub-keys are distinct from the whole-grid
// key and from each other; the degenerate (0,0) request aliases
// CacheKey so whole-job lookups are unchanged.
func TestCacheKeyRange(t *testing.T) {
	p := Params{Seed: 7}
	full := CacheKey("table8", p)
	if got := CacheKeyRange("table8", p, 0, 0); got != full {
		t.Errorf("degenerate range key %s != CacheKey %s", got, full)
	}
	a := CacheKeyRange("table8", p, 0, 6)
	b := CacheKeyRange("table8", p, 6, 12)
	c := CacheKeyRange("table8", p, 0, 12)
	keys := map[string]bool{full: true, a: true, b: true, c: true}
	if len(keys) != 4 {
		t.Errorf("range keys collide: full=%s [0,6)=%s [6,12)=%s [0,12)=%s", full, a, b, c)
	}
	// Canonicalization applies to range keys too: explicit defaults and
	// zero values share a key.
	if CacheKeyRange("table8", Params{}, 0, 6) != CacheKeyRange("table8", DefaultParams(), 0, 6) {
		t.Errorf("range keys not canonicalized over defaults")
	}
}
