package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// FigureF6Dynamic is the dynamic companion to Figure 6 (§3.5): instead
// of Monte-Carlo counting which channels a fiber cut destroys, it runs
// the packet simulator through an actual cut — permutation traffic on a
// single Quartz ring, one fiber segment severed mid-run and repaired
// later — and measures throughput and latency before, during, and
// after, with the blackhole window set by the detection delay.

// Timing of the experiment (virtual time).
const (
	figF6Window    = 500 * sim.Microsecond
	figF6Duration  = 10 * sim.Millisecond
	figF6CutAt     = 3 * sim.Millisecond
	figF6RepairAt  = 7 * sim.Millisecond
	figF6Detection = 500 * sim.Microsecond
)

// FigureF6Window is one measurement window.
type FigureF6Window struct {
	Start sim.Time
	// Phase is where the window falls relative to the cut: "before",
	// "blackhole" (cut but not yet reconverged), "rerouted" (routes
	// avoid the severed links), or "repaired".
	Phase     string
	Delivered int
	Dropped   int
	// ThroughputGbps is delivered goodput over the window.
	ThroughputGbps float64
	// MeanLatencyUS is the mean delivery latency in the window (0 when
	// nothing was delivered).
	MeanLatencyUS float64
}

// FigureF6Result is the full run.
type FigureF6Result struct {
	Windows []FigureF6Window
	// SeveredLinks is how many logical mesh links the cut destroyed.
	SeveredLinks int
	// Changes logs the fault transitions (cut, repair, reconvergences).
	Changes []netsim.FaultChange
	// TotalDelivered and TotalDropped count the whole run.
	TotalDelivered, TotalDropped uint64
}

// FigureF6Dynamic runs permutation traffic across a single Quartz ring
// (QuartzRingArch), cuts fiber 0 segment 0 at 3 ms, repairs it at 7 ms,
// and reports 500 µs windows. Routes reconverge 500 µs after each
// transition. Deterministic for a given seed.
func FigureF6Dynamic(ctx context.Context, seed int64) (*FigureF6Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	arch, err := core.QuartzRingArch(core.ArchParams{})
	if err != nil {
		return nil, err
	}
	numWindows := int(figF6Duration / figF6Window)
	res := &FigureF6Result{Windows: make([]FigureF6Window, numWindows)}
	latSum := make([]float64, numWindows)
	window := func(at sim.Time) int {
		i := int(at / figF6Window)
		if i >= numWindows {
			i = numWindows - 1
		}
		return i
	}
	net, err := netsim.New(netsim.Config{
		Graph:       arch.Graph,
		Router:      arch.Router,
		SwitchModel: arch.Model,
		OnDeliver: func(d netsim.Delivery) {
			i := window(d.At)
			res.Windows[i].Delivered++
			res.Windows[i].ThroughputGbps += float64(d.Packet.Size) * 8
			latSum[i] += d.Latency.Micros()
		},
		OnDrop: func(d netsim.Drop) {
			res.Windows[window(d.At)].Dropped++
		},
	})
	if err != nil {
		return nil, err
	}

	fi, err := arch.Ring.AttachFaults(net)
	if err != nil {
		return nil, err
	}
	fi.OnChange = func(c netsim.FaultChange) {
		res.Changes = append(res.Changes, c)
	}
	severed, err := arch.Ring.FiberLinks(0, 0)
	if err != nil {
		return nil, err
	}
	res.SeveredLinks = len(severed)
	if err := fi.Apply(netsim.FaultSchedule{
		Events: []netsim.FaultEvent{{
			Kind: netsim.FaultFiber, Fiber: 0, Segment: 0,
			At: figF6CutAt, RepairAt: figF6RepairAt,
		}},
		DetectionDelay: figF6Detection,
		Policy:         netsim.DropInFlight,
	}); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	hosts := arch.Graph.Hosts()
	task := &traffic.Task{}
	for i, pr := range traffic.RandomPermutation(hosts, rng) {
		task.Add(&traffic.Stream{
			Net: net, Src: pr[0], Dst: pr[1],
			Flow: routing.FlowID(1<<20 + i), RatePPS: 20e3, Size: 1500, Tag: 1,
			Rand: rand.New(rand.NewSource(rng.Int63())),
		})
	}
	if err := task.Start(figF6Duration); err != nil {
		return nil, err
	}
	// Poll for cancellation at window granularity; a cancelled run stops
	// the engine and reports ctx.Err.
	eng := net.Engine()
	var watch func()
	watch = func() {
		if ctx.Err() != nil {
			eng.Stop()
			return
		}
		if eng.Now()+figF6Window < figF6Duration {
			eng.After(figF6Window, watch)
		}
	}
	eng.After(figF6Window, watch)
	eng.RunUntil(figF6Duration + 2*sim.Millisecond)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for i := range res.Windows {
		w := &res.Windows[i]
		w.Start = sim.Time(i) * figF6Window
		switch {
		case w.Start < figF6CutAt:
			w.Phase = "before"
		case w.Start < figF6CutAt+figF6Detection:
			w.Phase = "blackhole"
		case w.Start < figF6RepairAt:
			w.Phase = "rerouted"
		default:
			w.Phase = "repaired"
		}
		w.ThroughputGbps /= figF6Window.Seconds() * 1e9
		if w.Delivered > 0 {
			w.MeanLatencyUS = latSum[i] / float64(w.Delivered)
		}
	}
	res.TotalDelivered = net.Delivered()
	res.TotalDropped = net.Dropped()
	return res, nil
}

// RenderFigureF6 renders the windows as a table.
func RenderFigureF6(res *FigureF6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure F6 (dynamic): fiber cut at %v, repair at %v, reconvergence after %v (%d links severed)\n",
		figF6CutAt, figF6RepairAt, figF6Detection, res.SeveredLinks)
	fmt.Fprintf(&b, "%10s %11s %10s %8s %12s %12s\n",
		"t (us)", "phase", "delivered", "dropped", "gbps", "latency(us)")
	for _, w := range res.Windows {
		fmt.Fprintf(&b, "%10.0f %11s %10d %8d %12.2f %12.2f\n",
			w.Start.Micros(), w.Phase, w.Delivered, w.Dropped, w.ThroughputGbps, w.MeanLatencyUS)
	}
	fmt.Fprintf(&b, "total: %d delivered, %d dropped\n", res.TotalDelivered, res.TotalDropped)
	return b.String()
}
