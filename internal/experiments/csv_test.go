package experiments

import (
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/sim"
)

func TestWriteCSVPlainRows(t *testing.T) {
	rows := Figure5(6, 1)
	var buf strings.Builder
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "RingSize,Greedy,Optimal" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != len(rows)+1 {
		t.Errorf("lines = %d, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[1], "2,1,1") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWriteCSVMapColumns(t *testing.T) {
	rows := []Figure17Row{
		{Tasks: 1, Latency: map[string]float64{"tree": 9.5, "mesh": 3.1}, CI: map[string]float64{"tree": 0.1, "mesh": 0.05}},
		{Tasks: 2, Latency: map[string]float64{"tree": 11.0, "mesh": 3.2}, CI: map[string]float64{"tree": 0.2, "mesh": 0.05}},
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "Tasks,Latency:mesh,Latency:tree,CI:mesh,CI:tree" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,3.1,9.5,0.05,0.1" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteCSVSimTypes(t *testing.T) {
	type row struct {
		T    sim.Time
		R    sim.Rate
		Flag bool
	}
	rows := []row{{T: 2500 * sim.Nanosecond, R: 10 * sim.Gbps, Flag: true}}
	var buf strings.Builder
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[1] != "2.500,10000000000,1" {
		t.Errorf("row = %q (times in us, rates in bps, bools as 0/1)", lines[1])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf strings.Builder
	if err := WriteCSV(&buf, 42); err == nil {
		t.Error("non-slice accepted")
	}
	if err := WriteCSV(&buf, []int{1}); err == nil {
		t.Error("non-struct elements accepted")
	}
	if err := WriteCSV(&buf, []Figure5Row{}); err == nil {
		t.Error("empty slice accepted")
	}
}
