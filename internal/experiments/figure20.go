package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// Figure20Row is one x-position of Figure 20: mean packet latency for
// the pathological switch-pair pattern at a given aggregate bandwidth.
type Figure20Row struct {
	// Aggregate is the traffic pushed from switch S1's hosts to switch
	// S2's hosts.
	Aggregate sim.Rate
	// NonBlocking is the latency through an idealized non-blocking core
	// switch (µs).
	NonBlocking float64
	// QuartzECMP uses only the direct S1-S2 channel; it saturates past
	// the 40 Gb/s link rate ("unbounded" in the paper, marked 125 µs).
	QuartzECMP float64
	// QuartzVLB spreads over the direct and two-hop paths.
	QuartzVLB float64
	// ECMPSaturated flags the unbounded regime.
	ECMPSaturated bool
}

// fig20Ring builds the 4-switch 40 GbE Quartz ring of Figure 19(a) with
// four 40 Gb/s hosts per switch.
func fig20Ring() (*topology.Graph, error) {
	g, err := topology.NewFullMesh(topology.MeshConfig{
		Switches:       4,
		HostsPerSwitch: 4,
		HostLink:       topology.LinkSpec{Rate: 40 * sim.Gbps},
		MeshLink:       topology.LinkSpec{Rate: 40 * sim.Gbps},
	})
	if err != nil {
		return nil, err
	}
	g.Name = "fig20-quartz-ring"
	return g, nil
}

// fig20Star builds the non-blocking core switch of Figure 19(b): all
// hosts on one big switch over 40 Gb/s links.
func fig20Star() *topology.Graph {
	g := topology.New("fig20-core-switch")
	core := g.AddSwitch("core", topology.TierCore, -1)
	for r := 0; r < 2; r++ {
		for h := 0; h < 4; h++ {
			host := g.AddHost(fmt.Sprintf("h%d-%d", r, h), r)
			g.Connect(host, core, 40*sim.Gbps, topology.DefaultProp)
		}
	}
	return g
}

// nonBlockingCore models the §7.2 comparison switch: a store-and-
// forward chassis with the CCS's 6 µs transit but a non-blocking
// fabric — by the figure's premise it never congests internally, so
// its ports run at wire speed.
var nonBlockingCore = netsim.SwitchModel{
	Name:        "CCS-NB",
	Latency:     6 * sim.Microsecond,
	CutThrough:  false,
	BufferBytes: 4 << 20,
}

// fig20PacketSize: the pathological flows are bulk traffic; full-size
// frames keep the event counts tractable at 50 Gb/s.
const fig20PacketSize = 1500

// runFig20 measures mean latency for the pattern on one system.
func runFig20(g *topology.Graph, router routing.Router, model func(topology.Node) netsim.SwitchModel,
	vlb *routing.VLB, aggregate sim.Rate, seed int64) (float64, bool, error) {
	h := traffic.NewHarness()
	net, err := netsim.New(netsim.Config{
		Graph: g, Router: router, SwitchModel: model, OnDeliver: h.Deliver,
	})
	if err != nil {
		return 0, false, err
	}
	srcs := g.HostsInRack(0)
	dsts := g.HostsInRack(1)
	rng := rand.New(rand.NewSource(seed))
	task := &traffic.Task{}
	perFlow := float64(aggregate) / float64(len(srcs))
	pps := perFlow / (fig20PacketSize * 8)
	for i := range srcs {
		s := &traffic.Stream{
			Net: net, Src: srcs[i], Dst: dsts[i],
			Flow: routing.FlowID(i), RatePPS: pps, Size: fig20PacketSize,
			Tag: 1, VLB: vlb,
			Rand: rand.New(rand.NewSource(rng.Int63())),
		}
		task.Add(s)
	}
	const warm = 200 * sim.Microsecond
	const measure = 3 * sim.Millisecond
	if err := task.Start(warm + measure); err != nil {
		return 0, false, err
	}
	net.Engine().Run()
	lat := h.Latency(1)
	if lat.N() == 0 {
		return 0, false, fmt.Errorf("figure20: nothing delivered")
	}
	saturated := net.Dropped() > net.Delivered()/100
	return lat.Mean(), saturated, nil
}

// Figure20 sweeps aggregate S1→S2 traffic from 10 to 50 Gb/s over the
// three systems of §7.2: a non-blocking core switch, Quartz with ECMP
// (direct paths only), and Quartz with VLB (40% of traffic detoured
// over the two-hop paths). Cancelling ctx aborts between load levels.
func Figure20(ctx context.Context, seed int64) ([]Figure20Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ring, err := fig20Ring()
	if err != nil {
		return nil, err
	}
	star := fig20Star()
	ecmp := routing.NewECMPPerPacket(ring)
	vlb, err := routing.NewVLB(ring, 0.4)
	if err != nil {
		return nil, err
	}
	starModel := func(topology.Node) netsim.SwitchModel { return nonBlockingCore }
	ull := func(topology.Node) netsim.SwitchModel { return netsim.Arista7150 }

	var rows []Figure20Row
	for gbps := 10; gbps <= 50; gbps += 10 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		agg := sim.Rate(gbps) * sim.Gbps
		nb, _, err := runFig20(star, routing.NewECMPPerPacket(star), starModel, nil, agg, seed)
		if err != nil {
			return nil, err
		}
		em, esat, err := runFig20(ring, ecmp, ull, nil, agg, seed+1)
		if err != nil {
			return nil, err
		}
		vm, _, err := runFig20(ring, vlb, ull, vlb, agg, seed+2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure20Row{
			Aggregate:     agg,
			NonBlocking:   nb,
			QuartzECMP:    em,
			QuartzVLB:     vm,
			ECMPSaturated: esat,
		})
	}
	return rows, nil
}

// RenderFigure20 renders the sweep.
func RenderFigure20(rows []Figure20Row) string {
	var b strings.Builder
	b.WriteString("Figure 20: pathological pattern, latency per packet (us)\n")
	fmt.Fprintf(&b, "%14s %14s %18s %14s\n", "traffic (Gb/s)", "non-blocking", "quartz ECMP", "quartz VLB")
	for _, r := range rows {
		ecmp := fmt.Sprintf("%.2f", r.QuartzECMP)
		if r.ECMPSaturated {
			ecmp += " (saturated)"
		}
		fmt.Fprintf(&b, "%14d %14.2f %18s %14.2f\n",
			int64(r.Aggregate/sim.Gbps), r.NonBlocking, ecmp, r.QuartzVLB)
	}
	return b.String()
}
