package experiments

import (
	"context"
	"strings"
	"testing"

	"github.com/quartz-dcn/quartz/internal/trace"
)

// TestShardedThroughput runs the shard sweep with a small task count
// and checks the built-in identity gate: every shard count delivers
// and drops exactly the same packets. The speedup column is informative
// only — on a single-CPU runner there is nothing to win.
func TestShardedThroughput(t *testing.T) {
	rows, err := ShardedThroughput(context.Background(), nil, Params{Tasks: 2, Seed: 2014})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ShardedShardCounts) {
		t.Fatalf("got %d rows, want %d", len(rows), len(ShardedShardCounts))
	}
	if rows[0].Delivered == 0 {
		t.Fatal("baseline run delivered nothing")
	}
	for _, r := range rows {
		if r.Events == 0 {
			t.Errorf("%d shards processed no events", r.Shards)
		}
		if r.Delivered != rows[0].Delivered || r.Dropped != rows[0].Dropped {
			t.Errorf("%d shards delivered/dropped %d/%d, want %d/%d",
				r.Shards, r.Delivered, r.Dropped, rows[0].Delivered, rows[0].Dropped)
		}
	}
	out := RenderSharded(rows)
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "delivered") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

// TestShardedThroughputTrace checks the hook plumbing: with a recorder
// attached, each run records experiment-level build/run spans and the
// synchronizer contributes engine window spans.
func TestShardedThroughputTrace(t *testing.T) {
	rec := trace.NewRecorder()
	_, err := ShardedThroughput(context.Background(), []int{2}, Params{Tasks: 1, Seed: 2014, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, s := range rec.Spans() {
		names[s.Cat+"/"+s.Name]++
	}
	for _, want := range []string{"experiment/build", "experiment/run", "engine/window", "engine/barrier"} {
		if names[want] == 0 {
			t.Fatalf("no %s spans recorded (got %v)", want, names)
		}
	}
}
