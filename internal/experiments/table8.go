package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/cost"
)

// Table8Row is one comparison of the §4.4 configurator: a baseline
// topology against a Quartz deployment at one datacenter size and
// utilization level.
type Table8Row struct {
	Size        string // "Small", "Medium", "Large"
	Servers     int
	Utilization string // "Low", "High"
	Baseline    string
	Quartz      string
	// Cost per server, USD, from the calibrated 2014 parts catalog.
	BaselineCostPerServer float64
	QuartzCostPerServer   float64
	// LatencyReduction is 1 - quartz/baseline mean latency, measured by
	// the packet simulator under a global scatter workload.
	LatencyReduction float64
}

// table8LoadTasks maps the utilization levels onto background task
// counts for the §7-scale simulations: "low" corresponds to a mean core
// utilization of ~50%, "high" to ~70-80%.
var table8LoadTasks = map[string]int{"Low": 4, "High": 7}

// table8Latency measures the mean global-scatter latency of an
// architecture at one load level.
func table8Latency(archName string, tasks int, seed int64) (float64, error) {
	var arch *core.Architecture
	var err error
	switch archName {
	case "two-tier tree":
		arch, err = core.TwoTierTreeArch(core.ArchParams{})
	case "single Quartz ring":
		arch, err = core.QuartzRingArch(core.ArchParams{})
	default:
		arch, err = buildArch(archName, rand.New(rand.NewSource(seed)))
	}
	if err != nil {
		return 0, err
	}
	params := defaultFig17Params(ScatterKind)
	mean, _, err := runTasks(arch, ScatterKind, tasks, false, params, seed)
	return mean, err
}

// table8Scenario is one configurator comparison point with its costed
// bills of materials.
type table8Scenario struct {
	size, util         string
	servers            int
	baseline, quartz   string
	baseBOM, quartzBOM *cost.BOM
}

// table8Scenarios builds the paper's six configurator scenarios. The
// BOMs are pure parts-catalog arithmetic (no simulation), so the merge
// side of the sweep can rebuild them cheaply.
func table8Scenarios() ([]table8Scenario, error) {
	c := cost.Default2014
	small := 500
	medium := 10_000
	large := 100_000

	ringBOM, err := cost.QuartzRing(small, c)
	if err != nil {
		return nil, err
	}
	return []table8Scenario{
		{"Small", "Low", small, "two-tier tree", "single Quartz ring", cost.TwoTierTree(small, c), ringBOM},
		{"Small", "High", small, "two-tier tree", "single Quartz ring", cost.TwoTierTree(small, c), ringBOM},
		{"Medium", "Low", medium, "three-tier tree", "quartz in edge", cost.ThreeTierTree(medium, c), cost.QuartzEdge(medium, c)},
		{"Medium", "High", medium, "three-tier tree", "quartz in edge", cost.ThreeTierTree(medium, c), cost.QuartzEdge(medium, c)},
		{"Large", "Low", large, "three-tier tree", "quartz in core", cost.ThreeTierTree(large, c), cost.QuartzCore(large, c)},
		{"Large", "High", large, "three-tier tree", "quartz in edge and core", cost.ThreeTierTree(large, c), cost.QuartzEdgeAndCore(large, c)},
	}, nil
}

// table8Cell is one (scenario, arm) simulation of the configurator
// grid.
type table8Cell struct {
	arch  string
	tasks int
	seed  int64
	label string
}

// table8Grid flattens the scenarios into the 12-cell simulation grid:
// two arms (baseline, quartz) per scenario, each an independent
// simulation with a fixed seed — the forEachCell index discipline the
// cluster coordinator shards on.
func table8Grid(seed int64) ([]table8Cell, error) {
	scenarios, err := table8Scenarios()
	if err != nil {
		return nil, err
	}
	cells := make([]table8Cell, 0, 2*len(scenarios))
	for i, sc := range scenarios {
		tasks := table8LoadTasks[sc.util]
		cells = append(cells,
			table8Cell{sc.baseline, tasks, seed + int64(i), fmt.Sprintf("%s/%s baseline", sc.size, sc.util)},
			table8Cell{sc.quartz, tasks, seed + int64(i), fmt.Sprintf("%s/%s quartz", sc.size, sc.util)})
	}
	return cells, nil
}

// table8CellCount is the grid size: two arms per scenario.
const table8CellCount = 12

// Table8Range measures the mean latencies of grid cells [lo, hi):
// the distributable unit of the Table 8 sweep. Results are indexed
// from the range start (slot k holds cell lo+k).
func Table8Range(ctx context.Context, seed int64, lo, hi int, hooks *Hooks) ([]float64, error) {
	cells, err := table8Grid(seed)
	if err != nil {
		return nil, err
	}
	if err := checkRange(len(cells), lo, hi); err != nil {
		return nil, fmt.Errorf("table8: %w", err)
	}
	lats := make([]float64, hi-lo)
	err = forEachCell(ctx, hi-lo, hooks, func(k int) error {
		c := cells[lo+k]
		lat, err := table8Latency(c.arch, c.tasks, c.seed)
		if err != nil {
			return fmt.Errorf("table8 %s: %w", c.label, err)
		}
		lats[k] = lat
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lats, nil
}

// Table8Merge assembles the final rows from the full grid's latencies
// (index discipline of table8Grid: cell 2i is scenario i's baseline,
// 2i+1 its quartz arm).
func Table8Merge(lats []float64) ([]Table8Row, error) {
	scenarios, err := table8Scenarios()
	if err != nil {
		return nil, err
	}
	if len(lats) != 2*len(scenarios) {
		return nil, fmt.Errorf("table8 merge: %d latencies for %d scenarios", len(lats), len(scenarios))
	}
	rows := make([]Table8Row, 0, len(scenarios))
	for i, sc := range scenarios {
		rows = append(rows, Table8Row{
			Size:                  sc.size,
			Servers:               sc.servers,
			Utilization:           sc.util,
			Baseline:              sc.baseline,
			Quartz:                sc.quartz,
			BaselineCostPerServer: sc.baseBOM.PerServer(),
			QuartzCostPerServer:   sc.quartzBOM.PerServer(),
			LatencyReduction:      1 - lats[2*i+1]/lats[2*i],
		})
	}
	return rows, nil
}

// Table8 reproduces the configurator comparison: cost per server from
// the parts catalog and latency reduction from simulation, for the
// paper's six scenarios. Cancelling ctx stops the sweep between cells;
// hooks (may be nil) carries the progress and trace hooks. It is the
// whole-grid composition of Table8Range and Table8Merge, so a cluster
// run of the same grid merges to byte-identical rows.
func Table8(ctx context.Context, seed int64, hooks *Hooks) ([]Table8Row, error) {
	lats, err := Table8Range(ctx, seed, 0, table8CellCount, hooks)
	if err != nil {
		return nil, err
	}
	return Table8Merge(lats)
}

// Table8Sweep publishes the Table 8 grid for distributed execution.
func Table8Sweep() *Sweep {
	return &Sweep{
		Cells: func(Params) int { return table8CellCount },
		RunCells: func(ctx context.Context, p Params, lo, hi int) (CellBlock, error) {
			lats, err := Table8Range(ctx, p.Seed, lo, hi, p.hooks())
			if err != nil {
				return CellBlock{}, err
			}
			return encodeBlock(lo, hi, lats)
		},
		Merge: func(p Params, blocks []CellBlock) (Output, error) {
			lats, err := mergeBlocks[float64](table8CellCount, blocks)
			if err != nil {
				return Output{}, fmt.Errorf("table8: %w", err)
			}
			rows, err := Table8Merge(lats)
			if err != nil {
				return Output{}, err
			}
			return Output{Text: RenderTable8(rows), CSV: map[string]interface{}{"table8": rows}}, nil
		},
	}
}

// RenderTable8 renders the configurator table.
func RenderTable8(rows []Table8Row) string {
	var b strings.Builder
	b.WriteString("Table 8: approximate cost and latency comparison\n")
	fmt.Fprintf(&b, "%-8s %-6s %-18s %-24s %10s %18s\n",
		"size", "util", "baseline", "quartz option", "reduction", "$/server (b vs q)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6s %-18s %-24s %9.0f%% %9.0f vs %.0f\n",
			fmt.Sprintf("%s(%d)", r.Size, r.Servers), r.Utilization,
			r.Baseline, r.Quartz, 100*r.LatencyReduction,
			r.BaselineCostPerServer, r.QuartzCostPerServer)
	}
	return b.String()
}
