package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/cost"
)

// Table8Row is one comparison of the §4.4 configurator: a baseline
// topology against a Quartz deployment at one datacenter size and
// utilization level.
type Table8Row struct {
	Size        string // "Small", "Medium", "Large"
	Servers     int
	Utilization string // "Low", "High"
	Baseline    string
	Quartz      string
	// Cost per server, USD, from the calibrated 2014 parts catalog.
	BaselineCostPerServer float64
	QuartzCostPerServer   float64
	// LatencyReduction is 1 - quartz/baseline mean latency, measured by
	// the packet simulator under a global scatter workload.
	LatencyReduction float64
}

// table8LoadTasks maps the utilization levels onto background task
// counts for the §7-scale simulations: "low" corresponds to a mean core
// utilization of ~50%, "high" to ~70-80%.
var table8LoadTasks = map[string]int{"Low": 4, "High": 7}

// table8Latency measures the mean global-scatter latency of an
// architecture at one load level.
func table8Latency(archName string, tasks int, seed int64) (float64, error) {
	var arch *core.Architecture
	var err error
	switch archName {
	case "two-tier tree":
		arch, err = core.TwoTierTreeArch(core.ArchParams{})
	case "single Quartz ring":
		arch, err = core.QuartzRingArch(core.ArchParams{})
	default:
		arch, err = buildArch(archName, rand.New(rand.NewSource(seed)))
	}
	if err != nil {
		return 0, err
	}
	params := defaultFig17Params(ScatterKind)
	mean, _, err := runTasks(arch, ScatterKind, tasks, false, params, seed)
	return mean, err
}

// Table8 reproduces the configurator comparison: cost per server from
// the parts catalog and latency reduction from simulation, for the
// paper's six scenarios. Cancelling ctx stops the sweep between cells;
// hooks (may be nil) carries the progress and trace hooks.
func Table8(ctx context.Context, seed int64, hooks *Hooks) ([]Table8Row, error) {
	c := cost.Default2014
	type scenario struct {
		size, util         string
		servers            int
		baseline, quartz   string
		baseBOM, quartzBOM *cost.BOM
	}
	small := 500
	medium := 10_000
	large := 100_000

	ringBOM, err := cost.QuartzRing(small, c)
	if err != nil {
		return nil, err
	}
	scenarios := []scenario{
		{"Small", "Low", small, "two-tier tree", "single Quartz ring", cost.TwoTierTree(small, c), ringBOM},
		{"Small", "High", small, "two-tier tree", "single Quartz ring", cost.TwoTierTree(small, c), ringBOM},
		{"Medium", "Low", medium, "three-tier tree", "quartz in edge", cost.ThreeTierTree(medium, c), cost.QuartzEdge(medium, c)},
		{"Medium", "High", medium, "three-tier tree", "quartz in edge", cost.ThreeTierTree(medium, c), cost.QuartzEdge(medium, c)},
		{"Large", "Low", large, "three-tier tree", "quartz in core", cost.ThreeTierTree(large, c), cost.QuartzCore(large, c)},
		{"Large", "High", large, "three-tier tree", "quartz in edge and core", cost.ThreeTierTree(large, c), cost.QuartzEdgeAndCore(large, c)},
	}

	// Each (scenario, arm) cell simulates independently with a fixed
	// seed; shard all twelve across the worker pool and assemble rows
	// from indexed slots, so the table is byte-identical however many
	// cores run it.
	type cellRef struct {
		arch  string
		tasks int
		seed  int64
		label string
	}
	cells := make([]cellRef, 0, 2*len(scenarios))
	for i, sc := range scenarios {
		tasks := table8LoadTasks[sc.util]
		cells = append(cells,
			cellRef{sc.baseline, tasks, seed + int64(i), fmt.Sprintf("%s/%s baseline", sc.size, sc.util)},
			cellRef{sc.quartz, tasks, seed + int64(i), fmt.Sprintf("%s/%s quartz", sc.size, sc.util)})
	}
	lats := make([]float64, len(cells))
	err = forEachCell(ctx, len(cells), hooks, func(j int) error {
		lat, err := table8Latency(cells[j].arch, cells[j].tasks, cells[j].seed)
		if err != nil {
			return fmt.Errorf("table8 %s: %w", cells[j].label, err)
		}
		lats[j] = lat
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table8Row, 0, len(scenarios))
	for i, sc := range scenarios {
		rows = append(rows, Table8Row{
			Size:                  sc.size,
			Servers:               sc.servers,
			Utilization:           sc.util,
			Baseline:              sc.baseline,
			Quartz:                sc.quartz,
			BaselineCostPerServer: sc.baseBOM.PerServer(),
			QuartzCostPerServer:   sc.quartzBOM.PerServer(),
			LatencyReduction:      1 - lats[2*i+1]/lats[2*i],
		})
	}
	return rows, nil
}

// RenderTable8 renders the configurator table.
func RenderTable8(rows []Table8Row) string {
	var b strings.Builder
	b.WriteString("Table 8: approximate cost and latency comparison\n")
	fmt.Fprintf(&b, "%-8s %-6s %-18s %-24s %10s %18s\n",
		"size", "util", "baseline", "quartz option", "reduction", "$/server (b vs q)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6s %-18s %-24s %9.0f%% %9.0f vs %.0f\n",
			fmt.Sprintf("%s(%d)", r.Size, r.Servers), r.Utilization,
			r.Baseline, r.Quartz, 100*r.LatencyReduction,
			r.BaselineCostPerServer, r.QuartzCostPerServer)
	}
	return b.String()
}
