package experiments

import (
	"context"
	"runtime"
	"sync"
	"time"

	"github.com/quartz-dcn/quartz/internal/trace"
)

// forEachCell runs fn(i) for i in [0, n) on a bounded worker pool and
// returns the first error. Each experiment cell is an independent
// simulation with its own engine and seed, so the sweeps parallelize
// perfectly; results must be written to disjoint slots by index.
//
// h carries the observer hooks (nil means none). h.Progress, when
// non-nil, is called after each successful cell with the number of
// cells completed so far and n. Calls are serialized (never
// concurrent), but completion order is nondeterministic across workers
// — only the final (n, n) call is guaranteed to be last. h.Trace, when
// non-nil, records one wall-only "cell" span per cell in the
// "experiment" category, Track = cell index.
//
// Cancelling ctx stops dispatching new cells; cells already running
// finish, and ctx.Err() is returned. A nil ctx means no cancellation.
func forEachCell(ctx context.Context, n int, h *Hooks, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec := h.trace(); rec.Enabled() {
		inner := fn
		fn = func(i int) error {
			start := time.Now()
			err := inner(i)
			rec.Add(trace.Span{
				Name: "cell", Cat: "experiment", Track: i,
				Wall: rec.Since(start), WallDur: time.Since(start).Nanoseconds(),
			})
			return err
		}
	}
	done := 0
	var progressMu sync.Mutex
	tick := func() {
		if h == nil || h.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		h.Progress(done, n)
		progressMu.Unlock()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
			tick()
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				tick()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
