package experiments

import (
	"context"
	"runtime"
	"sync"
)

// forEachCell runs fn(i) for i in [0, n) on a bounded worker pool and
// returns the first error. Each experiment cell is an independent
// simulation with its own engine and seed, so the sweeps parallelize
// perfectly; results must be written to disjoint slots by index.
//
// progress, when non-nil, is called after each successful cell with
// the number of cells completed so far and n. Calls are serialized
// (never concurrent), but completion order is nondeterministic across
// workers — only the final (n, n) call is guaranteed to be last.
//
// Cancelling ctx stops dispatching new cells; cells already running
// finish, and ctx.Err() is returned. A nil ctx means no cancellation.
func forEachCell(ctx context.Context, n int, progress Progress, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	done := 0
	var progressMu sync.Mutex
	tick := func() {
		if progress == nil {
			return
		}
		progressMu.Lock()
		done++
		progress(done, n)
		progressMu.Unlock()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
			tick()
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				tick()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break dispatch
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
