package experiments

// Sharded-execution throughput: the same fig17-class scatter workload
// run at 1, 2, 4 and 8 shards. Each run reports the synchronizer's
// event throughput; the 1-shard run is the baseline for the speedup
// column. Delivered/dropped counts must be identical across shard
// counts — the sharded engine family is deterministic — and the runner
// fails loudly if they are not, which makes this experiment double as
// a correctness gate for `make bench-diff`.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"github.com/quartz-dcn/quartz/internal/core"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// ShardedRow is one shard count's measurement. Windows counts the
// coordinator epochs the run paid (park/wake barrier round trips),
// Strides the conservative parallel windows executed inside them, and
// WinPerVSec the coordinator-barrier rate per simulated second — the
// synchronizer cost model the per-pair lookahead, epoch batching, and
// global-phase coalescing exist to shrink (see sim.BarrierProfile).
type ShardedRow struct {
	Shards     int
	Events     uint64
	WallMS     float64
	EventsPer  float64 // events per wall second
	Speedup    float64 // vs the 1-shard run
	Delivered  uint64
	Dropped    uint64
	Windows    uint64  // coordinator epochs (expensive barriers)
	Strides    uint64  // conservative windows inside them
	WinPerVSec float64 // epochs per simulated second
	Crossed    uint64  // cross-shard events committed
}

// ShardedShardCounts lists the shard counts the experiment sweeps.
var ShardedShardCounts = []int{1, 2, 4, 8}

// ShardedThroughput runs the scatter workload of Figure 17 (8 tasks,
// 16-way fan-out) on the quartz-in-edge-and-core architecture at each
// shard count in counts (nil means ShardedShardCounts) and measures
// wall-clock event throughput. All runs use the sharded execution path
// (K=1 included) so the comparison isolates parallelism, not engine
// implementation. Returns an error if any run disagrees with the
// baseline on delivered or dropped packets. p supplies Tasks, Seed,
// and the hooks: with p.Trace set each run records its topology-build
// and run spans plus the synchronizer's window/barrier spans.
func ShardedThroughput(ctx context.Context, counts []int, p Params) ([]ShardedRow, error) {
	if counts == nil {
		counts = ShardedShardCounts
	}
	rows := make([]ShardedRow, 0, len(counts))
	for _, k := range counts {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row, err := runShardedScatter(k, p)
		if err != nil {
			return nil, fmt.Errorf("%d shards: %w", k, err)
		}
		if len(rows) > 0 {
			base := rows[0]
			if row.Delivered != base.Delivered || row.Dropped != base.Dropped {
				return nil, fmt.Errorf("%d shards delivered/dropped %d/%d, %d shards gave %d/%d: sharded runs must be identical",
					row.Shards, row.Delivered, row.Dropped, base.Shards, base.Delivered, base.Dropped)
			}
		}
		rows = append(rows, row)
	}
	base := rows[0].WallMS
	for i := range rows {
		if rows[i].WallMS > 0 {
			rows[i].Speedup = base / rows[i].WallMS
		}
	}
	return rows, nil
}

// runShardedScatter builds a fresh architecture and runs the workload
// once at the given shard count.
func runShardedScatter(shards int, p Params) (ShardedRow, error) {
	tasks, seed := p.Tasks, p.Seed
	buildStart := time.Now()
	arch, err := core.QuartzInEdgeAndCore(core.ArchParams{})
	if err != nil {
		return ShardedRow{}, err
	}
	h := traffic.NewShardedHarness(shards)
	net, err := netsim.New(netsim.Config{
		Graph:            arch.Graph,
		Router:           arch.Router,
		SwitchModel:      arch.Model,
		Shards:           shards,
		OnDeliverSharded: h.Deliver,
	})
	if err != nil {
		return ShardedRow{}, err
	}
	p.span("build", shards, buildStart)
	if p.Trace != nil {
		net.Sharded().AttachTrace(sim.ShardedTraceOptions{Recorder: p.Trace})
	}
	profBefore := sim.BarrierProfileSnapshot()
	runStart := time.Now()
	params := defaultFig17Params(ScatterKind)
	rng := rand.New(rand.NewSource(seed))
	hosts := arch.Graph.Hosts()
	end := params.warm + params.measure
	for task := 0; task < tasks; task++ {
		exclude := map[topology.NodeID]bool{}
		members := make([]topology.NodeID, 0, params.receivers+1)
		for len(members) < params.receivers+1 {
			c := hosts[rng.Intn(len(hosts))]
			if exclude[c] {
				continue
			}
			exclude[c] = true
			members = append(members, c)
		}
		t := traffic.Scatter(net, members[0], members[1:], params.pps, 10*(task+1), arch.VLB, rng)
		if err := t.Start(end); err != nil {
			return ShardedRow{}, err
		}
	}
	net.RunUntil(end + 2*sim.Millisecond)
	p.span("run", shards, runStart)
	prof := sim.BarrierProfileSnapshot().Sub(profBefore)
	tel := net.Telemetry()
	return ShardedRow{
		Shards:     shards,
		Events:     tel.Events,
		WallMS:     float64(tel.Wall.Nanoseconds()) / 1e6,
		EventsPer:  tel.EventsPerSec,
		Delivered:  tel.Delivered,
		Dropped:    tel.Dropped,
		Windows:    prof.Windows,
		Strides:    prof.Strides,
		WinPerVSec: prof.WindowsPerVirtualSec,
		Crossed:    prof.CrossShardEvents,
	}, nil
}

// RenderSharded renders the throughput table. Speedup above 1 needs
// spare cores: the table notes the core count the run had.
func RenderSharded(rows []ShardedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded execution: scatter workload, %d CPU(s)\n", runtime.NumCPU())
	fmt.Fprintf(&b, "%7s %12s %10s %12s %9s %11s %9s %9s %9s %10s\n",
		"shards", "events", "wall ms", "events/s", "speedup", "delivered", "dropped", "windows", "strides", "win/vsec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %12d %10.1f %12.0f %8.2fx %11d %9d %9d %9d %10.0f\n",
			r.Shards, r.Events, r.WallMS, r.EventsPer, r.Speedup, r.Delivered, r.Dropped,
			r.Windows, r.Strides, r.WinPerVSec)
	}
	return b.String()
}
