package experiments

import (
	"fmt"
	"strings"

	"github.com/quartz-dcn/quartz/internal/metrics"
	"github.com/quartz-dcn/quartz/internal/netsim"
	"github.com/quartz-dcn/quartz/internal/routing"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/tcp"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// FCTRow reports short-flow completion times for one topology and
// congestion-control mode.
type FCTRow struct {
	Topology string
	Mode     tcp.Mode
	// MeanUs and P99Us are flow completion times in microseconds.
	MeanUs, P99Us float64
	Flows         int
}

// FlowCompletion measures the completion time of short (15 KB) flows
// that share the network with bulk TCP cross-traffic, on the prototype
// tree and mesh wirings, under Reno and DCTCP. It combines the paper's
// two latency levers: topology (the mesh removes the shared trunk) and
// protocol (DCTCP keeps the remaining queues short) — quantifying
// §2.1.4's claim that protocol fixes are "limited by the amount of
// path diversity in the underlying network topology".
func FlowCompletion(seed int64, flows int) ([]FCTRow, error) {
	var rows []FCTRow
	for _, quartz := range []bool{false, true} {
		name := "two-tier tree"
		if quartz {
			name = "quartz mesh"
		}
		for _, mode := range []tcp.Mode{tcp.Reno, tcp.DCTCP} {
			mean, p99, n, err := runFCT(quartz, mode, flows, seed)
			if err != nil {
				return nil, fmt.Errorf("fct %s/%v: %w", name, mode, err)
			}
			rows = append(rows, FCTRow{Topology: name, Mode: mode, MeanUs: mean, P99Us: p99, Flows: n})
		}
	}
	return rows, nil
}

func runFCT(quartz bool, mode tcp.Mode, flows int, seed int64) (mean, p99 float64, n int, err error) {
	g, hosts, _, err := prototype(quartz)
	if err != nil {
		return 0, 0, 0, err
	}
	h := traffic.NewHarness()
	// The prototype's 1 Gb/s switches with ECN marking at 30 KB, as
	// DCTCP recommends for gigabit links.
	model := prototypeSwitch(g.Node(g.Switches()[0]))
	model.ECNThresholdBytes = 30_000
	net, err := netsim.New(netsim.Config{
		Graph:       g,
		Router:      routing.NewECMP(g),
		SwitchModel: func(topology.Node) netsim.SwitchModel { return model },
		Host:        netsim.HostModel{NICLatency: 10 * sim.Microsecond, ForwardLatency: 15 * sim.Microsecond, BufferBytes: 1 << 20},
		OnDeliver:   h.Deliver,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	// Background: two bulk flows from S4's servers into the second
	// server on S3 — through the shared trunk on the tree, around it on
	// the mesh.
	for i, src := range []topology.NodeID{hosts[4], hosts[5]} {
		bulk, err := tcp.New(tcp.Config{
			Net: net, Harness: h,
			Src: src, Dst: hosts[3],
			Flow: routing.FlowID(5000 + 10*i), Mode: mode,
			DataTag: 500 + 2*i, AckTag: 501 + 2*i,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		bulk.Start()
	}
	// Foreground: sequential 15 KB flows from the first server on S2 to
	// the first on S3 (the RPC pair of Figure 13).
	var fcts metrics.Sample
	eng := net.Engine()
	done := 0
	var launch func()
	launch = func() {
		if done >= flows {
			return
		}
		tagBase := 1000 + 4*done
		conn, cerr := tcp.New(tcp.Config{
			Net: net, Harness: h,
			Src: hosts[0], Dst: hosts[2],
			Flow:    routing.FlowID(9000 + uint64(done)),
			DataTag: tagBase, AckTag: tagBase + 1,
			Bytes: 15_000, Mode: mode,
			OnComplete: func(fct sim.Time) {
				fcts.Add(fct.Micros())
				done++
				eng.After(50*sim.Microsecond, launch)
			},
		})
		if cerr != nil {
			err = cerr
			eng.Stop()
			return
		}
		conn.Start()
	}
	// Let the bulk flows ramp before measuring.
	eng.After(5*sim.Millisecond, launch)
	for done < flows && eng.Pending() > 0 {
		eng.RunUntil(eng.Now() + 20*sim.Millisecond)
		if err != nil {
			return 0, 0, 0, err
		}
		if eng.Now() > 30*sim.Second {
			return 0, 0, 0, fmt.Errorf("short flows starved: %d/%d after %v", done, flows, eng.Now())
		}
	}
	return fcts.Mean(), fcts.Percentile(99), fcts.N(), nil
}

// RenderFCT renders the comparison.
func RenderFCT(rows []FCTRow) string {
	var b strings.Builder
	b.WriteString("Flow completion time: 15 KB flows under bulk TCP cross-traffic\n")
	fmt.Fprintf(&b, "%-16s %-8s %12s %12s %8s\n", "topology", "cctrl", "mean (us)", "p99 (us)", "flows")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-8s %12.1f %12.1f %8d\n", r.Topology, r.Mode, r.MeanUs, r.P99Us, r.Flows)
	}
	return b.String()
}
