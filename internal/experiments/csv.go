package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"sort"

	"github.com/quartz-dcn/quartz/internal/sim"
)

// WriteCSV writes a slice of flat row structs as CSV: one column per
// exported field, with map-valued fields (architecture -> value)
// expanded into one column per key, sorted. It exists so every
// experiment's rows can be exported for external plotting without
// per-type boilerplate:
//
//	rows, _ := experiments.Figure17(experiments.ScatterKind, 8, seed)
//	experiments.WriteCSV(os.Stdout, rows)
func WriteCSV(w io.Writer, rows interface{}) error {
	v := reflect.ValueOf(rows)
	if v.Kind() != reflect.Slice {
		return fmt.Errorf("experiments: WriteCSV needs a slice, got %T", rows)
	}
	if v.Len() == 0 {
		return fmt.Errorf("experiments: WriteCSV: empty row set")
	}
	elemT := v.Type().Elem()
	if elemT.Kind() != reflect.Struct {
		return fmt.Errorf("experiments: WriteCSV needs a slice of structs, got %T", rows)
	}

	// Build the column plan from the first element: plain fields in
	// declaration order, then each map field's keys sorted.
	type column struct {
		field  int
		mapKey string // non-empty for expanded map columns
	}
	var header []string
	var cols []column
	first := v.Index(0)
	for f := 0; f < elemT.NumField(); f++ {
		ft := elemT.Field(f)
		if !ft.IsExported() {
			continue
		}
		fv := first.Field(f)
		if fv.Kind() == reflect.Map && fv.Type().Key().Kind() == reflect.String {
			var keys []string
			for _, k := range fv.MapKeys() {
				keys = append(keys, k.String())
			}
			sort.Strings(keys)
			for _, k := range keys {
				header = append(header, ft.Name+":"+k)
				cols = append(cols, column{field: f, mapKey: k})
			}
			continue
		}
		header = append(header, ft.Name)
		cols = append(cols, column{field: f})
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < v.Len(); i++ {
		row := v.Index(i)
		record := make([]string, 0, len(cols))
		for _, c := range cols {
			fv := row.Field(c.field)
			if c.mapKey != "" {
				fv = fv.MapIndex(reflect.ValueOf(c.mapKey))
				if !fv.IsValid() {
					record = append(record, "")
					continue
				}
			}
			record = append(record, formatCell(fv))
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatCell renders one value: simulation times in microseconds,
// rates in bits per second, everything else via fmt.
func formatCell(v reflect.Value) string {
	switch val := v.Interface().(type) {
	case sim.Time:
		return fmt.Sprintf("%.3f", val.Micros())
	case sim.Rate:
		return fmt.Sprintf("%d", int64(val))
	case float64:
		return fmt.Sprintf("%g", val)
	case bool:
		if val {
			return "1"
		}
		return "0"
	default:
		return fmt.Sprintf("%v", val)
	}
}
