package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"github.com/quartz-dcn/quartz/internal/flowsim"
	"github.com/quartz-dcn/quartz/internal/sim"
	"github.com/quartz-dcn/quartz/internal/topology"
	"github.com/quartz-dcn/quartz/internal/traffic"
)

// Figure10Networks are the compared fabrics, in the figure's legend
// order.
var Figure10Networks = []string{
	"full bisection", "quartz", "1/2 bisection", "1/4 bisection",
}

// Figure10Row is one traffic pattern's normalized throughput across the
// four fabrics (normalized to the full-bisection result).
type Figure10Row struct {
	Pattern    string
	Throughput map[string]float64
}

// figure10Scale sizes the §5.1 experiment: 9 racks of 8 servers with
// 10 Gb/s NICs. Like the paper's 32:32 configuration, the mesh is
// balanced: each switch has as many 10 Gb/s mesh links (M-1 = 8) as
// servers.
const (
	fig10Switches = 9
	fig10Hosts    = 8
)

// buildBisectionFabric models a tree fabric with the given bisection
// fraction: each ToR's uplink trunk carries fraction * hosts * NIC.
func buildBisectionFabric(fraction float64) (*topology.Graph, error) {
	up := sim.Rate(fraction * fig10Hosts * 10 * float64(sim.Gbps))
	g := topology.New(fmt.Sprintf("fabric(%.2f)", fraction))
	core := g.AddSwitch("core", topology.TierCore, -1)
	for r := 0; r < fig10Switches; r++ {
		tor := g.AddSwitch(fmt.Sprintf("tor%d", r), topology.TierToR, r)
		g.Connect(tor, core, up, topology.DefaultProp)
		for h := 0; h < fig10Hosts; h++ {
			host := g.AddHost(fmt.Sprintf("h%d-%d", r, h), r)
			g.Connect(host, tor, 10*sim.Gbps, topology.DefaultProp)
		}
	}
	return g, nil
}

// fig10Pairs builds the three §5.1 patterns' host pairs.
func fig10Pairs(g *topology.Graph, rng *rand.Rand) map[string][][2]topology.NodeID {
	return map[string][][2]topology.NodeID{
		"Random Permutation": traffic.RandomPermutation(g.Hosts(), rng),
		"Incast":             traffic.Incast(g.Hosts(), 10, rng),
		"Rack Level Shuffle": traffic.RackShuffle(g, 3, rng),
	}
}

// throughputOn allocates the pattern's flows on a fabric over single
// shortest paths.
func throughputOn(g *topology.Graph, pairs [][2]topology.NodeID) (float64, error) {
	flows := make([]flowsim.Flow, 0, len(pairs))
	for _, p := range pairs {
		f, err := flowsim.ShortestPathFlow(g, p[0], p[1], 0)
		if err != nil {
			return 0, err
		}
		flows = append(flows, f)
	}
	alloc, err := flowsim.Allocate(g, flows)
	if err != nil {
		return 0, err
	}
	return alloc.Total(), nil
}

// throughputOnQuartz allocates the pattern on the mesh with adaptive
// VLB: §3.4 notes the indirect fraction "can be adaptive depending on
// the traffic characteristics", so the best split is selected per
// pattern.
func throughputOnQuartz(g *topology.Graph, pairs [][2]topology.NodeID) (float64, error) {
	best := 0.0
	for frac := 0.0; frac <= 1.0; frac += 0.125 {
		flows := make([]flowsim.Flow, 0, len(pairs))
		for _, p := range pairs {
			f, err := flowsim.VLBFlow(g, p[0], p[1], 1-frac, 0)
			if err != nil {
				return 0, err
			}
			flows = append(flows, f)
		}
		alloc, err := flowsim.Allocate(g, flows)
		if err != nil {
			return 0, err
		}
		if t := alloc.Total(); t > best {
			best = t
		}
	}
	return best, nil
}

// Figure10 computes normalized throughput for the three traffic
// patterns on the four fabrics (§5.1). Pair patterns are sampled
// identically across fabrics (same seed), and throughput is normalized
// to the full-bisection fabric. Cancelling ctx aborts between
// pattern/fabric cells.
func Figure10(ctx context.Context, seed int64) ([]Figure10Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mesh, err := topology.NewFullMesh(topology.MeshConfig{
		Switches: fig10Switches, HostsPerSwitch: fig10Hosts,
	})
	if err != nil {
		return nil, err
	}
	full, err := buildBisectionFabric(1.0)
	if err != nil {
		return nil, err
	}
	half, err := buildBisectionFabric(0.5)
	if err != nil {
		return nil, err
	}
	quarter, err := buildBisectionFabric(0.25)
	if err != nil {
		return nil, err
	}

	patterns := []string{"Random Permutation", "Incast", "Rack Level Shuffle"}
	var rows []Figure10Row
	for _, pattern := range patterns {
		// Throughput is normalized so the full-bisection fabric scores
		// 1 (the figure's definition: "equals 1 if every server can
		// send traffic at its full rate"; for fan-in patterns the
		// receiver NIC is the binding ideal, which the full-bisection
		// fabric achieves).
		row := Figure10Row{Pattern: pattern, Throughput: map[string]float64{}}
		base := 0.0
		for _, netName := range Figure10Networks {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var g *topology.Graph
			quartz := false
			switch netName {
			case "full bisection":
				g = full
			case "quartz":
				g, quartz = mesh, true
			case "1/2 bisection":
				g = half
			case "1/4 bisection":
				g = quarter
			}
			// Regenerate the same pairs on this fabric's host IDs (all
			// fabrics create hosts in the same rack-major order).
			rng := rand.New(rand.NewSource(seed))
			pairs := fig10Pairs(g, rng)[pattern]
			var tp float64
			var err error
			if quartz {
				tp, err = throughputOnQuartz(g, pairs)
			} else {
				tp, err = throughputOn(g, pairs)
			}
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", pattern, netName, err)
			}
			if netName == "full bisection" {
				base = tp
			}
			row.Throughput[netName] = tp / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure10 renders the bar chart as a table.
func RenderFigure10(rows []Figure10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: normalized throughput (vs full bisection bandwidth)\n")
	fmt.Fprintf(&b, "%-20s", "pattern")
	for _, n := range Figure10Networks {
		fmt.Fprintf(&b, "%16s", n)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s", r.Pattern)
		for _, n := range Figure10Networks {
			fmt.Fprintf(&b, "%16.2f", r.Throughput[n])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
